GO ?= go
FUZZTIME ?= 10s

.PHONY: build test vet lint race fuzz bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the analyzer suite (with a per-rule summary) and the
# allocation-budget gate over lint/budget.json.
lint:
	$(GO) run ./cmd/cvclint -summary ./...
	$(GO) run ./cmd/cvclint -budget

race:
	$(GO) test -race ./internal/core ./internal/transport ./internal/server ./internal/obs ./internal/sim .

# bench refreshes BENCH_notifier.json, the committed hot-path trajectory
# point; see scripts/bench.sh.
bench:
	bash scripts/bench.sh

fuzz:
	$(GO) test ./internal/op -run='^$$' -fuzz='^FuzzTransform$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/op -run='^$$' -fuzz='^FuzzCompose$$' -fuzztime=$(FUZZTIME)

# check is the full local CI gate; see scripts/check.sh.
check:
	FUZZTIME=$(FUZZTIME) bash scripts/check.sh
