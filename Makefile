GO ?= go
FUZZTIME ?= 10s

.PHONY: build test vet lint race fuzz check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/cvclint ./...

race:
	$(GO) test -race ./internal/core ./internal/transport ./internal/sim .

fuzz:
	$(GO) test ./internal/op -run='^$$' -fuzz='^FuzzTransform$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/op -run='^$$' -fuzz='^FuzzCompose$$' -fuzztime=$(FUZZTIME)

# check is the full local CI gate; see scripts/check.sh.
check:
	FUZZTIME=$(FUZZTIME) bash scripts/check.sh
