package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: document
// buffer implementation, history-buffer compaction, and undo tracking cost.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/sim"
)

// BenchmarkAblationBufferImpl runs the same engine workload over the three
// document implementations. The rope wins on large documents with scattered
// edits; the gap buffer on clustered edits; the plain slice only on tiny
// documents.
func BenchmarkAblationBufferImpl(b *testing.B) {
	mk := map[string]func(string) doc.Buffer{
		"rope":   func(s string) doc.Buffer { return doc.NewRope(s) },
		"gap":    func(s string) doc.Buffer { return doc.NewGapBuffer(s) },
		"simple": func(s string) doc.Buffer { return doc.NewSimple(s) },
	}
	seed := strings.Repeat("0123456789", 2000) // 20k-rune steady-state doc
	for name, newBuf := range mk {
		b.Run(name, func(b *testing.B) {
			c := core.NewClient(1, seed, core.WithClientBuffer(newBuf(seed)), core.WithClientCompaction(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Front edits — the pathological case for contiguous
				// buffers — at constant document size.
				if _, err := c.Insert(0, "ab"); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Delete(0, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCompaction measures the effect of history-buffer GC on a
// steady-state session: without it, formula-(5)/(7) scans grow with session
// age.
func BenchmarkAblationCompaction(b *testing.B) {
	for _, compact := range []int{0, 8, 64} {
		b.Run(fmt.Sprintf("every=%d", compact), func(b *testing.B) {
			srv := core.NewServer("", core.WithServerCompaction(compact))
			clients := make([]*core.Client, 3)
			for site := 1; site <= 3; site++ {
				snap, err := srv.Join(site)
				if err != nil {
					b.Fatal(err)
				}
				clients[site-1] = core.NewClient(site, snap.Text, core.WithClientCompaction(compact))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := clients[i%3]
				m, err := c.Insert(c.DocLen(), "x")
				if err != nil {
					b.Fatal(err)
				}
				bcast, _, err := srv.Receive(m)
				if err != nil {
					b.Fatal(err)
				}
				for _, bm := range bcast {
					if _, err := clients[bm.To-1].Integrate(bm); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(srv.History().Len()), "final-server-hb")
		})
	}
}

// BenchmarkAblationUndoTracking measures the local-path overhead of undo
// tracking (an extra document snapshot + inverse per local op).
func BenchmarkAblationUndoTracking(b *testing.B) {
	for _, undo := range []bool{false, true} {
		b.Run(fmt.Sprintf("undo=%v", undo), func(b *testing.B) {
			opts := []core.ClientOption{core.WithClientCompaction(1)}
			if undo {
				opts = []core.ClientOption{core.WithClientUndo()}
			}
			c := core.NewClient(1, "seed text for undo ablation", opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Insert/delete pairs keep the document (and therefore the
				// undo snapshot cost) at steady state.
				if _, err := c.Insert(0, "x"); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Delete(0, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationValidation measures the cost of full oracle validation in
// the simulator (the E5 harness) vs a plain run — documenting why throughput
// benchmarks turn it off.
func BenchmarkAblationValidation(b *testing.B) {
	for _, validate := range []bool{false, true} {
		b.Run(fmt.Sprintf("validate=%v", validate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Clients:      4,
					OpsPerClient: 25,
					Seed:         int64(i),
					Initial:      "x",
					Validate:     validate,
					Compaction:   8,
				})
				if err != nil {
					b.Fatal(err)
				}
				if validate && res.VerdictMismatches != 0 {
					b.Fatal("mismatches")
				}
			}
		})
	}
}
