package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/op"
)

// Batch accumulates several edits into ONE operation (one timestamp, one
// message, atomic integration everywhere) — the right shape for find&replace
// or a multi-cursor edit. Positions given to each call address the document
// as it stands at that point *within* the batch.
type Batch struct {
	baseLen int
	curLen  int
	acc     *op.Op
	err     error
}

// Insert adds an insertion at pos (coordinates of the batch's current
// state).
func (b *Batch) Insert(pos int, text string) *Batch {
	if b.err != nil {
		return b
	}
	next, err := op.NewInsert(b.curLen, pos, text)
	if err != nil {
		b.err = err
		return b
	}
	return b.compose(next)
}

// Delete adds a deletion at pos.
func (b *Batch) Delete(pos, count int) *Batch {
	if b.err != nil {
		return b
	}
	next, err := op.NewDelete(b.curLen, pos, count)
	if err != nil {
		b.err = err
		return b
	}
	return b.compose(next)
}

// Replace adds a combined delete+insert.
func (b *Batch) Replace(pos, count int, text string) *Batch {
	if b.err != nil {
		return b
	}
	next, err := op.NewReplace(b.curLen, pos, count, text)
	if err != nil {
		b.err = err
		return b
	}
	return b.compose(next)
}

func (b *Batch) compose(next *op.Op) *Batch {
	combined, err := op.Compose(b.acc, next)
	if err != nil {
		b.err = fmt.Errorf("repro: batch compose: %w", err)
		return b
	}
	b.acc = combined
	b.curLen = combined.TargetLen()
	return b
}

// Edit runs fn against a batch over the current document and applies the
// combined operation atomically. If fn leaves the batch empty (or errored),
// nothing is generated and the error (if any) is returned.
func (e *Editor) Edit(fn func(b *Batch)) error {
	err := e.edit(func(c *core.Client) (core.ClientMsg, error) {
		b := &Batch{
			baseLen: c.DocLen(),
			curLen:  c.DocLen(),
			acc:     op.New().Retain(c.DocLen()),
		}
		fn(b)
		if b.err != nil {
			return core.ClientMsg{}, b.err
		}
		if b.acc.IsNoop() {
			return core.ClientMsg{}, errNoopEdit
		}
		return c.Generate(b.acc)
	})
	if err == errNoopEdit {
		return nil
	}
	return err
}
