package repro

import (
	"testing"
	"time"
)

func TestBatchAtomicMultiEdit(t *testing.T) {
	s, err := NewLocalSession(2, "the cat sat on the mat")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, b := s.Editors[0], s.Editors[1]

	// Replace both "the"s and add a suffix, atomically.
	if err := a.Edit(func(bt *Batch) {
		bt.Replace(0, 3, "THE")
		bt.Replace(15, 3, "THE")
		bt.Insert(bt.curLen, "!")
	}); err != nil {
		t.Fatal(err)
	}
	want := "THE cat sat on THE mat!"
	if a.Text() != want {
		t.Fatalf("local batch: %q", a.Text())
	}
	// One operation, one timestamp.
	if _, local := a.SV(); local != 1 {
		t.Fatalf("batch generated %d ops, want 1", local)
	}
	if err := s.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if b.Text() != want {
		t.Fatalf("remote: %q", b.Text())
	}
}

func TestBatchPositionsTrackIntermediateState(t *testing.T) {
	s, err := NewLocalSession(1, "ab")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := s.Editors[0]
	if err := e.Edit(func(bt *Batch) {
		bt.Insert(1, "XYZ") // "aXYZb"
		bt.Delete(2, 2)     // positions in the batch's current state: "aXb"
	}); err != nil {
		t.Fatal(err)
	}
	if e.Text() != "aXb" {
		t.Fatalf("got %q", e.Text())
	}
}

func TestBatchErrorAborts(t *testing.T) {
	s, err := NewLocalSession(1, "ab")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := s.Editors[0]
	err = e.Edit(func(bt *Batch) {
		bt.Insert(0, "ok")
		bt.Delete(50, 1) // out of range
	})
	if err == nil {
		t.Fatal("bad batch must fail")
	}
	if e.Text() != "ab" {
		t.Fatalf("failed batch must not mutate: %q", e.Text())
	}
	if _, local := e.SV(); local != 0 {
		t.Fatal("failed batch must not generate")
	}
}

func TestBatchEmptyIsNoop(t *testing.T) {
	s, err := NewLocalSession(1, "ab")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := s.Editors[0]
	if err := e.Edit(func(*Batch) {}); err != nil {
		t.Fatal(err)
	}
	if _, local := e.SV(); local != 0 {
		t.Fatal("empty batch must not generate")
	}
}

func TestBatchConcurrentWithRemote(t *testing.T) {
	s, err := NewLocalSession(2, "header body footer")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, b := s.Editors[0], s.Editors[1]
	if err := a.Edit(func(bt *Batch) {
		bt.Replace(7, 4, "BODY")
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(b.Len(), "!"); err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if a.Text() != "header BODY footer!" {
		t.Fatalf("converged: %q", a.Text())
	}
}
