package repro

// One benchmark per experiment in EXPERIMENTS.md. The paper has no numbered
// result tables — its evaluation is the worked example (Fig. 3), the
// inconsistency scenario (Fig. 2), and quantitative claims about timestamp
// size, memory, and check cost. Each benchmark regenerates the corresponding
// table in EXPERIMENTS.md; custom metrics carry the measured quantities.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/op"
	"repro/internal/p2p"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// BenchmarkE1Figure2 regenerates the Fig. 2 / §2.2 inconsistency
// demonstration: divergence across four sites and the "A1DE" intention
// violation, plus the OT-corrected "A12B".
func BenchmarkE1Figure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sim.Figure2()
		if !res.Diverged || res.Site1AfterO1O2 != "A1DE" || res.IntentionPreserved != "A12B" {
			b.Fatalf("figure 2 shape broken: %+v", res)
		}
	}
}

// BenchmarkE2Figure3 regenerates the §5 walkthrough end to end on real
// engines (every timestamp and verdict is asserted in TestFigure3Walkthrough;
// here we measure the cost of the full scenario).
func BenchmarkE2Figure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if res.Finals[0] != "A12Bx!" {
			b.Fatalf("figure 3 result: %q", res.Finals[0])
		}
	}
}

// BenchmarkE3TimestampBytes measures bytes-per-message spent on timestamps
// in star-topology sessions of growing size: the paper's compressed scheme
// (constant two varints) vs the classic full N-element vector.
func BenchmarkE3TimestampBytes(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128, 512} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var cvcPerMsg, fullPerMsg float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Clients:      n,
					OpsPerClient: 4,
					Seed:         int64(i),
					Initial:      "shared",
					Compaction:   8,
				})
				if err != nil {
					b.Fatal(err)
				}
				msgs := float64(res.Metrics.Get("ops.generated") + res.Metrics.Get("ops.integrated"))
				cvcPerMsg = float64(res.TimestampBytes) / msgs
				fullPerMsg = float64(res.FullVCTimestampBytes) / msgs
			}
			b.ReportMetric(cvcPerMsg, "cvcB/msg")
			b.ReportMetric(fullPerMsg, "fullvcB/msg")
		})
	}
}

// BenchmarkE4ClockMemory measures clock words per participant: CVC clients
// keep 2, the CVC notifier N, full-vector sites N, SK processes 3N. It also
// measures the words the notifier's history buffer spends on timestamps: the
// delta encoding keeps O(N) total for any buffer length, where timestamping
// each entry with a full state vector (the paper's §3.3 formulation taken
// literally) would cost N words per entry.
func BenchmarkE4ClockMemory(b *testing.B) {
	const hbLen = 256
	for _, n := range []int{4, 64, 1024} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var cvcClient, cvcServer, fullSite, skSite, hbWords int
			for i := 0; i < b.N; i++ {
				srv := core.NewServer("")
				for site := 1; site <= n; site++ {
					if _, err := srv.Join(site); err != nil {
						b.Fatal(err)
					}
				}
				var hb core.ServerHB
				hb.Grow(n) // dimensioned like SV_0, as Server.Join keeps it
				for j := 0; j < hbLen; j++ {
					hb.Add(core.ServerEntry{Origin: 1 + j%n})
				}
				cvcClient = 2 // ClientSV is two uint64 words by construction
				cvcServer = srv.SV().Len()
				fullSite = p2p.NewNode(0, n).ClockWords()
				skSite = vclock.NewSKProcess(0, n).SKStateSize()
				hbWords = hb.ClockWords()
			}
			b.ReportMetric(float64(cvcClient), "cvc-client-words")
			b.ReportMetric(float64(cvcServer), "cvc-notifier-words")
			b.ReportMetric(float64(fullSite), "fullvc-site-words")
			b.ReportMetric(float64(skSite), "sk-site-words")
			b.ReportMetric(float64(hbWords), "cvc-hb-ts-words")
			b.ReportMetric(float64(n*hbLen), "fullvc-hb-ts-words")
		})
	}
}

// BenchmarkE5VerdictSoundness runs fully validated sessions and reports the
// verdict mismatch rate against the Definition-1 oracle — must be zero.
func BenchmarkE5VerdictSoundness(b *testing.B) {
	var checks, mismatches int
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Clients:      6,
			OpsPerClient: 25,
			Seed:         int64(i),
			Initial:      "soundness",
			Validate:     true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("diverged")
		}
		checks += res.TotalChecks
		mismatches += res.VerdictMismatches
	}
	if mismatches != 0 {
		b.Fatalf("%d/%d verdicts disagree with the oracle", mismatches, checks)
	}
	b.ReportMetric(float64(checks)/float64(b.N), "checks/session")
	b.ReportMetric(0, "mismatches")
}

// BenchmarkE6SessionScaling measures end-to-end engine throughput (no
// simulated latency — pure processing) as the number of sites grows, to
// show local responsiveness and notifier cost scaling.
func BenchmarkE6SessionScaling(b *testing.B) {
	for _, n := range []int{2, 8, 32, 256} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			srv := core.NewServer("", core.WithServerCompaction(32))
			clients := make([]*core.Client, n)
			for site := 1; site <= n; site++ {
				snap, err := srv.Join(site)
				if err != nil {
					b.Fatal(err)
				}
				clients[site-1] = core.NewClient(site, snap.Text, core.WithClientCompaction(32))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := clients[i%n]
				m, err := c.Insert(c.DocLen(), "x")
				if err != nil {
					b.Fatal(err)
				}
				bcast, _, err := srv.Receive(m)
				if err != nil {
					b.Fatal(err)
				}
				for _, bm := range bcast {
					if _, err := clients[bm.To-1].Integrate(bm); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkE6MultiSession measures aggregate throughput when the same total
// load is spread over M independent documents served by the sharded session
// manager (internal/server): each session is a full Fig. 1 star with 4
// clients, serialized on its own goroutine. The paper's protocol is strictly
// per-session — sessions share no clock state — so on a multi-core machine
// throughput should scale with sessions (ns/op dropping as sessions grow);
// on a single-core runner the benchmark degenerates to measuring the
// actor-queue overhead instead.
func BenchmarkE6MultiSession(b *testing.B) {
	const clientsPer = 4
	for _, sessions := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			mgr := server.NewManager(server.WithEngineOptions(core.WithServerCompaction(32)))
			defer mgr.Close()
			type shard struct {
				sess    *server.Session
				clients []*core.Client
				locks   []sync.Mutex
			}
			shards := make([]*shard, sessions)
			for si := range shards {
				sess, err := mgr.GetOrCreate(fmt.Sprintf("doc-%d", si))
				if err != nil {
					b.Fatal(err)
				}
				sh := &shard{sess: sess, clients: make([]*core.Client, clientsPer), locks: make([]sync.Mutex, clientsPer)}
				for ci := 0; ci < clientsPer; ci++ {
					snap, err := sess.Join(0, server.Subscriber{
						// Runs on the session goroutine while the generating
						// side runs on the driver, so each client carries a
						// lock — exactly the Editor's discipline.
						Deliver: func(bm core.ServerMsg) {
							sh.locks[bm.To-1].Lock()
							_, ierr := sh.clients[bm.To-1].Integrate(bm)
							sh.locks[bm.To-1].Unlock()
							if ierr != nil {
								b.Errorf("integrate: %v", ierr)
							}
						},
					})
					if err != nil {
						b.Fatal(err)
					}
					sh.clients[ci] = core.NewClient(snap.Site, snap.Text, core.WithClientCompaction(32))
				}
				shards[si] = sh
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for si, sh := range shards {
				ops := b.N / sessions
				if si == 0 {
					ops += b.N % sessions
				}
				wg.Add(1)
				go func(sh *shard, ops int) {
					defer wg.Done()
					for k := 0; k < ops; k++ {
						ci := k % clientsPer
						sh.locks[ci].Lock()
						m, err := sh.clients[ci].Insert(sh.clients[ci].DocLen(), "x")
						sh.locks[ci].Unlock()
						if err != nil {
							b.Errorf("insert: %v", err)
							return
						}
						if err := sh.sess.Receive(m); err != nil {
							b.Errorf("receive: %v", err)
							return
						}
					}
				}(sh, ops)
			}
			wg.Wait()
		})
	}
}

// BenchmarkE7CheckCost compares the cost of one concurrency decision:
// formula (5) and formula (7) (both O(1) comparisons after the O(N) sum is
// amortized — measured as-is, including the sum) vs a full vector-clock
// comparison, across N.
func BenchmarkE7CheckCost(b *testing.B) {
	for _, n := range []int{8, 128, 2048} {
		ta := core.Timestamp{T1: 5, T2: 3}
		tb := core.Timestamp{T1: 4, T2: 7}
		full := vclock.New(n + 1)
		for i := range full {
			full[i] = uint64(i)
		}
		other := full.Copy()
		other[n/2]++

		b.Run(fmt.Sprintf("formula5/N=%d", n), func(b *testing.B) {
			x := false
			for i := 0; i < b.N; i++ {
				x = core.ConcurrentClient(ta, tb, false) != x
			}
			_ = x
		})
		b.Run(fmt.Sprintf("formula7/N=%d", n), func(b *testing.B) {
			x := false
			for i := 0; i < b.N; i++ {
				x = core.ConcurrentServer(ta, 1, full, 2, 0) != x
			}
			_ = x
		})
		b.Run(fmt.Sprintf("fullvc-compare/N=%d", n), func(b *testing.B) {
			x := false
			for i := 0; i < b.N; i++ {
				x = vclock.AreConcurrent(full, other) != x
			}
			_ = x
		})
	}
}

// BenchmarkE8NoOTAblation runs the notifier in relay mode (§6: propagate
// operations as-is) and reports divergence and verdict-mismatch rates —
// the experimental confirmation that the compression is unsound without
// operational transformation.
func BenchmarkE8NoOTAblation(b *testing.B) {
	var sessions, broken, mismatches, checks int
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Clients:      5,
			OpsPerClient: 25,
			Seed:         int64(i),
			Mode:         core.ModeRelay,
			Initial:      "the quick brown fox",
			Validate:     true,
		})
		if err != nil {
			b.Fatal(err)
		}
		sessions++
		if !res.Converged || res.VerdictMismatches > 0 {
			broken++
		}
		mismatches += res.VerdictMismatches
		checks += res.TotalChecks
	}
	b.ReportMetric(float64(broken)/float64(sessions)*100, "broken-sessions-%")
	if checks > 0 {
		b.ReportMetric(float64(mismatches)/float64(checks)*100, "verdict-mismatch-%")
	}
}

// BenchmarkE9SKBaseline measures timestamp bytes per message in a
// fully-distributed mesh for full vectors, Singhal–Kshemkalyani
// differential compression, and the paper's constant-2 scheme on identical
// traffic.
func BenchmarkE9SKBaseline(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var full, sk, cvc float64
			for i := 0; i < b.N; i++ {
				res, err := p2p.RunMesh(p2p.MeshConfig{
					Nodes: n, OpsPerNode: 8, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				f := float64(res.Messages)
				full = float64(res.FullVCBytes) / f
				sk = float64(res.SKBytes) / f
				cvc = float64(res.CVCBytes) / f
			}
			b.ReportMetric(full, "fullvcB/msg")
			b.ReportMetric(sk, "skB/msg")
			b.ReportMetric(cvc, "cvcB/msg")
		})
	}
}

// BenchmarkE10BoundedStructures measures auxiliary-structure high-water
// marks under growing latency (EXPERIMENTS.md E10).
func BenchmarkE10BoundedStructures(b *testing.B) {
	for _, lat := range []time.Duration{10 * time.Millisecond, 200 * time.Millisecond} {
		b.Run(fmt.Sprintf("latency=%v", lat), func(b *testing.B) {
			var shb, pend int
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Clients: 8, OpsPerClient: 40, Seed: int64(i),
					Initial: "bounded", Compaction: 8,
					Latency:  sim.Fixed(lat),
					Workload: sim.Workload{ThinkMean: 100 * time.Millisecond},
				})
				if err != nil {
					b.Fatal(err)
				}
				shb, pend = res.MaxServerHB, res.MaxPending
			}
			b.ReportMetric(float64(shb), "max-server-hb")
			b.ReportMetric(float64(pend), "max-pending")
		})
	}
}

// BenchmarkLocalEditLatency measures the latency-critical local path (paper
// §2 requirement 1): generating and locally applying one operation, with no
// network in the loop.
func BenchmarkLocalEditLatency(b *testing.B) {
	c := core.NewClient(1, "", core.WithClientCompaction(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(c.DocLen(), "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransformThroughput measures raw inclusion-transformation cost on
// typical editor operations.
func BenchmarkTransformThroughput(b *testing.B) {
	a, _ := op.NewInsert(4096, 1024, "hello")
	c, _ := op.NewDelete(4096, 2048, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := op.Transform(a, c); err != nil {
			b.Fatal(err)
		}
	}
}
