package repro

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/transport"
	"repro/internal/wire"
)

// BenchmarkBroadcastTCP measures the full notifier→client fan-out over
// loopback TCP: one writer types, N-1 receivers integrate every keystroke.
// One iteration is one keystroke broadcast to all N-1 other sites; the
// writer does not wait per keystroke, so bursts queue up and exercise the
// write-coalescing path exactly like a fast typist does. Beyond ns/op and
// allocs/op it reports wire bytes, bufio flushes, and ServerOp body encodes
// per broadcast — the encode-once acceptance criterion is encodes ≈ 1.
func BenchmarkBroadcastTCP(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { benchBroadcastTCP(b, n) })
	}
}

func benchBroadcastTCP(b *testing.B, n int) {
	ln, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	nt, err := Serve(ln, "")
	if err != nil {
		b.Fatal(err)
	}
	defer nt.Close()

	var delivered, want atomic.Int64
	done := make(chan struct{}, 1)

	dial := func() *Editor {
		conn, err := transport.DialTCP(ln.Addr())
		if err != nil {
			b.Fatal(err)
		}
		ed, err := Connect(conn, 0)
		if err != nil {
			b.Fatal(err)
		}
		return ed
	}
	writer := dial()
	defer writer.Close()
	for i := 1; i < n; i++ {
		ed := dial()
		defer ed.Close()
		ed.OnChange(func(string) {
			if delivered.Add(1) == want.Load() {
				done <- struct{}{}
			}
		})
	}

	// wave types k keystrokes back to back and waits until every receiver
	// has integrated all of them.
	wave := func(k int) {
		delivered.Store(0)
		want.Store(int64(k * (n - 1)))
		for i := 0; i < k; i++ {
			if err := writer.Insert(0, "x"); err != nil {
				b.Fatal(err)
			}
		}
		<-done
	}

	wave(1) // warm up: all connections admitted and primed

	startBytes := transport.TCPBytesSent()
	startFlushes := transport.TCPFlushes()
	startEncodes := wire.ServerOpEncodes()
	b.ReportAllocs()
	b.ResetTimer()
	wave(b.N)
	b.StopTimer()
	fN := float64(b.N)
	b.ReportMetric(float64(wire.ServerOpEncodes()-startEncodes)/fN, "encodes/broadcast")
	b.ReportMetric(float64(transport.TCPBytesSent()-startBytes)/fN, "wireB/op")
	b.ReportMetric(float64(transport.TCPFlushes()-startFlushes)/fN, "flushes/op")
	if err := writer.Err(); err != nil {
		b.Fatal(err)
	}
}
