package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/transport/netpoll"
	"repro/internal/wire"
)

// TestChaosDisconnectsAndRejoins subjects a live session to editor churn:
// editors write concurrently while some are abruptly closed and replaced.
// The survivors must converge with the notifier and never wedge.
func TestChaosDisconnectsAndRejoins(t *testing.T) {
	ln := transport.NewMemListener()
	nt, err := Serve(ln, "chaos base document")
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()
	runChaosChurn(t, ln.Dial, nt)
}

// TestChaosLeanNotifier runs the same churn against the goroutine-lean
// connection layer (shared writer pool + event dispatcher): pooled drains
// and dispatched reads must be behaviorally indistinguishable from the
// dedicated-goroutine layout under disconnects and races.
func TestChaosLeanNotifier(t *testing.T) {
	ln := transport.NewMemListener()
	nt, err := ServeLean(ln, "chaos base document", LeanOptions{WriterPool: -1, EventDispatch: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()
	runChaosChurn(t, ln.Dial, nt)
}

// runChaosChurn drives editor churn over any transport: dialConn is how a
// new editor reaches the notifier (mem pipe or real TCP).
func runChaosChurn(t *testing.T, dialConn func() (transport.Conn, error), nt *Notifier) {
	dial := func() *Editor {
		t.Helper()
		conn, err := dialConn()
		if err != nil {
			t.Fatal(err)
		}
		e, err := Connect(conn, 0)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	var mu sync.Mutex
	editors := map[int]*Editor{}
	for i := 0; i < 4; i++ {
		e := dial()
		editors[e.Site()] = e
	}

	r := rand.New(rand.NewSource(31337))
	for round := 0; round < 30; round++ {
		// Every live editor makes a burst of edits concurrently.
		var wg sync.WaitGroup
		mu.Lock()
		live := make([]*Editor, 0, len(editors))
		for _, e := range editors {
			live = append(live, e)
		}
		mu.Unlock()
		for _, e := range live {
			wg.Add(1)
			go func(e *Editor) {
				defer wg.Done()
				for k := 0; k < 3; k++ {
					n := e.Len()
					pos := 0
					if n > 0 {
						pos = rand.New(rand.NewSource(int64(k))).Intn(n + 1)
					}
					if err := e.Insert(pos, fmt.Sprintf("<%d>", e.Site())); err != nil && e.Err() == nil {
						// Local validation errors are fine; background
						// failures are not (checked at the end).
						return
					}
				}
			}(e)
		}
		wg.Wait()

		// Randomly kill one editor and bring a replacement in.
		if r.Intn(3) == 0 {
			mu.Lock()
			for site, e := range editors {
				_ = e.Close()
				delete(editors, site)
				break
			}
			mu.Unlock()
			e := dial()
			mu.Lock()
			editors[e.Site()] = e
			mu.Unlock()
		}
	}

	// Quiesce the survivors.
	deadline := time.Now().Add(15 * time.Second)
	for {
		received, sent := nt.Counts()
		quiet := true
		mu.Lock()
		for _, e := range editors {
			fromServer, local := e.SV()
			if received[e.Site()] != local || sent[e.Site()] != fromServer {
				quiet = false
				break
			}
		}
		mu.Unlock()
		if quiet {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("chaos session did not quiesce")
		}
		time.Sleep(2 * time.Millisecond)
	}

	want := nt.Text()
	mu.Lock()
	defer mu.Unlock()
	for site, e := range editors {
		if err := e.Err(); err != nil {
			t.Fatalf("editor %d failed: %v", site, err)
		}
		if e.Text() != want {
			t.Fatalf("survivor %d diverged: %q vs %q", site, e.Text(), want)
		}
	}
	// Hang up the survivors so callers can assert server-side teardown
	// (dispatcher retire, goroutine return) after the churn.
	for _, e := range editors {
		_ = e.Close()
	}
}

// TestChaosPollerTCP runs the churn schedule over real TCP through the epoll
// readiness poller, with 4 KiB socket buffers and a 7-byte read chunk so
// nearly every frame arrives split and the partial-frame reassembly path is
// exercised under kill/replace races. After the churn it asserts exactly-once
// retire: the dispatcher must drain to zero registered connections — a leaked
// dispatchConn or a double-retire would leave the count wrong forever.
func TestChaosPollerTCP(t *testing.T) {
	chaosPollerTCP(t, 0) // package defaults: single-instance layout on 1-CPU boxes
}

// TestChaosPollerTCPSharded reruns the poller churn with the sharded
// scheduling layout forced on (DESIGN.md §18): 4 epoll shards, 4 writers and
// dispatch workers over 4-way ready rings, and the parallel broadcast fan-out
// engaged for every multi-destination broadcast (threshold 1). Kill/replace
// races must survive work stealing and chunked fan-out with the same
// exactly-once retire guarantee.
func TestChaosPollerTCPSharded(t *testing.T) {
	chaosPollerTCP(t, 4)
}

func chaosPollerTCP(t *testing.T, shards int) {
	if !netpoll.Available() {
		t.Skip("epoll poller not available on this platform")
	}
	p, err := netpoll.NewPoller(netpoll.WithPollerShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ln, err := netpoll.ListenTCP("127.0.0.1:0",
		netpoll.WithPoller(p), netpoll.WithSockBuf(4096), netpoll.WithReadChunk(7))
	if err != nil {
		t.Fatal(err)
	}
	lean := LeanOptions{WriterPool: -1, EventDispatch: -1}
	if shards > 0 {
		lean = LeanOptions{WriterPool: shards, EventDispatch: shards,
			DispatchShards: shards, FanoutThreshold: 1}
	}
	nt, err := ServeLean(ln, "chaos base document", lean)
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()
	if shards > 0 && p.Shards() != shards {
		t.Fatalf("poller built %d shards, want %d", p.Shards(), shards)
	}
	addr := ln.Addr()
	runChaosChurn(t, func() (transport.Conn, error) { return transport.DialTCP(addr) }, nt)

	deadline := time.Now().Add(5 * time.Second)
	for nt.disp.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dispatcher leaked %d connections after churn", nt.disp.Len())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSlowConsumerDoesNotBlockOthers: one editor stops reading (its engine
// is never driven because we hold its connection hostage); everyone else
// must still make progress thanks to the unbounded per-peer send queues.
func TestSlowConsumerDoesNotBlockOthers(t *testing.T) {
	ln := transport.NewMemListener()
	nt, err := Serve(ln, "")
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()

	// A raw connection that joins but never reads its broadcasts.
	rawConn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer rawConn.Close()
	if err := rawConn.Send(mustJoinReq(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := rawConn.Recv(); err != nil { // consume only the snapshot
		t.Fatal(err)
	}

	// Two healthy editors exchange a large volume of edits.
	a := mustConnect(t, ln)
	defer a.Close()
	b := mustConnect(t, ln)
	defer b.Close()
	for i := 0; i < 500; i++ {
		e := a
		if i%2 == 1 {
			e = b
		}
		if err := e.Insert(e.Len(), "x"); err != nil {
			t.Fatal(err)
		}
	}
	waitQuiet(t, nt, a, b)
	if a.Text() != b.Text() || len(a.Text()) != 500 {
		t.Fatalf("healthy editors stalled: %d/%d runes", len(a.Text()), len(b.Text()))
	}
}

// TestChaosDehydrateMidBurst forces sessions to dehydrate between write
// bursts with an aggressively small idle period while the goroutine-lean
// layer (writer pool + event dispatch) carries the traffic. Every park must
// be either aborted cleanly or rehydrated transparently: both editors of
// every session converge byte-identically on the full edit volume.
func TestChaosDehydrateMidBurst(t *testing.T) {
	reg := obs.NewRegistry("srv")
	ln := transport.NewMemListener()
	mgr := server.NewManager(
		server.WithObservability(reg),
		server.WithIdleDehydrate(2*time.Millisecond),
	)
	svc := server.Serve(ln, mgr, server.WithWriterPool(-1), server.WithEventDispatch(-1))
	defer mgr.Close()
	defer svc.Close()

	const (
		sessions = 3
		rounds   = 20
		perRound = 3
	)
	type pair struct{ a, b *Editor }
	docs := make([]pair, sessions)
	for i := range docs {
		name := fmt.Sprintf("doc%d", i)
		for _, ed := range []**Editor{&docs[i].a, &docs[i].b} {
			conn, err := ln.Dial()
			if err != nil {
				t.Fatal(err)
			}
			e, err := ConnectSession(conn, name, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			*ed = e
		}
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for _, d := range docs {
			for _, e := range []*Editor{d.a, d.b} {
				wg.Add(1)
				go func(e *Editor) {
					defer wg.Done()
					for k := 0; k < perRound; k++ {
						if err := e.Insert(0, "z"); err != nil {
							t.Errorf("site %d: %v", e.Site(), err)
							return
						}
					}
				}(e)
			}
		}
		wg.Wait()
		if round%4 == 3 {
			time.Sleep(8 * time.Millisecond) // a park-sized gap mid-burst
		}
	}

	want := 2 * rounds * perRound
	deadline := time.Now().Add(15 * time.Second)
	for i, d := range docs {
		for {
			ta, tb := d.a.Text(), d.b.Text()
			if len(ta) == want && ta == tb {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("doc%d never converged: %d/%d runes, identical=%v",
					i, len(ta), len(tb), ta == tb)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// The gaps are park-sized, so at least one session must actually have
	// gone through a full dehydrate/rehydrate cycle mid-test.
	if got := reg.Snapshot().Counters[obs.CSessionRehydrations]; got == 0 {
		t.Fatal("no session ever rehydrated; idle period never triggered")
	}
}

func mustJoinReq(site int) wire.Msg { return wire.JoinReq{Site: site} }

func mustConnect(t *testing.T, ln *transport.MemListener) *Editor {
	t.Helper()
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	e, err := Connect(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
