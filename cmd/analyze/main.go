// Command analyze reconstructs the causal structure of a journaled editing
// session offline — the trace-based causality analysis the paper's
// introduction attributes to direct-dependency techniques [7,12]. The
// compressed 2-integer timestamps recorded in the journal are sufficient to
// rebuild the entire Definition-1 happens-before relation.
//
//	reducesrv -listen :7467 -journal session.journal
//	... collaborative session ...
//	analyze -journal session.journal
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/journal"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	path := flag.String("journal", "session.journal", "journal file to analyze")
	initial := flag.String("initial", "", "initial document the session started from")
	showDoc := flag.Bool("doc", false, "print the reconstructed final document")
	flag.Parse()

	a, err := journal.Analyze(*path, *initial)
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	fmt.Printf("journal: %s (%d records)\n\n", *path, a.Records)
	var tb stats.Table
	tb.Header("metric", "value")
	tb.Row("sites", a.Sites)
	tb.Row("operations", a.Ops)
	tb.Row("ordered pairs", a.OrderedPairs)
	tb.Row("concurrent pairs", a.ConcurrentPairs)
	tb.Row("concurrency degree", fmt.Sprintf("%.1f%%", a.ConcurrencyDegree*100))
	tb.Row("longest causal chain", a.MaxDepth)
	tb.Row("final document runes", len([]rune(a.FinalDoc)))
	fmt.Print(tb.String())

	if len(a.PerSite) > 0 {
		fmt.Println("\noperations per site:")
		sites := make([]int, 0, len(a.PerSite))
		for s := range a.PerSite {
			sites = append(sites, s)
		}
		sort.Ints(sites)
		for _, s := range sites {
			fmt.Printf("  site %-4d %d\n", s, a.PerSite[s])
		}
	}
	if *showDoc {
		fmt.Printf("\nfinal document:\n%s\n", a.FinalDoc)
	}
}
