// Command cvcbench regenerates the experiment tables in EXPERIMENTS.md:
//
//	cvcbench -exp e3    timestamp bytes/message vs N (CVC vs full vectors)
//	cvcbench -exp e4    clock memory per site vs N (CVC / full VC / SK)
//	cvcbench -exp e5    verdict soundness vs the Definition-1 oracle
//	cvcbench -exp e6    session scaling: throughput and latency vs N
//	cvcbench -exp e7    concurrency-check cost vs N
//	cvcbench -exp e8    no-OT ablation: divergence and mismatch rates
//	cvcbench -exp e9    mesh baseline: full VC vs SK vs CVC bytes
//	cvcbench -exp e13   idle-connection capacity of the goroutine-lean layer
//	cvcbench -exp all   everything except e13 (the capacity run holds ~100k
//	                    connections; run it explicitly, sized by E13_MEM_CONNS
//	                    and E13_TCP_CONNS)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/p2p"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/transport/netpoll"
	"repro/internal/vclock"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "experiment id (e3..e10, e13, or all)")
	seeds := flag.Int("seeds", 3, "seeds per configuration")
	flag.Parse()

	runners := map[string]func(int){
		"e3": e3, "e4": e4, "e5": e5, "e6": e6, "e7": e7, "e8": e8, "e9": e9, "e10": e10,
		"e13": e13,
	}
	if *exp == "all" {
		for _, id := range []string{"e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"} {
			runners[id](*seeds)
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	run(*seeds)
}

func banner(id, title string) {
	fmt.Printf("## %s — %s\n\n", id, title)
}

// e3: timestamp bytes per message vs N in the star topology.
func e3(seeds int) {
	banner("E3", "timestamp bytes per message vs N (star topology)")
	var tb stats.Table
	tb.Header("N", "cvc B/msg", "full-vc B/msg", "ratio")
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		var cvc, full stats.Sample
		for s := 0; s < seeds; s++ {
			res, err := sim.Run(sim.Config{
				Clients: n, OpsPerClient: 4, Seed: int64(s), Initial: "shared",
				Compaction: 8,
			})
			if err != nil {
				log.Fatal(err)
			}
			msgs := float64(res.Metrics.Get("ops.generated") + res.Metrics.Get("ops.integrated"))
			cvc.Add(float64(res.TimestampBytes) / msgs)
			full.Add(float64(res.FullVCTimestampBytes) / msgs)
		}
		tb.Row(n, cvc.Mean(), full.Mean(), full.Mean()/cvc.Mean())
	}
	fmt.Print(tb.String())
	fmt.Println("\nShape check: cvc column flat (~2), full-vc column ~linear in N (paper §6).")
}

// e4: clock words per participant.
func e4(int) {
	banner("E4", "clock memory per participant vs N (uint64 words)")
	var tb stats.Table
	tb.Header("N", "cvc client", "cvc notifier", "full-vc site", "SK site (3N)")
	for _, n := range []int{4, 16, 64, 256, 1024} {
		srv := core.NewServer("")
		for site := 1; site <= n; site++ {
			if _, err := srv.Join(site); err != nil {
				log.Fatal(err)
			}
		}
		tb.Row(n, 2, srv.SV().Len(), p2p.NewNode(0, n).ClockWords(), vclock.NewSKProcess(0, n).SKStateSize())
	}
	fmt.Print(tb.String())
	fmt.Println("\nShape check: clients stay at 2 words regardless of N (paper §6).")
}

// e5: verdict soundness against the oracle.
func e5(seeds int) {
	banner("E5", "compressed-clock verdicts vs Definition-1 ground truth")
	var tb stats.Table
	tb.Header("N", "sessions", "checks", "concurrent", "mismatches")
	for _, n := range []int{2, 4, 8, 12} {
		checks, conc, mism, sessions := 0, 0, 0, 0
		for s := 0; s < seeds*2; s++ {
			res, err := sim.Run(sim.Config{
				Clients: n, OpsPerClient: 25, Seed: int64(s),
				Initial: "soundness", Validate: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			if !res.Converged {
				log.Fatalf("diverged at n=%d seed=%d", n, s)
			}
			sessions++
			checks += res.TotalChecks
			conc += res.ConcurrentPairs
			mism += res.VerdictMismatches
		}
		tb.Row(n, sessions, checks, conc, mism)
	}
	fmt.Print(tb.String())
	fmt.Println("\nShape check: mismatch column all zeros.")
}

// e6: throughput/latency scaling.
func e6(seeds int) {
	banner("E6", "session scaling: wall time, integration latency vs N")
	var tb stats.Table
	tb.Header("N", "ops", "wall ms", "ops/ms", "p50 integ (virt ms)", "p99 integ (virt ms)")
	for _, n := range []int{2, 4, 8, 16, 32} {
		var wall, p50, p99 stats.Sample
		ops := n * 50
		for s := 0; s < seeds; s++ {
			start := time.Now()
			res, err := sim.Run(sim.Config{
				Clients: n, OpsPerClient: 50, Seed: int64(s),
				Initial: "scaling", Compaction: 32,
				Latency: sim.Uniform{Lo: 20 * time.Millisecond, Hi: 80 * time.Millisecond},
			})
			if err != nil {
				log.Fatal(err)
			}
			if !res.Converged {
				log.Fatal("diverged")
			}
			wall.Add(float64(time.Since(start).Milliseconds()))
			p50.Add(res.IntegrationLatency.Percentile(50) / 1e6)
			p99.Add(res.IntegrationLatency.Percentile(99) / 1e6)
		}
		tb.Row(n, ops, wall.Mean(), float64(ops)/max(wall.Mean(), 0.01), p50.Mean(), p99.Mean())
	}
	fmt.Print(tb.String())
	fmt.Println("\nShape check: integration latency governed by link delay, not N.")
}

// e7: cost of one concurrency check.
func e7(int) {
	banner("E7", "cost of one concurrency decision (ns)")
	var tb stats.Table
	tb.Header("N", "formula(5)", "formula(7) cached", "formula(7) naive", "full-vc compare")
	for _, n := range []int{8, 64, 512, 4096} {
		full := vclock.New(n + 1)
		for i := range full {
			full[i] = uint64(i)
		}
		other := full.Copy()
		other[n/2]++
		sum := full.Sum()
		ta := core.Timestamp{T1: 5, T2: 3}
		tbs := core.Timestamp{T1: 4, T2: 7}

		f5 := timeIt(func() { core.ConcurrentClient(ta, tbs, false) })
		f7c := timeIt(func() { core.ConcurrentServerSum(ta, 1, sum, full[1], 2, 0) })
		f7n := timeIt(func() { core.ConcurrentServer(ta, 1, full, 2, 0) })
		fv := timeIt(func() { vclock.AreConcurrent(full, other) })
		tb.Row(n, f5, f7c, f7n, fv)
	}
	fmt.Print(tb.String())
	fmt.Println("\nShape check: formula (5) and the engine's cached formula (7) are O(1);")
	fmt.Println("the naive Σ and the full-vector comparison grow with N.")
}

func timeIt(fn func()) float64 {
	const iters = 200000
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// e8: the no-OT ablation.
func e8(seeds int) {
	banner("E8", "ablation: notifier relays ORIGINAL operations (§6)")
	var tb stats.Table
	tb.Header("N", "sessions", "diverged", "verdict mismatches", "checks")
	for _, n := range []int{3, 5, 8} {
		sessions, diverged, mism, checks := 0, 0, 0, 0
		for s := 0; s < seeds*2; s++ {
			res, err := sim.Run(sim.Config{
				Clients: n, OpsPerClient: 25, Seed: int64(s),
				Mode: core.ModeRelay, Initial: "the quick brown fox", Validate: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			sessions++
			if !res.Converged {
				diverged++
			}
			mism += res.VerdictMismatches
			checks += res.TotalChecks
		}
		tb.Row(n, sessions, diverged, mism, checks)
	}
	fmt.Print(tb.String())
	fmt.Println("\nShape check: non-zero divergence/mismatches — without transformation the")
	fmt.Println("causality relation stays N-dimensional and 2-element clocks cannot capture it.")
}

// e10: bounded auxiliary structures — history buffers, bridges, pending
// lists — under growing latency and growing N (with GC enabled).
func e10(seeds int) {
	banner("E10", "auxiliary structure high-water marks (compaction on)")
	var tb stats.Table
	tb.Header("N", "RTT/2", "server HB", "client HB", "pending", "bridge")
	type cfg struct {
		n   int
		lat time.Duration
	}
	for _, c := range []cfg{
		{8, 10 * time.Millisecond}, {8, 50 * time.Millisecond},
		{8, 200 * time.Millisecond}, {8, 800 * time.Millisecond},
		{4, 50 * time.Millisecond}, {16, 50 * time.Millisecond}, {64, 50 * time.Millisecond},
	} {
		var shb, chb, pend, br stats.Sample
		for s := 0; s < seeds; s++ {
			res, err := sim.Run(sim.Config{
				Clients: c.n, OpsPerClient: 40, Seed: int64(s),
				Initial: "bounded", Compaction: 8,
				Latency:  sim.Fixed(c.lat),
				Workload: sim.Workload{ThinkMean: 100 * time.Millisecond},
			})
			if err != nil {
				log.Fatal(err)
			}
			if !res.Converged {
				log.Fatal("diverged")
			}
			shb.AddInt(res.MaxServerHB)
			chb.AddInt(res.MaxClientHB)
			pend.AddInt(res.MaxPending)
			br.AddInt(res.MaxBridgeLen)
		}
		tb.Row(c.n, c.lat, shb.Mean(), chb.Mean(), pend.Mean(), br.Mean())
	}
	fmt.Print(tb.String())
	fmt.Println("\nShape check: structures track in-flight work (latency × rate), and the")
	fmt.Println("per-client structures stay small as N grows; nothing grows with session age.")
}

// e13: connection capacity of the goroutine-lean layer (shared writer pool,
// event dispatcher, idle-session dehydration). Holds a large idle fleet —
// E13_MEM_CONNS in-memory connections (default 100000) and E13_TCP_CONNS real
// loopback TCP connections (default 10000, clamped to the file-descriptor
// limit) — then measures goroutines and heap bytes per idle connection and
// the editor→editor p99 round-trip of a ~1% active set with the fleet
// attached. In-memory connections are event-capable, so idle ones cost zero
// goroutines; plain TCP keeps one dedicated reader each (no portable
// readiness without a blocked Read), dropping 2 goroutines/conn to 1; and on
// poller-capable platforms a third leg runs TCP through the epoll poller
// (internal/transport/netpoll), which takes TCP to 0 goroutines/conn too.
// E13_TCP_POLLER=off skips the poller leg.
func e13(int) {
	banner("E13", "goroutine-lean capacity: idle connections vs goroutines and bytes")
	memConns := envInt("E13_MEM_CONNS", 100000)
	tcpConns := e13TCPBudget(envInt("E13_TCP_CONNS", 10000))

	var tb stats.Table
	tb.Header("transport", "conns", "sessions", "goroutines", "g/conn", "B/conn", "active p99")
	{
		ln := transport.NewMemListener()
		e13Fleet(&tb, "mem", memConns, ln, ln.Dial)
	}
	{
		ln, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			log.Fatalf("e13: tcp listen: %v", err)
		}
		addr := ln.Addr()
		e13Fleet(&tb, "tcp", tcpConns, ln, func() (transport.Conn, error) { return transport.DialTCP(addr) })
	}
	if netpoll.Available() && os.Getenv("E13_TCP_POLLER") != "off" {
		ln, err := netpoll.ListenTCP("127.0.0.1:0")
		if err != nil {
			log.Fatalf("e13: tcp-epoll listen: %v", err)
		}
		addr := ln.Addr()
		e13Fleet(&tb, "tcp-epoll", tcpConns, ln, func() (transport.Conn, error) { return transport.DialTCP(addr) })
	}
	fmt.Print(tb.String())
	fmt.Println("\nShape check: mem and tcp-epoll g/conn ~0 while plain tcp g/conn ~1 (reader")
	fmt.Println("only; the classic layout costs 2/conn plus a resident session each); B/conn")
	fmt.Println("is dominated by transport buffers (the poller's reassembly buffers release")
	fmt.Println("when idle), while a parked session itself is a compact checkpoint.")
}

// e13Fleet attaches an idle fleet over one transport, waits for every session
// to dehydrate, measures per-connection cost, then runs the active set.
func e13Fleet(tb *stats.Table, label string, conns int, ln transport.Listener, dial func() (transport.Conn, error)) {
	const perSession = 32
	sessions := (conns + perSession - 1) / perSession
	mgr := server.NewManager(server.WithIdleDehydrate(500 * time.Millisecond))
	svc := server.Serve(ln, mgr, server.WithWriterPool(-1), server.WithEventDispatch(-1))
	defer mgr.Close()
	defer svc.Close()

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	g0 := runtime.NumGoroutine()

	held := make([]transport.Conn, 0, conns)
	defer func() {
		for _, c := range held {
			_ = c.Close()
		}
	}()
	start := time.Now()
	for i := 0; i < conns; i++ {
		c, err := dial()
		if err != nil {
			log.Fatalf("e13 %s: dial %d: %v", label, i, err)
		}
		if err := c.Send(wire.SessionJoinReq{Session: fmt.Sprintf("cold%05d", i%sessions)}); err != nil {
			log.Fatalf("e13 %s: join %d: %v", label, i, err)
		}
		if _, err := c.Recv(); err != nil {
			log.Fatalf("e13 %s: join resp %d: %v", label, i, err)
		}
		held = append(held, c)
	}
	log.Printf("e13 %s: %d connections attached across %d sessions in %v", label, conns, sessions, time.Since(start).Round(time.Millisecond))

	deadline := time.Now().Add(2 * time.Minute)
	for {
		resident := 0
		for _, st := range mgr.Stats() {
			if st.Resident {
				resident++
			}
		}
		if resident == 0 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("e13 %s: %d sessions never parked", label, resident)
		}
		time.Sleep(20 * time.Millisecond)
	}

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	goroutines := runtime.NumGoroutine() - g0
	bytesPer := float64(0)
	if m1.HeapAlloc > m0.HeapAlloc {
		bytesPer = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(conns)
	}

	// The ~1% active set: editor pairs in hot sessions round-robin ops while
	// the idle fleet stays attached; p99 is the a→b propagation round-trip.
	nPairs := conns / 200
	if nPairs < 1 {
		nPairs = 1
	}
	if nPairs > 64 {
		nPairs = 64 // bounded editor fleet keeps the client side cheap
	}
	type pair struct {
		a, b *repro.Editor
		seen int
	}
	pairs := make([]*pair, nPairs)
	for i := range pairs {
		name := fmt.Sprintf("hot%02d", i)
		ca, err := dial()
		if err != nil {
			log.Fatalf("e13 %s: %v", label, err)
		}
		a, err := repro.ConnectSession(ca, name, 0)
		if err != nil {
			log.Fatalf("e13 %s: %v", label, err)
		}
		defer a.Close()
		cb, err := dial()
		if err != nil {
			log.Fatalf("e13 %s: %v", label, err)
		}
		b, err := repro.ConnectSession(cb, name, 0)
		if err != nil {
			log.Fatalf("e13 %s: %v", label, err)
		}
		defer b.Close()
		pairs[i] = &pair{a: a, b: b}
	}
	const ops = 2000
	lat := make([]time.Duration, 0, ops)
	for i := 0; i < ops; i++ {
		p := pairs[i%len(pairs)]
		t0 := time.Now()
		if err := p.a.Insert(0, "x"); err != nil {
			log.Fatalf("e13 %s: insert: %v", label, err)
		}
		p.seen++
		// Spin briefly, then block: an unbounded Gosched spin keeps the
		// only P runnable on GOMAXPROCS=1, starving the runtime netpoller
		// until sysmon's forced ~10ms poll, so the TCP legs would measure
		// scheduler pathology (two hops ≈ 20ms) instead of transport
		// latency. Sleeping parks the P in netpoll, which delivers
		// readiness immediately.
		for spin := 0; p.b.Len() != p.seen; spin++ {
			if spin < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(5 * time.Microsecond)
			}
		}
		lat = append(lat, time.Since(t0))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	tb.Row(label, conns, sessions, goroutines,
		fmt.Sprintf("%.3f", float64(goroutines)/float64(conns)),
		fmt.Sprintf("%.0f", bytesPer),
		lat[len(lat)*99/100].Round(time.Microsecond))
}

// e13TCPBudget clamps the TCP fleet to the file-descriptor limit, after
// raising RLIMIT_NOFILE as far as the process may (soft → hard, and hard →
// the fleet's need when privileged; see raiseNoFile): each loopback
// connection costs two descriptors in this single-process harness.
func e13TCPBudget(want int) int {
	fds, ok := raiseNoFile(uint64(2*want) + 512)
	if !ok {
		return want
	}
	budget := int(fds)/2 - 256
	log.Printf("e13: fd budget: RLIMIT_NOFILE %d -> %d tcp conns max", fds, budget)
	if budget < want {
		log.Printf("e13: clamping tcp conns %d -> %d", want, budget)
		return budget
	}
	return want
}

// envInt reads an integer environment override.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// e9: the fully-distributed mesh baselines.
func e9(seeds int) {
	banner("E9", "mesh baselines: timestamp bytes/msg (full VC vs SK vs CVC)")
	var tb stats.Table
	tb.Header("N", "full-vc B/msg", "SK B/msg", "SK max entries", "cvc B/msg")
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		var full, sk, cvc stats.Sample
		maxEntries := 0
		for s := 0; s < seeds; s++ {
			res, err := p2p.RunMesh(p2p.MeshConfig{Nodes: n, OpsPerNode: 10, Seed: int64(s)})
			if err != nil {
				log.Fatal(err)
			}
			f := float64(res.Messages)
			full.Add(float64(res.FullVCBytes) / f)
			sk.Add(float64(res.SKBytes) / f)
			cvc.Add(float64(res.CVCBytes) / f)
			if res.SKMaxEntries > maxEntries {
				maxEntries = res.SKMaxEntries
			}
		}
		tb.Row(n, full.Mean(), sk.Mean(), maxEntries, cvc.Mean())
	}
	fmt.Print(tb.String())
	fmt.Println("\nShape check: full VC linear in N; SK below full but worst case linear")
	fmt.Println("(max entries ~N); CVC constant — the paper's §1/§6 comparison.")
}
