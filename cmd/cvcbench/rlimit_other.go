//go:build !unix

package main

// raiseNoFile is a stub: Windows has no RLIMIT_NOFILE, so the TCP fleet
// keeps its requested size and lets dial errors set the practical ceiling.
func raiseNoFile(uint64) (fds uint64, ok bool) { return 0, false }
