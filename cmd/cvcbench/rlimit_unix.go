//go:build unix

package main

import (
	"log"
	"syscall"
)

// raiseNoFile lifts RLIMIT_NOFILE as far as this process may before the TCP
// fleet sizes itself: first try to push the hard limit up to wantFDs (needs
// CAP_SYS_RESOURCE — harmless to attempt, logged when refused), then raise
// the soft limit to whatever hard limit we ended up with. Returns the final
// soft limit; ok is false when the platform query itself failed.
func raiseNoFile(wantFDs uint64) (fds uint64, ok bool) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0, false
	}
	if rl.Max < wantFDs {
		try := rl
		try.Cur, try.Max = wantFDs, wantFDs
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &try); err == nil {
			rl = try
		} else {
			log.Printf("e13: raising RLIMIT_NOFILE hard limit %d -> %d: %v (keeping %d)",
				rl.Max, wantFDs, err, rl.Max)
		}
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	_ = syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	return rl.Cur, true
}
