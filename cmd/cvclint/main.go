// Command cvclint runs the repo's causality-invariant analyzers
// (internal/lint) over the module and reports file:line diagnostics,
// exiting non-zero on findings.
//
//	cvclint ./...            # analyze every package in the module
//	cvclint ./internal/core  # analyze specific directories
//	cvclint -list            # describe the analyzer suite
//	cvclint -only errdrop,opalias ./...
//	cvclint -summary ./...   # append a per-analyzer findings count
//	cvclint -budget          # allocation-budget gate (lint/budget.json)
//
// Exit codes: 0 clean, 1 findings, 2 load or type-check failure.
//
// -budget replays `go build -gcflags='-m -m'` over the packages named in the
// budget file (default lint/budget.json, override with -budget-file) and
// fails if any guarded hot function gained a heap escape; see
// internal/lint/budget.go for the workflow.
//
// Findings are suppressed by an inline `//lint:allow <analyzer>: <reason>`
// comment on the offending line or the line above; -show-suppressed prints
// those too (without affecting the exit code).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("cvclint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	showSuppressed := fs.Bool("show-suppressed", false, "also print findings silenced by //lint:allow")
	summary := fs.Bool("summary", false, "print a per-analyzer findings count after the run")
	budget := fs.Bool("budget", false, "run the allocation-budget gate instead of the analyzers")
	budgetFile := fs.String("budget-file", "lint/budget.json", "budget spec, relative to the module root")
	verbose := fs.Bool("v", false, "print each package as it is analyzed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *budget {
		return runBudget(*budgetFile)
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		if analyzers, err = lint.ByName(*only); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvclint:", err)
		return 2
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvclint:", err)
		return 2
	}

	pkgs, err := loadTargets(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvclint:", err)
		return 2
	}

	exit := 0
	findings := 0
	perRule := make(map[string]int)
	suppressed := make(map[string]int)
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "cvclint: analyzing %s\n", pkg.Path)
		}
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				fmt.Fprintf(os.Stderr, "cvclint: %s: %v\n", pkg.Path, e)
			}
			exit = 2
			continue
		}
		for _, d := range lint.Run(pkg, analyzers) {
			if d.Suppressed {
				suppressed[d.Analyzer]++
				if *showSuppressed {
					fmt.Printf("%s [suppressed]\n", d)
				}
				continue
			}
			fmt.Println(d)
			perRule[d.Analyzer]++
			findings++
		}
	}
	if *summary {
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "cvclint: %-12s %d finding(s), %d suppressed\n", a.Name, perRule[a.Name], suppressed[a.Name])
		}
	}
	if exit == 0 && findings > 0 {
		exit = 1
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "cvclint: %d finding(s)\n", findings)
	}
	return exit
}

// runBudget executes the allocation-budget gate against the module the
// working directory belongs to.
func runBudget(budgetFile string) int {
	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvclint:", err)
		return 2
	}
	if !filepath.IsAbs(budgetFile) {
		budgetFile = filepath.Join(moduleDir, budgetFile)
	}
	b, err := lint.LoadBudget(budgetFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvclint: budget:", err)
		return 2
	}
	violations, err := lint.CheckBudget(moduleDir, b, lint.GoBuildRunner)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvclint: budget:", err)
		return 2
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "cvclint: budget: %d new escape(s) in guarded functions\n", len(violations))
		return 1
	}
	pkgs, funcs := 0, 0
	for _, pb := range b.Packages {
		pkgs++
		funcs += len(pb.Funcs)
	}
	fmt.Fprintf(os.Stderr, "cvclint: budget: %d guarded function(s) across %d package(s) stay escape-free\n", funcs, pkgs)
	return 0
}

// loadTargets resolves the command-line package patterns: no arguments or
// "./..." means the whole module; anything else is a directory.
func loadTargets(loader *lint.Loader, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." || pat == "all" {
			pkgs, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				if !seen[p.Path] {
					seen[p.Path] = true
					out = append(out, p)
				}
			}
			continue
		}
		dir, err := filepath.Abs(strings.TrimSuffix(pat, "/..."))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModuleDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside module %s", pat, loader.ModuleDir)
		}
		path := loader.ModulePath
		if rel != "." {
			path = loader.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		if !seen[pkg.Path] {
			seen[pkg.Path] = true
			out = append(out, pkg)
		}
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
