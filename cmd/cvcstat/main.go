// Command cvcstat renders live observability snapshots from a running
// reducesrv -debug endpoint: per-session tables (sites, ops, history-buffer
// length, clock words, receive latency) plus the process-wide wire and
// transport counters.
//
//	cvcstat -addr 127.0.0.1:7468              # refresh every 2s
//	cvcstat -addr 127.0.0.1:7468 -once        # one snapshot and exit
//
// The clock-words column is EXPERIMENTS.md E4 live: with compaction running
// it stays near sites+2 words however many operations flow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7468", "debug endpoint address (reducesrv -debug)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	flag.Parse()

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + "/metricz?format=json"

	for {
		snap, err := fetch(url)
		if err != nil {
			log.Fatalf("cvcstat: %v", err)
		}
		var out strings.Builder
		render(&out, snap)
		if !*once {
			// Clear between refreshes so the table reads like a live top(1).
			fmt.Print("\033[H\033[2J")
		}
		os.Stdout.WriteString(out.String())
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// fetch pulls one JSON snapshot from the debug endpoint.
func fetch(url string) (obs.Snapshot, error) {
	client := http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.Snapshot{}, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return obs.Snapshot{}, err
	}
	var s obs.Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return obs.Snapshot{}, fmt.Errorf("decode %s: %w", url, err)
	}
	return s, nil
}

// render writes the live tables for one snapshot. Split from main so the
// integration test can drive it against a recorded snapshot.
func render(w io.Writer, s obs.Snapshot) {
	fmt.Fprintf(w, "%s @ %s\n\n", s.Name, time.Now().Format(time.TimeOnly))

	// Per-session table. Single-session servers mount their metrics on the
	// root registry; treat that as one anonymous session row.
	sessions := s.Children
	if len(sessions) == 0 && (len(s.Gauges) > 0 || len(s.Hists) > 0) {
		sessions = []obs.Snapshot{s}
	}
	var t stats.Table
	t.Header("session", "res", "sites", "ops", "doc", "hb", "clock_words", "checks", "transforms", "tf/op", "cache hit%", "recv p50", "recv p99")
	for _, c := range sessions {
		name := c.Name
		if name == "" || c.Name == s.Name {
			name = "(default)"
		}
		t.Row(name, residentStr(c.Gauges),
			gaugeCell(c.Gauges, obs.GSites), gaugeCell(c.Gauges, obs.GOpsRecv), gaugeCell(c.Gauges, obs.GDocRunes),
			gaugeCell(c.Gauges, obs.GHBLen), gaugeCell(c.Gauges, obs.GClockWords),
			gaugeCell(c.Counters, "checks.total"), gaugeCell(c.Counters, "ot.transforms"),
			ratioStr(c.Counters["ot.transforms"], c.Counters["ops.integrated"]),
			pctStr(c.Counters["ot.cache.hits"], c.Counters["ot.cache.hits"]+c.Counters["ot.cache.misses"]),
			histQCell(c.Hists, obs.HReceiveNs, 0.5), histQCell(c.Hists, obs.HReceiveNs, 0.99))
	}
	fmt.Fprintln(w, t.String())

	renderStages(w, s)
	renderShards(w, s)

	// Process-wide counters: wire and transport traffic, queue pressure.
	// The per-shard wakeup counters render in their own shard table above.
	var p stats.Table
	p.Header("counter", "value")
	for _, k := range sortedKeys(s.Counters) {
		if strings.HasPrefix(k, "poller.shard.wakeups.") {
			continue
		}
		p.Row(k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		p.Row(k, s.Gauges[k])
	}
	if qh, ok := s.Hists[obs.HQueueDepth]; ok {
		p.Row("conn.queue.depth p50", qh.Quantile(0.5))
		p.Row("conn.queue.depth max", qh.Max)
	}
	// How many connections each epoll_wait services: the poller's
	// amortization factor (only present on poller-capable platforms).
	if ew, ok := s.Hists[obs.HPollerEventsPerWait]; ok {
		p.Row("poller.events_per_wait p50", ew.Quantile(0.5))
		p.Row("poller.events_per_wait max", ew.Max)
	}
	fmt.Fprintln(w, p.String())
}

// renderStages prints the op-lifecycle stage breakdown when the server runs
// a span tracer (reducesrv -span-sample): one row per pipeline stage in
// pipeline order, plus the end-to-end total. Servers without tracing expose
// none of these histograms and the section is omitted entirely.
func renderStages(w io.Writer, s obs.Snapshot) {
	any := false
	for i := 0; i < span.NumStages; i++ {
		if _, ok := s.Hists[span.StageHistName(span.Stage(i))]; ok {
			any = true
			break
		}
	}
	if _, ok := s.Hists[span.HistTotal]; !any && !ok {
		return
	}
	var t stats.Table
	t.Header("stage", "count", "p50", "p99", "max")
	row := func(label, hist string) {
		h, ok := s.Hists[hist]
		if !ok {
			t.Row(label, "-", "-", "-", "-")
			return
		}
		t.Row(label, h.Count, durStr(h.Quantile(0.5)), durStr(h.Quantile(0.99)), durStr(h.Max))
	}
	for i := 0; i < span.NumStages; i++ {
		st := span.Stage(i)
		row(st.Name(), span.StageHistName(st))
	}
	row("total", span.HistTotal)
	fmt.Fprintln(w, t.String())
}

// renderShards prints the sharded-scheduling view (DESIGN.md §18): one row
// per epoll shard with its wakeup count, and the ready-ring shard-depth
// distribution with the cross-shard steal and parallel fan-out totals.
// Servers without a poller register no shard counters and the section is
// omitted entirely.
func renderShards(w io.Writer, s obs.Snapshot) {
	shardNames := []string{
		obs.CPollerShard0Wakeups, obs.CPollerShard1Wakeups,
		obs.CPollerShard2Wakeups, obs.CPollerShard3Wakeups,
	}
	present := false
	for _, n := range shardNames {
		if _, ok := s.Counters[n]; ok {
			present = true
			break
		}
	}
	if !present {
		return
	}
	var t stats.Table
	t.Header("shard", "wakeups")
	for i, n := range shardNames {
		if v, ok := s.Counters[n]; ok {
			t.Row(i, v)
		}
	}
	if dh, ok := s.Hists[obs.HDispatchShardDepth]; ok && dh.Count > 0 {
		t.Row("depth p50", dh.Quantile(0.5))
		t.Row("depth max", dh.Max)
	}
	if v, ok := s.Counters[obs.CDispatchSteals]; ok {
		t.Row("steals", v)
	}
	if v, ok := s.Counters[obs.CFanoutParallel]; ok {
		t.Row("fanouts", v)
	}
	fmt.Fprintln(w, t.String())
}

// gaugeCell renders a gauge or counter cell, distinguishing a missing row
// ("-") from a genuine zero — a server built without some subsystem (no
// residency layer, no engine metrics) must not render as an all-zero row.
func gaugeCell(m map[string]int64, k string) any {
	v, ok := m[k]
	if !ok {
		return "-"
	}
	return v
}

// histQCell renders a histogram quantile, "-" when the histogram is absent.
func histQCell(m map[string]obs.HistSnapshot, k string, q float64) string {
	h, ok := m[k]
	if !ok {
		return "-"
	}
	return durStr(h.Quantile(q))
}

// residentStr renders the per-session residency bit: "yes" (live engine +
// goroutine), "park" (dehydrated to a checkpoint), "-" (a server without the
// idle-dehydration layer, which exposes no resident gauge).
func residentStr(gauges map[string]int64) string {
	v, ok := gauges[obs.GResident]
	switch {
	case !ok:
		return "-"
	case v != 0:
		return "yes"
	default:
		return "park"
	}
}

// durStr renders nanoseconds compactly.
func durStr(ns uint64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// ratioStr renders num/den to two decimals, "-" when den is zero. Used for
// the transforms-per-integrated-op column: with the composed-suffix cache
// warm this sits near 1.00 however deep the bridge is (DESIGN.md §13).
func ratioStr(num, den int64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(num)/float64(den))
}

// pctStr renders num/den as a percentage, "-" when den is zero. Used for the
// composed-cache hit ratio (hits / lookups).
func pctStr(num, den int64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(num)/float64(den))
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
