package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/server"
	"repro/internal/transport"
)

// TestLiveSnapshotRendering is the end-to-end check of the observability
// path: a multi-session server on loopback TCP with real editors, the debug
// endpoint served over HTTP, cvcstat's fetch+render against it, and the
// decision trace dumped as JSONL.
func TestLiveSnapshotRendering(t *testing.T) {
	reg := obs.NewRegistry("reducesrv")
	ring := obs.NewDecisionRing(256)
	ring.SetEnabled(true)

	ln, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mgr := server.NewManager(
		server.WithInitialText("base"),
		server.WithObservability(reg),
		server.WithDecisionRing(ring),
	)
	svc := server.Serve(ln, mgr)
	defer mgr.Close()
	defer svc.Close()

	debug := httptest.NewServer(server.DebugHandler(reg, ring))
	defer debug.Close()

	join := func(session string) *repro.Editor {
		t.Helper()
		conn, err := transport.DialTCP(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		ed, err := repro.ConnectSession(conn, session, 0)
		if err != nil {
			t.Fatal(err)
		}
		return ed
	}
	e1, e2 := join("docs/a"), join("docs/a")
	defer e1.Close()
	defer e2.Close()
	if err := e1.Insert(4, " one"); err != nil {
		t.Fatal(err)
	}
	waitText(t, e2, "base one")
	if err := e2.Insert(8, " two"); err != nil {
		t.Fatal(err)
	}
	waitText(t, e1, "base one two")

	snap, err := fetch(debug.URL + "/metricz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	sess, ok := snap.Child("docs/a")
	if !ok {
		t.Fatalf("snapshot has no docs/a child: %+v", snap)
	}
	if sess.Gauges[obs.GSites] != 2 {
		t.Errorf("sites gauge = %d, want 2", sess.Gauges[obs.GSites])
	}
	if sess.Gauges[obs.GOpsRecv] != 2 || sess.Counters["ops.integrated"] != 2 {
		t.Errorf("ops: gauge=%d counter=%d, want 2/2",
			sess.Gauges[obs.GOpsRecv], sess.Counters["ops.integrated"])
	}
	if sess.Gauges[obs.GClockWords] < 3 {
		t.Errorf("clock_words gauge = %d, want >= 3", sess.Gauges[obs.GClockWords])
	}
	if h := sess.Hists[obs.HReceiveNs]; h.Count != 2 || h.Max == 0 {
		t.Errorf("receive.ns = %+v, want 2 nonzero observations", h)
	}
	if snap.Counters["wire.frames.server_op"] == 0 {
		t.Errorf("wire.frames.server_op = 0; frame counting is not wired")
	}
	if snap.Counters["sender.msgs"] == 0 || snap.Counters["tcp.flushes"] == 0 {
		t.Errorf("transport counters missing: %v", snap.Counters)
	}
	if qh, ok := snap.Hists[obs.HQueueDepth]; !ok || qh.Count == 0 {
		t.Errorf("conn.queue.depth histogram empty: %+v ok=%v", qh, ok)
	}

	// The composed-cache counters are pre-created by the engine, so every
	// session snapshot carries them even before the first lookup.
	for _, k := range []string{"ot.cache.hits", "ot.cache.misses", "ot.cache.composes"} {
		if _, ok := sess.Counters[k]; !ok {
			t.Errorf("session counters missing %q: %v", k, sess.Counters)
		}
	}

	// The table cvcstat would print for this snapshot.
	var out strings.Builder
	render(&out, snap)
	text := out.String()
	for _, want := range []string{"docs/a", "session", "clock_words", "tf/op", "cache hit%", "sender.msgs", "wire.frames.server_op"} {
		if !strings.Contains(text, want) {
			t.Errorf("render output missing %q:\n%s", want, text)
		}
	}

	// The decision ring saw the server-side formula-(7) work, labeled by
	// session, and dumps as parseable JSONL.
	resp, err := http.Get(debug.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var integrates int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var d obs.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if d.Kind == obs.DServerIntegrate {
			integrates++
			if d.Session != "docs/a" {
				t.Errorf("decision session = %q, want docs/a", d.Session)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if integrates != 2 {
		t.Errorf("trace has %d server.integrate records, want 2", integrates)
	}
}

// TestRenderCacheColumns pins the derived-column arithmetic against a
// recorded snapshot: transforms/op is transforms over integrated ops, cache
// hit% is hits over lookups, and both degrade to "-" when the denominator is
// zero rather than dividing by it.
func TestRenderCacheColumns(t *testing.T) {
	snap := obs.Snapshot{
		Name: "reducesrv",
		Children: []obs.Snapshot{
			{
				Name: "docs/warm",
				Counters: map[string]int64{
					"ops.integrated":    4,
					"ot.transforms":     6,
					"ot.cache.hits":     3,
					"ot.cache.misses":   1,
					"ot.cache.composes": 2,
				},
			},
			{
				Name:     "docs/idle",
				Counters: map[string]int64{"ops.integrated": 0},
			},
		},
	}
	var out strings.Builder
	render(&out, snap)
	text := out.String()
	warm, idle := tableLine(text, "docs/warm"), tableLine(text, "docs/idle")
	if !strings.Contains(warm, "1.50") || !strings.Contains(warm, "75%") {
		t.Errorf("warm row missing tf/op=1.50 or hit%%=75%%: %q", warm)
	}
	if !strings.Contains(idle, "-") {
		t.Errorf("idle row should render '-' for undefined ratios: %q", idle)
	}
}

// TestRenderMissingRows pins graceful degradation: a session snapshot from a
// server built without some subsystems (no gauges, no engine counters, no
// receive histogram) renders "-" cells, not fake zeros, and the row still
// has every column so nothing misaligns.
func TestRenderMissingRows(t *testing.T) {
	snap := obs.Snapshot{
		Name: "reducesrv",
		Children: []obs.Snapshot{
			{Name: "docs/bare"}, // no gauges, counters, or hists at all
			{
				Name:   "docs/full",
				Gauges: map[string]int64{obs.GSites: 2, obs.GOpsRecv: 0, obs.GDocRunes: 7, obs.GHBLen: 1, obs.GClockWords: 4},
				Counters: map[string]int64{
					"checks.total": 5, "ot.transforms": 0, "ops.integrated": 3,
				},
			},
		},
	}
	var out strings.Builder
	render(&out, snap)
	text := out.String()

	header := tableLine(text, "session")
	bare := tableLine(text, "docs/bare")
	full := tableLine(text, "docs/full")
	if bare == "" || full == "" {
		t.Fatalf("rows missing from render:\n%s", text)
	}
	// Every cell of the bare row after the name is a "-", and both rows carry
	// all 13 columns (the header's multi-word labels split differently under
	// Fields, so count against the known column count) — no misalignment.
	const cols = 13
	bareFields := strings.Fields(bare)
	if len(bareFields) != cols {
		t.Errorf("bare row has %d fields, want %d:\n%q\n%q", len(bareFields), cols, header, bare)
	}
	for _, f := range bareFields[1:] {
		if f != "-" {
			t.Errorf("bare row cell = %q, want '-': %q", f, bare)
		}
	}
	if got := len(strings.Fields(full)); got != cols {
		t.Errorf("full row has %d fields, want %d:\n%q\n%q", got, cols, header, full)
	}
	// A gauge that exists with value zero still renders as 0, not "-".
	if !strings.Contains(full, " 0 ") {
		t.Errorf("full row lost its genuine zero: %q", full)
	}
	// No tracer → no stage table.
	if strings.Contains(text, "remote_integrate") {
		t.Errorf("stage table rendered without span histograms:\n%s", text)
	}
}

// TestRenderStageTable checks the -span-sample breakdown: with stage
// histograms in the snapshot the stage table appears in pipeline order and
// includes the end-to-end total.
func TestRenderStageTable(t *testing.T) {
	reg := obs.NewRegistry("reducesrv")
	tr := span.NewTracer(reg, span.Config{SampleEvery: 1})
	tr.SetEnabled(true)
	ctx := tr.Start(1, 1)
	tr.Stamp(ctx, span.StageSendEnqueue)
	tr.FinishAt(ctx, span.StageRemoteIntegrate)

	var out strings.Builder
	render(&out, reg.Snapshot())
	text := out.String()
	for _, want := range []string{"stage", "generate", "send_enqueue", "remote_integrate", "total"} {
		if !strings.Contains(text, want) {
			t.Errorf("stage table missing %q:\n%s", want, text)
		}
	}
	// Pipeline order, not alphabetical: generate precedes decode.
	if strings.Index(text, "generate") > strings.Index(text, "\ndecode") && strings.Contains(text, "\ndecode") {
		t.Errorf("stage table not in pipeline order:\n%s", text)
	}
}

// TestRenderShardTable checks the sharded-scheduling section: with the
// per-shard wakeup counters in the snapshot, the shard table renders one row
// per registered shard plus the ready-ring depth distribution and the steal
// and fan-out totals — and the wakeup counters do NOT repeat in the generic
// process-wide counter table. A snapshot without shard counters (a server on
// a non-poller platform) renders no shard section.
func TestRenderShardTable(t *testing.T) {
	snap := obs.Snapshot{
		Name: "reducesrv",
		Counters: map[string]int64{
			obs.CPollerShard0Wakeups: 40,
			obs.CPollerShard1Wakeups: 30,
			obs.CPollerShard2Wakeups: 20,
			obs.CPollerShard3Wakeups: 10,
			obs.CDispatchSteals:      7,
			obs.CFanoutParallel:      5,
			"sender.msgs":            99,
		},
	}
	var out strings.Builder
	render(&out, snap)
	text := out.String()
	for _, want := range []string{"shard", "wakeups", "steals", "fanouts"} {
		if !strings.Contains(text, want) {
			t.Errorf("shard table missing %q:\n%s", want, text)
		}
	}
	for i, count := range []string{"40", "30", "20", "10"} {
		line := tableLine(text, count)
		if line == "" || !strings.Contains(line, fmt.Sprint(i)) {
			t.Errorf("shard %d wakeup row missing or misaligned: %q\n%s", i, line, text)
		}
	}
	if strings.Contains(text, "poller.shard.wakeups.0") {
		t.Errorf("per-shard counters duplicated in the generic counter table:\n%s", text)
	}
	// The steal/fan-out totals still appear in the generic table by name.
	if tableLine(text, obs.CDispatchSteals) == "" {
		t.Errorf("generic counter table lost %s:\n%s", obs.CDispatchSteals, text)
	}

	var bare strings.Builder
	render(&bare, obs.Snapshot{Name: "reducesrv", Counters: map[string]int64{"sender.msgs": 1}})
	if strings.Contains(bare.String(), "wakeups") {
		t.Errorf("shard section rendered without shard counters:\n%s", bare.String())
	}
}

// tableLine returns the first rendered line containing key.
func tableLine(text, key string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, key) {
			return line
		}
	}
	return ""
}

func waitText(t *testing.T, ed *repro.Editor, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for ed.Text() != want {
		if time.Now().After(deadline) {
			t.Fatalf("editor stuck at %q, want %q (err=%v)", ed.Text(), want, ed.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
