// Command figures replays the paper's figures on the real implementation:
//
//	figures -fig 2   reproduce Fig. 2 / §2.2 (divergence & intention violation)
//	figures -fig 3   reproduce Fig. 3 / §5 (compressed timestamps & verdicts)
//
// Output is a narration matching the paper's walkthroughs; every timestamp
// printed for -fig 3 equals the one in §5.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	fig := flag.Int("fig", 3, "figure to replay (2 or 3)")
	flag.Parse()

	switch *fig {
	case 2:
		figure2()
	case 3:
		figure3()
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %d (use 2 or 3)\n", *fig)
		os.Exit(2)
	}
}

func figure2() {
	res := sim.Figure2()
	fmt.Println("Figure 2 — four sites execute O1..O4 in their arrival orders,")
	fmt.Println("operations in ORIGINAL form (no transformation), document \"ABCDE\":")
	fmt.Println()
	sites := make([]int, 0, len(res.Orders))
	for s := range res.Orders {
		sites = append(sites, s)
	}
	sort.Ints(sites)
	for _, s := range sites {
		fmt.Printf("  site %d executes %-18s -> %q\n", s, strings.Join(res.Orders[s], ", "), res.Finals[s])
	}
	fmt.Println()
	if res.Diverged {
		fmt.Println("DIVERGENCE: the replicas disagree (paper §2.2, problem 1).")
	}
	fmt.Println()
	fmt.Println("Intention violation in isolation (§2.2):")
	fmt.Printf("  O1 = Insert[\"12\", 1], O2 = Delete[3, 2] concurrent on \"ABCDE\"\n")
	fmt.Printf("  executing O2 untransformed after O1:  %q   (intention violated)\n", res.Site1AfterO1O2)
	fmt.Printf("  executing O2 transformed (Delete[3,4]): %q  (intention preserved)\n", res.IntentionPreserved)
}

func figure3() {
	res, err := sim.Figure3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3 / §5 — compressed state vector timestamping and concurrency")
	fmt.Println("checking, replayed on the real engines. Document \"ABCDE\".")
	for _, st := range res.Steps {
		fmt.Printf("\n== %s ==\n", st.Title)
		for _, l := range st.Lines {
			fmt.Printf("  %s\n", l)
		}
	}
	fmt.Println()
	sites := make([]int, 0, len(res.Finals))
	for s := range res.Finals {
		sites = append(sites, s)
	}
	sort.Ints(sites)
	for _, s := range sites {
		fmt.Printf("final at site %d: %q\n", s, res.Finals[s])
	}
}
