// Command reducebot is a load generator for a live notifier: it connects N
// bot editors over TCP, has them edit concurrently at a configurable rate,
// then waits for quiescence and verifies all replicas converged. Useful for
// soak-testing a reducesrv deployment and for demonstrating the constant
// clock size under real network load.
//
//	reducesrv -listen :7467 &
//	reducebot -connect 127.0.0.1:7467 -bots 8 -ops 200 -rate 50
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("connect", "127.0.0.1:7467", "notifier address")
	bots := flag.Int("bots", 4, "number of concurrent bot editors")
	ops := flag.Int("ops", 100, "operations per bot")
	rate := flag.Float64("rate", 20, "operations per second per bot")
	seed := flag.Int64("seed", 1, "randomness seed")
	insertRatio := flag.Float64("inserts", 0.8, "fraction of edits that insert")
	flag.Parse()

	editors := make([]*repro.Editor, *bots)
	for i := range editors {
		conn, err := transport.DialTCP(*addr)
		if err != nil {
			log.Fatalf("reducebot: dial: %v", err)
		}
		e, err := repro.Connect(conn, 0)
		if err != nil {
			log.Fatalf("reducebot: join: %v", err)
		}
		defer e.Close()
		editors[i] = e
		log.Printf("bot %d joined as site %d", i, e.Site())
	}

	interval := time.Duration(float64(time.Second) / *rate)
	start := time.Now()
	var wg sync.WaitGroup
	for i, e := range editors {
		wg.Add(1)
		go func(i int, e *repro.Editor) {
			defer wg.Done()
			r := rand.New(rand.NewSource(*seed + int64(i)))
			for k := 0; k < *ops; k++ {
				n := e.Len()
				if n == 0 || r.Float64() < *insertRatio {
					pos := 0
					if n > 0 {
						pos = r.Intn(n + 1)
					}
					if err := e.Insert(pos, fmt.Sprintf("[%d.%d]", e.Site(), k)); err != nil {
						log.Printf("bot %d: insert: %v", i, err)
						return
					}
				} else {
					pos := r.Intn(n)
					count := 1 + r.Intn(min(3, n-pos))
					if err := e.Delete(pos, count); err != nil {
						log.Printf("bot %d: delete: %v", i, err)
						return
					}
				}
				time.Sleep(interval)
			}
		}(i, e)
	}
	wg.Wait()
	genDone := time.Since(start)

	// Converge: poll until all replicas agree (counts are not visible
	// across the wire, so compare texts with a settle window).
	log.Printf("generation done in %v; waiting for convergence", genDone.Round(time.Millisecond))
	deadline := time.Now().Add(60 * time.Second)
	stable := 0
	for {
		same := true
		ref := editors[0].Text()
		for _, e := range editors[1:] {
			if e.Text() != ref {
				same = false
				break
			}
		}
		if same {
			stable++
			if stable >= 20 { // 20 consecutive identical polls
				break
			}
		} else {
			stable = 0
		}
		if time.Now().After(deadline) {
			log.Fatal("reducebot: replicas did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}

	total := *bots * *ops
	fmt.Printf("\nconverged: %d bots × %d ops = %d ops in %v wall\n",
		*bots, *ops, total, time.Since(start).Round(time.Millisecond))
	fmt.Printf("final document: %d runes\n", editors[0].Len())
	for _, e := range editors {
		fromServer, local := e.SV()
		if err := e.Err(); err != nil {
			log.Fatalf("site %d failed: %v", e.Site(), err)
		}
		fmt.Printf("site %d clock: [%d,%d]\n", e.Site(), fromServer, local)
	}
}
