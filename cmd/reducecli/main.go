// Command reducecli is a scriptable client for the REDUCE notifier
// (cmd/reducesrv). It reads edit commands from stdin and prints the replica
// after every change, making it usable both interactively and from scripts:
//
//	reducecli -connect 127.0.0.1:7467 <<'EOF'
//	i 0 hello world
//	d 5 6
//	show
//	EOF
//
// Commands:
//
//	i <pos> <text...>   insert text at rune position pos
//	d <pos> <count>     delete count runes at pos
//	r <pos> <count> <text...>  replace count runes at pos with text
//	a <text...>         append text at the end
//	u                   undo the most recent local edit
//	sel <anchor> <head> set and share the selection
//	who                 print known remote selections
//	load <file>         replace the document with a file's contents (diffed)
//	show                print the replica and the 2-element state vector
//	sleep <ms>          pause (for scripting concurrent sessions)
//	quit                leave the session
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("connect", "127.0.0.1:7467", "notifier address")
	site := flag.Int("site", 0, "requested site id (0 = auto-assign)")
	follow := flag.Bool("follow", false, "print every remote change as it arrives")
	flag.Parse()

	conn, err := transport.DialTCP(*addr)
	if err != nil {
		log.Fatalf("reducecli: %v", err)
	}
	ed, err := repro.Connect(conn, *site, core.WithClientUndo())
	if err != nil {
		log.Fatalf("reducecli: %v", err)
	}
	defer ed.Close()
	log.Printf("joined as site %d; document is %d runes", ed.Site(), ed.Len())
	if *follow {
		ed.OnChange(func(text string) {
			fmt.Printf("[change] %q\n", text)
		})
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		if err := runCommand(ed, fields); err != nil {
			if err == errQuit {
				break
			}
			log.Printf("error: %v", err)
		}
		if err := ed.Err(); err != nil {
			log.Fatalf("session failed: %v", err)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reducecli: stdin: %v", err)
	}
}

var errQuit = fmt.Errorf("quit")

func runCommand(ed *repro.Editor, fields []string) error {
	switch fields[0] {
	case "i", "insert":
		if len(fields) < 3 {
			return fmt.Errorf("usage: i <pos> <text>")
		}
		pos, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if err := ed.Insert(pos, fields[2]); err != nil {
			return err
		}
		fmt.Printf("%q\n", ed.Text())
	case "d", "delete":
		if len(fields) < 3 {
			return fmt.Errorf("usage: d <pos> <count>")
		}
		pos, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return err
		}
		if err := ed.Delete(pos, count); err != nil {
			return err
		}
		fmt.Printf("%q\n", ed.Text())
	case "a", "append":
		if len(fields) < 2 {
			return fmt.Errorf("usage: a <text>")
		}
		text := strings.Join(fields[1:], " ")
		if err := ed.Insert(ed.Len(), text); err != nil {
			return err
		}
		fmt.Printf("%q\n", ed.Text())
	case "r", "replace":
		if len(fields) < 3 {
			return fmt.Errorf("usage: r <pos> <count> <text>")
		}
		rest := strings.SplitN(fields[2], " ", 2)
		pos, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		count, err := strconv.Atoi(rest[0])
		if err != nil {
			return err
		}
		text := ""
		if len(rest) > 1 {
			text = rest[1]
		}
		if err := ed.Replace(pos, count, text); err != nil {
			return err
		}
		fmt.Printf("%q\n", ed.Text())
	case "u", "undo":
		if err := ed.Undo(); err != nil {
			return err
		}
		fmt.Printf("%q\n", ed.Text())
	case "sel":
		if len(fields) < 3 {
			return fmt.Errorf("usage: sel <anchor> <head>")
		}
		anchor, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		head, err := strconv.Atoi(fields[2])
		if err != nil {
			return err
		}
		ed.SetSelection(anchor, head)
		if err := ed.ShareSelection(); err != nil {
			return err
		}
	case "who":
		for _, rp := range ed.Presences() {
			fmt.Printf("site %d selects [%d,%d)\n", rp.Site, rp.Selection.Anchor, rp.Selection.Head)
		}
	case "load":
		if len(fields) < 2 {
			return fmt.Errorf("usage: load <file>")
		}
		b, err := os.ReadFile(fields[1])
		if err != nil {
			return err
		}
		if err := ed.SetText(string(b)); err != nil {
			return err
		}
		fmt.Printf("loaded %d bytes\n", len(b))
	case "show":
		fromServer, local := ed.SV()
		fmt.Printf("site %d, SV=[%d,%d]: %q\n", ed.Site(), fromServer, local, ed.Text())
	case "sleep":
		if len(fields) < 2 {
			return fmt.Errorf("usage: sleep <ms>")
		}
		ms, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		time.Sleep(time.Duration(ms) * time.Millisecond)
	case "quit", "q":
		return errQuit
	default:
		return fmt.Errorf("unknown command %q (i/d/a/show/sleep/quit)", fields[0])
	}
	return nil
}
