// Command reducesrv runs the notifier (site 0) of the Web-based REDUCE
// group editor as a TCP daemon — the role the paper's Java notifier
// application plays at the Web server machine (Fig. 1).
//
//	reducesrv -listen :7467 -text "initial document"
//
// Editors connect with cmd/reducecli (or any client of the wire protocol).
// With -debug the process also serves a live introspection endpoint
// (/metricz, /tracez, pprof, expvar; poll it with cmd/cvcstat):
//
//	reducesrv -listen :7467 -debug 127.0.0.1:7468
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/transport/netpoll"
)

func main() {
	log.SetFlags(0)
	listen := flag.String("listen", "127.0.0.1:7467", "address to listen on")
	text := flag.String("text", "", "initial document text")
	file := flag.String("file", "", "load the initial document from a file (overrides -text)")
	relay := flag.Bool("unsafe-relay", false, "ablation: relay ORIGINAL operations (breaks consistency; for experiments)")
	status := flag.Duration("status", 10*time.Second, "status print interval (0 disables)")
	journalPath := flag.String("journal", "", "persist the session to this journal file (recovers from it on restart)")
	multi := flag.Bool("multi", false, "serve many independent documents (clients pick one by session name; see internal/server)")
	debug := flag.String("debug", "", "serve /metricz, /tracez, pprof and expvar on this address (empty disables)")
	traceOn := flag.Bool("trace", false, "start with causality-decision tracing enabled (needs -debug; toggle later via POST /tracez?enable=)")
	writerPool := flag.Int("writer-pool", 0, "drain outbound queues with this many shared writer goroutines (-1 = GOMAXPROCS, 0 = one dedicated writer per connection)")
	idleDehydrate := flag.Duration("idle-dehydrate", 0, "with -multi: park sessions idle for this long into compact checkpoints (0 disables)")
	poller := flag.String("poller", "auto", "TCP readiness poller: auto (use it when the platform has one), on (require it), off (dedicated readers)")
	pollerShards := flag.Int("poller-shards", 0, "split the readiness poller into this many epoll instances (0 = platform default, min(GOMAXPROCS, 4); needs a poller-capable platform)")
	dispatchShards := flag.Int("dispatch-shards", 0, "split the writer-pool and dispatcher ready rings into this many work-stealing shards (0 = one per worker; needs -writer-pool)")
	fanoutThreshold := flag.Int("fanout-threshold", 0, "broadcasts to at least this many destinations fan out in parallel across pool shards (0 = default 16, negative = always serial; needs -writer-pool)")
	spanSample := flag.Int("span-sample", 0, "trace every Nth operation's lifecycle (stage latencies at /spanz; 0 disables; needs -debug)")
	sloP99 := flag.Duration("slo-p99", 0, "SLO flight recorder: dump a diagnostic bundle when the windowed p99 of receive.ns or span.total.ns exceeds this (0 disables; needs -debug)")
	sloDir := flag.String("slo-dir", "slo-bundles", "directory receiving flight-recorder bundles")
	flag.Parse()

	initial := *text
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			log.Fatalf("reducesrv: %v", err)
		}
		initial = string(b)
	}

	// The poller knob decides which listener feeds the server: poller-backed
	// connections are EventConns (zero dedicated reader goroutines once a
	// dispatcher runs, i.e. with -writer-pool), dedicated-reader ones are
	// not. "auto" is the capability probe; "on" refuses to run degraded.
	var ln transport.Listener
	var err error
	switch *poller {
	case "auto", "on":
		if *poller == "on" && !transport.PollerCapable() {
			log.Fatalf("reducesrv: -poller=on but this platform has no readiness poller")
		}
		if *pollerShards > 0 {
			// An explicit shard count needs its own poller: the process-wide
			// default is built lazily with the platform default shard count.
			if !transport.PollerCapable() {
				log.Fatalf("reducesrv: -poller-shards needs a poller-capable platform")
			}
			var pl *netpoll.Poller
			if pl, err = netpoll.NewPoller(netpoll.WithPollerShards(*pollerShards)); err != nil {
				log.Fatalf("reducesrv: -poller-shards: %v", err)
			}
			ln, err = netpoll.ListenTCP(*listen, netpoll.WithPoller(pl))
		} else {
			ln, err = transport.ListenEventTCP(*listen)
		}
	case "off":
		if *pollerShards > 0 {
			log.Fatalf("reducesrv: -poller-shards conflicts with -poller=off")
		}
		ln, err = transport.ListenTCP(*listen)
	default:
		log.Fatalf("reducesrv: -poller=%q (want auto, on, or off)", *poller)
	}
	if err != nil {
		log.Fatalf("reducesrv: listen: %v", err)
	}
	if transport.PollerCapable() && *poller != "off" {
		log.Printf("reducesrv: TCP readiness poller active (reads are epoll-driven)")
	}
	var opts []core.ServerOption
	if *relay {
		opts = append(opts, core.WithServerMode(core.ModeRelay))
		log.Printf("WARNING: relay mode — operations are not transformed; divergence expected")
	}

	// Observability is opt-in: without -debug no registry or ring exists and
	// the engines run exactly the uninstrumented hot path.
	var reg *obs.Registry
	var ring *obs.DecisionRing
	if *debug != "" {
		reg = obs.NewRegistry("reducesrv")
		ring = obs.NewDecisionRing(obs.DefaultRingCapacity)
		ring.SetEnabled(*traceOn)
	} else if *traceOn {
		log.Fatalf("reducesrv: -trace needs -debug")
	}

	// Lifecycle tracing samples every Nth client op. The server never sees
	// the editor's remote-integrate stamp (editors are separate processes),
	// so spans complete at the broadcast write.
	var spans *span.Tracer
	if *spanSample > 0 {
		if reg == nil {
			log.Fatalf("reducesrv: -span-sample needs -debug")
		}
		spans = span.NewTracer(reg, span.Config{
			SampleEvery:   uint64(*spanSample),
			FinishOnWrite: true,
		})
		spans.SetEnabled(true)
		log.Printf("reducesrv: tracing 1/%d op lifecycles (/spanz)", *spanSample)
	}
	if *sloP99 > 0 && reg == nil {
		log.Fatalf("reducesrv: -slo-p99 needs -debug")
	}

	if *writerPool == 0 && (*dispatchShards != 0 || *fanoutThreshold != 0) {
		log.Fatalf("reducesrv: -dispatch-shards and -fanout-threshold need -writer-pool (the sharded rings live in the lean connection layer)")
	}

	if *multi {
		if *journalPath != "" {
			log.Fatalf("reducesrv: -journal is not supported with -multi (per-session journals are not implemented)")
		}
		runMulti(ln, initial, *status, *debug, reg, ring, spans, *sloP99, *sloDir, opts, *writerPool, *dispatchShards, *fanoutThreshold, *idleDehydrate)
		return
	}
	if *idleDehydrate > 0 {
		log.Fatalf("reducesrv: -idle-dehydrate needs -multi (the single-session notifier stays resident)")
	}

	if reg != nil {
		opts = append(opts, core.WithServerMetrics(trace.MetricsOn(reg)), core.WithServerDecisionRing(ring, ""))
	}
	if spans != nil {
		opts = append(opts, core.WithServerSpans(spans))
	}
	var nt *repro.Notifier
	switch {
	case *journalPath != "":
		if *writerPool != 0 {
			log.Fatalf("reducesrv: -writer-pool is not supported with -journal yet")
		}
		nt, err = repro.ServeWithJournal(ln, initial, *journalPath, opts...)
		if err == nil {
			log.Printf("reducesrv: journaling to %s", *journalPath)
		}
	case *writerPool != 0:
		// The lean connection layer: pooled writers (and, on event-capable
		// transports, dispatched readers — TCP keeps dedicated readers).
		nt, err = repro.ServeLean(ln, initial,
			repro.LeanOptions{WriterPool: *writerPool, EventDispatch: *writerPool,
				DispatchShards: *dispatchShards, FanoutThreshold: *fanoutThreshold}, opts...)
	default:
		nt, err = repro.Serve(ln, initial, opts...)
	}
	if err != nil {
		log.Fatalf("reducesrv: %v", err)
	}
	log.Printf("reducesrv: notifier listening on %s (%d bytes of initial text)", nt.Addr(), len(initial))
	if reg != nil {
		nt.Observe(reg)
		if spans != nil {
			nt.TraceSpans(spans)
		}
		ready := func() (bool, string) {
			return true, fmt.Sprintf("sites=%d", len(nt.Sites()))
		}
		serveDebug(*debug, reg, ring, spans, ready)
		startFlightRecorder(reg, ring, spans, *sloP99, *sloDir)
	}

	if *status > 0 {
		go func() {
			for range time.Tick(*status) {
				log.Printf("status: %s", nt)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println()
	log.Printf("reducesrv: shutting down; final document:\n%s", nt.Text())
	_ = nt.Close()
}

// runMulti serves many documents concurrently: each session name maps to an
// independent notifier engine on its own goroutine (internal/server), so
// unrelated documents scale across cores instead of sharing one lock.
func runMulti(ln transport.Listener, initial string, status time.Duration, debug string, reg *obs.Registry, ring *obs.DecisionRing, spans *span.Tracer, sloP99 time.Duration, sloDir string, opts []core.ServerOption, writerPool, dispatchShards, fanoutThreshold int, idleDehydrate time.Duration) {
	mopts := []server.ManagerOption{
		server.WithInitialText(initial),
		server.WithEngineOptions(opts...),
	}
	if reg != nil {
		mopts = append(mopts, server.WithObservability(reg), server.WithDecisionRing(ring))
	}
	if spans != nil {
		mopts = append(mopts, server.WithSpanTracer(spans))
	}
	if idleDehydrate > 0 {
		mopts = append(mopts, server.WithIdleDehydrate(idleDehydrate))
		log.Printf("reducesrv: sessions idle for %v dehydrate to checkpoints", idleDehydrate)
	}
	mgr := server.NewManager(mopts...)
	var sopts []server.ServeOption
	if writerPool != 0 {
		sopts = append(sopts, server.WithWriterPool(writerPool), server.WithEventDispatch(writerPool),
			server.WithDispatchShards(dispatchShards), server.WithFanoutThreshold(fanoutThreshold))
	}
	svc := server.Serve(ln, mgr, sopts...)
	log.Printf("reducesrv: multi-session notifier listening on %s (%d bytes of initial text per new session)",
		svc.Addr(), len(initial))
	if reg != nil {
		ready := func() (bool, string) {
			return true, fmt.Sprintf("sessions=%d", mgr.Len())
		}
		serveDebug(debug, reg, ring, spans, ready)
		startFlightRecorder(reg, ring, spans, sloP99, sloDir)
	}

	if status > 0 {
		go func() {
			for range time.Tick(status) {
				log.Printf("status: %s", svc)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println()
	for _, st := range mgr.Stats() {
		log.Printf("reducesrv: session %q: %d sites, %d ops, %d runes", st.Name, st.Sites, st.Ops, st.Doc)
	}
	_ = svc.Close()
	_ = mgr.Close()
}

// serveDebug mounts the introspection endpoint in the background. Debug HTTP
// failing must not take the notifier down — it logs and moves on.
func serveDebug(addr string, reg *obs.Registry, ring *obs.DecisionRing, spans *span.Tracer, ready func() (bool, string)) {
	hopts := []obs.HandlerOption{obs.WithHealth(ready)}
	if spans != nil {
		hopts = append(hopts, obs.WithEndpoint("/spanz", spans.Handler()))
	}
	h := server.DebugHandler(reg, ring, hopts...)
	log.Printf("reducesrv: debug endpoint on http://%s/metricz (tracing %v)", addr, ring.Enabled())
	go func() {
		if err := http.ListenAndServe(addr, h); err != nil {
			log.Printf("reducesrv: debug endpoint: %v", err)
		}
	}()
}

// startFlightRecorder launches the SLO watcher when -slo-p99 is set. spans
// and ring may be nil — their bundle files are simply absent.
func startFlightRecorder(reg *obs.Registry, ring *obs.DecisionRing, spans *span.Tracer, p99 time.Duration, dir string) {
	if p99 <= 0 {
		return
	}
	fr := span.NewFlightRecorder(reg.Snapshot, spans, ring, span.FlightConfig{
		Dir:         dir,
		ThresholdNs: p99.Nanoseconds(),
	})
	fr.Start()
	log.Printf("reducesrv: SLO flight recorder armed (p99 > %v dumps to %s)", p99, dir)
}
