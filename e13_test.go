package repro

// E13 — connection capacity of the goroutine-lean layer. The classic layout
// spends two goroutines (reader + writer) and a resident session per
// connection; the lean layout (shared writer pool, event dispatcher, idle
// dehydration) spends zero goroutines on an idle in-memory connection and
// parks idle sessions into compact checkpoints. The smoke test pins the
// O(pool) goroutine claim at 1k connections; BenchmarkE13IdleConnections
// measures goroutines/conn, heap bytes/idle conn, and the active-path p99
// round-trip while the idle fleet is attached (EXPERIMENTS.md E13).

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/transport/netpoll"
	"repro/internal/wire"
)

// joinIdleSession dials a raw connection into the named session and consumes
// the join response. The connection then sits idle: no client-side goroutine
// (neither transport needs one until someone blocks in Recv), and with the
// lean server layer no server-side goroutine either — for mem always, for
// TCP when the readiness poller carries the conn.
func joinIdleSession(dial func() (transport.Conn, error), name string) (transport.Conn, error) {
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	if err := conn.Send(wire.SessionJoinReq{Session: name}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if _, err := conn.Recv(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return conn, nil
}

// waitAllParked polls until every session has dehydrated.
func waitAllParked(tb testing.TB, mgr *server.Manager, timeout time.Duration) {
	tb.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resident := 0
		for _, st := range mgr.Stats() {
			if st.Resident {
				resident++
			}
		}
		if resident == 0 {
			return
		}
		if time.Now().After(deadline) {
			tb.Fatalf("%d sessions still resident after %v", resident, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestE13GoroutineLean is the capacity smoke: 1000 idle connections across 50
// sessions on the lean layer must cost O(pool) goroutines — not O(conns) —
// once the fleet parks, and the server must still serve live traffic with the
// idle fleet attached.
func TestE13GoroutineLean(t *testing.T) {
	const (
		conns    = 1000
		sessions = 50
	)
	ln := transport.NewMemListener()
	mgr := server.NewManager(server.WithIdleDehydrate(20 * time.Millisecond))
	svc := server.Serve(ln, mgr, server.WithWriterPool(-1), server.WithEventDispatch(-1))
	defer mgr.Close()
	defer svc.Close()

	g0 := runtime.NumGoroutine()
	held := make([]transport.Conn, 0, conns)
	defer func() {
		for _, c := range held {
			_ = c.Close()
		}
	}()
	for i := 0; i < conns; i++ {
		c, err := joinIdleSession(ln.Dial, fmt.Sprintf("cold%02d", i%sessions))
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		held = append(held, c)
	}
	waitAllParked(t, mgr, 30*time.Second)

	// Transient worker/GC goroutines allow some slack, but the bound must be
	// far below one-per-connection (the classic layout would add 2*conns).
	if grew := runtime.NumGoroutine() - g0; grew > 16 {
		t.Fatalf("goroutines grew by %d for %d idle connections; want O(pool) <= 16", grew, conns)
	}

	assertHotSessionConverges(t, ln.Dial)
}

// assertHotSessionConverges runs live two-editor traffic with whatever idle
// fleet the caller attached still in place.
func assertHotSessionConverges(t *testing.T, dial func() (transport.Conn, error)) {
	t.Helper()
	ca, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ConnectSession(ca, "hot", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cb, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	bEd, err := ConnectSession(cb, "hot", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bEd.Close()
	for i := 0; i < 20; i++ {
		if err := a.Insert(i, "h"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for bEd.Len() != 20 || a.Len() != 20 {
		if time.Now().After(deadline) {
			t.Fatalf("hot session stalled under idle fleet: %d/%d runes", a.Len(), bEd.Len())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestE13PollerTCP is the tentpole gate on real sockets: an idle TCP fleet
// carried by the epoll poller must cost zero goroutines per connection —
// the same O(pool) bound the mem transport gets — and live TCP traffic must
// still converge with the fleet attached. Skipped where no poller exists
// (TestPollerFallback covers those platforms).
func TestE13PollerTCP(t *testing.T) {
	if !netpoll.Available() {
		t.Skip("no readiness poller on this platform")
	}
	const (
		conns    = 512
		sessions = 16
	)
	p, err := netpoll.NewPoller()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ln, err := netpoll.ListenTCP("127.0.0.1:0", netpoll.WithPoller(p))
	if err != nil {
		t.Fatal(err)
	}
	mgr := server.NewManager(server.WithIdleDehydrate(20 * time.Millisecond))
	svc := server.Serve(ln, mgr, server.WithWriterPool(-1), server.WithEventDispatch(-1))
	defer mgr.Close()
	defer svc.Close()
	addr := ln.Addr()
	dial := func() (transport.Conn, error) { return transport.DialTCP(addr) }

	g0 := runtime.NumGoroutine()
	held := make([]transport.Conn, 0, conns)
	defer func() {
		for _, c := range held {
			_ = c.Close()
		}
	}()
	for i := 0; i < conns; i++ {
		c, err := joinIdleSession(dial, fmt.Sprintf("cold%02d", i%sessions))
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		held = append(held, c)
	}
	waitAllParked(t, mgr, 30*time.Second)

	if grew := runtime.NumGoroutine() - g0; grew > 16 {
		t.Fatalf("goroutines grew by %d for %d idle TCP connections; want O(pool) <= 16", grew, conns)
	}

	assertHotSessionConverges(t, dial)
}

// TestPollerFallback forces the -poller=off path: a plain dedicated-reader
// TCP listener under the same lean server options. The E13 gate assertions
// re-run with the fallback's own goroutine budget — exactly one reader per
// connection, since plain tcpConns are not EventConns — and live traffic
// must converge identically. This is the path every non-Linux platform runs,
// so the test runs everywhere.
func TestPollerFallback(t *testing.T) {
	const (
		conns    = 128
		sessions = 8
	)
	ln, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mgr := server.NewManager(server.WithIdleDehydrate(20 * time.Millisecond))
	svc := server.Serve(ln, mgr, server.WithWriterPool(-1), server.WithEventDispatch(-1))
	defer mgr.Close()
	defer svc.Close()
	addr := ln.Addr()
	dial := func() (transport.Conn, error) { return transport.DialTCP(addr) }

	g0 := runtime.NumGoroutine()
	held := make([]transport.Conn, 0, conns)
	defer func() {
		for _, c := range held {
			_ = c.Close()
		}
	}()
	for i := 0; i < conns; i++ {
		c, err := joinIdleSession(dial, fmt.Sprintf("cold%02d", i%sessions))
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		held = append(held, c)
	}
	waitAllParked(t, mgr, 30*time.Second)

	grew := runtime.NumGoroutine() - g0
	if grew < conns {
		t.Fatalf("fallback grew %d goroutines for %d conns; want a dedicated reader each", grew, conns)
	}
	if grew > conns+16 {
		t.Fatalf("fallback grew %d goroutines for %d conns; want ~1/conn + O(pool)", grew, conns)
	}

	assertHotSessionConverges(t, dial)
}

// BenchmarkE13IdleConnections holds an idle fleet (E13_CONNS, default 2048;
// the cmd/cvcbench e13 mode drives this to 100k) with a ~1% active set and
// reports capacity metrics: goroutines per idle connection, heap bytes per
// idle connection (after the sessions park), and the p99 editor→editor
// round-trip on the active set while the fleet is attached.
func BenchmarkE13IdleConnections(b *testing.B) {
	ln := transport.NewMemListener()
	runE13IdleBench(b, e13BenchConns(), ln, ln.Dial)
}

// BenchmarkE13IdleConnectionsTCP is the same capacity measurement over real
// loopback TCP. On poller-capable platforms the fleet rides the epoll poller
// (0 goroutines/conn); E13_TCP_POLLER=off — or a platform without a poller —
// measures the dedicated-reader baseline instead (1 goroutine/conn), which
// is the denominator of the "active p99 within 2× of dedicated" acceptance
// gate.
func BenchmarkE13IdleConnectionsTCP(b *testing.B) {
	conns := e13BenchConns()
	raiseTestNoFile(uint64(2*conns) + 512)
	var ln transport.Listener
	var err error
	if netpoll.Available() && os.Getenv("E13_TCP_POLLER") != "off" {
		ln, err = netpoll.ListenTCP("127.0.0.1:0")
	} else {
		ln, err = transport.ListenTCP("127.0.0.1:0")
	}
	if err != nil {
		b.Fatal(err)
	}
	addr := ln.Addr()
	runE13IdleBench(b, conns, ln, func() (transport.Conn, error) { return transport.DialTCP(addr) })
}

// e13BenchConns sizes the idle fleet (E13_CONNS, default 2048; cvcbench's
// e13 mode drives the same measurement to ~100k).
func e13BenchConns() int {
	conns := 2048
	if s := os.Getenv("E13_CONNS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			conns = v
		}
	}
	return conns
}

func runE13IdleBench(b *testing.B, conns int, ln transport.Listener, dial func() (transport.Conn, error)) {
	const perSession = 32
	sessions := (conns + perSession - 1) / perSession

	mgr := server.NewManager(server.WithIdleDehydrate(10 * time.Millisecond))
	svc := server.Serve(ln, mgr, server.WithWriterPool(-1), server.WithEventDispatch(-1))
	defer mgr.Close()
	defer svc.Close()

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	g0 := runtime.NumGoroutine()

	held := make([]transport.Conn, 0, conns)
	defer func() {
		for _, c := range held {
			_ = c.Close()
		}
	}()
	for i := 0; i < conns; i++ {
		c, err := joinIdleSession(dial, fmt.Sprintf("cold%04d", i%sessions))
		if err != nil {
			b.Fatalf("conn %d: %v", i, err)
		}
		held = append(held, c)
	}
	waitAllParked(b, mgr, time.Minute)

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	bytesPer := float64(0)
	if m1.HeapAlloc > m0.HeapAlloc {
		bytesPer = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(conns)
	}
	// Reported after the timed loop: ResetTimer deletes user metrics.
	goroutinesPer := float64(runtime.NumGoroutine()-g0) / float64(conns)

	// The ~1% active set: editor pairs in hot sessions, round-robin ops.
	nPairs := conns / 200 // 2 editors per pair ≈ 1% of conns
	if nPairs < 1 {
		nPairs = 1
	}
	type pair struct {
		a, b *Editor
		seen int
	}
	hot := make([]*pair, nPairs)
	for i := range hot {
		name := fmt.Sprintf("hot%02d", i)
		ca, err := dial()
		if err != nil {
			b.Fatal(err)
		}
		a, err := ConnectSession(ca, name, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		cb, err := dial()
		if err != nil {
			b.Fatal(err)
		}
		e2, err := ConnectSession(cb, name, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer e2.Close()
		hot[i] = &pair{a: a, b: e2}
	}

	b.ResetTimer()
	lat := make([]time.Duration, 0, b.N)
	for i := 0; i < b.N; i++ {
		p := hot[i%len(hot)]
		start := time.Now()
		if err := p.a.Insert(0, "x"); err != nil {
			b.Fatal(err)
		}
		p.seen++
		// Spin briefly, then block. The mem transport delivers through
		// channels within a few yields, but an unbounded Gosched spin keeps
		// the only P runnable on GOMAXPROCS=1, so TCP readiness sits in the
		// runtime netpoller until sysmon's forced ~10ms poll — the TCP legs
		// would measure scheduler starvation (two hops ≈ 20ms/op) instead
		// of transport latency. Sleeping parks the P in netpoll, which
		// delivers edges immediately.
		for spin := 0; p.b.Len() != p.seen; spin++ {
			if spin < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(5 * time.Microsecond)
			}
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	b.ReportMetric(goroutinesPer, "goroutines_conn")
	b.ReportMetric(bytesPer, "B_idleconn")
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		b.ReportMetric(float64(lat[len(lat)*99/100]), "p99_ns")
	}
}
