package repro

// E14 — stage-latency decomposition of one op's lifecycle over loopback TCP.
// Every editor and the server share one in-process span.Tracer, so a sampled
// op accumulates all thirteen stage stamps in a single record: the client
// stages from the originating editor (generate → write), the server stages
// from the poller/session actor (poll_wake → bcast_enqueue), and the
// finishing stamp from the first remote editor to integrate the broadcast.
// The test gates full stage coverage at N=128 clients; the benchmark reports
// the per-stage p50/p99 table EXPERIMENTS.md records.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/transport/netpoll"
)

// e14Session is one traced loopback-TCP session behind the session server.
type e14Session struct {
	reg    *obs.Registry
	tr     *span.Tracer
	mgr    *server.Manager
	svc    *server.Service
	ln     transport.Listener
	pl     *netpoll.Poller // private poller (epoll path only)
	eds    []*Editor
	poll   bool // server listener is the epoll path, so poll_wake fires
	shards int  // scheduling shard count (0 = package defaults)
}

// e14Shards reads the E14_SHARDS knob: the worker/shard count for the
// poller, the ready rings, and the writer pool. Unset (0) keeps every
// package default; 1 pins the single-ring/single-instance reference layout;
// check.sh gates the stage breakdown at both 1 and 4.
func e14Shards(tb testing.TB) int {
	v := os.Getenv("E14_SHARDS")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		tb.Fatalf("bad E14_SHARDS=%q", v)
	}
	return n
}

// startE14 brings up the lean session server on a loopback TCP listener
// (epoll-backed where the platform has it), attaches `sites` editors to one
// session, and wires every layer to a single SampleEvery=1 tracer. On the
// epoll path both the listener AND the client dials attach to one private
// poller: the in-process client readers then ride the poller's
// spin-then-park wakeups instead of each parking in the runtime netpoller
// (whose forced-poll quantization is exactly what E14 measures).
func startE14(tb testing.TB, sites int) *e14Session {
	tb.Helper()
	s := &e14Session{reg: obs.NewRegistry("e14"), shards: e14Shards(tb)}
	s.tr = span.NewTracer(s.reg, span.Config{SampleEvery: 1})

	if netpoll.Available() {
		pl, err := netpoll.NewPoller(netpoll.WithPollerShards(s.shards))
		if err != nil {
			tb.Fatal(err)
		}
		if s.ln, err = netpoll.ListenTCP("127.0.0.1:0", netpoll.WithPoller(pl)); err != nil {
			_ = pl.Close()
			tb.Fatal(err)
		}
		s.pl, s.poll = pl, true
	}
	if s.ln == nil {
		var err error
		if s.ln, err = transport.ListenTCP("127.0.0.1:0"); err != nil {
			tb.Fatal(err)
		}
	}
	workers := -1
	if s.shards > 0 {
		workers = s.shards
	}
	s.mgr = server.NewManager(server.WithSpanTracer(s.tr))
	s.svc = server.Serve(s.ln, s.mgr,
		server.WithWriterPool(workers), server.WithEventDispatch(workers),
		server.WithDispatchShards(s.shards))

	s.eds = make([]*Editor, sites)
	for i := range s.eds {
		var conn transport.Conn
		var err error
		if s.poll {
			conn, err = netpoll.DialTCP(s.ln.Addr(), netpoll.WithPoller(s.pl))
		} else {
			conn, err = transport.DialTCP(s.ln.Addr())
		}
		if err != nil {
			tb.Fatalf("dial %d: %v", i, err)
		}
		ed, err := ConnectSession(conn, "e14", 0)
		if err != nil {
			tb.Fatalf("join %d: %v", i, err)
		}
		ed.TraceSpans(s.tr)
		s.eds[i] = ed
	}
	tb.Cleanup(s.close)
	return s
}

func (s *e14Session) close() {
	for _, ed := range s.eds {
		_ = ed.Close()
	}
	s.svc.Close()
	s.mgr.Close()
	if s.pl != nil {
		_ = s.pl.Close()
	}
}

// waitFinished spins until the tracer has completed `want` spans — i.e. every
// traced op reached remote_integrate on some peer. Spin first, then sleep:
// under GOMAXPROCS=1 the netpoll dispatcher needs the scheduler to yield.
func waitFinished(tb testing.TB, tr *span.Tracer, want uint64, timeout time.Duration) {
	tb.Helper()
	deadline := time.Now().Add(timeout)
	for spins := 0; tr.Completed() < want; spins++ {
		if time.Now().After(deadline) {
			tb.Fatalf("only %d/%d spans finished after %v (in flight %d)",
				tr.Completed(), want, timeout, tr.InFlight())
		}
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(5 * time.Microsecond)
		}
	}
}

// e14StageTable renders the per-stage latency table from a registry snapshot,
// in pipeline order, the same decomposition cvcstat's stage view prints.
func e14StageTable(snap obs.Snapshot) string {
	us := func(ns uint64) string { return fmt.Sprintf("%.1f", float64(ns)/1e3) }
	var t stats.Table
	t.Header("stage", "count", "p50(us)", "p99(us)", "max(us)")
	row := func(name string, h obs.HistSnapshot, ok bool) {
		if !ok {
			t.Row(name, "-", "-", "-", "-")
			return
		}
		t.Row(name, h.Count, us(h.Quantile(0.5)), us(h.Quantile(0.99)), us(h.Max))
	}
	for i := 0; i < span.NumStages; i++ {
		name := span.Stage(i).Name()
		h, ok := snap.Hists[span.StageHistName(span.Stage(i))]
		row(name, h, ok && h.Count > 0)
	}
	h, ok := snap.Hists[span.HistTotal]
	row("total", h, ok)
	return t.String()
}

// TestE14StageBreakdown is the experiment gate: 128 TCP clients on one
// session, every op sampled, and after convergence every pipeline stage
// histogram holds exactly one delta per op — the full per-stage table the
// issue's acceptance asks for. generate anchors the span clock and records
// no delta; poll_wake appears only on the epoll path.
func TestE14StageBreakdown(t *testing.T) {
	sites := 128
	if testing.Short() {
		sites = 8
	}
	const nOps = 128
	raiseTestNoFile(uint64(2*sites) + 512)
	s := startE14(t, sites)

	// Spread generation across four origins so the client-side stamps are
	// not an artifact of one editor's sender.
	origins := s.eds[:4]
	for i := 0; i < nOps; i++ {
		ed := origins[i%len(origins)]
		if err := ed.Insert(ed.Len(), "x"); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if i%16 == 15 { // quiesce in bursts so queues stay bounded
			waitFinished(t, s.tr, uint64(i+1), 30*time.Second)
		}
	}
	waitFinished(t, s.tr, nOps, 30*time.Second)

	// Convergence: every replica holds all nOps runes.
	deadline := time.Now().Add(30 * time.Second)
	for _, ed := range s.eds {
		for ed.Len() != nOps {
			if time.Now().After(deadline) {
				t.Fatalf("editor stalled at %d/%d runes", ed.Len(), nOps)
			}
			time.Sleep(time.Millisecond)
		}
		if err := ed.Err(); err != nil {
			t.Fatal(err)
		}
	}

	snap := s.reg.Snapshot()
	if got := snap.Counters[span.CStarted]; got != nOps {
		t.Errorf("spans started = %d, want %d", got, nOps)
	}
	if got := snap.Counters[span.CEvicted]; got != 0 {
		t.Errorf("spans evicted = %d, want 0", got)
	}
	for i := 0; i < span.NumStages; i++ {
		st := span.Stage(i)
		h := snap.Hists[span.StageHistName(st)]
		var want uint64 = nOps
		switch {
		case st == span.StageGenerate:
			want = 0 // first stamp anchors the clock, no delta
		case st == span.StagePollWake && !s.poll:
			want = 0 // no readiness poller on this platform
		}
		if h.Count != want {
			t.Errorf("stage %s recorded %d deltas, want %d", st.Name(), h.Count, want)
		}
	}
	if h := snap.Hists[span.HistTotal]; h.Count != nOps {
		t.Errorf("span.total.ns count = %d, want %d", h.Count, nOps)
	}

	// The completed ring holds fully-stamped spans, newest first.
	for _, sp := range s.tr.Spans(8) {
		if !sp.Complete {
			t.Errorf("ring span site=%d seq=%d incomplete", sp.Site, sp.Seq)
		}
		for i := 0; i < span.NumStages; i++ {
			if span.Stage(i) == span.StagePollWake && !s.poll {
				continue
			}
			if sp.Stamps[i] == 0 {
				t.Errorf("span site=%d seq=%d missing stage %s", sp.Site, sp.Seq, span.Stage(i).Name())
			}
		}
	}

	t.Logf("E14 stage breakdown (%d clients, %d ops, poller=%v):\n%s",
		sites, nOps, s.poll, e14StageTable(snap))
}

// BenchmarkE14StageBreakdown drives b.N sampled ops through the full TCP
// pipeline (E14_CONNS clients, default 128) and reports the per-stage p99
// decomposition plus the end-to-end p50/p99 — the numbers EXPERIMENTS.md E14
// records. Pipelined with a bounded window so the benchmark measures the
// steady-state pipeline, not one op's round trip at a time.
func BenchmarkE14StageBreakdown(b *testing.B) {
	sites := 128
	if v := os.Getenv("E14_CONNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			b.Fatalf("bad E14_CONNS=%q", v)
		}
		sites = n
	}
	raiseTestNoFile(uint64(2*sites) + 512)
	s := startE14(b, sites)
	ed := s.eds[0]

	stealsBase := transport.DispatchSteals()
	fanoutBase := transport.FanoutParallel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ed.Insert(ed.Len(), "x"); err != nil {
			b.Fatalf("op %d: %v", i, err)
		}
		// Keep a small in-flight window: enough to overlap the pipeline
		// stages, small enough that the table reads as stage cost rather
		// than queueing delay.
		if window := uint64(i+1) - s.tr.Completed(); window > 16 {
			waitFinished(b, s.tr, uint64(i+1)-8, time.Minute)
		}
	}
	waitFinished(b, s.tr, uint64(b.N), time.Minute)
	b.StopTimer()

	snap := s.reg.Snapshot()
	for i := 0; i < span.NumStages; i++ {
		st := span.Stage(i)
		if h, ok := snap.Hists[span.StageHistName(st)]; ok && h.Count > 0 {
			b.ReportMetric(float64(h.Quantile(0.99)), st.Name()+"_p99_ns")
		}
	}
	if h, ok := snap.Hists[span.HistTotal]; ok && h.Count > 0 {
		b.ReportMetric(float64(h.Quantile(0.5)), "total_p50_ns")
		b.ReportMetric(float64(h.Quantile(0.99)), "total_p99_ns")
	}
	// Sharded-scheduling activity: cross-shard ready-ring steals and
	// parallel fan-outs per op (both 0 in the shards=1 reference layout).
	b.ReportMetric(float64(transport.DispatchSteals()-stealsBase)/float64(b.N), "steals_per_op")
	b.ReportMetric(float64(transport.FanoutParallel()-fanoutBase)/float64(b.N), "fanout_per_op")
}
