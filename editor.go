package repro

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs/span"
	"repro/internal/op"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Editor is a collaborating site: it keeps a local replica, applies local
// edits immediately (the paper's high-responsiveness requirement — no
// network on the local path), and reconciles remote operations in a
// background goroutine.
type Editor struct {
	conn transport.Conn
	snd  *transport.Sender

	mu       sync.Mutex
	client   *core.Client
	err      error
	closed   bool
	readOnly bool

	// Local cursor/selection, transformed through every operation
	// (selection.go).
	sel    Selection
	hasSel bool

	// Remote participants' selections (presence.go).
	remoteSel  map[int]Selection
	onPresence func(site int, sel Selection, active bool)

	onChange func(text string)

	// spans, when set (TraceSpans), starts a lifecycle span at generation
	// and finishes it at the remote end of the loop: a sampled local edit
	// carries its trace context to the notifier in the wire trailer, and a
	// relayed operation arriving back closes the span at remote_integrate.
	spans atomic.Pointer[span.Tracer]

	wg sync.WaitGroup
}

// Connect joins a session over an established connection. site requests a
// specific id; pass 0 to let the notifier assign one. The call blocks until
// the snapshot handshake completes.
func Connect(conn transport.Conn, site int, opts ...core.ClientOption) (*Editor, error) {
	return connect(conn, wire.JoinReq{Site: site, ReadOnly: false}, false, opts...)
}

// ConnectViewer joins as a read-only viewer: the editor tracks the document
// and presence like any participant, but every editing method returns
// ErrReadOnly and the notifier enforces the same server-side.
func ConnectViewer(conn transport.Conn, site int, opts ...core.ClientOption) (*Editor, error) {
	return connect(conn, wire.JoinReq{Site: site, ReadOnly: true}, true, opts...)
}

// ConnectSession joins the named document on a multi-session notifier
// (internal/server). The empty name is the default document, making this
// equivalent to Connect against such a server; single-session notifiers do
// not understand the message and will drop the connection.
func ConnectSession(conn transport.Conn, session string, site int, opts ...core.ClientOption) (*Editor, error) {
	return connect(conn, wire.SessionJoinReq{Session: session, Site: site}, false, opts...)
}

func connect(conn transport.Conn, join wire.Msg, readOnly bool, opts ...core.ClientOption) (*Editor, error) {
	if err := conn.Send(join); err != nil {
		return nil, fmt.Errorf("repro: join: %w", err)
	}
	m, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("repro: join: %w", err)
	}
	resp, ok := m.(wire.JoinResp)
	if !ok {
		return nil, fmt.Errorf("repro: expected snapshot, got %T", m)
	}
	e := &Editor{
		conn:     conn,
		snd:      transport.NewSender(conn, ErrClosed),
		readOnly: readOnly,
		client: core.NewClient(resp.Site, resp.Text,
			append([]core.ClientOption{core.WithClientResume(resp.LocalOps)}, opts...)...),
	}
	e.wg.Add(1)
	go e.readLoop()
	return e, nil
}

// TraceSpans mounts the op-lifecycle tracer on this editor: locally
// generated operations sampled by tr carry their trace context on the wire
// (stamping generate/send_enqueue/drain/encode/write here), and relayed
// operations destined for this editor stamp remote_integrate, completing
// spans the same tracer opened — in-process experiments share one tracer
// between client and server to see all thirteen stages.
func (e *Editor) TraceSpans(tr *span.Tracer) {
	e.spans.Store(tr)
	e.snd.SetTracer(tr)
}

// Site returns the site id assigned by the notifier.
func (e *Editor) Site() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.client.Site()
}

// Text returns the current local replica.
func (e *Editor) Text() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.client.Text()
}

// Len returns the replica length in runes.
func (e *Editor) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.client.DocLen()
}

// SV returns the current 2-element state vector — the entirety of this
// site's clock state.
func (e *Editor) SV() (fromServer, local uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sv := e.client.SV()
	return sv.FromServer, sv.Local
}

// OnChange registers a callback invoked (on the editor's goroutines, without
// internal locks held) after every change to the replica, local or remote.
func (e *Editor) OnChange(fn func(text string)) {
	e.mu.Lock()
	e.onChange = fn
	e.mu.Unlock()
}

// Err returns the sticky background error, if any (nil after a clean Close).
func (e *Editor) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Insert applies Insert[text, pos] locally and propagates it.
func (e *Editor) Insert(pos int, text string) error {
	return e.edit(func(c *core.Client) (core.ClientMsg, error) {
		return c.Insert(pos, text)
	})
}

// Delete applies Delete[count, pos] locally and propagates it.
func (e *Editor) Delete(pos, count int) error {
	return e.edit(func(c *core.Client) (core.ClientMsg, error) {
		return c.Delete(pos, count)
	})
}

// Replace applies a combined delete+insert at pos — the common "type over a
// selection" action — as a single atomic operation.
func (e *Editor) Replace(pos, count int, text string) error {
	return e.edit(func(c *core.Client) (core.ClientMsg, error) {
		o, err := op.NewReplace(c.DocLen(), pos, count, text)
		if err != nil {
			return core.ClientMsg{}, err
		}
		return c.Generate(o)
	})
}

// SetText replaces the whole document with text, expressed as a minimal
// single-region edit (common prefix/suffix preserved) so concurrent remote
// edits outside the changed region survive — how an editor integrates an
// external reload or paste-over-all. A no-change SetText is a no-op.
func (e *Editor) SetText(text string) error {
	err := e.edit(func(c *core.Client) (core.ClientMsg, error) {
		d := op.Diff(c.Text(), text)
		if d.IsNoop() {
			return core.ClientMsg{}, errNoopEdit
		}
		return c.Generate(d)
	})
	if errors.Is(err, errNoopEdit) {
		return nil
	}
	return err
}

// errNoopEdit marks a SetText that changes nothing; swallowed by SetText.
var errNoopEdit = errors.New("repro: no change")

// Undo reverses this editor's most recent local edit (including a previous
// undo, giving redo). It requires the session to have been joined with
// core.WithClientUndo.
func (e *Editor) Undo() error {
	return e.edit(func(c *core.Client) (core.ClientMsg, error) {
		return c.Undo()
	})
}

func (e *Editor) edit(gen func(*core.Client) (core.ClientMsg, error)) error {
	if e.readOnly {
		return ErrReadOnly
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		return err
	}
	m, err := gen(e.client)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	e.transformSelection(m.Op, true)
	e.advanceRemoteSelections(m.Op)
	ctx := e.spans.Load().Start(m.Ref.Site, m.Ref.Seq)
	// Enqueued under the lock so concurrent edits leave in generation
	// order — the FIFO property the clocks rely on. The queue never
	// blocks, so the local path stays as fast as a single-user editor.
	sendErr := e.snd.Enqueue(wire.ClientOp{From: m.From, TS: m.TS, Ref: m.Ref, Op: m.Op, Trace: ctx})
	var text string
	fn := e.onChange
	if fn != nil {
		text = e.client.Text()
	}
	e.mu.Unlock()

	if fn != nil {
		fn(text)
	}
	if sendErr != nil {
		e.fail(fmt.Errorf("repro: propagate: %w", sendErr))
		return sendErr
	}
	return nil
}

// Close leaves the session and tears the connection down.
func (e *Editor) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	site := e.client.Site()
	e.mu.Unlock()

	_ = e.snd.Enqueue(wire.Leave{Site: site})
	e.snd.Close() // drains the queue, including the Leave
	_ = e.conn.Close()
	e.wg.Wait()
	return nil
}

func (e *Editor) fail(err error) {
	e.mu.Lock()
	if e.err == nil && !e.closed {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *Editor) readLoop() {
	defer e.wg.Done()
	for {
		m, err := e.conn.Recv()
		if err != nil {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if !closed {
				e.fail(fmt.Errorf("repro: connection lost: %w", err))
			}
			return
		}
		switch v := m.(type) {
		case wire.ServerPresence:
			e.mu.Lock()
			cb := e.handlePresence(v)
			e.mu.Unlock()
			if cb != nil {
				cb()
			}
		case wire.ServerOp:
			if !e.integrate(v) {
				return
			}
		case wire.OpBatch:
			// Decode fan-out of a coalesced frame: integrate in order, with
			// the same per-operation callbacks a frame-per-op stream gives.
			for _, so := range v.Ops {
				if !e.integrate(so) {
					return
				}
			}
		default:
			e.fail(fmt.Errorf("repro: unexpected %T from notifier", m))
			return
		}
	}
}

// integrate applies one relayed operation, reporting false on failure
// (after recording the sticky error).
func (e *Editor) integrate(so wire.ServerOp) bool {
	e.mu.Lock()
	res, err := e.client.Integrate(core.ServerMsg{
		To: so.To, Op: so.Op, TS: so.TS, Ref: so.Ref, OrigRef: so.OrigRef,
	})
	var text string
	var fn func(string)
	if err == nil {
		e.transformSelection(res.Executed, false)
		e.advanceRemoteSelections(res.Executed)
		// Materialize the document only when someone is listening: Text()
		// walks the whole rope, and with no onChange registered that walk
		// would dominate the integrate path at large documents.
		if fn = e.onChange; fn != nil {
			text = e.client.Text()
		}
	}
	e.mu.Unlock()
	if err != nil {
		e.fail(fmt.Errorf("repro: integrate: %w", err))
		return false
	}
	// Close the loop: if this editor's tracer opened (or adopted) the span,
	// the relayed copy arriving here is the last observable stage.
	e.spans.Load().FinishAt(so.Trace, span.StageRemoteIntegrate)
	if fn != nil {
		fn(text)
	}
	return true
}
