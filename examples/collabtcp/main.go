// Collabtcp: a real collaborative session over TCP on localhost — one
// notifier daemon and four concurrent editor goroutines, each typing its own
// lines while everyone else's edits stream in. Demonstrates the Web-REDUCE
// deployment shape (paper Fig. 1) end to end: star topology, FIFO TCP links,
// 2-integer timestamps on every message.
//
//	go run ./examples/collabtcp
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)

	ln, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatalf("this environment forbids loopback sockets: %v", err)
	}
	notifier, err := repro.Serve(ln, "== meeting notes ==\n")
	if err != nil {
		log.Fatal(err)
	}
	defer notifier.Close()
	fmt.Println("notifier listening on", notifier.Addr())

	const users = 4
	editors := make([]*repro.Editor, users)
	for i := range editors {
		conn, err := transport.DialTCP(notifier.Addr())
		if err != nil {
			log.Fatal(err)
		}
		editors[i], err = repro.Connect(conn, 0)
		if err != nil {
			log.Fatal(err)
		}
		defer editors[i].Close()
	}

	// Each user appends timestamped lines at their own pace, concurrently.
	var wg sync.WaitGroup
	for i, ed := range editors {
		wg.Add(1)
		go func(user int, ed *repro.Editor) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				line := fmt.Sprintf("user%d: note %d\n", user, k)
				if err := ed.Insert(ed.Len(), line); err != nil {
					log.Printf("user%d: %v", user, err)
					return
				}
				time.Sleep(time.Duration(10+user*7) * time.Millisecond)
			}
		}(i+1, ed)
	}
	wg.Wait()

	// Quiesce: wait until the notifier has every op and every editor has
	// every broadcast, using the exact message counts.
	deadline := time.Now().Add(10 * time.Second)
	for {
		received, sent := notifier.Counts()
		quiet := true
		for _, ed := range editors {
			fromServer, local := ed.SV()
			if received[ed.Site()] != local || sent[ed.Site()] != fromServer {
				quiet = false
				break
			}
		}
		if quiet {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("session did not quiesce")
		}
		time.Sleep(2 * time.Millisecond)
	}

	final := notifier.Text()
	for _, ed := range editors {
		if ed.Text() != final {
			log.Fatalf("site %d diverged!", ed.Site())
		}
	}
	fmt.Printf("\nall %d replicas converged (%d runes):\n\n%s", users, len([]rune(final)), final)
	for _, ed := range editors {
		fromServer, local := ed.SV()
		fmt.Printf("site %d clock: [%d,%d] — two integers, total\n", ed.Site(), fromServer, local)
	}
}
