// Figure3: the paper's §5 worked example as a library walkthrough — drives
// the client and notifier engines directly (the low-level internal/core
// API), printing every compressed timestamp and concurrency verdict the
// paper derives, then checks them against the published values.
//
//	go run ./examples/figure3
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)

	srv := core.NewServer("ABCDE", core.WithServerCompaction(0))
	clients := map[int]*core.Client{}
	for site := 1; site <= 3; site++ {
		snap, err := srv.Join(site)
		if err != nil {
			log.Fatal(err)
		}
		clients[site] = core.NewClient(site, snap.Text, core.WithClientCompaction(0))
	}

	expect := func(what string, got core.Timestamp, t1, t2 uint64) {
		marker := "ok"
		//lint:allow tscompare: asserting the paper's published timestamp values, not deciding causality
		if got.T1 != t1 || got.T2 != t2 {
			marker = fmt.Sprintf("MISMATCH, paper says [%d,%d]", t1, t2)
		}
		fmt.Printf("  %-24s %v   (%s)\n", what, got, marker)
	}

	// O1 and O2 are generated concurrently (the §2.2 pair).
	m1, err := clients[1].Insert(1, "12")
	if err != nil {
		log.Fatal(err)
	}
	m2, err := clients[2].Delete(2, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generation:")
	expect("O1 at site 1", m1.TS, 0, 1)
	expect("O2 at site 2", m2.TS, 0, 1)

	// O2 reaches site 0 first (Fig. 2/3 arrival order: O2, O1, O4, O3).
	fmt.Println("\nhandling O2 at site 0:")
	b2, _, err := srv.Receive(m2)
	if err != nil {
		log.Fatal(err)
	}
	for _, bm := range b2 {
		expect(fmt.Sprintf("O2' to site %d", bm.To), bm.TS, 1, 0)
	}

	// Site 3 executes O2' then generates O4.
	mustIntegrate(clients[3], b2)
	m4, err := clients[3].Insert(2, "x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsite 3 after O2' generates O4:")
	expect("O4 at site 3", m4.TS, 1, 1)

	// Site 1 executes O2' — concurrent with its local O1, so transformed.
	res := mustIntegrate(clients[1], b2)
	fmt.Printf("\nO2' at site 1: %d concurrent op(s) in HB, executed form %v, doc %q\n",
		res.ConcurrentCount, res.Executed, clients[1].Text())

	fmt.Println("\nhandling O1 at site 0:")
	b1, ir, err := srv.Receive(m1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  concurrent with %d buffered op(s) (paper: O2' ∥ O1)\n", ir.ConcurrentCount)
	for _, bm := range b1 {
		switch bm.To {
		case 2:
			expect("O1' to site 2", bm.TS, 1, 1)
		case 3:
			expect("O1' to site 3", bm.TS, 2, 0)
		}
	}
	mustIntegrate(clients[2], b1)
	m3, err := clients[2].Insert(4, "!")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsite 2 after O1' generates O3:")
	expect("O3 at site 2", m3.TS, 1, 2)

	fmt.Println("\nhandling O4 at site 0:")
	b4, ir4, err := srv.Receive(m4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  concurrent with %d buffered op(s) (paper: O1' ∥ O4)\n", ir4.ConcurrentCount)
	for _, bm := range b4 {
		expect(fmt.Sprintf("O4' to site %d", bm.To), bm.TS, 2, 1)
	}
	mustIntegrate(clients[1], b4)
	mustIntegrate(clients[2], b4)

	fmt.Println("\nhandling O3 at site 0:")
	b3, ir3, err := srv.Receive(m3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  concurrent with %d buffered op(s) (paper: O4' ∥ O3)\n", ir3.ConcurrentCount)
	for _, bm := range b3 {
		expect(fmt.Sprintf("O3' to site %d", bm.To), bm.TS, 3, 1)
	}
	mustIntegrate(clients[3], b1) // O1' reaches site 3 late, as in Fig. 3
	mustIntegrate(clients[1], b3)
	mustIntegrate(clients[3], b3)

	fmt.Printf("\nfinal SV_0 = %v (paper: [1,2,1])\n", srv.SV().Full())
	fmt.Printf("final documents: site 0 %q", srv.Text())
	for s := 1; s <= 3; s++ {
		fmt.Printf(", site %d %q", s, clients[s].Text())
	}
	fmt.Println()
	for s := 1; s <= 3; s++ {
		if clients[s].Text() != srv.Text() {
			log.Fatal("DIVERGED")
		}
	}
	fmt.Println("all replicas converged, every timestamp matches §5.")
}

// mustIntegrate delivers the broadcast addressed to this client, if any.
func mustIntegrate(c *core.Client, bcast []core.ServerMsg) core.IntegrationResult {
	for _, bm := range bcast {
		if bm.To == c.Site() {
			res, err := c.Integrate(bm)
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
	}
	return core.IntegrationResult{}
}
