// Loadtest: a deterministic 32-site editing session on the discrete-event
// simulator, with full validation against the ground-truth causality oracle.
// Prints the session metrics the benchmark harness aggregates: bytes on the
// wire, timestamp overhead vs the full-vector baseline, integration latency
// percentiles, and the high-water marks of the bounded structures.
//
//	go run ./examples/loadtest [-n 32] [-ops 40] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 32, "number of collaborating sites")
	ops := flag.Int("ops", 40, "operations per site")
	seed := flag.Int64("seed", 1, "simulation seed")
	hotspot := flag.Bool("hotspot", true, "cluster each user's edits around a moving cursor")
	flag.Parse()

	cfg := sim.Config{
		Clients:      *n,
		OpsPerClient: *ops,
		Seed:         *seed,
		Initial:      "collaborative editing at scale\n",
		Workload:     sim.Workload{Hotspot: *hotspot},
		Latency:      sim.Spiky{Base: sim.Uniform{Lo: 20 * time.Millisecond, Hi: 120 * time.Millisecond}, SpikeP: 0.02, SpikeX: 10},
		Validate:     true,
		Compaction:   32,
	}
	start := time.Now()
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	totalOps := res.Metrics.Get("ops.generated")
	msgs := totalOps + res.Metrics.Get("ops.integrated")

	fmt.Printf("session: %d sites × %d ops = %d ops, %d messages, %.1fs virtual, %v wall\n",
		*n, *ops, totalOps, msgs, res.Duration.Seconds(), wall.Round(time.Millisecond))
	fmt.Printf("converged: %v   final document: %d runes\n", res.Converged, res.FinalLen)
	fmt.Printf("verdicts: %d checks, %d concurrent, %d oracle mismatches\n\n",
		res.TotalChecks, res.ConcurrentPairs, res.VerdictMismatches)

	var tb stats.Table
	tb.Header("metric", "value")
	tb.Row("bytes up", res.BytesUp)
	tb.Row("bytes down", res.BytesDown)
	tb.Row("timestamp bytes (compressed)", res.TimestampBytes)
	tb.Row("timestamp bytes (full-vc baseline)", res.FullVCTimestampBytes)
	tb.Row("timestamp bytes/msg (compressed)", float64(res.TimestampBytes)/float64(msgs))
	tb.Row("timestamp bytes/msg (full-vc)", float64(res.FullVCTimestampBytes)/float64(msgs))
	tb.Row("integration latency p50 (ms)", res.IntegrationLatency.Percentile(50)/1e6)
	tb.Row("integration latency p99 (ms)", res.IntegrationLatency.Percentile(99)/1e6)
	tb.Row("max server HB", res.MaxServerHB)
	tb.Row("max client HB", res.MaxClientHB)
	tb.Row("max pending (client bridge)", res.MaxPending)
	tb.Row("max notifier bridge", res.MaxBridgeLen)
	fmt.Print(tb.String())

	if !res.Converged || res.VerdictMismatches != 0 {
		log.Fatal("FAILED: divergence or unsound verdicts")
	}
	fmt.Println("\nOK — converged, all verdicts agree with Definition-1 ground truth.")
}
