// Presence: live shared cursors (telepointers). Three users edit the same
// paragraph while sharing their selections; the demo prints what each user's
// screen would highlight — note how remote selections stay glued to their
// text as concurrent edits land around them.
//
//	go run ./examples/presence
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	session, err := repro.NewLocalSession(3, "the quick brown fox jumps over the lazy dog")
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	alice, bob, carol := session.Editors[0], session.Editors[1], session.Editors[2]

	// Everyone selects their favourite word and shares it.
	share := func(e *repro.Editor, word string) {
		text := e.Text()
		at := strings.Index(text, word)
		if at < 0 {
			log.Fatalf("%q not found", word)
		}
		start := len([]rune(text[:at]))
		e.SetSelection(start, start+len([]rune(word)))
		if err := e.ShareSelection(); err != nil {
			log.Fatal(err)
		}
	}
	share(alice, "quick")
	share(bob, "fox")
	share(carol, "lazy")
	settle(session)

	show(session)

	// Concurrent edits all over the document — selections must follow.
	fmt.Println("\n-- concurrent edits: alice prepends, bob uppercases 'jumps', carol appends --")
	if err := alice.Insert(0, ">>> "); err != nil {
		log.Fatal(err)
	}
	jumpAt := strings.Index(bob.Text(), "jumps")
	if err := bob.Replace(len([]rune(bob.Text()[:jumpAt])), 5, "JUMPS"); err != nil {
		log.Fatal(err)
	}
	if err := carol.Insert(carol.Len(), " — fin."); err != nil {
		log.Fatal(err)
	}
	settle(session)

	show(session)
}

// settle waits for quiescence of ops and a beat for presence relays.
func settle(s *repro.LocalSession) {
	if err := s.Quiesce(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // presence is ephemeral, give it a beat
}

// show renders each editor's view with every remote selection highlighted.
func show(s *repro.LocalSession) {
	for _, e := range s.Editors {
		fmt.Printf("\nsite %d sees: %q\n", e.Site(), e.Text())
		for _, rp := range e.Presences() {
			rs := []rune(e.Text())
			a, h := rp.Selection.Anchor, rp.Selection.Head
			if a > h {
				a, h = h, a
			}
			fmt.Printf("  site %d selects %q at [%d,%d)\n", rp.Site, string(rs[a:h]), a, h)
		}
	}
}
