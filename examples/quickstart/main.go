// Quickstart: three users edit one document through an in-process session.
//
// It reproduces the paper's §2.2/§2.3 motivating example — two concurrent
// operations that would corrupt the document without transformation — and
// then lets all three users type concurrently, showing convergence and the
// constant-size clocks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)

	// One notifier (site 0) + three editors over in-memory FIFO pipes.
	session, err := repro.NewLocalSession(3, "ABCDE")
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	alice, bob, carol := session.Editors[0], session.Editors[1], session.Editors[2]

	fmt.Println("document:", session.Notifier.Text())
	fmt.Println()

	// The paper's concurrent pair: Alice inserts "12" at position 1 while
	// Bob deletes three characters at position 2. Each sees their own edit
	// instantly — the local path never waits for the network.
	if err := alice.Insert(1, "12"); err != nil {
		log.Fatal(err)
	}
	if err := bob.Delete(2, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice sees immediately: %q\n", alice.Text())
	fmt.Printf("bob sees immediately:   %q\n", bob.Text())

	// Wait for propagation; replicas must converge on the
	// intention-preserved result "A12B" (not the corrupted "A1DE").
	if err := session.Quiesce(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter propagation, everyone sees: %q\n", alice.Text())
	if alice.Text() != "A12B" {
		log.Fatalf("expected the paper's intention-preserved result A12B")
	}

	// Now everyone types at once.
	if err := alice.Insert(0, "alice! "); err != nil {
		log.Fatal(err)
	}
	if err := bob.Insert(bob.Len(), " bob!"); err != nil {
		log.Fatal(err)
	}
	if err := carol.Insert(0, "carol? "); err != nil {
		log.Fatal(err)
	}
	if err := session.Quiesce(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter three concurrent edits: %q\n", carol.Text())

	// The whole clock state at each editor is two integers, no matter how
	// many users participate (the paper's headline result).
	for _, e := range []*repro.Editor{alice, bob, carol} {
		fromServer, local := e.SV()
		fmt.Printf("site %d state vector: [%d,%d]\n", e.Site(), fromServer, local)
	}
}
