// Package causal provides a ground-truth causality oracle implementing the
// paper's Definition 1 directly from generation/execution event logs.
//
// The oracle is the referee for the soundness experiments (EXPERIMENTS.md
// E5/E8): the compressed-vector-clock verdicts produced online must agree
// with the happens-before relation this package derives offline from the
// actual event sequence.
//
// Definition 1 (causal ordering "→"): for operations O_a generated at site i
// and O_b generated at site j, O_a → O_b iff
//
//	(1) i == j and O_a was generated before O_b, or
//	(2) i != j and O_a was executed at site j before O_b was generated, or
//	(3) there is an O_x with O_a → O_x and O_x → O_b.
//
// The oracle encodes this as reachability in an event graph whose vertices
// are generation and execution events, with edges for per-site program order
// and for "an operation must be generated before it can be executed
// remotely".
package causal

import "fmt"

// OpRef names an operation by its generating site and that site's generation
// sequence number (starting at 1). Transformed operations relayed by the
// notifier are *new* operations generated at site 0 (paper §3.1, §5) and get
// their own refs.
type OpRef struct {
	Site int
	Seq  uint64
}

// String renders the ref as "O(site=1,seq=2)".
func (r OpRef) String() string { return fmt.Sprintf("O(site=%d,seq=%d)", r.Site, r.Seq) }

// Oracle accumulates generation/execution events and answers happens-before
// queries per Definition 1.
type Oracle struct {
	preds    [][]int32       // direct predecessor lists per event
	lastAt   map[int]int32   // last event recorded at each site (program order)
	genEvent map[OpRef]int32 // generation event of each op
	ops      []OpRef         // insertion-ordered op refs

	// origin records derivations: a transformed operation relayed by the
	// notifier is a new operation, but for causality purposes it *is* its
	// original at the originating site (the paper's §5 treats O2' and O3
	// as "generated at the same site 2"). HappenedBefore(a, b) therefore
	// also holds when origin(a) → b.
	origin map[OpRef]OpRef

	closure []bitset // reach[e] = set of events reachable *from* ancestors into e (computed lazily)
	sealed  bool
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{
		lastAt:   make(map[int]int32),
		genEvent: make(map[OpRef]int32),
		origin:   make(map[OpRef]OpRef),
	}
}

func (o *Oracle) addEvent(site int, extraPred int32) int32 {
	if o.sealed {
		//lint:allow nopanic: oracle contract — mutation after Seal is a bug in the test harness, not a runtime condition
		panic("causal: oracle already sealed")
	}
	id := int32(len(o.preds))
	var preds []int32
	if last, ok := o.lastAt[site]; ok {
		preds = append(preds, last)
	}
	if extraPred >= 0 {
		preds = append(preds, extraPred)
	}
	o.preds = append(o.preds, preds)
	o.lastAt[site] = id
	return id
}

// Generate records the generation (and immediate local execution) of op at
// its origin site. Each op must be generated exactly once.
func (o *Oracle) Generate(site int, id OpRef) {
	if _, dup := o.genEvent[id]; dup {
		//lint:allow nopanic: oracle contract — duplicate generation indicates a broken harness
		panic(fmt.Sprintf("causal: duplicate generation of %v", id))
	}
	ev := o.addEvent(site, -1)
	o.genEvent[id] = ev
	o.ops = append(o.ops, id)
}

// GenerateDerived records the generation of a *derived* operation: the
// transformed form the notifier produces from a previously generated
// original. The derived op is a new operation at its own site (condition (2)
// applies to it like any other), but it additionally inherits the original's
// causal successorship at the originating site: origin(id) → b implies
// id → b. This is exactly how the paper's §5 justifies "O2' ∦ O3 because
// they were generated at the same site 2" even though O2' never travels back
// to site 2.
func (o *Oracle) GenerateDerived(site int, id, orig OpRef) {
	if _, ok := o.genEvent[orig]; !ok {
		//lint:allow nopanic: oracle contract — deriving from an op the harness never generated
		panic(fmt.Sprintf("causal: derivation from unknown op %v", orig))
	}
	if _, ok := o.origin[orig]; ok {
		//lint:allow nopanic: oracle contract — the star topology derives each op at most once
		panic(fmt.Sprintf("causal: derivation chains are not allowed (%v is itself derived)", orig))
	}
	o.Generate(site, id)
	o.origin[id] = orig
}

// Execute records the execution of a previously generated op at a remote
// site.
func (o *Oracle) Execute(site int, id OpRef) {
	gen, ok := o.genEvent[id]
	if !ok {
		//lint:allow nopanic: oracle contract — executing an op the harness never generated
		panic(fmt.Sprintf("causal: execution of unknown op %v", id))
	}
	o.addEvent(site, gen)
}

// Ops returns all generated operations in generation-recording order.
func (o *Oracle) Ops() []OpRef { return o.ops }

// Seal freezes the log and computes the transitive closure. Queries before
// Seal are an error; events after Seal panic.
func (o *Oracle) Seal() {
	if o.sealed {
		return
	}
	o.sealed = true
	n := len(o.preds)
	o.closure = make([]bitset, n)
	words := (n + 63) / 64
	// Events are numbered in a valid topological order (all predecessors
	// are earlier), so one forward pass suffices.
	for e := 0; e < n; e++ {
		bs := newBitset(words)
		for _, p := range o.preds[e] {
			bs.set(int(p))
			bs.or(o.closure[p])
		}
		o.closure[e] = bs
	}
}

// HappenedBefore reports a → b per Definition 1. It panics if the oracle is
// not sealed or an op is unknown.
func (o *Oracle) HappenedBefore(a, b OpRef) bool {
	if !o.sealed {
		//lint:allow nopanic: oracle contract — querying before Seal is a harness bug
		panic("causal: query before Seal")
	}
	ga, ok := o.genEvent[a]
	if !ok {
		//lint:allow nopanic: oracle contract — querying an op the harness never generated
		panic(fmt.Sprintf("causal: unknown op %v", a))
	}
	gb, ok := o.genEvent[b]
	if !ok {
		//lint:allow nopanic: oracle contract — querying an op the harness never generated
		panic(fmt.Sprintf("causal: unknown op %v", b))
	}
	if o.closure[gb].has(int(ga)) {
		return true
	}
	// Derived operations inherit their original's successors at the
	// originating site (one hop only; originals are never derived).
	if orig, ok := o.origin[a]; ok {
		if og := o.genEvent[orig]; o.closure[gb].has(int(og)) {
			return true
		}
	}
	return false
}

// Concurrent reports a ∥ b: neither happened before the other (Definition 2).
func (o *Oracle) Concurrent(a, b OpRef) bool {
	if a == b {
		return false
	}
	return !o.HappenedBefore(a, b) && !o.HappenedBefore(b, a)
}

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(o bitset) {
	for i, w := range o {
		b[i] |= w
	}
}
