package causal

import (
	"math/rand"
	"testing"

	"repro/internal/vclock"
)

// refs for a tiny fixed scenario.
var (
	oA = OpRef{Site: 1, Seq: 1}
	oB = OpRef{Site: 1, Seq: 2}
	oC = OpRef{Site: 2, Seq: 1}
)

func TestSameSiteOrdering(t *testing.T) {
	o := NewOracle()
	o.Generate(1, oA)
	o.Generate(1, oB)
	o.Seal()
	if !o.HappenedBefore(oA, oB) {
		t.Fatal("same-site generation order must imply →")
	}
	if o.HappenedBefore(oB, oA) {
		t.Fatal("→ must be antisymmetric")
	}
	if o.Concurrent(oA, oB) {
		t.Fatal("ordered ops are not concurrent")
	}
}

func TestExecutionBeforeGeneration(t *testing.T) {
	// O_a generated at 1, executed at 2, then O_c generated at 2:
	// Definition 1 condition (2) gives O_a → O_c.
	o := NewOracle()
	o.Generate(1, oA)
	o.Execute(2, oA)
	o.Generate(2, oC)
	o.Seal()
	if !o.HappenedBefore(oA, oC) {
		t.Fatal("execution-before-generation must imply →")
	}
}

func TestConcurrentWhenNoPath(t *testing.T) {
	o := NewOracle()
	o.Generate(1, oA)
	o.Generate(2, oC) // generated without having executed oA
	o.Execute(2, oA)  // arrives later
	o.Execute(1, oC)
	o.Seal()
	if !o.Concurrent(oA, oC) {
		t.Fatal("independently generated ops must be concurrent")
	}
}

func TestTransitivity(t *testing.T) {
	// oA@1 -> exec@2 -> oC@2 -> exec@3 -> oD@3; then oA → oD by (3).
	oD := OpRef{Site: 3, Seq: 1}
	o := NewOracle()
	o.Generate(1, oA)
	o.Execute(2, oA)
	o.Generate(2, oC)
	o.Execute(3, oC)
	o.Generate(3, oD)
	o.Seal()
	if !o.HappenedBefore(oA, oD) {
		t.Fatal("transitivity failed")
	}
}

// TestPaperFigure2Relations reproduces the causality analysis of Fig. 2
// (§2.4): O1→O3, O2→O3, O2→O4, and O1∥O2, O1∥O4, O3∥O4.
func TestPaperFigure2Relations(t *testing.T) {
	o1 := OpRef{Site: 1, Seq: 1}
	o2 := OpRef{Site: 2, Seq: 1}
	o3 := OpRef{Site: 2, Seq: 2}
	o4 := OpRef{Site: 3, Seq: 1}

	o := NewOracle()
	// Site 2 generates O2; site 1 generates O1 independently.
	o.Generate(2, o2)
	o.Generate(1, o1)
	// Site 0 executes O2 then O1 (its arrival order in the figure).
	o.Execute(0, o2)
	o.Execute(0, o1)
	// Site 3 receives/executes O2 then generates O4 (so O2 → O4),
	// without having seen O1 (so O1 ∥ O4).
	o.Execute(3, o2)
	o.Generate(3, o4)
	// Site 2 executes O1 then generates O3 (so O1 → O3 and O2 → O3 by
	// local order), without having seen O4 (so O3 ∥ O4).
	o.Execute(2, o1)
	o.Generate(2, o3)
	// Remaining deliveries.
	o.Execute(0, o4)
	o.Execute(0, o3)
	o.Execute(1, o2)
	o.Execute(1, o4)
	o.Execute(1, o3)
	o.Execute(2, o4)
	o.Execute(3, o1)
	o.Execute(3, o3)
	o.Seal()

	mustBefore := [][2]OpRef{{o1, o3}, {o2, o3}, {o2, o4}}
	for _, p := range mustBefore {
		if !o.HappenedBefore(p[0], p[1]) {
			t.Fatalf("%v → %v expected (paper §2.4)", p[0], p[1])
		}
	}
	mustConc := [][2]OpRef{{o1, o2}, {o1, o4}, {o3, o4}}
	for _, p := range mustConc {
		if !o.Concurrent(p[0], p[1]) {
			t.Fatalf("%v ∥ %v expected (paper §2.4)", p[0], p[1])
		}
	}
}

func TestSelfIsNotConcurrent(t *testing.T) {
	o := NewOracle()
	o.Generate(1, oA)
	o.Seal()
	if o.Concurrent(oA, oA) {
		t.Fatal("an op is not concurrent with itself")
	}
	if o.HappenedBefore(oA, oA) {
		t.Fatal("→ is irreflexive")
	}
}

func TestDuplicateGenerationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o := NewOracle()
	o.Generate(1, oA)
	o.Generate(1, oA)
}

func TestExecuteUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOracle().Execute(1, oA)
}

func TestQueryBeforeSealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o := NewOracle()
	o.Generate(1, oA)
	o.Generate(1, oB)
	o.HappenedBefore(oA, oB)
}

func TestEventAfterSealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o := NewOracle()
	o.Generate(1, oA)
	o.Seal()
	o.Generate(1, oB)
}

func TestSealIsIdempotent(t *testing.T) {
	o := NewOracle()
	o.Generate(1, oA)
	o.Seal()
	o.Seal()
	if o.HappenedBefore(oA, oA) {
		t.Fatal("unexpected self-precedence")
	}
}

// TestOracleAgreesWithVectorClocks runs a random fully-distributed
// computation where every op is broadcast, maintaining classic full vector
// clocks alongside the oracle; Definition-1 verdicts must match the vector
// clock characterization for every op pair.
func TestOracleAgreesWithVectorClocks(t *testing.T) {
	const n = 4
	r := rand.New(rand.NewSource(77))
	oracle := NewOracle()
	procs := make([]*vclock.Process, n)
	seqs := make([]uint64, n)
	for i := range procs {
		procs[i] = vclock.NewProcess(i, n)
	}
	type opInfo struct {
		ref OpRef
		ts  vclock.VC
	}
	var ops []opInfo
	type msg struct {
		to  int
		ref OpRef
		ts  vclock.VC
	}
	// Per-link FIFO queues, like the TCP links in the paper.
	queues := make(map[[2]int][]msg)
	var busy [][2]int
	for step := 0; step < 400; step++ {
		if len(busy) > 0 && r.Intn(2) == 0 {
			ki := r.Intn(len(busy))
			key := busy[ki]
			q := queues[key]
			m := q[0]
			queues[key] = q[1:]
			if len(queues[key]) == 0 {
				busy = append(busy[:ki], busy[ki+1:]...)
			}
			procs[m.to].Recv(m.ts)
			oracle.Execute(m.to, m.ref)
			continue
		}
		from := r.Intn(n)
		seqs[from]++
		ref := OpRef{Site: from, Seq: seqs[from]}
		ts := procs[from].Send()
		oracle.Generate(from, ref)
		ops = append(ops, opInfo{ref: ref, ts: ts})
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			key := [2]int{from, to}
			if len(queues[key]) == 0 {
				busy = append(busy, key)
			}
			queues[key] = append(queues[key], msg{to: to, ref: ref, ts: ts})
		}
	}
	oracle.Seal()
	for i := 0; i < len(ops); i++ {
		for j := 0; j < len(ops); j++ {
			if i == j {
				continue
			}
			a, b := ops[i], ops[j]
			wantBefore := vclock.Compare(a.ts, b.ts) == vclock.Before
			if got := oracle.HappenedBefore(a.ref, b.ref); got != wantBefore {
				t.Fatalf("%v vs %v: oracle %v, vector clocks %v (ts %v / %v)",
					a.ref, b.ref, got, wantBefore, a.ts, b.ts)
			}
		}
	}
}
