package core

import (
	"fmt"
	"testing"
)

// BenchmarkGenerateLocal is the latency-critical path of paper §2
// requirement 1: a local edit must be as fast as a single-user editor.
func BenchmarkGenerateLocal(b *testing.B) {
	c := NewClient(1, "", WithClientCompaction(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(c.DocLen(), "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerReceive measures the notifier's per-op cost across session
// sizes: formula (7) checks + transformation + per-destination compression.
func BenchmarkServerReceive(b *testing.B) {
	for _, n := range []int{2, 16, 128} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			srv := NewServer("", WithServerCompaction(16))
			clients := make([]*Client, n)
			for site := 1; site <= n; site++ {
				snap, err := srv.Join(site)
				if err != nil {
					b.Fatal(err)
				}
				clients[site-1] = NewClient(site, snap.Text, WithClientCompaction(16))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := clients[i%n]
				m, err := c.Insert(c.DocLen(), "x")
				if err != nil {
					b.Fatal(err)
				}
				bcast, _, err := srv.Receive(m)
				if err != nil {
					b.Fatal(err)
				}
				// Keep clients in sync so the session stays live.
				for _, bm := range bcast {
					if _, err := clients[bm.To-1].Integrate(bm); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkConcurrencyCheckClient: formula (5), the O(1) client-side check.
func BenchmarkConcurrencyCheckClient(b *testing.B) {
	ta := Timestamp{T1: 100, T2: 50}
	tb := Timestamp{T1: 99, T2: 51}
	x := false
	for i := 0; i < b.N; i++ {
		x = ConcurrentClient(ta, tb, false) != x
	}
	_ = x
}

// BenchmarkCompress: formulas (1)–(2), per-destination timestamp
// compression at the notifier.
func BenchmarkCompress(b *testing.B) {
	for _, n := range []int{8, 512} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			sv := NewServerSV(n)
			for i := 1; i <= n; i++ {
				sv.Inc(i)
			}
			for i := 0; i < b.N; i++ {
				_ = sv.Compress(1+i%n, 0)
			}
		})
	}
}
