package core

import (
	"fmt"
	"testing"

	"repro/internal/trace"
)

// BenchmarkGenerateLocal is the latency-critical path of paper §2
// requirement 1: a local edit must be as fast as a single-user editor.
func BenchmarkGenerateLocal(b *testing.B) {
	c := NewClient(1, "", WithClientCompaction(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(c.DocLen(), "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerReceive measures the notifier's per-op cost across session
// sizes: formula (7) checks + transformation + per-destination compression.
func BenchmarkServerReceive(b *testing.B) {
	for _, n := range []int{2, 16, 128} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			srv := NewServer("", WithServerCompaction(16))
			clients := make([]*Client, n)
			for site := 1; site <= n; site++ {
				snap, err := srv.Join(site)
				if err != nil {
					b.Fatal(err)
				}
				clients[site-1] = NewClient(site, snap.Text, WithClientCompaction(16))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := clients[i%n]
				m, err := c.Insert(c.DocLen(), "x")
				if err != nil {
					b.Fatal(err)
				}
				bcast, _, err := srv.Receive(m)
				if err != nil {
					b.Fatal(err)
				}
				// Keep clients in sync so the session stays live.
				for _, bm := range bcast {
					if _, err := clients[bm.To-1].Integrate(bm); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkLaggedCatchup measures the dominant cost the composed-suffix
// transform cache removes: a site goes offline while another generates a
// deep history (bridge depth 512/2048 toward the laggard), then the laggard
// sends a burst of stale-context operations. Pairwise (composeDepth 0) every
// burst op pays depth op.Transform calls; composed, the first op builds the
// cache (depth−1 Compose calls, reported as composes/op) and every op
// thereafter pays exactly one Transform — O(1) amortized. transforms/op is
// read off the engine's ot.transforms counter, so the reported reduction is
// the acceptance-criterion number, not an inference from ns/op.
func BenchmarkLaggedCatchup(b *testing.B) {
	for _, depth := range []int{512, 2048} {
		for _, path := range []struct {
			name         string
			composeDepth int
		}{{"composed", defaultComposeDepth}, {"pairwise", 0}} {
			b.Run(fmt.Sprintf("depth=%d/path=%s", depth, path.name), func(b *testing.B) {
				met := trace.NewMetrics()
				srv := NewServer("seed", WithServerCompaction(0),
					WithServerComposeDepth(path.composeDepth), WithServerMetrics(met))
				var clients [2]*Client
				for site := 1; site <= 2; site++ {
					snap, err := srv.Join(site)
					if err != nil {
						b.Fatal(err)
					}
					clients[site-1] = NewClient(site, snap.Text, WithClientCompaction(0))
				}
				laggard, gen := clients[0], clients[1]
				// Site 1 goes offline; site 2 generates the deep history.
				// Its broadcasts toward the laggard are never delivered, so
				// the bridge toward site 1 holds all depth entries.
				for i := 0; i < depth; i++ {
					m, err := gen.Insert(gen.DocLen(), "x")
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := srv.Receive(m); err != nil {
						b.Fatal(err)
					}
				}
				t0, c0 := met.Get(trace.CTransforms), met.Get(trace.CComposes)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m, err := laggard.Insert(laggard.DocLen(), "y")
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := srv.Receive(m); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				n := float64(b.N)
				b.ReportMetric(float64(met.Get(trace.CTransforms)-t0)/n, "transforms/op")
				b.ReportMetric(float64(met.Get(trace.CComposes)-c0)/n, "composes/op")
			})
		}
	}
}

// TestLaggedCatchupTransformReduction is the acceptance criterion as a
// test: at bridge depth 512 the composed path must integrate a catch-up
// burst with at least 5× fewer op.Transform calls per operation than the
// pairwise walk, while producing a byte-identical server document.
func TestLaggedCatchupTransformReduction(t *testing.T) {
	const depth, burst = 512, 32
	run := func(composeDepth int) (transformsPerOp float64, text string) {
		met := trace.NewMetrics()
		srv := NewServer("seed", WithServerCompaction(0),
			WithServerComposeDepth(composeDepth), WithServerMetrics(met))
		var clients [2]*Client
		for site := 1; site <= 2; site++ {
			snap, err := srv.Join(site)
			if err != nil {
				t.Fatal(err)
			}
			clients[site-1] = NewClient(site, snap.Text, WithClientCompaction(0))
		}
		laggard, gen := clients[0], clients[1]
		for i := 0; i < depth; i++ {
			m, err := gen.Insert(gen.DocLen(), "x")
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := srv.Receive(m); err != nil {
				t.Fatal(err)
			}
		}
		before := met.Get(trace.CTransforms)
		for i := 0; i < burst; i++ {
			m, err := laggard.Insert(laggard.DocLen(), "y")
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := srv.Receive(m); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return float64(met.Get(trace.CTransforms)-before) / burst, srv.Text()
	}
	composed, composedText := run(defaultComposeDepth)
	pairwise, pairwiseText := run(0)
	if composedText != pairwiseText {
		t.Fatalf("paths diverge: composed %q, pairwise %q", composedText, pairwiseText)
	}
	if pairwise < depth {
		t.Fatalf("pairwise path spent %.1f transforms/op, expected >= %d (is the reference walk intact?)", pairwise, depth)
	}
	if composed*5 > pairwise {
		t.Fatalf("composed path spent %.1f transforms/op vs pairwise %.1f — less than the required 5x reduction",
			composed, pairwise)
	}
	t.Logf("transforms/op at depth %d: pairwise %.1f, composed %.2f (%.0fx reduction)",
		depth, pairwise, composed, pairwise/composed)
}

// BenchmarkConcurrencyCheckClient: formula (5), the O(1) client-side check.
func BenchmarkConcurrencyCheckClient(b *testing.B) {
	ta := Timestamp{T1: 100, T2: 50}
	tb := Timestamp{T1: 99, T2: 51}
	x := false
	for i := 0; i < b.N; i++ {
		x = ConcurrentClient(ta, tb, false) != x
	}
	_ = x
}

// BenchmarkCompress: formulas (1)–(2), per-destination timestamp
// compression at the notifier.
func BenchmarkCompress(b *testing.B) {
	for _, n := range []int{8, 512} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			sv := NewServerSV(n)
			for i := 1; i <= n; i++ {
				sv.Inc(i)
			}
			for i := 0; i < b.N; i++ {
				_ = sv.Compress(1+i%n, 0)
			}
		})
	}
}
