package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/causal"
	"repro/internal/doc"
	"repro/internal/op"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Checkpoint serializes the engine's durable state into a compact byte
// checkpoint that RestoreServer turns back into a live, equivalent engine —
// the storage format behind idle-session dehydration (DESIGN.md §15): a
// parked session keeps only these bytes in memory, not the engine, its
// caches, or its goroutine.
//
// What is captured: mode, the generation counter, the full state vector
// SV_0, the document text, the history buffer (dropped count, tail vector,
// entries), and every client record (join state, baseline, sent/acked
// counters, bridge). What is deliberately not: the composed-suffix caches
// (comp/unfolded/compHold) — Checkpoint first settles any deferred folds, so
// the individual bridge entries are current and the caches can be dropped
// and rebuilt cold after restore — and the derived history-buffer state
// (counts, byOrigin, tailSum), recomputed on restore from the entries and
// tail. Settling mutates the engine, but only into an equivalent state the
// pairwise path would have reached anyway.
//
// The encoding is deterministic (clients sorted by site, canonical op
// forms), so Checkpoint∘RestoreServer is byte-identical — the property
// TestCheckpointByteIdentity locks.
func (s *Server) Checkpoint() ([]byte, error) {
	for site, st := range s.clients {
		if len(st.unfolded) > 0 {
			if _, err := foldBridge(st.bridge, st.unfolded); err != nil {
				return nil, fmt.Errorf("core: checkpoint site %d: settle folds: %w", site, err)
			}
		}
		clearFolds(&st.unfolded)
		st.comp = nil
		st.compHold = false
	}

	b := make([]byte, 0, 256+s.buf.Len())
	b = append(b, ckptMagic...)
	b = binary.AppendUvarint(b, ckptVersion)
	b = binary.AppendUvarint(b, uint64(s.mode))
	b = binary.AppendUvarint(b, s.serverSeq)
	// The compaction phase travels too: a restored engine compacts on the
	// same schedule as the original, so differential continuation sees
	// identical history-buffer lengths, not just identical verdicts.
	b = binary.AppendUvarint(b, uint64(s.sinceCompact))
	b = appendVC(b, s.sv.v)
	b = appendString(b, s.buf.String())

	b = binary.AppendUvarint(b, uint64(s.hb.dropped))
	b = appendVC(b, s.hb.tail)
	b = binary.AppendUvarint(b, uint64(len(s.hb.entries)))
	for i := range s.hb.entries {
		e := &s.hb.entries[i]
		b = binary.AppendUvarint(b, uint64(e.Origin))
		b = appendRef(b, e.Ref)
		b = appendOp(b, e.Op)
	}

	sites := make([]int, 0, len(s.clients))
	for site := range s.clients {
		sites = append(sites, site)
	}
	sort.Ints(sites)
	b = binary.AppendUvarint(b, uint64(len(sites)))
	for _, site := range sites {
		st := s.clients[site]
		b = binary.AppendUvarint(b, uint64(site))
		if st.joined {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendUvarint(b, st.baseline)
		b = binary.AppendUvarint(b, st.sent)
		b = binary.AppendUvarint(b, st.acked)
		b = binary.AppendUvarint(b, uint64(len(st.bridge)))
		for i := range st.bridge {
			br := &st.bridge[i]
			b = binary.AppendUvarint(b, br.seq)
			b = appendRef(b, br.ref)
			b = appendOp(b, br.op)
		}
	}
	return b, nil
}

// RestoreServer rebuilds a live engine from a Checkpoint. Engine options
// that configure behavior (compaction cadence, compose depth, metrics,
// decision ring, check trace) apply as usual; WithServerBuffer is ignored —
// the document always comes from the checkpoint, loaded into a fresh rope.
// The restored engine is observably equivalent to the one checkpointed: same
// verdicts, same broadcasts, same invariants (TestCheckpointContinuation
// runs the two side by side).
func RestoreServer(data []byte, opts ...ServerOption) (*Server, error) {
	d := &ckptReader{b: data}
	if !d.magic() {
		return nil, fmt.Errorf("core: restore: %w", ErrBadCheckpoint)
	}
	if v := d.uvarint(); v != ckptVersion {
		return nil, fmt.Errorf("core: restore: version %d: %w", v, ErrBadCheckpoint)
	}
	s := &Server{
		clients:      make(map[int]*clientState),
		compactEvery: 64,
		composeDepth: defaultComposeDepth,
	}
	for _, o := range opts {
		o(s)
	}
	s.mode = Mode(d.uvarint())
	s.serverSeq = d.uvarint()
	s.sinceCompact = int(d.uvarint())
	sv := d.vc()
	s.sv = &ServerSV{v: sv, sum: sv.Sum()}
	s.buf = doc.NewRope(d.str())

	s.hb.dropped = int(d.uvarint())
	s.hb.tail = d.vc()
	nEntries := int(d.uvarint())
	if d.err == nil && nEntries > len(d.b) {
		return nil, fmt.Errorf("core: restore: %d history entries in %d bytes: %w", nEntries, len(d.b), ErrBadCheckpoint)
	}
	s.hb.entries = make([]ServerEntry, 0, nEntries)
	for i := 0; i < nEntries && d.err == nil; i++ {
		e := ServerEntry{Origin: int(d.uvarint())}
		e.Ref = d.ref()
		e.Op = d.op()
		s.hb.entries = append(s.hb.entries, e)
	}
	// Recompute the derived history state from the entries and tail: counts
	// and byOrigin fall out of one forward pass, tailSum from the tail.
	s.hb.counts = vclock.New(len(s.hb.tail))
	s.hb.byOrigin = make([][]int, len(s.hb.tail))
	s.hb.tailSum = s.hb.tail.Sum()
	for i := range s.hb.entries {
		o := s.hb.entries[i].Origin
		s.hb.grow(o)
		s.hb.counts[o]++
		s.hb.byOrigin[o] = append(s.hb.byOrigin[o], s.hb.dropped+i)
	}

	nClients := int(d.uvarint())
	if d.err == nil && nClients > len(d.b) {
		return nil, fmt.Errorf("core: restore: %d clients in %d bytes: %w", nClients, len(d.b), ErrBadCheckpoint)
	}
	for i := 0; i < nClients && d.err == nil; i++ {
		site := int(d.uvarint())
		st := &clientState{joined: d.byte() == 1}
		st.baseline = d.uvarint()
		st.sent = d.uvarint()
		st.acked = d.uvarint()
		nBridge := int(d.uvarint())
		if d.err == nil && nBridge > len(d.b) {
			return nil, fmt.Errorf("core: restore: %d bridge ops in %d bytes: %w", nBridge, len(d.b), ErrBadCheckpoint)
		}
		for j := 0; j < nBridge && d.err == nil; j++ {
			br := bridgeOp{seq: d.uvarint()}
			br.ref = d.ref()
			br.op = d.op()
			st.bridge = append(st.bridge, br)
		}
		s.clients[site] = st
	}
	if d.err != nil {
		return nil, fmt.Errorf("core: restore: %w", d.err)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("core: restore: %d trailing bytes: %w", len(d.b), ErrBadCheckpoint)
	}
	// Same catalogue warm-up as NewServer so a restored engine exposes the
	// cache counters deterministically.
	s.count(trace.CCacheHits, 0)
	s.count(trace.CCacheMisses, 0)
	s.count(trace.CComposes, 0)
	return s, nil
}

// ErrBadCheckpoint reports a checkpoint RestoreServer cannot parse.
var ErrBadCheckpoint = fmt.Errorf("core: bad checkpoint")

// ckptMagic guards against feeding arbitrary bytes to RestoreServer;
// ckptVersion allows the format to evolve.
const (
	ckptMagic   = "cvckpt"
	ckptVersion = 1
)

func appendVC(b []byte, v vclock.VC) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = binary.AppendUvarint(b, x)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendRef(b []byte, r causal.OpRef) []byte {
	b = binary.AppendUvarint(b, uint64(r.Site))
	return binary.AppendUvarint(b, r.Seq)
}

// appendOp encodes an operation as its canonical component sequence: kind,
// then the inserted text for inserts or the rune count otherwise. Builder
// ops are always canonical, and restore rebuilds through the same builder
// (op.FromComps), so re-encoding a restored op is byte-identical.
func appendOp(b []byte, o *op.Op) []byte {
	comps := o.Comps()
	b = binary.AppendUvarint(b, uint64(len(comps)))
	for _, c := range comps {
		b = append(b, byte(c.Kind))
		if c.Kind == op.KInsert {
			b = appendString(b, c.S)
		} else {
			b = binary.AppendUvarint(b, uint64(c.N))
		}
	}
	return b
}

// ckptReader is a sticky-error cursor over checkpoint bytes: after the first
// malformed field every later read returns zero values and the error
// surfaces once at the end, keeping the decode loops linear instead of
// error-checked per field.
type ckptReader struct {
	b   []byte
	err error
}

func (d *ckptReader) fail() {
	if d.err == nil {
		d.err = ErrBadCheckpoint
	}
}

func (d *ckptReader) magic() bool {
	if len(d.b) < len(ckptMagic) || string(d.b[:len(ckptMagic)]) != ckptMagic {
		return false
	}
	d.b = d.b[len(ckptMagic):]
	return true
}

func (d *ckptReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *ckptReader) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *ckptReader) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *ckptReader) vc() vclock.VC {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	v := vclock.New(int(n))
	for i := range v {
		v[i] = d.uvarint()
	}
	return v
}

func (d *ckptReader) ref() causal.OpRef {
	return causal.OpRef{Site: int(d.uvarint()), Seq: d.uvarint()}
}

func (d *ckptReader) op() *op.Op {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	comps := make([]op.Comp, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		c := op.Comp{Kind: op.Kind(d.byte())}
		if c.Kind == op.KInsert {
			c.S = d.str()
		} else {
			c.N = int(d.uvarint())
		}
		comps = append(comps, c)
	}
	if d.err != nil {
		return nil
	}
	o, err := op.FromComps(comps)
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		return nil
	}
	return o
}
