package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/causal"
	"repro/internal/op"
)

// ckptHarness couples a server to lagging clients: broadcasts park in
// per-site FIFO inboxes and each step delivers only a random prefix, so
// bridges, deferred folds, and a non-trivial history buffer all exist at
// checkpoint time without ever violating the per-link FIFO the paper
// assumes.
type ckptHarness struct {
	clients map[int]*Client
	inbox   map[int][]ServerMsg
}

func (h *ckptHarness) enqueue(msgs []ServerMsg) {
	for _, sm := range msgs {
		h.inbox[sm.To] = append(h.inbox[sm.To], sm)
	}
}

func (h *ckptHarness) deliverSome(t *testing.T, rng *rand.Rand) {
	t.Helper()
	for site, c := range h.clients {
		q := h.inbox[site]
		for len(q) > 0 && rng.Intn(3) != 0 {
			if _, err := c.Integrate(q[0]); err != nil {
				t.Fatal(err)
			}
			q = q[1:]
		}
		h.inbox[site] = q
	}
}

// ckptScriptServer drives a server through a deterministic multi-site
// workload with lagging acknowledgements and returns it mid-session.
func ckptScriptServer(t *testing.T, seed int64, steps int, opts ...ServerOption) (*Server, *ckptHarness) {
	t.Helper()
	s := NewServer("the quick brown fox", opts...)
	rng := rand.New(rand.NewSource(seed))
	h := &ckptHarness{clients: make(map[int]*Client), inbox: make(map[int][]ServerMsg)}
	for site := 1; site <= 4; site++ {
		snap, err := s.Join(site)
		if err != nil {
			t.Fatal(err)
		}
		h.clients[site] = NewClient(snap.Site, snap.Text)
	}
	alphabet := []rune("abcdefgh ")
	for i := 0; i < steps; i++ {
		site := 1 + rng.Intn(4)
		c := h.clients[site]
		var o *op.Op
		dl := c.DocLen()
		switch {
		case dl > 0 && rng.Intn(3) == 0:
			at := rng.Intn(dl)
			n := 1 + rng.Intn(minCk(3, dl-at))
			o = op.New().Retain(at).Delete(n).Retain(dl - at - n)
		default:
			at := rng.Intn(dl + 1)
			o = op.New().Retain(at).Insert(string(alphabet[rng.Intn(len(alphabet))])).Retain(dl - at)
		}
		cm, err := c.Generate(o)
		if err != nil {
			t.Fatal(err)
		}
		msgs, _, err := s.Receive(cm)
		if err != nil {
			t.Fatal(err)
		}
		h.enqueue(msgs)
		h.deliverSome(t, rng)
	}
	return s, h
}

func minCk(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCheckpointByteIdentity locks the determinism contract:
// Checkpoint(RestoreServer(cp)) == cp, for engines in assorted mid-session
// states.
func TestCheckpointByteIdentity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s, _ := ckptScriptServer(t, seed, 120)
		cp, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		r, err := RestoreServer(cp)
		if err != nil {
			t.Fatal(err)
		}
		cp2, err := r.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cp, cp2) {
			t.Fatalf("seed %d: re-checkpoint differs: %d vs %d bytes", seed, len(cp), len(cp2))
		}
	}
}

// TestCheckpointContinuation is the differential guarantee dehydration rests
// on: freeze an engine mid-session, restore it, and drive the restored copy
// and the original through the same remaining workload — every broadcast,
// timestamp, and final document must match.
func TestCheckpointContinuation(t *testing.T) {
	for seed := int64(10); seed <= 13; seed++ {
		s, h := ckptScriptServer(t, seed, 150)
		cp, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		r, err := RestoreServer(cp)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := r.Text(), s.Text(); got != want {
			t.Fatalf("seed %d: restored text %q, want %q", seed, got, want)
		}
		if got, want := r.History().Len(), s.History().Len(); got != want {
			t.Fatalf("seed %d: restored HB len %d, want %d", seed, got, want)
		}

		// Same post-checkpoint workload against both engines.
		rng := rand.New(rand.NewSource(seed * 77))
		// The restored engine serves the same clients: clone their outgoing
		// streams by generating each op once and feeding both engines.
		for i := 0; i < 100; i++ {
			site := 1 + rng.Intn(4)
			c := h.clients[site]
			dl := c.DocLen()
			at := rng.Intn(dl + 1)
			o := op.New().Retain(at).Insert(string(rune('a' + rng.Intn(26)))).Retain(dl - at)
			cm, err := c.Generate(o)
			if err != nil {
				t.Fatal(err)
			}
			m1, res1, err1 := s.Receive(cm)
			m2, res2, err2 := r.Receive(cm)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d step %d: errs diverge: %v vs %v", seed, i, err1, err2)
			}
			if err1 != nil {
				t.Fatal(err1)
			}
			if res1.ConcurrentCount != res2.ConcurrentCount || res1.CheckCount != res2.CheckCount {
				t.Fatalf("seed %d step %d: verdicts diverge: %d/%d vs %d/%d",
					seed, i, res1.ConcurrentCount, res1.CheckCount, res2.ConcurrentCount, res2.CheckCount)
			}
			if len(m1) != len(m2) {
				t.Fatalf("seed %d step %d: %d vs %d broadcasts", seed, i, len(m1), len(m2))
			}
			for j := range m1 {
				if m1[j].To != m2[j].To || m1[j].TS != m2[j].TS || !m1[j].Op.Equal(m2[j].Op) {
					t.Fatalf("seed %d step %d: broadcast %d diverges:\n  %v %v %v\n  %v %v %v",
						seed, i, j, m1[j].To, m1[j].TS, m1[j].Op, m2[j].To, m2[j].TS, m2[j].Op)
				}
			}
			// Deliver the original engine's broadcasts (identical to the
			// restored one's) so the shared clients advance, still FIFO.
			h.enqueue(m1)
			h.deliverSome(t, rng)
		}
		if s.Text() != r.Text() {
			t.Fatalf("seed %d: final texts diverge", seed)
		}
		if err := r.checkInvariants(); err != nil {
			t.Fatalf("seed %d: restored engine: %v", seed, err)
		}
	}
}

// TestCheckpointAfterLeave: departed sites survive the round trip (their
// counters stay in SV_0) and can rejoin the restored engine.
func TestCheckpointAfterLeave(t *testing.T) {
	s, _ := ckptScriptServer(t, 42, 80)
	if err := s.Leave(3); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreServer(cp)
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range s.Sites() {
		if got, want := r.SentTo(site), s.SentTo(site); got != want {
			t.Fatalf("site %d: sent %d, want %d", site, got, want)
		}
	}
	snap1, err1 := s.Join(3)
	snap2, err2 := r.Join(3)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if snap1 != snap2 {
		t.Fatalf("rejoin snapshots diverge: %+v vs %+v", snap1, snap2)
	}
}

// TestRestoreRejectsCorrupt: truncations and bit flips fail cleanly instead
// of producing a quietly wrong engine.
func TestRestoreRejectsCorrupt(t *testing.T) {
	s, _ := ckptScriptServer(t, 7, 60)
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreServer(nil); err == nil {
		t.Fatal("restore of nil succeeded")
	}
	if _, err := RestoreServer([]byte("not a checkpoint")); err == nil {
		t.Fatal("restore of garbage succeeded")
	}
	for _, cut := range []int{1, len(cp) / 4, len(cp) / 2, len(cp) - 1} {
		if _, err := RestoreServer(cp[:cut]); err == nil {
			t.Fatalf("restore of %d-byte truncation succeeded", cut)
		}
	}
	if _, err := RestoreServer(append(append([]byte{}, cp...), 0)); err == nil {
		t.Fatal("restore with trailing bytes succeeded")
	}
}

// TestCheckpointRelayMode: the §6 ablation engine round-trips too (mode is
// part of the format).
func TestCheckpointRelayMode(t *testing.T) {
	s := NewServer("abc", WithServerMode(ModeRelay))
	if _, err := s.Join(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(2); err != nil {
		t.Fatal(err)
	}
	o := op.New().Retain(3).Insert("!")
	if _, _, err := s.Receive(ClientMsg{From: 1, Op: o, TS: Timestamp{T1: 0, T2: 1}, Ref: causal.OpRef{Site: 1, Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreServer(cp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode() != ModeRelay {
		t.Fatalf("restored mode %v, want relay", r.Mode())
	}
	if r.Text() != "abc!" {
		t.Fatalf("restored text %q", r.Text())
	}
}

// TestCheckpointSizeIsCompact sanity-checks the dehydration win: a parked
// session's bytes are on the order of the document plus the live bridges,
// not the engine's in-memory footprint.
func TestCheckpointSizeIsCompact(t *testing.T) {
	s, _ := ckptScriptServer(t, 99, 200)
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	bridgeOps := 0
	for _, site := range s.Sites() {
		bridgeOps += s.BridgeLen(site)
	}
	// Loose ceiling: doc bytes + ~64 bytes per live op (HB + bridges) + a
	// fixed header. Tightening it is fine; regressing past it means the
	// format grew something per-entry it should not have.
	limit := len(s.Text()) + 64*(s.History().Len()+bridgeOps) + 256
	if len(cp) > limit {
		t.Fatalf("checkpoint %d bytes exceeds ceiling %d (doc=%d hb=%d bridges=%d)",
			len(cp), limit, len(s.Text()), s.History().Len(), bridgeOps)
	}
	t.Log(fmt.Sprintf("checkpoint: %d bytes (doc=%d, hb=%d entries, bridges=%d ops)",
		len(cp), len(s.Text()), s.History().Len(), bridgeOps))
}
