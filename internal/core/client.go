package core

import (
	"errors"
	"fmt"

	"repro/internal/causal"
	"repro/internal/doc"
	"repro/internal/obs"
	"repro/internal/op"
	"repro/internal/trace"
)

// Client engine errors.
var (
	// ErrStaleOp indicates a locally generated operation whose base length
	// does not match the current document (the caller built it against an
	// outdated snapshot).
	ErrStaleOp = errors.New("core: operation does not fit current document")
	// ErrBadMessage indicates a structurally inconsistent incoming message.
	ErrBadMessage = errors.New("core: malformed message")
)

// Client is the engine of a collaborating site i ≠ 0 (paper Fig. 1: a
// REDUCE applet). It maintains the replicated document, the 2-element state
// vector, the history buffer, and — in ModeTransform — the bridge of
// unacknowledged local operations used to bring arriving notifier operations
// into local context.
//
// The engine is deliberately synchronous and single-goroutine: transports
// own the concurrency (one goroutine per connection) and feed the engine
// from a single loop, mirroring the event-loop structure of the original
// applets.
type Client struct {
	site int
	mode Mode
	sv   ClientSV
	buf  doc.Buffer
	hb   ClientHB

	// pending holds local operations the notifier has not yet incorporated
	// (TS.T2 acknowledgements prune it), each rebased so the list forms a
	// path from the notifier-known state to the local state. This is the
	// context bridge described in DESIGN.md §4.
	pending []pendingLocal

	// pcomp, when non-nil, is the composition of the entire pending list:
	// one Transform against pcomp brings an arriving notifier operation
	// into local context in O(1) instead of len(pending) pairwise
	// transforms (DESIGN.md §13). Generate extends it per local operation
	// (compose-on-append); an acknowledgement pruning pending drops it.
	pcomp *op.Op
	// punfolded records arrivals integrated through pcomp whose pairwise
	// rebase of the individual pending entries is still owed; settled on
	// the next pruning acknowledgement, skipped when the prune is total.
	punfolded []deferredFold
	// pcompHold suspends composition until the next acknowledgement
	// advances the frontier: an arrival failed op.ComposedTransformSafe
	// against this pending list, so rebuilding the cache every arrival
	// would pay the compose cost without ever taking the fast path.
	pcompHold bool

	// composeDepth is the pending depth at which Integrate builds pcomp
	// (defaultComposeDepth unless overridden; <= 0 disables composition).
	composeDepth int

	// compactEvery triggers history-buffer garbage collection after this
	// many integrations; 0 disables automatic compaction.
	compactEvery int
	sinceCompact int

	// checkTrace records per-entry Check verdicts into IntegrationResult
	// (WithClientCheckTrace); off by default so integration performs zero
	// per-check allocations.
	checkTrace bool

	// undo, when non-nil, tracks inverses of local operations (see
	// undo.go). Mutually exclusive with compaction.
	undo *undoStack

	// metrics, when non-nil, receives engine counters (trace package
	// names).
	metrics *trace.Metrics

	// decisions, when non-nil and enabled, records every formula-(5)
	// verdict and a per-Integrate summary (WithClientDecisionRing).
	decisions     *obs.DecisionRing
	decisionLabel string
}

type pendingLocal struct {
	seq uint64 // this op's SV_i[2] value
	op  *op.Op
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientBuffer substitutes the document implementation (default: rope).
func WithClientBuffer(b doc.Buffer) ClientOption {
	return func(c *Client) { c.buf = b }
}

// WithClientMode sets the operating mode (default: ModeTransform).
func WithClientMode(m Mode) ClientOption {
	return func(c *Client) { c.mode = m }
}

// WithClientCompaction enables automatic history compaction every n
// integrations (default 64; 0 disables).
func WithClientCompaction(n int) ClientOption {
	return func(c *Client) { c.compactEvery = n }
}

// WithClientComposeDepth sets the pending depth at which Integrate switches
// from the pairwise transform walk to the composed-suffix cache (default
// defaultComposeDepth). n <= 0 disables composition entirely — the naive
// reference path the differential fuzz target compares against.
func WithClientComposeDepth(n int) ClientOption {
	return func(c *Client) { c.composeDepth = n }
}

// WithClientResume continues the local operation counter from localOps —
// required when rejoining under a site id that generated operations before
// (pass Snapshot.LocalOps).
func WithClientResume(localOps uint64) ClientOption {
	return func(c *Client) { c.sv.Local = localOps }
}

// WithClientMetrics attaches a metrics sink counting generated/integrated
// operations, concurrency checks, and transformations.
func WithClientMetrics(m *trace.Metrics) ClientOption {
	return func(c *Client) { c.metrics = m }
}

// WithClientDecisionRing streams every formula-(5) concurrency verdict and a
// per-Integrate summary into ring, labeled with session. While the ring is
// disabled the cost is one atomic load per Integrate.
func WithClientDecisionRing(ring *obs.DecisionRing, session string) ClientOption {
	return func(c *Client) {
		c.decisions = ring
		c.decisionLabel = session
	}
}

// WithClientCheckTrace records every per-entry concurrency verdict into
// IntegrationResult.Checks. Validation harnesses need the trace to replay
// verdicts against the ground-truth oracle; the default path only counts
// (ConcurrentCount/CheckCount) and allocates nothing per check.
func WithClientCheckTrace() ClientOption {
	return func(c *Client) { c.checkTrace = true }
}

// count increments a counter when a sink is attached.
func (c *Client) count(name string, delta int64) {
	if c.metrics != nil {
		c.metrics.Inc(name, delta)
	}
}

// NewClient returns the engine for site (which must be >= 1), initialized
// with the snapshot text.
func NewClient(site int, initial string, opts ...ClientOption) *Client {
	if site < 1 {
		//lint:allow nopanic: constructor precondition — site 0 is the notifier (§3.2); a violation is a caller bug
		panic(fmt.Sprintf("core: client site must be >= 1, got %d", site))
	}
	c := &Client{site: site, compactEvery: 64, composeDepth: defaultComposeDepth}
	for _, o := range opts {
		o(c)
	}
	// Pre-create the cache counters so an attached registry exposes the
	// full catalogue deterministically (see NewServer).
	c.count(trace.CCacheHits, 0)
	c.count(trace.CCacheMisses, 0)
	c.count(trace.CComposes, 0)
	if c.buf == nil {
		c.buf = doc.NewRope(initial)
	} else if c.buf.Len() > 0 || initial != "" {
		// A caller-provided buffer must start out equal to the snapshot.
		if c.buf.String() != initial {
			//lint:allow nopanic: constructor precondition — a divergent injected buffer is a caller bug, not a runtime state
			panic("core: provided buffer disagrees with snapshot")
		}
	}
	return c
}

// Site returns the site identifier.
func (c *Client) Site() int { return c.site }

// Mode returns the operating mode.
func (c *Client) Mode() Mode { return c.mode }

// SV returns the current 2-element state vector.
func (c *Client) SV() ClientSV { return c.sv }

// Text returns the current document contents.
func (c *Client) Text() string { return c.buf.String() }

// DocLen returns the current document length in runes.
func (c *Client) DocLen() int { return c.buf.Len() }

// History exposes the history buffer (read-mostly; used by tests and the
// validation harness).
func (c *Client) History() *ClientHB { return &c.hb }

// PendingCount returns the number of local operations not yet acknowledged
// by the notifier.
func (c *Client) PendingCount() int { return len(c.pending) }

// Generate executes a local operation immediately (paper §2: local response
// must be as quick as a single-user editor — no communication in this path)
// and returns the timestamped message to propagate to the notifier.
func (c *Client) Generate(o *op.Op) (ClientMsg, error) {
	if o.BaseLen() != c.buf.Len() {
		return ClientMsg{}, fmt.Errorf("%w: op base %d, document %d",
			ErrStaleOp, o.BaseLen(), c.buf.Len())
	}
	var before []rune
	if c.undo != nil {
		before = snapshotRunes(c.buf)
	}
	if err := doc.Apply(c.buf, o); err != nil {
		return ClientMsg{}, fmt.Errorf("core: local apply: %w", err)
	}
	c.sv.Local++ // §3.2 rule 3
	ts := c.sv.Stamp()
	ref := causal.OpRef{Site: c.site, Seq: c.sv.Local}
	c.hb.Add(ClientEntry{Op: o, TS: ts, Origin: OriginLocal, Ref: ref})
	if c.undo != nil {
		// Recorded after hb.Add so the rebase walk starts at the entry
		// *after* the operation itself.
		if err := c.pushUndo(o, before); err != nil {
			return ClientMsg{}, fmt.Errorf("core: undo tracking: %w", err)
		}
	}
	if c.mode == ModeTransform {
		if c.pcomp != nil {
			// Compose-on-append keeps a warm cache covering the whole
			// pending list: o's base is the pre-o document, which is
			// exactly pcomp's target.
			var err error
			if c.pcomp, err = op.Compose(c.pcomp, o); err != nil {
				return ClientMsg{}, fmt.Errorf("core: pending compose: %w", err)
			}
			c.count(trace.CComposes, 1)
		}
		c.pending = append(c.pending, pendingLocal{seq: c.sv.Local, op: o.Clone()})
	}
	c.count(trace.COpsGenerated, 1)
	return ClientMsg{From: c.site, Op: o, TS: ts, Ref: ref}, nil
}

// Insert is a convenience wrapper generating Insert[text, pos].
func (c *Client) Insert(pos int, text string) (ClientMsg, error) {
	o, err := op.NewInsert(c.buf.Len(), pos, text)
	if err != nil {
		return ClientMsg{}, err
	}
	return c.Generate(o)
}

// Delete is a convenience wrapper generating Delete[count, pos].
func (c *Client) Delete(pos, count int) (ClientMsg, error) {
	o, err := op.NewDelete(c.buf.Len(), pos, count)
	if err != nil {
		return ClientMsg{}, err
	}
	return c.Generate(o)
}

// Integrate processes an operation propagated from the notifier: it runs the
// compressed-clock concurrency check (formula 5) against the history buffer,
// brings the operation into local context, executes it, updates the state
// vector (§3.2 rule 2), and buffers the executed form with its original
// propagation timestamp (§3.3).
func (c *Client) Integrate(m ServerMsg) (IntegrationResult, error) {
	if m.To != c.site {
		return IntegrationResult{}, fmt.Errorf("%w: message for site %d delivered to %d",
			ErrBadMessage, m.To, c.site)
	}
	if m.TS.T1 != c.sv.FromServer+1 {
		return IntegrationResult{}, fmt.Errorf("%w: server op T1=%d but %d already received (FIFO violated?)",
			ErrBadMessage, m.TS.T1, c.sv.FromServer)
	}

	// Concurrency detection — the paper's formula (5). The hot path reads
	// the count off the history buffer's boundary index in O(log HB)
	// (ConcurrentCount); tracing forces the linear reference walk, which
	// the differential tests hold to the same verdicts.
	res := IntegrationResult{CheckCount: c.hb.Len()}
	tracing := c.decisions.Enabled()
	if c.checkTrace || tracing {
		res.ConcurrentCount, res.Checks = c.tracedChecks(m, c.hb.Entries(), tracing)
	} else {
		res.ConcurrentCount = c.hb.ConcurrentCount(m.TS)
	}

	exec := m.Op
	transforms := 0
	switch c.mode {
	case ModeTransform:
		var err error
		exec, transforms, err = c.pendingWalk(m)
		if err != nil {
			return IntegrationResult{}, err
		}
		c.count(trace.CTransforms, int64(transforms))
		if err := doc.Apply(c.buf, exec); err != nil {
			return IntegrationResult{}, fmt.Errorf("core: client apply: %w", err)
		}
	case ModeRelay:
		// Ablation: execute the original form, clamped. Documents are
		// expected to diverge; that is the point of E8.
		applyLoose(c.buf, exec)
	}
	res.Transforms = transforms

	c.sv.FromServer++ // §3.2 rule 2
	c.hb.Add(ClientEntry{Op: exec, TS: m.TS, Origin: OriginServer, Ref: m.Ref})
	res.Executed = exec
	c.count(trace.COpsIntegrated, 1)
	c.count(trace.CConcurrencyChecks, int64(res.CheckCount))
	c.count(trace.CConcurrentPairs, int64(res.ConcurrentCount))
	if tracing {
		c.recordIntegrate(m, res.CheckCount, res.ConcurrentCount, transforms)
	}

	if c.compactEvery > 0 && c.undo == nil {
		c.sinceCompact++
		if c.sinceCompact >= c.compactEvery {
			c.sinceCompact = 0
			c.compactWith(m.TS.T2)
		}
	}
	return res, nil
}

// pendingWalk brings one arriving notifier operation into local context —
// the client mirror of Server.bridgeWalk. T2 acknowledges how many of our
// operations the notifier had incorporated when it generated this one;
// those leave the pending list, and the arrival is transformed across the
// remaining (concurrent) suffix, through the composed cache when it is warm
// or deep enough to build, pairwise otherwise. The remaining pending
// operations are exactly the buffered operations formula (5) just found
// concurrent (cross-checked by the session harness); notifier operations
// take tie-break priority everywhere.
func (c *Client) pendingWalk(m ServerMsg) (*op.Op, int, error) {
	exec := m.Op
	acked := m.TS.T2
	i := 0
	for i < len(c.pending) && c.pending[i].seq <= acked {
		i++
	}
	transforms := 0
	if i > 0 {
		// The frontier moved: settle owed folds if any entries survive,
		// then invalidate the cache. A total prune skips the replay.
		if len(c.punfolded) > 0 && i < len(c.pending) {
			t, err := foldPending(c.pending, c.punfolded)
			transforms += t
			if err != nil {
				return nil, 0, fmt.Errorf("core: client transform: %w", err)
			}
		}
		clearFolds(&c.punfolded)
		c.pcomp = nil
		c.pcompHold = false
		c.pending = c.pending[i:]
	}
	k := len(c.pending)
	if k == 0 {
		return exec, transforms, nil
	}
	if c.pcomp != nil {
		if op.ComposedTransformSafe(c.pcomp, exec) {
			var err error
			exec, c.pcomp, err = op.Transform(exec, c.pcomp)
			if err != nil {
				return nil, 0, fmt.Errorf("core: client transform: %w", err)
			}
			transforms++
			c.punfolded = append(c.punfolded, deferredFold{op: m.Op, maxSeq: c.pending[k-1].seq})
			c.count(trace.CCacheHits, 1)
			return exec, transforms, nil
		}
		// The arrival's inserts collide with a deleted region where the
		// composed form no longer pins insert order (DESIGN.md §13).
		// Settle what the cache deferred, drop it, and take the pairwise
		// reference path below.
		if len(c.punfolded) > 0 {
			t, err := foldPending(c.pending, c.punfolded)
			transforms += t
			if err != nil {
				return nil, 0, fmt.Errorf("core: client transform: %w", err)
			}
		}
		clearFolds(&c.punfolded)
		c.pcomp = nil
		c.pcompHold = true
	}
	if !c.pcompHold && c.composeDepth > 0 && k >= c.composeDepth {
		comp, err := composePending(c.pending)
		if err != nil {
			return nil, 0, fmt.Errorf("core: pending compose: %w", err)
		}
		c.count(trace.CComposes, int64(k-1))
		if op.ComposedTransformSafe(comp, exec) {
			exec, c.pcomp, err = op.Transform(exec, comp)
			if err != nil {
				return nil, 0, fmt.Errorf("core: client transform: %w", err)
			}
			transforms++
			c.punfolded = append(c.punfolded, deferredFold{op: m.Op, maxSeq: c.pending[k-1].seq})
			c.count(trace.CCacheMisses, 1)
			return exec, transforms, nil
		}
		c.pcompHold = true
	}
	var err error
	for j := range c.pending {
		exec, c.pending[j].op, err = op.Transform(exec, c.pending[j].op)
		if err != nil {
			return nil, 0, fmt.Errorf("core: client transform: %w", err)
		}
	}
	transforms += k
	c.count(trace.CCacheMisses, 1)
	return exec, transforms, nil
}

// foldPending settles deferred folds on the client side: each arrival
// integrated through pcomp is replayed pairwise across the pending entries
// it still owes (seq <= maxSeq), in arrival order; the rebased arrival is
// discarded — its composed equivalent already executed. See foldBridge.
func foldPending(pending []pendingLocal, unfolded []deferredFold) (int, error) {
	transforms := 0
	for _, u := range unfolded {
		uop := u.op
		var err error
		for j := range pending {
			if pending[j].seq > u.maxSeq {
				break
			}
			uop, pending[j].op, err = op.Transform(uop, pending[j].op)
			if err != nil {
				return transforms, err
			}
			transforms++
		}
	}
	return transforms, nil
}

// composePending folds the pending list into a single operation, oldest
// first.
func composePending(pending []pendingLocal) (*op.Op, error) {
	comp := pending[0].op
	for j := 1; j < len(pending); j++ {
		var err error
		comp, err = op.Compose(comp, pending[j].op)
		if err != nil {
			return nil, err
		}
	}
	return comp, nil
}

// tracedChecks is the cold variant of Integrate's formula-(5) scan, run only
// when the check trace or decision tracing is on. Keeping it out of
// Integrate (and not inlined) leaves the hot loop free of trace branches and
// Decision literals — same reasoning as Server.tracedVisit.
//
//go:noinline
func (c *Client) tracedChecks(m ServerMsg, entries []ClientEntry, tracing bool) (conc int, checks []Check) {
	if c.checkTrace {
		checks = make([]Check, 0, len(entries))
	}
	for i, e := range entries {
		cc := ConcurrentClient(m.TS, e.TS, e.Origin == OriginServer)
		if cc {
			conc++
		}
		if c.checkTrace {
			checks = append(checks, Check{Arriving: m.Ref, Buffered: e.Ref, Concurrent: cc})
		}
		if tracing {
			c.decisions.Record(obs.Decision{
				Kind: obs.DClientCheck, Session: c.decisionLabel,
				Site: c.site, T1: m.TS.T1, T2: m.TS.T2,
				Index: i, Concurrent: cc,
			})
		}
	}
	return conc, checks
}

// recordIntegrate emits the per-Integrate summary trace record; see
// recordCheck for why it is not inlined.
//
//go:noinline
func (c *Client) recordIntegrate(m ServerMsg, checkCount, concCount, transforms int) {
	c.decisions.Record(obs.Decision{
		Kind: obs.DClientIntegrate, Session: c.decisionLabel,
		Site: c.site, T1: m.TS.T1, T2: m.TS.T2, Index: -1,
		Checks: checkCount, NConc: concCount, Transforms: transforms,
	})
}

// Compact forces history-buffer garbage collection using the latest
// acknowledgement; returns the number of entries removed.
func (c *Client) Compact() int {
	// The newest server entry's T2 is the freshest acknowledgement seen.
	var acked uint64
	for _, e := range c.hb.Entries() {
		if e.Origin == OriginServer && e.TS.T2 > acked {
			acked = e.TS.T2
		}
	}
	return c.compactWith(acked)
}

// compactWith runs one compaction round and counts it.
func (c *Client) compactWith(acked uint64) int {
	removed := c.hb.Compact(acked)
	c.count(trace.CCompactions, 1)
	c.count(trace.CCompacted, int64(removed))
	return removed
}
