package core

import (
	"errors"
	"testing"

	"repro/internal/causal"
	"repro/internal/doc"
	"repro/internal/op"
)

func TestNewClientRejectsSiteZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("site 0 is the notifier; NewClient must panic")
		}
	}()
	NewClient(0, "")
}

func TestNewClientRejectsMismatchedBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on buffer/snapshot mismatch")
		}
	}()
	NewClient(1, "abc", WithClientBuffer(doc.NewSimple("xyz")))
}

func TestClientCustomBuffer(t *testing.T) {
	c := NewClient(1, "abc", WithClientBuffer(doc.NewGapBuffer("abc")))
	if _, err := c.Insert(3, "!"); err != nil {
		t.Fatal(err)
	}
	if c.Text() != "abc!" {
		t.Fatalf("custom buffer: %q", c.Text())
	}
}

func TestGenerateUpdatesStateVector(t *testing.T) {
	c := NewClient(1, "hello")
	m, err := c.Insert(5, "!")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SV(); got != (ClientSV{FromServer: 0, Local: 1}) {
		t.Fatalf("SV after local op: %v", got)
	}
	if m.TS != (Timestamp{0, 1}) || m.From != 1 {
		t.Fatalf("message: %+v", m)
	}
	if m.Ref != (causal.OpRef{Site: 1, Seq: 1}) {
		t.Fatalf("ref: %v", m.Ref)
	}
	if c.History().Len() != 1 || c.PendingCount() != 1 {
		t.Fatalf("hb %d pending %d", c.History().Len(), c.PendingCount())
	}
}

func TestGenerateStaleOp(t *testing.T) {
	c := NewClient(1, "hello")
	stale := op.New().Retain(3) // wrong base length
	if _, err := c.Generate(stale); !errors.Is(err, ErrStaleOp) {
		t.Fatalf("want ErrStaleOp, got %v", err)
	}
	if c.SV().Local != 0 || c.History().Len() != 0 {
		t.Fatal("failed generation must not mutate state")
	}
}

func TestGenerateBadPositions(t *testing.T) {
	c := NewClient(1, "ab")
	if _, err := c.Insert(5, "x"); err == nil {
		t.Fatal("insert past end must fail")
	}
	if _, err := c.Delete(1, 5); err == nil {
		t.Fatal("delete past end must fail")
	}
}

func TestIntegrateWrongDestination(t *testing.T) {
	c := NewClient(1, "")
	m := ServerMsg{To: 2, Op: op.New(), TS: Timestamp{1, 0}}
	if _, err := c.Integrate(m); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
}

func TestIntegrateFIFOViolation(t *testing.T) {
	c := NewClient(1, "x")
	// T1 must be exactly FromServer+1; skipping one is a FIFO violation.
	m := ServerMsg{To: 1, Op: op.New().Retain(1), TS: Timestamp{2, 0}}
	if _, err := c.Integrate(m); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage on gap, got %v", err)
	}
	// Replays (T1 too small) are rejected too.
	m.TS = Timestamp{0, 0}
	if _, err := c.Integrate(m); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage on replay, got %v", err)
	}
}

func TestClientCompaction(t *testing.T) {
	srv := NewServer("", WithServerCompaction(0))
	var cs [2]*Client
	for i := 1; i <= 2; i++ {
		snap, err := srv.Join(i)
		if err != nil {
			t.Fatal(err)
		}
		// compactEvery=1: compact after every integration.
		cs[i-1] = NewClient(i, snap.Text, WithClientCompaction(1))
	}
	// Ping-pong edits; history must stay bounded.
	for round := 0; round < 50; round++ {
		for i := 0; i < 2; i++ {
			m, err := cs[i].Insert(cs[i].DocLen(), "a")
			if err != nil {
				t.Fatal(err)
			}
			bcast, _, err := srv.Receive(m)
			if err != nil {
				t.Fatal(err)
			}
			for _, bm := range bcast {
				if _, err := cs[bm.To-1].Integrate(bm); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i, c := range cs {
		if c.History().Len() > 4 {
			t.Fatalf("client %d history grew to %d despite compaction", i+1, c.History().Len())
		}
		if c.History().Dropped() == 0 {
			t.Fatalf("client %d never compacted", i+1)
		}
	}
	if cs[0].Text() != cs[1].Text() || cs[0].Text() != srv.Text() {
		t.Fatal("divergence under compaction")
	}
}

func TestClientManualCompact(t *testing.T) {
	srv := NewServer("", WithServerCompaction(0))
	snap1, _ := srv.Join(1)
	snap2, _ := srv.Join(2)
	c1 := NewClient(1, snap1.Text, WithClientCompaction(0))
	c2 := NewClient(2, snap2.Text, WithClientCompaction(0))
	m, _ := c1.Insert(0, "hi")
	bcast, _, err := srv.Receive(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Integrate(bcast[0]); err != nil {
		t.Fatal(err)
	}
	// c2 generates one op; it is unacked, so Compact keeps it but drops the
	// server entry.
	if _, err := c2.Insert(0, "yo"); err != nil {
		t.Fatal(err)
	}
	if n := c2.Compact(); n != 1 {
		t.Fatalf("compact removed %d entries, want 1 (the server entry)", n)
	}
	if c2.History().Len() != 1 {
		t.Fatalf("history after compact: %d", c2.History().Len())
	}
}

func TestClientAccessors(t *testing.T) {
	c := NewClient(7, "abc", WithClientMode(ModeRelay))
	if c.Site() != 7 || c.Mode() != ModeRelay || c.DocLen() != 3 {
		t.Fatalf("accessors: %d %v %d", c.Site(), c.Mode(), c.DocLen())
	}
}
