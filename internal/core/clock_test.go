package core

import (
	"testing"

	"repro/internal/vclock"
)

func TestClientSVStamp(t *testing.T) {
	sv := ClientSV{FromServer: 3, Local: 2}
	if sv.Stamp() != (Timestamp{T1: 3, T2: 2}) {
		t.Fatalf("stamp: %v", sv.Stamp())
	}
	if sv.String() != "[3,2]" {
		t.Fatalf("string: %q", sv.String())
	}
}

func TestServerSVBasics(t *testing.T) {
	sv := NewServerSV(3)
	sv.Inc(2)
	sv.Inc(2)
	sv.Inc(3)
	if sv.Of(2) != 2 || sv.Of(3) != 1 || sv.Of(1) != 0 {
		t.Fatalf("counts: %v %v %v", sv.Of(1), sv.Of(2), sv.Of(3))
	}
	if sv.Sum() != 3 {
		t.Fatalf("sum %d", sv.Sum())
	}
	if sv.SumExcept(2) != 1 || sv.SumExcept(1) != 3 {
		t.Fatal("sumExcept wrong")
	}
	if sv.Of(99) != 0 || sv.SumExcept(99) != 3 {
		t.Fatal("out-of-range site must read as zero")
	}
}

func TestServerSVGrow(t *testing.T) {
	sv := NewServerSV(0)
	sv.Inc(5)
	if sv.Len() != 6 || sv.Of(5) != 1 {
		t.Fatalf("grow: len %d of5 %d", sv.Len(), sv.Of(5))
	}
}

// TestCompressMatchesPaperSection5 replays each compression the paper's §5
// walkthrough performs at site 0, asserting the exact printed timestamps.
func TestCompressMatchesPaperSection5(t *testing.T) {
	sv := NewServerSV(3)

	// After executing O2 (from site 2): SV_0 = [0,1,0].
	sv.Inc(2)
	if got := sv.Compress(1, 0); got != (Timestamp{1, 0}) {
		t.Fatalf("O2' to site 1: %v, paper says [1,0]", got)
	}
	if got := sv.Compress(3, 0); got != (Timestamp{1, 0}) {
		t.Fatalf("O2' to site 3: %v, paper says [1,0]", got)
	}

	// After executing O1 (from site 1): SV_0 = [1,1,0].
	sv.Inc(1)
	if got := sv.Compress(2, 0); got != (Timestamp{1, 1}) {
		t.Fatalf("O1' to site 2: %v, paper says [1,1]", got)
	}
	if got := sv.Compress(3, 0); got != (Timestamp{2, 0}) {
		t.Fatalf("O1' to site 3: %v, paper says [2,0]", got)
	}

	// After executing O4 (from site 3): SV_0 = [1,1,1].
	sv.Inc(3)
	if got := sv.Compress(1, 0); got != (Timestamp{2, 1}) {
		t.Fatalf("O4' to site 1: %v, paper says [2,1]", got)
	}
	if got := sv.Compress(2, 0); got != (Timestamp{2, 1}) {
		t.Fatalf("O4' to site 2: %v, paper says [2,1]", got)
	}

	// After executing O3 (from site 2): SV_0 = [1,2,1].
	sv.Inc(2)
	if got := sv.Compress(1, 0); got != (Timestamp{3, 1}) {
		t.Fatalf("O3' to site 1: %v, paper says [3,1]", got)
	}
	if got := sv.Compress(3, 0); got != (Timestamp{3, 1}) {
		t.Fatalf("O3' to site 3: %v, paper says [3,1]", got)
	}
}

// TestFormula5MatchesPaperVerdicts asserts every client-side concurrency
// verdict enumerated in §5.
func TestFormula5MatchesPaperVerdicts(t *testing.T) {
	cases := []struct {
		name       string
		ta         Timestamp // arriving op
		tb         Timestamp // buffered op
		fromServer bool
		want       bool
	}{
		{"O2' vs O1 at site 1", Timestamp{1, 0}, Timestamp{0, 1}, false, true},
		{"O1' vs O2 at site 2", Timestamp{1, 1}, Timestamp{0, 1}, false, false},
		{"O1' vs O2' at site 3", Timestamp{2, 0}, Timestamp{1, 0}, true, false},
		{"O1' vs O4 at site 3", Timestamp{2, 0}, Timestamp{1, 1}, false, true},
		{"O4' vs O1 at site 1", Timestamp{2, 1}, Timestamp{0, 1}, false, false},
		{"O4' vs O2' at site 1", Timestamp{2, 1}, Timestamp{1, 0}, true, false},
		{"O4' vs O2 at site 2", Timestamp{2, 1}, Timestamp{0, 1}, false, false},
		{"O4' vs O1' at site 2", Timestamp{2, 1}, Timestamp{1, 1}, true, false},
		{"O4' vs O3 at site 2", Timestamp{2, 1}, Timestamp{1, 2}, false, true},
		{"O3' vs O1 at site 1", Timestamp{3, 1}, Timestamp{0, 1}, false, false},
		{"O3' vs O2' at site 1", Timestamp{3, 1}, Timestamp{1, 0}, true, false},
		{"O3' vs O4' at site 1", Timestamp{3, 1}, Timestamp{2, 1}, true, false},
		{"O3' vs O2' at site 3", Timestamp{3, 1}, Timestamp{1, 0}, true, false},
		{"O3' vs O4 at site 3", Timestamp{3, 1}, Timestamp{1, 1}, false, false},
		{"O3' vs O1' at site 3", Timestamp{3, 1}, Timestamp{2, 0}, true, false},
	}
	for _, c := range cases {
		if got := ConcurrentClient(c.ta, c.tb, c.fromServer); got != c.want {
			t.Errorf("%s: formula (5) = %v, paper says %v", c.name, got, c.want)
		}
	}
}

// TestFormula7MatchesPaperVerdicts asserts every notifier-side concurrency
// verdict enumerated in §5.
func TestFormula7MatchesPaperVerdicts(t *testing.T) {
	// Full buffered timestamps from the walkthrough (index 0 unused).
	tsO2p := vclock.VC{0, 0, 1, 0}
	tsO1p := vclock.VC{0, 1, 1, 0}
	tsO4p := vclock.VC{0, 1, 1, 1}
	cases := []struct {
		name string
		ta   Timestamp
		x    int
		tb   vclock.VC
		y    int
		want bool
	}{
		{"O1 vs O2'", Timestamp{0, 1}, 1, tsO2p, 2, true},
		{"O4 vs O2'", Timestamp{1, 1}, 3, tsO2p, 2, false},
		{"O4 vs O1'", Timestamp{1, 1}, 3, tsO1p, 1, true},
		{"O3 vs O2' (same site)", Timestamp{1, 2}, 2, tsO2p, 2, false},
		{"O3 vs O1'", Timestamp{1, 2}, 2, tsO1p, 1, false},
		{"O3 vs O4'", Timestamp{1, 2}, 2, tsO4p, 3, true},
	}
	for _, c := range cases {
		if got := ConcurrentServer(c.ta, c.x, c.tb, c.y, 0); got != c.want {
			t.Errorf("%s: formula (7) = %v, paper says %v", c.name, got, c.want)
		}
	}
}

// TestGeneralFormulasAgreeWithSimplified: on inputs satisfying the FIFO
// preconditions the paper uses to simplify (T_Oa[1] > T_Ob[1] at clients;
// T_Oa[2] > T_Ob[x] and no same-site concurrency at the server), formulas
// (4)/(6) must agree with (5)/(7).
func TestGeneralFormulasAgreeWithSimplified(t *testing.T) {
	for t1a := uint64(0); t1a < 6; t1a++ {
		for t2a := uint64(0); t2a < 6; t2a++ {
			for t1b := uint64(0); t1b < 6; t1b++ {
				for t2b := uint64(0); t2b < 6; t2b++ {
					ta := Timestamp{t1a, t2a}
					tb := Timestamp{t1b, t2b}
					for _, fromServer := range []bool{false, true} {
						if !(ta.T1 > tb.T1) {
							continue // FIFO precondition for dropping condition 1
						}
						g := ConcurrentClientGeneral(ta, tb, fromServer)
						s := ConcurrentClient(ta, tb, fromServer)
						if g != s {
							t.Fatalf("formulas (4)/(5) disagree: ta=%v tb=%v srv=%v: %v vs %v",
								ta, tb, fromServer, g, s)
						}
					}
				}
			}
		}
	}

	// Server side: enumerate small full vectors.
	for v1 := uint64(0); v1 < 3; v1++ {
		for v2 := uint64(0); v2 < 3; v2++ {
			for v3 := uint64(0); v3 < 3; v3++ {
				tb := vclock.VC{0, v1, v2, v3}
				for x := 1; x <= 3; x++ {
					for y := 1; y <= 3; y++ {
						for t1a := uint64(0); t1a < 5; t1a++ {
							for t2a := uint64(0); t2a < 5; t2a++ {
								ta := Timestamp{t1a, t2a}
								if !(ta.T2 > tb[x]) {
									continue // FIFO precondition
								}
								if x == y {
									continue // FIFO rules out same-site concurrency
								}
								g := ConcurrentServerGeneral(ta, x, tb, y, 0)
								s := ConcurrentServer(ta, x, tb, y, 0)
								if g != s {
									t.Fatalf("formulas (6)/(7) disagree: ta=%v x=%d tb=%v y=%d: %v vs %v",
										ta, x, tb, y, g, s)
								}
							}
						}
					}
				}
			}
		}
	}
}

func TestCompressWithJoinBaseline(t *testing.T) {
	sv := NewServerSV(2)
	sv.Inc(1)
	sv.Inc(2)
	// Site 3 joins now: everything so far is in its snapshot.
	baseline := sv.Sum() // 2
	sv.Grow(3)
	sv.Inc(1)
	got := sv.Compress(3, baseline)
	if got != (Timestamp{1, 0}) {
		t.Fatalf("late joiner timestamp: %v, want [1,0] (one op since join)", got)
	}
}

func TestModeString(t *testing.T) {
	if ModeTransform.String() != "transform" || ModeRelay.String() != "relay" {
		t.Fatal("mode names")
	}
}

func TestOriginString(t *testing.T) {
	if OriginLocal.String() != "local" || OriginServer.String() != "server" {
		t.Fatal("origin names")
	}
}

func TestTimestampString(t *testing.T) {
	if (Timestamp{3, 1}).String() != "[3,1]" {
		t.Fatalf("timestamp string %q", Timestamp{3, 1}.String())
	}
}
