package core

import (
	"testing"

	"repro/internal/causal"
	"repro/internal/op"
)

// Exhaustive interleaving tests: for small scripted scenarios, enumerate
// EVERY delivery schedule the star topology permits (generations in
// per-site program order; each up-delivery after its generation; each
// down-delivery after its up-delivery; FIFO per link) and replay each one
// through fresh engines. Convergence and oracle-agreement must hold on all
// of them — not just on the schedules random tests happen to sample.

// script describes the ops each site generates, as functions of the current
// local document.
type scriptOp struct {
	site  int
	build func(docLen int) (*op.Op, error)
}

// event is one atomic step of a schedule.
type event struct {
	kind int // 0 = generate, 1 = deliver-to-server, 2 = deliver-to-client
	site int // generating site (kind 0, 1) or destination (kind 2)
	op   int // script index (kind 0, 1); for kind 2: broadcast sequence toward site
}

// enumerate generates all valid schedules and calls run on each, stopping
// early on failure. It returns the number of schedules explored.
func enumerate(t *testing.T, script []scriptOp, nClients int, run func(order []event)) int {
	t.Helper()

	// Pre-compute the event set. Down-deliveries: each script op, once
	// executed at the server, is broadcast to every client except its
	// origin. The broadcast order toward one client equals the server
	// execution order, which depends on the schedule — so down-events are
	// modeled per (destination) as "next broadcast", created dynamically.
	perSiteOps := map[int][]int{}
	for i, so := range script {
		perSiteOps[so.site] = append(perSiteOps[so.site], i)
	}

	type state struct {
		generated    map[int]int   // per site: how many of its script ops generated
		upQueue      map[int][]int // per site: generated-but-undelivered script indexes (FIFO)
		serverSeen   int           // ops executed at server
		serverOrder  []int         // script indexes in server execution order
		downDeliv    map[int]int   // per client: broadcasts integrated
		totalActions int
	}

	var order []event
	count := 0

	var dfs func(st *state)
	dfs = func(st *state) {
		if t.Failed() {
			return
		}
		progressed := false

		// Choice 1: some site generates its next scripted op.
		for site, ops := range perSiteOps {
			g := st.generated[site]
			if g >= len(ops) {
				continue
			}
			progressed = true
			st.generated[site]++
			st.upQueue[site] = append(st.upQueue[site], ops[g])
			order = append(order, event{kind: 0, site: site, op: ops[g]})
			dfs(st)
			order = order[:len(order)-1]
			st.upQueue[site] = st.upQueue[site][:len(st.upQueue[site])-1]
			st.generated[site]--
		}

		// Choice 2: the server receives the head of some up-queue.
		for site := 1; site <= nClients; site++ {
			q := st.upQueue[site]
			if len(q) == 0 {
				continue
			}
			progressed = true
			idx := q[0]
			st.upQueue[site] = q[1:]
			st.serverOrder = append(st.serverOrder, idx)
			st.serverSeen++
			order = append(order, event{kind: 1, site: site, op: idx})
			dfs(st)
			order = order[:len(order)-1]
			st.serverSeen--
			st.serverOrder = st.serverOrder[:len(st.serverOrder)-1]
			st.upQueue[site] = append([]int{idx}, st.upQueue[site]...)
		}

		// Choice 3: some client integrates its next broadcast. The k-th
		// broadcast toward client c is the k-th server-executed op not
		// originating at c.
		for site := 1; site <= nClients; site++ {
			k := st.downDeliv[site]
			// Find the (k+1)-th server op not from this site.
			seen := 0
			found := false
			for _, idx := range st.serverOrder {
				if script[idx].site == site {
					continue
				}
				if seen == k {
					found = true
					break
				}
				seen++
			}
			if !found {
				continue
			}
			progressed = true
			st.downDeliv[site]++
			order = append(order, event{kind: 2, site: site, op: k})
			dfs(st)
			order = order[:len(order)-1]
			st.downDeliv[site]--
		}

		if !progressed {
			count++
			run(append([]event(nil), order...))
		}
	}

	dfs(&state{
		generated: map[int]int{},
		upQueue:   map[int][]int{},
		downDeliv: map[int]int{},
	})
	return count
}

// replay executes one schedule on fresh engines and validates convergence
// plus every concurrency verdict against the oracle.
func replaySchedule(t *testing.T, script []scriptOp, nClients int, initial string, order []event) {
	t.Helper()
	srv := NewServer(initial, WithServerCompaction(0), WithServerCheckTrace())
	clients := map[int]*Client{}
	for site := 1; site <= nClients; site++ {
		snap, err := srv.Join(site)
		if err != nil {
			t.Fatal(err)
		}
		clients[site] = NewClient(site, snap.Text, WithClientCompaction(0), WithClientCheckTrace())
	}
	oracle := causal.NewOracle()
	var checks []Check
	msgs := map[int]ClientMsg{}         // script index -> generated msg
	broadcasts := map[int][]ServerMsg{} // destination -> FIFO broadcasts

	for _, ev := range order {
		switch ev.kind {
		case 0:
			c := clients[ev.site]
			o, err := script[ev.op].build(c.DocLen())
			if err != nil {
				t.Fatalf("script op %d: %v", ev.op, err)
			}
			m, err := c.Generate(o)
			if err != nil {
				t.Fatalf("generate %d: %v", ev.op, err)
			}
			msgs[ev.op] = m
			oracle.Generate(ev.site, m.Ref)
		case 1:
			m := msgs[ev.op]
			bcast, ir, err := srv.Receive(m)
			if err != nil {
				t.Fatalf("server receive %d: %v", ev.op, err)
			}
			checks = append(checks, ir.Checks...)
			oracle.Execute(0, m.Ref)
			newRef := causal.OpRef{Site: 0, Seq: uint64(srv.History().Len())}
			if len(bcast) > 0 {
				newRef = bcast[0].Ref
			}
			oracle.GenerateDerived(0, newRef, m.Ref)
			for _, bm := range bcast {
				broadcasts[bm.To] = append(broadcasts[bm.To], bm)
			}
		case 2:
			q := broadcasts[ev.site]
			if ev.op >= len(q) {
				t.Fatalf("schedule bug: delivery %d of %d to site %d", ev.op, len(q), ev.site)
			}
			bm := q[ev.op]
			ir, err := clients[ev.site].Integrate(bm)
			if err != nil {
				t.Fatalf("integrate at %d: %v", ev.site, err)
			}
			checks = append(checks, ir.Checks...)
			oracle.Execute(ev.site, bm.Ref)
		}
	}

	want := srv.Text()
	for site, c := range clients {
		if c.Text() != want {
			t.Fatalf("schedule %v: site %d %q vs server %q", order, site, c.Text(), want)
		}
	}
	oracle.Seal()
	for _, ch := range checks {
		if ch.Concurrent != oracle.Concurrent(ch.Arriving, ch.Buffered) {
			t.Fatalf("schedule %v: verdict %v vs oracle for %v / %v",
				order, ch.Concurrent, ch.Arriving, ch.Buffered)
		}
	}
}

func TestExhaustiveTwoClients(t *testing.T) {
	const initial = "ABCDE"
	script := []scriptOp{
		{site: 1, build: func(n int) (*op.Op, error) { return op.NewInsert(n, min(1, n), "12") }},
		{site: 1, build: func(n int) (*op.Op, error) { return op.NewDelete(n, 0, min(1, n)) }},
		{site: 2, build: func(n int) (*op.Op, error) { return op.NewDelete(n, min(2, n-1), min(3, n-min(2, n-1))) }},
	}
	count := enumerate(t, script, 2, func(order []event) {
		replaySchedule(t, script, 2, initial, order)
	})
	if count < 100 {
		t.Fatalf("suspiciously few schedules: %d", count)
	}
	t.Logf("explored %d schedules", count)
}

func TestExhaustiveThreeClients(t *testing.T) {
	const initial = "base"
	script := []scriptOp{
		{site: 1, build: func(n int) (*op.Op, error) { return op.NewInsert(n, 0, "<a>") }},
		{site: 2, build: func(n int) (*op.Op, error) { return op.NewInsert(n, n, "<b>") }},
		{site: 3, build: func(n int) (*op.Op, error) { return op.NewInsert(n, n/2, "<c>") }},
	}
	count := enumerate(t, script, 3, func(order []event) {
		replaySchedule(t, script, 3, initial, order)
	})
	if count < 1000 {
		t.Fatalf("suspiciously few schedules: %d", count)
	}
	t.Logf("explored %d schedules", count)
}

func TestExhaustiveInsertDeleteConflict(t *testing.T) {
	// Two sites editing overlapping regions: one deletes a range into
	// which the other concurrently inserts — the delete-splitting case —
	// under every possible schedule.
	const initial = "abcdef"
	script := []scriptOp{
		{site: 1, build: func(n int) (*op.Op, error) { return op.NewInsert(n, min(3, n), "XY") }},
		{site: 2, build: func(n int) (*op.Op, error) {
			if n < 2 {
				return op.New().Retain(n), nil
			}
			return op.NewDelete(n, 1, min(4, n-1))
		}},
	}
	count := enumerate(t, script, 2, func(order []event) {
		replaySchedule(t, script, 2, initial, order)
	})
	t.Logf("explored %d schedules", count)
}
