package core

import "repro/internal/causal"

// CheckInvariants exposes the engine's internal consistency checks to tests.
func (s *Server) CheckInvariants() error { return s.checkInvariants() }

// PendingSeqs exposes the bridge contents for the concurrent-set ≡
// pending-set cross-validation.
func (c *Client) PendingSeqs() []uint64 {
	out := make([]uint64, len(c.pending))
	for i, p := range c.pending {
		out[i] = p.seq
	}
	return out
}

// BridgeRefs exposes the refs of the unacknowledged broadcasts toward site,
// for the concurrent-set ≡ bridge-set cross-validation.
func (s *Server) BridgeRefs(site int) []causal.OpRef {
	st, ok := s.clients[site]
	if !ok {
		return nil
	}
	out := make([]causal.OpRef, len(st.bridge))
	for i, b := range st.bridge {
		out[i] = b.ref
	}
	return out
}
