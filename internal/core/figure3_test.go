package core

import (
	"testing"

	"repro/internal/causal"
	"repro/internal/vclock"
)

// TestFigure3Walkthrough replays the paper's §5 scenario (Fig. 3) end to end
// on real engines, asserting every compressed timestamp, every concurrency
// verdict, the history-buffer evolution at site 0, and final convergence.
//
// Concrete operations (the figure is abstract; §2.2 supplies O1 and O2):
//
//	document  "ABCDE"
//	O1 @site1 Insert["12", 1]
//	O2 @site2 Delete[3, 2]
//	O4 @site3 Insert["x", 2]   (generated after executing O2', doc "AB")
//	O3 @site2 Insert["!", 4]   (generated after executing O1', doc "A12B")
//
// Arrival order at site 0: O2, O1, O4, O3 — exactly Fig. 2/3.
func TestFigure3Walkthrough(t *testing.T) {
	srv := NewServer("ABCDE", WithServerCompaction(0), WithServerCheckTrace())
	clients := map[int]*Client{}
	for site := 1; site <= 3; site++ {
		snap, err := srv.Join(site)
		if err != nil {
			t.Fatal(err)
		}
		clients[site] = NewClient(site, snap.Text, WithClientCompaction(0), WithClientCheckTrace())
	}
	c1, c2, c3 := clients[1], clients[2], clients[3]

	refO := func(site int, seq uint64) causal.OpRef { return causal.OpRef{Site: site, Seq: seq} }
	// Transformed operations are new site-0 operations, numbered by server
	// execution order: O2'=1, O1'=2, O4'=3, O3'=4.
	refO2p, refO1p, refO4p, refO3p := refO(0, 1), refO(0, 2), refO(0, 3), refO(0, 4)

	wantTS := func(name string, got, want Timestamp) {
		t.Helper()
		if got != want {
			t.Fatalf("%s: timestamp %v, paper says %v", name, got, want)
		}
	}
	wantVerdicts := func(name string, res IntegrationResult, want map[causal.OpRef]bool) {
		t.Helper()
		if len(res.Checks) != len(want) {
			t.Fatalf("%s: %d checks, want %d", name, len(res.Checks), len(want))
		}
		for _, ch := range res.Checks {
			w, ok := want[ch.Buffered]
			if !ok {
				t.Fatalf("%s: unexpected check against %v", name, ch.Buffered)
			}
			if ch.Concurrent != w {
				t.Fatalf("%s: verdict vs %v = %v, paper says %v", name, ch.Buffered, ch.Concurrent, w)
			}
		}
	}
	findMsg := func(msgs []ServerMsg, to int) ServerMsg {
		t.Helper()
		for _, m := range msgs {
			if m.To == to {
				return m
			}
		}
		t.Fatalf("no broadcast to site %d", to)
		return ServerMsg{}
	}

	// --- O1 and O2 generated concurrently --------------------------------
	m1, err := c1.Insert(1, "12")
	if err != nil {
		t.Fatal(err)
	}
	wantTS("O1 at site 1", m1.TS, Timestamp{0, 1})
	if c1.Text() != "A12BCDE" {
		t.Fatalf("site 1 after O1: %q", c1.Text())
	}

	m2, err := c2.Delete(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantTS("O2 at site 2", m2.TS, Timestamp{0, 1})
	if c2.Text() != "AB" {
		t.Fatalf("site 2 after O2: %q", c2.Text())
	}

	// --- Handling O2 at site 0 -------------------------------------------
	bcastO2, resO2, err := srv.Receive(m2)
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O2 at site 0 (empty HB)", resO2, map[causal.OpRef]bool{})
	wantTS("O2' to site 1", findMsg(bcastO2, 1).TS, Timestamp{1, 0})
	wantTS("O2' to site 3", findMsg(bcastO2, 3).TS, Timestamp{1, 0})
	if srv.Text() != "AB" {
		t.Fatalf("site 0 after O2: %q", srv.Text())
	}
	if hb := srv.History().Entries(); len(hb) != 1 ||
		vclock.Compare(srv.History().TS(0), vclock.VC{0, 0, 1, 0}) != vclock.Equal {
		t.Fatalf("HB_0 after O2': %+v, paper says [O2'] with [0,1,0]", hb)
	}

	// O2' at site 3 (empty HB): executed as-is.
	res, err := c3.Integrate(findMsg(bcastO2, 3))
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O2' at site 3", res, map[causal.OpRef]bool{})
	if c3.Text() != "AB" {
		t.Fatalf("site 3 after O2': %q", c3.Text())
	}

	// Site 3 generates O4 (after O2', so O2 → O4 as in §2.4).
	m4, err := c3.Insert(2, "x")
	if err != nil {
		t.Fatal(err)
	}
	wantTS("O4 at site 3", m4.TS, Timestamp{1, 1})

	// O2' at site 1: concurrent with buffered O1 (paper: O2' ∥ O1 because
	// T_O1[2]=1 > T_O2'[2]=0); transformed before execution.
	res, err = c1.Integrate(findMsg(bcastO2, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O2' at site 1", res, map[causal.OpRef]bool{refO(1, 1): true})
	if c1.Text() != "A12B" {
		t.Fatalf("site 1 after transformed O2': %q (the §2.3 intention-preserved result)", c1.Text())
	}

	// --- Handling O1 at site 0 -------------------------------------------
	bcastO1, resO1, err := srv.Receive(m1)
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O1 at site 0", resO1, map[causal.OpRef]bool{refO2p: true})
	wantTS("O1' to site 2", findMsg(bcastO1, 2).TS, Timestamp{1, 1})
	wantTS("O1' to site 3", findMsg(bcastO1, 3).TS, Timestamp{2, 0})
	if srv.Text() != "A12B" {
		t.Fatalf("site 0 after O1': %q", srv.Text())
	}
	if hb := srv.History().Entries(); len(hb) != 2 ||
		vclock.Compare(srv.History().TS(1), vclock.VC{0, 1, 1, 0}) != vclock.Equal {
		t.Fatalf("HB_0 after O1': %+v, paper says [...,O1'] with [1,1,0]", hb)
	}

	// O1' at site 2: not concurrent with O2 (same origin chain).
	res, err = c2.Integrate(findMsg(bcastO1, 2))
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O1' at site 2", res, map[causal.OpRef]bool{refO(2, 1): false})
	if c2.Text() != "A12B" {
		t.Fatalf("site 2 after O1': %q", c2.Text())
	}

	// Site 2 generates O3 (after O1 and O2, matching §2.4's O1→O3, O2→O3).
	m3, err := c2.Insert(4, "!")
	if err != nil {
		t.Fatal(err)
	}
	wantTS("O3 at site 2", m3.TS, Timestamp{1, 2})

	// --- Handling O4 at site 0 -------------------------------------------
	bcastO4, resO4, err := srv.Receive(m4)
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O4 at site 0", resO4, map[causal.OpRef]bool{refO2p: false, refO1p: true})
	wantTS("O4' to site 1", findMsg(bcastO4, 1).TS, Timestamp{2, 1})
	wantTS("O4' to site 2", findMsg(bcastO4, 2).TS, Timestamp{2, 1})
	if srv.Text() != "A12Bx" {
		t.Fatalf("site 0 after O4': %q", srv.Text())
	}
	if hb := srv.History().Entries(); len(hb) != 3 ||
		vclock.Compare(srv.History().TS(2), vclock.VC{0, 1, 1, 1}) != vclock.Equal {
		t.Fatalf("HB_0 after O4': %+v, paper says [...,O4'] with [1,1,1]", hb)
	}

	// O4' at site 1: concurrent with nothing.
	res, err = c1.Integrate(findMsg(bcastO4, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O4' at site 1", res, map[causal.OpRef]bool{refO(1, 1): false, refO2p: false})
	if c1.Text() != "A12Bx" {
		t.Fatalf("site 1 after O4': %q", c1.Text())
	}

	// O4' at site 2: concurrent with O3 only.
	res, err = c2.Integrate(findMsg(bcastO4, 2))
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O4' at site 2", res, map[causal.OpRef]bool{
		refO(2, 1): false, refO1p: false, refO(2, 2): true,
	})

	// --- Handling O3 at site 0 -------------------------------------------
	bcastO3, resO3, err := srv.Receive(m3)
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O3 at site 0", resO3, map[causal.OpRef]bool{
		refO2p: false, refO1p: false, refO4p: true,
	})
	wantTS("O3' to site 1", findMsg(bcastO3, 1).TS, Timestamp{3, 1})
	wantTS("O3' to site 3", findMsg(bcastO3, 3).TS, Timestamp{3, 1})
	if hb := srv.History().Entries(); len(hb) != 4 ||
		vclock.Compare(srv.History().TS(3), vclock.VC{0, 1, 2, 1}) != vclock.Equal {
		t.Fatalf("HB_0 after O3': %+v, paper says [...,O3'] with [1,2,1]", hb)
	}

	// O1' reaches site 3 late (Fig. 3): concurrent with local O4 only.
	res, err = c3.Integrate(findMsg(bcastO1, 3))
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O1' at site 3", res, map[causal.OpRef]bool{refO2p: false, refO(3, 1): true})
	if c3.Text() != "A12Bx" {
		t.Fatalf("site 3 after O1': %q", c3.Text())
	}

	// O3' at site 1 and site 3: concurrent with nothing.
	res, err = c1.Integrate(findMsg(bcastO3, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O3' at site 1", res, map[causal.OpRef]bool{
		refO(1, 1): false, refO2p: false, refO4p: false,
	})
	res, err = c3.Integrate(findMsg(bcastO3, 3))
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts("O3' at site 3", res, map[causal.OpRef]bool{
		refO2p: false, refO(3, 1): false, refO1p: false,
	})
	_ = refO3p

	// --- Convergence and intention preservation --------------------------
	want := "A12Bx!"
	for site, c := range clients {
		if c.Text() != want {
			t.Fatalf("site %d final %q, want %q", site, c.Text(), want)
		}
	}
	// Sites 1 and 3 have had their local ops acknowledged by later
	// broadcasts; site 2's O3 stays pending because no message follows O4'
	// toward site 2 in Fig. 3.
	for site, wantPending := range map[int]int{1: 0, 2: 1, 3: 0} {
		if got := clients[site].PendingCount(); got != wantPending {
			t.Fatalf("site %d pending %d, want %d", site, got, wantPending)
		}
	}
	if srv.Text() != want {
		t.Fatalf("site 0 final %q, want %q", srv.Text(), want)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Final state vectors (Fig. 3 right edge): SV_0 = [1,2,1]; clients have
	// received 3 server ops each and generated 1, 2, 1 locally.
	if got := srv.SV().Full(); vclock.Compare(got, vclock.VC{0, 1, 2, 1}) != vclock.Equal {
		t.Fatalf("final SV_0 = %v", got)
	}
	for site, wantSV := range map[int]ClientSV{
		1: {FromServer: 3, Local: 1},
		2: {FromServer: 2, Local: 2}, // O2', O3' are its own ops; it only receives O1', O4'
		3: {FromServer: 3, Local: 1},
	} {
		if got := clients[site].SV(); got != wantSV {
			t.Fatalf("site %d final SV %v, want %v", site, got, wantSV)
		}
	}
}
