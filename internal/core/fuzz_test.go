package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/op"
)

// fuzzWorld is one self-contained star session (notifier + clients + FIFO
// queues) driven by FuzzIntegrateEquivalence. Two worlds run the identical
// schedule, differing only in composeDepth.
type fuzzWorld struct {
	srv      *Server
	clients  map[int]*Client
	toServer map[int][]ClientMsg
	toClient map[int][]ServerMsg
}

func newFuzzWorld(t *testing.T, n int, composeDepth, compactEvery int) *fuzzWorld {
	w := &fuzzWorld{
		srv: NewServer("seed", WithServerComposeDepth(composeDepth),
			WithServerCompaction(compactEvery)),
		clients:  make(map[int]*Client),
		toServer: make(map[int][]ClientMsg),
		toClient: make(map[int][]ServerMsg),
	}
	for site := 1; site <= n; site++ {
		snap, err := w.srv.Join(site)
		if err != nil {
			t.Fatal(err)
		}
		w.clients[site] = NewClient(site, snap.Text,
			WithClientComposeDepth(composeDepth), WithClientCompaction(compactEvery))
	}
	return w
}

// FuzzIntegrateEquivalence is the differential gate on the composed-suffix
// transform cache (DESIGN.md §13): a byte-driven op schedule is executed in
// two worlds — composeDepth 1 forces the boundary+composed-cache fast path
// onto every multi-entry walk, composeDepth 0 is the naive per-entry
// pairwise scan — and every observable must stay byte-identical: generated
// and broadcast timestamps, executed operations, concurrency verdicts
// (formula 5/7 counts), per-replica documents after every single event, and
// the fully-drained converged text.
func FuzzIntegrateEquivalence(f *testing.F) {
	// Seeds: quiet session, generate-heavy burst, lagged-site catch-up
	// (generate many at one site before any delivery), mixed interleavings,
	// and delete-dense traffic that exercises the ComposedTransformSafe
	// fallback.
	f.Add([]byte{2})
	f.Add([]byte{3, 0x00, 0x10, 0x04, 0x21, 0x01, 0x00, 0x02, 0x00})
	f.Add([]byte{2, 0x00, 0x05, 0x00, 0x45, 0x00, 0x85, 0x00, 0xc5, 0x01, 0x00, 0x01, 0x00, 0x02, 0x00, 0x02, 0x00})
	f.Add(bytes.Repeat([]byte{0x00, 0x97, 0x04, 0xd3, 0x01, 0x00, 0x02, 0x01, 0x06, 0x44}, 12))
	f.Add(bytes.Repeat([]byte{0x00, 0xff, 0x04, 0xfe, 0x08, 0xfd, 0x01, 0x00, 0x05, 0x00, 0x02, 0x00, 0x06, 0x00}, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 512 {
			t.Skip()
		}
		n := 2 + int(data[0])%3 // 2–4 clients
		// Compaction runs eagerly so the schedule also exercises dropped
		// prefixes under both paths.
		fast := newFuzzWorld(t, n, 1, 2)
		naive := newFuzzWorld(t, n, 0, 2)

		step := 0
		for i := 1; i+1 < len(data); i += 2 {
			code, arg := data[i], data[i+1]
			site := 1 + int(code>>2)%n
			step++
			switch code % 4 {
			case 0: // generate one local op at site
				mf, ok := fuzzGenerate(t, fast, site, arg, step)
				mn, ok2 := fuzzGenerate(t, naive, site, arg, step)
				if ok != ok2 {
					t.Fatalf("step %d: generate diverged: fast=%v naive=%v", step, ok, ok2)
				}
				if ok && mf.TS != mn.TS {
					t.Fatalf("step %d: generated timestamps diverge: %v vs %v", step, mf.TS, mn.TS)
				}
			case 1: // deliver one queued client op to the notifier
				fuzzDeliverServer(t, fast, naive, site, step)
			default: // deliver one queued broadcast to the client
				fuzzDeliverClient(t, fast, naive, site, step)
			}
			fuzzCompareWorlds(t, fast, naive, step)
		}
		// Drain both worlds to quiescence and require full convergence.
		fuzzDrain(t, fast, naive)
		want := fast.srv.Text()
		if naive.srv.Text() != want {
			t.Fatalf("final server texts diverge: fast %q, naive %q", want, naive.srv.Text())
		}
		for site, c := range fast.clients {
			if c.Text() != want {
				t.Fatalf("fast world did not converge: site %d %q, server %q", site, c.Text(), want)
			}
			if nc := naive.clients[site].Text(); nc != want {
				t.Fatalf("naive world did not converge: site %d %q, server %q", site, nc, want)
			}
		}
		if err := fast.srv.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// fuzzGenerate builds one deterministic local operation from arg and queues
// it toward the server; both worlds derive the identical op because their
// documents are identical up to this step.
func fuzzGenerate(t *testing.T, w *fuzzWorld, site int, arg byte, step int) (ClientMsg, bool) {
	c := w.clients[site]
	dl := c.DocLen()
	var o *op.Op
	var err error
	if arg < 160 || dl == 0 {
		pos := 0
		if dl > 0 {
			pos = int(arg) % (dl + 1)
		}
		text := string(rune('a' + int(arg)%26))
		if arg%5 == 0 {
			text += string(rune('A' + int(arg)%26))
		}
		o, err = op.NewInsert(dl, pos, text)
	} else {
		pos := int(arg) % dl
		count := 1 + int(arg)%min(3, dl-pos)
		o, err = op.NewDelete(dl, pos, count)
	}
	if err != nil {
		t.Fatalf("step %d: build op: %v", step, err)
	}
	m, err := c.Generate(o)
	if err != nil {
		t.Fatalf("step %d: generate at %d: %v", step, site, err)
	}
	w.toServer[site] = append(w.toServer[site], m)
	return m, true
}

// fuzzDeliverServer pops one upstream message in each world and compares the
// integration verdicts and resulting broadcasts field by field.
func fuzzDeliverServer(t *testing.T, fast, naive *fuzzWorld, site, step int) {
	qf, qn := fast.toServer[site], naive.toServer[site]
	if len(qf) != len(qn) {
		t.Fatalf("step %d: upstream queue depth diverged at %d: %d vs %d", step, site, len(qf), len(qn))
	}
	if len(qf) == 0 {
		return
	}
	mf, mn := qf[0], qn[0]
	fast.toServer[site], naive.toServer[site] = qf[1:], qn[1:]
	bf, rf, err := fast.srv.Receive(mf)
	if err != nil {
		t.Fatalf("step %d: fast receive: %v", step, err)
	}
	bn, rn, err := naive.srv.Receive(mn)
	if err != nil {
		t.Fatalf("step %d: naive receive: %v", step, err)
	}
	if rf.ConcurrentCount != rn.ConcurrentCount || rf.CheckCount != rn.CheckCount {
		t.Fatalf("step %d: formula-(7) verdicts diverge: fast %d/%d, naive %d/%d",
			step, rf.ConcurrentCount, rf.CheckCount, rn.ConcurrentCount, rn.CheckCount)
	}
	if len(bf) != len(bn) {
		t.Fatalf("step %d: broadcast fan-out diverged: %d vs %d", step, len(bf), len(bn))
	}
	for i := range bf {
		if bf[i].To != bn[i].To || bf[i].TS != bn[i].TS || bf[i].Ref != bn[i].Ref {
			t.Fatalf("step %d: broadcast %d diverged: %+v vs %+v", step, i, bf[i], bn[i])
		}
		if !bf[i].Op.Equal(bn[i].Op) {
			t.Fatalf("step %d: executed op diverged: %v vs %v", step, bf[i].Op, bn[i].Op)
		}
		fast.toClient[bf[i].To] = append(fast.toClient[bf[i].To], bf[i])
		naive.toClient[bn[i].To] = append(naive.toClient[bn[i].To], bn[i])
	}
	if err := fast.srv.CheckInvariants(); err != nil {
		t.Fatalf("step %d: %v", step, err)
	}
}

// fuzzDeliverClient pops one downstream broadcast in each world and compares
// the formula-(5) verdicts.
func fuzzDeliverClient(t *testing.T, fast, naive *fuzzWorld, site, step int) {
	qf, qn := fast.toClient[site], naive.toClient[site]
	if len(qf) != len(qn) {
		t.Fatalf("step %d: downstream queue depth diverged at %d: %d vs %d", step, site, len(qf), len(qn))
	}
	if len(qf) == 0 {
		return
	}
	mf, mn := qf[0], qn[0]
	fast.toClient[site], naive.toClient[site] = qf[1:], qn[1:]
	rf, err := fast.clients[site].Integrate(mf)
	if err != nil {
		t.Fatalf("step %d: fast integrate at %d: %v", step, site, err)
	}
	rn, err := naive.clients[site].Integrate(mn)
	if err != nil {
		t.Fatalf("step %d: naive integrate at %d: %v", step, site, err)
	}
	if rf.ConcurrentCount != rn.ConcurrentCount || rf.CheckCount != rn.CheckCount {
		t.Fatalf("step %d: formula-(5) verdicts diverge at %d: fast %d/%d, naive %d/%d",
			step, site, rf.ConcurrentCount, rf.CheckCount, rn.ConcurrentCount, rn.CheckCount)
	}
}

// fuzzCompareWorlds asserts every replica's document is byte-identical
// across the two worlds after an event.
func fuzzCompareWorlds(t *testing.T, fast, naive *fuzzWorld, step int) {
	if f, n := fast.srv.Text(), naive.srv.Text(); f != n {
		t.Fatalf("step %d: server texts diverge:\nfast  %q\nnaive %q", step, f, n)
	}
	for site, c := range fast.clients {
		if f, n := c.Text(), naive.clients[site].Text(); f != n {
			t.Fatalf("step %d: site %d texts diverge:\nfast  %q\nnaive %q", step, site, f, n)
		}
	}
}

// fuzzDrain delivers every queued message in both worlds, upstream first,
// until quiescent, comparing after each event.
func fuzzDrain(t *testing.T, fast, naive *fuzzWorld) {
	for pass := 0; ; pass++ {
		moved := false
		for site := range fast.clients {
			for len(fast.toServer[site]) > 0 {
				fuzzDeliverServer(t, fast, naive, site, -pass)
				moved = true
			}
		}
		for site := range fast.clients {
			for len(fast.toClient[site]) > 0 {
				fuzzDeliverClient(t, fast, naive, site, -pass)
				moved = true
			}
		}
		if !moved {
			return
		}
		fuzzCompareWorlds(t, fast, naive, -pass)
		if pass > 10000 {
			t.Fatal("drain did not quiesce")
		}
	}
}

// TestIntegrateEquivalenceSeeds replays the fuzz seeds as a plain test so
// `go test` exercises the differential harness without -fuzz. The deep
// deterministic schedule drives a genuinely lagged site through the cache.
func TestIntegrateEquivalenceSeeds(t *testing.T) {
	// One site generates a long burst while another delivers around it:
	// deep pending lists and bridges on both sides of the star.
	var lagged []byte
	lagged = append(lagged, 2)
	for i := 0; i < 40; i++ {
		lagged = append(lagged, 0x00, byte(i*7)) // site 1 generates
	}
	for i := 0; i < 20; i++ {
		lagged = append(lagged, 0x04, byte(i*11)) // site 2 generates
	}
	for i := 0; i < 80; i++ {
		lagged = append(lagged, 0x01, 0x00, 0x02, 0x00, 0x06, 0x00) // deliveries
	}
	schedules := [][]byte{
		lagged,
		bytes.Repeat([]byte{0x00, 0x9b, 0x04, 0xa1, 0x01, 0x00, 0x02, 0x00, 0x06, 0x00}, 30),
	}
	for i, data := range schedules {
		t.Run(fmt.Sprintf("schedule=%d", i), func(t *testing.T) {
			n := 2 + int(data[0])%3
			fast := newFuzzWorld(t, n, 1, 2)
			naive := newFuzzWorld(t, n, 0, 2)
			for j, step := 1, 0; j+1 < len(data); j += 2 {
				code, arg := data[j], data[j+1]
				site := 1 + int(code>>2)%n
				step++
				switch code % 4 {
				case 0:
					fuzzGenerate(t, fast, site, arg, step)
					fuzzGenerate(t, naive, site, arg, step)
				case 1:
					fuzzDeliverServer(t, fast, naive, site, step)
				default:
					fuzzDeliverClient(t, fast, naive, site, step)
				}
				fuzzCompareWorlds(t, fast, naive, step)
			}
			fuzzDrain(t, fast, naive)
			fuzzCompareWorlds(t, fast, naive, -1)
		})
	}
}
