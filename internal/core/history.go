package core

import (
	"repro/internal/causal"
	"repro/internal/op"
	"repro/internal/vclock"
)

// Origin classifies a client history-buffer entry for the y selector of
// formulas (4)–(5).
type Origin uint8

// Client history entry origins.
const (
	// OriginLocal: the entry was generated at this site (y = 2).
	OriginLocal Origin = iota
	// OriginServer: the entry was propagated from site 0 (y = 1).
	OriginServer
)

// String names the origin.
func (o Origin) String() string {
	if o == OriginLocal {
		return "local"
	}
	return "server"
}

// ClientEntry is one executed operation saved in a client's history buffer
// (paper §2.3, §3.3): the executed form, its original 2-element propagation
// timestamp, and its origin.
type ClientEntry struct {
	Op     *op.Op
	TS     Timestamp
	Origin Origin
	// Ref is the operation's causal identity, used by the validation
	// harness to compare clock verdicts against the ground-truth oracle.
	Ref causal.OpRef
}

// ClientHB is the history buffer of a client site.
type ClientHB struct {
	entries []ClientEntry
	dropped int
}

// Add appends an executed operation.
func (h *ClientHB) Add(e ClientEntry) { h.entries = append(h.entries, e) }

// Len returns the number of buffered operations.
func (h *ClientHB) Len() int { return len(h.entries) }

// Dropped returns how many entries garbage collection has removed.
func (h *ClientHB) Dropped() int { return h.dropped }

// Entries returns the live entries, oldest first. The slice is owned by the
// buffer.
func (h *ClientHB) Entries() []ClientEntry { return h.entries }

// ConcurrentWith runs the simplified client check (formula 5) of a newly
// arrived operation's timestamp against every buffered entry and returns the
// concurrent ones, oldest first.
func (h *ClientHB) ConcurrentWith(ta Timestamp) []ClientEntry {
	var out []ClientEntry
	for _, e := range h.entries {
		if ConcurrentClient(ta, e.TS, e.Origin == OriginServer) {
			out = append(out, e)
		}
	}
	return out
}

// Compact garbage-collects entries that can never again be concurrent with a
// future arrival. T2 of server messages (operations of ours the server has
// incorporated) is monotone, so:
//
//   - server-origin entries are causally before every future arrival (the
//     notifier serializes) and can go immediately;
//   - local entries with TS.T2 <= ackedLocal are covered by the server's
//     knowledge and can go.
//
// It returns the number of entries removed.
func (h *ClientHB) Compact(ackedLocal uint64) int {
	kept := h.entries[:0]
	for _, e := range h.entries {
		if e.Origin == OriginLocal && e.TS.T2 > ackedLocal {
			kept = append(kept, e)
		}
	}
	n := len(h.entries) - len(kept)
	h.entries = kept
	h.dropped += n
	return n
}

// ServerEntry is one executed operation saved in the notifier's history
// buffer, timestamped with the full state vector (paper §3.3) and tagged
// with the site that originally generated it (the y of formulas 6–7).
type ServerEntry struct {
	Op     *op.Op
	TS     vclock.VC // full SV_0 value at buffering time
	Origin int       // original generator site y
	Ref    causal.OpRef

	// sum caches Σ TS so the per-check Σ_{j≠x} TS[j] of formula (7) is a
	// single subtraction instead of an O(N) scan. Set by Add.
	sum uint64
}

// ServerHB is the notifier's history buffer.
type ServerHB struct {
	entries []ServerEntry
	dropped int
}

// Add appends an executed operation.
func (h *ServerHB) Add(e ServerEntry) {
	e.sum = e.TS.Sum()
	h.entries = append(h.entries, e)
}

// Len returns the number of buffered operations.
func (h *ServerHB) Len() int { return len(h.entries) }

// Dropped returns how many entries garbage collection has removed.
func (h *ServerHB) Dropped() int { return h.dropped }

// Entries returns the live entries, oldest first. The slice is owned by the
// buffer.
func (h *ServerHB) Entries() []ServerEntry { return h.entries }

// ConcurrentWith runs the simplified server check (formula 7) of an
// operation newly arrived from site x (timestamp ta, join baseline
// baselineX) against every buffered entry and returns the concurrent ones,
// oldest first.
func (h *ServerHB) ConcurrentWith(ta Timestamp, x int, baselineX uint64) []ServerEntry {
	var out []ServerEntry
	for i := range h.entries {
		if h.concurrentAt(i, ta, x, baselineX) {
			out = append(out, h.entries[i])
		}
	}
	return out
}

// concurrentAt is formula (7) against entry i using the cached sum.
func (h *ServerHB) concurrentAt(i int, ta Timestamp, x int, baselineX uint64) bool {
	e := &h.entries[i]
	var tbx uint64
	if x < len(e.TS) {
		tbx = e.TS[x]
	}
	return ConcurrentServerSum(ta, x, e.sum, tbx, e.Origin, baselineX)
}

// Compact garbage-collects entries no future arrival can be concurrent
// with. An entry from origin y is needed while some *other* site x has
// acknowledged fewer broadcasts than the entry's broadcast index toward x
// (Σ_{j≠x} TS[j] − baseline_x). acked maps live site → highest T1 it has
// sent; baselines maps site → its join baseline. It returns the number of
// entries removed. Only a prefix is collected — the HB stays a suffix of the
// execution order.
func (h *ServerHB) Compact(acked map[int]uint64, baselines map[int]uint64) int {
	cut := 0
	for _, e := range h.entries {
		needed := false
		for x, a := range acked {
			if x == e.Origin {
				continue
			}
			// Entries already folded into x's join snapshot (broadcast
			// index not past the baseline) were never sent to x at all.
			if se := sumExceptVC(e.TS, x); se > baselines[x] && se-baselines[x] > a {
				needed = true
				break
			}
		}
		if needed {
			break
		}
		cut++
	}
	if cut == 0 {
		return 0
	}
	h.entries = append(h.entries[:0], h.entries[cut:]...)
	h.dropped += cut
	return cut
}
