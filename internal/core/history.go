package core

import (
	"sort"

	"repro/internal/causal"
	"repro/internal/op"
	"repro/internal/vclock"
)

// Origin classifies a client history-buffer entry for the y selector of
// formulas (4)–(5).
type Origin uint8

// Client history entry origins.
const (
	// OriginLocal: the entry was generated at this site (y = 2).
	OriginLocal Origin = iota
	// OriginServer: the entry was propagated from site 0 (y = 1).
	OriginServer
)

// String names the origin.
func (o Origin) String() string {
	if o == OriginLocal {
		return "local"
	}
	return "server"
}

// ClientEntry is one executed operation saved in a client's history buffer
// (paper §2.3, §3.3): the executed form, its original 2-element propagation
// timestamp, and its origin.
type ClientEntry struct {
	Op     *op.Op
	TS     Timestamp
	Origin Origin
	// Ref is the operation's causal identity, used by the validation
	// harness to compare clock verdicts against the ground-truth oracle.
	Ref causal.OpRef
}

// ClientHB is the history buffer of a client site.
//
// Besides the entries it keeps a boundary index: the positions and keys of
// the two origin subsequences. In any real execution the keys are strictly
// increasing — local entries carry TS.T2 = SV_i[2] which §3.2 rule 3
// increments per generation, server entries carry TS.T1 = SV_i[1] which
// rule 2 increments per integration — so formula (5) is a monotone
// predicate on each subsequence and the concurrent entries form two
// suffixes locatable by binary search (ConcurrentCount, Boundary).
type ClientHB struct {
	entries []ClientEntry
	dropped int

	localPos  []int    // live indices of OriginLocal entries, ascending
	localKey  []uint64 // their TS.T2 values, parallel to localPos
	serverPos []int    // live indices of OriginServer entries, ascending
	serverKey []uint64 // their TS.T1 values, parallel to serverPos

	// unordered is set when a synthetic buffer (tests, replay tooling)
	// appended keys out of order; the binary-search fast paths then fall
	// back to the linear scan so verdicts never depend on the invariant.
	unordered bool
}

// Add appends an executed operation.
func (h *ClientHB) Add(e ClientEntry) {
	h.index(len(h.entries), e)
	h.entries = append(h.entries, e)
}

// index records entry e (about to live at index i) in the boundary index.
func (h *ClientHB) index(i int, e ClientEntry) {
	if e.Origin == OriginLocal {
		if n := len(h.localKey); n > 0 && e.TS.T2 <= h.localKey[n-1] {
			h.unordered = true
		}
		h.localPos = append(h.localPos, i)
		h.localKey = append(h.localKey, e.TS.T2)
		return
	}
	if n := len(h.serverKey); n > 0 && e.TS.T1 <= h.serverKey[n-1] {
		h.unordered = true
	}
	h.serverPos = append(h.serverPos, i)
	h.serverKey = append(h.serverKey, e.TS.T1)
}

// Len returns the number of buffered operations.
func (h *ClientHB) Len() int { return len(h.entries) }

// Dropped returns how many entries garbage collection has removed.
func (h *ClientHB) Dropped() int { return h.dropped }

// Entries returns the live entries, oldest first. The slice is owned by the
// buffer.
func (h *ClientHB) Entries() []ClientEntry { return h.entries }

// ConcurrentWith runs the simplified client check (formula 5) of a newly
// arrived operation's timestamp against every buffered entry and returns the
// concurrent ones, oldest first. This is the linear reference walk; the
// engines use ConcurrentCount, which the differential tests hold to the same
// verdicts.
func (h *ClientHB) ConcurrentWith(ta Timestamp) []ClientEntry {
	var out []ClientEntry
	for _, e := range h.entries {
		if ConcurrentClient(ta, e.TS, e.Origin == OriginServer) {
			out = append(out, e)
		}
	}
	return out
}

// ConcurrentCount returns how many buffered entries are concurrent with an
// arrival timestamped ta under formula (5), in O(log HB): within each origin
// subsequence the compared key is strictly increasing, so the concurrent
// entries are a suffix found by binary search.
func (h *ClientHB) ConcurrentCount(ta Timestamp) int {
	if h.unordered {
		n := 0
		for _, e := range h.entries {
			if ConcurrentClient(ta, e.TS, e.Origin == OriginServer) {
				n++
			}
		}
		return n
	}
	nl := len(h.localKey) - sort.Search(len(h.localKey), func(i int) bool { return h.localKey[i] > ta.T2 })
	ns := len(h.serverKey) - sort.Search(len(h.serverKey), func(i int) bool { return h.serverKey[i] > ta.T1 })
	return nl + ns
}

// Boundary returns the smallest live index i such that every buffered entry
// concurrent with ta sits at index >= i — Len() when nothing is concurrent.
// The two origin subsequences contribute one suffix head each; the boundary
// is the earlier of the two. Entries at or after the boundary are not
// necessarily all concurrent: causally-preceding entries of the other origin
// may interleave with the concurrent suffix.
func (h *ClientHB) Boundary(ta Timestamp) int {
	if h.unordered {
		for i, e := range h.entries {
			if ConcurrentClient(ta, e.TS, e.Origin == OriginServer) {
				return i
			}
		}
		return len(h.entries)
	}
	b := len(h.entries)
	if k := sort.Search(len(h.localKey), func(i int) bool { return h.localKey[i] > ta.T2 }); k < len(h.localPos) && h.localPos[k] < b {
		b = h.localPos[k]
	}
	if k := sort.Search(len(h.serverKey), func(i int) bool { return h.serverKey[i] > ta.T1 }); k < len(h.serverPos) && h.serverPos[k] < b {
		b = h.serverPos[k]
	}
	return b
}

// Compact garbage-collects entries that can never again be concurrent with a
// future arrival. T2 of server messages (operations of ours the server has
// incorporated) is monotone, so:
//
//   - server-origin entries are causally before every future arrival (the
//     notifier serializes) and can go immediately;
//   - local entries with TS.T2 <= ackedLocal are covered by the server's
//     knowledge and can go.
//
// It returns the number of entries removed.
func (h *ClientHB) Compact(ackedLocal uint64) int {
	kept := h.entries[:0]
	for _, e := range h.entries {
		if e.Origin == OriginLocal && e.TS.T2 > ackedLocal {
			kept = append(kept, e)
		}
	}
	n := len(h.entries) - len(kept)
	// Zero the vacated tail so dropped *op.Op values are not pinned against
	// the GC by the reused backing array.
	for i := len(kept); i < len(h.entries); i++ {
		h.entries[i] = ClientEntry{}
	}
	h.entries = kept
	h.dropped += n
	// Survivors moved to new indices: rebuild the boundary index (and
	// re-derive orderedness — a previously poisoned synthetic buffer may
	// have compacted back to a monotone one).
	h.localPos, h.localKey = h.localPos[:0], h.localKey[:0]
	h.serverPos, h.serverKey = h.serverPos[:0], h.serverKey[:0]
	h.unordered = false
	for i, e := range h.entries {
		h.index(i, e)
	}
	return n
}

// ServerEntry is one executed operation saved in the notifier's history
// buffer, tagged with the site that originally generated it (the y of
// formulas 6–7).
//
// The paper (§3.3) timestamps each buffered operation with the full
// N-element state vector. Storing that vector per entry would make the
// notifier's history O(N·HB) words; instead the buffer stores only the
// origin site per entry and reconstructs any TS value on demand from the
// single vector snapshot it keeps for the *newest* entry (see ServerHB):
// consecutive entries differ by exactly one unit increment at the origin
// site, so entry i's vector is the tail snapshot minus the increments of the
// entries after i. Total memory is O(HB) + O(N).
type ServerEntry struct {
	Op     *op.Op
	Origin int // original generator site y
	Ref    causal.OpRef
}

// ServerHB is the notifier's history buffer.
//
// Invariant (delta encoding): entry i's full state-vector timestamp is
//
//	TS_i[x] = tail[x] − (# entries j > i with Origin_j == x)
//	Σ TS_i  = tailSum − (len(entries)−1−i)
//
// where tail is the SV_0 snapshot at the newest Add. Both identities hold
// because every Add pairs with exactly one SV_0 increment at the entry's
// origin, and Compact only removes a prefix.
type ServerHB struct {
	entries []ServerEntry
	dropped int

	// tail mirrors SV_0 as of the newest entry; counts[x] is the number of
	// buffered entries with Origin == x (so tail[x]−counts[x] is TS[x] of
	// the entry *before* the oldest buffered one).
	tail    vclock.VC
	counts  vclock.VC
	tailSum uint64

	// byOrigin[x] lists the absolute indices (live index + dropped) of the
	// buffered entries with Origin == x, ascending. Boundary uses it as an
	// O(log) oracle for "operations from x among the first i entries"; it
	// always holds exactly counts[x] elements.
	byOrigin [][]int
}

// Add appends an executed operation, advancing the tail snapshot by one unit
// at e.Origin — the delta form of the paper's "timestamp with the full state
// vector" that performs no O(N) copy.
func (h *ServerHB) Add(e ServerEntry) {
	h.grow(e.Origin)
	h.tail[e.Origin]++
	h.tailSum++
	h.counts[e.Origin]++
	h.byOrigin[e.Origin] = append(h.byOrigin[e.Origin], h.dropped+len(h.entries))
	h.entries = append(h.entries, e)
}

// AddFull appends an operation whose full state-vector timestamp is known —
// used by tests and replay tooling that construct buffers standalone. ts
// must be the previous newest timestamp plus a unit increment at e.Origin
// (the only sequence a real notifier can produce).
func (h *ServerHB) AddFull(e ServerEntry, ts vclock.VC) {
	h.tail = ts.Copy()
	h.tailSum = ts.Sum()
	h.grow(e.Origin)
	h.counts[e.Origin]++
	h.byOrigin[e.Origin] = append(h.byOrigin[e.Origin], h.dropped+len(h.entries))
	h.entries = append(h.entries, e)
}

// Grow extends the tail snapshot to cover site (zero-valued), keeping
// reconstructed timestamps dimensioned like SV_0; the owning Server calls it
// on Join.
func (h *ServerHB) Grow(site int) { h.grow(site) }

func (h *ServerHB) grow(site int) {
	for len(h.tail) <= site {
		h.tail = append(h.tail, 0)
	}
	for len(h.counts) <= site {
		h.counts = append(h.counts, 0)
	}
	for len(h.byOrigin) <= site {
		h.byOrigin = append(h.byOrigin, nil)
	}
}

// Len returns the number of buffered operations.
func (h *ServerHB) Len() int { return len(h.entries) }

// Dropped returns how many entries garbage collection has removed.
func (h *ServerHB) Dropped() int { return h.dropped }

// Entries returns the live entries, oldest first. The slice is owned by the
// buffer.
func (h *ServerHB) Entries() []ServerEntry { return h.entries }

// TS reconstructs the full state-vector timestamp of entry i (an O(N + HB)
// walk back from the tail snapshot; diagnostics and tests only — the hot
// path never materializes a vector).
func (h *ServerHB) TS(i int) vclock.VC {
	out := h.tail.Copy()
	for j := len(h.entries) - 1; j > i; j-- {
		out[h.entries[j].Origin]--
	}
	return out
}

// Sum returns Σ TS of entry i in O(1) via the delta invariant.
func (h *ServerHB) Sum(i int) uint64 {
	return h.tailSum - uint64(len(h.entries)-1-i)
}

// ClockWords returns how many clock words the buffer keeps to timestamp
// every buffered entry — tail + counts + tailSum, O(N) regardless of Len(),
// versus the O(N·Len) of the paper's full-vector-per-entry storage (§3.3).
// Reported by BenchmarkE4ClockMemory.
func (h *ServerHB) ClockWords() int { return len(h.tail) + len(h.counts) + 1 }

// ConcurrentCount returns how many buffered entries are concurrent (formula
// 7) with an operation newly arrived from site x (timestamp ta, join
// baseline baselineX), in O(1) from the delta invariant alone.
//
// Derivation: with n buffered entries, entry i has Σ TS_i = tailSum−(n−1−i)
// and TS_i[x] = beforeX + seenX(i), beforeX = tail[x]−counts[x]. Writing
// nonX(i) = i+1−seenX(i) (the 1-based rank of entry i among non-x entries
// when Origin_i ≠ x),
//
//	Σ TS_i − TS_i[x] = (tailSum − n − beforeX) + nonX(i) = base + nonX(i)
//
// where base = Σ_{j≠x} (tail[j]−counts[j]) ≥ 0. Formula (7) — concurrent ⟺
// Origin_i ≠ x ∧ Σ TS_i − TS_i[x] > ta.T1 + baselineX — is therefore
// monotone in the non-x rank: exactly the non-x entries with rank above
// (ta.T1 + baselineX) − base are concurrent, and counting them needs no
// scan at all.
func (h *ServerHB) ConcurrentCount(ta Timestamp, x int, baselineX uint64) int {
	n := uint64(len(h.entries))
	if n == 0 {
		return 0
	}
	var tailX, totalX uint64
	if x >= 0 && x < len(h.tail) {
		tailX = h.tail[x]
	}
	if x >= 0 && x < len(h.counts) {
		totalX = h.counts[x]
	}
	base := h.tailSum - n - (tailX - totalX)
	totalNonX := n - totalX
	rhs := ta.T1 + baselineX
	if rhs <= base {
		return int(totalNonX)
	}
	if covered := rhs - base; covered < totalNonX {
		return int(totalNonX - covered)
	}
	return 0
}

// Boundary returns the smallest live index i such that every buffered entry
// concurrent with an arrival from x (formula 7) sits at index >= i — Len()
// when nothing is concurrent. Since concurrency is monotone in an entry's
// non-x rank (see ConcurrentCount), the boundary is the position of the
// first concurrent non-x entry, located by a binary search over live
// indices with a nested search into byOrigin[x] supplying seenX — O(log²)
// total, never touching the entries. Operations from x itself may
// interleave after the boundary; they are never concurrent with x's own
// arrival.
func (h *ServerHB) Boundary(ta Timestamp, x int, baselineX uint64) int {
	n := len(h.entries)
	cc := h.ConcurrentCount(ta, x, baselineX)
	if cc == 0 {
		return n
	}
	var xs []int
	if x >= 0 && x < len(h.byOrigin) {
		xs = h.byOrigin[x]
	}
	r0 := (n - len(xs)) - cc + 1 // non-x rank of the first concurrent entry
	return sort.Search(n, func(i int) bool {
		abs := h.dropped + i
		seenX := sort.Search(len(xs), func(j int) bool { return xs[j] > abs })
		return i+1-seenX >= r0
	})
}

// checkArrival runs the simplified server check (formula 7) of an operation
// newly arrived from site x (timestamp ta, join baseline baselineX) against
// the buffer and returns the number of concurrent entries. With a nil visit
// the count comes straight from the O(1) closed form (ConcurrentCount) —
// the hot path never walks the buffer. A non-nil visit (the opt-in check
// trace and decision ring) forces the linear reference walk, which doubles
// as the naive oracle the differential tests compare the closed form
// against; the scan itself allocates nothing.
//
// TS[x] and Σ TS per entry come from the delta invariant: a single forward
// pass keeps a running count of buffered operations from x, so each check
// stays O(1) as in the cached-sum formulation of ConcurrentServerSum.
func (h *ServerHB) checkArrival(ta Timestamp, x int, baselineX uint64, visit func(i int, e *ServerEntry, conc bool)) int {
	if visit == nil {
		return h.ConcurrentCount(ta, x, baselineX)
	}
	n := len(h.entries)
	if n == 0 {
		return 0
	}
	var tailX, totalX uint64
	if x < len(h.tail) {
		tailX = h.tail[x]
	}
	if x < len(h.counts) {
		totalX = h.counts[x]
	}
	// beforeX is TS[x] of the entry preceding the oldest buffered one;
	// adding the running seenX count yields TS_i[x] for every i.
	beforeX := tailX - totalX
	seenX := uint64(0)
	sum := h.tailSum - uint64(n-1)
	concurrent := 0
	for i := range h.entries {
		e := &h.entries[i]
		if e.Origin == x {
			seenX++
		}
		conc := ConcurrentServerSum(ta, x, sum, beforeX+seenX, e.Origin, baselineX)
		if conc {
			concurrent++
		}
		if visit != nil {
			visit(i, e, conc)
		}
		sum++
	}
	return concurrent
}

// ConcurrentWith runs formula (7) of an operation newly arrived from site x
// against every buffered entry and returns the concurrent ones, oldest
// first.
func (h *ServerHB) ConcurrentWith(ta Timestamp, x int, baselineX uint64) []ServerEntry {
	var out []ServerEntry
	h.checkArrival(ta, x, baselineX, func(i int, e *ServerEntry, conc bool) {
		if conc {
			out = append(out, *e)
		}
	})
	return out
}

// Compact garbage-collects entries no future arrival can be concurrent
// with. An entry from origin y is needed while some *other* site x has
// acknowledged fewer broadcasts than the entry's broadcast index toward x
// (Σ_{j≠x} TS[j] − baseline_x). acked maps live site → highest T1 it has
// sent; baselines maps site → its join baseline. It returns the number of
// entries removed. Only a prefix is collected — the HB stays a suffix of the
// execution order.
func (h *ServerHB) Compact(acked map[int]uint64, baselines map[int]uint64) int {
	n := len(h.entries)
	if n == 0 || len(acked) == 0 {
		return 0
	}
	// Precompute per-site retention state once: the threshold below which a
	// broadcast index is already covered (baseline + acked, since
	// se > b && se−b > a  ⟺  se > b+a for unsigned a), and the site's
	// TS[x] before the oldest entry. The per-entry loop then touches a
	// small slice instead of re-iterating a map in nondeterministic order.
	type retention struct {
		site   int
		thr    uint64 // baseline + acked broadcasts
		tsx    uint64 // running TS_i[site], advanced as entries pass
	}
	sites := make([]retention, 0, len(acked))
	for x, a := range acked {
		var tailX, totalX uint64
		if x >= 0 && x < len(h.tail) {
			tailX = h.tail[x]
		}
		if x >= 0 && x < len(h.counts) {
			totalX = h.counts[x]
		}
		sites = append(sites, retention{site: x, thr: baselines[x] + a, tsx: tailX - totalX})
	}
	sum := h.tailSum - uint64(n-1)
	cut := 0
scan:
	for i := range h.entries {
		e := &h.entries[i]
		for k := range sites {
			s := &sites[k]
			if s.site == e.Origin {
				s.tsx++ // this entry is an op from s.site: TS[site] advances
				continue
			}
			// se = Σ_{j≠x} TS_i[j]; the entry is still needed by x when its
			// broadcast index toward x exceeds what x has acknowledged.
			if se := sum - s.tsx; se > s.thr {
				break scan
			}
		}
		cut++
		sum++
	}
	if cut == 0 {
		return 0
	}
	for i := 0; i < cut; i++ {
		h.counts[h.entries[i].Origin]--
	}
	// Drop the cut prefix from the per-origin index. Absolute indices are
	// stable across compaction, so only the leading elements below the new
	// dropped offset go; copying down (rather than re-slicing) keeps the
	// backing arrays from accreting a dead prefix over a long session.
	newDropped := h.dropped + cut
	for x := range h.byOrigin {
		lst := h.byOrigin[x]
		k := sort.Search(len(lst), func(i int) bool { return lst[i] >= newDropped })
		if k > 0 {
			h.byOrigin[x] = lst[:copy(lst, lst[k:])]
		}
	}
	kept := copy(h.entries, h.entries[cut:])
	// Zero the vacated tail so dropped *op.Op values are not pinned against
	// the GC by the reused backing array.
	for i := kept; i < len(h.entries); i++ {
		h.entries[i] = ServerEntry{}
	}
	h.entries = h.entries[:kept]
	h.dropped += cut
	return cut
}
