package core

import (
	"testing"

	"repro/internal/causal"
	"repro/internal/vclock"
)

func TestClientHBConcurrentWith(t *testing.T) {
	var hb ClientHB
	hb.Add(ClientEntry{TS: Timestamp{0, 1}, Origin: OriginLocal, Ref: causal.OpRef{Site: 1, Seq: 1}})
	hb.Add(ClientEntry{TS: Timestamp{1, 0}, Origin: OriginServer, Ref: causal.OpRef{Site: 0, Seq: 1}})
	hb.Add(ClientEntry{TS: Timestamp{1, 2}, Origin: OriginLocal, Ref: causal.OpRef{Site: 1, Seq: 2}})

	// Arrival with T2=1: only the local entry with T2=2 is concurrent.
	conc := hb.ConcurrentWith(Timestamp{2, 1})
	if len(conc) != 1 || conc[0].Ref != (causal.OpRef{Site: 1, Seq: 2}) {
		t.Fatalf("concurrent set: %+v", conc)
	}
}

func TestClientHBCompact(t *testing.T) {
	var hb ClientHB
	hb.Add(ClientEntry{TS: Timestamp{0, 1}, Origin: OriginLocal})
	hb.Add(ClientEntry{TS: Timestamp{1, 0}, Origin: OriginServer})
	hb.Add(ClientEntry{TS: Timestamp{1, 2}, Origin: OriginLocal})
	n := hb.Compact(1) // local seq 1 acked; server entries always go
	if n != 2 || hb.Len() != 1 || hb.Dropped() != 2 {
		t.Fatalf("compact: removed %d, len %d, dropped %d", n, hb.Len(), hb.Dropped())
	}
	if hb.Entries()[0].TS != (Timestamp{1, 2}) {
		t.Fatalf("survivor: %+v", hb.Entries()[0])
	}
}

func TestServerHBConcurrentWith(t *testing.T) {
	var hb ServerHB
	hb.AddFull(ServerEntry{Origin: 2, Ref: causal.OpRef{Site: 0, Seq: 1}}, vclock.VC{0, 0, 1, 0})
	hb.AddFull(ServerEntry{Origin: 1, Ref: causal.OpRef{Site: 0, Seq: 2}}, vclock.VC{0, 1, 1, 0})

	// §5: O4 from site 3 with [1,1] is concurrent with O1' only.
	conc := hb.ConcurrentWith(Timestamp{1, 1}, 3, 0)
	if len(conc) != 1 || conc[0].Ref != (causal.OpRef{Site: 0, Seq: 2}) {
		t.Fatalf("concurrent set: %+v", conc)
	}
}

func TestServerHBCompactPrefixOnly(t *testing.T) {
	var hb ServerHB
	// Three entries; site 2 has acked only the first (broadcast index 1).
	hb.AddFull(ServerEntry{Origin: 1}, vclock.VC{0, 1, 0})
	hb.AddFull(ServerEntry{Origin: 1}, vclock.VC{0, 2, 0})
	hb.AddFull(ServerEntry{Origin: 1}, vclock.VC{0, 3, 0})
	acked := map[int]uint64{1: 0, 2: 1}
	baselines := map[int]uint64{1: 0, 2: 0}
	n := hb.Compact(acked, baselines)
	if n != 1 || hb.Len() != 2 {
		t.Fatalf("compact: removed %d, len %d", n, hb.Len())
	}
	// Nothing more to collect on a second call.
	if n := hb.Compact(acked, baselines); n != 0 {
		t.Fatalf("second compact removed %d", n)
	}
}

func TestServerHBCompactSkipsOriginSite(t *testing.T) {
	var hb ServerHB
	hb.AddFull(ServerEntry{Origin: 1}, vclock.VC{0, 1, 0})
	// Site 1 is the origin: its own ack is irrelevant; only site 2 matters,
	// and site 2 has seen broadcast 1.
	n := hb.Compact(map[int]uint64{1: 0, 2: 1}, map[int]uint64{1: 0, 2: 0})
	if n != 1 {
		t.Fatalf("entry acked by all non-origin sites must be collectable, removed %d", n)
	}
}

func TestServerHBCompactBaselineUnderflowGuard(t *testing.T) {
	var hb ServerHB
	// Entry from before site 2's join (broadcast sum 1 < baseline 5):
	// site 2 got it via its snapshot, so it never blocks collection.
	hb.AddFull(ServerEntry{Origin: 1}, vclock.VC{0, 1, 0})
	n := hb.Compact(map[int]uint64{2: 0}, map[int]uint64{2: 5})
	if n != 1 {
		t.Fatalf("pre-join entry must be collectable, removed %d", n)
	}
}
