package core

import (
	"math/rand"
	"testing"

	"repro/internal/causal"
	"repro/internal/vclock"
)

func TestClientHBConcurrentWith(t *testing.T) {
	var hb ClientHB
	hb.Add(ClientEntry{TS: Timestamp{0, 1}, Origin: OriginLocal, Ref: causal.OpRef{Site: 1, Seq: 1}})
	hb.Add(ClientEntry{TS: Timestamp{1, 0}, Origin: OriginServer, Ref: causal.OpRef{Site: 0, Seq: 1}})
	hb.Add(ClientEntry{TS: Timestamp{1, 2}, Origin: OriginLocal, Ref: causal.OpRef{Site: 1, Seq: 2}})

	// Arrival with T2=1: only the local entry with T2=2 is concurrent.
	conc := hb.ConcurrentWith(Timestamp{2, 1})
	if len(conc) != 1 || conc[0].Ref != (causal.OpRef{Site: 1, Seq: 2}) {
		t.Fatalf("concurrent set: %+v", conc)
	}
}

func TestClientHBCompact(t *testing.T) {
	var hb ClientHB
	hb.Add(ClientEntry{TS: Timestamp{0, 1}, Origin: OriginLocal})
	hb.Add(ClientEntry{TS: Timestamp{1, 0}, Origin: OriginServer})
	hb.Add(ClientEntry{TS: Timestamp{1, 2}, Origin: OriginLocal})
	n := hb.Compact(1) // local seq 1 acked; server entries always go
	if n != 2 || hb.Len() != 1 || hb.Dropped() != 2 {
		t.Fatalf("compact: removed %d, len %d, dropped %d", n, hb.Len(), hb.Dropped())
	}
	if hb.Entries()[0].TS != (Timestamp{1, 2}) {
		t.Fatalf("survivor: %+v", hb.Entries()[0])
	}
}

// clientBoundaryOracle is the linear reference for ClientHB.Boundary: the
// first live index holding a concurrent entry, Len() when none is.
func clientBoundaryOracle(hb *ClientHB, ta Timestamp) int {
	for i, e := range hb.Entries() {
		if ConcurrentClient(ta, e.TS, e.Origin == OriginServer) {
			return i
		}
	}
	return hb.Len()
}

// TestClientHBBoundaryEdgeCases pins the binary-searched boundary on the
// shapes the formula-(5) fast path turns on: empty buffer, fully-causal
// prefix, fully-concurrent buffer, interleaved origins, and a boundary
// sitting exactly at a Compact-vacated prefix.
func TestClientHBBoundaryEdgeCases(t *testing.T) {
	check := func(t *testing.T, hb *ClientHB, ta Timestamp) {
		t.Helper()
		if got, want := hb.ConcurrentCount(ta), len(hb.ConcurrentWith(ta)); got != want {
			t.Fatalf("ConcurrentCount(%v) = %d, linear oracle %d", ta, got, want)
		}
		if got, want := hb.Boundary(ta), clientBoundaryOracle(hb, ta); got != want {
			t.Fatalf("Boundary(%v) = %d, linear oracle %d", ta, got, want)
		}
	}

	t.Run("empty", func(t *testing.T) {
		var hb ClientHB
		check(t, &hb, Timestamp{3, 2})
		if hb.Boundary(Timestamp{0, 0}) != 0 || hb.ConcurrentCount(Timestamp{0, 0}) != 0 {
			t.Fatal("empty buffer must report boundary 0 and count 0")
		}
	})

	// A client buffer as §3.2 builds it: local entries carry T2 = ++SV[2],
	// server entries carry T1 = ++SV[1].
	build := func() *ClientHB {
		var hb ClientHB
		hb.Add(ClientEntry{TS: Timestamp{0, 1}, Origin: OriginLocal})
		hb.Add(ClientEntry{TS: Timestamp{1, 1}, Origin: OriginServer})
		hb.Add(ClientEntry{TS: Timestamp{1, 2}, Origin: OriginLocal})
		hb.Add(ClientEntry{TS: Timestamp{2, 2}, Origin: OriginServer})
		hb.Add(ClientEntry{TS: Timestamp{2, 3}, Origin: OriginLocal})
		return &hb
	}

	t.Run("fully-causal", func(t *testing.T) {
		hb := build()
		// The arrival has seen both server broadcasts and all three locals.
		ta := Timestamp{3, 3}
		check(t, hb, ta)
		if hb.ConcurrentCount(ta) != 0 || hb.Boundary(ta) != hb.Len() {
			t.Fatalf("fully-causal: count %d boundary %d, want 0 / %d",
				hb.ConcurrentCount(ta), hb.Boundary(ta), hb.Len())
		}
	})

	t.Run("fully-concurrent", func(t *testing.T) {
		hb := build()
		// The arrival predates everything buffered.
		ta := Timestamp{0, 0}
		check(t, hb, ta)
		if hb.ConcurrentCount(ta) != hb.Len() || hb.Boundary(ta) != 0 {
			t.Fatalf("fully-concurrent: count %d boundary %d, want %d / 0",
				hb.ConcurrentCount(ta), hb.Boundary(ta), hb.Len())
		}
	})

	t.Run("interleaved", func(t *testing.T) {
		hb := build()
		// Seen one broadcast, two locals: concurrent are the server entry
		// with T1=2 (index 3) and the local with T2=3 (index 4).
		ta := Timestamp{1, 2}
		check(t, hb, ta)
		if hb.ConcurrentCount(ta) != 2 || hb.Boundary(ta) != 3 {
			t.Fatalf("interleaved: count %d boundary %d, want 2 / 3",
				hb.ConcurrentCount(ta), hb.Boundary(ta))
		}
	})

	t.Run("boundary-at-compacted-prefix", func(t *testing.T) {
		hb := build()
		// Compaction drops the server entries and the acked locals; the
		// boundary for a subsequent arrival lands exactly at live index 0,
		// right where the vacated prefix ended.
		hb.Compact(2)
		if hb.Dropped() != 4 || hb.Len() != 1 {
			t.Fatalf("compact left len %d dropped %d", hb.Len(), hb.Dropped())
		}
		ta := Timestamp{3, 2}
		check(t, hb, ta)
		if hb.ConcurrentCount(ta) != 1 || hb.Boundary(ta) != 0 {
			t.Fatalf("post-compact: count %d boundary %d, want 1 / 0",
				hb.ConcurrentCount(ta), hb.Boundary(ta))
		}
		// And once that survivor is acked too, nothing is concurrent.
		hb.Compact(3)
		check(t, hb, ta)
		if hb.ConcurrentCount(ta) != 0 || hb.Boundary(ta) != 0 {
			t.Fatalf("emptied: count %d boundary %d, want 0 / 0",
				hb.ConcurrentCount(ta), hb.Boundary(ta))
		}
	})

	t.Run("unordered-fallback", func(t *testing.T) {
		// A synthetic buffer violating the monotone-key invariant must fall
		// back to the linear walk and still agree with the oracle.
		var hb ClientHB
		hb.Add(ClientEntry{TS: Timestamp{0, 5}, Origin: OriginLocal})
		hb.Add(ClientEntry{TS: Timestamp{0, 2}, Origin: OriginLocal}) // out of order
		hb.Add(ClientEntry{TS: Timestamp{4, 0}, Origin: OriginServer})
		hb.Add(ClientEntry{TS: Timestamp{1, 0}, Origin: OriginServer}) // out of order
		for _, ta := range []Timestamp{{0, 0}, {2, 3}, {5, 6}, {1, 2}} {
			check(t, &hb, ta)
		}
		// Compacting away the poisoned prefix restores the fast path.
		hb.Compact(5)
		if hb.Len() != 0 {
			t.Fatalf("compact left %d entries", hb.Len())
		}
		hb.Add(ClientEntry{TS: Timestamp{5, 6}, Origin: OriginLocal})
		check(t, &hb, Timestamp{5, 5})
		if hb.ConcurrentCount(Timestamp{5, 5}) != 1 {
			t.Fatal("rebuilt index missed the new entry")
		}
	})
}

// TestClientHBBoundaryRandomized cross-checks the binary-searched boundary
// against the linear formula-(5) walk over randomized §3.2-shaped histories
// with interleaved compactions.
func TestClientHBBoundaryRandomized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		var hb ClientHB
		var local, fromServer, acked uint64
		for step := 0; step < 200; step++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3:
				local++
				hb.Add(ClientEntry{TS: Timestamp{fromServer, local}, Origin: OriginLocal})
			case 4, 5, 6:
				fromServer++
				if acked < local && r.Intn(2) == 0 {
					acked++
				}
				hb.Add(ClientEntry{TS: Timestamp{fromServer, acked}, Origin: OriginServer})
			case 7:
				hb.Compact(acked)
			default:
				// Probe with a plausible arrival: next broadcast, any ack.
				ta := Timestamp{fromServer + 1, uint64(r.Intn(int(local) + 1))}
				if got, want := hb.ConcurrentCount(ta), len(hb.ConcurrentWith(ta)); got != want {
					t.Fatalf("seed %d step %d: count %d, oracle %d", seed, step, got, want)
				}
				if got, want := hb.Boundary(ta), clientBoundaryOracle(&hb, ta); got != want {
					t.Fatalf("seed %d step %d: boundary %d, oracle %d", seed, step, got, want)
				}
			}
		}
	}
}

func TestServerHBConcurrentWith(t *testing.T) {
	var hb ServerHB
	hb.AddFull(ServerEntry{Origin: 2, Ref: causal.OpRef{Site: 0, Seq: 1}}, vclock.VC{0, 0, 1, 0})
	hb.AddFull(ServerEntry{Origin: 1, Ref: causal.OpRef{Site: 0, Seq: 2}}, vclock.VC{0, 1, 1, 0})

	// §5: O4 from site 3 with [1,1] is concurrent with O1' only.
	conc := hb.ConcurrentWith(Timestamp{1, 1}, 3, 0)
	if len(conc) != 1 || conc[0].Ref != (causal.OpRef{Site: 0, Seq: 2}) {
		t.Fatalf("concurrent set: %+v", conc)
	}
}

// serverBoundaryOracle is the linear reference for ServerHB.Boundary,
// resolved through ConcurrentWith and unique entry refs.
func serverBoundaryOracle(hb *ServerHB, ta Timestamp, x int, baselineX uint64) int {
	conc := hb.ConcurrentWith(ta, x, baselineX)
	if len(conc) == 0 {
		return hb.Len()
	}
	for i, e := range hb.Entries() {
		if e.Ref == conc[0].Ref {
			return i
		}
	}
	return hb.Len()
}

// TestServerHBBoundaryEdgeCases pins the closed-form formula-(7) count and
// the binary-searched boundary on the server buffer: empty, fully-causal,
// fully-concurrent, interleaved origin-x entries, a non-zero join baseline,
// and a boundary at a Compact-vacated prefix.
func TestServerHBBoundaryEdgeCases(t *testing.T) {
	check := func(t *testing.T, hb *ServerHB, ta Timestamp, x int, baselineX uint64) {
		t.Helper()
		if got, want := hb.ConcurrentCount(ta, x, baselineX), len(hb.ConcurrentWith(ta, x, baselineX)); got != want {
			t.Fatalf("ConcurrentCount(%v, x=%d, base=%d) = %d, linear oracle %d", ta, x, baselineX, got, want)
		}
		if got, want := hb.Boundary(ta, x, baselineX), serverBoundaryOracle(hb, ta, x, baselineX); got != want {
			t.Fatalf("Boundary(%v, x=%d, base=%d) = %d, linear oracle %d", ta, x, baselineX, got, want)
		}
	}

	t.Run("empty", func(t *testing.T) {
		var hb ServerHB
		check(t, &hb, Timestamp{0, 1}, 1, 0)
		if hb.Boundary(Timestamp{0, 1}, 1, 0) != 0 {
			t.Fatal("empty buffer must report boundary 0")
		}
	})

	// Five broadcasts: sites 1, 2, 1, 3, 2 in execution order, unique refs.
	build := func() *ServerHB {
		var hb ServerHB
		for i, origin := range []int{1, 2, 1, 3, 2} {
			hb.Add(ServerEntry{Origin: origin, Ref: causal.OpRef{Site: 0, Seq: uint64(i + 1)}})
		}
		return &hb
	}

	t.Run("fully-causal", func(t *testing.T) {
		hb := build()
		// Site 3 has integrated all five broadcasts: nothing is concurrent.
		ta := Timestamp{5, 2}
		check(t, hb, ta, 3, 0)
		if hb.ConcurrentCount(ta, 3, 0) != 0 || hb.Boundary(ta, 3, 0) != hb.Len() {
			t.Fatalf("fully-causal: count %d boundary %d, want 0 / %d",
				hb.ConcurrentCount(ta, 3, 0), hb.Boundary(ta, 3, 0), hb.Len())
		}
	})

	t.Run("fully-concurrent", func(t *testing.T) {
		hb := build()
		// Site 4 generated before seeing any broadcast: every entry is from
		// another site and unseen.
		ta := Timestamp{0, 1}
		check(t, hb, ta, 4, 0)
		if hb.ConcurrentCount(ta, 4, 0) != hb.Len() || hb.Boundary(ta, 4, 0) != 0 {
			t.Fatalf("fully-concurrent: count %d boundary %d, want %d / 0",
				hb.ConcurrentCount(ta, 4, 0), hb.Boundary(ta, 4, 0), hb.Len())
		}
	})

	t.Run("own-ops-interleave-after-boundary", func(t *testing.T) {
		hb := build()
		// Site 1 acked two broadcasts; its own op at index 2 sits past the
		// boundary but is never concurrent with its own arrival (x == y in
		// formula 7), so the boundary lands on index 1's entry... index 1 is
		// from site 2 with broadcast rank 2 toward site 1: rank > acked(2)?
		// Entry i's broadcast index toward 1 is its non-1 rank; entry 1 has
		// rank 1, entry 3 rank 2, entry 4 rank 3. With T1=2 the first
		// concurrent is entry 4 (rank 3 > 2), and entries 2–3 interleave
		// before it without being concurrent.
		ta := Timestamp{2, 2}
		check(t, hb, ta, 1, 0)
		if got := hb.Boundary(ta, 1, 0); got != 4 {
			t.Fatalf("boundary = %d, want 4", got)
		}
		if got := hb.ConcurrentCount(ta, 1, 0); got != 1 {
			t.Fatalf("count = %d, want 1", got)
		}
	})

	t.Run("join-baseline-shifts-boundary", func(t *testing.T) {
		hb := build()
		// A rejoiner whose snapshot covered the first two broadcasts toward
		// it (baseline 2), acking nothing since: of the three non-1 entries
		// only the last (rank 3 > 2) is concurrent.
		ta := Timestamp{0, 1}
		check(t, hb, ta, 1, 2)
		if got := hb.ConcurrentCount(ta, 1, 2); got != 1 {
			t.Fatalf("count = %d, want 1", got)
		}
		// Baseline 3 covers everything: nothing is concurrent.
		check(t, hb, ta, 1, 3)
		if got := hb.ConcurrentCount(ta, 1, 3); got != 0 {
			t.Fatalf("count = %d, want 0", got)
		}
	})

	t.Run("boundary-at-compacted-prefix", func(t *testing.T) {
		hb := build()
		// Both live sites acked the first two broadcasts toward them;
		// compaction vacates a prefix and the boundary math must keep
		// working against the dropped offset.
		acked := map[int]uint64{1: 2, 2: 2, 3: 2}
		baselines := map[int]uint64{1: 0, 2: 0, 3: 0}
		n := hb.Compact(acked, baselines)
		if n == 0 {
			t.Fatal("compaction removed nothing")
		}
		for _, x := range []int{1, 2, 3, 4} {
			for t1 := uint64(0); t1 <= 5; t1++ {
				check(t, hb, Timestamp{t1, 1}, x, 0)
			}
		}
	})
}

// TestServerHBBoundaryRandomized cross-checks the closed-form count and the
// binary-searched boundary against the linear formula-(7) walk over random
// append/compact schedules.
func TestServerHBBoundaryRandomized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		var hb ServerHB
		const sites = 4
		acked := map[int]uint64{}
		baselines := map[int]uint64{}
		bcastToward := map[int]uint64{} // broadcasts sent toward each site
		for x := 1; x <= sites; x++ {
			acked[x], baselines[x] = 0, 0
		}
		seq := uint64(0)
		for step := 0; step < 300; step++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4:
				origin := 1 + r.Intn(sites)
				seq++
				hb.Add(ServerEntry{Origin: origin, Ref: causal.OpRef{Site: 0, Seq: seq}})
				for x := 1; x <= sites; x++ {
					if x != origin {
						bcastToward[x]++
					}
				}
			case 5:
				// A random site acknowledges some prefix of its broadcasts.
				x := 1 + r.Intn(sites)
				if bcastToward[x] > acked[x] {
					acked[x] += 1 + uint64(r.Intn(int(bcastToward[x]-acked[x])))
				}
			case 6:
				hb.Compact(acked, baselines)
			default:
				x := 1 + r.Intn(sites)
				ta := Timestamp{acked[x], 1}
				if got, want := hb.ConcurrentCount(ta, x, baselines[x]), len(hb.ConcurrentWith(ta, x, baselines[x])); got != want {
					t.Fatalf("seed %d step %d: count %d, oracle %d", seed, step, got, want)
				}
				if got, want := hb.Boundary(ta, x, baselines[x]), serverBoundaryOracle(&hb, ta, x, baselines[x]); got != want {
					t.Fatalf("seed %d step %d: boundary %d, oracle %d", seed, step, got, want)
				}
			}
		}
	}
}

func TestServerHBCompactPrefixOnly(t *testing.T) {
	var hb ServerHB
	// Three entries; site 2 has acked only the first (broadcast index 1).
	hb.AddFull(ServerEntry{Origin: 1}, vclock.VC{0, 1, 0})
	hb.AddFull(ServerEntry{Origin: 1}, vclock.VC{0, 2, 0})
	hb.AddFull(ServerEntry{Origin: 1}, vclock.VC{0, 3, 0})
	acked := map[int]uint64{1: 0, 2: 1}
	baselines := map[int]uint64{1: 0, 2: 0}
	n := hb.Compact(acked, baselines)
	if n != 1 || hb.Len() != 2 {
		t.Fatalf("compact: removed %d, len %d", n, hb.Len())
	}
	// Nothing more to collect on a second call.
	if n := hb.Compact(acked, baselines); n != 0 {
		t.Fatalf("second compact removed %d", n)
	}
}

func TestServerHBCompactSkipsOriginSite(t *testing.T) {
	var hb ServerHB
	hb.AddFull(ServerEntry{Origin: 1}, vclock.VC{0, 1, 0})
	// Site 1 is the origin: its own ack is irrelevant; only site 2 matters,
	// and site 2 has seen broadcast 1.
	n := hb.Compact(map[int]uint64{1: 0, 2: 1}, map[int]uint64{1: 0, 2: 0})
	if n != 1 {
		t.Fatalf("entry acked by all non-origin sites must be collectable, removed %d", n)
	}
}

func TestServerHBCompactBaselineUnderflowGuard(t *testing.T) {
	var hb ServerHB
	// Entry from before site 2's join (broadcast sum 1 < baseline 5):
	// site 2 got it via its snapshot, so it never blocks collection.
	hb.AddFull(ServerEntry{Origin: 1}, vclock.VC{0, 1, 0})
	n := hb.Compact(map[int]uint64{2: 0}, map[int]uint64{2: 5})
	if n != 1 {
		t.Fatalf("pre-join entry must be collectable, removed %d", n)
	}
}
