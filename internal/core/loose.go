package core

import (
	"repro/internal/doc"
	"repro/internal/op"
)

// applyLoose executes an operation positionally against a document it may
// not fit, clamping each primitive edit into range. This models what a
// consistency-unaware site does with an untransformed remote operation
// (paper §2.2: executing O2 in its original form at site 1 yields "A1DE")
// and is used only by ModeRelay.
func applyLoose(b doc.Buffer, o *op.Op) {
	for _, p := range op.Positionals(o) {
		n := b.Len()
		pos := p.Pos
		if pos < 0 {
			pos = 0
		}
		if pos > n {
			pos = n
		}
		if p.Insert {
			// Insert clamped to document bounds.
			_ = b.Insert(pos, p.Text)
			continue
		}
		count := p.Count
		if pos+count > n {
			count = n - pos
		}
		if count > 0 {
			_ = b.Delete(pos, count)
		}
	}
}
