package core

import (
	"repro/internal/causal"
	"repro/internal/obs/span"
	"repro/internal/op"
)

// Mode selects whether the notifier transforms operations before relaying
// them. ModeTransform is the paper's system; ModeRelay is the §6 ablation
// ("if the notifier propagates operations as-is ... the causality
// relationships among these operations would still remain N-dimensional"),
// kept only to demonstrate experimentally that the compression then breaks.
type Mode uint8

// Notifier operating modes.
const (
	// ModeTransform: operations are transformed at site 0 before
	// propagation (the paper's scheme).
	ModeTransform Mode = iota
	// ModeRelay: operations are propagated in their original forms
	// (ablation E8; unsound by design).
	ModeRelay
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeTransform {
		return "transform"
	}
	return "relay"
}

// ClientMsg carries one locally generated operation from a client to the
// notifier. Its timestamp is the client's 2-element state vector at
// generation time (§3.3).
type ClientMsg struct {
	From int
	Op   *op.Op
	TS   Timestamp
	// Ref is the operation's causal identity (From, per-site sequence).
	Ref causal.OpRef
	// Trace is the op's span context; the zero value means untraced.
	Trace span.Context
}

// ServerMsg carries one operation from the notifier to a client. In
// ModeTransform the operation is the transformed form executed at site 0 — a
// new operation causally generated there — and Ref names that site-0
// operation; OrigRef records which client operation it was derived from. In
// ModeRelay the operation and Ref are the original ones.
type ServerMsg struct {
	To int
	Op *op.Op
	// TS is the per-destination compressed timestamp (formulas 1–2).
	TS      Timestamp
	Ref     causal.OpRef
	OrigRef causal.OpRef
	// Trace carries the integrated op's span context to each destination;
	// the zero value means untraced.
	Trace span.Context
}

// Snapshot initializes a joining client: the current document plus the
// identifiers the engines need to continue the clocks from here. LocalOps
// matters on rejoin: SV_0 is monotone, so a site that generated operations,
// left, and rejoined under the same id must continue its local counter where
// the notifier's count stands.
type Snapshot struct {
	Site     int
	Text     string
	LocalOps uint64
}

// Check records one concurrency decision made while integrating an arriving
// operation: the buffered operation consulted and the verdict. The
// validation harness replays these against the ground-truth oracle.
type Check struct {
	Arriving   causal.OpRef
	Buffered   causal.OpRef
	Concurrent bool
}

// IntegrationResult reports what an engine did with an arriving operation.
type IntegrationResult struct {
	// Executed is the form actually applied to the local document.
	Executed *op.Op
	// Checks are the concurrency decisions taken, one per history entry.
	// Recording them costs one allocation-heavy slice per integration, so
	// they are only populated when the engine was built with
	// WithServerCheckTrace/WithClientCheckTrace; the default hot path
	// leaves Checks nil and reports counts only.
	Checks []Check
	// CheckCount is the number of concurrency checks performed (one per
	// history entry), always set even when Checks is not recorded.
	CheckCount int
	// ConcurrentCount is the number of buffered operations found
	// concurrent with the arrival.
	ConcurrentCount int
	// Transforms is the number of op.Transform calls spent bringing the
	// operation into the executing replica's context (0 outside
	// ModeTransform). With the composed-suffix cache warm this stays 1
	// however deep the concurrent suffix is.
	Transforms int
}
