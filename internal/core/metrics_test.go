package core

import (
	"testing"

	"repro/internal/trace"
)

func TestEngineMetrics(t *testing.T) {
	cm := trace.NewMetrics()
	sm := trace.NewMetrics()
	srv := NewServer("", WithServerCompaction(0), WithServerMetrics(sm))
	clients := map[int]*Client{}
	for site := 1; site <= 2; site++ {
		snap, err := srv.Join(site)
		if err != nil {
			t.Fatal(err)
		}
		clients[site] = NewClient(site, snap.Text, WithClientCompaction(0), WithClientMetrics(cm))
	}

	// Two concurrent ops: each transforms against the other somewhere.
	m1, _ := clients[1].Insert(0, "a")
	m2, _ := clients[2].Insert(0, "b")
	b1, _, err := srv.Receive(m1)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := srv.Receive(m2)
	if err != nil {
		t.Fatal(err)
	}
	for _, bm := range append(b1, b2...) {
		if _, err := clients[bm.To].Integrate(bm); err != nil {
			t.Fatal(err)
		}
	}

	if got := cm.Get(trace.COpsGenerated); got != 2 {
		t.Fatalf("client ops generated: %d", got)
	}
	if got := cm.Get(trace.COpsIntegrated); got != 2 {
		t.Fatalf("client ops integrated: %d", got)
	}
	if got := sm.Get(trace.COpsIntegrated); got != 2 {
		t.Fatalf("server ops: %d", got)
	}
	// m2 was concurrent with m1 at the server (one transform); the client
	// with the pending op transformed the arriving broadcast (one more).
	if got := sm.Get(trace.CTransforms) + cm.Get(trace.CTransforms); got < 2 {
		t.Fatalf("transforms counted: %d", got)
	}
	if got := sm.Get(trace.CConcurrencyChecks); got != 1 {
		t.Fatalf("server checks: %d", got)
	}
	if got := sm.Get(trace.CConcurrentPairs); got != 1 {
		t.Fatalf("server concurrent pairs: %d", got)
	}
}
