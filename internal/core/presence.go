package core

import (
	"fmt"
	"sort"

	"repro/internal/op"
)

// Presence (telepointers): sharing each user's cursor/selection, a classic
// groupware awareness feature (GROVE's group windows). Presence reports ride
// the same FIFO links as operations, which makes the coordinate mapping
// *exact* with the same machinery that integrates operations:
//
//   - a client reports its selection in local coordinates, stamped with its
//     current 2-element state vector (no increment — presence is not an
//     operation and never enters SV or HB);
//   - the notifier walks the positions through the sender's unacknowledged
//     bridge operations, producing server-context coordinates (FIFO
//     guarantees every operation the sender had applied has arrived first);
//   - each receiving client walks the positions through its own pending
//     operations (FIFO guarantees it has integrated exactly the broadcasts
//     sent before the presence report).
//
// Between reports, receivers keep remote selections current by transforming
// them through every operation they execute.

// PresenceMsg is a client → notifier presence report.
type PresenceMsg struct {
	From   int
	TS     Timestamp // current state vector, NOT incremented
	Anchor int
	Head   int
	Active bool // false clears the sender's presence
}

// PresenceOut is a notifier → client presence relay in server-context
// coordinates.
type PresenceOut struct {
	To     int
	From   int
	Anchor int
	Head   int
	Active bool
}

// Presence builds a presence report for the client's current selection in
// local coordinates.
func (c *Client) Presence(anchor, head int, active bool) PresenceMsg {
	n := c.buf.Len()
	return PresenceMsg{
		From:   c.site,
		TS:     c.sv.Stamp(),
		Anchor: clampIndex(anchor, n),
		Head:   clampIndex(head, n),
		Active: active,
	}
}

// MapIncomingSelection maps a relayed selection (server-context
// coordinates, received in FIFO order) into local coordinates by walking it
// through the pending local operations.
func (c *Client) MapIncomingSelection(anchor, head int) (int, int) {
	// The walk consults the individual pending entries, so any rebases the
	// composed cache deferred must be settled first. Settling leaves pcomp
	// valid: the entries then match exactly what it already composes.
	if len(c.punfolded) > 0 {
		if _, err := foldPending(c.pending, c.punfolded); err == nil {
			clearFolds(&c.punfolded)
		}
	}
	sel := op.Selection{Anchor: anchor, Head: head}
	for _, p := range c.pending {
		sel = op.TransformSelection(p.op, sel, false)
	}
	n := c.buf.Len()
	return clampIndex(sel.Anchor, n), clampIndex(sel.Head, n)
}

// RelayPresence validates and re-coordinates a presence report, returning
// one relay per other joined site. Like operations, the report's T1
// acknowledges broadcasts (FIFO makes that sound), pruning the sender's
// bridge.
func (s *Server) RelayPresence(m PresenceMsg) ([]PresenceOut, error) {
	st, ok := s.clients[m.From]
	if !ok || !st.joined {
		return nil, fmt.Errorf("%w: presence from unknown site %d", ErrBadMessage, m.From)
	}
	if m.TS.T2 != s.sv.Of(m.From) {
		return nil, fmt.Errorf("%w: site %d presence T2=%d but SV_0[%d]=%d (FIFO violated?)",
			ErrBadMessage, m.From, m.TS.T2, m.From, s.sv.Of(m.From))
	}
	if m.TS.T1 > st.sent {
		return nil, fmt.Errorf("%w: site %d presence acknowledges %d broadcasts, only %d sent",
			ErrBadMessage, m.From, m.TS.T1, st.sent)
	}
	// Prune by the acknowledgement, then walk into server context. The walk
	// consults the individual bridge entries, so any rebases the composed
	// cache deferred must be settled first (skipped when the prune removes
	// the whole bridge — nothing is consulted then); pruning in turn
	// invalidates the cache, exactly as in Server.bridgeWalk.
	i := 0
	for i < len(st.bridge) && st.bridge[i].seq <= m.TS.T1 {
		i++
	}
	if len(st.unfolded) > 0 && i < len(st.bridge) {
		if _, err := foldBridge(st.bridge, st.unfolded); err != nil {
			return nil, fmt.Errorf("core: presence transform: %w", err)
		}
	}
	clearFolds(&st.unfolded)
	if i > 0 {
		st.comp = nil
		st.compHold = false
		st.bridge = st.bridge[i:]
	}
	if m.TS.T1 > st.acked {
		st.acked = m.TS.T1
	}
	sel := op.Selection{Anchor: m.Anchor, Head: m.Head}
	for _, b := range st.bridge {
		sel = op.TransformSelection(b.op, sel, false)
	}

	dests := make([]int, 0, len(s.clients))
	for dest := range s.clients {
		dests = append(dests, dest)
	}
	sort.Ints(dests)
	var out []PresenceOut
	for _, dest := range dests {
		dstState := s.clients[dest]
		if dest == m.From || !dstState.joined {
			continue
		}
		out = append(out, PresenceOut{
			To: dest, From: m.From, Anchor: sel.Anchor, Head: sel.Head, Active: m.Active,
		})
	}
	return out, nil
}

func clampIndex(x, n int) int {
	if x < 0 {
		return 0
	}
	if x > n {
		return n
	}
	return x
}
