package core

import (
	"errors"
	"testing"
)

// presencePair builds a quiesced two-client session over "hello brave world".
func presencePair(t *testing.T) (*Server, *Client, *Client) {
	t.Helper()
	srv := NewServer("hello brave world", WithServerCompaction(0))
	snap1, err := srv.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := srv.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	return srv, NewClient(1, snap1.Text, WithClientCompaction(0)),
		NewClient(2, snap2.Text, WithClientCompaction(0))
}

// selText extracts the text a selection covers.
func selText(t *testing.T, doc string, a, h int) string {
	t.Helper()
	rs := []rune(doc)
	if a > h {
		a, h = h, a
	}
	if a < 0 || h > len(rs) {
		t.Fatalf("selection [%d,%d) out of range of %q", a, h, doc)
	}
	return string(rs[a:h])
}

func TestPresenceQuiescedExact(t *testing.T) {
	srv, c1, c2 := presencePair(t)
	// c1 selects "brave" (runes 6..11).
	pm := c1.Presence(6, 11, true)
	if pm.TS != (Timestamp{0, 0}) {
		t.Fatalf("presence TS %v (must not increment)", pm.TS)
	}
	outs, err := srv.RelayPresence(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].To != 2 {
		t.Fatalf("relays: %+v", outs)
	}
	a, h := c2.MapIncomingSelection(outs[0].Anchor, outs[0].Head)
	if got := selText(t, c2.Text(), a, h); got != "brave" {
		t.Fatalf("mapped selection covers %q", got)
	}
}

// TestPresenceFIFOOrder is the hard case: the sender has an unacknowledged
// local edit, the server has an unrelayed operation in the sender's bridge,
// and the receiver has a pending local edit of its own — all messages
// delivered in link (FIFO) order. The mapped selection must still cover the
// same word.
func TestPresenceFIFOOrder(t *testing.T) {
	srv, c1, c2 := presencePair(t)

	// c2's edit reaches the server; broadcast to c1 is still in flight.
	m2, err := c2.Insert(0, "(c2) ")
	if err != nil {
		t.Fatal(err)
	}
	bcast, _, err := srv.Receive(ClientMsg{From: m2.From, Op: m2.Op, TS: m2.TS, Ref: m2.Ref})
	if err != nil {
		t.Fatal(err)
	}
	toC1 := bcast[0]

	// c1 edits locally, selects "brave", and both messages travel the
	// up-link in order: the operation, then the presence report.
	if _, err := c1.Insert(0, ">> "); err != nil {
		t.Fatal(err)
	}
	m1 := lastLocalMsg(t, c1)
	pm := c1.Presence(9, 14, true) // "brave" in ">> hello brave world"
	if got := selText(t, c1.Text(), 9, 14); got != "brave" {
		t.Fatalf("setup: %q", got)
	}

	// c2 has its own pending edit.
	if _, err := c2.Insert(c2.DocLen(), " [tail]"); err != nil {
		t.Fatal(err)
	}

	// Server: op first (FIFO), then presence.
	b1, _, err := srv.Receive(m1)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := srv.RelayPresence(pm)
	if err != nil {
		t.Fatal(err)
	}

	// c2: its down-link delivers c1's transformed op, then the presence.
	for _, bm := range b1 {
		if bm.To == 2 {
			if _, err := c2.Integrate(bm); err != nil {
				t.Fatal(err)
			}
		}
	}
	var rel *PresenceOut
	for i := range outs {
		if outs[i].To == 2 {
			rel = &outs[i]
		}
	}
	if rel == nil {
		t.Fatalf("no relay to c2: %+v", outs)
	}
	a, h := c2.MapIncomingSelection(rel.Anchor, rel.Head)
	if got := selText(t, c2.Text(), a, h); got != "brave" {
		t.Fatalf("mapped selection covers %q in %q", got, c2.Text())
	}

	// And c1 still converges normally afterwards.
	if _, err := c1.Integrate(toC1); err != nil {
		t.Fatal(err)
	}
}

// lastLocalMsg rebuilds the ClientMsg for the client's newest local op from
// its history buffer (test convenience).
func lastLocalMsg(t *testing.T, c *Client) ClientMsg {
	t.Helper()
	entries := c.History().Entries()
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Origin == OriginLocal {
			return ClientMsg{From: c.Site(), Op: entries[i].Op, TS: entries[i].TS, Ref: entries[i].Ref}
		}
	}
	t.Fatal("no local op in history")
	return ClientMsg{}
}

func TestPresenceErrors(t *testing.T) {
	srv, c1, _ := presencePair(t)
	// Unknown site.
	if _, err := srv.RelayPresence(PresenceMsg{From: 9}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("unknown site: %v", err)
	}
	// FIFO violation: presence claiming ops the server has not seen.
	pm := c1.Presence(0, 0, true)
	pm.TS.T2 = 5
	if _, err := srv.RelayPresence(pm); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("T2 overrun: %v", err)
	}
	pm = c1.Presence(0, 0, true)
	pm.TS.T1 = 5
	if _, err := srv.RelayPresence(pm); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("T1 overrun: %v", err)
	}
}

func TestPresenceClampsOutOfRange(t *testing.T) {
	_, c1, _ := presencePair(t)
	pm := c1.Presence(-5, 10000, true)
	if pm.Anchor != 0 || pm.Head != c1.DocLen() {
		t.Fatalf("clamping: %+v", pm)
	}
	a, h := c1.MapIncomingSelection(-3, 10000)
	if a != 0 || h != c1.DocLen() {
		t.Fatalf("incoming clamp: %d %d", a, h)
	}
}

func TestPresenceInactiveRelays(t *testing.T) {
	srv, c1, _ := presencePair(t)
	outs, err := srv.RelayPresence(c1.Presence(0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Active {
		t.Fatalf("inactive relay: %+v", outs)
	}
}
