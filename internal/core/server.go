package core

import (
	"fmt"
	"sort"

	"repro/internal/causal"
	"repro/internal/doc"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/op"
	"repro/internal/trace"
)

// Server is the engine of the notifier (site 0, the center of the star in
// paper Fig. 1). It maintains a full copy of the shared document, the full
// N-element state vector SV_0, the history buffer with full-vector
// timestamps, and one outgoing bridge per client for context-correct
// transformation.
//
// For every operation received from site x it:
//
//  1. detects concurrent buffered operations with formula (7);
//  2. transforms the operation into its own context and executes it — the
//     transformed operation is a *new* operation generated at site 0;
//  3. re-timestamps it per destination with formulas (1)–(2) and returns
//     the broadcast messages (everyone but x).
//
// Like Client, the engine is synchronous; transports serialize calls.
type Server struct {
	mode Mode
	sv   *ServerSV
	buf  doc.Buffer
	hb   ServerHB

	serverSeq uint64 // operations executed at site 0 (its generation counter)

	clients map[int]*clientState

	// dests caches the joined destinations in ascending site order so
	// Receive neither rebuilds nor re-sorts the broadcast list per
	// operation; Join/Leave invalidate it (nil = dirty).
	dests []destRef

	compactEvery int
	sinceCompact int

	// composeDepth is the bridge depth at which Receive builds the
	// composed-suffix cache (defaultComposeDepth unless overridden; <= 0
	// disables composition, restoring the pairwise walk unconditionally).
	composeDepth int

	// checkTrace records per-entry Check verdicts into IntegrationResult
	// (WithServerCheckTrace); off by default so the hot path performs zero
	// per-check allocations.
	checkTrace bool

	// metrics, when non-nil, receives engine counters.
	metrics *trace.Metrics

	// decisions, when non-nil and enabled, records every formula-(7)
	// verdict and a per-Receive summary (WithServerDecisionRing). Disabled
	// rings cost one atomic load per Receive.
	decisions     *obs.DecisionRing
	decisionLabel string

	// spans, when non-nil, receives per-stage lifecycle stamps for sampled
	// operations (WithServerSpans). A nil or disabled tracer costs one
	// atomic load per stamp point.
	spans *span.Tracer
}

// destRef pairs a joined site with its state so the broadcast loop does no
// map lookups.
type destRef struct {
	site int
	st   *clientState
}

// clientState is the per-client bookkeeping at the notifier.
type clientState struct {
	joined bool
	// baseline is Σ SV_0 at join time: operations already folded into the
	// joiner's snapshot (zero for founding members).
	baseline uint64
	// sent counts broadcasts to this client; equals SumExcept(site) −
	// baseline at all times (asserted in tests).
	sent uint64
	// acked is the highest T1 received from this client.
	acked uint64
	// bridge holds broadcasts sent but not yet acknowledged, rebased so an
	// incoming client operation can be walked into server context.
	bridge []bridgeOp

	// comp, when non-nil, is the composition of the entire bridge (oldest →
	// newest): one Transform against comp brings an incoming operation into
	// server context in O(1) instead of len(bridge) pairwise transforms.
	// Receive keeps it covering the whole bridge by composing every new
	// broadcast onto it (compose-on-append) and drops it whenever an
	// acknowledgement prunes the bridge.
	comp *op.Op
	// unfolded records the operations integrated through comp whose
	// pairwise rebase of the individual bridge entries is still owed;
	// settling is deferred until the next acknowledgement forces a prune —
	// and skipped entirely when the acknowledgement covers the whole
	// bridge, which is where a lagged site's catch-up burst wins.
	unfolded []deferredFold
	// compHold suspends composition until the next acknowledgement
	// advances the frontier: an arrival failed op.ComposedTransformSafe
	// against this bridge, so rebuilding the cache every operation would
	// pay the compose cost without ever taking the fast path.
	compHold bool
}

// deferredFold is one incoming operation integrated via the composed cache
// whose rebase of the individual bridge/pending entries was deferred. maxSeq
// bounds the entries it owes: entries appended later already embed its
// effect (they were executed on the post-integration document).
type deferredFold struct {
	op     *op.Op // the operation as received, pre-transform
	maxSeq uint64 // newest bridge/pending seq at integration time
}

// clearFolds empties a fold list, zeroing entries so the dropped *op.Op
// values are not pinned against the GC by the reused backing array.
func clearFolds(list *[]deferredFold) {
	for i := range *list {
		(*list)[i] = deferredFold{}
	}
	*list = (*list)[:0]
}

// defaultComposeDepth is the bridge/pending depth at which the engines stop
// walking entries pairwise and build the composed-suffix cache instead. A
// build costs depth−1 Compose calls and pays off from the second operation
// integrated at the same causal frontier, so the threshold keeps shallow
// interactive sessions — where the pairwise walk is already cheap — off the
// compose path and reserves it for genuinely lagged bridges.
const defaultComposeDepth = 16

type bridgeOp struct {
	seq uint64 // broadcast index toward this client (1-based)
	op  *op.Op
	ref causal.OpRef
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerBuffer substitutes the document implementation (default: rope).
func WithServerBuffer(b doc.Buffer) ServerOption {
	return func(s *Server) { s.buf = b }
}

// WithServerMode sets the operating mode (default: ModeTransform).
func WithServerMode(m Mode) ServerOption {
	return func(s *Server) { s.mode = m }
}

// WithServerCompaction enables automatic history compaction every n
// received operations (default 64; 0 disables).
func WithServerCompaction(n int) ServerOption {
	return func(s *Server) { s.compactEvery = n }
}

// WithServerComposeDepth sets the bridge depth at which Receive switches
// from the pairwise transform walk to the composed-suffix cache (default
// defaultComposeDepth). n <= 0 disables composition entirely — the naive
// reference path the differential fuzz target compares against.
func WithServerComposeDepth(n int) ServerOption {
	return func(s *Server) { s.composeDepth = n }
}

// WithServerMetrics attaches a metrics sink counting received operations,
// concurrency checks, and transformations.
func WithServerMetrics(m *trace.Metrics) ServerOption {
	return func(s *Server) { s.metrics = m }
}

// WithServerDecisionRing streams every formula-(7) concurrency verdict and a
// per-Receive integration summary into ring, labeled with session (the
// /tracez source). Unlike WithServerCheckTrace this shares one bounded ring
// across engines and can be toggled at runtime; while the ring is disabled
// the engine skips record construction entirely.
func WithServerDecisionRing(ring *obs.DecisionRing, session string) ServerOption {
	return func(s *Server) {
		s.decisions = ring
		s.decisionLabel = session
	}
}

// WithServerSpans attaches the op-lifecycle tracer: Receive stamps the
// formula-(7) check, transform, and execute stages of sampled operations
// and propagates their trace context into every broadcast message.
func WithServerSpans(tr *span.Tracer) ServerOption {
	return func(s *Server) { s.spans = tr }
}

// WithServerCheckTrace records every per-entry concurrency verdict into
// IntegrationResult.Checks. Validation harnesses need the trace to replay
// verdicts against the ground-truth oracle; production servers should leave
// it off — the default path only counts (ConcurrentCount/CheckCount) and
// allocates nothing per check.
func WithServerCheckTrace() ServerOption {
	return func(s *Server) { s.checkTrace = true }
}

// count increments a counter when a sink is attached.
func (s *Server) count(name string, delta int64) {
	if s.metrics != nil {
		s.metrics.Inc(name, delta)
	}
}

// NewServer returns a notifier initialized with the given document.
func NewServer(initial string, opts ...ServerOption) *Server {
	s := &Server{
		sv:           NewServerSV(0),
		clients:      make(map[int]*clientState),
		compactEvery: 64,
		composeDepth: defaultComposeDepth,
	}
	for _, o := range opts {
		o(s)
	}
	if s.buf == nil {
		s.buf = doc.NewRope(initial)
	}
	// Pre-create the cache counters so an attached registry exposes the
	// full catalogue deterministically, not only after the first deep
	// bridge (TestMetricsCatalog locks the exact name set).
	s.count(trace.CCacheHits, 0)
	s.count(trace.CCacheMisses, 0)
	s.count(trace.CComposes, 0)
	return s
}

// Mode returns the operating mode.
func (s *Server) Mode() Mode { return s.mode }

// Text returns the notifier's copy of the document.
func (s *Server) Text() string { return s.buf.String() }

// DocLen returns the current document length in runes.
func (s *Server) DocLen() int { return s.buf.Len() }

// SV returns a copy-backed view of the full state vector.
func (s *Server) SV() *ServerSV { return s.sv }

// History exposes the notifier's history buffer.
func (s *Server) History() *ServerHB { return &s.hb }

// Sites returns the ids of all joined sites, in no particular order.
func (s *Server) Sites() []int {
	out := make([]int, 0, len(s.clients))
	for id, st := range s.clients {
		if st.joined {
			out = append(out, id)
		}
	}
	return out
}

// SentTo returns the number of broadcasts sent to site since it joined.
func (s *Server) SentTo(site int) uint64 {
	if st, ok := s.clients[site]; ok && st.joined {
		return st.sent
	}
	return 0
}

// BridgeLen returns the number of unacknowledged broadcasts toward site
// (used by GC and memory tests).
func (s *Server) BridgeLen(site int) int {
	if st, ok := s.clients[site]; ok {
		return len(st.bridge)
	}
	return 0
}

// Join registers site and returns the snapshot it must initialize from. A
// founding member joining before any operation flows has baseline zero; a
// late joiner's snapshot carries the current document, and its compressed
// clock starts fresh relative to that snapshot.
func (s *Server) Join(site int) (Snapshot, error) {
	if site < 1 {
		return Snapshot{}, fmt.Errorf("%w: site ids start at 1", ErrBadMessage)
	}
	if st, ok := s.clients[site]; ok && st.joined {
		return Snapshot{}, fmt.Errorf("%w: site %d already joined", ErrBadMessage, site)
	}
	if st, ok := s.clients[site]; ok && !st.joined {
		// Rejoining after a leave: the site id keeps its operation counts
		// (SV_0 is monotone) but restarts from a fresh snapshot. The
		// baseline excludes the site's own counter — T1 counts broadcasts
		// toward it, which its own operations never contribute to.
		st.joined = true
		st.baseline = s.sv.SumExcept(site)
		st.sent = 0
		st.acked = 0
		st.bridge = nil
		st.comp = nil
		st.unfolded = nil
		st.compHold = false
		s.dests = nil
		return Snapshot{Site: site, Text: s.buf.String(), LocalOps: s.sv.Of(site)}, nil
	}
	s.sv.Grow(site)
	s.hb.Grow(site)
	s.clients[site] = &clientState{joined: true, baseline: s.sv.SumExcept(site)}
	s.dests = nil
	return Snapshot{Site: site, Text: s.buf.String(), LocalOps: s.sv.Of(site)}, nil
}

// Leave deregisters a site. Its counters remain in SV_0 — the compression
// sums must keep counting its past operations.
func (s *Server) Leave(site int) error {
	st, ok := s.clients[site]
	if !ok || !st.joined {
		return fmt.Errorf("%w: site %d not joined", ErrBadMessage, site)
	}
	st.joined = false
	st.bridge = nil
	st.comp = nil
	st.unfolded = nil
	st.compHold = false
	s.dests = nil
	return nil
}

// destinations returns the joined sites in ascending order, rebuilding the
// cache after a Join/Leave invalidated it.
func (s *Server) destinations() []destRef {
	if s.dests == nil {
		s.dests = make([]destRef, 0, len(s.clients))
		for site, st := range s.clients {
			if st.joined {
				s.dests = append(s.dests, destRef{site: site, st: st})
			}
		}
		sort.Slice(s.dests, func(i, j int) bool { return s.dests[i].site < s.dests[j].site })
	}
	return s.dests
}

// Precheck validates an incoming operation against the engine's state
// without applying it: the site must be joined and the timestamps must
// respect the FIFO discipline. A message that passes Precheck will be
// accepted by Receive (absent engine bugs) — persistence layers use this to
// write-ahead-log only acceptable operations.
func (s *Server) Precheck(m ClientMsg) error {
	st, ok := s.clients[m.From]
	if !ok || !st.joined {
		return fmt.Errorf("%w: operation from unknown site %d", ErrBadMessage, m.From)
	}
	if m.Op == nil {
		return fmt.Errorf("%w: nil op from site %d", ErrBadMessage, m.From)
	}
	if m.TS.T2 != s.sv.Of(m.From)+1 {
		return fmt.Errorf("%w: site %d op T2=%d but SV_0[%d]=%d (FIFO violated?)",
			ErrBadMessage, m.From, m.TS.T2, m.From, s.sv.Of(m.From))
	}
	if m.TS.T1 > st.sent {
		return fmt.Errorf("%w: site %d acknowledges %d broadcasts, only %d sent",
			ErrBadMessage, m.From, m.TS.T1, st.sent)
	}
	return nil
}

// Receive processes one operation from a client and returns the broadcast
// messages for every other joined client, plus the integration report.
func (s *Server) Receive(m ClientMsg) ([]ServerMsg, IntegrationResult, error) {
	if err := s.Precheck(m); err != nil {
		return nil, IntegrationResult{}, err
	}
	st := s.clients[m.From]

	// Formula (7) against every buffered operation (O(1) per entry via the
	// delta-encoded Σ TS and TS[x]); the scan allocates nothing unless the
	// check trace is on.
	res := IntegrationResult{CheckCount: s.hb.Len()}
	tracing := s.decisions.Enabled()
	if s.checkTrace || tracing {
		checks, visit := s.tracedVisit(m, tracing)
		res.ConcurrentCount = s.hb.checkArrival(m.TS, m.From, st.baseline, visit)
		res.Checks = *checks
	} else {
		res.ConcurrentCount = s.hb.checkArrival(m.TS, m.From, st.baseline, nil)
	}
	s.spans.Stamp(m.Trace, span.StageCheck)

	exec := m.Op
	transforms := 0
	if s.mode == ModeTransform {
		var err error
		exec, transforms, err = s.bridgeWalk(st, m)
		if err != nil {
			return nil, IntegrationResult{}, err
		}
		s.count(trace.CTransforms, int64(transforms))
		s.spans.Stamp(m.Trace, span.StageTransform)
		if err := doc.Apply(s.buf, exec); err != nil {
			return nil, IntegrationResult{}, fmt.Errorf("core: server apply: %w", err)
		}
	} else {
		applyLoose(s.buf, exec)
	}
	s.spans.Stamp(m.Trace, span.StageExecute)
	res.Transforms = transforms
	if m.TS.T1 > st.acked {
		st.acked = m.TS.T1
	}

	// Execution complete: count the operation (§3.2) and buffer the
	// executed form with the full state vector (§3.3).
	s.sv.Inc(m.From)
	s.serverSeq++
	ref := causal.OpRef{Site: 0, Seq: s.serverSeq}
	if s.mode == ModeRelay {
		// Without transformation the relayed operation keeps its original
		// causal identity — nothing new is generated at site 0.
		ref = m.Ref
	}
	s.hb.Add(ServerEntry{Op: exec, Origin: m.From, Ref: ref})
	res.Executed = exec
	s.count(trace.COpsIntegrated, 1)
	s.count(trace.CConcurrencyChecks, int64(res.CheckCount))
	s.count(trace.CConcurrentPairs, int64(res.ConcurrentCount))
	if tracing {
		s.recordIntegrate(m, res.CheckCount, res.ConcurrentCount, transforms)
	}

	// Broadcast to everyone except the originator, each with its own
	// compressed timestamp (formulas 1–2) — the operation itself is
	// identical for all destinations, only the two integers differ (§3.3).
	// Destinations come pre-sorted from the join cache so simulations are
	// deterministic.
	dests := s.destinations()
	out := make([]ServerMsg, 0, len(dests)-1)
	for _, d := range dests {
		if d.site == m.From {
			continue
		}
		d.st.sent++
		// Safe to share exec across bridges and the broadcast: engine code
		// never mutates a built operation (Transform returns fresh ops).
		d.st.bridge = append(d.st.bridge, bridgeOp{seq: d.st.sent, op: exec, ref: ref})
		if d.st.comp != nil {
			// Compose-on-append keeps a warm cache covering the whole
			// bridge: exec's base is the pre-exec document, which is
			// exactly comp's target.
			var err error
			if d.st.comp, err = op.Compose(d.st.comp, exec); err != nil {
				return nil, IntegrationResult{}, fmt.Errorf("core: server compose: %w", err)
			}
			s.count(trace.CComposes, 1)
		}
		out = append(out, ServerMsg{
			To:      d.site,
			Op:      exec,
			TS:      s.sv.Compress(d.site, d.st.baseline),
			Ref:     ref,
			OrigRef: m.Ref,
			Trace:   m.Trace,
		})
	}

	if s.compactEvery > 0 {
		s.sinceCompact++
		if s.sinceCompact >= s.compactEvery {
			s.sinceCompact = 0
			s.Compact()
		}
	}
	return out, res, nil
}

// bridgeWalk brings one incoming client operation into server context. It
// settles any deferred folds the acknowledgement forces, prunes the
// acknowledged bridge prefix, and transforms the operation across the
// remaining (concurrent) suffix — through the composed cache when it is
// warm or deep enough to build, pairwise otherwise. It returns the executed
// form and the number of op.Transform calls spent.
//
// Correctness of the composed path rests on transform/compose
// compatibility: transforming against Compose(b₁,…,b_k) yields the same
// executed form as the sequential walk (DESIGN.md §13; enforced by
// FuzzIntegrateEquivalence against the pairwise reference). The individual
// bridge entries are left stale after a composed integration — the owed
// rebase is recorded in st.unfolded and replayed only when a later partial
// acknowledgement actually needs the individuals again, so the deferred
// work never exceeds what the pairwise path would have spent up front.
func (s *Server) bridgeWalk(st *clientState, m ClientMsg) (*op.Op, int, error) {
	exec := m.Op
	// Prune the bridge with the client's acknowledgement: entries with
	// seq <= T1 are causally before the arrival and leave the concurrent
	// suffix.
	i := 0
	for i < len(st.bridge) && st.bridge[i].seq <= m.TS.T1 {
		i++
	}
	transforms := 0
	if i > 0 {
		// The frontier moved: the cache no longer matches the suffix. If
		// any composed integrations still owe their pairwise rebase and
		// some entries survive, settle them first; a full prune skips the
		// replay — those entries are never consulted again.
		if len(st.unfolded) > 0 && i < len(st.bridge) {
			t, err := foldBridge(st.bridge, st.unfolded)
			transforms += t
			if err != nil {
				return nil, 0, fmt.Errorf("core: server transform: %w", err)
			}
		}
		clearFolds(&st.unfolded)
		st.comp = nil
		st.compHold = false
		st.bridge = st.bridge[i:]
	}
	k := len(st.bridge)
	if k == 0 {
		// Nothing concurrent; the operation executes as-is.
		return exec, transforms, nil
	}
	if st.comp != nil {
		if op.ComposedTransformSafe(st.comp, exec) {
			// Warm cache: comp covers the whole bridge (compose-on-append
			// maintains this), so one Transform does the entire walk.
			var err error
			st.comp, exec, err = op.Transform(st.comp, exec)
			if err != nil {
				return nil, 0, fmt.Errorf("core: server transform: %w", err)
			}
			transforms++
			st.unfolded = append(st.unfolded, deferredFold{op: m.Op, maxSeq: st.bridge[k-1].seq})
			s.count(trace.CCacheHits, 1)
			return exec, transforms, nil
		}
		// The arrival's inserts collide with a deleted region where the
		// composed form no longer pins insert order (DESIGN.md §13): the
		// fast path could diverge from the pairwise walk. Settle what the
		// cache deferred, drop it, and take the reference path below.
		if len(st.unfolded) > 0 {
			t, err := foldBridge(st.bridge, st.unfolded)
			transforms += t
			if err != nil {
				return nil, 0, fmt.Errorf("core: server transform: %w", err)
			}
		}
		clearFolds(&st.unfolded)
		st.comp = nil
		st.compHold = true
	}
	if !st.compHold && s.composeDepth > 0 && k >= s.composeDepth {
		// Cold cache over a deep bridge: fold the suffix into one composed
		// operation, then integrate through it. The build is valid because
		// no folds are outstanding here (unfolded non-empty implies comp
		// non-nil), so the individual entries are current.
		comp, err := composeBridge(st.bridge)
		if err != nil {
			return nil, 0, fmt.Errorf("core: server compose: %w", err)
		}
		s.count(trace.CComposes, int64(k-1))
		if op.ComposedTransformSafe(comp, exec) {
			st.comp, exec, err = op.Transform(comp, exec)
			if err != nil {
				return nil, 0, fmt.Errorf("core: server transform: %w", err)
			}
			transforms++
			st.unfolded = append(st.unfolded, deferredFold{op: m.Op, maxSeq: st.bridge[k-1].seq})
			s.count(trace.CCacheMisses, 1)
			return exec, transforms, nil
		}
		st.compHold = true
	}
	// Shallow bridge (or composition on hold): the pairwise reference walk.
	var err error
	for j := range st.bridge {
		st.bridge[j].op, exec, err = op.Transform(st.bridge[j].op, exec)
		if err != nil {
			return nil, 0, fmt.Errorf("core: server transform: %w", err)
		}
	}
	transforms += k
	s.count(trace.CCacheMisses, 1)
	return exec, transforms, nil
}

// foldBridge settles deferred folds: each operation integrated through the
// composed cache is replayed pairwise across the bridge entries it still
// owes (seq <= maxSeq), in arrival order, bringing every individual entry up
// to date; the rebased operation itself is discarded — the server already
// executed its composed equivalent. This is exactly the work the pairwise
// path would have done at arrival time, so deferring never costs more than
// the cache saved. Returns the Transform calls spent.
func foldBridge(bridge []bridgeOp, unfolded []deferredFold) (int, error) {
	transforms := 0
	for _, u := range unfolded {
		uop := u.op
		var err error
		for j := range bridge {
			if bridge[j].seq > u.maxSeq {
				break
			}
			bridge[j].op, uop, err = op.Transform(bridge[j].op, uop)
			if err != nil {
				return transforms, err
			}
			transforms++
		}
	}
	return transforms, nil
}

// composeBridge folds the bridge into a single operation, oldest first.
func composeBridge(bridge []bridgeOp) (*op.Op, error) {
	comp := bridge[0].op
	for j := 1; j < len(bridge); j++ {
		var err error
		comp, err = op.Compose(comp, bridge[j].op)
		if err != nil {
			return nil, err
		}
	}
	return comp, nil
}

// tracedVisit builds the per-entry callback for the cold tracing paths and
// the Checks slice it fills (nil unless the check trace is on). Kept out of
// Receive — and not inlined, taking no pointers into Receive's locals — so
// the closure machinery and Decision literals never enlarge the hot path's
// frame or force its result to escape; reverting this costs ~4% and one
// alloc/op on BenchmarkServerReceive with tracing off.
//
//go:noinline
func (s *Server) tracedVisit(m ClientMsg, tracing bool) (*[]Check, func(i int, e *ServerEntry, conc bool)) {
	checks := new([]Check)
	if s.checkTrace {
		*checks = make([]Check, 0, s.hb.Len())
	}
	return checks, func(i int, e *ServerEntry, conc bool) {
		if s.checkTrace {
			*checks = append(*checks, Check{Arriving: m.Ref, Buffered: e.Ref, Concurrent: conc})
		}
		if tracing {
			s.decisions.Record(obs.Decision{
				Kind: obs.DServerCheck, Session: s.decisionLabel,
				Site: m.From, T1: m.TS.T1, T2: m.TS.T2,
				Index: i, Concurrent: conc,
			})
		}
	}
}

// recordIntegrate emits the per-Receive summary trace record; see
// tracedVisit for why it is not inlined.
//
//go:noinline
func (s *Server) recordIntegrate(m ClientMsg, checkCount, concCount, transforms int) {
	s.decisions.Record(obs.Decision{
		Kind: obs.DServerIntegrate, Session: s.decisionLabel,
		Site: m.From, T1: m.TS.T1, T2: m.TS.T2, Index: -1,
		Checks: checkCount, NConc: concCount, Transforms: transforms,
	})
}

// Compact garbage-collects the history buffer using the latest
// acknowledgements from all joined sites; returns entries removed.
func (s *Server) Compact() int {
	acked := make(map[int]uint64, len(s.clients))
	baselines := make(map[int]uint64, len(s.clients))
	for id, st := range s.clients {
		if !st.joined {
			continue
		}
		acked[id] = st.acked
		baselines[id] = st.baseline
	}
	removed := s.hb.Compact(acked, baselines)
	s.count(trace.CCompactions, 1)
	s.count(trace.CCompacted, int64(removed))
	return removed
}

// checkInvariants verifies internal bookkeeping identities; test-only (via
// export_test.go) but kept on the engine so integration tests can call it
// after every step.
func (s *Server) checkInvariants() error {
	for id, st := range s.clients {
		if !st.joined {
			continue
		}
		want := s.sv.SumExcept(id) - st.baseline
		if st.sent != want {
			return fmt.Errorf("core: site %d: sent=%d but SumExcept-baseline=%d", id, st.sent, want)
		}
		if uint64(len(st.bridge)) > st.sent {
			return fmt.Errorf("core: site %d: bridge %d > sent %d", id, len(st.bridge), st.sent)
		}
		if st.comp == nil && len(st.unfolded) > 0 {
			return fmt.Errorf("core: site %d: %d unsettled folds without a composed cache", id, len(st.unfolded))
		}
		if st.comp != nil && len(st.bridge) == 0 {
			return fmt.Errorf("core: site %d: composed cache over an empty bridge", id)
		}
		if st.comp != nil && st.comp.TargetLen() != s.buf.Len() {
			return fmt.Errorf("core: site %d: composed cache targets %d runes, document has %d (stale cache?)",
				id, st.comp.TargetLen(), s.buf.Len())
		}
	}
	return nil
}
