package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/causal"
	"repro/internal/doc"
	"repro/internal/op"
)

func join(t *testing.T, srv *Server, site int, opts ...ClientOption) *Client {
	t.Helper()
	snap, err := srv.Join(site)
	if err != nil {
		t.Fatal(err)
	}
	return NewClient(site, snap.Text, opts...)
}

// pump delivers a client message to the server and all broadcasts to their
// destinations.
func pump(t *testing.T, srv *Server, clients map[int]*Client, m ClientMsg) {
	t.Helper()
	bcast, _, err := srv.Receive(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, bm := range bcast {
		if _, err := clients[bm.To].Integrate(bm); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJoinErrors(t *testing.T) {
	srv := NewServer("")
	if _, err := srv.Join(0); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("site 0 join: %v", err)
	}
	if _, err := srv.Join(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Join(1); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("double join: %v", err)
	}
}

func TestReceiveFromUnknownSite(t *testing.T) {
	srv := NewServer("")
	m := ClientMsg{From: 9, Op: op.New(), TS: Timestamp{0, 1}}
	if _, _, err := srv.Receive(m); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
}

func TestReceiveFIFOViolations(t *testing.T) {
	srv := NewServer("x")
	_ = join(t, srv, 1)
	// T2 gap (second op before first).
	m := ClientMsg{From: 1, Op: op.New().Retain(1), TS: Timestamp{0, 2}}
	if _, _, err := srv.Receive(m); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("T2 gap: %v", err)
	}
	// T1 claims more broadcasts than sent.
	m = ClientMsg{From: 1, Op: op.New().Retain(1), TS: Timestamp{5, 1}}
	if _, _, err := srv.Receive(m); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("T1 overrun: %v", err)
	}
}

func TestLeaveAndCountersPersist(t *testing.T) {
	srv := NewServer("", WithServerCompaction(0))
	clients := map[int]*Client{
		1: join(t, srv, 1),
		2: join(t, srv, 2),
		3: join(t, srv, 3),
	}
	m, _ := clients[1].Insert(0, "a")
	pump(t, srv, clients, m)

	if err := srv.Leave(3); err != nil {
		t.Fatal(err)
	}
	if err := srv.Leave(3); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("double leave: %v", err)
	}
	delete(clients, 3)

	// Departed site's count must remain in the sums: the next broadcast to
	// site 2 counts site 1's op done before the leave.
	m2, _ := clients[2].Insert(1, "b")
	bcast, _, err := srv.Receive(m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bcast) != 1 || bcast[0].To != 1 {
		t.Fatalf("broadcast set after leave: %+v", bcast)
	}
	if srv.SV().Of(1) != 1 {
		t.Fatal("counters must persist after leave")
	}
	if got := len(srv.Sites()); got != 2 {
		t.Fatalf("joined sites after leave: %d", got)
	}
}

func TestRejoinGetsFreshSnapshot(t *testing.T) {
	srv := NewServer("", WithServerCompaction(0))
	clients := map[int]*Client{1: join(t, srv, 1), 2: join(t, srv, 2)}
	m, _ := clients[1].Insert(0, "hello")
	pump(t, srv, clients, m)
	if err := srv.Leave(2); err != nil {
		t.Fatal(err)
	}
	m2, _ := clients[1].Insert(5, " world")
	pump(t, srv, map[int]*Client{1: clients[1]}, m2)

	snap, err := srv.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Text != "hello world" {
		t.Fatalf("rejoin snapshot %q", snap.Text)
	}
	c2 := NewClient(2, snap.Text)
	clients[2] = c2
	// The rejoined site edits; everyone converges.
	m3, _ := c2.Insert(0, ">> ")
	pump(t, srv, clients, m3)
	if clients[1].Text() != ">> hello world" || srv.Text() != ">> hello world" {
		t.Fatalf("after rejoin: %q / %q", clients[1].Text(), srv.Text())
	}
}

// TestRejoinAfterGeneratingOps is the regression for the rejoin baseline:
// a site that generated operations, left, and rejoined must see correct
// (since-rejoin) T1 values on subsequent broadcasts, and its resumed local
// counter must satisfy the server's FIFO check.
func TestRejoinAfterGeneratingOps(t *testing.T) {
	srv := NewServer("", WithServerCompaction(0))
	clients := map[int]*Client{1: join(t, srv, 1), 2: join(t, srv, 2)}

	// Both sites generate before site 2 leaves.
	m1, _ := clients[1].Insert(0, "a")
	pump(t, srv, clients, m1)
	m2, _ := clients[2].Insert(1, "b")
	pump(t, srv, clients, m2)

	if err := srv.Leave(2); err != nil {
		t.Fatal(err)
	}
	delete(clients, 2)

	snap, err := srv.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.LocalOps != 1 {
		t.Fatalf("resumed local counter %d, want 1", snap.LocalOps)
	}
	c2 := NewClient(2, snap.Text, WithClientResume(snap.LocalOps))
	clients[2] = c2

	// The rejoined site's first op must pass the FIFO precheck (T2=2).
	mr, err := c2.Insert(0, "c")
	if err != nil {
		t.Fatal(err)
	}
	pump(t, srv, clients, mr)

	// A broadcast toward the rejoined site must carry T1=1 (first since
	// rejoin), not a count polluted by its own pre-leave operations.
	m3, _ := clients[1].Insert(0, "d")
	bcast, _, err := srv.Receive(m3)
	if err != nil {
		t.Fatal(err)
	}
	for _, bm := range bcast {
		if bm.To == 2 && bm.TS.T1 != 1 {
			t.Fatalf("rejoined site T1 = %d, want 1", bm.TS.T1)
		}
		if _, err := clients[bm.To].Integrate(bm); err != nil {
			t.Fatal(err)
		}
	}
	if clients[1].Text() != c2.Text() || srv.Text() != c2.Text() {
		t.Fatalf("divergence after rejoin: %q / %q / %q",
			clients[1].Text(), c2.Text(), srv.Text())
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRejoinCompactionAndDestinationCache drives the full lifecycle the
// sorted-destination cache, the delta-encoded history buffer, and (since
// PR 5) the composed-suffix transform cache must agree on: traffic with
// automatic compaction, a leave, more traffic (the cache must drop the
// departed site at once), a rejoin (the cache must readmit it; no broadcast
// generated before its snapshot may reach it), edits by the rejoiner, and a
// lagged catch-up burst. Engine invariants are re-checked after every step.
// Depth 1 forces the composed cache onto every bridge walk; depth 0 is the
// pairwise reference path.
func TestRejoinCompactionAndDestinationCache(t *testing.T) {
	for _, depth := range []int{defaultComposeDepth, 1, 0} {
		t.Run(fmt.Sprintf("composeDepth=%d", depth), func(t *testing.T) {
			testRejoinLifecycle(t, depth)
		})
	}
}

func testRejoinLifecycle(t *testing.T, composeDepth int) {
	srv := NewServer("", WithServerCompaction(2), WithServerComposeDepth(composeDepth))
	clients := map[int]*Client{
		1: join(t, srv, 1, WithClientCompaction(2), WithClientComposeDepth(composeDepth)),
		2: join(t, srv, 2, WithClientCompaction(2), WithClientComposeDepth(composeDepth)),
		3: join(t, srv, 3, WithClientCompaction(2), WithClientComposeDepth(composeDepth)),
	}
	// step sends one insert from a site and checks the broadcast fan-out is
	// exactly wantTo, in ascending order — the contract the cached
	// destination list must keep through joins and leaves.
	step := func(from, pos int, s string, wantTo ...int) []ServerMsg {
		t.Helper()
		m, err := clients[from].Insert(pos, s)
		if err != nil {
			t.Fatal(err)
		}
		bcast, _, err := srv.Receive(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(bcast) != len(wantTo) {
			t.Fatalf("op from %d broadcast to %d sites, want %v", from, len(bcast), wantTo)
		}
		for i, bm := range bcast {
			if bm.To != wantTo[i] {
				t.Fatalf("op from %d: destination[%d] = %d, want %v", from, i, bm.To, wantTo)
			}
			if _, err := clients[bm.To].Integrate(bm); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.CheckInvariants(); err != nil {
			t.Fatalf("after op from %d: %v", from, err)
		}
		return bcast
	}

	// Warm the destination cache and run enough traffic for compaction.
	step(1, 0, "a", 2, 3)
	step(2, 0, "b", 1, 3)
	step(3, 0, "c", 1, 2)
	step(1, 0, "d", 2, 3)

	// Site 2 leaves: the cache must stop fanning out to it immediately.
	if err := srv.Leave(2); err != nil {
		t.Fatal(err)
	}
	delete(clients, 2)
	step(1, 0, "e", 3)
	step(3, 0, "f", 1)
	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("after leave: %v", err)
	}

	// Rejoin: the snapshot carries everything, so nothing generated before
	// it may be re-delivered (the step checks above already proved no
	// broadcast targeted site 2 while it was away).
	snap, err := srv.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Text != srv.Text() {
		t.Fatalf("rejoin snapshot %q, server %q", snap.Text, srv.Text())
	}
	clients[2] = NewClient(2, snap.Text,
		WithClientResume(snap.LocalOps), WithClientCompaction(2),
		WithClientComposeDepth(composeDepth))
	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("after rejoin: %v", err)
	}

	// First broadcast toward the rejoiner counts from its snapshot: T1=1.
	for _, bm := range step(1, 0, "g", 2, 3) {
		if bm.To == 2 && bm.TS.T1 != 1 {
			t.Fatalf("first post-rejoin broadcast T1 = %d, want 1", bm.TS.T1)
		}
	}
	// The rejoiner edits; the cache fans its op out to the others.
	step(2, 0, "h", 1, 3)
	step(3, 0, "i", 1, 2)

	// Lagged catch-up: site 3 goes quiet while the others keep editing,
	// building a deep bridge toward it; its stale-context edits must then
	// integrate through the composed-suffix cache (depth permitting)
	// exactly as the pairwise walk would, and the deferred folds must
	// settle when the backlog finally acknowledges.
	var backlog []ServerMsg
	send := func(from, pos int, s string) {
		t.Helper()
		m, err := clients[from].Insert(pos, s)
		if err != nil {
			t.Fatal(err)
		}
		bcast, _, err := srv.Receive(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, bm := range bcast {
			if bm.To == 3 {
				backlog = append(backlog, bm)
				continue
			}
			if _, err := clients[bm.To].Integrate(bm); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.CheckInvariants(); err != nil {
			t.Fatalf("lagged phase, op from %d: %v", from, err)
		}
	}
	for i := 0; i < 4; i++ {
		send(1, 0, "x")
		send(2, 0, "y")
	}
	// Two stale-context edits from the laggard: the second rides the warm
	// cache when composition is enabled.
	send(3, clients[3].DocLen(), "z")
	send(3, clients[3].DocLen(), "w")
	for _, bm := range backlog {
		if _, err := clients[3].Integrate(bm); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("after catch-up: %v", err)
	}

	for site, c := range clients {
		if c.Text() != srv.Text() {
			t.Fatalf("site %d diverged: %q vs server %q", site, c.Text(), srv.Text())
		}
	}
	if srv.History().Dropped() == 0 {
		t.Fatal("automatic compaction never removed an entry")
	}
}

func TestLateJoinerConvergesAndTimestampsRebase(t *testing.T) {
	srv := NewServer("", WithServerCompaction(0))
	clients := map[int]*Client{1: join(t, srv, 1), 2: join(t, srv, 2)}
	for i := 0; i < 5; i++ {
		m, err := clients[1].Insert(clients[1].DocLen(), "a")
		if err != nil {
			t.Fatal(err)
		}
		pump(t, srv, clients, m)
	}
	// Site 3 joins after 5 operations.
	c3 := join(t, srv, 3)
	clients[3] = c3
	if c3.Text() != "aaaaa" {
		t.Fatalf("join snapshot: %q", c3.Text())
	}
	// Next broadcast to site 3 must carry T1=1 (first op since join), not 6.
	m, _ := clients[2].Insert(0, "b")
	bcast, _, err := srv.Receive(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, bm := range bcast {
		if bm.To == 3 && bm.TS.T1 != 1 {
			t.Fatalf("late joiner T1 = %d, want 1", bm.TS.T1)
		}
		if _, err := clients[bm.To].Integrate(bm); err != nil {
			t.Fatal(err)
		}
	}
	// The late joiner edits concurrently with others and all converge.
	m3, _ := c3.Insert(0, "c")
	m1, _ := clients[1].Insert(0, "d")
	pump(t, srv, clients, m3)
	pump(t, srv, clients, m1)
	want := srv.Text()
	for site, c := range clients {
		if c.Text() != want {
			t.Fatalf("site %d: %q != %q", site, c.Text(), want)
		}
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestServerCompaction(t *testing.T) {
	srv := NewServer("", WithServerCompaction(1))
	clients := map[int]*Client{1: join(t, srv, 1), 2: join(t, srv, 2)}
	for i := 0; i < 40; i++ {
		site := 1 + i%2
		m, err := clients[site].Insert(0, fmt.Sprintf("%d", i%10))
		if err != nil {
			t.Fatal(err)
		}
		pump(t, srv, clients, m)
	}
	// With prompt round trips every op is acknowledged quickly; HB must be
	// small, not 40.
	if srv.History().Len() > 6 {
		t.Fatalf("server HB grew to %d despite compaction", srv.History().Len())
	}
	if srv.History().Dropped() == 0 {
		t.Fatal("server never compacted")
	}
	if clients[1].Text() != clients[2].Text() || srv.Text() != clients[1].Text() {
		t.Fatal("divergence under server compaction")
	}
}

func TestServerCompactionRespectsLaggard(t *testing.T) {
	srv := NewServer("", WithServerCompaction(0))
	c1 := join(t, srv, 1)
	_ = join(t, srv, 2) // site 2 never acknowledges anything
	for i := 0; i < 10; i++ {
		m, err := c1.Insert(0, "x")
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := srv.Receive(m); err != nil {
			t.Fatal(err)
		}
	}
	if n := srv.Compact(); n != 0 {
		t.Fatalf("compacted %d entries while site 2 has acked nothing", n)
	}
	if srv.History().Len() != 10 {
		t.Fatalf("HB len %d", srv.History().Len())
	}
}

func TestServerAccessorsAndOptions(t *testing.T) {
	srv := NewServer("doc", WithServerMode(ModeRelay), WithServerBuffer(doc.NewSimple("doc")))
	if srv.Mode() != ModeRelay || srv.Text() != "doc" {
		t.Fatalf("options: %v %q", srv.Mode(), srv.Text())
	}
	if srv.BridgeLen(1) != 0 {
		t.Fatal("bridge of unknown site must be 0")
	}
}

func TestReceiveRefsIdentifyTransformedOps(t *testing.T) {
	srv := NewServer("", WithServerCompaction(0))
	clients := map[int]*Client{1: join(t, srv, 1), 2: join(t, srv, 2)}
	m, _ := clients[1].Insert(0, "a")
	bcast, _, err := srv.Receive(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(bcast) != 1 {
		t.Fatal("one broadcast expected")
	}
	if bcast[0].Ref != (causal.OpRef{Site: 0, Seq: 1}) {
		t.Fatalf("transformed op ref: %v", bcast[0].Ref)
	}
	if bcast[0].OrigRef != (causal.OpRef{Site: 1, Seq: 1}) {
		t.Fatalf("orig ref: %v", bcast[0].OrigRef)
	}
}

func TestRelayModeKeepsOriginalRefs(t *testing.T) {
	srv := NewServer("", WithServerMode(ModeRelay), WithServerCompaction(0))
	clients := map[int]*Client{
		1: join(t, srv, 1, WithClientMode(ModeRelay)),
		2: join(t, srv, 2, WithClientMode(ModeRelay)),
	}
	m, _ := clients[1].Insert(0, "a")
	bcast, _, err := srv.Receive(m)
	if err != nil {
		t.Fatal(err)
	}
	if bcast[0].Ref != m.Ref {
		t.Fatalf("relay mode must keep the original ref, got %v", bcast[0].Ref)
	}
}
