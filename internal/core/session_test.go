package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/causal"
	"repro/internal/op"
)

// harness wires a notifier and a set of clients through per-link FIFO
// queues (the "TCP links" of the paper), recording every event into the
// ground-truth oracle and every concurrency decision for later validation.
type harness struct {
	t        *testing.T
	srv      *Server
	clients  map[int]*Client
	toServer map[int][]ClientMsg
	toClient map[int][]ServerMsg
	oracle   *causal.Oracle
	checks   []Check
	relay    bool

	// checkBridgeInvariant enables the concurrent-set ≡ pending/bridge-set
	// cross-validation on every delivery.
	checkBridgeInvariant bool
}

func newHarness(t *testing.T, nClients int, initial string, mode Mode, compactEvery int) *harness {
	return newHarnessDepth(t, nClients, initial, mode, compactEvery, defaultComposeDepth)
}

// newHarnessDepth builds a harness with an explicit composed-cache threshold:
// depth 1 forces the compose path onto every multi-entry walk (the adversarial
// setting for the cache bookkeeping), depth <= 0 disables composition (the
// pairwise reference the differential fuzz target compares against).
func newHarnessDepth(t *testing.T, nClients int, initial string, mode Mode, compactEvery, composeDepth int) *harness {
	h := &harness{
		t: t,
		srv: NewServer(initial, WithServerMode(mode), WithServerCompaction(compactEvery),
			WithServerCheckTrace(), WithServerComposeDepth(composeDepth)),
		clients:  make(map[int]*Client),
		toServer: make(map[int][]ClientMsg),
		toClient: make(map[int][]ServerMsg),
		oracle:   causal.NewOracle(),
		relay:    mode == ModeRelay,
	}
	for site := 1; site <= nClients; site++ {
		snap, err := h.srv.Join(site)
		if err != nil {
			t.Fatal(err)
		}
		h.clients[site] = NewClient(site, snap.Text,
			WithClientMode(mode), WithClientCompaction(compactEvery),
			WithClientCheckTrace(), WithClientComposeDepth(composeDepth))
	}
	return h
}

// generate produces one random local operation at site and queues it toward
// the server.
func (h *harness) generate(r *rand.Rand, site int, text string) {
	c := h.clients[site]
	n := c.DocLen()
	var o *op.Op
	var err error
	if n == 0 || r.Intn(100) < 70 {
		pos := 0
		if n > 0 {
			pos = r.Intn(n + 1)
		}
		o, err = op.NewInsert(n, pos, text)
	} else {
		pos := r.Intn(n)
		count := 1 + r.Intn(min(3, n-pos))
		o, err = op.NewDelete(n, pos, count)
	}
	if err != nil {
		h.t.Fatal(err)
	}
	m, err := c.Generate(o)
	if err != nil {
		h.t.Fatal(err)
	}
	h.oracle.Generate(site, m.Ref)
	h.toServer[site] = append(h.toServer[site], m)
}

// deliverToServer pops the head of site's upstream queue into the notifier.
func (h *harness) deliverToServer(site int) bool {
	q := h.toServer[site]
	if len(q) == 0 {
		return false
	}
	m := q[0]
	h.toServer[site] = q[1:]
	bcast, res, err := h.srv.Receive(m)
	if err != nil {
		h.t.Fatalf("server receive from %d: %v", site, err)
	}
	h.checks = append(h.checks, res.Checks...)
	h.oracle.Execute(0, m.Ref)
	if !h.relay {
		// The transformed op is a new operation generated at site 0,
		// derived from the client's original (paper §3.1, §5).
		newRef := causal.OpRef{Site: 0, Seq: h.serverSeq()}
		if len(bcast) > 0 {
			newRef = bcast[0].Ref
		}
		h.oracle.GenerateDerived(0, newRef, m.Ref)
	}
	if h.checkBridgeInvariant && !h.relay {
		// Formula (7)'s concurrent set must equal the unacked bridge
		// toward the originator (excluding entries GC'd from the HB).
		bridge := map[causal.OpRef]bool{}
		for _, ref := range h.srv.BridgeRefs(m.From) {
			bridge[ref] = true
		}
		for _, ch := range res.Checks {
			if ch.Concurrent && !bridge[ch.Buffered] {
				h.t.Fatalf("op %v: formula(7) says concurrent with %v but it is not in the bridge",
					m.Ref, ch.Buffered)
			}
		}
		concurrent := map[causal.OpRef]bool{}
		for _, ch := range res.Checks {
			if ch.Concurrent {
				concurrent[ch.Buffered] = true
			}
		}
		hbRefs := map[causal.OpRef]bool{}
		for _, e := range h.srv.History().Entries() {
			hbRefs[e.Ref] = true
		}
		for ref := range bridge {
			if hbRefs[ref] && !concurrent[ref] {
				h.t.Fatalf("op %v: bridge entry %v (still in HB) not flagged concurrent by formula(7)",
					m.Ref, ref)
			}
		}
	}
	if err := h.srv.CheckInvariants(); err != nil {
		h.t.Fatal(err)
	}
	for _, bm := range bcast {
		h.toClient[bm.To] = append(h.toClient[bm.To], bm)
	}
	return true
}

func (h *harness) serverSeq() uint64 {
	return uint64(h.srv.History().Len() + h.srv.History().Dropped())
}

// deliverToClient pops the head of site's downstream queue into its client.
func (h *harness) deliverToClient(site int) bool {
	q := h.toClient[site]
	if len(q) == 0 {
		return false
	}
	m := q[0]
	h.toClient[site] = q[1:]
	c := h.clients[site]
	res, err := c.Integrate(m)
	if err != nil {
		h.t.Fatalf("client %d integrate: %v", site, err)
	}
	h.checks = append(h.checks, res.Checks...)
	h.oracle.Execute(site, m.Ref)
	if h.checkBridgeInvariant && !h.relay {
		// Formula (5)'s concurrent local entries must equal the pending
		// set after acknowledgement pruning.
		pending := map[uint64]bool{}
		for _, seq := range c.PendingSeqs() {
			pending[seq] = true
		}
		concLocal := map[uint64]bool{}
		for _, ch := range res.Checks {
			if ch.Concurrent && ch.Buffered.Site == site {
				concLocal[ch.Buffered.Seq] = true
			}
			if ch.Concurrent && ch.Buffered.Site != site {
				h.t.Fatalf("client %d: formula(5) flagged server-origin %v as concurrent — impossible under FIFO star",
					site, ch.Buffered)
			}
		}
		for seq := range concLocal {
			if !pending[seq] {
				h.t.Fatalf("client %d: concurrent local op seq %d not pending", site, seq)
			}
		}
		// Pending ops may exceed the concurrent set only by entries GC'd
		// out of the HB; with compaction disabled they must match exactly.
		for seq := range pending {
			if !concLocal[seq] {
				h.t.Fatalf("client %d: pending op seq %d not flagged concurrent by formula(5)", site, seq)
			}
		}
	}
	return true
}

// drain delivers every queued message (upstream first, then all downstream,
// repeating until quiescent).
func (h *harness) drain() {
	for {
		moved := false
		for site := range h.clients {
			for h.deliverToServer(site) {
				moved = true
			}
		}
		for site := range h.clients {
			for h.deliverToClient(site) {
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

// converged asserts all replicas (including site 0) hold identical text and
// returns it.
func (h *harness) converged() string {
	want := h.srv.Text()
	for site, c := range h.clients {
		if c.Text() != want {
			h.t.Fatalf("divergence: site %d %q, site 0 %q", site, c.Text(), want)
		}
	}
	return want
}

// validateChecks seals the oracle and compares every recorded concurrency
// decision with ground truth, returning the number of mismatches.
func (h *harness) validateChecks() int {
	h.oracle.Seal()
	mismatches := 0
	for _, ch := range h.checks {
		if ch.Concurrent != h.oracle.Concurrent(ch.Arriving, ch.Buffered) {
			mismatches++
		}
	}
	return mismatches
}

// run executes a random session: steps interleaved generations and
// deliveries, then a final drain.
func (h *harness) run(r *rand.Rand, steps int) {
	sites := make([]int, 0, len(h.clients))
	for s := range h.clients {
		sites = append(sites, s)
	}
	opID := 0
	for i := 0; i < steps; i++ {
		site := sites[r.Intn(len(sites))]
		switch r.Intn(4) {
		case 0, 1:
			opID++
			h.generate(r, site, fmt.Sprintf("<%d>", opID))
		case 2:
			h.deliverToServer(site)
		default:
			h.deliverToClient(site)
		}
	}
	h.drain()
}

// TestRandomSessionsConverge: many seeds, several cluster sizes, both with
// and without history compaction — replicas must converge and every
// compressed-clock verdict must match the Definition-1 oracle (experiment
// E5 in miniature).
func TestRandomSessionsConverge(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for seed := int64(0); seed < 6; seed++ {
			for _, compact := range []int{0, 4} {
				// Depth 1 forces the composed cache onto every walk; the
				// default threshold exercises the threshold crossover.
				for _, depth := range []int{defaultComposeDepth, 1} {
					name := fmt.Sprintf("n=%d/seed=%d/compact=%d/depth=%d", n, seed, compact, depth)
					t.Run(name, func(t *testing.T) {
						h := newHarnessDepth(t, n, "seed text", ModeTransform, compact, depth)
						h.checkBridgeInvariant = compact == 0
						h.run(rand.New(rand.NewSource(seed)), 400)
						h.converged()
						if mm := h.validateChecks(); mm != 0 {
							t.Fatalf("%d concurrency verdicts disagree with the oracle", mm)
						}
					})
				}
			}
		}
	}
}

// pickBoundary returns a random rune offset that does not fall inside a
// "<...>" marker.
func pickBoundary(r *rand.Rand, text string) int {
	var boundaries []int
	depth := 0
	i := 0
	for _, ch := range text {
		if depth == 0 {
			boundaries = append(boundaries, i)
		}
		switch ch {
		case '<':
			depth++
		case '>':
			depth--
		}
		i++
	}
	boundaries = append(boundaries, i)
	return boundaries[r.Intn(len(boundaries))]
}

// TestInsertOnlyIntentionPreservation: with an insert-only workload every
// inserted marker must appear in the converged document exactly once —
// concurrent inserts may interleave but never destroy each other
// (intention preservation, paper §2.2).
func TestInsertOnlyIntentionPreservation(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	h := newHarness(t, 4, "", ModeTransform, 0)
	h.checkBridgeInvariant = true
	var markers []string
	sites := []int{1, 2, 3, 4}
	for i := 0; i < 250; i++ {
		site := sites[r.Intn(len(sites))]
		switch r.Intn(3) {
		case 0:
			marker := fmt.Sprintf("<%d>", i)
			markers = append(markers, marker)
			c := h.clients[site]
			// Insert only at marker boundaries: splitting someone else's
			// marker on purpose is a legitimate edit, not an intention
			// violation, so the exactly-once assertion needs edits that
			// keep markers atomic.
			pos := pickBoundary(r, c.Text())
			o, err := op.NewInsert(c.DocLen(), pos, marker)
			if err != nil {
				t.Fatal(err)
			}
			m, err := c.Generate(o)
			if err != nil {
				t.Fatal(err)
			}
			h.oracle.Generate(site, m.Ref)
			h.toServer[site] = append(h.toServer[site], m)
		case 1:
			h.deliverToServer(site)
		default:
			h.deliverToClient(site)
		}
	}
	h.drain()
	final := h.converged()
	for _, m := range markers {
		if got := strings.Count(final, m); got != 1 {
			t.Fatalf("marker %q appears %d times in %q — intention violated", m, got, final)
		}
	}
	if mm := h.validateChecks(); mm != 0 {
		t.Fatalf("%d verdict mismatches", mm)
	}
}

// TestRelayModeBreaks reproduces the paper's §6 claim as a *negative* test:
// with the notifier relaying original operations, either replicas diverge or
// the 2-element verdicts disagree with ground truth (usually both) on
// workloads with real concurrency.
func TestRelayModeBreaks(t *testing.T) {
	broken := 0
	const trials = 12
	for seed := int64(0); seed < trials; seed++ {
		h := newHarness(t, 4, "the quick brown fox", ModeRelay, 0)
		h.run(rand.New(rand.NewSource(seed)), 300)
		diverged := false
		want := h.srv.Text()
		for _, c := range h.clients {
			if c.Text() != want {
				diverged = true
			}
		}
		if diverged || h.validateChecks() > 0 {
			broken++
		}
	}
	if broken == 0 {
		t.Fatalf("relay mode behaved correctly across %d random sessions — the ablation should break", trials)
	}
}

// TestSingleClientSessionIsTrivial: with one client there is no concurrency;
// everything must flow through unchanged.
func TestSingleClientSessionIsTrivial(t *testing.T) {
	h := newHarness(t, 1, "", ModeTransform, 0)
	c := h.clients[1]
	for i := 0; i < 20; i++ {
		m, err := c.Insert(c.DocLen(), fmt.Sprintf("%d,", i))
		if err != nil {
			t.Fatal(err)
		}
		h.oracle.Generate(1, m.Ref)
		h.toServer[1] = append(h.toServer[1], m)
	}
	h.drain()
	if h.srv.Text() != c.Text() {
		t.Fatalf("server %q != client %q", h.srv.Text(), c.Text())
	}
	if c.SV().FromServer != 0 {
		t.Fatalf("sole client must receive nothing, got %d", c.SV().FromServer)
	}
}
