package core

import (
	"errors"
	"fmt"

	"repro/internal/doc"
	"repro/internal/op"
)

// Undo support (an extension beyond the paper, built from the same
// machinery): undoing a local operation generates a *new* operation — the
// inverse of the original, inclusion-transformed against everything executed
// since. Because the undo is just another local operation, it flows through
// the compressed-clock pipeline unchanged and all replicas converge on it
// like on any edit.

// ErrNothingToUndo is returned when no undoable local operation remains.
var ErrNothingToUndo = errors.New("core: nothing to undo")

// undoRecord remembers one local operation and the inverse that undoes it in
// its generation context.
type undoRecord struct {
	inverse *op.Op
	// histLen is the history-buffer length right after the op executed:
	// everything appended later must be transformed into the inverse.
	histLen int
	dropped int // hb.Dropped() at record time
}

// undoStack is maintained by the Client when undo tracking is enabled.
type undoStack struct {
	records []undoRecord
}

// WithClientUndo enables undo tracking. It requires history compaction to be
// disabled (the undo rebase walks the history buffer).
func WithClientUndo() ClientOption {
	return func(c *Client) {
		c.undo = &undoStack{}
		c.compactEvery = 0
	}
}

// pushUndo records a just-executed local op. doc is the document state
// *before* the op ran.
func (c *Client) pushUndo(o *op.Op, before []rune) error {
	inv, err := op.Invert(o, before)
	if err != nil {
		return err
	}
	c.undo.records = append(c.undo.records, undoRecord{
		inverse: inv,
		histLen: c.hb.Len(),
		dropped: c.hb.Dropped(),
	})
	return nil
}

// Undo generates the operation that reverses this site's most recent
// not-yet-undone local operation and applies it like any local edit,
// returning the message to propagate. The inverse is transformed against
// every operation executed after the original, so it cleanly removes the
// original's effect even after concurrent remote edits landed on top.
func (c *Client) Undo() (ClientMsg, error) {
	if c.undo == nil {
		return ClientMsg{}, fmt.Errorf("%w (enable WithClientUndo)", ErrNothingToUndo)
	}
	n := len(c.undo.records)
	if n == 0 {
		return ClientMsg{}, ErrNothingToUndo
	}
	rec := c.undo.records[n-1]
	c.undo.records = c.undo.records[:n-1]

	if rec.dropped != c.hb.Dropped() {
		return ClientMsg{}, fmt.Errorf("core: undo: history was compacted under us")
	}
	inv := rec.inverse
	var err error
	for _, e := range c.hb.Entries()[rec.histLen:] {
		if inv, err = op.TransformOnly(inv, e.Op); err != nil {
			return ClientMsg{}, fmt.Errorf("core: undo rebase: %w", err)
		}
	}
	// Generate() will push an undo record for the undo itself, making it
	// redoable by a further Undo — the usual toggle semantics.
	return c.Generate(inv)
}

// UndoDepth reports how many operations are currently undoable.
func (c *Client) UndoDepth() int {
	if c.undo == nil {
		return 0
	}
	return len(c.undo.records)
}

// snapshotRunes captures the buffer contents as runes (used to record undo
// inverses before a local apply).
func snapshotRunes(b doc.Buffer) []rune {
	return []rune(b.String())
}
