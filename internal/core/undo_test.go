package core

import (
	"errors"
	"testing"
)

func undoPair(t *testing.T) (*Server, *Client, *Client) {
	t.Helper()
	srv := NewServer("base text", WithServerCompaction(0))
	snap1, err := srv.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := srv.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewClient(1, snap1.Text, WithClientUndo())
	c2 := NewClient(2, snap2.Text, WithClientUndo())
	return srv, c1, c2
}

// pumpMsg routes one client message through the server to the other client.
func pumpMsg(t *testing.T, srv *Server, m ClientMsg, others ...*Client) {
	t.Helper()
	bcast, _, err := srv.Receive(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, bm := range bcast {
		for _, c := range others {
			if c.Site() == bm.To {
				if _, err := c.Integrate(bm); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestUndoSimple(t *testing.T) {
	_, c1, _ := undoPair(t)
	if _, err := c1.Insert(0, ">> "); err != nil {
		t.Fatal(err)
	}
	if c1.UndoDepth() != 1 {
		t.Fatalf("depth %d", c1.UndoDepth())
	}
	if _, err := c1.Undo(); err != nil {
		t.Fatal(err)
	}
	if c1.Text() != "base text" {
		t.Fatalf("after undo: %q", c1.Text())
	}
}

func TestUndoIsRedoable(t *testing.T) {
	_, c1, _ := undoPair(t)
	if _, err := c1.Insert(9, "!"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Undo(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Undo(); err != nil { // undo the undo = redo
		t.Fatal(err)
	}
	if c1.Text() != "base text!" {
		t.Fatalf("after redo: %q", c1.Text())
	}
}

func TestUndoNothing(t *testing.T) {
	_, c1, _ := undoPair(t)
	if _, err := c1.Undo(); !errors.Is(err, ErrNothingToUndo) {
		t.Fatalf("want ErrNothingToUndo, got %v", err)
	}
	plain := NewClient(9, "")
	if _, err := plain.Undo(); !errors.Is(err, ErrNothingToUndo) {
		t.Fatalf("undo without tracking: %v", err)
	}
}

// TestUndoAfterRemoteEdits: the undo must remove exactly the original
// operation's effect even when remote operations landed after it.
func TestUndoAfterRemoteEdits(t *testing.T) {
	srv, c1, c2 := undoPair(t)

	m1, err := c1.Insert(0, "XXX ")
	if err != nil {
		t.Fatal(err)
	}
	pumpMsg(t, srv, m1, c2)

	// c2 edits around (before and after) the region c1 inserted.
	m2, err := c2.Insert(0, "(head) ")
	if err != nil {
		t.Fatal(err)
	}
	pumpMsg(t, srv, m2, c1)
	m3, err := c2.Insert(c2.DocLen(), " (tail)")
	if err != nil {
		t.Fatal(err)
	}
	pumpMsg(t, srv, m3, c1)

	if c1.Text() != "(head) XXX base text (tail)" {
		t.Fatalf("setup: %q", c1.Text())
	}

	mu, err := c1.Undo()
	if err != nil {
		t.Fatal(err)
	}
	pumpMsg(t, srv, mu, c2)

	want := "(head) base text (tail)"
	if c1.Text() != want || c2.Text() != want || srv.Text() != want {
		t.Fatalf("after undo: %q / %q / %q", c1.Text(), c2.Text(), srv.Text())
	}
}

// TestUndoWithConcurrentRemote: undo generated while a concurrent remote op
// is still in flight; everyone must converge and only the undone text
// disappears.
func TestUndoWithConcurrentRemote(t *testing.T) {
	srv, c1, c2 := undoPair(t)

	m1, err := c1.Insert(0, "AAA")
	if err != nil {
		t.Fatal(err)
	}
	mu, err := c1.Undo() // undo before even reaching the server
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c2.Insert(9, " BBB") // concurrent with both
	if err != nil {
		t.Fatal(err)
	}

	pumpMsg(t, srv, m1, c2)
	pumpMsg(t, srv, m2, c1)
	pumpMsg(t, srv, mu, c2)

	want := "base text BBB"
	if c1.Text() != want || c2.Text() != want || srv.Text() != want {
		t.Fatalf("convergence after in-flight undo: %q / %q / %q",
			c1.Text(), c2.Text(), srv.Text())
	}
}

func TestUndoDeleteRestoresText(t *testing.T) {
	srv, c1, c2 := undoPair(t)
	m1, err := c1.Delete(0, 5) // "text"... deletes "base "
	if err != nil {
		t.Fatal(err)
	}
	pumpMsg(t, srv, m1, c2)
	if c1.Text() != "text" {
		t.Fatalf("after delete: %q", c1.Text())
	}
	mu, err := c1.Undo()
	if err != nil {
		t.Fatal(err)
	}
	pumpMsg(t, srv, mu, c2)
	if c1.Text() != "base text" || c2.Text() != "base text" {
		t.Fatalf("undo of delete: %q / %q", c1.Text(), c2.Text())
	}
}

func TestUndoEnablingDisablesCompaction(t *testing.T) {
	c := NewClient(1, "", WithClientCompaction(4), WithClientUndo())
	if c.compactEvery != 0 {
		t.Fatal("undo must disable compaction")
	}
}
