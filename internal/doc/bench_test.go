package doc

import (
	"math/rand"
	"strings"
	"testing"
)

// benchEdits applies mixed random edits to b. The document size is held in
// a steady-state band so per-op cost does not depend on b.N (a growing
// working set would make the benchmark framework's adaptive iteration count
// meaningless).
func benchEdits(bench *testing.B, buf Buffer, clustered bool) {
	r := rand.New(rand.NewSource(7))
	base := buf.Len()
	lo, hi := base-base/10, base+base/10
	cursor := base / 2
	bench.ResetTimer()
	for i := 0; i < bench.N; i++ {
		n := buf.Len()
		pos := 0
		if clustered {
			pos = cursor + r.Intn(5) - 2
			if pos < 0 {
				pos = 0
			}
			if pos > n {
				pos = n
			}
		} else if n > 0 {
			pos = r.Intn(n + 1)
		}
		insert := n == 0 || r.Intn(2) == 0
		if n <= lo {
			insert = true
		} else if n >= hi {
			insert = false
		}
		if insert {
			if err := buf.Insert(pos, "ab"); err != nil {
				bench.Fatal(err)
			}
			cursor = pos + 2
		} else {
			if pos >= n-1 {
				pos = n - 2
			}
			if err := buf.Delete(pos, 2); err != nil {
				bench.Fatal(err)
			}
			cursor = pos
		}
	}
}

func seedText() string { return strings.Repeat("the quick brown fox ", 5000) } // 100k runes

func BenchmarkRopeRandomEdits(b *testing.B)      { benchEdits(b, NewRope(seedText()), false) }
func BenchmarkGapRandomEdits(b *testing.B)       { benchEdits(b, NewGapBuffer(seedText()), false) }
func BenchmarkSimpleRandomEdits(b *testing.B)    { benchEdits(b, NewSimple(seedText()), false) }
func BenchmarkRopeClusteredEdits(b *testing.B)   { benchEdits(b, NewRope(seedText()), true) }
func BenchmarkGapClusteredEdits(b *testing.B)    { benchEdits(b, NewGapBuffer(seedText()), true) }
func BenchmarkSimpleClusteredEdits(b *testing.B) { benchEdits(b, NewSimple(seedText()), true) }

func BenchmarkRopeSlice(b *testing.B) {
	rope := NewRope(seedText())
	n := rope.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rope.Slice(n/3, n/3+100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRopeString(b *testing.B) {
	rope := NewRope(seedText())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(rope.String()) == 0 {
			b.Fatal("empty")
		}
	}
}
