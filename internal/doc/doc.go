// Package doc provides replicated-document storage for the group editor
// (paper §2: every collaborating site and the notifier keep a full copy of
// the shared document). Three interchangeable implementations are provided:
//
//   - Rope: a balanced rope, O(log n) insert/delete, the default for large
//     documents;
//   - GapBuffer: a gap buffer, amortized O(1) for clustered edits, the
//     classic single-user-editor structure;
//   - Simple: a plain rune slice, the obviously-correct reference used for
//     differential testing and small documents.
//
// All positions and lengths are rune offsets, matching package op.
package doc

import (
	"errors"
	"fmt"

	"repro/internal/op"
)

// ErrRange indicates an out-of-bounds position or length.
var ErrRange = errors.New("doc: index out of range")

// Buffer is an editable text document addressed by rune offsets.
type Buffer interface {
	// Len returns the document length in runes.
	Len() int
	// Insert places s so its first rune lands at rune index pos.
	Insert(pos int, s string) error
	// Delete removes n runes starting at rune index pos.
	Delete(pos, n int) error
	// Slice returns the text in [i, j) as a string.
	Slice(i, j int) (string, error)
	// String returns the whole document.
	String() string
}

// Apply applies a traversal operation to a buffer in place. The operation's
// base length must equal the buffer length.
func Apply(b Buffer, o *op.Op) error {
	if b.Len() != o.BaseLen() {
		return fmt.Errorf("doc: apply op with base %d to %d-rune buffer: %w",
			o.BaseLen(), b.Len(), op.ErrLengthMismatch)
	}
	pos := 0
	for _, c := range o.Comps() {
		switch c.Kind {
		case op.KRetain:
			pos += c.N
		case op.KInsert:
			if err := b.Insert(pos, c.S); err != nil {
				return err
			}
			pos += c.N
		case op.KDelete:
			if err := b.Delete(pos, c.N); err != nil {
				return err
			}
		}
	}
	return nil
}

// Simple is the reference Buffer: a plain rune slice. It is the ground truth
// in differential tests and perfectly adequate for small documents.
type Simple struct {
	runes []rune
}

// NewSimple returns a Simple buffer initialized with s.
func NewSimple(s string) *Simple { return &Simple{runes: []rune(s)} }

// Len implements Buffer.
func (b *Simple) Len() int { return len(b.runes) }

// Insert implements Buffer.
func (b *Simple) Insert(pos int, s string) error {
	if pos < 0 || pos > len(b.runes) {
		return fmt.Errorf("insert at %d of %d: %w", pos, len(b.runes), ErrRange)
	}
	ins := []rune(s)
	b.runes = append(b.runes, make([]rune, len(ins))...)
	copy(b.runes[pos+len(ins):], b.runes[pos:])
	copy(b.runes[pos:], ins)
	return nil
}

// Delete implements Buffer.
func (b *Simple) Delete(pos, n int) error {
	if pos < 0 || n < 0 || pos+n > len(b.runes) {
		return fmt.Errorf("delete [%d,%d) of %d: %w", pos, pos+n, len(b.runes), ErrRange)
	}
	b.runes = append(b.runes[:pos], b.runes[pos+n:]...)
	return nil
}

// Slice implements Buffer.
func (b *Simple) Slice(i, j int) (string, error) {
	if i < 0 || j < i || j > len(b.runes) {
		return "", fmt.Errorf("slice [%d,%d) of %d: %w", i, j, len(b.runes), ErrRange)
	}
	return string(b.runes[i:j]), nil
}

// String implements Buffer.
func (b *Simple) String() string { return string(b.runes) }
