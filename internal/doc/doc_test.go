package doc

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/op"
)

// buffers returns one of each implementation, initialized with s.
func buffers(s string) map[string]Buffer {
	return map[string]Buffer{
		"simple": NewSimple(s),
		"rope":   NewRope(s),
		"gap":    NewGapBuffer(s),
	}
}

func TestEmptyBuffers(t *testing.T) {
	for name, b := range buffers("") {
		if b.Len() != 0 || b.String() != "" {
			t.Fatalf("%s: empty buffer: len %d, %q", name, b.Len(), b.String())
		}
		if err := b.Insert(0, "hello"); err != nil {
			t.Fatalf("%s: insert into empty: %v", name, err)
		}
		if b.String() != "hello" {
			t.Fatalf("%s: got %q", name, b.String())
		}
	}
}

func TestBasicEditing(t *testing.T) {
	for name, b := range buffers("ABCDE") {
		if err := b.Insert(1, "12"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.String() != "A12BCDE" {
			t.Fatalf("%s: after insert: %q", name, b.String())
		}
		if err := b.Delete(4, 3); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.String() != "A12B" {
			t.Fatalf("%s: after delete: %q (the paper's intention-preserved result)", name, b.String())
		}
	}
}

func TestMultibyte(t *testing.T) {
	for name, b := range buffers("日本") {
		if err := b.Insert(1, "のに"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.String() != "日のに本" {
			t.Fatalf("%s: %q", name, b.String())
		}
		if b.Len() != 4 {
			t.Fatalf("%s: rune len %d", name, b.Len())
		}
		if err := b.Delete(1, 2); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.String() != "日本" {
			t.Fatalf("%s: %q", name, b.String())
		}
	}
}

func TestSlice(t *testing.T) {
	for name, b := range buffers("hello world") {
		s, err := b.Slice(6, 11)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s != "world" {
			t.Fatalf("%s: slice got %q", name, s)
		}
		if s, err = b.Slice(3, 3); err != nil || s != "" {
			t.Fatalf("%s: empty slice: %q, %v", name, s, err)
		}
	}
}

func TestRangeErrors(t *testing.T) {
	for name, b := range buffers("abc") {
		if err := b.Insert(4, "x"); !errors.Is(err, ErrRange) {
			t.Fatalf("%s: insert past end: %v", name, err)
		}
		if err := b.Insert(-1, "x"); !errors.Is(err, ErrRange) {
			t.Fatalf("%s: negative insert: %v", name, err)
		}
		if err := b.Delete(2, 2); !errors.Is(err, ErrRange) {
			t.Fatalf("%s: delete past end: %v", name, err)
		}
		if err := b.Delete(0, -1); !errors.Is(err, ErrRange) {
			t.Fatalf("%s: negative delete: %v", name, err)
		}
		if _, err := b.Slice(2, 1); !errors.Is(err, ErrRange) {
			t.Fatalf("%s: inverted slice: %v", name, err)
		}
		if _, err := b.Slice(0, 4); !errors.Is(err, ErrRange) {
			t.Fatalf("%s: slice past end: %v", name, err)
		}
		if b.String() != "abc" {
			t.Fatalf("%s: failed ops must not mutate: %q", name, b.String())
		}
	}
}

// TestDifferentialRandomEdits drives all three implementations with the same
// random edit stream and demands identical contents at every step.
func TestDifferentialRandomEdits(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := "abcXYZ 日本éü"
	ref := NewSimple("")
	rope := NewRope("")
	gap := NewGapBuffer("")
	for i := 0; i < 4000; i++ {
		n := ref.Len()
		if n == 0 || r.Intn(3) != 0 {
			pos := 0
			if n > 0 {
				pos = r.Intn(n + 1)
			}
			var sb strings.Builder
			for k := 0; k < 1+r.Intn(6); k++ {
				rs := []rune(alphabet)
				sb.WriteRune(rs[r.Intn(len(rs))])
			}
			s := sb.String()
			for name, b := range map[string]Buffer{"ref": ref, "rope": rope, "gap": gap} {
				if err := b.Insert(pos, s); err != nil {
					t.Fatalf("iter %d: %s insert: %v", i, name, err)
				}
			}
		} else {
			pos := r.Intn(n)
			del := 1 + r.Intn(min(4, n-pos))
			for name, b := range map[string]Buffer{"ref": ref, "rope": rope, "gap": gap} {
				if err := b.Delete(pos, del); err != nil {
					t.Fatalf("iter %d: %s delete: %v", i, name, err)
				}
			}
		}
		if i%97 == 0 {
			want := ref.String()
			if rope.String() != want {
				t.Fatalf("iter %d: rope diverged", i)
			}
			if gap.String() != want {
				t.Fatalf("iter %d: gap diverged", i)
			}
		}
	}
	want := ref.String()
	if rope.String() != want || gap.String() != want {
		t.Fatal("final states diverged")
	}
	// Random slices must agree too.
	for i := 0; i < 200; i++ {
		a := r.Intn(ref.Len() + 1)
		b := a + r.Intn(ref.Len()-a+1)
		s1, _ := ref.Slice(a, b)
		s2, _ := rope.Slice(a, b)
		s3, _ := gap.Slice(a, b)
		if s1 != s2 || s1 != s3 {
			t.Fatalf("slice [%d,%d) disagreement", a, b)
		}
	}
}

func TestRopeStaysBalanced(t *testing.T) {
	r := NewRope("")
	// Pathological pattern: always insert at the front.
	for i := 0; i < 20000; i++ {
		if err := r.Insert(0, "ab"); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 40000 {
		t.Fatalf("len %d", r.Len())
	}
	if d := r.Depth(); d > 40 {
		t.Fatalf("rope depth %d after 20k front inserts — rebalancing broken", d)
	}
}

func TestRopeLargeInit(t *testing.T) {
	s := strings.Repeat("0123456789", 2000) // 20k runes, forces multi-leaf init
	r := NewRope(s)
	if r.String() != s {
		t.Fatal("large init mismatch")
	}
	got, err := r.Slice(9995, 10005)
	if err != nil {
		t.Fatal(err)
	}
	if got != "5678901234" {
		t.Fatalf("mid slice: %q", got)
	}
}

func TestGapBufferGapMovement(t *testing.T) {
	g := NewGapBuffer("abcdef")
	// Force the gap back and forth.
	if err := g.Insert(6, "X"); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(0, "Y"); err != nil {
		t.Fatal(err)
	}
	if err := g.Delete(3, 2); err != nil {
		t.Fatal(err)
	}
	if g.String() != "Yabef"+"X" {
		t.Fatalf("got %q", g.String())
	}
}

func TestApplyOp(t *testing.T) {
	o := op.New().Retain(1).Insert("12").Retain(1).Delete(3)
	for name, b := range buffers("ABCDE") {
		if err := Apply(b, o); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.String() != "A12B" {
			t.Fatalf("%s: apply op: %q", name, b.String())
		}
	}
}

func TestApplyOpLengthMismatch(t *testing.T) {
	o := op.New().Retain(10)
	b := NewSimple("abc")
	if err := Apply(b, o); !errors.Is(err, op.ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

// TestApplyOpDifferential: applying a random op via doc.Apply equals
// op.Apply on the raw runes, for every buffer implementation.
func TestApplyOpDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for i := 0; i < 800; i++ {
		base := randomText(r, r.Intn(60))
		o := randomOpFor(r, base)
		want, err := o.ApplyString(base)
		if err != nil {
			t.Fatal(err)
		}
		for name, b := range buffers(base) {
			if err := Apply(b, o); err != nil {
				t.Fatalf("iter %d: %s: %v", i, name, err)
			}
			if b.String() != want {
				t.Fatalf("iter %d: %s: got %q want %q", i, name, b.String(), want)
			}
		}
	}
}

func randomText(r *rand.Rand, n int) string {
	alphabet := []rune("abcdefgh 123日本")
	rs := make([]rune, n)
	for i := range rs {
		rs[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(rs)
}

func randomOpFor(r *rand.Rand, base string) *op.Op {
	n := len([]rune(base))
	o := op.New()
	pos := 0
	for pos < n {
		step := 1 + r.Intn(5)
		if step > n-pos {
			step = n - pos
		}
		switch r.Intn(3) {
		case 0:
			o.Retain(step)
			pos += step
		case 1:
			o.Insert(randomText(r, 1+r.Intn(4)))
		default:
			o.Delete(step)
			pos += step
		}
	}
	return o
}
