package doc

import "fmt"

// GapBuffer is a Buffer backed by a gap buffer: a contiguous rune array with
// a movable hole at the edit point. Edits clustered around one position — the
// dominant pattern for a human typist (paper §2: high responsiveness for
// local operations) — cost amortized O(1); moving the gap costs O(distance).
type GapBuffer struct {
	buf      []rune
	gapStart int
	gapEnd   int // gap occupies buf[gapStart:gapEnd]
}

// NewGapBuffer returns a GapBuffer initialized with s.
func NewGapBuffer(s string) *GapBuffer {
	rs := []rune(s)
	const initialGap = 64
	buf := make([]rune, len(rs)+initialGap)
	copy(buf, rs)
	return &GapBuffer{buf: buf, gapStart: len(rs), gapEnd: len(buf)}
}

// Len implements Buffer.
func (g *GapBuffer) Len() int { return len(g.buf) - (g.gapEnd - g.gapStart) }

func (g *GapBuffer) gapLen() int { return g.gapEnd - g.gapStart }

// moveGap relocates the gap so it starts at rune index pos.
func (g *GapBuffer) moveGap(pos int) {
	switch {
	case pos < g.gapStart:
		n := g.gapStart - pos
		copy(g.buf[g.gapEnd-n:g.gapEnd], g.buf[pos:g.gapStart])
		g.gapStart = pos
		g.gapEnd -= n
	case pos > g.gapStart:
		n := pos - g.gapStart
		copy(g.buf[g.gapStart:], g.buf[g.gapEnd:g.gapEnd+n])
		g.gapStart += n
		g.gapEnd += n
	}
}

// grow enlarges the gap to at least need free runes.
func (g *GapBuffer) grow(need int) {
	if g.gapLen() >= need {
		return
	}
	newCap := len(g.buf)*2 + need
	nb := make([]rune, newCap)
	copy(nb, g.buf[:g.gapStart])
	tail := g.buf[g.gapEnd:]
	copy(nb[newCap-len(tail):], tail)
	g.gapEnd = newCap - len(tail)
	g.buf = nb
}

// Insert implements Buffer.
func (g *GapBuffer) Insert(pos int, s string) error {
	if pos < 0 || pos > g.Len() {
		return fmt.Errorf("gapbuffer insert at %d of %d: %w", pos, g.Len(), ErrRange)
	}
	rs := []rune(s)
	g.grow(len(rs))
	g.moveGap(pos)
	copy(g.buf[g.gapStart:], rs)
	g.gapStart += len(rs)
	return nil
}

// Delete implements Buffer.
func (g *GapBuffer) Delete(pos, n int) error {
	if pos < 0 || n < 0 || pos+n > g.Len() {
		return fmt.Errorf("gapbuffer delete [%d,%d) of %d: %w", pos, pos+n, g.Len(), ErrRange)
	}
	g.moveGap(pos)
	g.gapEnd += n
	return nil
}

// Slice implements Buffer.
func (g *GapBuffer) Slice(i, j int) (string, error) {
	if i < 0 || j < i || j > g.Len() {
		return "", fmt.Errorf("gapbuffer slice [%d,%d) of %d: %w", i, j, g.Len(), ErrRange)
	}
	out := make([]rune, 0, j-i)
	for p := i; p < j; p++ {
		idx := p
		if idx >= g.gapStart {
			idx += g.gapLen()
		}
		out = append(out, g.buf[idx])
	}
	return string(out), nil
}

// String implements Buffer.
func (g *GapBuffer) String() string {
	s, _ := g.Slice(0, g.Len())
	return s
}
