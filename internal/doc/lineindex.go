package doc

import (
	"fmt"

	"repro/internal/op"
)

// LineIndex maps rune offsets to (line, column) positions and back, and is
// maintained *incrementally* through operations — an editor front-end keeps
// one alongside its replica so it never rescans the document after an edit.
// Lines and columns are 0-based; a line ends at a '\n' (which belongs to the
// line it terminates).
type LineIndex struct {
	// starts holds the rune offset of each line's first rune; starts[0] is
	// always 0 (even for an empty document, which has one empty line).
	starts []int
	length int
}

// NewLineIndex builds the index for text.
func NewLineIndex(text string) *LineIndex {
	ix := &LineIndex{starts: []int{0}}
	for _, r := range text {
		ix.length++
		if r == '\n' {
			ix.starts = append(ix.starts, ix.length)
		}
	}
	return ix
}

// Len returns the indexed document length in runes.
func (ix *LineIndex) Len() int { return ix.length }

// Lines returns the number of lines (at least 1).
func (ix *LineIndex) Lines() int { return len(ix.starts) }

// LineCol converts a rune offset (0..Len) to a (line, column) pair.
func (ix *LineIndex) LineCol(offset int) (line, col int, err error) {
	if offset < 0 || offset > ix.length {
		return 0, 0, fmt.Errorf("lineindex: offset %d of %d: %w", offset, ix.length, ErrRange)
	}
	// Binary search the greatest start <= offset.
	lo, hi := 0, len(ix.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ix.starts[mid] <= offset {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, offset - ix.starts[lo], nil
}

// Offset converts a (line, column) pair to a rune offset. The column may
// address the position just past the line's last rune.
func (ix *LineIndex) Offset(line, col int) (int, error) {
	if line < 0 || line >= len(ix.starts) || col < 0 {
		return 0, fmt.Errorf("lineindex: line %d col %d: %w", line, col, ErrRange)
	}
	end := ix.length
	if line+1 < len(ix.starts) {
		end = ix.starts[line+1] - 1 // before the terminating '\n'
	}
	off := ix.starts[line] + col
	if off > end {
		return 0, fmt.Errorf("lineindex: line %d col %d past line end %d: %w",
			line, col, end-ix.starts[line], ErrRange)
	}
	return off, nil
}

// Apply updates the index through an operation (the same op applied to the
// document), in O(lines + op components).
func (ix *LineIndex) Apply(o *op.Op) error {
	if o.BaseLen() != ix.length {
		return fmt.Errorf("lineindex: op base %d, index %d: %w", o.BaseLen(), ix.length, op.ErrLengthMismatch)
	}
	newStarts := []int{0}
	oldPos := 0 // position in the old document
	newPos := 0 // position in the new document
	si := 1     // next old start to consider (starts[0] is implicit)

	for _, c := range o.Comps() {
		switch c.Kind {
		case op.KRetain:
			// Old starts inside (oldPos, oldPos+N] survive, shifted.
			for si < len(ix.starts) && ix.starts[si] <= oldPos+c.N {
				newStarts = append(newStarts, ix.starts[si]+newPos-oldPos)
				si++
			}
			oldPos += c.N
			newPos += c.N
		case op.KInsert:
			for _, r := range c.S {
				newPos++
				if r == '\n' {
					newStarts = append(newStarts, newPos)
				}
			}
		case op.KDelete:
			// Old starts inside the deleted range vanish.
			for si < len(ix.starts) && ix.starts[si] <= oldPos+c.N {
				si++
			}
			oldPos += c.N
		}
	}
	ix.starts = newStarts
	ix.length = o.TargetLen()
	return nil
}
