package doc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/op"
)

func TestLineIndexBasics(t *testing.T) {
	ix := NewLineIndex("ab\ncd\n\nxyz")
	if ix.Lines() != 4 || ix.Len() != 10 {
		t.Fatalf("lines %d len %d", ix.Lines(), ix.Len())
	}
	cases := []struct{ off, line, col int }{
		{0, 0, 0}, {2, 0, 2}, {3, 1, 0}, {5, 1, 2}, {6, 2, 0}, {7, 3, 0}, {10, 3, 3},
	}
	for _, c := range cases {
		line, col, err := ix.LineCol(c.off)
		if err != nil || line != c.line || col != c.col {
			t.Fatalf("LineCol(%d) = (%d,%d,%v), want (%d,%d)", c.off, line, col, err, c.line, c.col)
		}
		back, err := ix.Offset(c.line, c.col)
		if err != nil || back != c.off {
			t.Fatalf("Offset(%d,%d) = %d,%v want %d", c.line, c.col, back, err, c.off)
		}
	}
}

func TestLineIndexEmpty(t *testing.T) {
	ix := NewLineIndex("")
	if ix.Lines() != 1 || ix.Len() != 0 {
		t.Fatalf("empty: %d lines, %d len", ix.Lines(), ix.Len())
	}
	if l, c, err := ix.LineCol(0); err != nil || l != 0 || c != 0 {
		t.Fatalf("LineCol(0): %d %d %v", l, c, err)
	}
}

func TestLineIndexErrors(t *testing.T) {
	ix := NewLineIndex("ab\ncd")
	if _, _, err := ix.LineCol(6); !errors.Is(err, ErrRange) {
		t.Fatalf("offset past end: %v", err)
	}
	if _, err := ix.Offset(5, 0); !errors.Is(err, ErrRange) {
		t.Fatalf("bad line: %v", err)
	}
	if _, err := ix.Offset(0, 3); !errors.Is(err, ErrRange) {
		t.Fatalf("col past line end (into the newline): %v", err)
	}
	if _, err := ix.Offset(1, 2); err != nil {
		t.Fatalf("col at end of last line must be fine: %v", err)
	}
	bad := op.New().Retain(99)
	if err := ix.Apply(bad); !errors.Is(err, op.ErrLengthMismatch) {
		t.Fatalf("length mismatch: %v", err)
	}
}

func TestLineIndexApplyCases(t *testing.T) {
	cases := []struct {
		name  string
		text  string
		build func(n int) *op.Op
	}{
		{"insert-newline-mid", "ab\ncd", func(n int) *op.Op {
			return op.New().Retain(1).Insert("X\nY").Retain(n - 1)
		}},
		{"delete-newline", "ab\ncd", func(n int) *op.Op {
			return op.New().Retain(2).Delete(1).Retain(n - 3)
		}},
		{"delete-across-lines", "ab\ncd\nef", func(n int) *op.Op {
			return op.New().Retain(1).Delete(5).Retain(n - 6)
		}},
		{"append-newline", "ab", func(n int) *op.Op {
			return op.New().Retain(n).Insert("\n")
		}},
		{"prepend-newline", "ab", func(n int) *op.Op {
			return op.New().Insert("\n").Retain(n)
		}},
		{"delete-all", "a\nb\nc", func(n int) *op.Op {
			return op.New().Delete(n)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := NewLineIndex(tc.text)
			o := tc.build(len([]rune(tc.text)))
			if err := ix.Apply(o); err != nil {
				t.Fatal(err)
			}
			after, err := o.ApplyString(tc.text)
			if err != nil {
				t.Fatal(err)
			}
			want := NewLineIndex(after)
			if ix.Lines() != want.Lines() || ix.Len() != want.Len() {
				t.Fatalf("incremental (%d lines, %d len) vs rebuilt (%d, %d) for %q",
					ix.Lines(), ix.Len(), want.Lines(), want.Len(), after)
			}
			for off := 0; off <= want.Len(); off++ {
				l1, c1, _ := ix.LineCol(off)
				l2, c2, _ := want.LineCol(off)
				if l1 != l2 || c1 != c2 {
					t.Fatalf("offset %d: (%d,%d) vs (%d,%d) in %q", off, l1, c1, l2, c2, after)
				}
			}
		})
	}
}

// TestLineIndexDifferentialRandom: long random edit sequences; the
// incrementally maintained index must always equal a from-scratch rebuild.
func TestLineIndexDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	alphabet := []rune("ab\n\ncd\n")
	text := "seed\ntext\n"
	ix := NewLineIndex(text)
	for i := 0; i < 1500; i++ {
		n := len([]rune(text))
		o := op.New()
		pos := 0
		for pos < n {
			step := 1 + r.Intn(4)
			if step > n-pos {
				step = n - pos
			}
			switch r.Intn(3) {
			case 0:
				o.Retain(step)
				pos += step
			case 1:
				rs := make([]rune, 1+r.Intn(3))
				for k := range rs {
					rs[k] = alphabet[r.Intn(len(alphabet))]
				}
				o.Insert(string(rs))
			default:
				o.Delete(step)
				pos += step
			}
		}
		if err := ix.Apply(o); err != nil {
			t.Fatal(err)
		}
		var err error
		text, err = o.ApplyString(text)
		if err != nil {
			t.Fatal(err)
		}
		want := NewLineIndex(text)
		if ix.Lines() != want.Lines() {
			t.Fatalf("iter %d: %d lines vs %d for %q", i, ix.Lines(), want.Lines(), text)
		}
		if i%50 == 0 {
			for off := 0; off <= want.Len(); off++ {
				l1, c1, _ := ix.LineCol(off)
				l2, c2, _ := want.LineCol(off)
				if l1 != l2 || c1 != c2 {
					t.Fatalf("iter %d offset %d: (%d,%d) vs (%d,%d)", i, off, l1, c1, l2, c2)
				}
			}
		}
	}
}
