package doc

import "fmt"

// PieceTable is a Buffer backed by a piece table: the classic editor
// structure (Oberon, early MS Word) keeping the original text immutable and
// collecting insertions in an append-only buffer, with the document
// described by a list of (source, offset, length) pieces. Edits never move
// text, only split and splice pieces, so memory churn is minimal and any
// historical state remains cheap to reconstruct.
//
// This implementation keeps the piece list as a slice; edits cost O(pieces)
// for the splice. For the editing patterns of a collaborative session
// (bounded piece counts between snapshots) this is perfectly adequate and
// pleasantly simple; the Rope is the choice for very long-lived documents.
type PieceTable struct {
	original []rune
	added    []rune
	pieces   []piece
	length   int
}

// piece references a run of runes in one of the two buffers.
type piece struct {
	fromAdded bool
	off       int
	n         int
}

// NewPieceTable returns a PieceTable initialized with s.
func NewPieceTable(s string) *PieceTable {
	pt := &PieceTable{original: []rune(s)}
	if len(pt.original) > 0 {
		pt.pieces = []piece{{off: 0, n: len(pt.original)}}
		pt.length = len(pt.original)
	}
	return pt
}

// Len implements Buffer.
func (pt *PieceTable) Len() int { return pt.length }

// Pieces reports the current piece count (for tests and diagnostics).
func (pt *PieceTable) Pieces() int { return len(pt.pieces) }

// locate finds the piece containing rune offset pos, returning its index
// and the offset within it. pos == length returns (len(pieces), 0).
func (pt *PieceTable) locate(pos int) (int, int) {
	for i := range pt.pieces {
		if pos < pt.pieces[i].n {
			return i, pos
		}
		pos -= pt.pieces[i].n
	}
	return len(pt.pieces), 0
}

// Insert implements Buffer.
func (pt *PieceTable) Insert(pos int, s string) error {
	if pos < 0 || pos > pt.length {
		return fmt.Errorf("piecetable insert at %d of %d: %w", pos, pt.length, ErrRange)
	}
	rs := []rune(s)
	if len(rs) == 0 {
		return nil
	}
	newPiece := piece{fromAdded: true, off: len(pt.added), n: len(rs)}
	pt.added = append(pt.added, rs...)

	i, within := pt.locate(pos)
	switch {
	case within == 0:
		// Fast path: append to the preceding piece when it ends exactly at
		// the tail of the added buffer (sequential typing).
		if i > 0 {
			prev := &pt.pieces[i-1]
			if prev.fromAdded && prev.off+prev.n == newPiece.off {
				prev.n += newPiece.n
				pt.length += newPiece.n
				return nil
			}
		}
		pt.pieces = append(pt.pieces, piece{})
		copy(pt.pieces[i+1:], pt.pieces[i:])
		pt.pieces[i] = newPiece
	default:
		// Split pieces[i] around the insertion point.
		left := pt.pieces[i]
		right := left
		leftN := within
		left.n = leftN
		right.off += leftN
		right.n -= leftN
		pt.pieces = append(pt.pieces, piece{}, piece{})
		copy(pt.pieces[i+3:], pt.pieces[i+1:])
		pt.pieces[i] = left
		pt.pieces[i+1] = newPiece
		pt.pieces[i+2] = right
	}
	pt.length += newPiece.n
	return nil
}

// Delete implements Buffer.
func (pt *PieceTable) Delete(pos, n int) error {
	if pos < 0 || n < 0 || pos+n > pt.length {
		return fmt.Errorf("piecetable delete [%d,%d) of %d: %w", pos, pos+n, pt.length, ErrRange)
	}
	if n == 0 {
		return nil
	}
	out := pt.pieces[:0:0]
	remainingSkip := pos
	remainingDel := n
	for _, p := range pt.pieces {
		if remainingSkip >= p.n {
			out = append(out, p)
			remainingSkip -= p.n
			continue
		}
		// Keep the prefix before the deletion.
		if remainingSkip > 0 {
			out = append(out, piece{fromAdded: p.fromAdded, off: p.off, n: remainingSkip})
			p.off += remainingSkip
			p.n -= remainingSkip
			remainingSkip = 0
		}
		// Swallow deleted runes.
		if remainingDel > 0 {
			take := min(remainingDel, p.n)
			p.off += take
			p.n -= take
			remainingDel -= take
		}
		if p.n > 0 {
			out = append(out, p)
		}
	}
	pt.pieces = out
	pt.length -= n
	return nil
}

// Slice implements Buffer.
func (pt *PieceTable) Slice(i, j int) (string, error) {
	if i < 0 || j < i || j > pt.length {
		return "", fmt.Errorf("piecetable slice [%d,%d) of %d: %w", i, j, pt.length, ErrRange)
	}
	out := make([]rune, 0, j-i)
	pos := 0
	for _, p := range pt.pieces {
		if pos >= j {
			break
		}
		end := pos + p.n
		if end <= i {
			pos = end
			continue
		}
		lo := max(i, pos) - pos
		hi := min(j, end) - pos
		src := pt.original
		if p.fromAdded {
			src = pt.added
		}
		out = append(out, src[p.off+lo:p.off+hi]...)
		pos = end
	}
	return string(out), nil
}

// String implements Buffer.
func (pt *PieceTable) String() string {
	s, _ := pt.Slice(0, pt.length)
	return s
}

// Compact rebuilds the table into a single original piece — the periodic
// snapshot real piece-table editors take once the piece list grows long,
// trading one O(n) pass for O(1) pieces.
func (pt *PieceTable) Compact() {
	flat := []rune(pt.String())
	pt.original = flat
	pt.added = nil
	pt.pieces = nil
	if len(flat) > 0 {
		pt.pieces = []piece{{off: 0, n: len(flat)}}
	}
}
