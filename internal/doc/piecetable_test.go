package doc

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPieceTableBasics(t *testing.T) {
	pt := NewPieceTable("ABCDE")
	if pt.Len() != 5 || pt.String() != "ABCDE" {
		t.Fatalf("init: %d %q", pt.Len(), pt.String())
	}
	if err := pt.Insert(1, "12"); err != nil {
		t.Fatal(err)
	}
	if pt.String() != "A12BCDE" {
		t.Fatalf("insert: %q", pt.String())
	}
	if err := pt.Delete(4, 3); err != nil {
		t.Fatal(err)
	}
	if pt.String() != "A12B" {
		t.Fatalf("delete: %q", pt.String())
	}
}

func TestPieceTableEmpty(t *testing.T) {
	pt := NewPieceTable("")
	if pt.Len() != 0 || pt.Pieces() != 0 {
		t.Fatalf("empty: %d %d", pt.Len(), pt.Pieces())
	}
	if err := pt.Insert(0, "x"); err != nil {
		t.Fatal(err)
	}
	if pt.String() != "x" {
		t.Fatalf("%q", pt.String())
	}
}

func TestPieceTableSequentialTypingCoalesces(t *testing.T) {
	pt := NewPieceTable("")
	for i := 0; i < 100; i++ {
		if err := pt.Insert(pt.Len(), "a"); err != nil {
			t.Fatal(err)
		}
	}
	// Sequential appends into the added buffer must coalesce into one
	// piece, not one hundred.
	if pt.Pieces() != 1 {
		t.Fatalf("sequential typing produced %d pieces", pt.Pieces())
	}
	if pt.Len() != 100 {
		t.Fatalf("len %d", pt.Len())
	}
}

func TestPieceTableRangeErrors(t *testing.T) {
	pt := NewPieceTable("abc")
	if err := pt.Insert(4, "x"); !errors.Is(err, ErrRange) {
		t.Fatalf("insert: %v", err)
	}
	if err := pt.Delete(1, 5); !errors.Is(err, ErrRange) {
		t.Fatalf("delete: %v", err)
	}
	if _, err := pt.Slice(2, 1); !errors.Is(err, ErrRange) {
		t.Fatalf("slice: %v", err)
	}
}

func TestPieceTableSlice(t *testing.T) {
	pt := NewPieceTable("hello world")
	if err := pt.Insert(5, " brave"); err != nil {
		t.Fatal(err)
	}
	// "hello brave world": slice across piece boundaries.
	got, err := pt.Slice(3, 14)
	if err != nil {
		t.Fatal(err)
	}
	if got != "lo brave wo" {
		t.Fatalf("slice: %q", got)
	}
}

func TestPieceTableMultibyte(t *testing.T) {
	pt := NewPieceTable("日本")
	if err := pt.Insert(1, "のに"); err != nil {
		t.Fatal(err)
	}
	if pt.String() != "日のに本" || pt.Len() != 4 {
		t.Fatalf("%q %d", pt.String(), pt.Len())
	}
}

// TestPieceTableDifferential drives it against the reference buffer.
func TestPieceTableDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	ref := NewSimple("seed")
	pt := NewPieceTable("seed")
	for i := 0; i < 4000; i++ {
		n := ref.Len()
		if n == 0 || r.Intn(3) != 0 {
			pos := 0
			if n > 0 {
				pos = r.Intn(n + 1)
			}
			s := strings.Repeat(string(rune('a'+r.Intn(26))), 1+r.Intn(3))
			if err := ref.Insert(pos, s); err != nil {
				t.Fatal(err)
			}
			if err := pt.Insert(pos, s); err != nil {
				t.Fatal(err)
			}
		} else {
			pos := r.Intn(n)
			del := 1 + r.Intn(min(4, n-pos))
			if err := ref.Delete(pos, del); err != nil {
				t.Fatal(err)
			}
			if err := pt.Delete(pos, del); err != nil {
				t.Fatal(err)
			}
		}
		if i%131 == 0 && ref.String() != pt.String() {
			t.Fatalf("iter %d: diverged:\nref %q\npt  %q", i, ref.String(), pt.String())
		}
	}
	if ref.String() != pt.String() {
		t.Fatal("final divergence")
	}
}

// TestPieceTableQuick reuses the package's edit-script generator.
func TestPieceTableQuick(t *testing.T) {
	f := func(s editScript) bool {
		ref := NewSimple(s.Initial)
		pt := NewPieceTable(s.Initial)
		if err := applyScript(ref, s); err != nil {
			return false
		}
		if err := applyScript(pt, s); err != nil {
			return false
		}
		return ref.String() == pt.String() && ref.Len() == pt.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestPieceTableWorksAsEngineBuffer plugs it into doc.Apply.
func TestPieceTableWorksAsEngineBuffer(t *testing.T) {
	for name, b := range map[string]Buffer{"pt": NewPieceTable("ABCDE")} {
		if err := b.Insert(1, "12"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Delete(4, 3); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.String() != "A12B" {
			t.Fatalf("%s: %q", name, b.String())
		}
	}
}

// pieceTableWithSnapshots wraps a PieceTable, compacting every snapEvery
// edits like a real piece-table editor, so benchmark cost reaches steady
// state instead of growing with the piece count.
type pieceTableWithSnapshots struct {
	*PieceTable
	edits     int
	snapEvery int
}

func (p *pieceTableWithSnapshots) tick() {
	p.edits++
	if p.edits%p.snapEvery == 0 {
		p.Compact()
	}
}

func (p *pieceTableWithSnapshots) Insert(pos int, s string) error {
	p.tick()
	return p.PieceTable.Insert(pos, s)
}

func (p *pieceTableWithSnapshots) Delete(pos, n int) error {
	p.tick()
	return p.PieceTable.Delete(pos, n)
}

func BenchmarkPieceTableRandomEdits(b *testing.B) {
	benchEdits(b, &pieceTableWithSnapshots{PieceTable: NewPieceTable(seedText()), snapEvery: 2048}, false)
}

func BenchmarkPieceTableClusteredEdits(b *testing.B) {
	benchEdits(b, &pieceTableWithSnapshots{PieceTable: NewPieceTable(seedText()), snapEvery: 2048}, true)
}

func TestPieceTableCompact(t *testing.T) {
	pt := NewPieceTable("hello world")
	if err := pt.Insert(5, " brave"); err != nil {
		t.Fatal(err)
	}
	if err := pt.Delete(0, 6); err != nil {
		t.Fatal(err)
	}
	want := pt.String()
	pieces := pt.Pieces()
	pt.Compact()
	if pt.String() != want || pt.Len() != len([]rune(want)) {
		t.Fatalf("compact changed content: %q vs %q", pt.String(), want)
	}
	if pt.Pieces() != 1 || pieces <= 1 {
		t.Fatalf("compact: %d pieces (was %d)", pt.Pieces(), pieces)
	}
	// Still editable afterwards.
	if err := pt.Insert(0, "!"); err != nil {
		t.Fatal(err)
	}
	if pt.String() != "!"+want {
		t.Fatalf("post-compact edit: %q", pt.String())
	}
	// Compacting an empty table is fine.
	empty := NewPieceTable("")
	empty.Compact()
	if empty.Len() != 0 || empty.Pieces() != 0 {
		t.Fatal("empty compact")
	}
}
