package doc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// editScript is a quick.Generator producing a random sequence of edits.
type editScript struct {
	Initial string
	Edits   []edit
}

type edit struct {
	insert bool
	pos    int // normalized into range at application time
	text   string
	count  int
}

// Generate implements quick.Generator.
func (editScript) Generate(r *rand.Rand, size int) reflect.Value {
	s := editScript{Initial: string(randomTextQ(r, r.Intn(size%30+1)))}
	for i := 0; i < r.Intn(size%50+2); i++ {
		s.Edits = append(s.Edits, edit{
			insert: r.Intn(2) == 0,
			pos:    r.Intn(1 << 16),
			text:   string(randomTextQ(r, 1+r.Intn(5))),
			count:  1 + r.Intn(5),
		})
	}
	return reflect.ValueOf(s)
}

func randomTextQ(r *rand.Rand, n int) []rune {
	alphabet := []rune("abc XYZ0123日本éü")
	rs := make([]rune, n)
	for i := range rs {
		rs[i] = alphabet[r.Intn(len(alphabet))]
	}
	return rs
}

// applyScript normalizes and applies the edit script to a buffer.
func applyScript(b Buffer, s editScript) error {
	for _, e := range s.Edits {
		n := b.Len()
		if e.insert {
			pos := 0
			if n > 0 {
				pos = e.pos % (n + 1)
			}
			if err := b.Insert(pos, e.text); err != nil {
				return err
			}
		} else if n > 0 {
			pos := e.pos % n
			count := e.count
			if pos+count > n {
				count = n - pos
			}
			if err := b.Delete(pos, count); err != nil {
				return err
			}
		}
	}
	return nil
}

// TestQuickRopeEquivalentToSimple: any edit script leaves the rope and the
// reference buffer identical.
func TestQuickRopeEquivalentToSimple(t *testing.T) {
	f := func(s editScript) bool {
		ref := NewSimple(s.Initial)
		rope := NewRope(s.Initial)
		if err := applyScript(ref, s); err != nil {
			return false
		}
		if err := applyScript(rope, s); err != nil {
			return false
		}
		return ref.String() == rope.String() && ref.Len() == rope.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGapBufferEquivalentToSimple.
func TestQuickGapBufferEquivalentToSimple(t *testing.T) {
	f := func(s editScript) bool {
		ref := NewSimple(s.Initial)
		gap := NewGapBuffer(s.Initial)
		if err := applyScript(ref, s); err != nil {
			return false
		}
		if err := applyScript(gap, s); err != nil {
			return false
		}
		return ref.String() == gap.String() && ref.Len() == gap.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
