package doc

import "fmt"

// maxLeaf bounds leaf size: adjacent leaves are merged on concat while their
// combined size stays under it, keeping the tree shallow for big documents
// without wasting memory on tiny ones.
const maxLeaf = 512

// ropeNode is a node of an immutable-ish rope. Leaves hold runes; internal
// nodes cache the total subtree length and height for balancing.
type ropeNode struct {
	left, right *ropeNode // both nil for a leaf
	length      int       // total runes in this subtree
	height      int       // 1 for leaves
	runes       []rune    // leaf payload (nil for internal nodes)
}

func leaf(rs []rune) *ropeNode {
	return &ropeNode{length: len(rs), height: 1, runes: rs}
}

func (n *ropeNode) isLeaf() bool { return n.left == nil }

// concat joins two subtrees, merging small leaves and rebalancing when the
// height invariant degrades.
func concat(a, b *ropeNode) *ropeNode {
	switch {
	case a == nil || a.length == 0:
		return b
	case b == nil || b.length == 0:
		return a
	}
	if a.isLeaf() && b.isLeaf() && a.length+b.length <= maxLeaf {
		merged := make([]rune, 0, a.length+b.length)
		merged = append(merged, a.runes...)
		merged = append(merged, b.runes...)
		return leaf(merged)
	}
	// Descend toward the nearer edge when one side is a small leaf, so
	// repeated edge insertions (typing at the start or end of a large
	// document) coalesce into the edge leaf instead of stacking one level
	// of height per edit and forcing constant O(n) rebuilds.
	if a.isLeaf() && !b.isLeaf() && a.length <= maxLeaf/2 {
		return node(concat(a, b.left), b.right)
	}
	if b.isLeaf() && !a.isLeaf() && b.length <= maxLeaf/2 {
		return node(a.left, concat(a.right, b))
	}
	return node(a, b)
}

// node builds an internal node over two non-empty subtrees, rebuilding when
// the height invariant degrades.
func node(a, b *ropeNode) *ropeNode {
	n := &ropeNode{
		left:   a,
		right:  b,
		length: a.length + b.length,
		height: max(a.height, b.height) + 1,
	}
	if n.unbalanced() {
		return rebuild(n)
	}
	return n
}

// unbalanced reports whether the subtree is pathologically deep for its size.
func (n *ropeNode) unbalanced() bool {
	// A perfectly balanced tree over k leaves has height ~log2(k)+1; allow
	// generous slack before paying for a rebuild.
	limit := 2
	for size := 1; size < n.length; size <<= 1 {
		limit++
	}
	return n.height > limit+8
}

// rebuild flattens the subtree into leaves and reassembles a balanced tree.
func rebuild(n *ropeNode) *ropeNode {
	var leaves []*ropeNode
	n.collectLeaves(&leaves)
	return buildBalanced(leaves)
}

func (n *ropeNode) collectLeaves(out *[]*ropeNode) {
	if n == nil {
		return
	}
	if n.isLeaf() {
		if n.length > 0 {
			*out = append(*out, n)
		}
		return
	}
	n.left.collectLeaves(out)
	n.right.collectLeaves(out)
}

func buildBalanced(leaves []*ropeNode) *ropeNode {
	switch len(leaves) {
	case 0:
		return leaf(nil)
	case 1:
		return leaves[0]
	}
	mid := len(leaves) / 2
	a := buildBalanced(leaves[:mid])
	b := buildBalanced(leaves[mid:])
	return &ropeNode{
		left:   a,
		right:  b,
		length: a.length + b.length,
		height: max(a.height, b.height) + 1,
	}
}

// tryInsert inserts rs in place when the position lands inside (or at the
// edge of) a leaf with room, updating subtree lengths on the way down, and
// reports whether it did. The structure, heights, and balance of the tree
// are unchanged, so no rebalancing is needed. This is the hot path for
// interactive editing: a keystroke-sized insert touches one leaf and
// allocates at most one amortized slice growth instead of O(depth) fresh
// nodes via split/concat.
//
// In-place mutation is safe because leaf rune slices are never shared
// between trees: every constructor (NewRope, split, concat-merge) copies.
func (n *ropeNode) tryInsert(pos int, rs []rune) bool {
	if n.isLeaf() {
		if n.length+len(rs) > maxLeaf {
			return false
		}
		n.runes = append(n.runes, rs...) // grow, amortized
		copy(n.runes[pos+len(rs):], n.runes[pos:n.length])
		copy(n.runes[pos:], rs)
		n.length = len(n.runes)
		return true
	}
	var ok bool
	if pos <= n.left.length {
		ok = n.left.tryInsert(pos, rs)
		if !ok && pos == n.left.length {
			// Boundary position: the right subtree's edge leaf may have room.
			ok = n.right.tryInsert(0, rs)
		}
	} else {
		ok = n.right.tryInsert(pos-n.left.length, rs)
	}
	if ok {
		n.length += len(rs)
	}
	return ok
}

// tryDelete removes [pos, pos+cnt) in place when the range falls entirely
// within one leaf, updating subtree lengths, and reports whether it did.
// A leaf emptied by the deletion stays in the tree (harmless: empty leaves
// are skipped by concat and contribute nothing to slices).
func (n *ropeNode) tryDelete(pos, cnt int) bool {
	if n.isLeaf() {
		copy(n.runes[pos:], n.runes[pos+cnt:])
		n.runes = n.runes[:n.length-cnt]
		n.length -= cnt
		return true
	}
	var ok bool
	switch {
	case pos >= n.left.length:
		ok = n.right.tryDelete(pos-n.left.length, cnt)
	case pos+cnt <= n.left.length:
		ok = n.left.tryDelete(pos, cnt)
	default:
		return false // spans the subtree boundary; caller falls back to split
	}
	if ok {
		n.length -= cnt
	}
	return ok
}

// split divides the subtree into [0,i) and [i,length).
func split(n *ropeNode, i int) (*ropeNode, *ropeNode) {
	if n == nil {
		return nil, nil
	}
	if n.isLeaf() {
		switch {
		case i <= 0:
			return nil, n
		case i >= n.length:
			return n, nil
		}
		// Copy both halves so the original leaf stays immutable.
		l := append([]rune(nil), n.runes[:i]...)
		r := append([]rune(nil), n.runes[i:]...)
		return leaf(l), leaf(r)
	}
	if i < n.left.length {
		ll, lr := split(n.left, i)
		return ll, concat(lr, n.right)
	}
	rl, rr := split(n.right, i-n.left.length)
	return concat(n.left, rl), rr
}

// Rope is a Buffer backed by a balanced rope: O(log n) insert/delete and
// O(j-i + log n) slicing. Suitable for the large shared documents a
// long-running collaborative session accumulates.
type Rope struct {
	root *ropeNode
}

// NewRope returns a Rope initialized with s.
func NewRope(s string) *Rope {
	rs := []rune(s)
	if len(rs) <= maxLeaf {
		return &Rope{root: leaf(rs)}
	}
	var leaves []*ropeNode
	for len(rs) > 0 {
		n := min(maxLeaf, len(rs))
		leaves = append(leaves, leaf(append([]rune(nil), rs[:n]...)))
		rs = rs[n:]
	}
	return &Rope{root: buildBalanced(leaves)}
}

// Len implements Buffer.
func (r *Rope) Len() int {
	if r.root == nil {
		return 0
	}
	return r.root.length
}

// Insert implements Buffer.
func (r *Rope) Insert(pos int, s string) error {
	if pos < 0 || pos > r.Len() {
		return fmt.Errorf("rope insert at %d of %d: %w", pos, r.Len(), ErrRange)
	}
	if s == "" {
		return nil
	}
	rs := []rune(s)
	if r.root != nil && len(rs) <= maxLeaf/2 && r.root.tryInsert(pos, rs) {
		return nil
	}
	var mid *ropeNode
	if len(rs) <= maxLeaf {
		mid = leaf(rs)
	} else {
		mid = NewRope(s).root
	}
	l, rt := split(r.root, pos)
	r.root = concat(concat(l, mid), rt)
	return nil
}

// Delete implements Buffer.
func (r *Rope) Delete(pos, n int) error {
	if pos < 0 || n < 0 || pos+n > r.Len() {
		return fmt.Errorf("rope delete [%d,%d) of %d: %w", pos, pos+n, r.Len(), ErrRange)
	}
	if n == 0 {
		return nil
	}
	if r.root != nil && r.root.tryDelete(pos, n) {
		return nil
	}
	l, rest := split(r.root, pos)
	_, rt := split(rest, n)
	r.root = concat(l, rt)
	if r.root == nil {
		r.root = leaf(nil)
	}
	return nil
}

// Slice implements Buffer.
func (r *Rope) Slice(i, j int) (string, error) {
	if i < 0 || j < i || j > r.Len() {
		return "", fmt.Errorf("rope slice [%d,%d) of %d: %w", i, j, r.Len(), ErrRange)
	}
	out := make([]rune, 0, j-i)
	r.root.appendRange(&out, i, j)
	return string(out), nil
}

func (n *ropeNode) appendRange(out *[]rune, i, j int) {
	if n == nil || i >= j || i >= n.length {
		return
	}
	if n.isLeaf() {
		lo, hi := max(i, 0), min(j, n.length)
		*out = append(*out, n.runes[lo:hi]...)
		return
	}
	ll := n.left.length
	if i < ll {
		n.left.appendRange(out, i, min(j, ll))
	}
	if j > ll {
		n.right.appendRange(out, max(i-ll, 0), j-ll)
	}
}

// String implements Buffer.
func (r *Rope) String() string {
	s, _ := r.Slice(0, r.Len())
	return s
}

// Depth reports the current tree height; exported for balance tests.
func (r *Rope) Depth() int {
	if r.root == nil {
		return 0
	}
	return r.root.height
}
