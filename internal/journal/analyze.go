package journal

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/causal"
	"repro/internal/core"
)

// Analysis summarizes the causal structure of a journaled session,
// reconstructed offline from the journal alone — the trace-based style of
// causality analysis the paper's introduction attributes to [7,12]. The
// compressed timestamps in the journal are sufficient to rebuild the entire
// happens-before relation of Definition 1: an operation's T1 pins exactly
// which broadcasts its site had executed when it was generated.
type Analysis struct {
	// Records is the number of journal records replayed.
	Records int
	// Ops is the number of client operations.
	Ops int
	// Sites is the number of distinct sites that ever joined.
	Sites int
	// PerSite counts operations per site.
	PerSite map[int]int
	// OrderedPairs and ConcurrentPairs partition all op pairs.
	OrderedPairs    int
	ConcurrentPairs int
	// ConcurrencyDegree is ConcurrentPairs / totalPairs (0 when < 2 ops).
	ConcurrencyDegree float64
	// MaxDepth is the longest causal chain (in ops).
	MaxDepth int
	// FinalDoc is the reconstructed final document.
	FinalDoc string
}

// Analyze replays a journal and reconstructs the causal structure of the
// original (pre-transformation) client operations. Pairwise statistics are
// quadratic in the op count; sessions of up to a few thousand operations
// analyze instantly.
func Analyze(path, initial string) (*Analysis, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close() //lint:allow errdrop: read-only analysis — every Next() is checked, close-after-read carries no information

	srv := core.NewServer(initial, core.WithServerCompaction(0))
	oracle := causal.NewOracle()
	a := &Analysis{PerSite: map[int]int{}}

	// serverOrder is the execution order at site 0 of original op refs and
	// their origin sites.
	type executed struct {
		ref    causal.OpRef
		origin int
	}
	var serverOrder []executed

	// Per-site delivery cursors: how far into serverOrder this site's
	// broadcasts have been delivered (counting only ops from other sites),
	// and the index reached.
	type cursor struct {
		joined      bool
		everJoined  bool
		idx         int // next serverOrder index to consider
		delivered   uint64
		prevDepth   int // depth of the site's previous own op
		maxDelDepth int // max depth among ops delivered to this site
	}
	cursors := map[int]*cursor{}
	depth := map[causal.OpRef]int{}

	getCursor := func(site int) *cursor {
		c, ok := cursors[site]
		if !ok {
			c = &cursor{}
			cursors[site] = c
		}
		return c
	}

	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		a.Records++
		switch rec.Kind {
		case KJoin:
			if _, err := srv.Join(rec.Site); err != nil {
				return nil, fmt.Errorf("journal: analyze join %d: %w", rec.Site, err)
			}
			c := getCursor(rec.Site)
			c.joined = true
			c.everJoined = true
			// T1 counts broadcasts since the (re)join.
			c.delivered = 0
			// The snapshot delivers everything executed so far.
			for ; c.idx < len(serverOrder); c.idx++ {
				e := serverOrder[c.idx]
				if e.origin == rec.Site {
					continue
				}
				oracle.Execute(rec.Site, e.ref)
				if d := depth[e.ref]; d > c.maxDelDepth {
					c.maxDelDepth = d
				}
			}
		case KLeave:
			if err := srv.Leave(rec.Site); err != nil {
				return nil, fmt.Errorf("journal: analyze leave %d: %w", rec.Site, err)
			}
			getCursor(rec.Site).joined = false
		case KClientOp:
			site := rec.Op.From
			c := getCursor(site)
			// Deliver the broadcasts the op's T1 says its site had
			// executed at generation time.
			//lint:allow tscompare: delivery replay — T1 is consumed as a broadcast count here, not as an ordering decision
			for c.delivered < rec.Op.TS.T1 {
				if c.idx >= len(serverOrder) {
					return nil, fmt.Errorf("journal: analyze: site %d claims %d broadcasts, history has %d",
						site, rec.Op.TS.T1, c.delivered)
				}
				e := serverOrder[c.idx]
				c.idx++
				if e.origin == site {
					continue
				}
				c.delivered++
				oracle.Execute(site, e.ref)
				if d := depth[e.ref]; d > c.maxDelDepth {
					c.maxDelDepth = d
				}
			}
			oracle.Generate(site, rec.Op.Ref)
			d := 1 + max(c.prevDepth, c.maxDelDepth)
			depth[rec.Op.Ref] = d
			c.prevDepth = d
			if d > a.MaxDepth {
				a.MaxDepth = d
			}
			a.Ops++
			a.PerSite[site]++
			// Execute at the server (rebuilding the document as we go).
			m := core.ClientMsg{From: site, Op: rec.Op.Op, TS: rec.Op.TS, Ref: rec.Op.Ref}
			if _, _, err := srv.Receive(m); err != nil {
				return nil, fmt.Errorf("journal: analyze op: %w", err)
			}
			serverOrder = append(serverOrder, executed{ref: rec.Op.Ref, origin: site})
		}
	}

	for _, c := range cursors {
		if c.everJoined {
			a.Sites++
		}
	}
	a.FinalDoc = srv.Text()

	oracle.Seal()
	refs := make([]causal.OpRef, 0, len(depth))
	for ref := range depth {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Site != refs[j].Site {
			return refs[i].Site < refs[j].Site
		}
		return refs[i].Seq < refs[j].Seq
	})
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			if oracle.Concurrent(refs[i], refs[j]) {
				a.ConcurrentPairs++
			} else {
				a.OrderedPairs++
			}
		}
	}
	if total := a.ConcurrentPairs + a.OrderedPairs; total > 0 {
		a.ConcurrencyDegree = float64(a.ConcurrentPairs) / float64(total)
	}
	return a, nil
}
