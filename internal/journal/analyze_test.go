package journal

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

// journaledFig2 journals the paper's O1/O2 concurrent pair plus a causally
// dependent O3.
func journaledFig2(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer("ABCDE", core.WithServerCompaction(0))
	clients := map[int]*core.Client{}
	for site := 1; site <= 2; site++ {
		snap, err := srv.Join(site)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(Record{Kind: KJoin, Site: site}); err != nil {
			t.Fatal(err)
		}
		clients[site] = core.NewClient(site, snap.Text, core.WithClientCompaction(0))
	}
	record := func(m core.ClientMsg) {
		if err := w.Append(Record{Kind: KClientOp, Op: wire.ClientOp{
			From: m.From, TS: m.TS, Ref: m.Ref, Op: m.Op}}); err != nil {
			t.Fatal(err)
		}
		bcast, _, err := srv.Receive(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, bm := range bcast {
			if _, err := clients[bm.To].Integrate(bm); err != nil {
				t.Fatal(err)
			}
		}
	}
	// O1 and O2 concurrent (both generated before seeing anything).
	m1, _ := clients[1].Insert(1, "12")
	m2, _ := clients[2].Delete(2, 3)
	record(m1)
	record(m2)
	// O3 at site 2 after both executed there: causally after both.
	m3, _ := clients[2].Insert(0, "*")
	record(m3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeCausalStructure(t *testing.T) {
	path := journaledFig2(t)
	a, err := Analyze(path, "ABCDE")
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != 3 || a.Sites != 2 {
		t.Fatalf("ops %d sites %d", a.Ops, a.Sites)
	}
	if a.PerSite[1] != 1 || a.PerSite[2] != 2 {
		t.Fatalf("per-site: %v", a.PerSite)
	}
	// Exactly one concurrent pair (O1∥O2); O1→O3 and O2→O3.
	if a.ConcurrentPairs != 1 || a.OrderedPairs != 2 {
		t.Fatalf("pairs: %d concurrent, %d ordered", a.ConcurrentPairs, a.OrderedPairs)
	}
	if math.Abs(a.ConcurrencyDegree-1.0/3.0) > 1e-9 {
		t.Fatalf("degree %f", a.ConcurrencyDegree)
	}
	// Chain O1(or O2) → O3 has depth 2.
	if a.MaxDepth != 2 {
		t.Fatalf("max depth %d", a.MaxDepth)
	}
	if a.FinalDoc != "*A12B" {
		t.Fatalf("final doc %q", a.FinalDoc)
	}
	if a.Records != 5 {
		t.Fatalf("records %d", a.Records)
	}
}

func TestAnalyzeSequentialSessionHasNoConcurrency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer("", core.WithServerCompaction(0))
	snap, _ := srv.Join(1)
	_ = snap
	if err := w.Append(Record{Kind: KJoin, Site: 1}); err != nil {
		t.Fatal(err)
	}
	c := core.NewClient(1, "", core.WithClientCompaction(0))
	for i := 0; i < 5; i++ {
		m, err := c.Insert(c.DocLen(), "x")
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(Record{Kind: KClientOp, Op: wire.ClientOp{
			From: m.From, TS: m.TS, Ref: m.Ref, Op: m.Op}}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := srv.Receive(core.ClientMsg{From: m.From, Op: m.Op, TS: m.TS, Ref: m.Ref}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.ConcurrentPairs != 0 || a.MaxDepth != 5 {
		t.Fatalf("sequential session: %d concurrent, depth %d", a.ConcurrentPairs, a.MaxDepth)
	}
	if a.FinalDoc != "xxxxx" {
		t.Fatalf("doc %q", a.FinalDoc)
	}
}

func TestAnalyzeFromLiveSessionJournal(t *testing.T) {
	path, live, _ := runJournaledSession(t, false)
	a, err := Analyze(path, "journaled doc")
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != 10 || a.Sites != 3 {
		t.Fatalf("ops %d sites %d", a.Ops, a.Sites)
	}
	if a.FinalDoc != live.Text() {
		t.Fatalf("final doc %q vs live %q", a.FinalDoc, live.Text())
	}
}

func TestAnalyzeMissingFile(t *testing.T) {
	if _, err := Analyze(filepath.Join(t.TempDir(), "nope"), ""); err == nil {
		t.Fatal("missing journal must error")
	}
}
