// Package journal gives the notifier crash-consistent persistence: an
// append-only log of everything that changes its state (joins, leaves,
// client operations), from which an identical server can be rebuilt by
// deterministic replay.
//
// The engine (internal/core) is fully deterministic in its input sequence,
// so replaying the journal reproduces SV_0, the history buffer, every
// per-client bridge, and the document byte-for-byte — reconnecting clients
// can resume their sessions as if the notifier had never restarted.
//
// Record format (all little-endian varints, like the wire protocol):
//
//	record := length(uvarint) crc32(4 bytes) body
//	body   := type(1 byte) payload        (reuses the wire codec)
//
// A truncated or corrupt tail — the normal result of a crash mid-write — is
// detected by the CRC and cleanly ignored; everything before it replays.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/wire"
)

// ErrCorrupt indicates a record that fails its checksum mid-file (a
// truncated *tail* is not an error; see Reader.Next).
var ErrCorrupt = errors.New("journal: corrupt record")

// Record is one journaled state transition.
type Record struct {
	// Exactly one of the fields below is meaningful, selected by Kind.
	Kind RecordKind
	// Site applies to Join and Leave.
	Site int
	// Op applies to ClientOp.
	Op wire.ClientOp
}

// RecordKind tags a journal record.
type RecordKind uint8

// Record kinds.
const (
	// KJoin records admission of a site.
	KJoin RecordKind = 1
	// KLeave records departure of a site.
	KLeave RecordKind = 2
	// KClientOp records one executed client operation.
	KClientOp RecordKind = 3
)

// Writer appends records to a journal file.
type Writer struct {
	f   *os.File
	w   *bufio.Writer
	buf []byte
	// Sync forces an fsync after every record (durability over
	// throughput); off by default.
	Sync bool
}

// Create opens (or truncates) a journal for writing.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Writer{f: f, w: bufio.NewWriter(f)}, nil
}

// Append durably (if Sync) appends one record.
func (w *Writer) Append(r Record) error {
	body, err := encodeRecord(r)
	if err != nil {
		return err
	}
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(len(body)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	w.buf = append(w.buf, crc[:]...)
	w.buf = append(w.buf, body...)
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	// Records reach the OS after every append, so a process crash loses
	// nothing; Sync additionally forces them to stable storage.
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if w.Sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// Close flushes and closes the file.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("journal: flush: %w", err)
	}
	return w.f.Close()
}

func encodeRecord(r Record) ([]byte, error) {
	switch r.Kind {
	case KJoin, KLeave:
		b := []byte{byte(r.Kind)}
		return binary.AppendUvarint(b, uint64(r.Site)), nil
	case KClientOp:
		b := []byte{byte(r.Kind)}
		return wire.Append(b, r.Op)
	default:
		return nil, fmt.Errorf("journal: unknown record kind %d", r.Kind)
	}
}

func decodeRecord(body []byte) (Record, error) {
	if len(body) == 0 {
		return Record{}, fmt.Errorf("journal: empty record: %w", ErrCorrupt)
	}
	switch RecordKind(body[0]) {
	case KJoin, KLeave:
		site, n := binary.Uvarint(body[1:])
		if n <= 0 || 1+n != len(body) {
			return Record{}, fmt.Errorf("journal: bad site record: %w", ErrCorrupt)
		}
		return Record{Kind: RecordKind(body[0]), Site: int(site)}, nil
	case KClientOp:
		m, err := wire.Decode(body[1:])
		if err != nil {
			return Record{}, fmt.Errorf("journal: %v: %w", err, ErrCorrupt)
		}
		op, ok := m.(wire.ClientOp)
		if !ok {
			return Record{}, fmt.Errorf("journal: unexpected %T: %w", m, ErrCorrupt)
		}
		return Record{Kind: KClientOp, Op: op}, nil
	default:
		return Record{}, fmt.Errorf("journal: unknown record kind %d: %w", body[0], ErrCorrupt)
	}
}

// Reader iterates a journal file.
type Reader struct {
	f *os.File
	r *bufio.Reader
	// offset is the file position just past the last successfully decoded
	// record — the clean prefix length used by crash recovery.
	offset int64
}

// Open opens a journal for reading.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Reader{f: f, r: bufio.NewReader(f)}, nil
}

// Offset returns the byte offset just past the last good record.
func (r *Reader) Offset() int64 { return r.offset }

// Next returns the next record. It returns io.EOF at a clean end *and* at a
// truncated tail (the crash case); a checksum failure with further bytes
// after it returns ErrCorrupt.
func (r *Reader) Next() (Record, error) {
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, io.EOF // clean end or truncated length
	}
	if size > wire.MaxFrame {
		return Record{}, fmt.Errorf("journal: %d byte record: %w", size, ErrCorrupt)
	}
	header := make([]byte, 4+size)
	if _, err := io.ReadFull(r.r, header); err != nil {
		return Record{}, io.EOF // truncated tail: treat as crash point
	}
	want := binary.LittleEndian.Uint32(header[:4])
	body := header[4:]
	if crc32.ChecksumIEEE(body) != want {
		// Distinguish a torn final record (EOF follows) from corruption in
		// the middle of the file.
		if _, err := r.r.Peek(1); err != nil {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("journal: checksum mismatch: %w", ErrCorrupt)
	}
	rec, err := decodeRecord(body)
	if err == nil {
		r.offset += int64(uvarintLen(size)) + 4 + int64(size)
	}
	return rec, err
}

func uvarintLen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Close closes the file.
func (r *Reader) Close() error { return r.f.Close() }

// Replay rebuilds a notifier engine from a journal: it creates a server with
// the given initial document and options, replays every record, and returns
// the reconstructed server plus the number of records applied.
func Replay(path, initial string, opts ...core.ServerOption) (*core.Server, int, error) {
	srv, applied, _, err := replay(path, initial, opts...)
	return srv, applied, err
}

func replay(path, initial string, opts ...core.ServerOption) (*core.Server, int, int64, error) {
	r, err := Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer r.Close() //lint:allow errdrop: read-only replay — every Next() is checked, close-after-read carries no information
	srv := core.NewServer(initial, opts...)
	applied := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return srv, applied, r.Offset(), nil
		}
		if err != nil {
			return nil, applied, r.Offset(), err
		}
		switch rec.Kind {
		case KJoin:
			if _, err := srv.Join(rec.Site); err != nil {
				return nil, applied, r.Offset(), fmt.Errorf("journal: replay join %d: %w", rec.Site, err)
			}
		case KLeave:
			if err := srv.Leave(rec.Site); err != nil {
				return nil, applied, r.Offset(), fmt.Errorf("journal: replay leave %d: %w", rec.Site, err)
			}
		case KClientOp:
			m := core.ClientMsg{From: rec.Op.From, Op: rec.Op.Op, TS: rec.Op.TS, Ref: rec.Op.Ref}
			if _, _, err := srv.Receive(m); err != nil {
				return nil, applied, r.Offset(), fmt.Errorf("journal: replay op from %d: %w", rec.Op.From, err)
			}
		}
		applied++
	}
}

// Recover restores a notifier from path, or creates a fresh one (and a
// fresh journal) if the file does not exist. Any torn tail left by a crash
// is truncated away, the journal is reopened for appending, and every site
// the journal shows as joined is marked departed (its connection died with
// the crashed process) with KLeave records appended — rejoining clients get
// fresh snapshots with resumed counters. It returns the server, the
// append-mode writer, and the number of records replayed.
func Recover(path, initial string, opts ...core.ServerOption) (*core.Server, *Writer, int, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		w, err := Create(path)
		if err != nil {
			return nil, nil, 0, err
		}
		return core.NewServer(initial, opts...), w, 0, nil
	}
	srv, applied, cleanLen, err := replay(path, initial, opts...)
	if err != nil {
		return nil, nil, applied, err
	}
	if err := os.Truncate(path, cleanLen); err != nil {
		return nil, nil, applied, fmt.Errorf("journal: truncate torn tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, applied, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f, w: bufio.NewWriter(f)}
	for _, site := range srv.Sites() {
		if err := srv.Leave(site); err != nil {
			_ = w.Close()
			return nil, nil, applied, err
		}
		if err := w.Append(Record{Kind: KLeave, Site: site}); err != nil {
			_ = w.Close()
			return nil, nil, applied, err
		}
	}
	return srv, w, applied, nil
}
