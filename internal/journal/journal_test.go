package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/vclock"
	"repro/internal/wire"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "session.journal")
}

func TestRoundTripRecords(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewClient(1, "")
	m, err := c.Insert(0, "héllo")
	if err != nil {
		t.Fatal(err)
	}
	records := []Record{
		{Kind: KJoin, Site: 1},
		{Kind: KClientOp, Op: wire.ClientOp{From: m.From, TS: m.TS, Ref: m.Ref, Op: m.Op}},
		{Kind: KLeave, Site: 1},
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, want := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Site != want.Site {
			t.Fatalf("record %d: %+v vs %+v", i, got, want)
		}
		if want.Kind == KClientOp {
			if got.Op.From != want.Op.From || got.Op.TS != want.Op.TS || !got.Op.Op.Equal(want.Op.Op) {
				t.Fatalf("record %d op mismatch", i)
			}
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// runJournaledSession drives a 3-client session, journaling everything the
// server consumes, and returns the journal path and the live server.
func runJournaledSession(t *testing.T, sync bool) (string, *core.Server, map[int]*core.Client) {
	t.Helper()
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Sync = sync
	srv := core.NewServer("journaled doc", core.WithServerCompaction(0))
	clients := map[int]*core.Client{}
	for site := 1; site <= 3; site++ {
		snap, err := srv.Join(site)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(Record{Kind: KJoin, Site: site}); err != nil {
			t.Fatal(err)
		}
		clients[site] = core.NewClient(site, snap.Text, core.WithClientCompaction(0))
	}
	send := func(site int, m core.ClientMsg) {
		if err := w.Append(Record{Kind: KClientOp, Op: wire.ClientOp{
			From: m.From, TS: m.TS, Ref: m.Ref, Op: m.Op}}); err != nil {
			t.Fatal(err)
		}
		bcast, _, err := srv.Receive(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, bm := range bcast {
			if _, err := clients[bm.To].Integrate(bm); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 10; i++ {
		site := 1 + i%3
		m, err := clients[site].Insert(clients[site].DocLen(), fmt.Sprintf("<%d>", i))
		if err != nil {
			t.Fatal(err)
		}
		send(site, m)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, srv, clients
}

// TestReplayReconstructsServerExactly: a server rebuilt from the journal
// matches the live one in document, SV_0, history buffer, and bridges — and
// the session can continue against it.
func TestReplayReconstructsServerExactly(t *testing.T) {
	path, live, clients := runJournaledSession(t, false)

	rebuilt, applied, err := Replay(path, "journaled doc", core.WithServerCompaction(0))
	if err != nil {
		t.Fatal(err)
	}
	if applied != 13 { // 3 joins + 10 ops
		t.Fatalf("applied %d records", applied)
	}
	if rebuilt.Text() != live.Text() {
		t.Fatalf("document: %q vs %q", rebuilt.Text(), live.Text())
	}
	if vclock.Compare(rebuilt.SV().Full(), live.SV().Full()) != vclock.Equal {
		t.Fatalf("SV_0: %v vs %v", rebuilt.SV().Full(), live.SV().Full())
	}
	if rebuilt.History().Len() != live.History().Len() {
		t.Fatalf("HB: %d vs %d", rebuilt.History().Len(), live.History().Len())
	}
	for site := 1; site <= 3; site++ {
		if rebuilt.BridgeLen(site) != live.BridgeLen(site) {
			t.Fatalf("bridge %d: %d vs %d", site, rebuilt.BridgeLen(site), live.BridgeLen(site))
		}
		if rebuilt.SentTo(site) != live.SentTo(site) {
			t.Fatalf("sent %d: %d vs %d", site, rebuilt.SentTo(site), live.SentTo(site))
		}
	}

	// The session continues seamlessly against the rebuilt server: clients
	// keep their state, the recovered server accepts their next ops.
	m, err := clients[2].Insert(0, "recovered! ")
	if err != nil {
		t.Fatal(err)
	}
	bcast, _, err := rebuilt.Receive(m)
	if err != nil {
		t.Fatalf("recovered server rejected a continuing client: %v", err)
	}
	for _, bm := range bcast {
		if _, err := clients[bm.To].Integrate(bm); err != nil {
			t.Fatal(err)
		}
	}
	for site, c := range clients {
		if c.Text() != rebuilt.Text() {
			t.Fatalf("site %d diverged after recovery: %q vs %q", site, c.Text(), rebuilt.Text())
		}
	}
}

// TestTruncatedTailIsACleanCrash: cutting the file mid-record replays the
// prefix and stops at EOF, like a real crash during the last write.
func TestTruncatedTailIsACleanCrash(t *testing.T) {
	path, _, _ := runJournaledSession(t, false)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, len(b) / 2, len(b) - 1} {
		trimmed := filepath.Join(t.TempDir(), "trimmed.journal")
		if err := os.WriteFile(trimmed, b[:len(b)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		srv, applied, err := Replay(trimmed, "journaled doc", core.WithServerCompaction(0))
		if err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}
		if srv == nil {
			t.Fatalf("cut %d: no server", cut)
		}
		// Small cuts only lose the tail; the surviving prefix must replay.
		if cut <= len(b)/2 && applied == 0 {
			t.Fatalf("cut %d: nothing replayed", cut)
		}
	}
}

// TestMidFileCorruptionDetected: flipping a byte in the middle fails with
// ErrCorrupt rather than silently replaying garbage.
func TestMidFileCorruptionDetected(t *testing.T) {
	path, _, _ := runJournaledSession(t, false)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	corrupt := filepath.Join(t.TempDir(), "corrupt.journal")
	if err := os.WriteFile(corrupt, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var sawCorrupt bool
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrCorrupt) {
			sawCorrupt = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawCorrupt {
		t.Fatal("mid-file corruption went undetected")
	}
}

func TestSyncMode(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Sync = true
	if err := w.Append(Record{Kind: KJoin, Site: 1}); err != nil {
		t.Fatal(err)
	}
	// With Sync on, the record is on disk before Close.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil || rec.Site != 1 {
		t.Fatalf("synced record not readable: %+v %v", rec, err)
	}
	r.Close()
	w.Close()
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file must error")
	}
	if _, _, err := Replay(filepath.Join(t.TempDir(), "nope"), ""); err == nil {
		t.Fatal("replay of missing file must error")
	}
}

func TestReplayRejectsWrongInitialDoc(t *testing.T) {
	path, _, _ := runJournaledSession(t, false)
	// Replaying with the wrong initial document makes some op fail to
	// apply; Replay must surface that rather than diverge silently.
	if _, _, err := Replay(path, "totally different initial text of other length"); err == nil {
		t.Fatal("wrong initial document must fail replay")
	}
}
