package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags mixed atomic/plain access to the same memory — the race
// class the lock-free observability layer (internal/obs sharded counters,
// histograms, copy-on-write registry) and the transport/wire metrics are
// one plain `=` away from at all times. A field that any code touches
// through sync/atomic is an atomic field everywhere: one plain read
// tears under concurrent atomic writes, and one plain write (the
// innocent-looking `c.n = 0` reset) races every atomic reader. The Go
// race detector only catches the interleavings a test happens to run;
// this analyzer catches the pattern statically.
//
// Two disciplines are enforced:
//
//   - Function-style atomics: a variable (struct field or package-level)
//     whose address is passed to an atomic.AddInt64 / LoadUint64 /
//     StoreInt32 / Swap / CompareAndSwap… call anywhere in the package
//     must not be read or written plainly anywhere else.
//   - Typed atomics (atomic.Int64, atomic.Uint64, atomic.Bool,
//     atomic.Value, atomic.Pointer[T], …): the only legal operations on a
//     value of these types are method calls (x.Load(), x.Store(…)),
//     taking its address, indexing into an array of them, and ranging by
//     index. Assigning one (`s.flag = atomic.Bool{}` — the non-atomic
//     reset), copying one into a variable, or passing one by value
//     bypasses the atomicity the type exists to guarantee.
//
// The owning constructor is exempt: before the value is published, plain
// initialization is the idiom (NewHistogram's min seed would be the
// textbook case were it not already a Store). A constructor is a
// same-package function whose results include the owning type.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "field accessed both through sync/atomic and plainly (outside the owning constructor)",
	Run:  runAtomicMix,
}

// atomicFuncPrefixes match the sync/atomic package-level operation families
// (AddInt64, LoadUint32, StorePointer, SwapUint64, CompareAndSwapInt32, …).
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func runAtomicMix(pass *Pass) {
	m := &atomicMix{
		pass:       pass,
		atomicVars: make(map[*types.Var]token.Pos),
		owners:     make(map[*types.Var]string),
		sanctioned: make(map[ast.Expr]bool),
	}
	// Pass 1: find every variable whose address feeds a sync/atomic call.
	for _, f := range pass.Files {
		ast.Inspect(f, m.collect)
	}
	// Pass 2: flag plain accesses of those variables and non-method uses of
	// typed atomic values.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fn.Body != nil {
				m.checkFunc(fn)
			}
			return false
		})
	}
}

type atomicMix struct {
	pass *Pass
	// atomicVars maps a variable object to the position of one atomic
	// access, proving the discipline it must keep everywhere.
	atomicVars map[*types.Var]token.Pos
	// owners maps a field to its owning struct type name ("" for
	// package-level variables, which have no constructor exemption).
	owners map[*types.Var]string
	// sanctioned marks the &x arguments of atomic calls, so pass 2 does not
	// flag the atomic accesses themselves.
	sanctioned map[ast.Expr]bool
}

// collect records variables addressed by sync/atomic function calls.
func (m *atomicMix) collect(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}
	fn := calleeFunc(m.pass.Info, call)
	if fn == nil || funcPkgPath(fn) != "sync/atomic" || fn.Type().(*types.Signature).Recv() != nil {
		return true
	}
	if !hasAtomicFuncPrefix(fn.Name()) {
		return true
	}
	for _, a := range call.Args {
		u, ok := ast.Unparen(a).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		target := ast.Unparen(u.X)
		v := m.varOf(target)
		if v == nil {
			continue
		}
		if _, seen := m.atomicVars[v]; !seen {
			m.atomicVars[v] = call.Pos()
			m.owners[v] = m.ownerName(target)
		}
		m.sanctioned[target] = true
	}
	return true
}

func hasAtomicFuncPrefix(name string) bool {
	for _, p := range atomicFuncPrefixes {
		if len(name) > len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

// varOf resolves a selector or identifier to its variable object when it is
// a struct field or package-level variable.
func (m *atomicMix) varOf(e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := m.pass.Info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		}
		// Package-qualified identifier (pkg.Var).
		if v, ok := m.pass.Info.Uses[e.Sel].(*types.Var); ok && !v.IsField() && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.Ident:
		if v, ok := identObj(m.pass.Info, e).(*types.Var); ok && !v.IsField() &&
			v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

// ownerName names the struct type a field selector is reached through.
func (m *atomicMix) ownerName(e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	tv, ok := m.pass.Info.Types[sel.X]
	if !ok {
		return ""
	}
	n := namedType(tv.Type)
	if n == nil || n.Obj() == nil {
		return ""
	}
	return n.Obj().Name()
}

// constructorOf reports whether fn is a constructor of the named type: a
// plain function whose results include the type (by value or pointer).
func (m *atomicMix) constructorOf(fn *ast.FuncDecl, typeName string) bool {
	if typeName == "" || fn.Recv != nil || fn.Type.Results == nil {
		return false
	}
	for _, r := range fn.Type.Results.List {
		tv, ok := m.pass.Info.Types[r.Type]
		if !ok {
			continue
		}
		if n := namedType(tv.Type); n != nil && n.Obj() != nil && n.Obj().Name() == typeName &&
			n.Obj().Pkg() == m.pass.Pkg {
			return true
		}
	}
	return false
}

// checkFunc walks one function body with parent context.
func (m *atomicMix) checkFunc(fn *ast.FuncDecl) {
	var walk func(n ast.Node, parent ast.Node)
	walk = func(n ast.Node, parent ast.Node) {
		if n == nil {
			return
		}
		if e, ok := n.(ast.Expr); ok {
			m.checkExpr(fn, e, parent)
		}
		for _, child := range childNodes(n) {
			walk(child, n)
		}
	}
	walk(fn.Body, fn)
}

// checkExpr applies both disciplines to one expression node.
func (m *atomicMix) checkExpr(fn *ast.FuncDecl, e ast.Expr, parent ast.Node) {
	// Function-style discipline: plain access to a variable that is
	// elsewhere driven through sync/atomic calls.
	if v := m.varOf(e); v != nil {
		if atomicAt, ok := m.atomicVars[v]; ok && !m.sanctioned[ast.Unparen(e)] && !m.inAddrOfAtomicCall(parent) {
			if !m.constructorOf(fn, m.owners[v]) {
				how := "read"
				if isWriteContext(e, parent) {
					how = "written"
				}
				m.pass.Reportf(e.Pos(), "field %s is %s plainly here but accessed atomically at %s; every access must go through sync/atomic (or move the plain init into the constructor)",
					v.Name(), how, m.pass.Fset.Position(atomicAt))
			}
			return
		}
	}
	// Typed-atomic discipline: a value of an atomic.* type outside the
	// sanctioned contexts (method receiver, address-of, array indexing,
	// index-only range).
	if !isTypedAtomic(m.exprType(e)) {
		return
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == e {
			return // x.Load() / x.Store(...) — the method path
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return // &x — passing the atomic by pointer keeps the discipline
		}
	case *ast.IndexExpr:
		if p.X == e {
			return // arr[i] — drilling into an array of atomics
		}
	case *ast.RangeStmt:
		if p.X == e && p.Value == nil {
			return // for i := range arr — length only, no element copy
		}
	case *ast.StarExpr:
		return // *p — dereferencing an *atomic.T to call through it
	case *ast.CallExpr:
		// len(arr)/cap(arr) over an array of atomics is a compile-time
		// constant; no element is copied.
		if b, ok := m.pass.Info.Uses[calleeIdent(p)].(*types.Builtin); ok &&
			(b.Name() == "len" || b.Name() == "cap") {
			return
		}
	}
	// Only flag the outermost offending expression: if the parent is itself
	// an atomic-typed selector/index, the parent check will report.
	if pe, ok := parent.(ast.Expr); ok && isTypedAtomic(m.exprType(pe)) {
		return
	}
	how := "copied or read"
	if isWriteContext(e, parent) {
		how = "overwritten"
	}
	m.pass.Reportf(e.Pos(), "atomic-typed value %s %s non-atomically; use its Load/Store/Add methods (a plain copy or assignment tears under concurrent access)",
		types.ExprString(e), how)
}

func (m *atomicMix) exprType(e ast.Expr) types.Type {
	tv, ok := m.pass.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// inAddrOfAtomicCall reports whether parent is the &x node of a sanctioned
// atomic call argument (the selector inside &x.f is visited with parent
// &x.f).
func (m *atomicMix) inAddrOfAtomicCall(parent ast.Node) bool {
	u, ok := parent.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	return m.sanctioned[ast.Unparen(u.X)]
}

// isTypedAtomic reports whether t is one of sync/atomic's typed values
// (Int32..Uint64, Bool, Value, Pointer[T], Uintptr) or an array of them.
func isTypedAtomic(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if arr, ok := t.(*types.Array); ok {
		return isTypedAtomic(arr.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

// isWriteContext reports whether e is being assigned to.
func isWriteContext(e ast.Expr, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == ast.Unparen(e) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(p.X) == ast.Unparen(e)
	}
	return false
}

// calleeIdent returns the identifier a call is made through, or nil.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn
	case *ast.SelectorExpr:
		return fn.Sel
	}
	return nil
}

// childNodes returns the direct AST children of n in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
