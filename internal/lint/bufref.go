package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufRef polices the reference-counting discipline of the pooled broadcast
// buffers (internal/wire, DESIGN.md §11). A *wire.Broadcast is born from
// NewBroadcast holding one reference; Retain adds one, Release drops one,
// and the last Release returns the buffer to a sync.Pool. Because the pool
// recycles buffers under live traffic, every lifetime mistake is a
// memory-safety bug in slow motion: using a buffer after its final Release
// reads (or worse, writes) a buffer another broadcast may already own, a
// double Release underflows the count and poisons the pool with a live
// buffer, and a reference that no path drops leaks the buffer and pins its
// tail allocation forever.
//
// The analysis is a per-function forward dataflow over variables of type
// *wire.Broadcast. Each variable carries a reference state:
//
//   - born from wire.NewBroadcast: an exact count, starting at 1;
//   - received as a parameter (or captured): a borrowed delta, starting at
//     0 — by the codebase convention a callee is handed at most one
//     reference it may consume (Sender.EnqueueBroadcast's contract).
//
// Retain increments, Release decrements, and passing the variable directly
// as a call argument consumes one reference (enqueue/deliver take ownership
// per destination — the Retain-then-enqueue idiom in repro.Integrate).
// Escapes — storing into a field, slice, map, channel, composite literal,
// returning, or capture by a goroutine/deferred literal — count as
// ownership transfer and end tracking. When the count reaches zero (exact)
// or the borrowed reference is consumed, the variable is dead: any later
// use is use-after-release, any later Release is a double release. A path
// that returns while an acquired reference is still held (and not
// transferred) is reported as a leak.
//
// Control flow is handled conservatively: branches are analyzed under
// copies of the state and merged — states that disagree stop tracking
// rather than guess — and a loop body must leave every tracked count
// exactly where it found it (the balanced Retain/enqueue of a fan-out
// loop), or tracking stops. The error-check idiom `bc, err := NewBroadcast(…);
// if err != nil { return err }` is understood: the error branch does not
// hold a buffer.
var BufRef = &Analyzer{
	Name: "bufref",
	Doc:  "pooled broadcast buffer used after final Release, double-Released, or leaked",
	Run:  runBufRef,
}

func runBufRef(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var ftype *ast.FuncType
			var recv *ast.FieldList
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, ftype, recv = fn.Body, fn.Type, fn.Recv
			case *ast.FuncLit:
				body, ftype = fn.Body, fn.Type
			default:
				return true
			}
			if body == nil {
				return true
			}
			w := &bufWalker{pass: pass, vars: make(map[types.Object]*bufState)}
			w.declareBorrowed(recv)
			w.declareBorrowed(ftype.Params)
			if !w.walkStmts(body.List) {
				w.checkLeaks(body.Rbrace)
			}
			return true // nested literals are found and walked independently
		})
	}
}

// bufState is the dataflow fact for one *wire.Broadcast variable.
type bufState struct {
	// count is the number of references this function is known to hold
	// (exact) or the delta against the borrowed reference (inexact, where
	// -1 means "the incoming reference was consumed").
	count int
	// exact marks counts rooted at a NewBroadcast call in this function.
	exact bool
	// dead marks a fully released/consumed buffer; any use is a finding.
	dead bool
	// lost stops tracking: the value escaped, aliased, merged ambiguously,
	// or already produced a report.
	lost bool
	// deferred counts pending `defer bc.Release()` calls, credited at the
	// leak check.
	deferred int

	acquiredAt token.Pos // NewBroadcast call or first Retain
	endedAt    token.Pos // the Release/consume that made it dead
	// errObj is the error variable paired with the acquisition
	// (`bc, err := NewBroadcast(…)`); a branch taken on errObj != nil
	// does not hold the buffer.
	errObj types.Object
}

func (s *bufState) same(o *bufState) bool {
	return s.count == o.count && s.exact == o.exact && s.dead == o.dead &&
		s.lost == o.lost && s.deferred == o.deferred
}

type bufWalker struct {
	pass *Pass
	vars map[types.Object]*bufState
}

// isBroadcastPtr reports whether t is *wire.Broadcast.
func isBroadcastPtr(t types.Type) bool {
	return isNamed(t, "repro/internal/wire", "Broadcast")
}

// declareBorrowed registers parameter/receiver variables of broadcast type
// as borrowed (delta 0).
func (w *bufWalker) declareBorrowed(fields *ast.FieldList) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		for _, name := range f.Names {
			obj := w.pass.Info.Defs[name]
			if obj != nil && isBroadcastPtr(obj.Type()) {
				w.vars[obj] = &bufState{}
			}
		}
	}
}

// state returns the tracked state for obj, lazily registering broadcast-
// typed variables (captures of an enclosing function) as borrowed.
func (w *bufWalker) state(obj types.Object) *bufState {
	if obj == nil || !isBroadcastPtr(obj.Type()) {
		return nil
	}
	s, ok := w.vars[obj]
	if !ok {
		s = &bufState{}
		w.vars[obj] = s
	}
	return s
}

// trackedIdent resolves e to a tracked broadcast variable, or nil.
func (w *bufWalker) trackedIdent(e ast.Expr) (types.Object, *bufState) {
	obj := identObj(w.pass.Info, e)
	s := w.state(obj)
	if s == nil {
		return nil, nil
	}
	return obj, s
}

// --- events ---------------------------------------------------------------

func (w *bufWalker) use(obj types.Object, s *bufState, pos token.Pos) {
	if s.lost || !s.dead {
		return
	}
	w.pass.Reportf(pos, "broadcast buffer %q used after its last reference was dropped at %s (the pool may have recycled it)",
		obj.Name(), w.pass.Fset.Position(s.endedAt))
	s.lost = true // one report per variable is enough
}

func (w *bufWalker) retain(obj types.Object, s *bufState, pos token.Pos) {
	if s.lost {
		return
	}
	if s.dead {
		w.pass.Reportf(pos, "broadcast buffer %q Retained after its last reference was dropped at %s (resurrecting a pooled buffer)",
			obj.Name(), w.pass.Fset.Position(s.endedAt))
		s.lost = true
		return
	}
	s.count++
	if s.acquiredAt == token.NoPos {
		s.acquiredAt = pos
	}
}

// drop consumes one reference, by an explicit Release (how = "Released") or
// by handing the variable to a consuming call (how = "consumed").
func (w *bufWalker) drop(obj types.Object, s *bufState, pos token.Pos, how string) {
	if s.lost {
		return
	}
	if s.dead {
		w.pass.Reportf(pos, "broadcast buffer %q %s again after its last reference was dropped at %s (refcount underflow poisons the pool)",
			obj.Name(), how, w.pass.Fset.Position(s.endedAt))
		s.lost = true
		return
	}
	s.count--
	if (s.exact && s.count == 0) || (!s.exact && s.count == -1) {
		s.dead = true
		s.endedAt = pos
	}
}

func (w *bufWalker) escape(obj types.Object, s *bufState) {
	// Ownership transfer: the receiver of the store is responsible now.
	s.lost = true
	_ = obj
}

// checkLeaks reports acquired references that no path through pos releases
// or transfers.
func (w *bufWalker) checkLeaks(pos token.Pos) {
	for obj, s := range w.vars {
		if s.lost || s.dead {
			continue
		}
		if s.count-s.deferred > 0 {
			w.pass.Reportf(pos, "broadcast buffer %q still holds %d reference(s) acquired at %s on this return path; Release or transfer it",
				obj.Name(), s.count-s.deferred, w.pass.Fset.Position(s.acquiredAt))
			s.lost = true
		}
	}
}

// --- statement walk -------------------------------------------------------

// walkStmts analyzes list in source order; it reports true when the list
// definitely terminates (return / branch) before falling through.
func (w *bufWalker) walkStmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.walkStmt(s) {
			return true
		}
	}
	return false
}

// snapshot deep-copies the variable states.
func (w *bufWalker) snapshot() map[types.Object]*bufState {
	out := make(map[types.Object]*bufState, len(w.vars))
	for k, v := range w.vars {
		c := *v
		out[k] = &c
	}
	return out
}

// merge reconciles the fall-through states of a branch point: variables
// whose states disagree across reachable exits stop being tracked.
func (w *bufWalker) merge(entry map[types.Object]*bufState, exits ...map[types.Object]*bufState) {
	seen := make(map[types.Object]bool)
	for obj := range entry {
		seen[obj] = true
	}
	for _, e := range exits {
		for obj := range e {
			seen[obj] = true
		}
	}
	merged := make(map[types.Object]*bufState, len(seen))
	for obj := range seen {
		var pick *bufState
		ok := true
		states := make([]*bufState, 0, 1+len(exits))
		if s, found := entry[obj]; found {
			states = append(states, s)
		}
		for _, e := range exits {
			if s, found := e[obj]; found {
				states = append(states, s)
			}
		}
		pick = states[0]
		for _, s := range states[1:] {
			if !s.same(pick) {
				ok = false
				break
			}
		}
		c := *pick
		if !ok {
			c.lost = true
		}
		merged[obj] = &c
	}
	w.vars = merged
}

// branch walks s under a copy of the current state; kill names variables
// known not to hold a buffer on this path (the error branch of an
// acquisition). It returns the branch's exit state, or nil when the branch
// cannot fall through.
func (w *bufWalker) branch(s ast.Stmt, kill []types.Object) map[types.Object]*bufState {
	if s == nil {
		return w.snapshot()
	}
	saved := w.vars
	w.vars = w.snapshot()
	for _, obj := range kill {
		if st, ok := w.vars[obj]; ok {
			st.lost = true
		}
	}
	terminated := w.walkStmt(s)
	exit := w.vars
	w.vars = saved
	if terminated {
		return nil
	}
	return exit
}

func (w *bufWalker) walkStmt(s ast.Stmt) (terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s)
	case *ast.ExprStmt:
		w.scanExpr(s.X, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, true)
					}
					for _, name := range vs.Names {
						w.state(w.pass.Info.Defs[name]) // register `var bc *wire.Broadcast`
					}
				}
			}
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan, false)
		w.transferOrScan(s.Value)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.transferOrScan(e)
		}
		w.checkLeaks(s.Pos())
		return true
	case *ast.DeferStmt:
		w.handleAsyncCall(s.Call, true)
	case *ast.GoStmt:
		w.handleAsyncCall(s.Call, false)
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		thenKill, elseKill := w.errBranchKills(s.Cond)
		w.scanExpr(s.Cond, false)
		entry := w.snapshot()
		thenExit := w.branch(s.Body, thenKill)
		var exits []map[types.Object]*bufState
		if thenExit != nil {
			exits = append(exits, thenExit)
		}
		if s.Else != nil {
			if elseExit := w.branch(s.Else, elseKill); elseExit != nil {
				exits = append(exits, elseExit)
			}
			if len(exits) == 0 {
				return true // neither branch falls through
			}
			w.merge(exits[0], exits[1:]...)
			return false
		}
		for _, obj := range elseKill {
			if st, ok := entry[obj]; ok {
				st.lost = true
			}
		}
		w.merge(entry, exits...)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.scanExpr(s.Cond, false)
		w.walkLoopBody(s.Body)
	case *ast.RangeStmt:
		w.scanExpr(s.X, false)
		w.walkLoopBody(s.Body)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.scanExpr(s.Tag, false)
		w.walkClauses(s.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkClauses(s.Body)
	case *ast.SelectStmt:
		w.walkClauses(s.Body)
	case *ast.BlockStmt:
		return w.walkStmts(s.List)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto: does not reach the statements that follow.
		return true
	case *ast.IncDecStmt:
		w.scanExpr(s.X, false)
	}
	return false
}

// walkLoopBody analyzes a loop body once from the current state and
// requires it to be reference-balanced: any variable whose count the body
// changes (the unbalanced half of a Retain/enqueue pair) stops being
// tracked, because the analysis does not model iteration counts.
func (w *bufWalker) walkLoopBody(body *ast.BlockStmt) {
	entry := w.snapshot()
	w.walkStmts(body.List)
	exit := w.vars
	w.vars = entry
	for obj, st := range exit {
		es, ok := w.vars[obj]
		if !ok {
			// Declared inside the loop: keep the last-iteration state; the
			// function-end leak check reports a per-iteration leak once.
			c := *st
			w.vars[obj] = &c
			continue
		}
		if !st.same(es) {
			es.lost = true
		}
	}
}

// walkClauses analyzes each case/comm clause of body under a state copy and
// merges the reachable exits with the entry state (no clause may be taken).
func (w *bufWalker) walkClauses(body *ast.BlockStmt) {
	entry := w.snapshot()
	var exits []map[types.Object]*bufState
	for _, c := range body.List {
		if exit := w.branch(c, nil); exit != nil {
			exits = append(exits, exit)
		}
	}
	w.merge(entry, exits...)
}

// errBranchKills recognizes `err != nil` / `err == nil` conditions over an
// error object paired with an acquisition and returns the variables that do
// not hold a buffer in the then/else branch respectively.
func (w *bufWalker) errBranchKills(cond ast.Expr) (thenKill, elseKill []types.Object) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil, nil
	}
	var errSide ast.Expr
	switch {
	case isNilIdent(be.X):
		errSide = be.Y
	case isNilIdent(be.Y):
		errSide = be.X
	default:
		return nil, nil
	}
	errObj := identObj(w.pass.Info, errSide)
	if errObj == nil {
		return nil, nil
	}
	for obj, s := range w.vars {
		if s.errObj == errObj {
			switch be.Op {
			case token.NEQ:
				thenKill = append(thenKill, obj)
			case token.EQL:
				elseKill = append(elseKill, obj)
			}
		}
	}
	return thenKill, elseKill
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// handleAssign processes acquisitions, aliases, and stores.
func (w *bufWalker) handleAssign(st *ast.AssignStmt) {
	// Acquisition: bc, err := wire.NewBroadcast(...)
	if len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && w.isNewBroadcast(call) {
			for _, a := range call.Args {
				w.scanExpr(a, false)
			}
			if obj := identObj(w.pass.Info, st.Lhs[0]); obj != nil && isBroadcastPtr(obj.Type()) {
				if old, ok := w.vars[obj]; ok && !old.lost && !old.dead && old.count > 0 {
					w.pass.Reportf(st.Pos(), "broadcast buffer %q reassigned while still holding %d reference(s) acquired at %s (the old buffer leaks)",
						obj.Name(), old.count, w.pass.Fset.Position(old.acquiredAt))
				}
				ns := &bufState{count: 1, exact: true, acquiredAt: call.Pos()}
				if len(st.Lhs) == 2 {
					ns.errObj = identObj(w.pass.Info, st.Lhs[1])
				}
				w.vars[obj] = ns
				return
			}
		}
	}
	// General assignment: scan RHS for events, then record transfers.
	for _, e := range st.Rhs {
		w.scanExpr(e, false)
	}
	for i, lhs := range st.Lhs {
		if i < len(st.Rhs) {
			if obj, s := w.trackedIdent(st.Rhs[i]); obj != nil {
				// Alias (x := bc) or store (m.f = bc, xs[i] = bc): in both
				// cases counting per-variable stops being meaningful.
				w.use(obj, s, st.Rhs[i].Pos())
				w.escape(obj, s)
			}
		}
		// Overwriting a variable that still holds references leaks them.
		if obj := identObj(w.pass.Info, lhs); obj != nil && isBroadcastPtr(obj.Type()) {
			if old, ok := w.vars[obj]; ok && !old.lost && !old.dead && old.exact && old.count > 0 {
				w.pass.Reportf(st.Pos(), "broadcast buffer %q reassigned while still holding %d reference(s) acquired at %s (the old buffer leaks)",
					obj.Name(), old.count, w.pass.Fset.Position(old.acquiredAt))
			}
			w.vars[obj] = &bufState{}
		} else {
			w.scanExpr(lhs, false)
		}
	}
}

// handleAsyncCall treats `defer bc.Release()` as a credited release and any
// other deferred/spawned use of a tracked variable as an escape (the call
// runs outside this statement order).
func (w *bufWalker) handleAsyncCall(call *ast.CallExpr, isDefer bool) {
	if isDefer {
		if obj, s, ok := w.broadcastMethodCall(call, "Release"); ok {
			s.deferred++
			_ = obj
			return
		}
	}
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, s := w.trackedIdent(id); obj != nil {
				w.use(obj, s, id.Pos())
				w.escape(obj, s)
			}
		}
		return true
	})
}

// broadcastMethodCall matches bc.<name>() on a tracked identifier.
func (w *bufWalker) broadcastMethodCall(call *ast.CallExpr, name string) (types.Object, *bufState, bool) {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil || fn.Name() != name {
		return nil, nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isBroadcastPtr(sig.Recv().Type()) {
		return nil, nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil, false
	}
	obj, s := w.trackedIdent(sel.X)
	if obj == nil {
		return nil, nil, false
	}
	return obj, s, true
}

func (w *bufWalker) isNewBroadcast(call *ast.CallExpr) bool {
	fn := calleeFunc(w.pass.Info, call)
	return fn != nil && fn.Name() == "NewBroadcast" && funcPkgPath(fn) == "repro/internal/wire"
}

// transferOrScan handles value positions that transfer ownership outright
// (return values, channel sends).
func (w *bufWalker) transferOrScan(e ast.Expr) {
	if obj, s := w.trackedIdent(e); obj != nil {
		w.use(obj, s, e.Pos())
		w.escape(obj, s)
		return
	}
	w.scanExpr(e, true)
}

// scanExpr walks an expression for reference events. escape marks contexts
// where a bare tracked identifier would come to rest somewhere else (inside
// a composite literal, address-of, …) and therefore transfers ownership.
func (w *bufWalker) scanExpr(e ast.Expr, escape bool) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, s := w.trackedIdent(e); obj != nil {
			w.use(obj, s, e.Pos())
			if escape {
				w.escape(obj, s)
			}
		}
	case *ast.CallExpr:
		w.scanCall(e)
	case *ast.SelectorExpr:
		w.scanExpr(e.X, false)
	case *ast.UnaryExpr:
		w.scanExpr(e.X, e.Op == token.AND || escape)
	case *ast.StarExpr:
		w.scanExpr(e.X, false)
	case *ast.BinaryExpr:
		w.scanExpr(e.X, false)
		w.scanExpr(e.Y, false)
	case *ast.IndexExpr:
		w.scanExpr(e.X, false)
		w.scanExpr(e.Index, false)
	case *ast.SliceExpr:
		w.scanExpr(e.X, false)
		w.scanExpr(e.Low, false)
		w.scanExpr(e.High, false)
		w.scanExpr(e.Max, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			w.scanExpr(v, true) // stored into the literal: ownership transfer
		}
	case *ast.TypeAssertExpr:
		w.scanExpr(e.X, false)
	case *ast.KeyValueExpr:
		w.scanExpr(e.Value, escape)
	case *ast.FuncLit:
		// The literal body runs later (and is analyzed independently);
		// captured buffers escape this function's ordering.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj, s := w.trackedIdent(id); obj != nil {
					w.escape(obj, s)
				}
			}
			return true
		})
	}
}

// scanCall processes one call expression: Retain/Release events on tracked
// receivers, consumption of tracked direct arguments (the enqueue/deliver
// ownership convention), and plain uses everywhere else.
func (w *bufWalker) scanCall(call *ast.CallExpr) {
	if obj, s, ok := w.broadcastMethodCall(call, "Retain"); ok {
		w.retain(obj, s, call.Pos())
		return
	}
	if obj, s, ok := w.broadcastMethodCall(call, "Release"); ok {
		w.drop(obj, s, call.Pos(), "Released")
		return
	}
	// Receiver and nested arguments are uses; a tracked identifier passed
	// directly as an argument hands one reference to the callee.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.scanExpr(sel.X, false)
	}
	for _, a := range call.Args {
		if obj, s := w.trackedIdent(a); obj != nil {
			w.use(obj, s, a.Pos())
			if !s.lost {
				w.drop(obj, s, a.Pos(), "consumed (passed to a call)")
				// Keep the drop message accurate: a consume that empties the
				// count transfers the buffer rather than releasing it, but
				// the dead-state bookkeeping is identical.
			}
			continue
		}
		w.scanExpr(a, true)
	}
}
