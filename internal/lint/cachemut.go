package lint

import "go/ast"

// CacheMut polices the ownership discipline of the composed-suffix
// transform cache (internal/core, DESIGN.md §13). The cache fields —
// clientState.comp/.unfolded/.compHold on the notifier side,
// Client.pcomp/.punfolded/.pcompHold on the client side — are derived
// state over the bridge/pending lists: every mutation must preserve the
// invariant that comp composes exactly the live suffix and unfolded records
// exactly the owed rebases. The engines guarantee this by confining
// mutation to their own methods, which callers serialize under the engine
// lock (repro.Notifier.mu) or an actor loop (internal/server). A write from
// anywhere else — a free function, another type's method, or a function
// literal (which may execute on another goroutine, outside the engine's
// serialization) — bypasses that discipline and either races or desyncs the
// cache from the list it summarizes, so the analyzer flags assignments to
// and addresses-of these fields outside methods of the owning engine type.
//
// Passing the fields to helpers by pointer from inside an owner method
// (clearFolds(&st.unfolded)) stays legal: the helper runs synchronously on
// the owner's call stack, under the same serialization.
var CacheMut = &Analyzer{
	Name: "cachemut",
	Doc:  "composed-suffix cache field mutated outside the owning engine's methods",
	Run:  runCacheMut,
}

// cacheMutOwner maps holder-type name → cache field → required method
// receiver type. clientState is the notifier's per-destination record, so
// its cache belongs to Server; the client's pending-list cache lives on
// Client itself.
var cacheMutOwner = map[string]map[string]string{
	"clientState": {"comp": "Server", "unfolded": "Server", "compHold": "Server"},
	"Client":      {"pcomp": "Client", "punfolded": "Client", "pcompHold": "Client"},
}

func runCacheMut(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fn.Body != nil {
				checkCacheMut(pass, fn.Body, recvDeclName(fn))
			}
			return false // nested literals are handled inside checkCacheMut
		})
	}
}

// checkCacheMut walks one function body. owner is the receiver type name
// ("" for free functions); function literals are walked with owner "" —
// a literal may outlive the enclosing call or run on another goroutine, so
// it gets no ownership credit from the method that created it.
func checkCacheMut(pass *Pass, body ast.Node, owner string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCacheMut(pass, n.Body, "")
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportCacheField(pass, lhs, owner, "assigned")
			}
		case *ast.IncDecStmt:
			reportCacheField(pass, n.X, owner, "mutated")
		case *ast.UnaryExpr:
			// &x.field lets the mutation escape the owner's methods.
			if n.Op.String() == "&" {
				reportCacheField(pass, n.X, owner, "address taken")
			}
		}
		return true
	})
}

// reportCacheField flags e when it selects a composed-cache field and owner
// is not the field's engine type.
func reportCacheField(pass *Pass, e ast.Expr, owner, how string) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return
	}
	named := namedType(tv.Type)
	if named == nil || named.Obj() == nil {
		return
	}
	fields, ok := cacheMutOwner[named.Obj().Name()]
	if !ok {
		return
	}
	want, ok := fields[sel.Sel.Name]
	if !ok {
		return
	}
	if owner == want {
		return
	}
	where := "a free function or literal"
	if owner != "" {
		where = "a " + owner + " method"
	}
	pass.Reportf(e.Pos(), "composed-cache field %s.%s %s in %s; only %s methods may mutate it (engine-lock confinement)",
		named.Obj().Name(), sel.Sel.Name, how, where, want)
}

// recvDeclName returns the receiver type name of a method declaration
// (behind any pointer), or "" for plain functions.
func recvDeclName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	// Generic receivers (IndexExpr) do not occur in this module.
	return ""
}
