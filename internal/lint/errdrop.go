package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded error results from the wire codec, the transports,
// and the journal. These are the system's I/O boundary: a swallowed encode
// or append error means an operation the clocks have already counted was
// never durably recorded or never reached the peer, which desynchronizes
// the 2-element state vectors from reality (the FIFO discipline in §2.2
// assumes the link either delivers or fails loudly).
//
// Flagged forms:
//
//	wire.WriteFrame(w, m)          // bare call statement
//	go conn.Send(m)                // goroutine, error unobservable
//	defer jw.Close()               // deferred, error unobservable
//	v, _ := wire.Decode(b)         // error position blanked in a tuple
//
// A single-value explicit discard (`_ = conn.Close()`) is accepted: it is
// visible at the call site and conventionally marks a considered decision.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded error from internal/wire, internal/transport, or internal/journal calls",
	Run:  runErrDrop,
}

var errDropPkgs = map[string]bool{
	"repro/internal/wire":      true,
	"repro/internal/transport": true,
	"repro/internal/journal":   true,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if fn, ok := pass.errDropTarget(call); ok {
						pass.Reportf(call.Pos(), "error result of %s.%s dropped", fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.GoStmt:
				if fn, ok := pass.errDropTarget(st.Call); ok {
					pass.Reportf(st.Call.Pos(), "error result of %s.%s unobservable in go statement", fn.Pkg().Name(), fn.Name())
				}
			case *ast.DeferStmt:
				if fn, ok := pass.errDropTarget(st.Call); ok {
					pass.Reportf(st.Call.Pos(), "error result of deferred %s.%s dropped", fn.Pkg().Name(), fn.Name())
				}
			case *ast.AssignStmt:
				pass.checkBlankedError(st)
			}
			return true
		})
	}
}

// errDropTarget reports whether call is to a watched package and returns an
// error among its results.
func (p *Pass) errDropTarget(call *ast.CallExpr) (*types.Func, bool) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || !errDropPkgs[funcPkgPath(fn)] {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	return fn, errorResultIndex(sig) >= 0
}

// errorResultIndex returns the position of the (last) error result, or -1.
func errorResultIndex(sig *types.Signature) int {
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if isErrorType(res.At(i).Type()) {
			return i
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// checkBlankedError flags `v, _ := watched(...)` where the blank lands on
// the error position of a multi-result call. A whole-result explicit
// discard (`_ = f()`) is deliberately accepted.
func (p *Pass) checkBlankedError(st *ast.AssignStmt) {
	if len(st.Rhs) != 1 || len(st.Lhs) < 2 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, ok := p.errDropTarget(call)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	idx := errorResultIndex(sig)
	if idx >= len(st.Lhs) {
		return
	}
	if id, ok := st.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
		p.Reportf(id.Pos(), "error result of %s.%s assigned to blank", fn.Pkg().Name(), fn.Name())
	}
}
