package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches golden expectations in fixture sources:
//
//	x.T1 < y.T1 // want "ad-hoc < comparison"
//
// The quoted text is a regexp matched against the diagnostic message; the
// comment's line must equal the diagnostic's line.
var wantRe = regexp.MustCompile(`//\s*want\s+"([^"]+)"`)

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans the fixture's comments for // want "..." expectations,
// keyed by (file, line).
func collectWants(t *testing.T, pkg *Package) map[fileLine]*want {
	t.Helper()
	out := make(map[fileLine]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fileLine{pos.Filename, pos.Line}
				if out[key] != nil {
					t.Fatalf("%s:%d: multiple want comments on one line", pos.Filename, pos.Line)
				}
				out[key] = &want{re: re}
			}
		}
	}
	return out
}

func analyzerNamed(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// TestGolden runs each analyzer over its fixture package in testdata/src and
// checks the reported diagnostics against the // want comments both ways:
// every want must be matched, and every unsuppressed diagnostic must have a
// want.
func TestGolden(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"opalias", "tscompare", "locksend", "errdrop", "nopanic", "cachemut", "bufref", "atomicmix"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkg, err := loader.LoadDir(dir, "lintfixture/"+name)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.Errors) > 0 {
				t.Fatalf("fixture %s does not type-check: %v", name, pkg.Errors)
			}
			wants := collectWants(t, pkg)
			for _, d := range Run(pkg, []*Analyzer{analyzerNamed(t, name)}) {
				if d.Suppressed {
					continue
				}
				w := wants[fileLine{d.Pos.Filename, d.Pos.Line}]
				switch {
				case w == nil:
					t.Errorf("unexpected diagnostic: %s", d)
				case !w.re.MatchString(d.Message):
					t.Errorf("%s:%d: diagnostic %q does not match want %q", d.Pos.Filename, d.Pos.Line, d.Message, w.re)
				default:
					w.matched = true
				}
			}
			for key, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matching want %q", key.file, key.line, w.re)
				}
			}
		})
	}
}

// TestAllowReason checks the lint-on-lint pass against its fixture. The
// expectations are a table rather than // want comments: allowreason
// diagnostics attach to the //lint:allow comments themselves, and a line
// comment swallows the rest of its line, leaving nowhere to put a marker.
func TestAllowReason(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "allowreason"), "lintfixture/allowreason")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Errors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.Errors)
	}
	type exp struct {
		fn        string // the fixture function whose suppression is malformed
		substring string
	}
	expected := []exp{
		{"missingColon", "must separate analyzers from the reason with a colon"},
		{"emptyReason", "has no reason"},
		{"unknownName", `unknown analyzer "nopnaic"`},
		{"noNames", "names no analyzer"},
	}
	// Resolve each function name to its body's line range so expectations
	// survive fixture edits.
	lineToFn := make(map[int]string)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				for l := pkg.Fset.Position(fd.Pos()).Line; l <= pkg.Fset.Position(fd.Body.Rbrace).Line; l++ {
					lineToFn[l] = fd.Name.Name
				}
			}
		}
	}
	var got []exp
	for _, d := range Run(pkg, []*Analyzer{analyzerNamed(t, "allowreason")}) {
		got = append(got, exp{lineToFn[d.Pos.Line], d.Message})
	}
	for _, e := range expected {
		found := false
		for _, g := range got {
			if g.fn == e.fn && strings.Contains(g.substring, e.substring) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no allowreason diagnostic in %s containing %q (got %v)", e.fn, e.substring, got)
		}
	}
	if len(got) != len(expected) {
		t.Errorf("got %d diagnostics, want %d: %v", len(got), len(expected), got)
	}
}

// TestSuppressionScope pins the two placements //lint:allow honors — same
// line and line above — and that an allow for one analyzer does not leak to
// another line or another analyzer.
func TestSuppressionScope(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "nopanic"), "lintfixture/nopanic")
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, reported int
	for _, d := range Run(pkg, []*Analyzer{analyzerNamed(t, "nopanic")}) {
		if d.Suppressed {
			suppressed++
		} else {
			reported++
		}
	}
	if suppressed != 1 || reported != 1 {
		t.Errorf("got %d suppressed / %d reported nopanic findings, want 1 / 1", suppressed, reported)
	}
}

// TestModuleClean is the acceptance criterion as a test: the full analyzer
// suite over the whole module must produce zero unsuppressed findings, and
// every package must load and type-check. Introducing a violation anywhere in
// the tree fails `go test ./internal/lint`.
func TestModuleClean(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadAll found no packages")
	}
	var findings []string
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			t.Errorf("%s: %v", pkg.Path, e)
		}
		for _, d := range Run(pkg, All()) {
			if !d.Suppressed {
				findings = append(findings, fmt.Sprintf("%s: %s", pkg.Path, d))
			}
		}
	}
	for _, f := range findings {
		t.Error(f)
	}
}
