// Package lint is a small, stdlib-only static-analysis framework enforcing
// the causality invariants the Go type system cannot express (paper §3–§6):
// timestamps must be ordered only through the formula-(5)/(7) helpers,
// relayed operations must be new transformed ops rather than aliased
// originals, engine mutexes must not be held across blocking sends, and wire
// and journal errors must not be silently dropped.
//
// The framework deliberately avoids golang.org/x/tools: packages are loaded
// with go/parser and type-checked with go/types (see load.go), and each
// analyzer is a visitor over typed ASTs registered with the shared driver
// (cmd/cvclint). Adding a pass is ~50 lines: declare an Analyzer, walk
// pass.Files, call pass.Reportf.
//
// Findings can be suppressed with an inline comment on the offending line or
// the line directly above it:
//
//	//lint:allow tscompare: assertion against expected constants, not ordering
//
// The comment names one or more analyzers (comma-separated), then a colon,
// then a mandatory free-form justification. Suppressions are honored by the
// driver and surfaced with -show-suppressed; the allowreason analyzer
// rejects suppressions that name unknown analyzers or omit the reason, so
// every silenced finding in the tree documents why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one registered pass. Run inspects a single type-checked
// package through its Pass and reports findings; it must not retain the
// Pass after returning.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:allow comments.
	Name string
	// Doc is a one-line description shown by cvclint -list.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{OpAlias, TSCompare, LockSend, ErrDrop, NoPanic, CacheMut, BufRef, AtomicMix, AllowReason}
}

// ByName resolves a comma-separated analyzer list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Pass carries one type-checked package into an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path (e.g. "repro/internal/core").
	Path string
	// Files are the parsed non-test source files.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed is set when a //lint:allow comment covers the finding.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Run applies the analyzers to a loaded package and returns its findings,
// with //lint:allow suppressions applied, sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	allows := collectAllows(pkg.Fset, pkg.Files)
	for i := range diags {
		d := &diags[i]
		key := fileLine{d.Pos.Filename, d.Pos.Line}
		prev := fileLine{d.Pos.Filename, d.Pos.Line - 1}
		if allows[key][d.Analyzer] || allows[prev][d.Analyzer] {
			d.Suppressed = true
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

type fileLine struct {
	file string
	line int
}

// collectAllows gathers //lint:allow comments: map (file,line) → analyzer
// set. A suppression applies to findings on its own line (trailing comment)
// or on the line immediately below (preceding comment).
func collectAllows(fset *token.FileSet, files []*ast.File) map[fileLine]map[string]bool {
	out := make(map[fileLine]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := allowBody(c.Text)
				if !ok {
					continue
				}
				names, _, _ := splitAllow(rest)
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fileLine{pos.Filename, pos.Line}
				if out[key] == nil {
					out[key] = make(map[string]bool)
				}
				for _, name := range names {
					out[key][name] = true
				}
			}
		}
	}
	return out
}

// allowBody extracts the text after "lint:allow" when the comment is a
// suppression, distinguishing real suppressions from doc-comment examples
// (which keep their own leading "//" and therefore do not match).
func allowBody(comment string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "lint:allow") {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(text, "lint:allow")), true
}

// splitAllow parses the body of a suppression into its analyzer names and
// reason. The canonical form is "name[,name]: reason"; hasColon reports
// whether the body used it. Legacy bodies without a colon parse their first
// field as the name list and everything after it as the reason, keeping old
// comments suppressing (so a migration cannot silently unleash findings)
// while allowreason flags them for rewriting.
func splitAllow(body string) (names []string, reason string, hasColon bool) {
	var namePart string
	if idx := strings.Index(body, ":"); idx >= 0 {
		namePart, reason, hasColon = body[:idx], strings.TrimSpace(body[idx+1:]), true
	} else {
		fields := strings.Fields(body)
		if len(fields) == 0 {
			return nil, "", false
		}
		namePart = fields[0]
		reason = strings.TrimSpace(strings.TrimPrefix(body, fields[0]))
	}
	for _, name := range strings.Split(namePart, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names, reason, hasColon
}

// AllowReason is the lint-on-lint pass: every //lint:allow suppression must
// name known analyzers and carry a reason in the canonical
// "//lint:allow name[,name]: reason" form. A suppression is a claim that a
// finding is intentional; without the reason the claim is unreviewable, and
// with a typoed analyzer name it silently suppresses nothing.
var AllowReason = &Analyzer{
	Name: "allowreason",
	Doc:  "suppression comment missing its ': <reason>' suffix or naming an unknown analyzer",
	// Run is bound in init: runAllowReason consults All(), which includes
	// AllowReason itself — binding it here would be an initialization cycle.
}

func init() { AllowReason.Run = runAllowReason }

func runAllowReason(pass *Pass) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := allowBody(c.Text)
				if !ok {
					continue
				}
				names, reason, hasColon := splitAllow(body)
				switch {
				case len(names) == 0:
					pass.Reportf(c.Pos(), "suppression names no analyzer; write //lint:allow <name>: <reason>")
					continue
				case !hasColon:
					pass.Reportf(c.Pos(), "suppression must separate analyzers from the reason with a colon: //lint:allow %s: <reason>", strings.Join(names, ","))
				case reason == "":
					pass.Reportf(c.Pos(), "suppression for %s has no reason; a suppression is a claim, justify it after the colon", strings.Join(names, ","))
				}
				for _, name := range names {
					if !known[name] {
						pass.Reportf(c.Pos(), "suppression names unknown analyzer %q (known: see cvclint -list); it suppresses nothing", name)
					}
				}
			}
		}
	}
}

// --- shared type helpers used by the analyzers ---------------------------

// namedType unwraps pointers and aliases down to a named type, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// calleeFunc resolves the static callee of a call, or nil (builtin calls,
// conversions, and calls through function values resolve to nil).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// funcPkgPath returns the declaring package path of f ("" for nil).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// identObj resolves an expression to the object of its root identifier when
// the expression is a plain (possibly parenthesized) identifier.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
