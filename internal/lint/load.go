package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errors holds parse and type errors. Analyzers still run on packages
	// with errors, but the driver reports them and fails the run: a
	// finding missed because typing was incomplete is worse than a loud
	// exit.
	Errors []error
}

// Loader loads and type-checks packages of one module using only the
// standard library: module-internal import paths are resolved against the
// module directory and type-checked from source, everything else is
// delegated to go/importer's source importer (which compiles the standard
// library from GOROOT/src).
type Loader struct {
	ModuleDir  string
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle detection
}

// NewLoader returns a loader rooted at moduleDir (which must contain
// go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer consults build.Default. With cgo enabled it
	// would try to run cgo on packages like net; the pure-Go variants
	// type-check identically for analysis purposes.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Import implements types.Importer, so module-internal dependencies of a
// package under analysis are themselves loaded through the Loader.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		if len(pkg.Errors) > 0 {
			return pkg.Types, fmt.Errorf("lint: %s has %d errors (first: %v)", path, len(pkg.Errors), pkg.Errors[0])
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// LoadDir loads the package in dir under the given import path, parsing
// every non-test .go file and type-checking it. Results are cached by path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	// Check reports the first error through conf.Error as well; the
	// returned package is usable even when incomplete.
	pkg.Types, _ = conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// sourceFiles lists the non-test .go files of dir that build on the host
// platform, in stable order. Build constraints matter since the transport
// grew platform-split files (poller_linux.go vs netpoll_other.go): parsing
// both halves of a //go:build pair redeclares every symbol and drowns the
// run in spurious type errors, so files are filtered through the same
// context the compiler uses.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		// MatchFile reads the file header and evaluates //go:build lines and
		// GOOS/GOARCH filename suffixes against build.Default.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadAll loads every package of the module: each directory under ModuleDir
// holding non-test .go files, skipping testdata, hidden, and underscore
// directories.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := sourceFiles(p)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
