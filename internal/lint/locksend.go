package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockSend flags a sync.Mutex/RWMutex held across a channel send or a
// blocking transport call (Conn.Send, FrameConn.SendFrame, Conn.Recv,
// Listener.Accept). In the
// notifier's fan-out path this is the classic distributed-deadlock recipe:
// a slow peer exerts backpressure, the send blocks while the engine lock is
// held, and every other site's operations stall behind it — which is
// exactly why sender.go drains an unbounded queue instead of sending under
// repro.Notifier.mu.
//
// The analysis is per-function and statement-ordered: Lock()/RLock() opens
// a held region closed by the matching Unlock()/RUnlock(); a deferred
// unlock keeps the region open to the end of the function. Function
// literals are analyzed separately with an empty region (a goroutine body
// does not run under the spawner's lock).
//
// The same held-region machinery also polices the observability layer:
// internal/obs splits its API into lock-free recording (Counter.Add,
// Histogram.Record, DecisionRing.Enabled — safe anywhere) and lock-taking
// registry/ring maintenance (Registry.Counter, .Snapshot, DecisionRing.Dump,
// …). Only the lock-free half may run under an engine mutex; resolve
// registry objects up front (as Notifier.Observe does) and call them inside.
var LockSend = &Analyzer{
	Name: "locksend",
	Doc:  "mutex held across a channel send, blocking transport call, or lock-taking obs call",
	Run:  runLockSend,
}

// lockSendBlocking names the transport methods that may block on
// backpressure. The transport package itself is responsible for its own
// write serialization and is analyzed like everyone else — it passes
// because its internal mutexes guard buffered writers, not Conn calls.
var lockSendBlocking = map[string]bool{"Send": true, "SendFrame": true, "Recv": true, "Accept": true}

// lockSendObs names the internal/obs methods that take the registry or ring
// mutex (or allocate on a miss path). Deliberately absent: Counter.Add/Inc/
// Load, Histogram.Record/RecordInt/Since, Registry.LoadCounter/CounterNames,
// DecisionRing.Enabled/SetEnabled — those are atomic-only and are exactly
// what hot paths are meant to call while locked.
var lockSendObs = map[string]map[string]bool{
	"Registry": {
		"Counter": true, "Histogram": true, "Gauge": true, "CounterFunc": true,
		"Child": true, "DropChild": true, "Snapshot": true,
	},
	"DecisionRing": {
		"Record": true, "Total": true, "Dump": true, "WriteJSONL": true, "Reset": true,
	},
}

func runLockSend(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &lockWalker{pass: pass, held: make(map[string]token.Pos)}
				w.walkStmts(body.List)
			}
			return true // nested literals are found and walked independently
		})
	}
}

type lockWalker struct {
	pass *Pass
	held map[string]token.Pos // lock expression → Lock() position
}

func (w *lockWalker) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		w.walkStmt(s)
	}
}

// branch runs a nested statement under a copy of the held set, so a lock
// released (or taken) on one control-flow path is still considered held
// (or free) on the fall-through path.
func (w *lockWalker) branch(s ast.Stmt) {
	if s == nil {
		return
	}
	saved := w.held
	w.held = make(map[string]token.Pos, len(saved))
	for k, v := range saved {
		w.held[k] = v
	}
	w.walkStmt(s)
	w.held = saved
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, ok := w.lockOp(call); ok {
				switch op {
				case "Lock", "RLock":
					w.held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(w.held, key)
				}
				return
			}
		}
		w.scan(s.X)
	case *ast.SendStmt:
		w.reportIfHeld(s.Arrow, "channel send")
		w.scan(s.Chan)
		w.scan(s.Value)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the remainder of the
		// function — which is the region this analyzer exists to police.
		// The deferred call itself runs at return; its arguments are
		// evaluated now.
		if _, op, ok := w.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
		for _, a := range s.Call.Args {
			w.scan(a)
		}
	case *ast.GoStmt:
		// The spawned call runs asynchronously; only its arguments are
		// evaluated under the current locks.
		for _, a := range s.Call.Args {
			w.scan(a)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e)
		}
		for _, e := range s.Lhs {
			w.scan(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scan(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e)
		}
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.scan(s.Cond)
		w.branch(s.Body)
		w.branch(s.Else)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.scan(s.Cond)
		w.branch(s.Body)
	case *ast.RangeStmt:
		w.scan(s.X)
		w.branch(s.Body)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.scan(s.Tag)
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			w.scan(e)
		}
		w.walkStmts(s.Body)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.CommClause:
		w.walkStmt(s.Comm)
		w.walkStmts(s.Body)
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

// scan inspects an expression for blocking transport calls, skipping nested
// function literals (their bodies do not execute here).
func (w *lockWalker) scan(e ast.Expr) {
	if e == nil || len(w.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn := calleeFunc(w.pass.Info, call)
			switch {
			case fn != nil && funcPkgPath(fn) == "repro/internal/transport" && lockSendBlocking[fn.Name()]:
				w.reportIfHeld(call.Pos(), "blocking transport."+fn.Name())
			case fn != nil && funcPkgPath(fn) == "repro/internal/obs" && lockSendObs[recvTypeName(fn)][fn.Name()]:
				w.reportIfHeld(call.Pos(), "lock-taking obs."+recvTypeName(fn)+"."+fn.Name())
			}
		}
		return true
	})
}

func (w *lockWalker) reportIfHeld(pos token.Pos, what string) {
	advice := "enqueue instead — a blocked peer must not stall the engine"
	if strings.HasPrefix(what, "lock-taking obs.") {
		advice = "resolve the counter/histogram before locking and record through it — registry maintenance must not run under an engine lock"
	}
	for key, lockPos := range w.held {
		w.pass.Reportf(pos, "%s while %s is held (locked at %s); %s",
			what, key, w.pass.Fset.Position(lockPos), advice)
		return // one report per site is enough
	}
}

// recvTypeName returns the name of a method's receiver type (behind any
// pointer), or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	n := namedType(recv.Type())
	if n == nil || n.Obj() == nil {
		return ""
	}
	return n.Obj().Name()
}

// lockOp recognizes mu.Lock / mu.RLock / mu.Unlock / mu.RUnlock calls on
// sync.Mutex, sync.RWMutex, or sync.Locker values and returns the lock's
// receiver expression (rendered as a stable key) and the operation name.
func (w *lockWalker) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sel, ok2 := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}
