package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic flags panic calls in library code. A replica that panics
// mid-session takes the whole star down with it (or, worse, only one site —
// leaving the others to diverge silently), so recoverable conditions must
// surface as errors through the engine APIs. The handful of genuinely
// unreachable guards — violated preconditions that indicate a bug in the
// caller, not a runtime condition — carry an explicit
// `//lint:allow nopanic` with justification.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "panic in non-test library code (allowlist unreachable guards with //lint:allow nopanic)",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(call.Pos(), "panic in library code; return an error (or allowlist an unreachable guard)")
			}
			return true
		})
	}
}
