package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OpAlias flags an *op.Op that is mutated after a message aliasing it has
// been handed to a send path. The engines share built operations freely —
// the notifier stores the same *op.Op in every destination's bridge and
// broadcast message (server.go) — and that sharing is only sound because a
// built operation is immutable. Calling one of the fluent mutators
// (Retain/Insert/Delete) on an op a ClientMsg/ServerMsg already carries
// retroactively edits a message in flight: the receiver integrates an
// operation that no longer matches its timestamp, which is precisely the
// §6 unsound-relay ablation reproduced silently inside ModeTransform.
//
// The analysis is per-function and source-ordered: it records where an op
// value becomes reachable from a sent message (directly as a send/enqueue
// argument or channel-send value, or stored in the op-typed field of a
// struct that is then sent) and reports any later mutator call on the same
// variable. Clone() before mutating.
var OpAlias = &Analyzer{
	Name: "opalias",
	Doc:  "*op.Op reachable from a sent message is mutated after the send",
	Run:  runOpAlias,
}

// opAliasSinks are call names that hand a message to a delivery path.
var opAliasSinks = map[string]bool{
	"Send": true, "Broadcast": true, "enqueue": true, "Enqueue": true,
}

// opMutators are the *op.Op methods that modify the receiver in place.
var opMutators = map[string]bool{"Retain": true, "Insert": true, "Delete": true}

func runOpAlias(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &aliasWalker{
					pass:      pass,
					published: make(map[types.Object]token.Pos),
					msgOps:    make(map[types.Object][]types.Object),
				}
				w.walk(body)
			}
			return true
		})
	}
}

type aliasWalker struct {
	pass *Pass
	// published records, per op-typed variable, where a message aliasing
	// it was first sent.
	published map[types.Object]token.Pos
	// msgOps tracks which op variables are stored inside a message-holding
	// variable (one level of indirection: m := ServerMsg{Op: x}; send(m)).
	msgOps map[types.Object][]types.Object
}

// walk visits body in source order, skipping nested function literals
// (analyzed independently with fresh state).
func (w *aliasWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			w.recordStores(n)
		case *ast.SendStmt:
			w.publish(n.Value, n.Arrow)
		case *ast.CallExpr:
			w.visitCall(n)
		}
		return true
	})
}

func (w *aliasWalker) visitCall(call *ast.CallExpr) {
	// Mutator on a published op?
	if isOpMutator(w.pass.Info, call) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := identObj(w.pass.Info, sel.X); obj != nil {
				if sentAt, ok := w.published[obj]; ok && sentAt < call.Pos() {
					w.pass.Reportf(call.Pos(),
						"op %q is aliased by a message sent at %s and must not be mutated after the send; Clone() it first",
						obj.Name(), w.pass.Fset.Position(sentAt))
				}
			}
		}
		return
	}
	// Sink call: every argument may escape onto the wire.
	if isSinkCall(call) {
		for _, a := range call.Args {
			w.publish(a, call.Pos())
		}
	}
}

// isOpMutator reports whether call invokes one of the in-place *op.Op
// builder methods.
func isOpMutator(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || !opMutators[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && isNamed(sig.Recv().Type(), "repro/internal/op", "Op")
}

// isSinkCall reports whether call hands its arguments to a delivery path,
// by method/function name (Send, Broadcast, enqueue, Enqueue).
func isSinkCall(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return opAliasSinks[fn.Name]
	case *ast.SelectorExpr:
		return opAliasSinks[fn.Sel.Name]
	}
	return false
}

// recordStores tracks op values flowing into message variables:
//
//	m := ServerMsg{Op: x}   // composite assignment
//	m.Op = x                // field assignment
//	y := x                  // op alias
func (w *aliasWalker) recordStores(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		rhs := ast.Unparen(st.Rhs[i])
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := identObj(w.pass.Info, l)
			if obj == nil {
				continue
			}
			if w.isOpExpr(lhs) {
				// Op-to-op alias: share publish state via msgOps so a
				// publish of either name covers the stored value.
				if src := w.opObjOf(rhs); src != nil {
					w.msgOps[obj] = append(w.msgOps[obj], src)
				}
				continue
			}
			w.msgOps[obj] = append(w.msgOps[obj], w.opsInExpr(rhs)...)
		case *ast.SelectorExpr:
			// m.Op = x
			if base := identObj(w.pass.Info, l.X); base != nil && w.isOpExpr(lhs) {
				if src := w.opObjOf(rhs); src != nil {
					w.msgOps[base] = append(w.msgOps[base], src)
				}
			}
		}
	}
}

// publish marks every op variable reachable from e as sent at pos.
func (w *aliasWalker) publish(e ast.Expr, pos token.Pos) {
	for _, obj := range w.opsInExpr(e) {
		if _, ok := w.published[obj]; !ok {
			w.published[obj] = pos
		}
	}
}

// opsInExpr collects the op-typed variables reachable from e: e itself, op
// values inside a composite literal, or ops previously stored in a message
// variable.
func (w *aliasWalker) opsInExpr(e ast.Expr) []types.Object {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	var out []types.Object
	switch e := e.(type) {
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			out = append(out, w.opsInExpr(v)...)
		}
	case *ast.Ident:
		obj := identObj(w.pass.Info, e)
		if obj == nil {
			return nil
		}
		if w.isOpExpr(e) {
			out = append(out, obj)
		}
		// Ops stored earlier in this variable (message structs and op
		// aliases alike).
		out = append(out, w.msgOps[obj]...)
	}
	return out
}

// opObjOf resolves e to the object of an op-typed identifier, or nil.
func (w *aliasWalker) opObjOf(e ast.Expr) types.Object {
	if !w.isOpExpr(e) {
		return nil
	}
	return identObj(w.pass.Info, e)
}

func (w *aliasWalker) isOpExpr(e ast.Expr) bool {
	tv, ok := w.pass.Info.Types[e]
	return ok && isNamed(tv.Type, "repro/internal/op", "Op")
}
