// Fixture for the allowreason analyzer: every //lint:allow suppression must
// use the canonical "name[,name]: reason" form and name real analyzers.
// Expectations live in TestAllowReason (golden_test.go) rather than in
// // want comments: the diagnostics attach to the suppression comments
// themselves, and a line comment swallows the rest of its line, leaving no
// room for a trailing want marker.
package fixture

// Canonical forms: accepted.
func ok() {
	_ = recover() //lint:allow nopanic: handler at the top of the dispatch loop
}

func okMulti() {
	_ = recover() //lint:allow nopanic,errdrop: fixture exercising the list form
}

// Legacy form: names parse (the suppression still works) but the missing
// colon is flagged.
func missingColon() {
	_ = recover() //lint:allow nopanic legacy comment without the separator
}

// A colon with nothing after it leaves the claim unjustified.
func emptyReason() {
	_ = recover() //lint:allow nopanic:
}

// A typo'd analyzer name suppresses nothing.
func unknownName() {
	_ = recover() //lint:allow nopnaic: typo in the analyzer name
}

// No analyzer at all.
func noNames() {
	_ = recover() //lint:allow : a reason with nobody to apply it to
}
