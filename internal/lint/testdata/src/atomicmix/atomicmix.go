// Fixture for the atomicmix analyzer: memory touched through sync/atomic —
// by address-taking calls or by the typed atomic.* values — must never also
// be accessed plainly outside the owning constructor. The layout mirrors the
// real surfaces: internal/obs sharded counters (typed atomics behind
// methods), the wire metrics arrays, and function-style counters.
package fixture

import "sync/atomic"

// --- function-style atomics ----------------------------------------------

// Counter drives n exclusively through sync/atomic calls.
type Counter struct {
	n    int64
	name string
}

func (c *Counter) Inc() { atomic.AddInt64(&c.n, 1) }

func (c *Counter) Get() int64 { return atomic.LoadInt64(&c.n) }

// NewCounter may seed the field plainly: the value is not yet published.
func NewCounter(seed int64) *Counter {
	c := &Counter{}
	c.n = seed
	return c
}

// Non-atomic fields on the same struct stay out of scope.
func (c *Counter) Name() string { return c.name }

// A plain read tears under concurrent atomic writers.
func (c *Counter) roguePeek() int64 {
	return c.n // want "field n is read plainly"
}

// The innocent-looking reset races every atomic reader.
func (c *Counter) rogueReset() {
	c.n = 0 // want "field n is written plainly"
}

// Increment outside the atomic loses updates.
func (c *Counter) rogueBump() {
	c.n++ // want "field n is written plainly"
}

// Package-level variables follow the same discipline (and have no
// constructor exemption).
var hits uint64

func bump() { atomic.AddUint64(&hits, 1) }

func roguePackagePeek() uint64 {
	return hits // want "field hits is read plainly"
}

// --- typed atomics --------------------------------------------------------

type gauge struct {
	flag atomic.Bool
	v    atomic.Int64
}

// Methods are the only operations a typed atomic supports.
func (g *gauge) set() {
	g.flag.Store(true)
	g.v.Add(1)
}

// Arrays of typed atomics: indexing, index-only ranging, len, and taking an
// element's address all preserve the discipline.
var slots [4]atomic.Uint64

func slotSum() uint64 {
	var sum uint64
	for i := range slots {
		sum += slots[i].Load()
	}
	return sum
}

func slotCount() int { return len(slots) }

func slotPtr(i int) *atomic.Uint64 { return &slots[i] }

// Overwriting a typed atomic is the non-atomic reset in disguise.
func (g *gauge) rogueClear() {
	g.flag = atomic.Bool{} // want "non-atomically"
}

// Copying a typed atomic detaches the copy from every concurrent writer.
func (g *gauge) rogueSnapshot() {
	_ = g.v // want "atomic-typed value g.v copied or read"
}

// Passing an array of atomics by value copies every element non-atomically.
func consume(x [4]atomic.Uint64) {}

func rogueByValue() {
	consume(slots) // want "atomic-typed value slots copied or read"
}

// --- netpoll idiom --------------------------------------------------------

// The poller wakeup counter: a package-level typed atomic bumped from the
// event loop and read by a metrics callback (mirrors netpoll's wakeups).
var wakeups atomic.Uint64

func recordWakeup() { wakeups.Add(1) }

func wakeupCount() uint64 { return wakeups.Load() }

// Zeroing the counter between benchmark rounds by assignment is the
// non-atomic reset again: it tears against a concurrent poller loop.
func rogueBenchReset() {
	wakeups = atomic.Uint64{} // want "non-atomically"
}

// Reading the counter as a value copies it out from under the writer.
func rogueWakeupSnapshot() {
	_ = wakeups // want "atomic-typed value wakeups copied or read"
}

// eventConn mirrors pollConn's split personality: partial is bumped with
// sync/atomic from the poller goroutine, fd is plain state owned by the
// registration handoff and stays out of scope.
type eventConn struct {
	partial uint64
	fd      int
}

func (c *eventConn) notePartial() { atomic.AddUint64(&c.partial, 1) }

func (c *eventConn) file() int { return c.fd }

// A stats method that skips the atomic load tears under the poller loop.
func (c *eventConn) rogueStats() uint64 {
	return c.partial // want "field partial is read plainly"
}

// --- sharded-ring idiom ---------------------------------------------------

// workRing mirrors the §18 sharded ready ring: idle is the cross-shard
// parked-worker count, bumped and read only through the typed atomic; the
// per-shard wakeup slots are an array of typed atomics folded by index.
type workRing struct {
	idle   atomic.Int32
	shards []int
}

// Producers consult idle atomically before scanning siblings.
func (r *workRing) producerSkipsScan() bool { return r.idle.Load() == 0 }

func (r *workRing) park()   { r.idle.Add(1) }
func (r *workRing) unpark() { r.idle.Add(-1) }

// Reading the parked count as a value copies it out from under the workers.
func (r *workRing) rogueIdlePeek() {
	_ = r.idle // want "atomic-typed value r.idle copied or read"
}

// Zeroing the count by assignment at close is the non-atomic reset: a worker
// mid-park increments concurrently and the store tears.
func (r *workRing) rogueCloseReset() {
	r.idle = atomic.Int32{} // want "non-atomically"
}

// Per-shard wakeup counters: index folding (clamping an out-of-range shard
// into the last slot) keeps every access a method call on an element.
var shardWakeups [4]atomic.Uint64

func recordShardWakeup(idx int) {
	if idx >= len(shardWakeups) {
		idx = len(shardWakeups) - 1
	}
	shardWakeups[idx].Add(1)
}

// Snapshotting the whole array by value copies every slot non-atomically.
func rogueShardSnapshot() {
	_ = shardWakeups // want "atomic-typed value shardWakeups copied or read"
}
