// Fixture for the allocation-budget gate: a tiny package with known
// function extents, driven by a fake compiler-output runner in
// budget_test.go. Line positions matter only relatively — attribution is
// tested by matching fake diagnostics against these declarations.
package fixture

// Ring is a guarded hot type.
type Ring struct{ buf []int }

// Push is escape-free today; the fake runner pretends otherwise.
func (r *Ring) Push(v int) {
	r.buf[0] = v
}

// Grow allocates by design.
func Grow(n int) []int {
	out := make([]int, n)
	return out
}

// hook is a file-level closure: no FuncDecl, so escapes inside it attribute
// to no guarded function.
var hook = func() int {
	return len(make([]int, 8))
}
