// Fixture for the bufref analyzer: reference-counting discipline of the
// pooled *wire.Broadcast buffers. The clean functions mirror the real
// call-sites (repro.Integrate's Retain-then-enqueue fan-out, the
// EnqueueBroadcast ownership convention, ownership transfer into fields and
// channels); the rogue functions seed the defect classes the analyzer
// exists to catch.
package fixture

import (
	"repro/internal/causal"
	"repro/internal/core"
	"repro/internal/op"
	"repro/internal/wire"
)

// enqueue stands in for Sender.EnqueueBroadcast: it takes ownership of one
// reference per call.
func enqueue(bc *wire.Broadcast) {
	_ = bc
}

// --- clean patterns -------------------------------------------------------

// The fan-out idiom: one Retain per destination, each enqueue consumes one,
// the creator drops its own reference at the end. The loop body is
// reference-balanced, so tracking survives it.
func fanout(dests []int) error {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return err
	}
	for range dests {
		bc.Retain()
		enqueue(bc)
	}
	bc.Release()
	return nil
}

// Deferred release pairs with the acquisition on every path.
func deferredRelease() (int, error) {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return 0, err
	}
	defer bc.Release()
	return bc.WireSize(0, core.Timestamp{}), nil
}

// Storing into a field transfers ownership to the holder.
type holder struct{ bc *wire.Broadcast }

func stash(h *holder) error {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return err
	}
	h.bc = bc
	return nil
}

// Sending on a channel transfers ownership to the receiver.
func send(ch chan *wire.Broadcast) error {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return err
	}
	ch <- bc
	return nil
}

// Returning the buffer hands the caller the reference.
func create() (*wire.Broadcast, error) {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return nil, err
	}
	return bc, nil
}

// A callee handed a buffer owns at most one reference it may consume —
// either by releasing it on the refusal path or by passing it on.
func deliver(bc *wire.Broadcast, refused bool) {
	if refused {
		bc.Release()
		return
	}
	enqueue(bc)
}

// --- seeded defects -------------------------------------------------------

// Use after the last reference was dropped: the pool may already have
// recycled the buffer into another broadcast.
func rogueUseAfterRelease() int {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return 0
	}
	bc.Release()
	return bc.WireSize(0, core.Timestamp{}) // want "used after its last reference was dropped"
}

// Double release underflows the refcount and poisons the pool.
func rogueDoubleRelease() {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return
	}
	bc.Release()
	bc.Release() // want "Released again after its last reference was dropped"
}

// Passing the buffer to a consuming call transfers the only reference; the
// release that follows frees someone else's buffer.
func rogueConsumeThenRelease() {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return
	}
	enqueue(bc)
	bc.Release() // want "Released again after its last reference was dropped"
}

// Retaining a dead buffer resurrects pooled memory.
func rogueResurrect(bc *wire.Broadcast) {
	bc.Release()
	bc.Retain() // want "Retained after its last reference was dropped"
}

// A path that returns while still holding the acquired reference leaks the
// buffer (and its tail allocation) forever.
func rogueLeak() int {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return 0
	}
	n := bc.WireSize(0, core.Timestamp{})
	return n // want "still holds 1 reference"
}

// A borrowed buffer retained without a matching release leaks one reference
// per call.
func rogueRetainNoRelease(bc *wire.Broadcast) {
	bc.Retain()
	return // want "still holds 1 reference"
}

// Reassigning the variable while it still holds the old buffer drops the
// only handle to it.
func rogueReassign() {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return
	}
	bc, err = wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New()) // want "reassigned while still holding 1 reference"
	if err != nil {
		return
	}
	bc.Release()
}

// The poller write path: each reachable destination retains, and a
// destination that refuses delivery gets its reference refunded instead of
// enqueued (mirrors the terminal-error refund in the event-driven sender).
func fanoutWithRefusal(dests []int, down func(int) bool) error {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return err
	}
	for _, d := range dests {
		bc.Retain()
		if down(d) {
			bc.Release()
			continue
		}
		enqueue(bc)
	}
	bc.Release()
	return nil
}

// A flush round that arms nobody must still drop the creator's reference;
// the early return leaks the buffer past the flush forever.
func rogueIdleFlushLeak() int {
	bc, err := wire.NewBroadcast(causal.OpRef{}, causal.OpRef{}, op.New())
	if err != nil {
		return 0
	}
	if bc.WireSize(0, core.Timestamp{}) == 0 {
		return 0 // want "still holds 1 reference"
	}
	bc.Release()
	return 1
}
