// Fixture for the cachemut analyzer: composed-suffix cache fields may be
// mutated only from methods of the owning engine type. The type and field
// names mirror internal/core's cache layout.
package fixture

type opStub struct{ n int }

type deferredFold struct {
	op     *opStub
	maxSeq uint64
}

type clientState struct {
	bridge   []int
	comp     *opStub
	unfolded []deferredFold
	compHold bool
}

type Server struct {
	clients map[int]*clientState
}

type Client struct {
	pending   []int
	pcomp     *opStub
	punfolded []deferredFold
	pcompHold bool
}

// Mutations from the owning engine's methods are the sanctioned pattern.
func (s *Server) receive(st *clientState) {
	st.comp = &opStub{}
	st.unfolded = append(st.unfolded, deferredFold{})
	st.compHold = true
	clearFolds(&st.unfolded) // pointer handed out by the owner: legal
}

func (c *Client) integrate() {
	c.pcomp = &opStub{}
	c.punfolded = c.punfolded[:0]
	c.pcompHold = false
}

// A helper mutating through a pointer it was handed does not select the
// cache fields itself and stays clean.
func clearFolds(list *[]deferredFold) {
	for i := range *list {
		(*list)[i] = deferredFold{}
	}
	*list = (*list)[:0]
}

// A free function mutating the notifier-side cache bypasses the engine's
// serialization.
func rogueInvalidate(st *clientState) {
	st.comp = nil                                    // want "composed-cache field clientState.comp assigned in a free function"
	st.unfolded = append(st.unfolded, deferredFold{}) // want "composed-cache field clientState.unfolded assigned in a free function"
	st.compHold = true                               // want "composed-cache field clientState.compHold assigned in a free function"
}

// The wrong engine's method gets no ownership credit either.
func (c *Client) rogueCrossEngine(st *clientState) {
	st.comp = nil // want "composed-cache field clientState.comp assigned in a Client method"
}

func (s *Server) rogueClientSide(c *Client) {
	c.pcomp = nil // want "composed-cache field Client.pcomp assigned in a Server method"
}

// A function literal may outlive the call or run on another goroutine: it
// gets no credit from the enclosing owner method.
func (s *Server) rogueAsync(st *clientState) {
	go func() {
		st.compHold = false // want "composed-cache field clientState.compHold assigned in a free function or literal"
	}()
}

// Handing out a pointer from a non-owner lets the mutation escape.
func rogueAlias(st *clientState) *[]deferredFold {
	return &st.unfolded // want "composed-cache field clientState.unfolded address taken in a free function"
}

// Reads are always fine, from anywhere.
func observe(st *clientState, c *Client) (bool, int) {
	return st.compHold && c.pcompHold, len(st.unfolded) + len(c.punfolded)
}

// Non-cache fields on the same types are not the analyzer's business.
func untracked(st *clientState, c *Client) {
	st.bridge = nil
	c.pending = append(c.pending, 1)
}

// Unrelated types with colliding field names are untouched.
type other struct{ comp *opStub }

func unrelated(o *other) { o.comp = nil }
