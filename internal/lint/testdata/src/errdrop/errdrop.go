// Fixture for the errdrop analyzer: wire/transport/journal errors must not
// be silently discarded.
package fixture

import (
	"io"

	"repro/internal/journal"
	"repro/internal/transport"
	"repro/internal/wire"
)

func bareCall(conn transport.Conn, m wire.Msg) {
	conn.Send(m) // want "error result of transport.Send dropped"
}

func deferredClose(w *journal.Writer) {
	defer w.Close() // want "error result of deferred journal.Close dropped"
}

func goStatement(conn transport.Conn, m wire.Msg) {
	go conn.Send(m) // want "unobservable in go statement"
}

func blankedTuple(b []byte) wire.Msg {
	m, _ := wire.Decode(b) // want "error result of wire.Decode assigned to blank"
	return m
}

// explicitDiscard is visible at the call site and accepted by convention.
func explicitDiscard(conn transport.Conn, m wire.Msg) {
	_ = conn.Send(m)
}

// checked is the normal path.
func checked(w io.Writer, m wire.Msg) error {
	if _, err := wire.WriteFrame(w, m); err != nil {
		return err
	}
	return nil
}

// otherPackagesUnwatched: dropping errors from arbitrary packages is vet's
// business, not this analyzer's.
func otherPackagesUnwatched(c io.Closer) {
	c.Close()
}
