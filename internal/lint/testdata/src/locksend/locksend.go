// Fixture for the locksend analyzer: no mutex may be held across a channel
// send or blocking transport call.
package fixture

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

type notifier struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan wire.Msg
	conn transport.Conn

	reg  *obs.Registry
	ops  *obs.Counter
	lat  *obs.Histogram
	ring *obs.DecisionRing
}

func (n *notifier) deferHeld(m wire.Msg) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn.Send(m) // want "blocking transport.Send while n.mu is held"
}

func (n *notifier) chanHeld(m wire.Msg) {
	n.mu.Lock()
	n.ch <- m // want "channel send while n.mu is held"
	n.mu.Unlock()
}

func (n *notifier) rlockHeld() (wire.Msg, error) {
	n.rw.RLock()
	defer n.rw.RUnlock()
	return n.conn.Recv() // want "blocking transport.Recv while n.rw is held"
}

func (n *notifier) earlyReturnStaysHeld(m wire.Msg, closed bool) error {
	n.mu.Lock()
	if closed {
		n.mu.Unlock()
		return nil
	}
	defer n.mu.Unlock()
	return n.conn.Send(m) // want "blocking transport.Send while n.mu is held"
}

// unlockBeforeSend snapshots under the lock and sends outside it — the
// pattern sender.go exists to enable.
func (n *notifier) unlockBeforeSend(m wire.Msg) error {
	n.mu.Lock()
	q := []wire.Msg{m}
	n.mu.Unlock()
	for _, x := range q {
		if err := n.conn.Send(x); err != nil {
			return err
		}
	}
	return nil
}

// goroutineRunsUnlocked: the spawned body does not execute under the lock.
func (n *notifier) goroutineRunsUnlocked(m wire.Msg) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		_ = n.conn.Send(m)
	}()
}

// lockScopedToLoopBody: each iteration releases before the send.
func (n *notifier) lockScopedToLoopBody(msgs []wire.Msg) error {
	for _, m := range msgs {
		n.mu.Lock()
		n.mu.Unlock()
		if err := n.conn.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// registryLookupHeld: Registry.Counter locks the registry on a miss — the
// counter must be resolved before taking the engine lock.
func (n *notifier) registryLookupHeld() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg.Counter("ops.received").Inc() // want "lock-taking obs.Registry.Counter while n.mu is held"
}

// snapshotHeld: Snapshot walks the registry under its own mutex and invokes
// gauge closures that may want this very lock.
func (n *notifier) snapshotHeld() obs.Snapshot {
	n.rw.RLock()
	defer n.rw.RUnlock()
	return n.reg.Snapshot() // want "lock-taking obs.Registry.Snapshot while n.rw is held"
}

// ringRecordHeld: DecisionRing.Record takes the ring mutex.
func (n *notifier) ringRecordHeld() {
	n.mu.Lock()
	n.ring.Record(obs.Decision{Kind: obs.DServerCheck}) // want "lock-taking obs.DecisionRing.Record while n.mu is held"
	n.mu.Unlock()
}

// lockFreeRecordingAllowed: the atomic half of the obs API is exactly what
// hot paths are meant to call while locked.
func (n *notifier) lockFreeRecordingAllowed(depth int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ops.Inc()
	n.ops.Add(2)
	n.lat.RecordInt(depth)
	if n.ring.Enabled() {
		_ = n.reg.CounterNames()
	}
}

// resolveThenRecord: the blessed shape — registry lookups before the lock,
// recording inside it.
func (n *notifier) resolveThenRecord() {
	c := n.reg.Counter("ops.received")
	h := n.reg.Histogram("receive.ns")
	n.mu.Lock()
	c.Inc()
	h.Record(1)
	n.mu.Unlock()
}

// --- sharded ready ring (§18) ---------------------------------------------

// ringShard mirrors one shard of the work-stealing ready ring: a mutex, a
// condvar, and a queue of ready work.
type ringShard struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []wire.Msg
}

type shardedRing struct {
	shards []ringShard
}

// pushSignalsUnderLock: the wake-token handoff — a targeted Signal under the
// shard mutex is the §18 idiom and is not a blocking call.
func (r *shardedRing) pushSignalsUnderLock(i int, m wire.Msg) {
	sh := &r.shards[i]
	sh.mu.Lock()
	sh.q = append(sh.q, m)
	sh.cond.Signal()
	sh.mu.Unlock()
}

// drainHeld: servicing the popped item's connection while still holding the
// shard lock stalls every producer and stealer behind one slow peer.
func (r *shardedRing) drainHeld(n *notifier, i int) error {
	sh := &r.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return n.conn.Send(sh.q[0]) // want "blocking transport.Send while sh.mu is held"
}

// stealScanPopsThenServices: the blessed §18 shape — hold at most one shard
// lock at a time, pop under it, service the item outside every lock.
func (r *shardedRing) stealScanPopsThenServices(n *notifier) error {
	var m wire.Msg
	ok := false
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if len(sh.q) > 0 {
			m, ok = sh.q[0], true
			sh.q = sh.q[1:]
		}
		sh.mu.Unlock()
		if ok {
			break
		}
	}
	if !ok {
		return nil
	}
	return n.conn.Send(m)
}
