// Fixture for the nopanic analyzer: library code returns errors; only
// allowlisted unreachable guards may panic.
package fixture

import "errors"

func panics(x int) int {
	if x < 0 {
		panic("negative") // want "panic in library code"
	}
	return x
}

func allowlisted(x int) int {
	if x < 0 {
		//lint:allow nopanic: fixture — unreachable precondition guard
		panic("negative")
	}
	return x
}

func returnsError(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("negative")
	}
	return x, nil
}
