// Fixture for the opalias analyzer: an *op.Op reachable from a sent
// message must not be mutated after the send.
package fixture

import (
	"repro/internal/op"
	"repro/internal/transport"
	"repro/internal/wire"
)

func afterChannelSend(ch chan<- *op.Op) {
	o := op.New().Retain(1)
	ch <- o
	o.Insert("x") // want "mutated after the send"
}

func afterTransportSend(conn transport.Conn) error {
	o := op.New().Retain(2)
	m := wire.ClientOp{From: 1, Op: o}
	if err := conn.Send(m); err != nil {
		return err
	}
	o.Delete(1) // want "mutated after the send"
	return nil
}

func compositeInCall(conn transport.Conn) error {
	o := op.New().Retain(2)
	if err := conn.Send(wire.ClientOp{From: 1, Op: o}); err != nil {
		return err
	}
	o.Retain(3) // want "mutated after the send"
	return nil
}

func fieldAssign(ch chan<- wire.ServerOp) {
	o := op.New().Insert("hi")
	var m wire.ServerOp
	m.Op = o
	ch <- m
	o.Insert("!") // want "mutated after the send"
}

// buildBeforeSend is the correct order: every mutation precedes the send.
func buildBeforeSend(ch chan<- *op.Op) {
	o := op.New()
	o.Insert("hello")
	o.Retain(4)
	ch <- o
}

// cloneThenMutate is the documented escape hatch: mutate a deep copy.
func cloneThenMutate(conn transport.Conn) error {
	o := op.New().Retain(2)
	if err := conn.Send(wire.ClientOp{From: 1, Op: o}); err != nil {
		return err
	}
	p := o.Clone()
	p.Insert("x")
	return nil
}

// unrelatedOp is never aliased by the sent message.
func unrelatedOp(ch chan<- *op.Op) {
	a := op.New().Retain(1)
	b := op.New().Retain(1)
	ch <- a
	b.Insert("x")
}
