// Fixture for the tscompare analyzer: clock types may only be ordered by
// the formula-(5)/(7) helpers in internal/core.
package fixture

import "repro/internal/core"

func orderedFields(a, b core.Timestamp) bool {
	return a.T1 < b.T1 // want "ad-hoc < comparison on core.Timestamp.T1"
}

func structEquality(a, b core.Timestamp) bool {
	return a == b // want "ad-hoc == comparison on Timestamp"
}

func svField(sv core.ClientSV, n uint64) bool {
	return sv.Local > n // want "ad-hoc > comparison on core.ClientSV.Local"
}

func mixedOperands(t core.Timestamp, n uint64) bool {
	return n >= t.T2 // want "ad-hoc >= comparison on core.Timestamp.T2"
}

// throughHelpers is the sanctioned path: formula (5).
func throughHelpers(a, b core.Timestamp, fromServer bool) bool {
	return core.ConcurrentClient(a, b, fromServer)
}

// plainCounters are not clock components.
func plainCounters(x, y uint64) bool {
	return x < y
}

// suppressed demonstrates the driver-honored escape hatch.
func suppressed(a, b core.Timestamp) bool {
	//lint:allow tscompare: fixture — asserting equality in a test helper, not ordering
	return a.T2 == b.T2
}
