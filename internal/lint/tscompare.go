package lint

import (
	"go/ast"
	"go/token"
)

// TSCompare flags ad-hoc comparisons on the compressed clock types outside
// internal/core and internal/causal. Ordering two timestamps with == or <
// looks harmless but silently reimplements the concurrency relation the
// paper derives in formulas (4)–(7): T_Oa[1] and T_Ob[1] are counts taken at
// *different sites*, so componentwise comparison does not decide causality.
// All ordering must go through core.ConcurrentClient / core.ConcurrentServer
// (and their General variants), which encode the FIFO star-topology
// simplification correctly.
var TSCompare = &Analyzer{
	Name: "tscompare",
	Doc:  "ad-hoc ==/< comparison on Timestamp/ClientSV/ServerSV outside internal/core and internal/causal",
	Run:  runTSCompare,
}

// clockTypePkg exempts the packages that define and legitimately order the
// clock representations.
var tsCompareExempt = map[string]bool{
	"repro/internal/core":   true,
	"repro/internal/causal": true,
}

func runTSCompare(pass *Pass) {
	if tsCompareExempt[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !isComparison(be.Op) {
				return true
			}
			if name := pass.clockOperand(be.X); name != "" {
				pass.Reportf(be.OpPos, "ad-hoc %s comparison on %s; causality must be decided by the formula-(5)/(7) helpers in internal/core", be.Op, name)
				return true
			}
			if name := pass.clockOperand(be.Y); name != "" {
				pass.Reportf(be.OpPos, "ad-hoc %s comparison on %s; causality must be decided by the formula-(5)/(7) helpers in internal/core", be.Op, name)
			}
			return true
		})
	}
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// clockFields are the exported counters of the 2-element representations;
// comparing one of them is ordering a clock component.
var clockFields = map[string][]string{
	"Timestamp": {"T1", "T2"},
	"ClientSV":  {"FromServer", "Local"},
}

// clockOperand reports the clock type name involved in expr, or "": either
// the expression itself has a clock type, or it selects a clock counter
// field (e.g. ts.T1).
func (p *Pass) clockOperand(expr ast.Expr) string {
	expr = ast.Unparen(expr)
	if name := p.clockTypeName(expr); name != "" {
		return name
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	base := p.clockTypeName(sel.X)
	for _, field := range clockFields[base] {
		if sel.Sel.Name == field {
			return "core." + base + "." + field
		}
	}
	return ""
}

// clockTypeName returns the bare name of the clock type of expr, or "".
func (p *Pass) clockTypeName(expr ast.Expr) string {
	tv, ok := p.Info.Types[expr]
	if !ok {
		return ""
	}
	for _, name := range []string{"Timestamp", "ClientSV", "ServerSV"} {
		if isNamed(tv.Type, "repro/internal/core", name) {
			return name
		}
	}
	return ""
}
