package obs

import (
	"sync/atomic"
	"unsafe"
)

// counterShards is the number of independent cache lines a Counter spreads
// its increments over. A power of two so the shard pick is a mask, sized for
// the handful of writer goroutines a busy notifier actually runs (per-session
// engine goroutines plus connection writers), not for thousands.
const counterShards = 16

// cshard is one cache-line-sized slot of a Counter. The padding keeps
// neighbouring shards out of each other's cache line, which is the whole
// point of sharding: without it, 16 atomics in one array false-share exactly
// like a single contended word.
type cshard struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotone (or signed-delta) counter whose increments scale
// across goroutines: each Add lands on one of counterShards cache lines,
// picked from the caller's stack address, so concurrent writers almost never
// collide on a line. Add is lock-free, allocation-free, and a few
// nanoseconds; Load sums the shards and is intended for snapshots, not hot
// loops. The zero value is ready to use.
type Counter struct {
	shards [counterShards]cshard
}

// shardIndex picks a shard from the address of a caller stack slot.
// Goroutine stacks come from distinct allocations, so distinct goroutines
// hash to well-spread shards, while a single goroutine keeps hitting the
// same few lines (good locality). The uintptr conversion is one-way — no
// pointer is ever rebuilt from it — so it is safe under the Go memory model
// and vet's unsafeptr check.
func shardIndex() uintptr {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	// Stack slot addresses share low bits (frame alignment) and high bits
	// (arena); fold the middle bits, where stacks actually differ.
	p ^= p >> 17
	return (p >> 6) & (counterShards - 1)
}

// Add adds delta to the counter. Safe for concurrent use; never allocates.
func (c *Counter) Add(delta int64) {
	c.shards[shardIndex()].n.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value: the sum over all shards. It is atomic per
// shard, not across shards — concurrent adds may or may not be included,
// which is the usual (and sufficient) counter-snapshot semantics.
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}
