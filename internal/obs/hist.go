package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of fixed power-of-two buckets: bucket 0 holds
// the value 0 and bucket i (1..64) holds [2^(i-1), 2^i). The top bucket's
// range runs to MaxUint64, so it doubles as the overflow bucket — nothing is
// ever dropped.
const histBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram for latencies, queue
// depths, and sizes. Record is lock-free and allocation-free (three or four
// uncontended atomic operations), so it is safe on hot paths; Snapshot copies
// the buckets out into a mergeable value. Use NewHistogram — the zero value
// has an unset minimum.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // MaxUint64 until the first Record
	max     atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxUint64)
	return h
}

// bucketOf maps a value to its bucket index: 0 for 0, else bits.Len64 —
// the position of the highest set bit, i.e. ⌈log2(v+1)⌉.
func bucketOf(v uint64) int { return bits.Len64(v) }

// bucketLe returns the inclusive upper bound of bucket i.
func bucketLe(i int) uint64 {
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Record adds one observation. Safe for concurrent use; never allocates.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// RecordInt records a non-negative integer observation; negatives clamp to 0.
func (h *Histogram) RecordInt(v int) {
	if v < 0 {
		v = 0
	}
	h.Record(uint64(v))
}

// Since records the nanoseconds elapsed from start — the idiom for latency
// instrumentation: start := time.Now(); ...; h.Since(start).
func (h *Histogram) Since(start time.Time) {
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Snapshot copies the current state out. Per-bucket atomic, not globally
// consistent — an observation recorded during the copy may straddle the
// count and the sum, which snapshot consumers tolerate by construction.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Min: h.min.Load(), Max: h.max.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketLe(i), N: n})
			s.Count += n
		}
	}
	if s.Count == 0 {
		s.Min, s.Max, s.Sum = 0, 0, 0
	}
	return s
}

// Bucket is one non-empty histogram bucket: N observations with value
// <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistSnapshot is a point-in-time copy of a Histogram, carrying only the
// non-empty buckets. Snapshots merge associatively and commutatively —
// bucket bounds are fixed by the power-of-two scheme, so merging is
// bucket-wise addition — which is what lets per-session shards aggregate
// into one process view in any order.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Merge returns the combination of s and o, as if every observation behind
// both had been recorded into one histogram.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	out := HistSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Min:   s.Min,
		Max:   s.Max,
	}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	// Both bucket lists are sorted by Le; merge like sorted sequences.
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Le < o.Buckets[j].Le):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Le < s.Buckets[i].Le:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{Le: s.Buckets[i].Le, N: s.Buckets[i].N + o.Buckets[j].N})
			i++
			j++
		}
	}
	return out
}

// Delta returns the observations recorded between prev and s, where prev is
// an earlier snapshot of the same histogram: counts, sums, and buckets
// subtract bucket-wise. Min/Max cannot be windowed (the histogram only
// tracks lifetime extremes), so the delta keeps s's values as bounds.
// A prev that is not actually an ancestor (e.g. after a restart) underflows
// toward zero rather than wrapping. This is what turns the cumulative
// histograms into the per-poll windows the SLO flight recorder judges.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	if prev.Count == 0 {
		return s
	}
	if s.Count <= prev.Count {
		return HistSnapshot{}
	}
	out := HistSnapshot{Count: s.Count - prev.Count, Min: s.Min, Max: s.Max}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	prevN := make(map[uint64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevN[b.Le] = b.N
	}
	for _, b := range s.Buckets {
		if n := b.N - min(b.N, prevN[b.Le]); n > 0 {
			out.Buckets = append(out.Buckets, Bucket{Le: b.Le, N: n})
		}
	}
	return out
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (0..1) as the upper bound of the
// bucket the rank falls in, clamped to the observed min/max. Power-of-two
// buckets bound the error to 2x, which is the usual precision traded for a
// fixed-size lock-free histogram.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.N
		if seen >= rank {
			v := b.Le
			if v > s.Max {
				v = s.Max
			}
			if v < s.Min {
				v = s.Min
			}
			return v
		}
	}
	return s.Max
}
