package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zeroed: %+v", s)
	}
	if len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot has buckets: %+v", s.Buckets)
	}
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty stats nonzero: mean=%v p50=%v", s.Mean(), s.Quantile(0.5))
	}
	if got := s.Merge(HistSnapshot{}); got.Count != 0 {
		t.Fatalf("empty merge empty = %+v", got)
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 7; i++ {
		h.Record(5) // bucket [4,8) -> Le 7
	}
	s := h.Snapshot()
	if s.Count != 7 || s.Sum != 35 || s.Min != 5 || s.Max != 5 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].Le != 7 || s.Buckets[0].N != 7 {
		t.Fatalf("bad buckets: %+v", s.Buckets)
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// All ranks land in the only bucket; quantiles clamp to the observed value.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 5 {
			t.Fatalf("Quantile(%v) = %d, want 5", q, got)
		}
	}
}

func TestHistogramZeroValueBucket(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(0)
	s := h.Snapshot()
	if s.Count != 2 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].Le != 0 || s.Buckets[0].N != 2 {
		t.Fatalf("value 0 not in bucket 0: %+v", s.Buckets)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram()
	h.Record(math.MaxUint64)
	h.Record(1 << 63) // smallest value of the top bucket
	s := h.Snapshot()
	if s.Count != 2 || s.Max != math.MaxUint64 || s.Min != 1<<63 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].Le != math.MaxUint64 || s.Buckets[0].N != 2 {
		t.Fatalf("extremes not in overflow bucket: %+v", s.Buckets)
	}
	if got := s.Quantile(1); got != math.MaxUint64 {
		t.Fatalf("p100 = %d, want MaxUint64", got)
	}
}

func TestHistogramRecordIntClampsNegative(t *testing.T) {
	h := NewHistogram()
	h.RecordInt(-3)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("negative not clamped to 0: %+v", s)
	}
}

// TestHistogramConcurrent exercises Record and Snapshot concurrently; run
// under -race this is the data-race gate, and the final snapshot must account
// for every observation exactly once.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const writers, perWriter = 8, 2000
	var wWG, rWG sync.WaitGroup
	stop := make(chan struct{})
	rWG.Add(1)
	go func() { // concurrent reader
		defer rWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var n uint64
				for _, b := range s.Buckets {
					n += b.N
				}
				if n != s.Count {
					t.Errorf("snapshot bucket sum %d != count %d", n, s.Count)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(w int) {
			defer wWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(uint64(w*perWriter + i))
			}
		}(w)
	}
	wWG.Wait()
	close(stop)
	rWG.Wait()

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	if s.Min != 0 || s.Max != writers*perWriter-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, writers*perWriter-1)
	}
}

// TestHistogramMergeAssociative splits one stream of observations across
// three shards and checks that every merge order reproduces the single-shard
// snapshot — the property that makes per-session aggregation order-free.
func TestHistogramMergeAssociative(t *testing.T) {
	whole := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	vals := []uint64{0, 1, 2, 3, 7, 8, 100, 1023, 1024, 1 << 40, math.MaxUint64}
	for i, v := range vals {
		whole.Record(v)
		parts[i%3].Record(v)
	}
	want := whole.Snapshot()
	a, b, c := parts[0].Snapshot(), parts[1].Snapshot(), parts[2].Snapshot()

	orders := map[string]HistSnapshot{
		"(a+b)+c": a.Merge(b).Merge(c),
		"a+(b+c)": a.Merge(b.Merge(c)),
		"(c+a)+b": c.Merge(a).Merge(b),
		"c+(b+a)": c.Merge(b.Merge(a)),
	}
	for name, got := range orders {
		if !histEqual(got, want) {
			t.Errorf("%s = %+v, want %+v", name, got, want)
		}
	}
	// Merging an empty snapshot is the identity.
	if !histEqual(want.Merge(HistSnapshot{}), want) || !histEqual(HistSnapshot{}.Merge(want), want) {
		t.Errorf("empty merge is not identity")
	}
}

// TestHistogramMergeAssociativeAtBucketBoundaries stresses the merge at the
// power-of-two edges where bucket assignment flips: for every boundary 2^k,
// the values 2^k−1, 2^k, 2^k+1 land in different shards, and every merge
// order must agree with the unsharded histogram bucket-for-bucket.
func TestHistogramMergeAssociativeAtBucketBoundaries(t *testing.T) {
	whole := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	i := 0
	record := func(v uint64) {
		whole.Record(v)
		parts[i%3].Record(v)
		i++
	}
	for k := 1; k < 64; k++ {
		edge := uint64(1) << k
		record(edge - 1)
		record(edge)
		if edge+1 > edge { // skip the wrap at 2^64
			record(edge + 1)
		}
	}
	record(0)
	record(math.MaxUint64)

	want := whole.Snapshot()
	a, b, c := parts[0].Snapshot(), parts[1].Snapshot(), parts[2].Snapshot()
	orders := map[string]HistSnapshot{
		"(a+b)+c": a.Merge(b).Merge(c),
		"a+(b+c)": a.Merge(b.Merge(c)),
		"(b+c)+a": b.Merge(c).Merge(a),
		"c+(a+b)": c.Merge(a.Merge(b)),
	}
	for name, got := range orders {
		if !histEqual(got, want) {
			t.Errorf("%s = %+v, want %+v", name, got, want)
		}
	}
	// Quantiles of the merged form match the unsharded one at the edges.
	merged := a.Merge(b).Merge(c)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		if got, want := merged.Quantile(q), want.Quantile(q); got != want {
			t.Errorf("quantile(%v) = %d after merge, want %d", q, got, want)
		}
	}
}

// TestHistogramDelta pins the windowed-view arithmetic the flight recorder
// polls with: cur.Delta(prev) sees only the observations recorded between
// the two snapshots.
func TestHistogramDelta(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	h.Record(1000)
	prev := h.Snapshot()

	// No new observations: the window is empty.
	if d := h.Snapshot().Delta(prev); d.Count != 0 {
		t.Errorf("empty window count = %d, want 0", d.Count)
	}

	for i := 0; i < 10; i++ {
		h.Record(100)
	}
	d := h.Snapshot().Delta(prev)
	if d.Count != 10 {
		t.Errorf("window count = %d, want 10", d.Count)
	}
	if d.Sum != 1000 {
		t.Errorf("window sum = %d, want 1000", d.Sum)
	}
	// Every windowed observation was 100: one bucket, and the quantiles
	// reflect only the window (the old 1000 must not leak into p99).
	if len(d.Buckets) != 1 {
		t.Errorf("window buckets = %+v, want exactly one", d.Buckets)
	}
	if q := d.Quantile(0.99); q > 127 {
		t.Errorf("window p99 = %d, want within 100's bucket", q)
	}

	// Delta against an empty previous snapshot is the cumulative view.
	if d := h.Snapshot().Delta(HistSnapshot{}); d.Count != 12 {
		t.Errorf("delta from empty = %d observations, want 12", d.Count)
	}
}

func histEqual(a, b HistSnapshot) bool {
	if a.Count != b.Count || a.Sum != b.Sum || a.Min != b.Min || a.Max != b.Max || len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return false
		}
	}
	return true
}

func TestHistogramQuantileAcrossBuckets(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Record(10) // bucket Le=15
	}
	for i := 0; i < 10; i++ {
		h.Record(1000) // bucket Le=1023
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 15 {
		t.Fatalf("p50 = %d, want 15", got)
	}
	if got := s.Quantile(0.95); got != 1000 { // clamped to Max
		t.Fatalf("p95 = %d, want 1000 (bucket Le clamped to max)", got)
	}
}
