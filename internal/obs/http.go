package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// NewHandler builds the debug endpoint a server mounts behind -debug:
//
//	/metricz  current Snapshot; plain text by default, JSON with
//	          ?format=json (cvcstat's poll target)
//	/tracez   GET dumps the causality-decision ring as JSONL (?limit=N);
//	          POST ?enable=true|false toggles recording
//	/debug/pprof/*  net/http/pprof profiles
//	/debug/vars     expvar, including the snapshot under the key "cvc"
//
// snap is called per request and must be safe for concurrent use; ring may be
// nil, which turns /tracez into a 404. Options add endpoints owned by other
// packages (WithEndpoint) and the /healthz probe (WithHealth).
func NewHandler(snap func() Snapshot, ring *DecisionRing, opts ...HandlerOption) http.Handler {
	var cfg handlerConfig
	for _, o := range opts {
		o(&cfg)
	}
	publishExpvar(snap)
	mux := http.NewServeMux()
	for _, ep := range cfg.endpoints {
		mux.Handle(ep.path, ep.h)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.ready == nil {
			fmt.Fprintln(w, "ok")
			return
		}
		ok, detail := cfg.ready()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unavailable %s\n", detail)
			return
		}
		fmt.Fprintf(w, "ok %s\n", detail)
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, req *http.Request) {
		s := snap()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(s)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var b strings.Builder
		writeSnapshotText(&b, s, "")
		_, _ = w.Write([]byte(b.String()))
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, req *http.Request) {
		if ring == nil {
			http.NotFound(w, req)
			return
		}
		switch req.Method {
		case http.MethodPost:
			on, err := strconv.ParseBool(req.URL.Query().Get("enable"))
			if err != nil {
				http.Error(w, "tracez: POST needs ?enable=true|false", http.StatusBadRequest)
				return
			}
			ring.SetEnabled(on)
			fmt.Fprintf(w, "trace enabled=%v total=%d\n", ring.Enabled(), ring.Total())
		default:
			limit := 0
			if q := req.URL.Query().Get("limit"); q != "" {
				n, err := strconv.Atoi(q)
				if err != nil || n < 0 {
					http.Error(w, "tracez: bad limit", http.StatusBadRequest)
					return
				}
				limit = n
			}
			w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
			_ = ring.WriteJSONL(w, limit)
		}
	})
	// The default-mux pprof handlers, mounted explicitly so this handler works
	// on any mux without importing for side effects.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "cvc debug endpoints:\n  /metricz (?format=json)\n  /tracez (?limit=N; POST ?enable=bool)\n  /healthz\n  /debug/pprof/\n  /debug/vars\n")
		for _, ep := range cfg.endpoints {
			fmt.Fprintf(w, "  %s\n", ep.path)
		}
	})
	return mux
}

// HandlerOption extends NewHandler's endpoint set.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	endpoints []struct {
		path string
		h    http.Handler
	}
	ready func() (bool, string)
}

// WithEndpoint mounts h at path — how packages that obs cannot import (the
// span tracer's /spanz) join the debug mux.
func WithEndpoint(path string, h http.Handler) HandlerOption {
	return func(c *handlerConfig) {
		c.endpoints = append(c.endpoints, struct {
			path string
			h    http.Handler
		}{path, h})
	}
}

// WithHealth installs a readiness probe behind /healthz: ready returns
// whether the process should receive traffic plus a human detail string
// (e.g. the session count). Without this option /healthz reports liveness
// only — a flat 200 "ok".
func WithHealth(ready func() (bool, string)) HandlerOption {
	return func(c *handlerConfig) { c.ready = ready }
}

// expvar.Publish panics on duplicate names and has no Unpublish, so the "cvc"
// var is published once per process and indirects through an atomic holding
// the most recent handler's snapshot func.
var (
	expvarOnce sync.Once
	expvarSnap atomic.Value // func() Snapshot
)

func publishExpvar(snap func() Snapshot) {
	expvarSnap.Store(snap)
	expvarOnce.Do(func() {
		expvar.Publish("cvc", expvar.Func(func() any {
			return expvarSnap.Load().(func() Snapshot)()
		}))
	})
}

// writeSnapshotText renders a snapshot as indented "name value" lines —
// the human side of /metricz.
func writeSnapshotText(b *strings.Builder, s Snapshot, indent string) {
	name := s.Name
	if name == "" {
		name = "(root)"
	}
	fmt.Fprintf(b, "%s# %s\n", indent, name)
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(b, "%s%-28s %d\n", indent, k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(b, "%s%-28s %d\n", indent, k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Hists) {
		h := s.Hists[k]
		fmt.Fprintf(b, "%s%-28s count=%d mean=%.1f min=%d p50=%d p99=%d max=%d\n",
			indent, k, h.Count, h.Mean(), h.Min, h.Quantile(0.5), h.Quantile(0.99), h.Max)
	}
	for _, c := range s.Children {
		writeSnapshotText(b, c, indent+"  ")
	}
}
