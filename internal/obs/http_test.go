package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestHandler(t *testing.T) (*Registry, *DecisionRing, *httptest.Server) {
	t.Helper()
	reg := NewRegistry("notifier")
	reg.Counter("sender.msgs").Add(12)
	reg.Gauge("conn.queue.highwater", func() int64 { return 3 })
	reg.Child("doc").Counter("ops.integrated").Add(5)
	reg.Child("doc").Histogram("receive.ns").Record(1500)
	ring := NewDecisionRing(16)
	srv := httptest.NewServer(NewHandler(reg.Snapshot, ring))
	t.Cleanup(srv.Close)
	return reg, ring, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetriczText(t *testing.T) {
	_, _, srv := newTestHandler(t)
	code, body := get(t, srv.URL+"/metricz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"# notifier", "sender.msgs", "12", "conn.queue.highwater", "# doc", "ops.integrated", "receive.ns", "count=1"} {
		if !strings.Contains(body, want) {
			t.Errorf("text body missing %q:\n%s", want, body)
		}
	}
}

func TestMetriczJSON(t *testing.T) {
	_, _, srv := newTestHandler(t)
	code, body := get(t, srv.URL+"/metricz?format=json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if s.Name != "notifier" || s.Counters["sender.msgs"] != 12 || s.Gauges["conn.queue.highwater"] != 3 {
		t.Fatalf("snapshot = %+v", s)
	}
	doc, ok := s.Child("doc")
	if !ok || doc.Counters["ops.integrated"] != 5 || doc.Hists["receive.ns"].Count != 1 {
		t.Fatalf("doc child = %+v ok=%v", doc, ok)
	}
}

func TestTracezToggleAndDump(t *testing.T) {
	_, ring, srv := newTestHandler(t)

	// Initially disabled; a record is dropped.
	ring.Record(Decision{Site: 1})

	resp, err := http.Post(srv.URL+"/tracez?enable=true", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ring.Enabled() {
		t.Fatal("POST enable=true did not enable")
	}
	ring.Record(Decision{Kind: DServerCheck, Site: 4, T1: 10, T2: 2, Index: 0, Concurrent: true})
	ring.Record(Decision{Kind: DServerIntegrate, Site: 4, T1: 10, T2: 2, Index: -1, Checks: 1, NConc: 1, Transforms: 1})

	code, body := get(t, srv.URL+"/tracez")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	var n int
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("got %d trace lines, want 2:\n%s", n, body)
	}

	if code, body := get(t, srv.URL+"/tracez?limit=1"); code != http.StatusOK || strings.Count(body, "\n") != 1 {
		t.Fatalf("limit=1: code=%d body=%q", code, body)
	}
	if code, _ := get(t, srv.URL+"/tracez?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad limit accepted: %d", code)
	}

	resp, err = http.Post(srv.URL+"/tracez?enable=false", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ring.Enabled() {
		t.Fatal("POST enable=false did not disable")
	}
	if resp, err := http.Post(srv.URL+"/tracez", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST without enable: %d", resp.StatusCode)
		}
	}
}

func TestTracezNilRing(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry("x").Snapshot, nil))
	defer srv.Close()
	if code, _ := get(t, srv.URL+"/tracez"); code != http.StatusNotFound {
		t.Fatalf("nil-ring /tracez = %d, want 404", code)
	}
}

func TestDebugVarsAndPprof(t *testing.T) {
	_, _, srv := newTestHandler(t)
	code, body := get(t, srv.URL+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "\"cvc\"") {
		t.Fatalf("/debug/vars code=%d, cvc published=%v", code, strings.Contains(body, "\"cvc\""))
	}
	if code, body := get(t, srv.URL+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ code=%d", code)
	}
	if code, _ := get(t, srv.URL+"/"); code != http.StatusOK {
		t.Fatalf("index code=%d", code)
	}
	if code, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path code=%d", code)
	}
}

// TestHealthz covers the liveness default (no probe: flat 200) and the
// readiness probe (200 with detail when ready, 503 when not).
func TestHealthz(t *testing.T) {
	_, _, srv := newTestHandler(t)
	if code, body := get(t, srv.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("liveness /healthz = %d %q, want 200 ok", code, body)
	}

	ready := true
	probed := httptest.NewServer(NewHandler(NewRegistry("x").Snapshot, nil,
		WithHealth(func() (bool, string) { return ready, "sessions=2" })))
	defer probed.Close()
	if code, body := get(t, probed.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "sessions=2") {
		t.Fatalf("ready /healthz = %d %q, want 200 with detail", code, body)
	}
	ready = false
	if code, body := get(t, probed.URL+"/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "unavailable") {
		t.Fatalf("unready /healthz = %d %q, want 503", code, body)
	}
}

// TestWithEndpoint mounts an extra handler (the way /spanz joins the debug
// mux) and checks it serves and is listed on the index page.
func TestWithEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry("x").Snapshot, nil,
		WithEndpoint("/spanz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte("3 spans"))
		}))))
	defer srv.Close()
	if code, body := get(t, srv.URL+"/spanz"); code != http.StatusOK || body != "3 spans" {
		t.Fatalf("/spanz = %d %q", code, body)
	}
	if _, body := get(t, srv.URL+"/"); !strings.Contains(body, "/spanz") {
		t.Fatalf("index does not list /spanz:\n%s", body)
	}
	if _, body := get(t, srv.URL+"/"); !strings.Contains(body, "/healthz") {
		t.Fatalf("index does not list /healthz:\n%s", body)
	}
}
