package obs

// Canonical metric names. DESIGN.md §12 is the catalogue (units and
// semantics); TestMetricsCatalog in internal/server asserts that a fully
// wired notifier exposes exactly these names, so renames must touch both.
//
// Naming scheme: lowercase dotted paths, "component.metric[.detail]".
// Engine counters recorded through trace.Metrics keep their historical names
// (ops.generated, checks.total, ...) declared in internal/trace.
const (
	// HReceiveNs is the per-session histogram of notifier engine latency in
	// nanoseconds: one Receive from arrival through formula-(7) checks,
	// transformation, execution, and broadcast fan-out enqueue.
	HReceiveNs = "receive.ns"

	// HQueueDepth is the histogram of outbound writer-queue depth observed
	// at every enqueue across all connections — the live distribution behind
	// the QueueHighWater maximum.
	HQueueDepth = "conn.queue.depth"

	// GQueueHighWater is the deepest any live connection's outbound queue
	// has ever been (Sender.HighWater maximum over connections).
	GQueueHighWater = "conn.queue.highwater"

	// Per-session engine gauges, evaluated on the session goroutine while
	// resident and from the frozen park-time view while dehydrated.
	GSites      = "sites"          // currently joined sites
	GOpsRecv    = "ops.received"   // operations received over the lifetime
	GDocRunes   = "doc.runes"      // document length in runes
	GHBLen      = "hb.len"         // history-buffer entries alive
	GClockWords = "hb.clock_words" // clock words kept to timestamp the HB (E4)

	// GGoroutines is the process goroutine count (runtime.NumGoroutine) —
	// the headline the goroutine-lean connection layer is judged by: it must
	// stay O(pool + resident sessions), not O(connections) (E13).
	GGoroutines = "runtime.goroutines"

	// Runtime memory gauges (runtime.ReadMemStats, sampled per snapshot):
	// live heap bytes, the most recent GC pause, and the GC cycle count.
	// Together with receive.ns they let cvcstat correlate latency spikes
	// with collection activity.
	GHeapBytes = "runtime.heap_bytes"
	GGCPauseNs = "runtime.gc_pause_ns"
	GNumGC     = "runtime.num_gc"

	// GResident is the per-session residency bit: 1 while the session holds
	// a live engine + goroutine, 0 while dehydrated (or closed). Per-session
	// dashboards (cvcstat) render it as the res column.
	GResident = "resident"

	// Fleet residency metrics (the manager's idle-dehydration state):
	// resident sessions hold a goroutine + live engine, dehydrated ones only
	// a compact checkpoint; rehydrations counts transparent restores.
	GSessionsResident    = "sessions.resident"
	GSessionsDehydrated  = "sessions.dehydrated"
	CSessionRehydrations = "sessions.rehydrations"

	// Process-wide sender counters (internal/transport): coalescing ratio is
	// sender.msgs / sender.flushes.
	CSenderMsgs    = "sender.msgs"    // messages drained from writer queues
	CSenderFlushes = "sender.flushes" // write+flush rounds those drains took

	// Process-wide TCP write-side counters (internal/transport).
	CTCPBytes   = "tcp.bytes_sent" // frame bytes written to TCP conns
	CTCPFlushes = "tcp.flushes"    // bufio flushes on TCP conns

	// Process-wide readiness-poller metrics (internal/transport/netpoll).
	// poller.wakeups counts epoll_wait returns, poller.events_per_wait is
	// the histogram of how many events each return carried (their product
	// is total events — the amortization the poller exists for),
	// poller.rearm counts EPOLLOUT re-arms after short writes, and
	// conn.partial_reads counts read rounds that ended on an incomplete
	// frame held in the reassembly buffer.
	CPollerWakeups       = "poller.wakeups"
	HPollerEventsPerWait = "poller.events_per_wait"
	CPollerRearm         = "poller.rearm"
	CConnPartialReads    = "conn.partial_reads"

	// Sharded-scheduling metrics (internal/transport, DESIGN.md §18).
	// dispatch.steals counts ready-ring pops a worker took from a sibling
	// shard (Dispatcher and WriterPool combined); dispatch.shard.depth is
	// the histogram of per-shard queue depth observed at every push;
	// fanout.parallel counts broadcasts scattered across pool workers
	// instead of enqueued serially.
	CDispatchSteals     = "dispatch.steals"
	CFanoutParallel     = "fanout.parallel"
	HDispatchShardDepth = "dispatch.shard.depth"

	// Per-shard epoll wakeup counters (internal/transport/netpoll). Fixed
	// names for shard indexes 0..3 — the default shard count is capped at 4,
	// and fixing the set keeps the metrics catalogue box-independent; shards
	// beyond 15 fold into the last slot of the backing array.
	CPollerShard0Wakeups = "poller.shard.wakeups.0"
	CPollerShard1Wakeups = "poller.shard.wakeups.1"
	CPollerShard2Wakeups = "poller.shard.wakeups.2"
	CPollerShard3Wakeups = "poller.shard.wakeups.3"

	// Process-wide wire encode counters (internal/wire). Per-type frame and
	// byte counters are named wire.frames.<type> / wire.bytes.<type> with
	// the type names in wire.TypeName.
	CWireEncodes = "wire.serverop_encodes" // ServerOp tail encodes (1 per broadcast)
	CWireOps     = "wire.ops_sent"         // server ops framed toward destinations (a K-op batch counts K)
)
