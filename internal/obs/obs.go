// Package obs is the live observability core of the group editor: sharded
// lock-free counters, fixed-bucket latency histograms, a bounded
// causality-decision trace ring, and a Registry that aggregates all of it —
// per session and process-wide — into mergeable snapshots served over HTTP
// (/metricz, /tracez; see http.go).
//
// The paper's claims are quantitative (constant 2-integer timestamps, O(HB)
// concurrency checks regardless of N), so the runtime must be able to show
// those quantities live without perturbing them: every recording primitive
// here is allocation-free and at most a few atomic operations on its fast
// path, benchmark-gated by obs_test.go. Lock-taking operations (registration,
// snapshots, trace dumps) are cold-path only, and cvclint's locksend analyzer
// forbids calling them while an engine mutex is held.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry names and owns a set of metrics. Counter/Histogram are
// get-or-create with a lock-free hit path (copy-on-write maps), so resolving
// a metric by name is cheap — though hot paths should still resolve once and
// keep the pointer. Gauges and counter funcs adapt externally-owned state
// (engine sizes, process-wide atomic counters) into snapshots; children give
// each document session its own namespace under a shared parent.
//
// All methods are safe for concurrent use. Registration takes the registry
// mutex; reads and increments never do.
type Registry struct {
	name string

	counters atomic.Value // map[string]*Counter, copy-on-write
	hists    atomic.Value // map[string]*Histogram, copy-on-write

	mu           sync.Mutex
	gauges       map[string]func() int64
	counterFuncs map[string]func() int64
	children     map[string]*Registry
}

// NewRegistry returns an empty registry with the given display name.
func NewRegistry(name string) *Registry {
	r := &Registry{
		name:         name,
		gauges:       make(map[string]func() int64),
		counterFuncs: make(map[string]func() int64),
		children:     make(map[string]*Registry),
	}
	r.counters.Store(map[string]*Counter{})
	r.hists.Store(map[string]*Histogram{})
	return r
}

// Name returns the registry's display name.
func (r *Registry) Name() string { return r.name }

// Counter returns the named counter, creating it on first use. The hit path
// is one atomic map load — no lock, no allocation.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters.Load().(map[string]*Counter)[name]; ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.counters.Load().(map[string]*Counter)
	if c, ok := old[name]; ok { // lost the creation race
		return c
	}
	c := &Counter{}
	next := make(map[string]*Counter, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = c
	r.counters.Store(next)
	return c
}

// LoadCounter returns the named counter without creating it.
func (r *Registry) LoadCounter(name string) (*Counter, bool) {
	c, ok := r.counters.Load().(map[string]*Counter)[name]
	return c, ok
}

// CounterNames returns the names of all materialized counters, sorted
// (counter funcs are not included — they live with their owners).
func (r *Registry) CounterNames() []string {
	return sortedKeys(r.counters.Load().(map[string]*Counter))
}

// Histogram returns the named histogram, creating it on first use. The hit
// path is one atomic map load.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists.Load().(map[string]*Histogram)[name]; ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.hists.Load().(map[string]*Histogram)
	if h, ok := old[name]; ok {
		return h
	}
	h := NewHistogram()
	next := make(map[string]*Histogram, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = h
	r.hists.Store(next)
	return h
}

// Gauge registers a point-in-time value evaluated at snapshot time — the
// adapter for state owned elsewhere (history-buffer length, joined sites,
// queue high-water). fn must be safe to call from any goroutine; it runs
// with no registry lock held, so it may itself take locks.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// CounterFunc registers an externally-owned monotone counter (e.g. a
// package-level atomic in wire or transport) under this registry's
// namespace. It appears among the counters in snapshots but is read through
// fn, which runs with no registry lock held.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.counterFuncs[name] = fn
	r.mu.Unlock()
}

// Child returns the named sub-registry, creating it on first use. Children
// appear in the parent's Snapshot; the multi-session server gives every
// document session one.
func (r *Registry) Child(name string) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.children[name]; ok {
		return c
	}
	c := NewRegistry(name)
	r.children[name] = c
	return c
}

// DropChild removes the named sub-registry (e.g. when a session is dropped).
func (r *Registry) DropChild(name string) {
	r.mu.Lock()
	delete(r.children, name)
	r.mu.Unlock()
}

// Snapshot captures every counter, gauge, and histogram of this registry and
// its children. Gauge and counter funcs are invoked after the registry lock
// is released, so they may take their own locks without ordering hazards.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Name: r.name}

	counters := r.counters.Load().(map[string]*Counter)
	hists := r.hists.Load().(map[string]*Histogram)

	r.mu.Lock()
	gauges := make(map[string]func() int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	cfuncs := make(map[string]func() int64, len(r.counterFuncs))
	for k, v := range r.counterFuncs {
		cfuncs[k] = v
	}
	children := make([]*Registry, 0, len(r.children))
	for _, c := range r.children {
		children = append(children, c)
	}
	r.mu.Unlock()

	if len(counters)+len(cfuncs) > 0 {
		s.Counters = make(map[string]int64, len(counters)+len(cfuncs))
		for name, c := range counters {
			s.Counters[name] = c.Load()
		}
		for name, fn := range cfuncs {
			s.Counters[name] = fn()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for name, fn := range gauges {
			s.Gauges[name] = fn()
		}
	}
	if len(hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(hists))
		for name, h := range hists {
			s.Hists[name] = h.Snapshot()
		}
	}
	for _, c := range children {
		s.Children = append(s.Children, c.Snapshot())
	}
	sort.Slice(s.Children, func(i, j int) bool { return s.Children[i].Name < s.Children[j].Name })
	return s
}

// Snapshot is a point-in-time copy of a Registry tree — the JSON body of
// /metricz and the input of cvcstat's tables.
type Snapshot struct {
	Name     string                  `json:"name,omitempty"`
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
	Children []Snapshot              `json:"children,omitempty"`
}

// Child returns the named child snapshot, if present.
func (s Snapshot) Child(name string) (Snapshot, bool) {
	for _, c := range s.Children {
		if c.Name == name {
			return c, true
		}
	}
	return Snapshot{}, false
}

// Merge combines two snapshots: counters and gauges add, histograms merge
// bucket-wise, children with equal names merge recursively. Adding gauges is
// the useful aggregate for the gauges this system exposes (sites, ops,
// buffer sizes across session shards); it is not meaningful for every
// conceivable gauge, which is why Merge lives on Snapshot — callers choose
// when to aggregate.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{Name: s.Name}
	out.Counters = mergeInt64(s.Counters, o.Counters)
	out.Gauges = mergeInt64(s.Gauges, o.Gauges)
	if len(s.Hists)+len(o.Hists) > 0 {
		out.Hists = make(map[string]HistSnapshot, len(s.Hists)+len(o.Hists))
		for k, v := range s.Hists {
			out.Hists[k] = v
		}
		for k, v := range o.Hists {
			out.Hists[k] = out.Hists[k].Merge(v)
		}
	}
	byName := make(map[string]int, len(s.Children))
	for _, c := range s.Children {
		byName[c.Name] = len(out.Children)
		out.Children = append(out.Children, c)
	}
	for _, c := range o.Children {
		if i, ok := byName[c.Name]; ok {
			out.Children[i] = out.Children[i].Merge(c)
		} else {
			out.Children = append(out.Children, c)
		}
	}
	sort.Slice(out.Children, func(i, j int) bool { return out.Children[i].Name < out.Children[j].Name })
	return out
}

// Aggregate folds every child into one flat snapshot (plus the parent's own
// metrics) — the "all sessions" row of cvcstat.
func (s Snapshot) Aggregate() Snapshot {
	out := Snapshot{Name: s.Name, Counters: s.Counters, Gauges: s.Gauges, Hists: s.Hists}
	for _, c := range s.Children {
		flat := c.Aggregate()
		flat.Children = nil
		flat.Name = out.Name
		out = out.Merge(flat)
	}
	return out
}

func mergeInt64(a, b map[string]int64) map[string]int64 {
	if len(a)+len(b) == 0 {
		return nil
	}
	out := make(map[string]int64, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] += v
	}
	return out
}

// sortedKeys returns the keys of m in sorted order (text rendering).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
