package obs

import (
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero counter = %d", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Add(-2)
	if got := c.Load(); got != 40 {
		t.Fatalf("counter = %d, want 40", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, per = 16, 10000
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < per; i++ {
				c.Inc()
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	if got := c.Load(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry("test")
	r.Counter("a").Add(3)
	r.Counter("a").Add(4) // same counter
	if c, ok := r.LoadCounter("a"); !ok || c.Load() != 7 {
		t.Fatalf("LoadCounter(a) = %v ok=%v", c, ok)
	}
	if _, ok := r.LoadCounter("missing"); ok {
		t.Fatalf("LoadCounter created a counter")
	}
	r.Gauge("g", func() int64 { return 11 })
	r.CounterFunc("cf", func() int64 { return 5 })
	r.Histogram("h").Record(9)
	s := r.Snapshot()
	if s.Name != "test" || s.Counters["a"] != 7 || s.Counters["cf"] != 5 || s.Gauges["g"] != 11 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if s.Hists["h"].Count != 1 || s.Hists["h"].Max != 9 {
		t.Fatalf("bad hist snapshot: %+v", s.Hists["h"])
	}
}

func TestRegistryChildren(t *testing.T) {
	r := NewRegistry("root")
	a := r.Child("a")
	if r.Child("a") != a {
		t.Fatalf("Child not idempotent")
	}
	a.Counter("x").Inc()
	r.Child("b").Counter("x").Add(2)

	s := r.Snapshot()
	if len(s.Children) != 2 || s.Children[0].Name != "a" || s.Children[1].Name != "b" {
		t.Fatalf("children = %+v", s.Children)
	}
	if ca, ok := s.Child("a"); !ok || ca.Counters["x"] != 1 {
		t.Fatalf("child a = %+v ok=%v", ca, ok)
	}

	agg := s.Aggregate()
	if agg.Counters["x"] != 3 {
		t.Fatalf("aggregate x = %d, want 3", agg.Counters["x"])
	}

	r.DropChild("a")
	if got := len(r.Snapshot().Children); got != 1 {
		t.Fatalf("after drop, %d children", got)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry("n")
	a.Counter("c").Add(1)
	a.Histogram("h").Record(4)
	a.Child("s1").Counter("c").Add(10)
	b := NewRegistry("n")
	b.Counter("c").Add(2)
	b.Histogram("h").Record(8)
	b.Child("s1").Counter("c").Add(20)
	b.Child("s2").Counter("c").Add(100)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["c"] != 3 {
		t.Fatalf("merged c = %d", m.Counters["c"])
	}
	if m.Hists["h"].Count != 2 || m.Hists["h"].Min != 4 || m.Hists["h"].Max != 8 {
		t.Fatalf("merged h = %+v", m.Hists["h"])
	}
	s1, _ := m.Child("s1")
	s2, _ := m.Child("s2")
	if s1.Counters["c"] != 30 || s2.Counters["c"] != 100 {
		t.Fatalf("merged children: s1=%+v s2=%+v", s1, s2)
	}
}

// TestFastPathAllocFree is the check-gate for the ISSUE's core promise: every
// hot-path recording primitive performs zero allocations per operation.
// testing.AllocsPerRun is deterministic, unlike nanosecond thresholds, so it
// can gate CI; the <50ns/op target is reported by the benchmarks below.
func TestFastPathAllocFree(t *testing.T) {
	r := NewRegistry("alloc")
	c := r.Counter("c")
	h := r.Histogram("h")
	ring := NewDecisionRing(8) // disabled: the hot-path state
	start := time.Now()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Counter.Load", func() { _ = c.Load() }},
		{"Registry.Counter(hit)", func() { r.Counter("c").Inc() }},
		{"Histogram.Record", func() { h.Record(123) }},
		{"Histogram.RecordInt", func() { h.RecordInt(7) }},
		{"Histogram.Since", func() { h.Since(start) }},
		{"Registry.Histogram(hit)", func() { r.Histogram("h").Record(1) }},
		{"DecisionRing.Enabled", func() { _ = ring.Enabled() }},
		{"DecisionRing.Record(disabled)", func() { ring.Record(Decision{Site: 1}) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s allocates %.1f allocs/op, want 0", tc.name, n)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Load() != int64(b.N) {
		b.Fatal("lost increments")
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Load() != int64(b.N) {
		b.Fatal("lost increments")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i uint64
		for pb.Next() {
			i++
			h.Record(i)
		}
	})
}

func BenchmarkRingDisabledRecord(b *testing.B) {
	ring := NewDecisionRing(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ring.Enabled() {
			ring.Record(Decision{Site: i})
		}
	}
}
