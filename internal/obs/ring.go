package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// DecisionKind tags a causality-decision trace record.
type DecisionKind uint8

// Decision kinds: per-entry concurrency verdicts and per-arrival summaries,
// for both clock formulas of the paper.
const (
	// DClientCheck is one client formula-(5) verdict against one
	// history-buffer entry.
	DClientCheck DecisionKind = iota + 1
	// DServerCheck is one server formula-(7) verdict against one
	// history-buffer entry.
	DServerCheck
	// DClientIntegrate summarizes one client integration: checks run,
	// concurrent entries found, transformations performed.
	DClientIntegrate
	// DServerIntegrate summarizes one server Receive the same way.
	DServerIntegrate
)

// String names the kind (also its JSON encoding).
func (k DecisionKind) String() string {
	switch k {
	case DClientCheck:
		return "client.check"
	case DServerCheck:
		return "server.check"
	case DClientIntegrate:
		return "client.integrate"
	case DServerIntegrate:
		return "server.integrate"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind by name.
func (k DecisionKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind name (the ablation replayer reads dumps back).
func (k *DecisionKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for _, cand := range []DecisionKind{DClientCheck, DServerCheck, DClientIntegrate, DServerIntegrate} {
		if cand.String() == s {
			*k = cand
			return nil
		}
	}
	return fmt.Errorf("unknown decision kind %q", s)
}

// Decision is one causality-decision trace record: which site's operation,
// under which compressed timestamp, was checked against which history-buffer
// entry, and what the clock concluded. Summary records (D*Integrate) carry
// Index -1 and fill Checks/NConcurrent/Transforms instead — together they
// are the forensic record the §6 misclassification ablation replays.
type Decision struct {
	Seq     uint64       `json:"seq"`
	Kind    DecisionKind `json:"kind"`
	Session string       `json:"session,omitempty"` // document session ("" = default)
	Site    int          `json:"site"`              // origin site of the arriving operation
	T1      uint64       `json:"t1"`                // arriving compressed timestamp
	T2      uint64       `json:"t2"`

	// Per-check fields (DClientCheck/DServerCheck).
	Index      int  `json:"hb"` // history-buffer index checked; -1 in summaries
	Concurrent bool `json:"concurrent"`

	// Summary fields (DClientIntegrate/DServerIntegrate).
	Checks     int `json:"checks,omitempty"`      // entries checked
	NConc      int `json:"nconcurrent,omitempty"` // entries found concurrent
	Transforms int `json:"transforms,omitempty"`  // inclusion transformations performed
}

// DecisionRing is a bounded ring buffer of Decisions behind an atomic enable
// flag. Disabled — the default — its entire cost to a hot path is one atomic
// load (Enabled); enabled, Record takes a short mutex, which is acceptable
// for a forensic facility that is switched on deliberately. Dump and
// WriteJSONL read the ring oldest-first.
type DecisionRing struct {
	enabled atomic.Bool

	mu   sync.Mutex
	buf  []Decision
	next uint64 // total records ever accepted; buf[next % len] is the next slot
}

// DefaultRingCapacity is the trace depth reducesrv allocates.
const DefaultRingCapacity = 4096

// NewDecisionRing returns a ring holding the last capacity decisions
// (DefaultRingCapacity when capacity < 1). The ring starts disabled.
func NewDecisionRing(capacity int) *DecisionRing {
	if capacity < 1 {
		capacity = DefaultRingCapacity
	}
	return &DecisionRing{buf: make([]Decision, capacity)}
}

// Enabled reports whether recording is on — the one check hot paths make.
func (r *DecisionRing) Enabled() bool { return r != nil && r.enabled.Load() }

// SetEnabled switches recording on or off.
func (r *DecisionRing) SetEnabled(on bool) { r.enabled.Store(on) }

// Record appends d (stamping d.Seq) if the ring is enabled; otherwise it is
// a no-op. Callers on hot paths should guard with Enabled() to skip building
// the record at all.
func (r *DecisionRing) Record(d Decision) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	d.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = d
	r.next++
	r.mu.Unlock()
}

// Total returns how many decisions have ever been recorded (including those
// the ring has since overwritten).
func (r *DecisionRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dump copies out the most recent decisions, oldest first. limit <= 0 means
// everything retained.
func (r *DecisionRing) Dump(limit int) []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	retained := uint64(len(r.buf))
	if n < retained {
		retained = n
	}
	if limit > 0 && uint64(limit) < retained {
		retained = uint64(limit)
	}
	if retained == 0 {
		return nil
	}
	out := make([]Decision, 0, retained)
	for i := n - retained; i < n; i++ {
		out = append(out, r.buf[i%uint64(len(r.buf))])
	}
	return out
}

// WriteJSONL writes the most recent decisions as one JSON object per line,
// oldest first — the /tracez body and the ablation experiment's input
// format.
func (r *DecisionRing) WriteJSONL(w io.Writer, limit int) error {
	enc := json.NewEncoder(w) // Encode appends the newline
	for _, d := range r.Dump(limit) {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// Reset discards all retained decisions (recording state is unchanged).
func (r *DecisionRing) Reset() {
	r.mu.Lock()
	r.next = 0
	r.mu.Unlock()
}
