package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRingDisabledByDefault(t *testing.T) {
	r := NewDecisionRing(4)
	if r.Enabled() {
		t.Fatal("ring enabled at birth")
	}
	r.Record(Decision{Site: 1})
	if r.Total() != 0 || r.Dump(0) != nil {
		t.Fatalf("disabled ring accepted a record: total=%d", r.Total())
	}
	var nilRing *DecisionRing
	if nilRing.Enabled() {
		t.Fatal("nil ring claims enabled")
	}
}

func TestRingRecordAndWrap(t *testing.T) {
	r := NewDecisionRing(4)
	r.SetEnabled(true)
	for site := 0; site < 6; site++ {
		r.Record(Decision{Kind: DServerCheck, Site: site})
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d, want 6", r.Total())
	}
	got := r.Dump(0)
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, d := range got { // oldest first: sites 2,3,4,5 with seq 2..5
		if d.Site != i+2 || d.Seq != uint64(i+2) {
			t.Fatalf("dump[%d] = %+v", i, d)
		}
	}
	if lim := r.Dump(2); len(lim) != 2 || lim[0].Site != 4 || lim[1].Site != 5 {
		t.Fatalf("Dump(2) = %+v", lim)
	}
	r.Reset()
	if r.Total() != 0 || r.Dump(0) != nil {
		t.Fatal("Reset did not clear")
	}
}

func TestRingJSONL(t *testing.T) {
	r := NewDecisionRing(8)
	r.SetEnabled(true)
	r.Record(Decision{Kind: DClientCheck, Session: "docs/a", Site: 2, T1: 9, T2: 3, Index: 1, Concurrent: true})
	r.Record(Decision{Kind: DClientIntegrate, Site: 2, T1: 9, T2: 3, Index: -1, Checks: 2, NConc: 1, Transforms: 1})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "client.check" || lines[0]["session"] != "docs/a" || lines[0]["concurrent"] != true {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if lines[1]["kind"] != "client.integrate" || lines[1]["transforms"] != float64(1) || lines[1]["hb"] != float64(-1) {
		t.Fatalf("line 1 = %v", lines[1])
	}
	if _, ok := lines[1]["session"]; ok {
		t.Fatal("empty session not omitted")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewDecisionRing(32)
	r.SetEnabled(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Decision{Kind: DServerCheck, Site: g})
				if i%100 == 0 {
					_ = r.Dump(8)
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 8*500 {
		t.Fatalf("total = %d, want %d", r.Total(), 8*500)
	}
	// Seqs of the retained window are contiguous.
	got := r.Dump(0)
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
	}
}

// TestRingToggleUnderConcurrentWriters flips the ring's enable bit while
// writers hammer Record — the run-mode race detector is the real assertion;
// the invariants checked afterward are that the retained window is still
// contiguous and the total only counts enabled-phase records.
func TestRingToggleUnderConcurrentWriters(t *testing.T) {
	r := NewDecisionRing(64)
	r.SetEnabled(true)
	stop := make(chan struct{})
	togglerDone := make(chan struct{})
	go func() {
		defer close(togglerDone)
		on := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.SetEnabled(on)
			on = !on
		}
	}()
	const writers, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(Decision{Kind: DServerCheck, Site: g, Seq: uint64(i)})
				if i%500 == 0 {
					_ = r.Dump(8)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-togglerDone

	if r.Total() > writers*per {
		t.Fatalf("total = %d, more than the %d records offered", r.Total(), writers*per)
	}
	got := r.Dump(0)
	for i := 1; i < len(got); i++ {
		if got[i].Seq < got[i-1].Seq && got[i].Site == got[i-1].Site {
			t.Fatalf("per-writer order lost at %d: %+v then %+v", i, got[i-1], got[i])
		}
	}
	r.SetEnabled(true)
	r.Reset()
	if r.Total() != 0 || len(r.Dump(0)) != 0 {
		t.Fatalf("Reset left total=%d dump=%d", r.Total(), len(r.Dump(0)))
	}
}

func TestDecisionKindString(t *testing.T) {
	for k, want := range map[DecisionKind]string{
		DClientCheck:     "client.check",
		DServerCheck:     "server.check",
		DClientIntegrate: "client.integrate",
		DServerIntegrate: "server.integrate",
		DecisionKind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	b, err := json.Marshal(DServerCheck)
	if err != nil || !strings.Contains(string(b), "server.check") {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
}
