package span

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// FlightConfig tunes the SLO flight recorder. Zero values take the defaults
// noted on each field.
type FlightConfig struct {
	// Dir receives one timestamped bundle directory per breach (required).
	Dir string
	// ThresholdNs is the p99 ceiling: a poll whose windowed p99 of
	// receive.ns or span.total.ns exceeds it triggers a dump.
	ThresholdNs int64
	// Poll is the sampling period (default 1s).
	Poll time.Duration
	// MinGap rate-limits dumps: at most one bundle per MinGap (default 1m).
	MinGap time.Duration
	// MinWindow is the least number of new observations a poll window must
	// contain before its p99 is trusted (default 16) — a lone slow op in an
	// otherwise idle second is not an SLO breach.
	MinWindow uint64
}

// FlightRecorder watches the windowed p99 of the end-to-end latency
// histograms and, on breach, atomically dumps a diagnostic bundle — recent
// spans, the causality-decision ring tail, a full metrics snapshot, and
// goroutine + heap profiles — into a timestamped directory under Dir.
// Bundles are rate-limited so a sustained breach cannot fill the disk.
type FlightRecorder struct {
	snap   func() obs.Snapshot
	tracer *Tracer
	ring   *obs.DecisionRing
	cfg    FlightConfig

	mu       sync.Mutex
	prev     map[string]obs.HistSnapshot // last poll's cumulative hists
	lastDump time.Time
	bundles  atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// watchedHists are the cumulative histograms whose windowed p99 is checked
// each poll (resolved from the aggregated snapshot).
var watchedHists = []string{obs.HReceiveNs, HistTotal}

// NewFlightRecorder builds a recorder over the given snapshot source.
// tracer and ring may be nil; the corresponding bundle files are skipped.
func NewFlightRecorder(snap func() obs.Snapshot, tracer *Tracer, ring *obs.DecisionRing, cfg FlightConfig) *FlightRecorder {
	if cfg.Poll <= 0 {
		cfg.Poll = time.Second
	}
	if cfg.MinGap <= 0 {
		cfg.MinGap = time.Minute
	}
	if cfg.MinWindow == 0 {
		cfg.MinWindow = 16
	}
	return &FlightRecorder{
		snap:   snap,
		tracer: tracer,
		ring:   ring,
		cfg:    cfg,
		prev:   make(map[string]obs.HistSnapshot),
	}
}

// Start launches the polling loop; Stop ends it.
func (f *FlightRecorder) Start() {
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	go func() {
		defer close(f.done)
		t := time.NewTicker(f.cfg.Poll)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				f.CheckNow()
			}
		}
	}()
}

// Stop ends the polling loop started by Start.
func (f *FlightRecorder) Stop() {
	if f.stop == nil {
		return
	}
	close(f.stop)
	<-f.done
	f.stop = nil
}

// Bundles returns the number of bundles written so far.
func (f *FlightRecorder) Bundles() uint64 { return f.bundles.Load() }

// CheckNow runs one poll synchronously: diff the watched histograms against
// the previous poll, and dump a bundle if any window's p99 breaches the
// threshold (subject to the rate limit). It returns the bundle directory
// when one was written. Exposed for deterministic tests; the Start loop
// calls it on every tick.
func (f *FlightRecorder) CheckNow() (string, error) {
	agg := f.snap().Aggregate()

	f.mu.Lock()
	defer f.mu.Unlock()

	var breach string
	var breachP99 uint64
	for _, name := range watchedHists {
		cur, ok := agg.Hists[name]
		if !ok {
			continue
		}
		win := cur.Delta(f.prev[name])
		f.prev[name] = cur
		if win.Count < f.cfg.MinWindow {
			continue
		}
		if p99 := win.Quantile(0.99); int64(p99) > f.cfg.ThresholdNs {
			breach = name
			breachP99 = p99
		}
	}
	if breach == "" {
		return "", nil
	}
	now := time.Now()
	if now.Sub(f.lastDump) < f.cfg.MinGap {
		return "", nil
	}
	dir, err := f.dump(agg, breach, breachP99, now)
	if err != nil {
		return "", err
	}
	f.lastDump = now
	f.bundles.Add(1)
	return dir, nil
}

// dump writes the bundle into a temp directory and renames it into place so
// readers never observe a half-written bundle.
func (f *FlightRecorder) dump(agg obs.Snapshot, breach string, p99 uint64, now time.Time) (string, error) {
	if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
		return "", err
	}
	final := filepath.Join(f.cfg.Dir, "slo-"+now.UTC().Format("20060102T150405.000000000Z"))
	tmp := final + ".tmp"
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	werr := func(name string, write func(*os.File) error) error {
		fd, err := os.Create(filepath.Join(tmp, name))
		if err != nil {
			return err
		}
		if err := write(fd); err != nil {
			_ = fd.Close()
			return err
		}
		return fd.Close()
	}

	if err := werr("breach.txt", func(fd *os.File) error {
		_, err := fmt.Fprintf(fd, "breached: %s\nwindow p99: %dns\nthreshold: %dns\nat: %s\n",
			breach, p99, f.cfg.ThresholdNs, now.Format(time.RFC3339Nano))
		return err
	}); err != nil {
		return "", err
	}
	if err := werr("metricz.json", func(fd *os.File) error {
		enc := json.NewEncoder(fd)
		enc.SetIndent("", "  ")
		return enc.Encode(f.snap())
	}); err != nil {
		return "", err
	}
	if f.tracer != nil {
		if err := werr("spans.jsonl", func(fd *os.File) error {
			for _, s := range f.tracer.Spans(0) {
				writeSpanJSON(fd, s)
			}
			return nil
		}); err != nil {
			return "", err
		}
	}
	if f.ring != nil {
		if err := werr("decisions.jsonl", func(fd *os.File) error {
			return f.ring.WriteJSONL(fd, 0)
		}); err != nil {
			return "", err
		}
	}
	if err := werr("goroutine.txt", func(fd *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(fd, 1)
	}); err != nil {
		return "", err
	}
	if err := werr("heap.pprof", func(fd *os.File) error {
		return pprof.WriteHeapProfile(fd)
	}); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	return final, nil
}
