package span

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFlightRecorderBundle induces a p99 breach and checks exactly one
// complete bundle appears: the rate limit swallows the immediately following
// poll, and a later quiet window (no new observations) never triggers.
func TestFlightRecorderBundle(t *testing.T) {
	reg := obs.NewRegistry("test")
	tr := NewTracer(reg, Config{SampleEvery: 1})
	ring := obs.NewDecisionRing(16)
	ring.SetEnabled(true)
	ring.Record(obs.Decision{Kind: obs.DServerIntegrate})

	// One finished span so spans.jsonl has content.
	ctx := tr.Start(1, 1)
	tr.FinishAt(ctx, StageRemoteIntegrate)

	dir := t.TempDir()
	fr := NewFlightRecorder(reg.Snapshot, tr, ring, FlightConfig{
		Dir:         dir,
		ThresholdNs: int64(time.Millisecond),
		MinWindow:   4,
		MinGap:      time.Hour, // the second breach must be rate-limited
	})

	// Baseline poll: the histogram is empty, nothing can breach.
	if b, err := fr.CheckNow(); err != nil || b != "" {
		t.Fatalf("baseline CheckNow = %q, %v; want no bundle", b, err)
	}

	h := reg.Histogram(obs.HReceiveNs)
	for i := 0; i < 32; i++ {
		h.RecordInt(int(5 * time.Millisecond)) // 5ms >> 1ms threshold
	}
	bundle, err := fr.CheckNow()
	if err != nil {
		t.Fatal(err)
	}
	if bundle == "" {
		t.Fatal("breach did not produce a bundle")
	}
	if fr.Bundles() != 1 {
		t.Fatalf("Bundles = %d, want 1", fr.Bundles())
	}
	for _, name := range []string{"breach.txt", "metricz.json", "spans.jsonl", "decisions.jsonl", "goroutine.txt", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(bundle, name))
		if err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
			continue
		}
		if fi.Size() == 0 && name != "decisions.jsonl" {
			t.Errorf("bundle file %s is empty", name)
		}
	}
	b, err := os.ReadFile(filepath.Join(bundle, "breach.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b); !strings.Contains(got, "breached: "+obs.HReceiveNs) || !strings.Contains(got, "threshold: 1000000ns") {
		t.Errorf("breach.txt = %q, want hist name and threshold", got)
	}

	// Still breaching, but inside MinGap: exactly one bundle total.
	for i := 0; i < 32; i++ {
		h.RecordInt(int(5 * time.Millisecond))
	}
	if b, err := fr.CheckNow(); err != nil || b != "" {
		t.Fatalf("rate-limited CheckNow = %q, %v; want no bundle", b, err)
	}
	if fr.Bundles() != 1 {
		t.Errorf("Bundles = %d after rate-limited poll, want 1", fr.Bundles())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("bundle dir has %d entries, want exactly 1: %v", len(entries), entries)
	}
}

// TestFlightRecorderWindowed checks the breach test is windowed, not
// cumulative: a historical breach followed by a healthy window stays quiet,
// and a thin window (under MinWindow) is never trusted.
func TestFlightRecorderWindowed(t *testing.T) {
	reg := obs.NewRegistry("test")
	h := reg.Histogram(obs.HReceiveNs)
	fr := NewFlightRecorder(reg.Snapshot, nil, nil, FlightConfig{
		Dir:         t.TempDir(),
		ThresholdNs: int64(time.Millisecond),
		MinWindow:   8,
	})

	// A thin spike: 2 slow ops < MinWindow — untrusted, no bundle.
	h.RecordInt(int(10 * time.Millisecond))
	h.RecordInt(int(10 * time.Millisecond))
	if b, _ := fr.CheckNow(); b != "" {
		t.Fatalf("thin window produced a bundle %q", b)
	}

	// A healthy window after the spike entered prev: cumulative p99 would
	// still see the old slow ops, the windowed delta must not.
	for i := 0; i < 64; i++ {
		h.RecordInt(int(10 * time.Microsecond))
	}
	if b, _ := fr.CheckNow(); b != "" {
		t.Fatalf("healthy window produced a bundle %q", b)
	}
	if fr.Bundles() != 0 {
		t.Errorf("Bundles = %d, want 0", fr.Bundles())
	}
}
