package span

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/stats"
)

// Handler serves the completed-span ring: a fixed-width text table by
// default, one JSON object per line with ?format=jsonl, at most ?limit=N
// spans (newest first). Mounted at /spanz by the debug handler.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if s := r.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				limit = n
			}
		}
		spans := t.Spans(limit)
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/jsonl")
			for _, s := range spans {
				writeSpanJSON(w, s)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var tb stats.Table
		cols := make([]string, 0, NumStages+4)
		cols = append(cols, "site", "seq", "total_us", "done")
		for i := 0; i < NumStages; i++ {
			cols = append(cols, Stage(i).Name())
		}
		tb.Header(cols...)
		for _, s := range spans {
			tb.Row(spanRow(s)...)
		}
		fmt.Fprintf(w, "%d spans (newest first)\n\n%s", len(spans), tb.String())
	})
}

// spanRow renders one span as table cells: each stage's offset from the
// span's first stamp in µs, "-" where a stage never fired. Offsets (rather
// than deltas) stay meaningful even when deployment mode reorders stamping
// relative to the numeric stage order.
func spanRow(s Span) []any {
	out := make([]any, 0, NumStages+4)
	out = append(out, s.Site, s.Seq, float64(s.Total)/1e3, s.Complete)
	for i := 0; i < NumStages; i++ {
		ns := s.Stamps[i]
		if ns == 0 {
			out = append(out, "-")
			continue
		}
		out = append(out, fmt.Sprintf("%.1f", float64(ns-s.Start)/1e3))
	}
	return out
}

// writeSpanJSON writes one span as a single JSON line with stage stamps
// keyed by name (absolute monotonic ns; absent stages omitted).
func writeSpanJSON(w interface{ Write([]byte) (int, error) }, s Span) {
	fmt.Fprintf(w, `{"site":%d,"seq":%d,"start_ns":%d,"total_ns":%d,"complete":%v,"stages":{`,
		s.Site, s.Seq, s.Start, s.Total, s.Complete)
	first := true
	for i := 0; i < NumStages; i++ {
		if s.Stamps[i] == 0 {
			continue
		}
		if !first {
			fmt.Fprint(w, ",")
		}
		first = false
		fmt.Fprintf(w, `"%s":%d`, Stage(i).Name(), s.Stamps[i])
	}
	fmt.Fprintln(w, "}}")
}
