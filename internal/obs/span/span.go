// Package span is the per-op lifecycle tracer: a sampled op carries a
// compact trace context (origin site, origin seq, one flags byte) across the
// wire, and every pipeline stage it crosses — generate, sender enqueue,
// swap-drain, encode, TCP write, poller wakeup, decode, actor dequeue,
// formula-(5)/(7) check, transform, execute, broadcast enqueue, remote
// integrate — stamps a monotonic-clock event into a pooled span record.
//
// The trace key is the op's causal identity (origin site, origin sequence
// number): the same pair the compressed-vector-clock protocol already
// propagates in every timestamp, used here the way Dotted Version Vectors
// use a dot — one compact per-op identity that survives transport.
//
// Stage latencies are recorded as deltas at stamp time into obs.Histograms
// (span.stage.ns.<stage>), so /metricz stays current even for spans that
// never complete; completed spans additionally land in a bounded ring served
// at /spanz. Disabled and unsampled paths are allocation-free — one atomic
// load, or one atomic add for a sampling decision — and the budget gate in
// scripts/check.sh holds them there.
package span

import (
	"sync/atomic"
	"time"
)

// FlagSampled marks a context as sampled; it is the only flag bit today.
// The rest of the byte travels the wire reserved for future use.
const FlagSampled uint8 = 1 << 0

// Context is the wire-propagated trace identity of one sampled op. The zero
// value means "not traced" and costs nothing to carry.
type Context struct {
	Site  int    // origin site of the traced op
	Seq   uint64 // origin sequence number at that site
	Flags uint8  // FlagSampled | reserved bits
}

// Sampled reports whether this context identifies a live trace.
func (c Context) Sampled() bool { return c.Flags&FlagSampled != 0 }

// Stage identifies one pipeline checkpoint, in op-lifecycle order.
type Stage uint8

// The pipeline stages, in the order an op crosses them: the client generates
// and enqueues, the sender swap-drains/encodes/writes, the server's poller
// wakes, decodes, and hands to the session actor, which checks causal
// readiness, transforms, executes, and enqueues the broadcast; remote
// editors integrate last.
const (
	StageGenerate Stage = iota
	StageSendEnqueue
	StageDrain
	StageEncode
	StageWrite
	StagePollWake
	StageDecode
	StageDequeue
	StageCheck
	StageTransform
	StageExecute
	StageBcastEnqueue
	StageRemoteIntegrate

	NumStages = int(StageRemoteIntegrate) + 1
)

var stageNames = [NumStages]string{
	"generate",
	"send_enqueue",
	"drain",
	"encode",
	"write",
	"poll_wake",
	"decode",
	"dequeue",
	"check",
	"transform",
	"execute",
	"bcast_enqueue",
	"remote_integrate",
}

// Name returns the stage's snake_case name (the histogram suffix).
func (s Stage) Name() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Metric names. Each stage records into HistStagePrefix+Stage.Name().
const (
	HistStagePrefix = "span.stage.ns."
	HistTotal       = "span.total.ns"
	CStarted        = "spans.started"
	CFinished       = "spans.finished"
	CEvicted        = "spans.evicted"
)

// StageHistName returns the registry name of a stage's latency histogram.
func StageHistName(s Stage) string { return HistStagePrefix + s.Name() }

// base anchors the package monotonic clock; Now is a duration since base, so
// stamps taken in one process compare and subtract exactly.
var base = time.Now()

// Now returns the tracer's monotonic clock reading in nanoseconds. It never
// allocates and is safe from any goroutine.
func Now() int64 { return int64(time.Since(base)) }

// active counts enabled tracers in the process. Transport code that must
// stay allocation-free when tracing is off (the epoll poller's wakeup
// timestamp) gates on Active() with a single atomic load.
var active atomic.Int32

// Active reports whether any tracer in the process is enabled.
func Active() bool { return active.Load() > 0 }
