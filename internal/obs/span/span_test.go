package span

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestFastPathAllocFree pins the hot-path contract: a nil or disabled tracer
// costs no allocations on any recording call, and an enabled tracer whose
// sampler says no allocates nothing either. check.sh gates on this test.
func TestFastPathAllocFree(t *testing.T) {
	ctx := Context{Site: 1, Seq: 2, Flags: FlagSampled}

	var nilT *Tracer
	if n := testing.AllocsPerRun(100, func() {
		nilT.Start(1, 2)
		nilT.Arrival(ctx, 1, 2, 0)
		nilT.Stamp(ctx, StageCheck)
		nilT.StampWrite(ctx)
		nilT.FinishAt(ctx, StageRemoteIntegrate)
	}); n != 0 {
		t.Errorf("nil tracer path allocates %v per run, want 0", n)
	}

	off := NewTracer(nil, Config{SampleEvery: 1})
	off.SetEnabled(false)
	if n := testing.AllocsPerRun(100, func() {
		off.Start(1, 2)
		off.Arrival(ctx, 1, 2, 0)
		off.Stamp(ctx, StageCheck)
		off.StampWrite(ctx)
		off.FinishAt(ctx, StageRemoteIntegrate)
	}); n != 0 {
		t.Errorf("disabled tracer path allocates %v per run, want 0", n)
	}

	// Enabled but sampling 1 in 2^40: every decision in this run is "no".
	rare := NewTracer(nil, Config{SampleEvery: 1 << 40})
	unsampled := Context{}
	if n := testing.AllocsPerRun(100, func() {
		rare.Start(1, 2)
		rare.Arrival(unsampled, 1, 2, 0)
		rare.Stamp(unsampled, StageCheck)
		rare.StampWrite(unsampled)
		rare.FinishAt(unsampled, StageRemoteIntegrate)
	}); n != 0 {
		t.Errorf("unsampled path allocates %v per run, want 0", n)
	}
}

// TestTracerLifecycle walks one sampled op through every stage and checks the
// completed span, the registry counters, and the per-stage histograms.
func TestTracerLifecycle(t *testing.T) {
	reg := obs.NewRegistry("test")
	tr := NewTracer(reg, Config{SampleEvery: 1})

	ctx := tr.Start(3, 7)
	if !ctx.Sampled() {
		t.Fatalf("SampleEvery=1 Start returned unsampled ctx %+v", ctx)
	}
	if ctx.Site != 3 || ctx.Seq != 7 {
		t.Fatalf("ctx identity = %d/%d, want 3/7", ctx.Site, ctx.Seq)
	}
	for _, s := range []Stage{
		StageSendEnqueue, StageDrain, StageEncode, StageWrite,
		StageDecode, StageDequeue, StageCheck, StageTransform,
		StageExecute, StageBcastEnqueue,
	} {
		tr.Stamp(ctx, s)
	}
	if got := tr.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d before finish, want 1", got)
	}
	tr.FinishAt(ctx, StageRemoteIntegrate)

	if got := tr.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after finish, want 0", got)
	}
	if got := tr.Completed(); got != 1 {
		t.Errorf("Completed = %d, want 1", got)
	}
	spans := tr.Spans(0)
	if len(spans) != 1 {
		t.Fatalf("Spans = %d entries, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Site != 3 || sp.Seq != 7 || !sp.Complete {
		t.Errorf("span = %+v, want site 3 seq 7 complete", sp)
	}
	if sp.Stamps[StageGenerate] == 0 || sp.Stamps[StageRemoteIntegrate] == 0 {
		t.Errorf("span missing generate/remote_integrate stamps: %+v", sp.Stamps)
	}
	if sp.Stamps[StagePollWake] != 0 {
		t.Errorf("poll_wake stamped without a wakeNs: %+v", sp.Stamps)
	}
	if sp.Total < 0 {
		t.Errorf("span total = %d, want >= 0", sp.Total)
	}

	snap := reg.Snapshot()
	if snap.Counters[CStarted] != 1 || snap.Counters[CFinished] != 1 || snap.Counters[CEvicted] != 0 {
		t.Errorf("counters = started %d finished %d evicted %d, want 1/1/0",
			snap.Counters[CStarted], snap.Counters[CFinished], snap.Counters[CEvicted])
	}
	if h := snap.Hists[HistTotal]; h.Count != 1 {
		t.Errorf("%s count = %d, want 1", HistTotal, h.Count)
	}
	// Every stamped stage after the anchoring generate recorded one delta.
	for s := StageSendEnqueue; s <= StageRemoteIntegrate; s++ {
		if s == StagePollWake {
			continue
		}
		if h := snap.Hists[StageHistName(s)]; h.Count != 1 {
			t.Errorf("%s count = %d, want 1", StageHistName(s), h.Count)
		}
	}
	// The anchor records no delta.
	if h := snap.Hists[StageHistName(StageGenerate)]; h.Count != 0 {
		t.Errorf("generate stage recorded %d deltas, want 0 (anchor)", h.Count)
	}
}

// TestTracerAdoption checks the wire-propagation path: an adopt-only tracer
// (SampleEvery 0) never originates spans but materializes a record for a
// context that arrived sampled, including the poller wake stamp.
func TestTracerAdoption(t *testing.T) {
	reg := obs.NewRegistry("test")
	tr := NewTracer(reg, Config{SampleEvery: 0})

	if ctx := tr.Start(1, 1); ctx.Sampled() {
		t.Fatalf("adopt-only tracer originated a span: %+v", ctx)
	}
	if ctx := tr.Arrival(Context{}, 1, 2, 0); ctx.Sampled() {
		t.Fatalf("adopt-only tracer sampled an untraced arrival: %+v", ctx)
	}

	wire := Context{Site: 5, Seq: 9, Flags: FlagSampled}
	wake := Now()
	ctx := tr.Arrival(wire, 5, 9, wake)
	if !ctx.Sampled() {
		t.Fatalf("sampled wire context not adopted")
	}
	tr.FinishAt(ctx, StageRemoteIntegrate)
	spans := tr.Spans(0)
	if len(spans) != 1 {
		t.Fatalf("Spans = %d entries, want 1", len(spans))
	}
	if spans[0].Stamps[StagePollWake] != wake {
		t.Errorf("poll_wake stamp = %d, want %d", spans[0].Stamps[StagePollWake], wake)
	}
	if spans[0].Stamps[StageDecode] == 0 {
		t.Errorf("decode not stamped on adoption: %+v", spans[0].Stamps)
	}
}

// TestTracerFinishOnWrite checks the server-only mode: the TCP write stamp
// completes the span because no traced editor exists to close the loop.
func TestTracerFinishOnWrite(t *testing.T) {
	tr := NewTracer(nil, Config{SampleEvery: 1, FinishOnWrite: true})
	ctx := tr.Arrival(Context{}, 2, 4, 0)
	if !ctx.Sampled() {
		t.Fatalf("arrival not sampled with SampleEvery=1")
	}
	tr.Stamp(ctx, StageCheck)
	tr.StampWrite(ctx)
	if got := tr.Completed(); got != 1 {
		t.Fatalf("Completed = %d after StampWrite, want 1", got)
	}
	if got := tr.InFlight(); got != 0 {
		t.Errorf("InFlight = %d, want 0", got)
	}
	if sp := tr.Spans(1)[0]; !sp.Complete || sp.Stamps[StageWrite] == 0 {
		t.Errorf("span = %+v, want complete with a write stamp", sp)
	}
}

// TestTracerFirstWins checks fan-out idempotence: a second stamp of the same
// stage (every broadcast leg stamps drain/encode/write) is a no-op.
func TestTracerFirstWins(t *testing.T) {
	reg := obs.NewRegistry("test")
	tr := NewTracer(reg, Config{SampleEvery: 1})
	ctx := tr.Start(1, 1)
	tr.Stamp(ctx, StageDrain)
	tr.Stamp(ctx, StageDrain)
	tr.Stamp(ctx, StageDrain)
	if h := reg.Snapshot().Hists[StageHistName(StageDrain)]; h.Count != 1 {
		t.Errorf("drain recorded %d deltas after 3 stamps, want 1", h.Count)
	}
}

// TestTracerEviction fills the active table past MaxActive and checks the
// victim lands in the ring incomplete, counted by spans.evicted.
func TestTracerEviction(t *testing.T) {
	reg := obs.NewRegistry("test")
	tr := NewTracer(reg, Config{SampleEvery: 1, MaxActive: 2})
	tr.Start(1, 1)
	tr.Start(1, 2)
	tr.Start(1, 3) // evicts one of the first two
	if got := tr.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2 (MaxActive)", got)
	}
	if got := reg.Snapshot().Counters[CEvicted]; got != 1 {
		t.Errorf("%s = %d, want 1", CEvicted, got)
	}
	spans := tr.Spans(0)
	if len(spans) != 1 || spans[0].Complete {
		t.Errorf("evicted span = %+v, want exactly one incomplete entry", spans)
	}
}

// TestSpansRingNewestFirst finishes more spans than the ring holds and checks
// retention (newest RingCap) and ordering (newest first).
func TestSpansRingNewestFirst(t *testing.T) {
	tr := NewTracer(nil, Config{SampleEvery: 1, RingCap: 4})
	for seq := uint64(1); seq <= 6; seq++ {
		ctx := tr.Start(1, seq)
		tr.FinishAt(ctx, StageRemoteIntegrate)
	}
	spans := tr.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	for i, want := range []uint64{6, 5, 4, 3} {
		if spans[i].Seq != want {
			t.Errorf("spans[%d].Seq = %d, want %d", i, spans[i].Seq, want)
		}
	}
	if got := tr.Spans(2); len(got) != 2 || got[0].Seq != 6 {
		t.Errorf("Spans(2) = %+v, want newest 2", got)
	}
	if got := tr.Completed(); got != 6 {
		t.Errorf("Completed = %d, want 6", got)
	}
}

// TestHandler drives /spanz in both formats.
func TestHandler(t *testing.T) {
	tr := NewTracer(nil, Config{SampleEvery: 1})
	ctx := tr.Start(2, 11)
	tr.Stamp(ctx, StageCheck)
	tr.FinishAt(ctx, StageRemoteIntegrate)

	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	body := httpGet(t, srv.URL)
	for _, want := range []string{"1 spans", "site", "total_us", "generate", "remote_integrate", "true"} {
		if !strings.Contains(body, want) {
			t.Errorf("/spanz text missing %q:\n%s", want, body)
		}
	}

	jl := httpGet(t, srv.URL+"?format=jsonl")
	sc := bufio.NewScanner(strings.NewReader(jl))
	lines := 0
	for sc.Scan() {
		lines++
		var v struct {
			Site     int              `json:"site"`
			Seq      uint64           `json:"seq"`
			Complete bool             `json:"complete"`
			Stages   map[string]int64 `json:"stages"`
		}
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad jsonl line %q: %v", sc.Text(), err)
		}
		if v.Site != 2 || v.Seq != 11 || !v.Complete {
			t.Errorf("jsonl span = %+v, want site 2 seq 11 complete", v)
		}
		if v.Stages["generate"] == 0 || v.Stages["check"] == 0 {
			t.Errorf("jsonl stages missing stamps: %+v", v.Stages)
		}
	}
	if lines != 1 {
		t.Errorf("jsonl lines = %d, want 1", lines)
	}
}

// TestStageNames pins the stage catalogue: names, order, and histogram keys.
func TestStageNames(t *testing.T) {
	want := []string{
		"generate", "send_enqueue", "drain", "encode", "write",
		"poll_wake", "decode", "dequeue", "check", "transform",
		"execute", "bcast_enqueue", "remote_integrate",
	}
	if NumStages != len(want) {
		t.Fatalf("NumStages = %d, want %d", NumStages, len(want))
	}
	for i, w := range want {
		if got := Stage(i).Name(); got != w {
			t.Errorf("Stage(%d).Name = %q, want %q", i, got, w)
		}
		if got := StageHistName(Stage(i)); got != HistStagePrefix+w {
			t.Errorf("StageHistName(%d) = %q, want %q", i, got, HistStagePrefix+w)
		}
	}
}
