package span

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Config sizes a Tracer. Zero values take the defaults noted on each field.
type Config struct {
	// SampleEvery originates a trace for 1 in N ops seen by Start or
	// Arrival. 0 means adopt-only: the tracer stamps ops that arrive
	// already sampled but never originates a trace itself.
	SampleEvery uint64
	// RingCap bounds the completed-span ring served at /spanz (default 1024).
	RingCap int
	// MaxActive bounds in-flight records; when full, an arbitrary record is
	// evicted to the ring incomplete (default 4096).
	MaxActive int
	// FinishOnWrite completes a span at the TCP write stamp instead of
	// waiting for a remote integrate — the server-only deployment mode,
	// where no traced editor exists to close the loop.
	FinishOnWrite bool
}

// Span is one completed (or evicted) trace as exported at /spanz: absolute
// monotonic stamps per stage, 0 where a stage never fired.
type Span struct {
	Site     int
	Seq      uint64
	Start    int64 // Now() of the first stamp
	Total    int64 // last stamp − first stamp
	Stamps   [NumStages]int64
	Complete bool // false when evicted from a full active table
}

// record is the pooled in-flight form of a Span.
type record struct {
	site   int
	seq    uint64
	stamps [NumStages]int64
	first  int64 // first stamp (absolute)
	last   int64 // latest stamp (absolute, monotone)
	free   *record
}

type opKey struct {
	site int
	seq  uint64
}

// Tracer samples ops, tracks their in-flight records, folds stage deltas
// into obs.Histograms, and retains completed spans in a bounded ring.
//
// Hot-path contract: every public recording method is a no-op costing one
// atomic load when the tracer is nil or disabled, and Start/Arrival cost one
// extra atomic add when the sampling decision says no. Only sampled ops —
// 1 in SampleEvery — take the mutex.
type Tracer struct {
	enabled atomic.Bool
	n       atomic.Uint64 // sampling counter
	every   uint64
	finOnWr bool

	stageH [NumStages]*obs.Histogram
	totalH *obs.Histogram

	started  *obs.Counter
	finished *obs.Counter
	evicted  *obs.Counter

	mu        sync.Mutex
	inflight  map[opKey]*record
	freeList  *record
	ring      []Span
	ringNext  int
	ringTotal uint64
	maxActive int
}

// NewTracer builds an enabled tracer whose histograms and counters live in
// reg (a private registry is used when reg is nil).
func NewTracer(reg *obs.Registry, cfg Config) *Tracer {
	if reg == nil {
		reg = obs.NewRegistry("span")
	}
	if cfg.RingCap <= 0 {
		cfg.RingCap = 1024
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 4096
	}
	t := &Tracer{
		every:     cfg.SampleEvery,
		finOnWr:   cfg.FinishOnWrite,
		started:   reg.Counter(CStarted),
		finished:  reg.Counter(CFinished),
		evicted:   reg.Counter(CEvicted),
		totalH:    reg.Histogram(HistTotal),
		inflight:  make(map[opKey]*record),
		ring:      make([]Span, 0, cfg.RingCap),
		maxActive: cfg.MaxActive,
	}
	for i := 0; i < NumStages; i++ {
		t.stageH[i] = reg.Histogram(StageHistName(Stage(i)))
	}
	t.SetEnabled(true)
	return t
}

// Enabled reports whether the tracer records anything at all. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips recording on or off and keeps the package Active gate in
// step. Disabling does not drop in-flight records; re-enabling resumes them.
func (t *Tracer) SetEnabled(v bool) {
	if t == nil {
		return
	}
	if t.enabled.Swap(v) != v {
		if v {
			active.Add(1)
		} else {
			active.Add(-1)
		}
	}
}

// Start makes the origin-side sampling decision for a freshly generated op
// and, when sampled, opens its record with the generate stamp. The unsampled
// path is one atomic load plus one atomic add.
func (t *Tracer) Start(site int, seq uint64) Context {
	if t == nil || !t.enabled.Load() {
		return Context{}
	}
	return t.startSampled(site, seq)
}

//go:noinline
func (t *Tracer) startSampled(site int, seq uint64) Context {
	if t.every == 0 || t.n.Add(1)%t.every != 0 {
		return Context{}
	}
	ctx := Context{Site: site, Seq: seq, Flags: FlagSampled}
	ns := Now()
	t.mu.Lock()
	if r := t.ensureLocked(ctx); r != nil {
		t.stampLocked(r, StageGenerate, ns)
	}
	t.mu.Unlock()
	return ctx
}

// Arrival is the server-side admission point: adopt a context that arrived
// sampled on the wire (materializing its record in this process), or make a
// fresh sampling decision for an untraced arrival. wakeNs, when positive, is
// the poller's readiness timestamp and is stamped as StagePollWake before
// the decode stamp. The unsampled path costs one atomic add.
func (t *Tracer) Arrival(ctx Context, site int, seq uint64, wakeNs int64) Context {
	if t == nil || !t.enabled.Load() {
		return Context{}
	}
	return t.arrivalSampled(ctx, site, seq, wakeNs)
}

//go:noinline
func (t *Tracer) arrivalSampled(ctx Context, site int, seq uint64, wakeNs int64) Context {
	if !ctx.Sampled() {
		if t.every == 0 || t.n.Add(1)%t.every != 0 {
			return Context{}
		}
		ctx = Context{Site: site, Seq: seq, Flags: FlagSampled}
	}
	ns := Now()
	t.mu.Lock()
	if r := t.ensureLocked(ctx); r != nil {
		if wakeNs > 0 {
			t.stampLocked(r, StagePollWake, wakeNs)
		}
		t.stampLocked(r, StageDecode, ns)
	}
	t.mu.Unlock()
	return ctx
}

// Stamp records stage s for ctx at the current clock. Unknown or already
// stamped stages are no-ops (first stamp wins), so fan-out duplicates are
// harmless.
func (t *Tracer) Stamp(ctx Context, s Stage) {
	if t == nil || !ctx.Sampled() || !t.enabled.Load() {
		return
	}
	t.stampSampled(ctx, s, Now())
}

// StampAt is Stamp with a caller-captured clock reading (from Now()), for
// stamps taken on a hot path and recorded later.
func (t *Tracer) StampAt(ctx Context, s Stage, ns int64) {
	if t == nil || !ctx.Sampled() || !t.enabled.Load() {
		return
	}
	t.stampSampled(ctx, s, ns)
}

//go:noinline
func (t *Tracer) stampSampled(ctx Context, s Stage, ns int64) {
	t.mu.Lock()
	if r := t.inflight[opKey{ctx.Site, ctx.Seq}]; r != nil {
		t.stampLocked(r, s, ns)
	}
	t.mu.Unlock()
}

// StampWrite records the TCP write stamp and, in FinishOnWrite mode,
// completes the span — the server-only deployment where no traced editor
// will ever send the remote-integrate stamp.
func (t *Tracer) StampWrite(ctx Context) {
	if t == nil || !ctx.Sampled() || !t.enabled.Load() {
		return
	}
	if t.finOnWr {
		t.finishSampled(ctx, StageWrite, Now())
	} else {
		t.stampSampled(ctx, StageWrite, Now())
	}
}

// FinishAt stamps stage s and completes the span: the total latency is
// recorded, the span moves to the completed ring, and the record is
// recycled. A ctx with no in-flight record (already finished by an earlier
// fan-out leg, or evicted) is a no-op.
func (t *Tracer) FinishAt(ctx Context, s Stage) {
	if t == nil || !ctx.Sampled() || !t.enabled.Load() {
		return
	}
	t.finishSampled(ctx, s, Now())
}

//go:noinline
func (t *Tracer) finishSampled(ctx Context, s Stage, ns int64) {
	k := opKey{ctx.Site, ctx.Seq}
	t.mu.Lock()
	r := t.inflight[k]
	if r == nil {
		t.mu.Unlock()
		return
	}
	t.stampLocked(r, s, ns)
	total := r.last - r.first
	t.pushLocked(r, true)
	delete(t.inflight, k)
	t.recycleLocked(r)
	t.mu.Unlock()
	t.totalH.RecordInt(int(total))
	t.finished.Inc()
}

// stampLocked applies first-wins stamping and folds the delta since the
// previous stamp into the stage histogram. The first stamp of a record
// anchors the clock and records no delta.
func (t *Tracer) stampLocked(r *record, s Stage, ns int64) {
	if int(s) >= NumStages || r.stamps[s] != 0 {
		return
	}
	r.stamps[s] = ns
	if r.first == 0 {
		r.first, r.last = ns, ns
		return
	}
	d := ns - r.last
	if d < 0 {
		d = 0
	} else {
		r.last = ns
	}
	t.stageH[s].RecordInt(int(d))
}

// ensureLocked returns the record for ctx, creating it (and evicting an
// arbitrary victim when the table is full) on first sight.
func (t *Tracer) ensureLocked(ctx Context) *record {
	k := opKey{ctx.Site, ctx.Seq}
	if r := t.inflight[k]; r != nil {
		return r
	}
	if len(t.inflight) >= t.maxActive {
		for vk, vr := range t.inflight {
			t.pushLocked(vr, false)
			delete(t.inflight, vk)
			t.recycleLocked(vr)
			t.evicted.Inc()
			break
		}
	}
	r := t.freeList
	if r != nil {
		t.freeList = r.free
		*r = record{}
	} else {
		r = &record{}
	}
	r.site, r.seq = ctx.Site, ctx.Seq
	t.inflight[k] = r
	t.started.Inc()
	return r
}

func (t *Tracer) recycleLocked(r *record) {
	r.free = t.freeList
	t.freeList = r
}

// pushLocked copies r into the completed ring (overwriting the oldest entry
// once full).
func (t *Tracer) pushLocked(r *record, complete bool) {
	s := Span{
		Site:     r.site,
		Seq:      r.seq,
		Start:    r.first,
		Total:    r.last - r.first,
		Stamps:   r.stamps,
		Complete: complete,
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.ringNext] = s
		t.ringNext = (t.ringNext + 1) % cap(t.ring)
	}
	t.ringTotal++
}

// Spans returns up to limit completed spans, newest first (limit <= 0 means
// all retained).
func (t *Tracer) Spans(limit int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	if limit > 0 && limit < n {
		n = limit
	}
	// Newest entry is just before ringNext once the ring has wrapped, else
	// at the end of the slice.
	newest := len(t.ring) - 1
	if len(t.ring) == cap(t.ring) {
		newest = (t.ringNext - 1 + len(t.ring)) % len(t.ring)
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(newest-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Completed returns the lifetime count of spans pushed to the ring.
func (t *Tracer) Completed() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ringTotal
}

// InFlight returns the current number of open records.
func (t *Tracer) InFlight() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.inflight)
}
