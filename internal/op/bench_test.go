package op

import (
	"math/rand"
	"strings"
	"testing"
)

func benchOps(n int) (*Op, *Op, []rune) {
	r := rand.New(rand.NewSource(1))
	doc := randDoc(r, n)
	return randOp(r, n), randOp(r, n), doc
}

func BenchmarkApplySmall(b *testing.B) {
	a, _, doc := benchOps(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Apply(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyLarge(b *testing.B) {
	a, _, doc := benchOps(64 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Apply(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformSimplePair(b *testing.B) {
	x, _ := NewInsert(4096, 128, "hello")
	y, _ := NewDelete(4096, 2048, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Transform(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformFragmented(b *testing.B) {
	x, y, _ := benchOps(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Transform(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompose(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := randOp(r, 4096)
	y := randOp(r, x.TargetLen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compose(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvert(b *testing.B) {
	x, _, doc := benchOps(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Invert(x, doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformIndex(b *testing.B) {
	x, _, _ := benchOps(4096)
	for i := 0; i < b.N; i++ {
		TransformIndex(x, 2048, false)
	}
}

func BenchmarkBuilderTypingPattern(b *testing.B) {
	// A user typing: one retain + one small insert per op.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := New().Retain(1000).Insert("a").Retain(24)
		if o.BaseLen() != 1024 {
			b.Fatal("bad op")
		}
	}
}

func BenchmarkPositionals(b *testing.B) {
	o := New().Retain(10).Delete(5).Retain(strings.Count("x", "x") + 100).Insert("yz").Retain(20)
	for i := 0; i < b.N; i++ {
		if ps := Positionals(o); len(ps) != 2 {
			b.Fatal("unexpected decomposition")
		}
	}
}
