package op

import "fmt"

// iter walks the components of an operation, allowing partial consumption of
// retain/delete counts and insert text.
type iter struct {
	comps []Comp
	idx   int
	// off is the number of runes of comps[idx] already consumed.
	off int
}

func (it *iter) done() bool { return it.idx >= len(it.comps) }

// peek returns the current component with its consumed prefix removed.
func (it *iter) peek() Comp {
	c := it.comps[it.idx]
	if it.off == 0 {
		return c
	}
	switch c.Kind {
	case KInsert:
		s := skipRunes(c.S, it.off)
		return Comp{Kind: KInsert, N: c.N - it.off, S: s}
	default:
		return Comp{Kind: c.Kind, N: c.N - it.off}
	}
}

// advance consumes n runes of the current component, moving to the next
// component when it is exhausted.
func (it *iter) advance(n int) {
	c := it.comps[it.idx]
	it.off += n
	if it.off >= c.N {
		it.idx++
		it.off = 0
	}
}

// skipRunes returns s with its first n runes removed.
func skipRunes(s string, n int) string {
	for i := range s {
		if n == 0 {
			return s[i:]
		}
		n--
	}
	return ""
}

// takeRunes returns the first n runes of s.
func takeRunes(s string, n int) string {
	for i := range s {
		if n == 0 {
			return s[:i]
		}
		n--
	}
	return s
}

// Compose combines two consecutive operations into one, such that for every
// document d of the right length:
//
//	apply(apply(d, a), b) == apply(d, Compose(a, b))
//
// It fails with ErrLengthMismatch unless a.TargetLen() == b.BaseLen().
func Compose(a, b *Op) (*Op, error) {
	if a.tgtLen != b.baseLen {
		return nil, fmt.Errorf("op: compose: a targets %d runes, b expects %d: %w",
			a.tgtLen, b.baseLen, ErrLengthMismatch)
	}
	out := New()
	ia := &iter{comps: a.comps}
	ib := &iter{comps: b.comps}
	for !ia.done() || !ib.done() {
		// Deletions in a act on text b never sees; they pass through.
		if !ia.done() {
			if ca := ia.peek(); ca.Kind == KDelete {
				out.Delete(ca.N)
				ia.advance(ca.N)
				continue
			}
		}
		// Insertions in b are independent of a's output; pass through.
		if !ib.done() {
			if cb := ib.peek(); cb.Kind == KInsert {
				out.Insert(cb.S)
				ib.advance(cb.N)
				continue
			}
		}
		if ia.done() || ib.done() {
			return nil, fmt.Errorf("op: compose: ragged operations: %w", ErrInvalidOp)
		}
		ca, cb := ia.peek(), ib.peek()
		n := min(ca.N, cb.N)
		switch {
		case ca.Kind == KRetain && cb.Kind == KRetain:
			out.Retain(n)
		case ca.Kind == KRetain && cb.Kind == KDelete:
			out.Delete(n)
		case ca.Kind == KInsert && cb.Kind == KRetain:
			out.Insert(takeRunes(ca.S, n))
		case ca.Kind == KInsert && cb.Kind == KDelete:
			// b deletes text a inserted: both vanish.
		default:
			return nil, fmt.Errorf("op: compose: unexpected %v/%v: %w", ca.Kind, cb.Kind, ErrInvalidOp)
		}
		ia.advance(n)
		ib.advance(n)
	}
	return out, nil
}

// ComposeAll folds Compose over a sequence of consecutive operations. A nil
// or empty sequence composes to a noop on a document of length baseLen.
func ComposeAll(baseLen int, ops []*Op) (*Op, error) {
	acc := New().Retain(baseLen)
	for i, o := range ops {
		next, err := Compose(acc, o)
		if err != nil {
			return nil, fmt.Errorf("op: compose-all at %d: %w", i, err)
		}
		acc = next
	}
	return acc, nil
}
