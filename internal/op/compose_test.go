package op

import (
	"errors"
	"math/rand"
	"testing"
)

func TestComposeBasics(t *testing.T) {
	// "ABCDE" --O1(insert "12"@1)--> "A12BCDE" --O2'(delete 3@4)--> "A12B"
	o1, _ := NewInsert(5, 1, "12")
	o2p, _ := NewDelete(7, 4, 3)
	comp, err := Compose(o1, o2p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := comp.ApplyString("ABCDE")
	if err != nil {
		t.Fatal(err)
	}
	if got != "A12B" {
		t.Fatalf("composed apply: got %q want A12B", got)
	}
	if comp.BaseLen() != 5 || comp.TargetLen() != 4 {
		t.Fatalf("composed lengths: %d -> %d", comp.BaseLen(), comp.TargetLen())
	}
}

func TestComposeCancellingOps(t *testing.T) {
	// Inserting then deleting the same text composes to a noop.
	ins, _ := NewInsert(3, 1, "zz")
	del, _ := NewDelete(5, 1, 2)
	comp, err := Compose(ins, del)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.IsNoop() {
		t.Fatalf("insert+delete of same range must compose to noop, got %v", comp)
	}
}

func TestComposeLengthMismatch(t *testing.T) {
	a := New().Retain(3) // targets 3
	b := New().Retain(5) // expects 5
	if _, err := Compose(a, b); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

// TestComposeEquivalence: apply(d, compose(a,b)) == apply(apply(d,a), b) on
// random inputs.
func TestComposeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		doc := randDoc(r, r.Intn(30))
		a := randOp(r, len(doc))
		mid := mustApply(t, a, doc)
		b := randOp(r, len(mid))
		ab, err := Compose(a, b)
		if err != nil {
			t.Fatalf("iter %d: compose: %v", i, err)
		}
		if err := ab.Validate(); err != nil {
			t.Fatalf("iter %d: composed op invalid: %v", i, err)
		}
		want := mustApply(t, b, mid)
		got := mustApply(t, ab, doc)
		if string(got) != string(want) {
			t.Fatalf("iter %d: compose mismatch: got %q want %q", i, string(got), string(want))
		}
	}
}

// TestComposeAssociativity: compose(compose(a,b),c) ≡ compose(a,compose(b,c))
// extensionally.
func TestComposeAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		doc := randDoc(r, r.Intn(20))
		a := randOp(r, len(doc))
		s1 := mustApply(t, a, doc)
		b := randOp(r, len(s1))
		s2 := mustApply(t, b, s1)
		c := randOp(r, len(s2))

		ab, err := Compose(a, b)
		if err != nil {
			t.Fatal(err)
		}
		abc1, err := Compose(ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := Compose(b, c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := Compose(a, bc)
		if err != nil {
			t.Fatal(err)
		}
		g1 := mustApply(t, abc1, doc)
		g2 := mustApply(t, abc2, doc)
		if string(g1) != string(g2) {
			t.Fatalf("iter %d: associativity violated: %q vs %q", i, string(g1), string(g2))
		}
	}
}

func TestComposeAll(t *testing.T) {
	doc := []rune("hello")
	ops := []*Op{}
	cur := doc
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		o := randOp(r, len(cur))
		ops = append(ops, o)
		cur = mustApply(t, o, cur)
	}
	all, err := ComposeAll(len(doc), ops)
	if err != nil {
		t.Fatal(err)
	}
	got := mustApply(t, all, doc)
	if string(got) != string(cur) {
		t.Fatalf("ComposeAll: got %q want %q", string(got), string(cur))
	}

	// Empty sequence: identity.
	id, err := ComposeAll(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !id.IsNoop() || id.BaseLen() != 4 {
		t.Fatalf("empty ComposeAll must be noop on 4, got %v", id)
	}
}

func TestComposeWithNoopIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		n := r.Intn(20)
		a := randOp(r, n)
		pre := New().Retain(n)
		post := New().Retain(a.TargetLen())
		left, err := Compose(pre, a)
		if err != nil {
			t.Fatal(err)
		}
		right, err := Compose(a, post)
		if err != nil {
			t.Fatal(err)
		}
		if !left.Equal(a) || !right.Equal(a) {
			t.Fatalf("noop composition must be identity: %v / %v vs %v", left, right, a)
		}
	}
}
