package op

// ComposedTransformSafe reports whether transforming other against the
// composed operation comp is guaranteed to reproduce the sequential pairwise
// walk that comp summarizes — in either argument order: Transform(comp,
// other) matches walking other across the composed chain one operation at a
// time, and Transform(other, comp) matches the mirror walk.
//
// Why this can fail at all: composition is exact on documents (apply(d,
// Compose(a,b)) == apply(apply(d,a), b)) but lossy for transformation. The
// canonical component order stores an insert adjacent to a delete
// insert-first, which moves the insert's anchor across the deleted runes;
// the same reordering happens to the other operation's intermediate rebased
// forms during a sequential walk when deletions close the gap between its
// insert and a delete run. An insert's anchor is therefore only known up to
// the maximal run of deleted base runes it touches, and when inserts from
// both operations share such a run, their relative order depends on the
// chain's decomposition — information the composition no longer carries.
// Everything else Transform decides (retain/delete alignment, insert ties on
// surviving runes, which resolve a-first in every walk) is forced by the
// operations' contents, where the composed and sequential paths necessarily
// agree.
//
// The predicate is thus: merge the delete intervals of both operations in
// base coordinates into maximal runs; comp is safe against other unless some
// run — including its two boundary positions — contains an insert anchor
// from comp and one from other. The engines consult this before using the
// composed-suffix cache and fall back to the pairwise walk on false; the
// differential fuzz target FuzzIntegrateEquivalence in internal/core and
// TestComposedTransformIdentity here hold the two paths to byte-identical
// results.
//
// Cost: one pass over both component lists; allocation-free whenever either
// operation is delete-free or insert-free (the lagged-catch-up fast path:
// composed append bursts never allocate here).
func ComposedTransformSafe(comp, other *Op) bool {
	if !hasKind(comp, KDelete) && !hasKind(other, KDelete) {
		return true
	}
	if !hasKind(comp, KInsert) || !hasKind(other, KInsert) {
		return true
	}
	cd, od := deleteIntervals(comp), deleteIntervals(other)
	ca, oa := insertAnchors(comp), insertAnchors(other)
	ci, oi := 0, 0 // next delete interval of comp / other
	ai, bi := 0, 0 // next insert anchor of comp / other
	for ci < len(cd) || oi < len(od) {
		// Start a merged run at the earlier remaining interval, then
		// absorb every interval from either list that starts within it
		// (touching intervals merge: deleted runes are contiguous).
		var run ival
		switch {
		case oi >= len(od) || (ci < len(cd) && cd[ci].s <= od[oi].s):
			run = cd[ci]
			ci++
		default:
			run = od[oi]
			oi++
		}
		for {
			switch {
			case ci < len(cd) && cd[ci].s <= run.e:
				run.e = max(run.e, cd[ci].e)
				ci++
			case oi < len(od) && od[oi].s <= run.e:
				run.e = max(run.e, od[oi].e)
				oi++
			default:
				goto merged
			}
		}
	merged:
		// A maximal run [s, e) admits anchor migration across [s, e]
		// inclusive; an anchor belongs to at most one run (runs are
		// separated by at least one surviving rune), so consuming
		// anchors <= run.e is safe.
		if anchorTouches(ca, &ai, run) && anchorTouches(oa, &bi, run) {
			return false
		}
	}
	return true
}

// ival is a half-open interval [s, e) of base rune indices.
type ival struct{ s, e int }

func hasKind(o *Op, k Kind) bool {
	for _, c := range o.comps {
		if c.Kind == k {
			return true
		}
	}
	return false
}

// deleteIntervals returns o's delete runs in base coordinates, ascending.
func deleteIntervals(o *Op) []ival {
	var out []ival
	base := 0
	for _, c := range o.comps {
		switch c.Kind {
		case KDelete:
			if n := len(out); n > 0 && out[n-1].e == base {
				out[n-1].e += c.N
			} else {
				out = append(out, ival{s: base, e: base + c.N})
			}
			base += c.N
		case KRetain:
			base += c.N
		}
	}
	return out
}

// insertAnchors returns the base positions of o's insert runs, ascending.
func insertAnchors(o *Op) []int {
	var out []int
	base := 0
	for _, c := range o.comps {
		switch c.Kind {
		case KInsert:
			if n := len(out); n == 0 || out[n-1] != base {
				out = append(out, base)
			}
		default:
			base += c.N
		}
	}
	return out
}

// anchorTouches advances *i past anchors before run.s and reports whether an
// anchor lies in [run.s, run.e], consuming any it finds there.
func anchorTouches(anchors []int, i *int, run ival) bool {
	for *i < len(anchors) && anchors[*i] < run.s {
		*i++
	}
	found := false
	for *i < len(anchors) && anchors[*i] <= run.e {
		found = true
		*i++
	}
	return found
}
