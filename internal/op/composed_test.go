package op

import (
	"math/rand"
	"testing"
)

// randChainOp builds a random operation over a document of baseLen runes,
// mixing retains, deletes, and (possibly multi-rune) inserts.
func randChainOp(r *rand.Rand, baseLen int) *Op {
	o := New()
	pos := 0
	for pos < baseLen {
		switch r.Intn(4) {
		case 0, 1:
			n := 1 + r.Intn(baseLen-pos)
			o.Retain(n)
			pos += n
		case 2:
			n := 1 + r.Intn(baseLen-pos)
			o.Delete(n)
			pos += n
		default:
			o.Insert(randText(r, 1+r.Intn(3)))
		}
	}
	if r.Intn(2) == 0 {
		o.Insert(randText(r, 1+r.Intn(3)))
	}
	return o
}

func randText(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// TestComposedTransformIdentity is the foundation the composed-suffix
// transform cache (internal/core) rests on: whenever ComposedTransformSafe
// admits a pair, transforming against the composition of a chain must agree
// byte-for-byte with the sequential pairwise walk — in both argument orders,
// on both Transform outputs. The test drives random chains of 2–5 operations
// against a random concurrent operation and checks every safe case; unsafe
// cases are skipped (that is the predicate's contract — the engines fall
// back to the pairwise walk there) but counted, so a predicate that starts
// rejecting everything would show up in the logged rate.
func TestComposedTransformIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const trials = 60000
	safeA, safeB := 0, 0
	for trial := 0; trial < trials; trial++ {
		baseLen := 1 + r.Intn(10)
		depth := 2 + r.Intn(4)
		chain := make([]*Op, depth)
		bl := baseLen
		for i := range chain {
			chain[i] = randChainOp(r, bl)
			bl = chain[i].TargetLen()
		}
		u := randChainOp(r, baseLen)
		comp, err := ComposeAll(baseLen, chain)
		if err != nil {
			t.Fatal(err)
		}

		// Orientation A — the notifier's bridge walk: the chain is the
		// priority (a) side. Sequential: walk u across the chain one
		// operation at a time, rebasing each chain op as the walk goes.
		if ComposedTransformSafe(comp, u) {
			safeA++
			seqU := u
			rebased := make([]*Op, depth)
			for i, b := range chain {
				rebased[i], seqU, err = Transform(b, seqU)
				if err != nil {
					t.Fatal(err)
				}
			}
			seqComp, err := ComposeAll(u.TargetLen(), rebased)
			if err != nil {
				t.Fatal(err)
			}
			compP, uc, err := Transform(comp, u)
			if err != nil {
				t.Fatal(err)
			}
			if !uc.Equal(seqU) {
				t.Fatalf("trial %d (a-side chain): executed form diverges\nchain=%v\nu=%v\nseq=%v\ncomposed=%v",
					trial, chain, u, seqU, uc)
			}
			if !compP.Equal(seqComp) {
				t.Fatalf("trial %d (a-side chain): rebased composition diverges\nchain=%v\nu=%v\nseq=%v\ncomposed=%v",
					trial, chain, u, seqComp, compP)
			}
		}

		// Orientation B — the client's pending walk: the chain is the
		// non-priority (b) side.
		if ComposedTransformSafe(comp, u) {
			safeB++
			seqU := u
			rebased := make([]*Op, depth)
			for i, b := range chain {
				seqU, rebased[i], err = Transform(seqU, b)
				if err != nil {
					t.Fatal(err)
				}
			}
			seqComp, err := ComposeAll(u.TargetLen(), rebased)
			if err != nil {
				t.Fatal(err)
			}
			uc, compP, err := Transform(u, comp)
			if err != nil {
				t.Fatal(err)
			}
			if !uc.Equal(seqU) {
				t.Fatalf("trial %d (b-side chain): executed form diverges\nchain=%v\nu=%v\nseq=%v\ncomposed=%v",
					trial, chain, u, seqU, uc)
			}
			if !compP.Equal(seqComp) {
				t.Fatalf("trial %d (b-side chain): rebased composition diverges\nchain=%v\nu=%v\nseq=%v\ncomposed=%v",
					trial, chain, u, seqComp, compP)
			}
		}
	}
	t.Logf("safe rate: %.1f%% of %d adversarially dense trials", 100*float64(safeA)/float64(trials), trials)
	if safeA == 0 {
		t.Fatal("predicate admitted no trials — cache would never engage")
	}
}

// TestComposedTransformSafeKnownCases pins the predicate's behavior on the
// shapes the design discussion turns on (DESIGN.md §13).
func TestComposedTransformSafeKnownCases(t *testing.T) {
	cases := []struct {
		name       string
		comp, othr *Op
		want       bool
	}{
		{
			// The motivating counterexample: compose(delete(1) retain(2)
			// insert("s"), delete(2) retain(1) insert("f")) canonicalizes
			// to insert("sf") delete(3); an insert at 0 ties ambiguously.
			name: "insert into anchored-over-delete run",
			comp: New().Insert("sf").Delete(3),
			othr: New().Insert("kqkqb").Delete(3),
			want: false,
		},
		{
			name: "append-heavy: exact tie without adjacent delete is safe",
			comp: New().Retain(4).Insert("xyz"),
			othr: New().Retain(4).Insert("q"),
			want: true,
		},
		{
			name: "insert clear of the ambiguous interval",
			comp: New().Retain(2).Insert("s").Delete(2),
			othr: New().Insert("q").Retain(4),
			want: true,
		},
		{
			name: "insert at far edge of the ambiguous interval",
			comp: New().Insert("s").Delete(2).Retain(2),
			othr: New().Retain(2).Insert("q").Retain(2),
			want: false,
		},
		{
			// Emergent adjacency (DESIGN.md §13): the chain deletes the
			// rune separating other's insert from its own delete run, so
			// the sequential walk reanchors the insert across the merged
			// deleted region [0,10) — where comp also inserts.
			name: "merged deleted run hosting inserts from both sides",
			comp: New().Insert("old").Retain(3).Delete(7),
			othr: New().Delete(5).Retain(1).Insert("hey").Retain(4),
			want: false,
		},
		{
			name: "pure delete is always safe",
			comp: New().Delete(2).Retain(2),
			othr: New().Insert("q").Retain(4),
			want: true,
		},
		{
			name: "other without inserts is always safe",
			comp: New().Insert("s").Delete(4),
			othr: New().Delete(2).Retain(2),
			want: true,
		},
	}
	for _, tc := range cases {
		if got := ComposedTransformSafe(tc.comp, tc.othr); got != tc.want {
			t.Errorf("%s: ComposedTransformSafe(%v, %v) = %v, want %v",
				tc.name, tc.comp, tc.othr, got, tc.want)
		}
	}
}
