package op

import (
	"fmt"
	"unicode/utf8"
)

// The paper expresses operations in positional form — Insert[str, pos] and
// Delete[count, pos] (§2.2). These constructors convert positional edits
// into traversal operations against a document of the given rune length.

// NewInsert builds the operation Insert[text, pos] on a document of docLen
// runes: insert text so that its first rune lands at index pos.
func NewInsert(docLen, pos int, text string) (*Op, error) {
	if pos < 0 || pos > docLen {
		return nil, fmt.Errorf("op: insert at %d in %d-rune document: %w",
			pos, docLen, ErrInvalidOp)
	}
	return New().Retain(pos).Insert(text).Retain(docLen - pos), nil
}

// NewDelete builds the operation Delete[count, pos] on a document of docLen
// runes: remove count runes starting at index pos.
func NewDelete(docLen, pos, count int) (*Op, error) {
	if pos < 0 || count < 0 || pos+count > docLen {
		return nil, fmt.Errorf("op: delete [%d,%d) in %d-rune document: %w",
			pos, pos+count, docLen, ErrInvalidOp)
	}
	return New().Retain(pos).Delete(count).Retain(docLen - pos - count), nil
}

// NewReplace builds a combined delete-then-insert at pos, a common editor
// action (overtype / paste over selection).
func NewReplace(docLen, pos, count int, text string) (*Op, error) {
	if pos < 0 || count < 0 || pos+count > docLen {
		return nil, fmt.Errorf("op: replace [%d,%d) in %d-rune document: %w",
			pos, pos+count, docLen, ErrInvalidOp)
	}
	return New().Retain(pos).Insert(text).Delete(count).Retain(docLen - pos - count), nil
}

// Positional is the positional rendering of a simple operation, mirroring the
// paper's Insert[str, pos] / Delete[count, pos] notation. Compound operations
// (those touching several disjoint regions) render as multiple entries.
type Positional struct {
	Insert bool   // true: insert Text at Pos; false: delete Count at Pos
	Pos    int    // rune index in the base document of this primitive
	Count  int    // delete length (runes)
	Text   string // inserted text
}

// Positionals decomposes an operation into primitive positional edits, each
// expressed against the ORIGINAL base document (deletes) or against the
// document as built so far (inserts), in left-to-right order. It is used for
// human-readable replay output matching the paper's notation.
func Positionals(o *Op) []Positional {
	var out []Positional
	base := 0  // index into base document
	shift := 0 // net length change applied so far
	for _, c := range o.comps {
		switch c.Kind {
		case KRetain:
			base += c.N
		case KInsert:
			out = append(out, Positional{Insert: true, Pos: base + shift, Text: c.S})
			shift += c.N
		case KDelete:
			out = append(out, Positional{Pos: base + shift, Count: c.N})
			base += c.N
			shift -= c.N
		}
	}
	return out
}

// Format renders a positional edit in the paper's notation.
func (p Positional) Format() string {
	if p.Insert {
		return fmt.Sprintf("Insert[%q, %d]", p.Text, p.Pos)
	}
	return fmt.Sprintf("Delete[%d, %d]", p.Count, p.Pos)
}

// RuneLen is a convenience wrapper over utf8.RuneCountInString, exported so
// callers building positional ops do not have to import unicode/utf8.
func RuneLen(s string) int { return utf8.RuneCountInString(s) }
