package op

import (
	"errors"
	"testing"
)

func TestNewInsertBounds(t *testing.T) {
	if _, err := NewInsert(5, -1, "x"); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("negative pos must fail, got %v", err)
	}
	if _, err := NewInsert(5, 6, "x"); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("pos past end must fail, got %v", err)
	}
	o, err := NewInsert(5, 5, "x")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := o.ApplyString("abcde")
	if got != "abcdex" {
		t.Fatalf("append at end: got %q", got)
	}
}

func TestNewDeleteBounds(t *testing.T) {
	if _, err := NewDelete(5, 3, 3); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("delete past end must fail, got %v", err)
	}
	if _, err := NewDelete(5, -1, 1); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("negative pos must fail, got %v", err)
	}
	o, err := NewDelete(5, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := o.ApplyString("abcde")
	if got != "" {
		t.Fatalf("delete all: got %q", got)
	}
}

func TestNewReplace(t *testing.T) {
	o, err := NewReplace(5, 1, 3, "XY")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := o.ApplyString("abcde")
	if got != "aXYe" {
		t.Fatalf("replace: got %q want aXYe", got)
	}
	if _, err := NewReplace(5, 4, 2, "z"); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("replace past end must fail, got %v", err)
	}
}

func TestPositionalsSimple(t *testing.T) {
	o, _ := NewInsert(5, 1, "12")
	ps := Positionals(o)
	if len(ps) != 1 || !ps[0].Insert || ps[0].Pos != 1 || ps[0].Text != "12" {
		t.Fatalf("positionals: %+v", ps)
	}
	if ps[0].Format() != `Insert["12", 1]` {
		t.Fatalf("format: %q", ps[0].Format())
	}

	d, _ := NewDelete(5, 2, 3)
	ps = Positionals(d)
	if len(ps) != 1 || ps[0].Insert || ps[0].Pos != 2 || ps[0].Count != 3 {
		t.Fatalf("positionals: %+v", ps)
	}
	if ps[0].Format() != "Delete[3, 2]" {
		t.Fatalf("format: %q", ps[0].Format())
	}
}

// TestPositionalsCompound checks that a split delete (delete spanning a
// concurrent insert) renders as two primitives whose sequential application
// matches the traversal op.
func TestPositionalsCompound(t *testing.T) {
	// On "abcXYdef": delete "bc" and "de" (a delete that was split around XY).
	o := New().Retain(1).Delete(2).Retain(2).Delete(2).Retain(1)
	ps := Positionals(o)
	if len(ps) != 2 {
		t.Fatalf("want 2 primitives, got %+v", ps)
	}
	// Apply primitives sequentially to verify the evolving-document positions.
	docRunes := []rune("abcXYdef")
	cur := string(docRunes)
	for _, p := range ps {
		var prim *Op
		var err error
		if p.Insert {
			prim, err = NewInsert(RuneLen(cur), p.Pos, p.Text)
		} else {
			prim, err = NewDelete(RuneLen(cur), p.Pos, p.Count)
		}
		if err != nil {
			t.Fatal(err)
		}
		cur, err = prim.ApplyString(cur)
		if err != nil {
			t.Fatal(err)
		}
	}
	want, err := o.ApplyString(string(docRunes))
	if err != nil {
		t.Fatal(err)
	}
	if cur != want {
		t.Fatalf("sequential primitives gave %q, traversal gave %q", cur, want)
	}
}

func TestRuneLen(t *testing.T) {
	if RuneLen("日本語") != 3 {
		t.Fatalf("RuneLen multibyte: %d", RuneLen("日本語"))
	}
	if RuneLen("") != 0 {
		t.Fatal("RuneLen empty")
	}
}
