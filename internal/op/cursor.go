package op

// TransformIndex maps a document index (e.g. a remote user's cursor) through
// an operation. Both index and the result are rune offsets; index is in the
// operation's base document, the result in its target document. own controls
// tie-breaking at an insertion point: if own is true the index belongs to the
// author of the operation and is pushed after the inserted text; otherwise it
// stays before it.
func TransformIndex(o *Op, index int, own bool) int {
	newIndex := index
	pos := 0 // walk position in the base document
	for _, c := range o.comps {
		if pos > index {
			break
		}
		switch c.Kind {
		case KRetain:
			pos += c.N
		case KInsert:
			if pos < index || (own && pos == index) {
				newIndex += c.N
			}
		case KDelete:
			if pos < index {
				newIndex -= min(c.N, index-pos)
			}
			pos += c.N
		}
	}
	if newIndex < 0 {
		newIndex = 0
	}
	return newIndex
}

// Selection is a cursor range in a document, measured in runes. Anchor ==
// Head for a plain caret.
type Selection struct {
	Anchor int
	Head   int
}

// TransformSelection maps both ends of a selection through an operation.
func TransformSelection(o *Op, s Selection, own bool) Selection {
	return Selection{
		Anchor: TransformIndex(o, s.Anchor, own),
		Head:   TransformIndex(o, s.Head, own),
	}
}
