package op

import (
	"math/rand"
	"testing"
)

func TestTransformIndexInsertBefore(t *testing.T) {
	o, _ := NewInsert(5, 1, "12") // "ABCDE" -> "A12BCDE"
	if got := TransformIndex(o, 3, false); got != 5 {
		t.Fatalf("cursor at 3 after insert@1 of 2: got %d want 5", got)
	}
	if got := TransformIndex(o, 0, false); got != 0 {
		t.Fatalf("cursor at 0 must stay: got %d", got)
	}
}

func TestTransformIndexInsertAtCursor(t *testing.T) {
	o, _ := NewInsert(5, 2, "xx")
	if got := TransformIndex(o, 2, false); got != 2 {
		t.Fatalf("foreign insert at cursor must not push it: got %d", got)
	}
	if got := TransformIndex(o, 2, true); got != 4 {
		t.Fatalf("own insert at cursor must push it after text: got %d", got)
	}
}

func TestTransformIndexDelete(t *testing.T) {
	o, _ := NewDelete(10, 2, 3) // delete [2,5)
	cases := []struct{ in, want int }{
		{0, 0}, {2, 2}, {3, 2}, {5, 2}, {6, 3}, {10, 7},
	}
	for _, c := range cases {
		if got := TransformIndex(o, c.in, false); got != c.want {
			t.Fatalf("delete[2,5): cursor %d -> %d, want %d", c.in, got, c.want)
		}
	}
}

func TestTransformIndexNeverNegative(t *testing.T) {
	o := New().Delete(5)
	if got := TransformIndex(o, 3, false); got != 0 {
		t.Fatalf("cursor inside fully deleted prefix: got %d want 0", got)
	}
}

// TestTransformIndexStaysInBounds: a transformed cursor always lands within
// the target document.
func TestTransformIndexStaysInBounds(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		doc := randDoc(r, 1+r.Intn(25))
		o := randOp(r, len(doc))
		idx := r.Intn(len(doc) + 1)
		for _, own := range []bool{false, true} {
			got := TransformIndex(o, idx, own)
			if got < 0 || got > o.TargetLen() {
				t.Fatalf("iter %d: cursor %d -> %d outside [0,%d] (op %v)",
					i, idx, got, o.TargetLen(), o)
			}
		}
	}
}

func TestTransformSelection(t *testing.T) {
	o, _ := NewInsert(8, 2, "ab")
	sel := TransformSelection(o, Selection{Anchor: 1, Head: 5}, false)
	if sel.Anchor != 1 || sel.Head != 7 {
		t.Fatalf("selection transform: got %+v", sel)
	}
}
