package op

// Diff computes an operation transforming document a into document b using
// longest-common-prefix/suffix trimming: the edit is expressed as a single
// replace of the differing middle. This is how an editor integrates an
// external whole-document change (reload from disk, paste-over-all) into the
// collaborative stream without losing concurrent remote edits.
//
// The result is minimal for single-region changes; for multi-region changes
// it still applies correctly, just less surgically.
func Diff(a, b string) *Op {
	ra, rb := []rune(a), []rune(b)
	// Longest common prefix.
	p := 0
	for p < len(ra) && p < len(rb) && ra[p] == rb[p] {
		p++
	}
	// Longest common suffix of the remainders.
	s := 0
	for s < len(ra)-p && s < len(rb)-p && ra[len(ra)-1-s] == rb[len(rb)-1-s] {
		s++
	}
	return New().
		Retain(p).
		Insert(string(rb[p : len(rb)-s])).
		Delete(len(ra) - p - s).
		Retain(s)
}
