package op

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiffBasics(t *testing.T) {
	cases := []struct{ a, b string }{
		{"", ""},
		{"", "hello"},
		{"hello", ""},
		{"hello", "hello"},
		{"hello world", "hello brave world"},
		{"hello brave world", "hello world"},
		{"abcdef", "abXYef"},
		{"aaa", "aa"},   // ambiguous repeats
		{"aa", "aaa"},   // ambiguous repeats
		{"日本語", "日本語!"}, // multibyte
		{"日本語", "日木語"},
	}
	for _, c := range cases {
		d := Diff(c.a, c.b)
		got, err := d.ApplyString(c.a)
		if err != nil {
			t.Fatalf("Diff(%q,%q): %v", c.a, c.b, err)
		}
		if got != c.b {
			t.Fatalf("Diff(%q,%q) applied to %q gives %q", c.a, c.b, c.a, got)
		}
	}
}

func TestDiffIdentityIsNoop(t *testing.T) {
	d := Diff("same text", "same text")
	if !d.IsNoop() {
		t.Fatalf("identity diff: %v", d)
	}
}

func TestDiffIsMinimalForSingleRegion(t *testing.T) {
	d := Diff("hello world", "hello brave world")
	// retain(6) insert("brave ") retain(5)
	want := New().Retain(6).Insert("brave ").Retain(5)
	if !d.Equal(want) {
		t.Fatalf("diff: %v want %v", d, want)
	}
}

// TestDiffQuick: Diff(a,b) applied to a always yields b.
func TestDiffQuick(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := string(randDoc(ra, ra.Intn(40)))
		b := string(randDoc(rb, rb.Intn(40)))
		got, err := Diff(a, b).ApplyString(a)
		return err == nil && got == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDiffOfEditedDoc: diffing against the result of a random op recovers
// an operation with the same effect.
func TestDiffOfEditedDoc(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		doc := randDoc(r, r.Intn(30))
		o := randOp(r, len(doc))
		after, err := o.Apply(doc)
		if err != nil {
			t.Fatal(err)
		}
		d := Diff(string(doc), string(after))
		got, err := d.ApplyString(string(doc))
		if err != nil || got != string(after) {
			t.Fatalf("iter %d: %q vs %q (%v)", i, got, string(after), err)
		}
	}
}
