package op

import "errors"

// Sentinel errors returned by the op package. Callers match them with
// errors.Is.
var (
	// ErrLengthMismatch indicates an operation was applied to, composed
	// with, or transformed against something of the wrong document length.
	ErrLengthMismatch = errors.New("document length mismatch")

	// ErrInvalidOp indicates a structurally invalid operation, e.g. one
	// decoded from a corrupt wire message.
	ErrInvalidOp = errors.New("invalid operation")
)
