package op

import (
	"strings"
	"testing"
)

// fuzzAlphabet mixes ASCII with multi-byte runes so the byte/rune distinction
// in component lengths is exercised.
var fuzzAlphabet = []rune("ab π€")

// buildFuzzOp interprets prog as instruction pairs (kind, arg) over a document
// of docLen runes and returns a well-formed op with BaseLen()==docLen: retains
// and deletes are clamped to the unconsumed remainder, and the tail of the
// document is retained. Every byte program maps to a valid op, so the fuzzer
// spends its budget on Transform/Compose rather than on input rejection.
func buildFuzzOp(docLen int, prog []byte) *Op {
	o := New()
	consumed := 0
	for i := 0; i+1 < len(prog); i += 2 {
		arg := int(prog[i+1])
		switch prog[i] % 3 {
		case 0, 1:
			rem := docLen - consumed
			if rem <= 0 {
				continue
			}
			n := arg%rem + 1
			if prog[i]%3 == 0 {
				o.Retain(n)
			} else {
				o.Delete(n)
			}
			consumed += n
		case 2:
			r := fuzzAlphabet[arg%len(fuzzAlphabet)]
			o.Insert(strings.Repeat(string(r), arg%3+1))
		}
	}
	if consumed < docLen {
		o.Retain(docLen - consumed)
	}
	return o
}

// FuzzTransform checks TP1 (paper §2: convergence for two concurrent
// operations) plus the structural invariants of Transform on arbitrary
// concurrent op pairs: both transformed results validate, their lengths chain
// (a' applies after b and vice versa), and both execution orders converge to
// the same document.
func FuzzTransform(f *testing.F) {
	f.Add("hello world", []byte{0, 4, 2, 7, 1, 2}, []byte{1, 3, 2, 1})
	f.Add("", []byte{2, 5, 2, 8}, []byte{2, 2})
	f.Add("aπ€b", []byte{1, 1, 2, 3, 0, 0}, []byte{0, 1, 1, 9})
	f.Fuzz(func(t *testing.T, doc string, prog1, prog2 []byte) {
		if len(doc) > 4096 || len(prog1) > 64 || len(prog2) > 64 {
			t.Skip("oversized input")
		}
		docLen := RuneLen(doc)
		a := buildFuzzOp(docLen, prog1)
		b := buildFuzzOp(docLen, prog2)
		if err := a.Validate(); err != nil {
			t.Fatalf("generator produced invalid a: %v", err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("generator produced invalid b: %v", err)
		}

		a1, b1, err := Transform(a, b)
		if err != nil {
			t.Fatalf("Transform(%v, %v): %v", a, b, err)
		}
		if err := a1.Validate(); err != nil {
			t.Fatalf("a' invalid: %v (a=%v b=%v a'=%v)", err, a, b, a1)
		}
		if err := b1.Validate(); err != nil {
			t.Fatalf("b' invalid: %v (a=%v b=%v b'=%v)", err, a, b, b1)
		}
		if a1.BaseLen() != b.TargetLen() {
			t.Fatalf("a'.BaseLen()=%d, want b.TargetLen()=%d", a1.BaseLen(), b.TargetLen())
		}
		if b1.BaseLen() != a.TargetLen() {
			t.Fatalf("b'.BaseLen()=%d, want a.TargetLen()=%d", b1.BaseLen(), a.TargetLen())
		}

		viaA, err := a.ApplyString(doc)
		if err != nil {
			t.Fatalf("apply a: %v", err)
		}
		viaA, err = b1.ApplyString(viaA)
		if err != nil {
			t.Fatalf("apply b' after a: %v", err)
		}
		viaB, err := b.ApplyString(doc)
		if err != nil {
			t.Fatalf("apply b: %v", err)
		}
		viaB, err = a1.ApplyString(viaB)
		if err != nil {
			t.Fatalf("apply a' after b: %v", err)
		}
		if viaA != viaB {
			t.Fatalf("TP1 violated:\n  doc=%q a=%v b=%v\n  a,b'=%q\n  b,a'=%q", doc, a, b, viaA, viaB)
		}
	})
}

// FuzzCompose checks that composing two sequential operations is equivalent
// to applying them one after the other, and that the composition's lengths
// chain correctly.
func FuzzCompose(f *testing.F) {
	f.Add("hello world", []byte{0, 4, 2, 7, 1, 2}, []byte{1, 3, 2, 1})
	f.Add("", []byte{2, 5, 2, 8}, []byte{2, 2})
	f.Add("aπ€b", []byte{1, 1, 2, 3, 0, 0}, []byte{0, 1, 1, 9})
	f.Fuzz(func(t *testing.T, doc string, prog1, prog2 []byte) {
		if len(doc) > 4096 || len(prog1) > 64 || len(prog2) > 64 {
			t.Skip("oversized input")
		}
		docLen := RuneLen(doc)
		a := buildFuzzOp(docLen, prog1)
		b := buildFuzzOp(a.TargetLen(), prog2)
		if err := a.Validate(); err != nil {
			t.Fatalf("generator produced invalid a: %v", err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("generator produced invalid b: %v", err)
		}

		ab, err := Compose(a, b)
		if err != nil {
			t.Fatalf("Compose(%v, %v): %v", a, b, err)
		}
		if err := ab.Validate(); err != nil {
			t.Fatalf("a·b invalid: %v (a=%v b=%v a·b=%v)", err, a, b, ab)
		}
		if ab.BaseLen() != a.BaseLen() {
			t.Fatalf("(a·b).BaseLen()=%d, want a.BaseLen()=%d", ab.BaseLen(), a.BaseLen())
		}
		if ab.TargetLen() != b.TargetLen() {
			t.Fatalf("(a·b).TargetLen()=%d, want b.TargetLen()=%d", ab.TargetLen(), b.TargetLen())
		}

		stepwise, err := a.ApplyString(doc)
		if err != nil {
			t.Fatalf("apply a: %v", err)
		}
		stepwise, err = b.ApplyString(stepwise)
		if err != nil {
			t.Fatalf("apply b after a: %v", err)
		}
		composed, err := ab.ApplyString(doc)
		if err != nil {
			t.Fatalf("apply a·b: %v", err)
		}
		if composed != stepwise {
			t.Fatalf("Compose diverges:\n  doc=%q a=%v b=%v\n  a·b=%q\n  a;b=%q", doc, a, b, composed, stepwise)
		}
	})
}
