package op

import "fmt"

// Invert returns the operation that undoes o on the document doc that o was
// applied to (doc is the state *before* o). For every valid doc:
//
//	apply(apply(doc, o), Invert(o, doc)) == doc
//
// Inversion needs the base document because a delete does not record the
// text it removed.
func Invert(o *Op, doc []rune) (*Op, error) {
	if len(doc) != o.baseLen {
		return nil, fmt.Errorf("op: invert against %d runes: %w (need %d)",
			len(doc), ErrLengthMismatch, o.baseLen)
	}
	inv := New()
	pos := 0
	for _, c := range o.comps {
		switch c.Kind {
		case KRetain:
			inv.Retain(c.N)
			pos += c.N
		case KInsert:
			inv.Delete(c.N)
		case KDelete:
			inv.Insert(string(doc[pos : pos+c.N]))
			pos += c.N
		}
	}
	return inv, nil
}
