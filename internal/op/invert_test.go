package op

import (
	"errors"
	"math/rand"
	"testing"
)

func TestInvertBasics(t *testing.T) {
	doc := []rune("ABCDE")
	o := New().Retain(1).Insert("12").Retain(1).Delete(3)
	inv, err := Invert(o, doc)
	if err != nil {
		t.Fatal(err)
	}
	after := mustApply(t, o, doc)
	back := mustApply(t, inv, after)
	if string(back) != "ABCDE" {
		t.Fatalf("invert round-trip: got %q", string(back))
	}
	// The inverse of the delete must restore the deleted text "CDE".
	wantInv := New().Retain(1).Delete(2).Retain(1).Insert("CDE")
	if !inv.Equal(wantInv) {
		t.Fatalf("inverse: got %v want %v", inv, wantInv)
	}
}

func TestInvertLengthMismatch(t *testing.T) {
	o := New().Retain(3)
	if _, err := Invert(o, []rune("ab")); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

func TestInvertRoundTripRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 2000; i++ {
		doc := randDoc(r, r.Intn(30))
		o := randOp(r, len(doc))
		inv, err := Invert(o, doc)
		if err != nil {
			t.Fatalf("iter %d: invert: %v", i, err)
		}
		back := mustApply(t, inv, mustApply(t, o, doc))
		if string(back) != string(doc) {
			t.Fatalf("iter %d: round trip %q -> %q", i, string(doc), string(back))
		}
		// Double inversion restores the original operation extensionally.
		inv2, err := Invert(inv, mustApply(t, o, doc))
		if err != nil {
			t.Fatal(err)
		}
		if string(mustApply(t, inv2, doc)) != string(mustApply(t, o, doc)) {
			t.Fatalf("iter %d: double inversion differs", i)
		}
	}
}
