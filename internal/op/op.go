// Package op implements the operational-transformation substrate used by the
// compressed-vector-clock group editor (Sun & Cai, IPPS 2002, §2.3).
//
// An Op is a traversal of a text document expressed as a sequence of
// components: Retain(n) skips n runes, Insert(s) adds the text s, and
// Delete(n) removes n runes. This representation is closed under composition
// and inclusion transformation and satisfies transformation property TP1,
// which is what the star-topology integration algorithm requires.
//
// All positions and lengths are measured in runes, not bytes, so concurrent
// edits on multi-byte text transform correctly.
package op

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Kind identifies the type of a single operation component.
type Kind uint8

// Component kinds.
const (
	// KRetain skips over runes without changing them.
	KRetain Kind = iota
	// KInsert inserts text at the current position.
	KInsert
	// KDelete removes runes at the current position.
	KDelete
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KRetain:
		return "retain"
	case KInsert:
		return "insert"
	case KDelete:
		return "delete"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Comp is a single component of an operation. For KRetain and KDelete the N
// field holds the rune count; for KInsert, S holds the inserted text and N
// caches its rune length.
type Comp struct {
	Kind Kind
	N    int
	S    string
}

// Op is an edit operation on a text document. The zero value is a noop on an
// empty document. Ops are built with the fluent Retain/Insert/Delete methods
// and are kept in canonical form: adjacent components of the same kind are
// merged and an insert adjacent to a delete is ordered insert-first.
type Op struct {
	comps   []Comp
	baseLen int // required document length (runes) before applying
	tgtLen  int // document length (runes) after applying
}

// New returns an empty operation, ready for building.
func New() *Op { return &Op{} }

// BaseLen reports the rune length a document must have for Apply to succeed.
func (o *Op) BaseLen() int { return o.baseLen }

// TargetLen reports the rune length of the document after applying o.
func (o *Op) TargetLen() int { return o.tgtLen }

// Comps returns the canonical component sequence. The returned slice is owned
// by the operation and must not be modified.
func (o *Op) Comps() []Comp { return o.comps }

// IsNoop reports whether applying o leaves every document unchanged.
func (o *Op) IsNoop() bool {
	for _, c := range o.comps {
		if c.Kind != KRetain {
			return false
		}
	}
	return true
}

// Retain appends a retain of n runes. n <= 0 is ignored.
func (o *Op) Retain(n int) *Op {
	if n <= 0 {
		return o
	}
	o.baseLen += n
	o.tgtLen += n
	if l := len(o.comps); l > 0 && o.comps[l-1].Kind == KRetain {
		o.comps[l-1].N += n
		return o
	}
	o.comps = append(o.comps, Comp{Kind: KRetain, N: n})
	return o
}

// Insert appends an insertion of s. An empty s is ignored.
func (o *Op) Insert(s string) *Op {
	if s == "" {
		return o
	}
	n := utf8.RuneCountInString(s)
	o.tgtLen += n
	l := len(o.comps)
	switch {
	case l > 0 && o.comps[l-1].Kind == KInsert:
		o.comps[l-1].S += s
		o.comps[l-1].N += n
	case l > 0 && o.comps[l-1].Kind == KDelete:
		// Canonical order: when an insert and a delete are adjacent the
		// result is the same either way, so we always store the insert
		// first. This makes structural equality meaningful.
		if l > 1 && o.comps[l-2].Kind == KInsert {
			o.comps[l-2].S += s
			o.comps[l-2].N += n
		} else {
			o.comps = append(o.comps, Comp{})
			copy(o.comps[l:], o.comps[l-1:])
			o.comps[l-1] = Comp{Kind: KInsert, N: n, S: s}
		}
	default:
		o.comps = append(o.comps, Comp{Kind: KInsert, N: n, S: s})
	}
	return o
}

// Delete appends a deletion of n runes. n <= 0 is ignored.
func (o *Op) Delete(n int) *Op {
	if n <= 0 {
		return o
	}
	o.baseLen += n
	if l := len(o.comps); l > 0 && o.comps[l-1].Kind == KDelete {
		o.comps[l-1].N += n
		return o
	}
	o.comps = append(o.comps, Comp{Kind: KDelete, N: n})
	return o
}

// Clone returns a deep copy of o.
func (o *Op) Clone() *Op {
	c := &Op{baseLen: o.baseLen, tgtLen: o.tgtLen}
	c.comps = append([]Comp(nil), o.comps...)
	return c
}

// Equal reports whether two operations have identical canonical forms.
func (o *Op) Equal(p *Op) bool {
	if o.baseLen != p.baseLen || o.tgtLen != p.tgtLen || len(o.comps) != len(p.comps) {
		return false
	}
	for i, c := range o.comps {
		if c != p.comps[i] {
			return false
		}
	}
	return true
}

// String renders the operation in a compact human-readable form such as
// "retain(4) insert(\"12\") delete(3)".
func (o *Op) String() string {
	if len(o.comps) == 0 {
		return "noop"
	}
	var b strings.Builder
	for i, c := range o.comps {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch c.Kind {
		case KRetain:
			fmt.Fprintf(&b, "retain(%d)", c.N)
		case KInsert:
			fmt.Fprintf(&b, "insert(%q)", c.S)
		case KDelete:
			fmt.Fprintf(&b, "delete(%d)", c.N)
		}
	}
	return b.String()
}

// Apply applies o to doc and returns the resulting rune slice. It fails with
// ErrLengthMismatch if doc does not have exactly BaseLen runes.
func (o *Op) Apply(doc []rune) ([]rune, error) {
	if len(doc) != o.baseLen {
		return nil, fmt.Errorf("op: apply to document of %d runes: %w (need %d)",
			len(doc), ErrLengthMismatch, o.baseLen)
	}
	out := make([]rune, 0, o.tgtLen)
	pos := 0
	for _, c := range o.comps {
		switch c.Kind {
		case KRetain:
			out = append(out, doc[pos:pos+c.N]...)
			pos += c.N
		case KInsert:
			out = append(out, []rune(c.S)...)
		case KDelete:
			pos += c.N
		}
	}
	return out, nil
}

// ApplyString is Apply for string documents.
func (o *Op) ApplyString(doc string) (string, error) {
	res, err := o.Apply([]rune(doc))
	if err != nil {
		return "", err
	}
	return string(res), nil
}

// Validate checks internal consistency of the component sequence against the
// cached lengths. It is used by the wire decoder and by tests.
func (o *Op) Validate() error {
	base, tgt := 0, 0
	for i, c := range o.comps {
		switch c.Kind {
		case KRetain:
			if c.N <= 0 {
				return fmt.Errorf("op: comp %d: non-positive retain: %w", i, ErrInvalidOp)
			}
			base += c.N
			tgt += c.N
		case KInsert:
			if c.S == "" || c.N != utf8.RuneCountInString(c.S) {
				return fmt.Errorf("op: comp %d: bad insert: %w", i, ErrInvalidOp)
			}
			tgt += c.N
		case KDelete:
			if c.N <= 0 {
				return fmt.Errorf("op: comp %d: non-positive delete: %w", i, ErrInvalidOp)
			}
			base += c.N
		default:
			return fmt.Errorf("op: comp %d: unknown kind %d: %w", i, c.Kind, ErrInvalidOp)
		}
	}
	if base != o.baseLen || tgt != o.tgtLen {
		return fmt.Errorf("op: cached lengths (%d,%d) != computed (%d,%d): %w",
			o.baseLen, o.tgtLen, base, tgt, ErrInvalidOp)
	}
	return nil
}

// FromComps reconstructs an operation from a raw component sequence (as read
// off the wire), recomputing lengths and canonicalizing.
func FromComps(comps []Comp) (*Op, error) {
	o := New()
	for i, c := range comps {
		switch c.Kind {
		case KRetain:
			if c.N <= 0 {
				return nil, fmt.Errorf("op: comp %d: non-positive retain: %w", i, ErrInvalidOp)
			}
			o.Retain(c.N)
		case KInsert:
			if c.S == "" {
				return nil, fmt.Errorf("op: comp %d: empty insert: %w", i, ErrInvalidOp)
			}
			o.Insert(c.S)
		case KDelete:
			if c.N <= 0 {
				return nil, fmt.Errorf("op: comp %d: non-positive delete: %w", i, ErrInvalidOp)
			}
			o.Delete(c.N)
		default:
			return nil, fmt.Errorf("op: comp %d: unknown kind %d: %w", i, c.Kind, ErrInvalidOp)
		}
	}
	return o, nil
}
