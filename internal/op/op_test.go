package op

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// randDoc returns a random document of n runes, mixing ASCII and multi-byte
// runes so rune/byte confusion is caught.
func randDoc(r *rand.Rand, n int) []rune {
	alphabet := []rune("abcdefghij 0123456789éüπ日本語")
	doc := make([]rune, n)
	for i := range doc {
		doc[i] = alphabet[r.Intn(len(alphabet))]
	}
	return doc
}

// randOp builds a random valid operation over a base document of baseLen
// runes.
func randOp(r *rand.Rand, baseLen int) *Op {
	o := New()
	pos := 0
	for pos < baseLen {
		n := 1 + r.Intn(4)
		if n > baseLen-pos {
			n = baseLen - pos
		}
		switch r.Intn(3) {
		case 0:
			o.Retain(n)
			pos += n
		case 1:
			o.Insert(string(randDoc(r, 1+r.Intn(3))))
		case 2:
			o.Delete(n)
			pos += n
		}
	}
	if r.Intn(3) == 0 {
		o.Insert(string(randDoc(r, 1+r.Intn(3))))
	}
	return o
}

func mustApply(t *testing.T, o *Op, doc []rune) []rune {
	t.Helper()
	res, err := o.Apply(doc)
	if err != nil {
		t.Fatalf("apply %v to %q: %v", o, string(doc), err)
	}
	return res
}

func TestBuilderCanonicalMerge(t *testing.T) {
	o := New().Retain(2).Retain(3).Insert("ab").Insert("cd").Delete(1).Delete(2)
	want := New().Retain(5).Insert("abcd").Delete(3)
	if !o.Equal(want) {
		t.Fatalf("canonical form: got %v want %v", o, want)
	}
	if len(o.Comps()) != 3 {
		t.Fatalf("expected 3 merged comps, got %d: %v", len(o.Comps()), o)
	}
}

func TestBuilderInsertAfterDeleteCanonicalOrder(t *testing.T) {
	// delete-then-insert and insert-then-delete are the same operation;
	// the builder must store them identically (insert first).
	a := New().Retain(1).Delete(2).Insert("xy").Retain(1)
	b := New().Retain(1).Insert("xy").Delete(2).Retain(1)
	if !a.Equal(b) {
		t.Fatalf("canonical ordering failed: %v vs %v", a, b)
	}
	got, err := a.ApplyString("abcd")
	if err != nil {
		t.Fatal(err)
	}
	if got != "axyd" {
		t.Fatalf("apply: got %q want %q", got, "axyd")
	}
}

func TestBuilderInsertAfterDeleteMergesWithPriorInsert(t *testing.T) {
	o := New().Insert("ab").Delete(1).Insert("cd")
	want := New().Insert("abcd").Delete(1)
	if !o.Equal(want) {
		t.Fatalf("got %v want %v", o, want)
	}
}

func TestBuilderIgnoresZeroAndNegative(t *testing.T) {
	o := New().Retain(0).Retain(-3).Insert("").Delete(0).Delete(-1)
	if len(o.Comps()) != 0 || o.BaseLen() != 0 || o.TargetLen() != 0 {
		t.Fatalf("zero-length pieces must be ignored, got %v", o)
	}
	if !o.IsNoop() {
		t.Fatal("empty op must be a noop")
	}
}

func TestApplyBasics(t *testing.T) {
	cases := []struct {
		name string
		o    *Op
		in   string
		want string
	}{
		{"noop", New().Retain(5), "hello", "hello"},
		{"insert-front", New().Insert("ab").Retain(3), "cde", "abcde"},
		{"insert-end", New().Retain(3).Insert("xy"), "abc", "abcxy"},
		{"delete-all", New().Delete(4), "abcd", ""},
		{"mixed", New().Retain(1).Insert("12").Retain(1).Delete(3), "ABCDE", "A12B"},
		{"empty-doc", New().Insert("seed"), "", "seed"},
		{"multibyte", New().Retain(1).Delete(1).Insert("本"), "日語", "日本"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.o.ApplyString(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("got %q want %q", got, tc.want)
			}
		})
	}
}

func TestApplyLengthMismatch(t *testing.T) {
	o := New().Retain(3)
	if _, err := o.ApplyString("ab"); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := o.ApplyString("abcd"); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

func TestLengths(t *testing.T) {
	o := New().Retain(2).Insert("xyz").Delete(4).Retain(1)
	if o.BaseLen() != 7 {
		t.Fatalf("base len: got %d want 7", o.BaseLen())
	}
	if o.TargetLen() != 6 {
		t.Fatalf("target len: got %d want 6", o.TargetLen())
	}
}

func TestIsNoop(t *testing.T) {
	if !New().IsNoop() || !New().Retain(10).IsNoop() {
		t.Fatal("pure retains must be noops")
	}
	if New().Insert("x").IsNoop() || New().Delete(1).IsNoop() {
		t.Fatal("inserts/deletes are not noops")
	}
}

func TestCloneIsDeep(t *testing.T) {
	o := New().Retain(1).Insert("ab").Delete(1)
	c := o.Clone()
	c.Retain(5)
	if o.Equal(c) {
		t.Fatal("mutating clone must not affect original")
	}
	if o.BaseLen() != 2 || c.BaseLen() != 7 {
		t.Fatalf("lengths diverged wrongly: %d %d", o.BaseLen(), c.BaseLen())
	}
}

func TestStringRendering(t *testing.T) {
	o := New().Retain(4).Insert("12").Delete(3)
	s := o.String()
	for _, want := range []string{"retain(4)", `insert("12")`, "delete(3)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if New().String() != "noop" {
		t.Fatalf("empty op renders %q", New().String())
	}
}

func TestValidate(t *testing.T) {
	o := New().Retain(2).Insert("abc").Delete(1)
	if err := o.Validate(); err != nil {
		t.Fatalf("valid op rejected: %v", err)
	}
	bad := &Op{comps: []Comp{{Kind: KRetain, N: -1}}}
	if err := bad.Validate(); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("want ErrInvalidOp, got %v", err)
	}
	badLen := &Op{comps: []Comp{{Kind: KRetain, N: 2}}, baseLen: 3, tgtLen: 2}
	if err := badLen.Validate(); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("want ErrInvalidOp for cached length mismatch, got %v", err)
	}
}

func TestFromComps(t *testing.T) {
	src := New().Retain(2).Insert("né").Delete(1)
	rebuilt, err := FromComps(src.Comps())
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt.Equal(src) {
		t.Fatalf("round-trip mismatch: %v vs %v", rebuilt, src)
	}
	if _, err := FromComps([]Comp{{Kind: KInsert}}); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("empty insert must be rejected, got %v", err)
	}
	if _, err := FromComps([]Comp{{Kind: Kind(9), N: 1}}); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("unknown kind must be rejected, got %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KRetain.String() != "retain" || KInsert.String() != "insert" || KDelete.String() != "delete" {
		t.Fatal("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown kind must render something")
	}
}

func TestRandomOpsApplyConsistently(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		doc := randDoc(r, r.Intn(40))
		o := randOp(r, len(doc))
		if err := o.Validate(); err != nil {
			t.Fatalf("random op invalid: %v", err)
		}
		res := mustApply(t, o, doc)
		if len(res) != o.TargetLen() {
			t.Fatalf("target length %d but got %d runes", o.TargetLen(), len(res))
		}
	}
}
