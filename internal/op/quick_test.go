package op

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// opCase is a quick.Generator producing a random document and two random
// operations over it — the raw material for the algebraic laws below.
type opCase struct {
	Doc  []rune
	A, B *Op
}

// Generate implements quick.Generator.
func (opCase) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size%40 + 1)
	doc := randDoc(r, n)
	return reflect.ValueOf(opCase{
		Doc: doc,
		A:   randOp(r, n),
		B:   randOp(r, n),
	})
}

// TestQuickTP1 is transformation property TP1 as a quick property.
func TestQuickTP1(t *testing.T) {
	f := func(c opCase) bool {
		a1, b1, err := Transform(c.A, c.B)
		if err != nil {
			return false
		}
		viaA, err := c.A.Apply(c.Doc)
		if err != nil {
			return false
		}
		viaA, err = b1.Apply(viaA)
		if err != nil {
			return false
		}
		viaB, err := c.B.Apply(c.Doc)
		if err != nil {
			return false
		}
		viaB, err = a1.Apply(viaB)
		if err != nil {
			return false
		}
		return string(viaA) == string(viaB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTransformPreservesLengths: a' expects b's output length and vice
// versa, and both produce the same target length.
func TestQuickTransformPreservesLengths(t *testing.T) {
	f := func(c opCase) bool {
		a1, b1, err := Transform(c.A, c.B)
		if err != nil {
			return false
		}
		if a1.BaseLen() != c.B.TargetLen() || b1.BaseLen() != c.A.TargetLen() {
			return false
		}
		return a1.TargetLen() == b1.TargetLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickComposeAgreesWithSequentialApply.
func TestQuickComposeAgreesWithSequentialApply(t *testing.T) {
	f := func(c opCase) bool {
		mid, err := c.A.Apply(c.Doc)
		if err != nil {
			return false
		}
		// Rebuild B over the intermediate length so composition is legal.
		r := rand.New(rand.NewSource(int64(len(mid))))
		b := randOp(r, len(mid))
		ab, err := Compose(c.A, b)
		if err != nil {
			return false
		}
		seq, err := b.Apply(mid)
		if err != nil {
			return false
		}
		direct, err := ab.Apply(c.Doc)
		if err != nil {
			return false
		}
		return string(seq) == string(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInvertRoundTrip.
func TestQuickInvertRoundTrip(t *testing.T) {
	f := func(c opCase) bool {
		inv, err := Invert(c.A, c.Doc)
		if err != nil {
			return false
		}
		after, err := c.A.Apply(c.Doc)
		if err != nil {
			return false
		}
		back, err := inv.Apply(after)
		if err != nil {
			return false
		}
		return string(back) == string(c.Doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCanonicalFormStable: rebuilding an op from its own components
// yields a structurally identical op (canonical form is a fixed point).
func TestQuickCanonicalFormStable(t *testing.T) {
	f := func(c opCase) bool {
		rebuilt, err := FromComps(c.A.Comps())
		if err != nil {
			return false
		}
		return rebuilt.Equal(c.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPositionalsEquivalence: applying the positional decomposition
// sequentially equals applying the traversal op.
func TestQuickPositionalsEquivalence(t *testing.T) {
	f := func(c opCase) bool {
		want, err := c.A.ApplyString(string(c.Doc))
		if err != nil {
			return false
		}
		cur := string(c.Doc)
		for _, p := range Positionals(c.A) {
			var prim *Op
			var err error
			if p.Insert {
				prim, err = NewInsert(RuneLen(cur), p.Pos, p.Text)
			} else {
				prim, err = NewDelete(RuneLen(cur), p.Pos, p.Count)
			}
			if err != nil {
				return false
			}
			cur, err = prim.ApplyString(cur)
			if err != nil {
				return false
			}
		}
		return cur == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
