package op

import "fmt"

// Transform is the inclusion transformation at the heart of operational
// transformation (paper §2.3). Given two operations a and b defined on the
// same document state, it returns a' and b' such that transformation
// property TP1 holds:
//
//	apply(apply(d, a), b') == apply(apply(d, b), a')
//
// When a and b insert at the same position, a's insertion is placed first;
// the caller encodes priority by argument order. The group-editor engines
// always pass the notifier-side operation as a, so every site breaks ties
// identically and replicas converge.
func Transform(a, b *Op) (a1, b1 *Op, err error) {
	if a.baseLen != b.baseLen {
		return nil, nil, fmt.Errorf("op: transform: base lengths %d vs %d: %w",
			a.baseLen, b.baseLen, ErrLengthMismatch)
	}
	a1, b1 = New(), New()
	ia := &iter{comps: a.comps}
	ib := &iter{comps: b.comps}
	for !ia.done() || !ib.done() {
		// a's insert wins ties: it lands first in the combined document.
		if !ia.done() {
			if ca := ia.peek(); ca.Kind == KInsert {
				a1.Insert(ca.S)
				b1.Retain(ca.N)
				ia.advance(ca.N)
				continue
			}
		}
		if !ib.done() {
			if cb := ib.peek(); cb.Kind == KInsert {
				a1.Retain(cb.N)
				b1.Insert(cb.S)
				ib.advance(cb.N)
				continue
			}
		}
		if ia.done() || ib.done() {
			return nil, nil, fmt.Errorf("op: transform: ragged operations: %w", ErrInvalidOp)
		}
		ca, cb := ia.peek(), ib.peek()
		n := min(ca.N, cb.N)
		switch {
		case ca.Kind == KRetain && cb.Kind == KRetain:
			a1.Retain(n)
			b1.Retain(n)
		case ca.Kind == KDelete && cb.Kind == KDelete:
			// Both deleted the same region: neither needs to redo it.
		case ca.Kind == KDelete && cb.Kind == KRetain:
			a1.Delete(n)
		case ca.Kind == KRetain && cb.Kind == KDelete:
			b1.Delete(n)
		default:
			return nil, nil, fmt.Errorf("op: transform: unexpected %v/%v: %w", ca.Kind, cb.Kind, ErrInvalidOp)
		}
		ia.advance(n)
		ib.advance(n)
	}
	return a1, b1, nil
}

// TransformOnly returns just the transformed form of a against b (a' in
// Transform). It is used where the counterpart b' is not needed.
func TransformOnly(a, b *Op) (*Op, error) {
	a1, _, err := Transform(a, b)
	return a1, err
}
