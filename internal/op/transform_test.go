package op

import (
	"errors"
	"math/rand"
	"testing"
)

// TestPaperSection23Example reproduces the worked transformation from §2.3:
// O1 = Insert["12", 1] and O2 = Delete[3, 2] are concurrent on "ABCDE".
// Transforming O2 against O1 must yield Delete[3, 4], and both execution
// orders must converge to the intention-preserved result "A12B".
func TestPaperSection23Example(t *testing.T) {
	const base = "ABCDE"
	o1, err := NewInsert(5, 1, "12")
	if err != nil {
		t.Fatal(err)
	}
	o2, err := NewDelete(5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}

	o1p, o2p, err := Transform(o1, o2)
	if err != nil {
		t.Fatal(err)
	}

	wantO2p, _ := NewDelete(7, 4, 3) // Delete[3, 4] per the paper
	if !o2p.Equal(wantO2p) {
		t.Fatalf("O2' = %v, want %v (Delete[3,4])", o2p, wantO2p)
	}

	// Path 1 (site 1's order): O1 then O2'.
	s1, err := o1.ApplyString(base)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != "A12BCDE" {
		t.Fatalf("after O1: %q", s1)
	}
	s1, err = o2p.ApplyString(s1)
	if err != nil {
		t.Fatal(err)
	}

	// Path 2: O2 then O1'.
	s2, err := o2.ApplyString(base)
	if err != nil {
		t.Fatal(err)
	}
	s2, err = o1p.ApplyString(s2)
	if err != nil {
		t.Fatal(err)
	}

	if s1 != "A12B" || s2 != "A12B" {
		t.Fatalf("intention-preserved result must be A12B on both paths, got %q and %q", s1, s2)
	}
}

// TestPaperIntentionViolation reproduces the *incorrect* result the paper
// shows when O2 executes untransformed at site 1: "A1DE".
func TestPaperIntentionViolation(t *testing.T) {
	const base = "ABCDE"
	o1, _ := NewInsert(5, 1, "12")
	s, err := o1.ApplyString(base)
	if err != nil {
		t.Fatal(err)
	}
	// O2 in original form, rebuilt against the *new* 7-rune document, still
	// aimed at position 2: deletes "2BC" leaving "A1DE".
	o2orig, _ := NewDelete(7, 2, 3)
	s, err = o2orig.ApplyString(s)
	if err != nil {
		t.Fatal(err)
	}
	if s != "A1DE" {
		t.Fatalf("untransformed execution must give the paper's broken result A1DE, got %q", s)
	}
}

func TestTransformInsertTieBreak(t *testing.T) {
	// Both insert at position 0 of "x". a's text must land first.
	a, _ := NewInsert(1, 0, "AA")
	b, _ := NewInsert(1, 0, "BB")
	a1, b1, err := Transform(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := Compose(a, b1)
	p2, _ := Compose(b, a1)
	s1, _ := p1.ApplyString("x")
	s2, _ := p2.ApplyString("x")
	if s1 != "AABBx" || s2 != "AABBx" {
		t.Fatalf("tie-break: got %q / %q, want AABBx", s1, s2)
	}
}

func TestTransformOverlappingDeletes(t *testing.T) {
	// a deletes [1,4), b deletes [2,6) of "abcdef": union should vanish.
	a, _ := NewDelete(6, 1, 3)
	b, _ := NewDelete(6, 2, 4)
	a1, b1, err := Transform(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := a.ApplyString("abcdef") // "aef"
	s1, _ = b1.ApplyString(s1)
	s2, _ := b.ApplyString("abcdef") // "ab" -> wait: deletes cdef -> "ab"
	s2, _ = a1.ApplyString(s2)
	if s1 != s2 || s1 != "a" {
		t.Fatalf("overlapping deletes: got %q / %q, want %q", s1, s2, "a")
	}
}

// TestTransformDeleteSpansInsert is the delete-splitting case: b deletes a
// range into which a concurrently inserted. The transformed delete must skip
// the inserted text (this is where positional single-range deletes break and
// traversal ops shine).
func TestTransformDeleteSpansInsert(t *testing.T) {
	a, _ := NewInsert(6, 3, "XY") // "abcXYdef" on "abcdef"
	b, _ := NewDelete(6, 1, 4)    // delete "bcde"
	a1, b1, err := Transform(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := a.ApplyString("abcdef")
	s1, _ = b1.ApplyString(s1)
	s2, _ := b.ApplyString("abcdef")
	s2, _ = a1.ApplyString(s2)
	if s1 != s2 || s1 != "aXYf" {
		t.Fatalf("delete-spanning-insert: got %q / %q, want aXYf", s1, s2)
	}
}

func TestTransformBaseLengthMismatch(t *testing.T) {
	a := New().Retain(3)
	b := New().Retain(4)
	if _, _, err := Transform(a, b); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

func TestTransformOnly(t *testing.T) {
	a, _ := NewInsert(5, 1, "12")
	b, _ := NewDelete(5, 2, 3)
	b1, err := TransformOnly(b, a)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewDelete(7, 4, 3)
	if !b1.Equal(want) {
		t.Fatalf("TransformOnly: got %v want %v", b1, want)
	}
}

// TestTP1Randomized checks transformation property TP1 on thousands of
// random op pairs: apply(apply(d,a),b') == apply(apply(d,b),a').
func TestTP1Randomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		doc := randDoc(r, r.Intn(30))
		a := randOp(r, len(doc))
		b := randOp(r, len(doc))
		a1, b1, err := Transform(a, b)
		if err != nil {
			t.Fatalf("iter %d: transform: %v", i, err)
		}
		left := mustApply(t, b1, mustApply(t, a, doc))
		right := mustApply(t, a1, mustApply(t, b, doc))
		if string(left) != string(right) {
			t.Fatalf("iter %d: TP1 violated:\n d=%q\n a=%v\n b=%v\n left=%q right=%q",
				i, string(doc), a, b, string(left), string(right))
		}
	}
}

// TestTP1ViaCompose checks the equivalent compose formulation:
// Compose(a,b') == Compose(b,a') as operations (not just extensionally).
func TestTP1ViaCompose(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1500; i++ {
		n := r.Intn(25)
		a := randOp(r, n)
		b := randOp(r, n)
		a1, b1, err := Transform(a, b)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := Compose(a, b1)
		if err != nil {
			t.Fatalf("iter %d: compose(a,b1): %v", i, err)
		}
		p2, err := Compose(b, a1)
		if err != nil {
			t.Fatalf("iter %d: compose(b,a1): %v", i, err)
		}
		doc := randDoc(r, n)
		s1 := mustApply(t, p1, doc)
		s2 := mustApply(t, p2, doc)
		if string(s1) != string(s2) {
			t.Fatalf("iter %d: compose paths disagree: %q vs %q", i, string(s1), string(s2))
		}
	}
}

func TestTransformWithNoop(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		doc := randDoc(r, r.Intn(20))
		a := randOp(r, len(doc))
		noop := New().Retain(len(doc))
		a1, n1, err := Transform(a, noop)
		if err != nil {
			t.Fatal(err)
		}
		if !a1.Equal(a) {
			t.Fatalf("transform against noop changed op: %v -> %v", a, a1)
		}
		if !n1.IsNoop() {
			t.Fatalf("noop transformed into non-noop: %v", n1)
		}
	}
}
