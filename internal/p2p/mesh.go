package p2p

import (
	"fmt"
	"math/rand"

	"repro/internal/vclock"
	"repro/internal/wire"
)

// MeshConfig parameterizes a mesh overhead experiment.
type MeshConfig struct {
	// Nodes is the number of sites N.
	Nodes int
	// OpsPerNode is how many operations each site broadcasts.
	OpsPerNode int
	// Seed drives the interleaving and delays.
	Seed int64
	// Disorder is the probability a queued cross-site delivery is deferred
	// in favour of another link, creating causal gaps that exercise the
	// delay queue.
	Disorder float64
	// Verify enables the quadratic causal-order audit of every delivery
	// log (use in tests; skip in large benchmark sweeps).
	Verify bool
}

// MeshResult aggregates the measured overheads of one mesh run.
type MeshResult struct {
	// Messages is the number of point-to-point message deliveries
	// (each broadcast fans out to N-1 unicasts).
	Messages int64
	// FullVCBytes is the total timestamp cost with full N-element vectors
	// — the GROVE/REDUCE baseline.
	FullVCBytes int64
	// SKBytes is the total timestamp cost with Singhal–Kshemkalyani
	// differential compression on the same traffic.
	SKBytes int64
	// SKMaxEntries is the largest single differential timestamp observed.
	SKMaxEntries int
	// CVCBytes is what the same messages would cost under the paper's
	// constant 2-integer scheme.
	CVCBytes int64
	// MaxPending is the high-water mark of any node's causal delay queue.
	MaxPending int
	// CausalViolations counts deliveries that contradicted causal order
	// (must be zero).
	CausalViolations int64
}

// RunMesh executes a deterministic mesh session and measures timestamp
// overheads for the three schemes on identical traffic.
func RunMesh(cfg MeshConfig) (*MeshResult, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("p2p: mesh needs >= 2 nodes, got %d", cfg.Nodes)
	}
	n := cfg.Nodes
	r := rand.New(rand.NewSource(cfg.Seed))
	nodes := make([]*Node, n)
	sks := make([]*vclock.SKProcess, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode(i, n)
		sks[i] = vclock.NewSKProcess(i, n)
	}
	res := &MeshResult{}

	type unicast struct {
		m  Msg
		sk []vclock.Entry
	}
	// Per-(from,to) FIFO queues, like TCP links.
	queues := make(map[[2]int][]unicast)
	var busy [][2]int

	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = cfg.OpsPerNode
	}
	left := n * cfg.OpsPerNode

	// vt tracks real event vector clocks per delivered op for the causal
	// violation check: if b is delivered after a at some node but b → a,
	// order was violated.
	type opKey struct {
		from int
		seq  uint64
	}
	vt := map[opKey]vclock.VC{}
	evClocks := make([]*vclock.Process, n)
	for i := range evClocks {
		evClocks[i] = vclock.NewProcess(i, n)
	}

	// deliverCheck audits the tail of a node's delivery log: no op may be
	// delivered after an op it causally precedes.
	deliverCheck := func(node, newCount int) {
		if !cfg.Verify {
			return
		}
		log := nodes[node].Delivered()
		for i := len(log) - newCount; i < len(log); i++ {
			curVT := vt[opKey{log[i].From, log[i].Seq}]
			for j := 0; j < i; j++ {
				pVT := vt[opKey{log[j].From, log[j].Seq}]
				if vclock.Compare(curVT, pVT) == vclock.Before {
					res.CausalViolations++
				}
			}
		}
	}

	for left > 0 || len(busy) > 0 {
		deliver := len(busy) > 0 && (left == 0 || r.Intn(2) == 0)
		if deliver {
			ki := r.Intn(len(busy))
			if cfg.Disorder > 0 && r.Float64() < cfg.Disorder && len(busy) > 1 {
				ki = (ki + 1) % len(busy) // prefer a different link, creating gaps
			}
			key := busy[ki]
			q := queues[key]
			u := q[0]
			queues[key] = q[1:]
			if len(queues[key]) == 0 {
				busy = append(busy[:ki], busy[ki+1:]...)
			}
			node := key[1]
			ds, err := nodes[node].Receive(u.m)
			if err != nil {
				return nil, err
			}
			sks[node].Recv(u.sk)
			// Ground-truth clocks fold in an op only when it is *delivered*
			// (executed): a node does not causally depend on messages still
			// sitting in its delay queue.
			for _, d := range ds {
				evClocks[node].Recv(vt[opKey{d.From, d.Seq}])
			}
			if p := nodes[node].PendingLen(); p > res.MaxPending {
				res.MaxPending = p
			}
			deliverCheck(node, len(ds))
			continue
		}
		// Pick a site with ops left to broadcast.
		from := r.Intn(n)
		for remaining[from] == 0 {
			from = (from + 1) % n
		}
		remaining[from]--
		left--
		m := nodes[from].Broadcast(fmt.Sprintf("op-%d-%d", from, nodes[from].SV()[from]))
		vt[opKey{m.From, m.Seq}] = evClocks[from].Send()
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			entries := sks[from].Send(to)
			if len(entries) > res.SKMaxEntries {
				res.SKMaxEntries = len(entries)
			}
			res.Messages++
			res.FullVCBytes += int64(MsgTimestampBytes(m))
			res.SKBytes += int64(vclock.EntriesWireSize(entries))
			// The paper's scheme: always exactly two varints; use the
			// same counter magnitudes for a fair byte comparison.
			res.CVCBytes += int64(wire.UvarintLen(m.SV.SumExcept(to)) + wire.UvarintLen(m.SV[to]))
			key := [2]int{from, to}
			if len(queues[key]) == 0 {
				busy = append(busy, key)
			}
			queues[key] = append(queues[key], unicast{m: m, sk: entries})
		}
	}
	return res, nil
}
