// Package p2p implements the baseline architecture the paper improves on:
// a fully-distributed group editor (GROVE [5], original REDUCE [14]) where
// every site broadcasts its operations to every other site, timestamped with
// a full N-element state vector, and delivery is delayed until causally
// ready (the causality-preservation scheme of [14]).
//
// The package serves the overhead experiments (EXPERIMENTS.md E3/E9): on the
// same traffic it accounts the bytes of (a) full vector timestamps, (b)
// Singhal–Kshemkalyani differential timestamps [13], and (c) the paper's
// constant 2-integer compressed timestamps, and it verifies that causal
// delivery is correct.
package p2p

import (
	"errors"
	"fmt"

	"repro/internal/vclock"
	"repro/internal/wire"
)

// ErrBadMessage indicates a message that cannot belong to this computation.
var ErrBadMessage = errors.New("p2p: malformed message")

// Msg is a broadcast operation. The state vector counts operations
// *delivered* per site (the REDUCE state-vector convention), so the causal
// readiness test is the classic one.
type Msg struct {
	From    int
	Seq     uint64 // 1-based per-sender sequence
	SV      vclock.VC
	Payload string
}

// Delivery is one causally-delivered operation.
type Delivery struct {
	From    int
	Seq     uint64
	Payload string
}

// Node is one site of the mesh.
type Node struct {
	id int
	n  int
	// sv[j] counts operations from site j this node has executed
	// (including its own).
	sv vclock.VC
	// pending holds causally unready messages.
	pending []Msg
	// delivered is the execution log, in order.
	delivered []Delivery
}

// NewNode returns node id of n sites.
func NewNode(id, n int) *Node {
	if id < 0 || id >= n {
		//lint:allow nopanic: precondition guard — node id outside the fixed mesh is a caller bug
		panic(fmt.Sprintf("p2p: node id %d of %d", id, n))
	}
	return &Node{id: id, n: n, sv: vclock.New(n)}
}

// SV returns a copy of the node's state vector.
func (nd *Node) SV() vclock.VC { return nd.sv.Copy() }

// Delivered returns the execution log (owned by the node).
func (nd *Node) Delivered() []Delivery { return nd.delivered }

// PendingLen returns the number of buffered causally-unready messages.
func (nd *Node) PendingLen() int { return len(nd.pending) }

// Broadcast creates, executes, and stamps a local operation; the returned
// message goes to every other site.
func (nd *Node) Broadcast(payload string) Msg {
	nd.sv.Inc(nd.id)
	m := Msg{From: nd.id, Seq: nd.sv[nd.id], SV: nd.sv.Copy(), Payload: payload}
	nd.delivered = append(nd.delivered, Delivery{From: nd.id, Seq: m.Seq, Payload: payload})
	return m
}

// ready reports whether m can execute now: all of m's causal predecessors
// have executed here. With delivered-counting state vectors this is
// SV_m[from] == sv[from]+1 and SV_m[k] <= sv[k] for k != from.
func (nd *Node) ready(m Msg) bool {
	for k := 0; k < nd.n; k++ {
		if k == m.From {
			if m.SV[k] != nd.sv[k]+1 {
				return false
			}
		} else if m.SV[k] > nd.sv[k] {
			return false
		}
	}
	return true
}

// Receive buffers or executes a remote operation and returns everything
// newly executed (the message may unblock previously buffered ones).
func (nd *Node) Receive(m Msg) ([]Delivery, error) {
	if m.From < 0 || m.From >= nd.n || m.From == nd.id {
		return nil, fmt.Errorf("%w: from %d at node %d", ErrBadMessage, m.From, nd.id)
	}
	if len(m.SV) != nd.n {
		return nil, fmt.Errorf("%w: vector size %d, want %d", ErrBadMessage, len(m.SV), nd.n)
	}
	nd.pending = append(nd.pending, m)
	var out []Delivery
	for {
		progressed := false
		for i := 0; i < len(nd.pending); i++ {
			p := nd.pending[i]
			if !nd.ready(p) {
				continue
			}
			nd.pending = append(nd.pending[:i], nd.pending[i+1:]...)
			nd.sv.Inc(p.From)
			d := Delivery{From: p.From, Seq: p.Seq, Payload: p.Payload}
			nd.delivered = append(nd.delivered, d)
			out = append(out, d)
			progressed = true
			break
		}
		if !progressed {
			return out, nil
		}
	}
}

// ClockWords returns the number of uint64 clock words this node stores —
// N for the full-vector baseline (the paper's clients store 2).
func (nd *Node) ClockWords() int { return len(nd.sv) }

// MsgTimestampBytes returns the wire cost of m's full-vector timestamp.
func MsgTimestampBytes(m Msg) int {
	b := wire.AppendVC(nil, m.SV)
	return len(b)
}
