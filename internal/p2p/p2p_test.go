package p2p

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/vclock"
)

func TestNodeBasics(t *testing.T) {
	nd := NewNode(0, 3)
	m := nd.Broadcast("hello")
	if m.From != 0 || m.Seq != 1 {
		t.Fatalf("broadcast: %+v", m)
	}
	if vclock.Compare(nd.SV(), vclock.VC{1, 0, 0}) != vclock.Equal {
		t.Fatalf("sv after broadcast: %v", nd.SV())
	}
	if len(nd.Delivered()) != 1 {
		t.Fatal("own op must be in the log")
	}
	if nd.ClockWords() != 3 {
		t.Fatalf("clock words: %d", nd.ClockWords())
	}
}

func TestNewNodePanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNode(3, 3)
}

func TestReceiveInOrder(t *testing.T) {
	a := NewNode(0, 2)
	b := NewNode(1, 2)
	m := a.Broadcast("x")
	ds, err := b.Receive(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Payload != "x" {
		t.Fatalf("deliveries: %+v", ds)
	}
	if b.PendingLen() != 0 {
		t.Fatal("nothing should be pending")
	}
}

// TestCausalGapDelaysDelivery: b must hold a's second op until the first
// arrives, and a causally dependent op from a third site until both arrive.
func TestCausalGapDelaysDelivery(t *testing.T) {
	a := NewNode(0, 3)
	c := NewNode(2, 3)
	b := NewNode(1, 3)

	m1 := a.Broadcast("a1")
	m2 := a.Broadcast("a2")
	// c sees both, then broadcasts (causally after both).
	if _, err := c.Receive(m1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Receive(m2); err != nil {
		t.Fatal(err)
	}
	m3 := c.Broadcast("c1")

	// b gets them badly out of order: c1 first, then a2, then a1.
	ds, err := b.Receive(m3)
	if err != nil || len(ds) != 0 {
		t.Fatalf("c1 delivered before its causes: %+v %v", ds, err)
	}
	ds, err = b.Receive(m2)
	if err != nil || len(ds) != 0 {
		t.Fatalf("a2 delivered before a1: %+v %v", ds, err)
	}
	if b.PendingLen() != 2 {
		t.Fatalf("pending %d, want 2", b.PendingLen())
	}
	ds, err = b.Receive(m1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("cascade should deliver all three, got %+v", ds)
	}
	if ds[0].Payload != "a1" || ds[1].Payload != "a2" || ds[2].Payload != "c1" {
		t.Fatalf("delivery order: %+v", ds)
	}
}

func TestReceiveErrors(t *testing.T) {
	b := NewNode(1, 2)
	if _, err := b.Receive(Msg{From: 1, SV: vclock.New(2)}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("own message: %v", err)
	}
	if _, err := b.Receive(Msg{From: 0, SV: vclock.New(5)}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("wrong vector size: %v", err)
	}
	if _, err := b.Receive(Msg{From: 7, SV: vclock.New(2)}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("unknown sender: %v", err)
	}
}

func TestRunMeshCausalCorrectness(t *testing.T) {
	for _, disorder := range []float64{0, 0.3, 0.8} {
		for seed := int64(0); seed < 4; seed++ {
			res, err := RunMesh(MeshConfig{
				Nodes: 5, OpsPerNode: 30, Seed: seed, Disorder: disorder, Verify: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.CausalViolations != 0 {
				t.Fatalf("disorder=%.1f seed=%d: %d causal violations", disorder, seed, res.CausalViolations)
			}
			wantMsgs := int64(5 * 30 * 4)
			if res.Messages != wantMsgs {
				t.Fatalf("messages %d want %d", res.Messages, wantMsgs)
			}
		}
	}
}

func TestRunMeshDisorderExercisesDelayQueue(t *testing.T) {
	res, err := RunMesh(MeshConfig{Nodes: 6, OpsPerNode: 40, Seed: 1, Disorder: 0.7, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPending == 0 {
		t.Fatal("disorder never created a causal gap — delay queue untested")
	}
}

// TestRunMeshOverheadShape checks the paper's overhead ordering on identical
// traffic: CVC (constant 2 ints) < SK (differential) <= full vectors, and
// full-vector bytes grow with N while CVC stays flat.
func TestRunMeshOverheadShape(t *testing.T) {
	perMsg := func(n int) (full, sk, cvc float64) {
		res, err := RunMesh(MeshConfig{Nodes: n, OpsPerNode: 30, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		f := float64(res.Messages)
		return float64(res.FullVCBytes) / f, float64(res.SKBytes) / f, float64(res.CVCBytes) / f
	}
	full8, sk8, cvc8 := perMsg(8)
	full32, sk32, cvc32 := perMsg(32)

	if !(cvc8 < sk8 && cvc8 < full8) {
		t.Fatalf("n=8: cvc=%.1f sk=%.1f full=%.1f — compressed scheme must be cheapest", cvc8, sk8, cvc8)
	}
	if !(cvc32 < sk32 && cvc32 < full32) {
		t.Fatalf("n=32: cvc=%.1f sk=%.1f full=%.1f", cvc32, sk32, full32)
	}
	if full32 < full8*2 {
		t.Fatalf("full vector cost must grow ~linearly: %.1f (n=8) vs %.1f (n=32)", full8, full32)
	}
	if cvc32 > cvc8*2 {
		t.Fatalf("cvc cost must stay ~flat: %.1f (n=8) vs %.1f (n=32)", cvc8, cvc32)
	}
	if sk32 > full32 {
		t.Fatalf("SK must not exceed full vectors: sk=%.1f full=%.1f", sk32, full32)
	}
}

func TestRunMeshDeterminism(t *testing.T) {
	cfg := MeshConfig{Nodes: 4, OpsPerNode: 25, Seed: 42, Disorder: 0.2}
	a, err := RunMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestRunMeshConfigErrors(t *testing.T) {
	if _, err := RunMesh(MeshConfig{Nodes: 1}); err == nil {
		t.Fatal("mesh of one must fail")
	}
}

func TestAllNodesConvergeOnDeliverySets(t *testing.T) {
	res, err := RunMesh(MeshConfig{Nodes: 4, OpsPerNode: 20, Seed: 9, Disorder: 0.5, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// RunMesh drains all queues; rebuild nodes here to verify every node
	// delivered every op exactly once in a small controlled run.
	a, b := NewNode(0, 2), NewNode(1, 2)
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		m := a.Broadcast(fmt.Sprintf("op%d", i))
		ds, err := b.Receive(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			seen[d.Payload]++
		}
	}
	for i := 0; i < 10; i++ {
		if seen[fmt.Sprintf("op%d", i)] != 1 {
			t.Fatalf("delivery counts: %v", seen)
		}
	}
}
