package server_test

import (
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/transport"
)

// waitDehydrated polls until the named session parks (or the deadline hits).
func waitDehydrated(t *testing.T, mgr *server.Manager, name string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, ok := mgr.Get(name)
		if !ok {
			t.Fatalf("session %q vanished", name)
		}
		if s.Dehydrated() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %q never dehydrated", name)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIdleSessionDehydrates: an idle session parks after the configured
// period, its stats remain readable without waking it, and the next
// operation rehydrates it transparently with full state.
func TestIdleSessionDehydrates(t *testing.T) {
	reg := obs.NewRegistry("srv")
	ln := transport.NewMemListener()
	mgr := server.NewManager(
		server.WithObservability(reg),
		server.WithIdleDehydrate(20*time.Millisecond),
	)
	svc := server.Serve(ln, mgr)
	defer mgr.Close()
	defer svc.Close()

	conn1, _ := ln.Dial()
	e1, err := repro.ConnectSession(conn1, "doc", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	conn2, _ := ln.Dial()
	e2, err := repro.ConnectSession(conn2, "doc", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()

	for i := 0; i < 10; i++ {
		if err := e1.Insert(i, "a"); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, []*repro.Editor{e1, e2}, strings.Repeat("a", 10))

	waitDehydrated(t, mgr, "doc")

	// Observation while parked: Stats answers from the frozen view and the
	// session stays parked.
	sess, _ := mgr.Get("doc")
	st := sess.Stats()
	if st.Resident {
		t.Fatal("Stats claims resident on a dehydrated session")
	}
	if st.Sites != 2 || st.Ops != 10 || st.Doc != 10 {
		t.Fatalf("parked stats = %+v, want 2 sites / 10 ops / 10 runes", st)
	}
	snap := reg.Snapshot()
	if snap.Gauges[obs.GSessionsDehydrated] != 1 || snap.Gauges[obs.GSessionsResident] != 0 {
		t.Fatalf("gauges: %d dehydrated / %d resident, want 1/0",
			snap.Gauges[obs.GSessionsDehydrated], snap.Gauges[obs.GSessionsResident])
	}
	if !sess.Dehydrated() {
		t.Fatal("observation rehydrated the session")
	}

	// The next operation rehydrates transparently; both editors converge on
	// state that spans the park.
	if err := e2.Insert(0, "B"); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, []*repro.Editor{e1, e2}, "B"+strings.Repeat("a", 10))
	if got := reg.Snapshot().Counters[obs.CSessionRehydrations]; got != 1 {
		t.Fatalf("rehydrations = %d, want 1", got)
	}
	if st := sess.Stats(); !st.Resident || st.Ops != 11 {
		t.Fatalf("post-rehydrate stats = %+v, want resident with 11 ops", st)
	}
}

// TestDehydrateRehydrateCycles: repeated park/rehydrate cycles never lose
// state; every cycle's operation lands on the accumulated document.
func TestDehydrateRehydrateCycles(t *testing.T) {
	ln := transport.NewMemListener()
	mgr := server.NewManager(server.WithIdleDehydrate(10 * time.Millisecond))
	svc := server.Serve(ln, mgr)
	defer mgr.Close()
	defer svc.Close()

	conn, _ := ln.Dial()
	e, err := repro.ConnectSession(conn, "doc", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	want := ""
	for cycle := 0; cycle < 5; cycle++ {
		waitDehydrated(t, mgr, "doc")
		if err := e.Insert(len(want), "x"); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		want += "x"
		waitConverged(t, []*repro.Editor{e}, want)
	}
}

// TestCloseWhileDehydrated: closing a manager with parked sessions is clean
// (no goroutine to stop, no hang) and later calls see ErrClosed.
func TestCloseWhileDehydrated(t *testing.T) {
	mgr := server.NewManager(server.WithIdleDehydrate(10 * time.Millisecond))
	sess, err := mgr.GetOrCreate("doc")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !sess.Dehydrated() {
		if time.Now().After(deadline) {
			t.Fatal("never dehydrated")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Receive(core.ClientMsg{From: 1}); err != server.ErrClosed {
		t.Fatalf("Receive after close = %v, want ErrClosed", err)
	}
}

// TestParkAbortsUnderLoad: a session under continuous traffic never loses an
// operation even with an aggressively small idle period racing every gap.
func TestParkAbortsUnderLoad(t *testing.T) {
	ln := transport.NewMemListener()
	mgr := server.NewManager(server.WithIdleDehydrate(time.Millisecond))
	svc := server.Serve(ln, mgr)
	defer mgr.Close()
	defer svc.Close()

	conn, _ := ln.Dial()
	e, err := repro.ConnectSession(conn, "doc", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if err := e.Insert(i, "y"); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if i%20 == 0 {
			time.Sleep(2 * time.Millisecond) // leave park-sized gaps
		}
	}
	waitConverged(t, []*repro.Editor{e}, strings.Repeat("y", n))
}
