package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/span"
)

// registry is the immutable session table the Manager publishes. Readers
// load it atomically and index it without locks; writers copy, mutate, and
// republish under the Manager's mutex. Sessions churn at human rates
// (documents opened and closed) while lookups happen per operation, so
// copy-on-write puts the copy on the cold side.
type registry map[string]*Session

// Manager routes document names to running Sessions.
type Manager struct {
	initial func(name string) string
	engine  []core.ServerOption
	queue   int
	idleD   time.Duration

	// rehydrations counts engine restores across all sessions (nil without
	// observability).
	rehydrations *obs.Counter

	// obsReg, when non-nil, receives one child registry per session
	// (engine counters, receive latency, size gauges); dropped sessions
	// drop their child. ring, when non-nil, is shared by every session's
	// engine for causality-decision tracing.
	obsReg *obs.Registry
	ring   *obs.DecisionRing

	// spans, when non-nil, is shared by every session: the actor stamps
	// dequeue/broadcast-enqueue and the engine stamps check/transform/
	// execute for sampled operations.
	spans *span.Tracer

	// fanoutThreshold is the destination count at which sessions scatter a
	// broadcast's enqueues across the writer pool instead of looping
	// serially (0 = transport.DefaultFanoutThreshold, < 0 = always
	// serial). Shared by every session; Serve sets it from
	// WithFanoutThreshold.
	fanoutThreshold atomic.Int32

	reg atomic.Value // registry

	mu     sync.Mutex // serializes registry writes and Close
	closed bool
}

// SetFanoutThreshold sets the parallel broadcast fan-out threshold for every
// session (0 restores the default, negative disables parallel fan-out).
func (m *Manager) SetFanoutThreshold(n int) { m.fanoutThreshold.Store(int32(n)) }

// ManagerOption configures a Manager.
type ManagerOption func(*Manager)

// WithInitialText sets the initial document for every new session.
func WithInitialText(text string) ManagerOption {
	return func(m *Manager) { m.initial = func(string) string { return text } }
}

// WithInitialTextFunc derives each new session's initial document from its
// name (e.g. loading per-document files).
func WithInitialTextFunc(fn func(name string) string) ManagerOption {
	return func(m *Manager) { m.initial = fn }
}

// WithEngineOptions passes options to every session's core.Server.
func WithEngineOptions(opts ...core.ServerOption) ManagerOption {
	return func(m *Manager) { m.engine = opts }
}

// WithObservability mounts every session's metrics as a child of reg: the
// engine's trace counters, the receive.ns latency histogram, and live size
// gauges (sites, hb.len, hb.clock_words, ...) all appear under the session's
// name in reg.Snapshot(). The manager owns only its children — process-wide
// counters (wire, transport) are registered by DebugHandler.
func WithObservability(reg *obs.Registry) ManagerOption {
	return func(m *Manager) { m.obsReg = reg }
}

// WithDecisionRing shares ring across every session's engine: each concurrency
// check and integration summary is recorded (when the ring is enabled) with
// the session's name as its label.
func WithDecisionRing(ring *obs.DecisionRing) ManagerOption {
	return func(m *Manager) { m.ring = ring }
}

// WithSpanTracer shares the op-lifecycle tracer across every session. Each
// session's actor and engine stamp the stages they own for sampled
// operations; service connections adopt wire-propagated trace contexts at
// arrival.
func WithSpanTracer(tr *span.Tracer) ManagerOption {
	return func(m *Manager) { m.spans = tr }
}

// WithQueueDepth sets each session's command-queue buffer (default 64).
func WithQueueDepth(n int) ManagerOption {
	return func(m *Manager) {
		if n > 0 {
			m.queue = n
		}
	}
}

// WithIdleDehydrate enables cold-session dehydration: a session that
// receives no commands for d drains, serializes its engine into a compact
// in-memory checkpoint (core.Checkpoint), and exits its goroutine. The next
// Join/Receive/RelayPresence rehydrates it transparently. d <= 0 (the
// default) keeps every session resident forever.
func WithIdleDehydrate(d time.Duration) ManagerOption {
	return func(m *Manager) { m.idleD = d }
}

// NewManager returns an empty manager; sessions are created on first use.
func NewManager(opts ...ManagerOption) *Manager {
	m := &Manager{
		initial: func(string) string { return "" },
		queue:   64,
	}
	for _, o := range opts {
		o(m)
	}
	m.reg.Store(registry{})
	if m.obsReg != nil {
		// Fleet-level residency metrics: how many sessions hold a live
		// goroutine + engine versus a parked checkpoint, and how many
		// restores have happened. Counting walks the lock-free registry
		// snapshot and each session's state word — no session goroutine is
		// consulted.
		m.rehydrations = m.obsReg.Counter(obs.CSessionRehydrations)
		m.obsReg.Gauge(obs.GSessionsResident, func() int64 {
			n := int64(0)
			for _, s := range m.reg.Load().(registry) {
				if !s.Dehydrated() {
					n++
				}
			}
			return n
		})
		m.obsReg.Gauge(obs.GSessionsDehydrated, func() int64 {
			n := int64(0)
			for _, s := range m.reg.Load().(registry) {
				if s.Dehydrated() {
					n++
				}
			}
			return n
		})
	}
	return m
}

// Get returns the named session if it is running. The lookup is lock-free.
func (m *Manager) Get(name string) (*Session, bool) {
	s, ok := m.reg.Load().(registry)[name]
	return s, ok
}

// GetOrCreate returns the named session, starting it if necessary. The hit
// path is the lock-free Get; only genuine creation takes the write lock.
func (m *Manager) GetOrCreate(name string) (*Session, error) {
	if s, ok := m.Get(name); ok {
		return s, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	old := m.reg.Load().(registry)
	if s, ok := old[name]; ok { // lost the creation race
		return s, nil
	}
	s := newSession(name, m.initial(name), m.queue, m.sessionChild(name), m.ring, m.spans, m.idleD, m.rehydrations, &m.fanoutThreshold, m.engine...)
	next := make(registry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = s
	m.reg.Store(next)
	return s, nil
}

// Drop stops the named session and removes it from the registry. Connections
// still attached observe ErrClosed from their next call.
func (m *Manager) Drop(name string) {
	m.mu.Lock()
	old := m.reg.Load().(registry)
	s, ok := old[name]
	if ok {
		next := make(registry, len(old))
		for k, v := range old {
			if k != name {
				next[k] = v
			}
		}
		m.reg.Store(next)
	}
	m.mu.Unlock()
	if ok {
		_ = s.Close()
		if m.obsReg != nil {
			m.obsReg.DropChild(sessionChildName(name))
		}
	}
}

// Registry returns the observability registry the manager mounts session
// children on (nil when WithObservability was not used).
func (m *Manager) Registry() *obs.Registry { return m.obsReg }

// SpanTracer returns the shared op-lifecycle tracer (nil without
// WithSpanTracer); Service reads it to adopt trace contexts at arrival.
func (m *Manager) SpanTracer() *span.Tracer { return m.spans }

// sessionChild returns the session's observability child registry, or nil.
func (m *Manager) sessionChild(name string) *obs.Registry {
	if m.obsReg == nil {
		return nil
	}
	return m.obsReg.Child(sessionChildName(name))
}

// sessionChildName maps a session name to its registry child name; the
// default session "" gets a printable one.
func sessionChildName(name string) string {
	if name == "" {
		return "(default)"
	}
	return name
}

// Names returns the running session names, sorted.
func (m *Manager) Names() []string {
	reg := m.reg.Load().(registry)
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of running sessions.
func (m *Manager) Len() int { return len(m.reg.Load().(registry)) }

// Stats summarizes every running session, sorted by name.
func (m *Manager) Stats() []Stats {
	reg := m.reg.Load().(registry)
	out := make([]Stats, 0, len(reg))
	for _, s := range reg {
		out = append(out, s.Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close stops every session and rejects further creation.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	reg := m.reg.Load().(registry)
	m.reg.Store(registry{})
	m.mu.Unlock()
	for name, s := range reg {
		_ = s.Close()
		if m.obsReg != nil {
			m.obsReg.DropChild(sessionChildName(name))
		}
	}
	return nil
}
