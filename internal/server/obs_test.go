package server_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestMetricsCatalog locks the metric names a fully wired notifier exposes to
// exactly the catalogue DESIGN.md §12 documents. A rename that forgets either
// side — code or catalogue — fails here.
func TestMetricsCatalog(t *testing.T) {
	reg := obs.NewRegistry("reducesrv")
	ring := obs.NewDecisionRing(64)

	ln := transport.NewMemListener()
	mgr := server.NewManager(
		server.WithInitialText(""),
		server.WithObservability(reg),
		server.WithDecisionRing(ring),
	)
	svc := server.Serve(ln, mgr)
	defer mgr.Close()
	defer svc.Close()
	_ = server.DebugHandler(reg, ring) // registers the process-wide counters

	conn1, _ := ln.Dial()
	e1, err := repro.ConnectSession(conn1, "doc", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	conn2, _ := ln.Dial()
	e2, err := repro.ConnectSession(conn2, "doc", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()

	// Enough operations to trip the engine's automatic compaction (every 64),
	// so the hb.* counters exist too.
	for i := 0; i < 65; i++ {
		if err := e1.Insert(0, "x"); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, []*repro.Editor{e1, e2}, strings.Repeat("x", 65))

	snap := reg.Snapshot()

	wantRoot := []string{
		obs.CSenderMsgs, obs.CSenderFlushes,
		obs.CTCPBytes, obs.CTCPFlushes,
		obs.CWireEncodes, obs.CWireOps,
		obs.CSessionRehydrations,
		obs.CPollerWakeups, obs.CPollerRearm, obs.CConnPartialReads,
		obs.CDispatchSteals, obs.CFanoutParallel,
		obs.CPollerShard0Wakeups, obs.CPollerShard1Wakeups,
		obs.CPollerShard2Wakeups, obs.CPollerShard3Wakeups,
	}
	for ty := wire.TClientOp; ty <= wire.TOpBatch; ty++ {
		wantRoot = append(wantRoot,
			"wire.frames."+wire.TypeName(ty),
			"wire.bytes."+wire.TypeName(ty))
	}
	assertNames(t, "root counters", snap.Counters, wantRoot)
	assertNames(t, "root gauges", snap.Gauges, []string{
		obs.GQueueHighWater, obs.GGoroutines,
		obs.GHeapBytes, obs.GGCPauseNs, obs.GNumGC,
		obs.GSessionsResident, obs.GSessionsDehydrated,
	})
	assertNames(t, "root histograms", snap.Hists, []string{
		obs.HQueueDepth, obs.HPollerEventsPerWait, obs.HDispatchShardDepth,
	})

	if snap.Gauges[obs.GSessionsResident] != 1 || snap.Gauges[obs.GSessionsDehydrated] != 0 {
		t.Errorf("residency gauges = %d resident / %d dehydrated, want 1/0",
			snap.Gauges[obs.GSessionsResident], snap.Gauges[obs.GSessionsDehydrated])
	}
	if snap.Gauges[obs.GGoroutines] <= 0 {
		t.Errorf("runtime.goroutines gauge = %d, want > 0", snap.Gauges[obs.GGoroutines])
	}
	if snap.Gauges[obs.GHeapBytes] <= 0 {
		t.Errorf("runtime.heap_bytes gauge = %d, want > 0", snap.Gauges[obs.GHeapBytes])
	}

	sess, ok := snap.Child("doc")
	if !ok {
		t.Fatalf("no doc child in %+v", snap)
	}
	assertNames(t, "session counters", sess.Counters, []string{
		trace.COpsIntegrated, trace.CConcurrencyChecks, trace.CConcurrentPairs,
		trace.CTransforms, trace.CCompactions, trace.CCompacted,
		trace.CCacheHits, trace.CCacheMisses, trace.CComposes,
	})
	assertNames(t, "session gauges", sess.Gauges, []string{
		obs.GSites, obs.GOpsRecv, obs.GDocRunes, obs.GHBLen, obs.GClockWords,
		obs.GResident,
	})
	if sess.Gauges[obs.GResident] != 1 {
		t.Errorf("session resident gauge = %d, want 1", sess.Gauges[obs.GResident])
	}
	assertNames(t, "session histograms", sess.Hists, []string{obs.HReceiveNs})

	if sess.Counters[trace.CCompactions] < 1 {
		t.Errorf("hb.compactions = %d, want >= 1 after 65 ops", sess.Counters[trace.CCompactions])
	}
	if sess.Counters[trace.COpsIntegrated] != 65 {
		t.Errorf("ops.integrated = %d, want 65", sess.Counters[trace.COpsIntegrated])
	}
	// The mem transport still counts sender drains, but no TCP bytes flow.
	if snap.Counters[obs.CSenderMsgs] == 0 {
		t.Errorf("sender.msgs = 0 over mem transport")
	}
}

// TestSessionChildDropped checks a dropped session takes its registry child
// (and its gauges) with it.
func TestSessionChildDropped(t *testing.T) {
	reg := obs.NewRegistry("srv")
	mgr := server.NewManager(server.WithObservability(reg))
	defer mgr.Close()
	if _, err := mgr.GetOrCreate("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Snapshot().Child("a"); !ok {
		t.Fatal("child a missing after GetOrCreate")
	}
	mgr.Drop("a")
	if _, ok := reg.Snapshot().Child("a"); ok {
		t.Fatal("child a still present after Drop")
	}
}

// TestServiceString checks the status summary carries the live numbers.
func TestServiceString(t *testing.T) {
	ln := transport.NewMemListener()
	mgr := server.NewManager(server.WithInitialText("hi"))
	svc := server.Serve(ln, mgr)
	defer mgr.Close()
	defer svc.Close()

	conn, _ := ln.Dial()
	ed, err := repro.ConnectSession(conn, "s", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ed.Close()

	got := svc.String()
	for _, want := range []string{"conns=1", "sessions=1", "queue_highwater="} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

// assertNames fails unless m's key set is exactly want.
func assertNames[V any](t *testing.T, what string, m map[string]V, want []string) {
	t.Helper()
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	w := append([]string(nil), want...)
	sort.Strings(w)
	if fmt.Sprint(got) != fmt.Sprint(w) {
		t.Errorf("%s:\n got  %v\n want %v", what, got, w)
	}
}
