package server_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/transport"
)

// waitQuiet polls until every editor has settled on the same text as fn
// keeps returning, or the deadline passes. Editors converge asynchronously;
// tests must not race the read loops.
func waitConverged(t *testing.T, eds []*repro.Editor, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, e := range eds {
			if e.Text() != want {
				done = false
				break
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			for i, e := range eds {
				t.Logf("editor %d: %q (err=%v)", i, e.Text(), e.Err())
			}
			t.Fatalf("editors did not converge on %q", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestManagerConcurrentGetOrCreate hammers the copy-on-write registry from
// many goroutines and checks every name resolves to exactly one session.
func TestManagerConcurrentGetOrCreate(t *testing.T) {
	mgr := server.NewManager()
	defer mgr.Close()

	const names, workers = 8, 16
	got := make([][]*server.Session, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < names; n++ {
				s, err := mgr.GetOrCreate(fmt.Sprintf("doc-%d", n))
				if err != nil {
					t.Errorf("GetOrCreate: %v", err)
					return
				}
				got[w] = append(got[w], s)
			}
		}(w)
	}
	wg.Wait()
	if mgr.Len() != names {
		t.Fatalf("registry has %d sessions, want %d", mgr.Len(), names)
	}
	for w := 1; w < workers; w++ {
		for n := 0; n < names; n++ {
			if got[w][n] != got[0][n] {
				t.Fatalf("worker %d got a different instance for doc-%d", w, n)
			}
		}
	}
	if s, ok := mgr.Get("doc-3"); !ok || s != got[0][3] {
		t.Fatalf("Get(doc-3) = %v, %v", s, ok)
	}
	if _, ok := mgr.Get("absent"); ok {
		t.Fatal("Get of an absent name succeeded")
	}
}

// TestSessionIsolation runs two named documents over one listener and checks
// that edits in one never leak into the other while each converges on its
// own content.
func TestSessionIsolation(t *testing.T) {
	ln := transport.NewMemListener()
	mgr := server.NewManager(server.WithInitialText("base"))
	svc := server.Serve(ln, mgr)
	defer mgr.Close()
	defer svc.Close()

	join := func(session string) *repro.Editor {
		t.Helper()
		conn, err := ln.Dial()
		if err != nil {
			t.Fatal(err)
		}
		ed, err := repro.ConnectSession(conn, session, 0)
		if err != nil {
			t.Fatal(err)
		}
		return ed
	}
	a1, a2 := join("alpha"), join("alpha")
	b1, b2 := join("beta"), join("beta")
	defer a1.Close()
	defer a2.Close()
	defer b1.Close()
	defer b2.Close()

	if err := a1.Insert(4, " alpha"); err != nil {
		t.Fatal(err)
	}
	if err := b1.Insert(4, " beta"); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, []*repro.Editor{a1, a2}, "base alpha")
	waitConverged(t, []*repro.Editor{b1, b2}, "base beta")

	sa, _ := mgr.Get("alpha")
	sb, _ := mgr.Get("beta")
	if got := sa.Text(); got != "base alpha" {
		t.Fatalf("alpha session text %q", got)
	}
	if got := sb.Text(); got != "base beta" {
		t.Fatalf("beta session text %q", got)
	}
	if names := mgr.Names(); len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("session names %v", names)
	}
}

// TestDefaultSessionCompatible checks the plain single-document client
// protocol (wire.JoinReq via repro.Connect) lands in the default session.
func TestDefaultSessionCompatible(t *testing.T) {
	ln := transport.NewMemListener()
	mgr := server.NewManager(server.WithInitialText("shared"))
	svc := server.Serve(ln, mgr)
	defer mgr.Close()
	defer svc.Close()

	conn1, _ := ln.Dial()
	e1, err := repro.Connect(conn1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	conn2, _ := ln.Dial()
	e2, err := repro.ConnectSession(conn2, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()

	if e1.Site() == e2.Site() {
		t.Fatalf("both editors got site %d", e1.Site())
	}
	if err := e1.Insert(0, ">"); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, []*repro.Editor{e1, e2}, ">shared")
}

// TestConcurrentEditorsAcrossSessions drives several editors per session in
// several sessions at once — the workload the sharded manager exists for —
// and checks per-session convergence. Run with -race.
func TestConcurrentEditorsAcrossSessions(t *testing.T) {
	ln := transport.NewMemListener()
	mgr := server.NewManager()
	svc := server.Serve(ln, mgr)
	defer mgr.Close()
	defer svc.Close()

	const sessions, editorsPer, opsEach = 3, 3, 20
	eds := make([][]*repro.Editor, sessions)
	for si := 0; si < sessions; si++ {
		for ei := 0; ei < editorsPer; ei++ {
			conn, err := ln.Dial()
			if err != nil {
				t.Fatal(err)
			}
			ed, err := repro.ConnectSession(conn, fmt.Sprintf("s%d", si), 0)
			if err != nil {
				t.Fatal(err)
			}
			defer ed.Close()
			eds[si] = append(eds[si], ed)
		}
	}

	var wg sync.WaitGroup
	for si := range eds {
		for _, ed := range eds[si] {
			wg.Add(1)
			go func(ed *repro.Editor) {
				defer wg.Done()
				for k := 0; k < opsEach; k++ {
					if err := ed.Insert(0, "x"); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
			}(ed)
		}
	}
	wg.Wait()

	want := ""
	for i := 0; i < editorsPer*opsEach; i++ {
		want += "x"
	}
	for si := range eds {
		waitConverged(t, eds[si], want)
	}
}

// TestSessionRejectsViewerOps joins a viewer and checks the service drops
// the connection if it ever sends an operation.
func TestSessionRejectsViewerOps(t *testing.T) {
	ln := transport.NewMemListener()
	mgr := server.NewManager(server.WithInitialText("doc"))
	svc := server.Serve(ln, mgr)
	defer mgr.Close()
	defer svc.Close()

	conn, _ := ln.Dial()
	viewer, err := repro.ConnectViewer(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Insert(0, "!"); err == nil {
		t.Fatal("viewer insert succeeded")
	}

	// Engine-level check of the same policy.
	sess, _ := mgr.GetOrCreate("ro")
	snap, err := sess.Join(0, server.Subscriber{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewClient(snap.Site, snap.Text)
	m, err := cl.Insert(0, "!")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Receive(m); err == nil {
		t.Fatal("session accepted an op from a viewer")
	}
}

// TestSessionCloseAndDrop checks lifecycle: Drop stops one session without
// touching the rest, and calls after Close fail with ErrClosed.
func TestSessionCloseAndDrop(t *testing.T) {
	mgr := server.NewManager()
	a, err := mgr.GetOrCreate("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.GetOrCreate("b")
	if err != nil {
		t.Fatal(err)
	}

	mgr.Drop("a")
	if _, ok := mgr.Get("a"); ok {
		t.Fatal("dropped session still registered")
	}
	if _, err := a.Join(0, server.Subscriber{}); err != server.ErrClosed {
		t.Fatalf("Join on dropped session: %v", err)
	}
	if _, err := b.Join(0, server.Subscriber{}); err != nil {
		t.Fatalf("sibling session broken by Drop: %v", err)
	}

	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Receive(core.ClientMsg{From: 1}); err != server.ErrClosed {
		t.Fatalf("Receive after Close: %v", err)
	}
	if _, err := mgr.GetOrCreate("c"); err != server.ErrClosed {
		t.Fatalf("GetOrCreate after Close: %v", err)
	}
}
