package server

import (
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Service is the network front end of a Manager: one listener serving many
// document sessions. A connection opens with either a wire.JoinReq (the
// single-document protocol — routed to the default session "") or a
// wire.SessionJoinReq naming a document; afterwards the per-connection
// protocol is identical to the single-session Notifier's, so reducecli and
// the Editor client work unchanged against either server.
type Service struct {
	ln  transport.Listener
	mgr *Manager

	// queueHist, when observability is mounted, receives every connection's
	// enqueue-time queue depth (obs.HQueueDepth on the manager's registry).
	queueHist *obs.Histogram

	mu     sync.Mutex
	closed bool
	conns  map[transport.Conn]*transport.Sender

	wg sync.WaitGroup
}

// Serve starts accepting connections for mgr's sessions on ln and returns
// immediately. The caller retains ownership of mgr (Close does not close it),
// so one manager can serve several listeners.
func Serve(ln transport.Listener, mgr *Manager) *Service {
	s := &Service{ln: ln, mgr: mgr, conns: make(map[transport.Conn]*transport.Sender)}
	if reg := mgr.Registry(); reg != nil {
		// Live connection-queue metrics for /metricz. One gauge per manager:
		// a second Serve on the same manager takes the name over, which is
		// harmless — both report the same kind of maximum.
		s.queueHist = reg.Histogram(obs.HQueueDepth)
		reg.Gauge(obs.GQueueHighWater, func() int64 { return int64(s.QueueHighWater()) })
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// QueueHighWater reports the deepest any live connection's outbound queue
// has been — the backpressure of the slowest client currently connected.
func (s *Service) QueueHighWater() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var hw int
	for _, snd := range s.conns {
		if snd == nil {
			continue
		}
		if d := snd.HighWater(); d > hw {
			hw = d
		}
	}
	return hw
}

// Addr returns the listener's address.
func (s *Service) Addr() string { return s.ln.Addr() }

// String summarizes the service for status logs: address, live connections,
// session count, and the queue high-water mark.
func (s *Service) String() string {
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	return fmt.Sprintf("service addr=%s conns=%d sessions=%d queue_highwater=%d",
		s.ln.Addr(), conns, s.mgr.Len(), s.QueueHighWater())
}

// DebugHandler assembles the HTTP introspection endpoint for a server built
// around reg: it registers the process-wide wire and transport counters on
// reg and returns the obs handler serving /metricz, /tracez (when ring is
// non-nil), pprof, and expvar. Both reducesrv modes and tests mount it.
func DebugHandler(reg *obs.Registry, ring *obs.DecisionRing) http.Handler {
	wire.RegisterMetrics(reg)
	transport.RegisterMetrics(reg)
	return obs.NewHandler(reg.Snapshot, ring)
}

// Close stops accepting, closes every connection, and waits for the
// connection handlers to finish.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = nil // sender registered once the join handshake completes
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle runs one connection: session routing, join handshake, then the
// operation loop.
func (s *Service) handle(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	sess, site, readOnly, snd, err := s.admit(conn)
	if err != nil {
		return
	}
	defer func() {
		_ = sess.Leave(site)
		snd.Close()
	}()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		switch v := m.(type) {
		case wire.ClientOp:
			if v.From != site || readOnly {
				return // impersonation, or an op from a viewer
			}
			if err := sess.Receive(core.ClientMsg{From: v.From, Op: v.Op, TS: v.TS, Ref: v.Ref}); err != nil {
				return
			}
		case wire.Presence:
			if v.From != site {
				return
			}
			if err := sess.RelayPresence(core.PresenceMsg{
				From: v.From, TS: v.TS, Anchor: v.Anchor, Head: v.Head, Active: v.Active,
			}); err != nil {
				return
			}
		case wire.Leave:
			return
		default:
			return // protocol violation
		}
	}
}

// admit reads the opening message, routes to (or creates) the session, and
// completes the join handshake. The snapshot is enqueued from the session
// goroutine by the Admitted hook, so it precedes any broadcast to the site.
func (s *Service) admit(conn transport.Conn) (*Session, int, bool, *transport.Sender, error) {
	m, err := conn.Recv()
	if err != nil {
		return nil, 0, false, nil, err
	}
	var name string
	var site int
	var readOnly bool
	switch v := m.(type) {
	case wire.JoinReq:
		site, readOnly = v.Site, v.ReadOnly
	case wire.SessionJoinReq:
		name, site, readOnly = v.Session, v.Site, v.ReadOnly
	default:
		return nil, 0, false, nil, fmt.Errorf("server: expected join, got %T", m)
	}
	sess, err := s.mgr.GetOrCreate(name)
	if err != nil {
		return nil, 0, false, nil, err
	}
	// The sender is the shared writer-queue type: the session goroutine
	// never blocks on a peer's network backpressure, and its drains
	// coalesce bursts into batched frames with one flush each.
	snd := transport.NewSender(conn, ErrClosed)
	if s.queueHist != nil {
		snd.SetQueueHistogram(s.queueHist)
	}
	s.mu.Lock()
	if _, ok := s.conns[conn]; ok {
		s.conns[conn] = snd
	}
	s.mu.Unlock()
	snap, err := sess.Join(site, Subscriber{
		ReadOnly: readOnly,
		Admitted: func(sn core.Snapshot) {
			_ = snd.Enqueue(wire.JoinResp{Site: sn.Site, Text: sn.Text, LocalOps: sn.LocalOps})
		},
		DeliverBroadcast: func(bc *wire.Broadcast, to int, ts core.Timestamp) {
			_ = snd.EnqueueBroadcast(bc, to, ts)
		},
		Presence: func(o core.PresenceOut) {
			_ = snd.Enqueue(wire.ServerPresence{
				To: o.To, From: o.From, Anchor: o.Anchor, Head: o.Head, Active: o.Active,
			})
		},
	})
	if err != nil {
		snd.Close()
		return nil, 0, false, nil, err
	}
	return sess, snap.Site, readOnly, snd, nil
}
