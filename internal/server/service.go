package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/transport"
	"repro/internal/transport/netpoll"
	"repro/internal/wire"
)

// Service is the network front end of a Manager: one listener serving many
// document sessions. A connection opens with either a wire.JoinReq (the
// single-document protocol — routed to the default session "") or a
// wire.SessionJoinReq naming a document; afterwards the per-connection
// protocol is identical to the single-session Notifier's, so reducecli and
// the Editor client work unchanged against either server.
//
// By default every connection costs two goroutines (reader + writer). The
// goroutine-lean options change that: WithWriterPool drains all outbound
// queues with a fixed worker pool, and WithEventDispatch parks inbound sides
// of event-capable transports (the in-memory one) on a shared dispatcher —
// an idle connection then costs zero goroutines (DESIGN.md §15).
type Service struct {
	ln  transport.Listener
	mgr *Manager

	// pool, when non-nil, drains every connection's outbound queue with
	// shared workers instead of one writer goroutine per connection.
	pool *transport.WriterPool
	// disp, when non-nil, drains event-capable inbound sides with shared
	// workers instead of one reader goroutine per connection. Connections
	// whose transport cannot signal readability (TCP) keep a dedicated
	// reader either way.
	disp *transport.Dispatcher

	// queueHist, when observability is mounted, receives every connection's
	// enqueue-time queue depth (obs.HQueueDepth on the manager's registry).
	queueHist *obs.Histogram

	mu     sync.Mutex
	closed bool
	conns  map[transport.Conn]*transport.Sender

	wg sync.WaitGroup
}

// ServeOption configures a Service.
type ServeOption func(*serveConfig)

type serveConfig struct {
	writerPool      int
	eventDispatch   int
	dispatchShards  int
	fanoutThreshold int
}

// WithWriterPool drains all connections' outbound queues with a fixed pool
// of n writer goroutines (GOMAXPROCS when n < 0) instead of one dedicated
// writer per connection. n == 0 keeps dedicated writers (the default, and
// the reference semantics the pooled mode is differentially tested against).
func WithWriterPool(n int) ServeOption {
	return func(c *serveConfig) { c.writerPool = n }
}

// WithEventDispatch parks the inbound side of event-capable connections
// (transport.EventConn — the in-memory transport) on a shared dispatcher of
// n workers (GOMAXPROCS when n < 0) instead of a reader goroutine per
// connection. n == 0 keeps dedicated readers (the default). TCP connections
// are unaffected: without a platform poller their readiness is only
// observable from a blocked Read.
func WithEventDispatch(n int) ServeOption {
	return func(c *serveConfig) { c.eventDispatch = n }
}

// WithDispatchShards splits the writer pool's and event dispatcher's ready
// rings into n per-worker shards with work stealing (DESIGN.md §18). n == 0
// keeps the default of one shard per worker; n == 1 is the single-ring §15
// layout. Effective only with WithWriterPool / WithEventDispatch.
func WithDispatchShards(n int) ServeOption {
	return func(c *serveConfig) { c.dispatchShards = n }
}

// WithFanoutThreshold sets the destination count at which a session's
// broadcast fan-out scatters its enqueues across the writer pool's shards
// instead of looping serially (0 = transport.DefaultFanoutThreshold,
// negative = always serial). The setting lands on the manager, shared by
// every session it runs.
func WithFanoutThreshold(n int) ServeOption {
	return func(c *serveConfig) { c.fanoutThreshold = n }
}

// Serve starts accepting connections for mgr's sessions on ln and returns
// immediately. The caller retains ownership of mgr (Close does not close it),
// so one manager can serve several listeners.
func Serve(ln transport.Listener, mgr *Manager, opts ...ServeOption) *Service {
	var cfg serveConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &Service{ln: ln, mgr: mgr, conns: make(map[transport.Conn]*transport.Sender)}
	if cfg.writerPool != 0 {
		s.pool = transport.NewWriterPool(cfg.writerPool, transport.WithShards(cfg.dispatchShards))
	}
	if cfg.eventDispatch != 0 {
		s.disp = transport.NewDispatcher(cfg.eventDispatch, 0, transport.WithShards(cfg.dispatchShards))
	}
	if cfg.fanoutThreshold != 0 {
		mgr.SetFanoutThreshold(cfg.fanoutThreshold)
	}
	if reg := mgr.Registry(); reg != nil {
		// Live connection-queue metrics for /metricz. One gauge per manager:
		// a second Serve on the same manager takes the name over, which is
		// harmless — both report the same kind of maximum.
		s.queueHist = reg.Histogram(obs.HQueueDepth)
		reg.Gauge(obs.GQueueHighWater, func() int64 { return int64(s.QueueHighWater()) })
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// QueueHighWater reports the deepest any live connection's outbound queue
// has been — the backpressure of the slowest client currently connected.
func (s *Service) QueueHighWater() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var hw int
	for _, snd := range s.conns {
		if snd == nil {
			continue
		}
		if d := snd.HighWater(); d > hw {
			hw = d
		}
	}
	return hw
}

// Addr returns the listener's address.
func (s *Service) Addr() string { return s.ln.Addr() }

// String summarizes the service for status logs: address, live connections,
// session count, and the queue high-water mark.
func (s *Service) String() string {
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	return fmt.Sprintf("service addr=%s conns=%d sessions=%d queue_highwater=%d",
		s.ln.Addr(), conns, s.mgr.Len(), s.QueueHighWater())
}

// DebugHandler assembles the HTTP introspection endpoint for a server built
// around reg: it registers the process-wide wire and transport counters on
// reg and returns the obs handler serving /metricz, /tracez (when ring is
// non-nil), /healthz, pprof, and expvar. Extra endpoints (the span tracer's
// /spanz) and the readiness probe arrive via opts. Both reducesrv modes and
// tests mount it.
func DebugHandler(reg *obs.Registry, ring *obs.DecisionRing, opts ...obs.HandlerOption) http.Handler {
	wire.RegisterMetrics(reg)
	transport.RegisterMetrics(reg)
	netpoll.RegisterMetrics(reg)
	// The goroutine count is the E13 headline: with the lean connection
	// layer it stays O(pool + resident sessions) however many connections
	// are attached.
	reg.Gauge(obs.GGoroutines, func() int64 { return int64(runtime.NumGoroutine()) })
	// Runtime memory pressure, read fresh per snapshot. ReadMemStats is a
	// stop-the-world of microseconds — fine at /metricz polling rates.
	reg.Gauge(obs.GHeapBytes, func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	})
	reg.Gauge(obs.GGCPauseNs, func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.NumGC == 0 {
			return 0
		}
		return int64(ms.PauseNs[(ms.NumGC+255)%256])
	})
	reg.Gauge(obs.GNumGC, func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.NumGC)
	})
	return obs.NewHandler(reg.Snapshot, ring, opts...)
}

// connWakeNs reports when the platform poller saw conn become readable
// (netpoll's pollConn implements the probe), or 0 when the transport cannot
// say — the poll_wake stage is then simply absent from the span.
func connWakeNs(c transport.Conn) int64 {
	if w, ok := c.(interface{ TraceWakeNs() int64 }); ok {
		return w.TraceWakeNs()
	}
	return 0
}

// Close stops accepting, closes every connection, and waits for the
// connection handlers to finish.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	// Teardown order matters: retiring dispatched connections runs their
	// finish hooks, which close senders, which need the writer pool to
	// drain — so the pool goes down last.
	if s.disp != nil {
		s.disp.Close()
	}
	if s.pool != nil {
		s.pool.Close()
	}
	return nil
}

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = nil // sender registered once the join handshake completes
		s.mu.Unlock()
		if s.disp != nil {
			if ec, ok := conn.(transport.EventConn); ok {
				// Event path: no goroutine. The dispatcher steps the
				// connection's state machine per inbound message; the join
				// request arrives as the first dispatched message.
				cs := &connState{s: s, conn: conn}
				if s.disp.Add(ec, cs.handleMsg, cs.finish) {
					continue
				}
				// Dispatcher already closed: fall through to the dedicated
				// reader, which will fail fast on the closed listener state.
			}
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// connState is one event-dispatched connection's protocol state, stepped by
// dispatcher workers (never concurrently — the dispatcher guarantees one
// servicer per conn, preserving the per-connection FIFO the paper's links
// assume).
type connState struct {
	s    *Service
	conn transport.Conn

	admitted bool
	sess     *Session
	site     int
	readOnly bool
	snd      *transport.Sender
}

// handleMsg processes one inbound message; returning false retires the
// connection (the dispatcher then runs finish exactly once).
func (cs *connState) handleMsg(m wire.Msg) bool {
	if !cs.admitted {
		sess, site, readOnly, snd, err := cs.s.admitMsg(cs.conn, m)
		if err != nil {
			return false
		}
		cs.admitted = true
		cs.sess, cs.site, cs.readOnly, cs.snd = sess, site, readOnly, snd
		return true
	}
	switch v := m.(type) {
	case wire.ClientOp:
		if v.From != cs.site || cs.readOnly {
			return false // impersonation, or an op from a viewer
		}
		var ctx span.Context
		if tr := cs.s.mgr.SpanTracer(); tr.Enabled() {
			ctx = tr.Arrival(v.Trace, v.Ref.Site, v.Ref.Seq, connWakeNs(cs.conn))
		}
		return cs.sess.Receive(core.ClientMsg{From: v.From, Op: v.Op, TS: v.TS, Ref: v.Ref, Trace: ctx}) == nil
	case wire.Presence:
		if v.From != cs.site {
			return false
		}
		return cs.sess.RelayPresence(core.PresenceMsg{
			From: v.From, TS: v.TS, Anchor: v.Anchor, Head: v.Head, Active: v.Active,
		}) == nil
	case wire.Leave:
		return false
	default:
		return false // protocol violation
	}
}

// finish is the dispatcher's exactly-once teardown hook — the event-path
// equivalent of handle's defers.
func (cs *connState) finish() {
	if cs.admitted {
		_ = cs.sess.Leave(cs.site)
		cs.snd.Close()
	}
	cs.s.mu.Lock()
	delete(cs.s.conns, cs.conn)
	cs.s.mu.Unlock()
	_ = cs.conn.Close()
}

// handle runs one connection: session routing, join handshake, then the
// operation loop.
func (s *Service) handle(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	sess, site, readOnly, snd, err := s.admit(conn)
	if err != nil {
		return
	}
	defer func() {
		_ = sess.Leave(site)
		snd.Close()
	}()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		switch v := m.(type) {
		case wire.ClientOp:
			if v.From != site || readOnly {
				return // impersonation, or an op from a viewer
			}
			var ctx span.Context
			if tr := s.mgr.SpanTracer(); tr.Enabled() {
				ctx = tr.Arrival(v.Trace, v.Ref.Site, v.Ref.Seq, connWakeNs(conn))
			}
			if err := sess.Receive(core.ClientMsg{From: v.From, Op: v.Op, TS: v.TS, Ref: v.Ref, Trace: ctx}); err != nil {
				return
			}
		case wire.Presence:
			if v.From != site {
				return
			}
			if err := sess.RelayPresence(core.PresenceMsg{
				From: v.From, TS: v.TS, Anchor: v.Anchor, Head: v.Head, Active: v.Active,
			}); err != nil {
				return
			}
		case wire.Leave:
			return
		default:
			return // protocol violation
		}
	}
}

// admit reads the opening message, routes to (or creates) the session, and
// completes the join handshake. The snapshot is enqueued from the session
// goroutine by the Admitted hook, so it precedes any broadcast to the site.
func (s *Service) admit(conn transport.Conn) (*Session, int, bool, *transport.Sender, error) {
	m, err := conn.Recv()
	if err != nil {
		return nil, 0, false, nil, err
	}
	return s.admitMsg(conn, m)
}

// admitMsg is admit with the opening message already received — the event
// path gets it from the dispatcher instead of a blocking Recv.
func (s *Service) admitMsg(conn transport.Conn, m wire.Msg) (*Session, int, bool, *transport.Sender, error) {
	var name string
	var site int
	var readOnly bool
	switch v := m.(type) {
	case wire.JoinReq:
		site, readOnly = v.Site, v.ReadOnly
	case wire.SessionJoinReq:
		name, site, readOnly = v.Session, v.Site, v.ReadOnly
	default:
		return nil, 0, false, nil, fmt.Errorf("server: expected join, got %T", m)
	}
	sess, err := s.mgr.GetOrCreate(name)
	if err != nil {
		return nil, 0, false, nil, err
	}
	// The sender is the shared writer-queue type: the session goroutine
	// never blocks on a peer's network backpressure, and its drains
	// coalesce bursts into batched frames with one flush each. With a
	// writer pool it also costs no goroutine while idle.
	snd := transport.NewPooledSender(conn, ErrClosed, s.pool)
	if s.queueHist != nil {
		snd.SetQueueHistogram(s.queueHist)
	}
	if tr := s.mgr.SpanTracer(); tr != nil {
		snd.SetTracer(tr)
	}
	s.mu.Lock()
	if _, ok := s.conns[conn]; ok {
		s.conns[conn] = snd
	}
	s.mu.Unlock()
	snap, err := sess.Join(site, Subscriber{
		ReadOnly: readOnly,
		Admitted: func(sn core.Snapshot) {
			_ = snd.Enqueue(wire.JoinResp{Site: sn.Site, Text: sn.Text, LocalOps: sn.LocalOps})
		},
		DeliverBroadcast: func(bc *wire.Broadcast, to int, ts core.Timestamp) {
			_ = snd.EnqueueBroadcast(bc, to, ts)
		},
		FanoutSender: snd,
		Presence: func(o core.PresenceOut) {
			_ = snd.Enqueue(wire.ServerPresence{
				To: o.To, From: o.From, Anchor: o.Anchor, Head: o.Head, Active: o.Active,
			})
		},
	})
	if err != nil {
		snd.Close()
		return nil, 0, false, nil, err
	}
	return sess, snap.Site, readOnly, snd, nil
}
