package server

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Service is the network front end of a Manager: one listener serving many
// document sessions. A connection opens with either a wire.JoinReq (the
// single-document protocol — routed to the default session "") or a
// wire.SessionJoinReq naming a document; afterwards the per-connection
// protocol is identical to the single-session Notifier's, so reducecli and
// the Editor client work unchanged against either server.
type Service struct {
	ln  transport.Listener
	mgr *Manager

	mu     sync.Mutex
	closed bool
	conns  map[transport.Conn]struct{}

	wg sync.WaitGroup
}

// Serve starts accepting connections for mgr's sessions on ln and returns
// immediately. The caller retains ownership of mgr (Close does not close it),
// so one manager can serve several listeners.
func Serve(ln transport.Listener, mgr *Manager) *Service {
	s := &Service{ln: ln, mgr: mgr, conns: make(map[transport.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Service) Addr() string { return s.ln.Addr() }

// Close stops accepting, closes every connection, and waits for the
// connection handlers to finish.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle runs one connection: session routing, join handshake, then the
// operation loop.
func (s *Service) handle(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	sess, site, readOnly, snd, err := s.admit(conn)
	if err != nil {
		return
	}
	defer func() {
		_ = sess.Leave(site)
		snd.close()
	}()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		switch v := m.(type) {
		case wire.ClientOp:
			if v.From != site || readOnly {
				return // impersonation, or an op from a viewer
			}
			if err := sess.Receive(core.ClientMsg{From: v.From, Op: v.Op, TS: v.TS, Ref: v.Ref}); err != nil {
				return
			}
		case wire.Presence:
			if v.From != site {
				return
			}
			if err := sess.RelayPresence(core.PresenceMsg{
				From: v.From, TS: v.TS, Anchor: v.Anchor, Head: v.Head, Active: v.Active,
			}); err != nil {
				return
			}
		case wire.Leave:
			return
		default:
			return // protocol violation
		}
	}
}

// admit reads the opening message, routes to (or creates) the session, and
// completes the join handshake. The snapshot is enqueued from the session
// goroutine by the Admitted hook, so it precedes any broadcast to the site.
func (s *Service) admit(conn transport.Conn) (*Session, int, bool, *connSender, error) {
	m, err := conn.Recv()
	if err != nil {
		return nil, 0, false, nil, err
	}
	var name string
	var site int
	var readOnly bool
	switch v := m.(type) {
	case wire.JoinReq:
		site, readOnly = v.Site, v.ReadOnly
	case wire.SessionJoinReq:
		name, site, readOnly = v.Session, v.Site, v.ReadOnly
	default:
		return nil, 0, false, nil, fmt.Errorf("server: expected join, got %T", m)
	}
	sess, err := s.mgr.GetOrCreate(name)
	if err != nil {
		return nil, 0, false, nil, err
	}
	snd := newConnSender(conn)
	snap, err := sess.Join(site, Subscriber{
		ReadOnly: readOnly,
		Admitted: func(sn core.Snapshot) {
			_ = snd.enqueue(wire.JoinResp{Site: sn.Site, Text: sn.Text, LocalOps: sn.LocalOps})
		},
		Deliver: func(bm core.ServerMsg) {
			_ = snd.enqueue(wire.ServerOp{To: bm.To, TS: bm.TS, Ref: bm.Ref, OrigRef: bm.OrigRef, Op: bm.Op})
		},
		Presence: func(o core.PresenceOut) {
			_ = snd.enqueue(wire.ServerPresence{
				To: o.To, From: o.From, Anchor: o.Anchor, Head: o.Head, Active: o.Active,
			})
		},
	})
	if err != nil {
		snd.close()
		return nil, 0, false, nil, err
	}
	return sess, snap.Site, readOnly, snd, nil
}

// connSender serializes outbound messages onto a connection through an
// unbounded FIFO queue drained by one writer goroutine, so the session
// goroutine never blocks on a peer's network backpressure.
type connSender struct {
	conn transport.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	q      []wire.Msg
	closed bool

	done chan struct{}
}

func newConnSender(conn transport.Conn) *connSender {
	s := &connSender{conn: conn, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// enqueue appends m to the outbound queue; messages leave in enqueue order.
func (s *connSender) enqueue(m wire.Msg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.q = append(s.q, m)
	s.cond.Signal()
	return nil
}

// close drains what is already queued (best effort) and stops the writer.
func (s *connSender) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Signal()
	}
	s.mu.Unlock()
	<-s.done
}

func (s *connSender) run() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.q) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.q) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		m := s.q[0]
		s.q = s.q[1:]
		s.mu.Unlock()

		if err := s.conn.Send(m); err != nil {
			s.mu.Lock()
			s.closed = true
			s.q = nil
			s.mu.Unlock()
			return
		}
	}
}
