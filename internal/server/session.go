// Package server runs many independent document sessions — each a complete
// star of paper Fig. 1 with its own notifier engine — inside one process.
//
// The paper's protocol is strictly per-session: SV_0, the history buffer,
// and every timestamp are scoped to one document, so M documents are M
// independent notifiers that never need to synchronize with each other. The
// package exploits that: each Session serializes its engine on a dedicated
// goroutine (the same single-writer discipline core.Server requires), and
// the Manager routes to sessions through a copy-on-write registry that makes
// the lookup on every received operation lock-free. Throughput then scales
// with sessions across cores instead of funneling every document through one
// mutex.
package server

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Package errors.
var (
	// ErrClosed is returned by operations on a closed Session or Manager.
	ErrClosed = errors.New("server: closed")
	// ErrRejected is returned for an operation from a site that is not
	// joined read-write in the session (unknown sender or a viewer).
	ErrRejected = errors.New("server: operation rejected")
)

// Subscriber is one participant's delivery hooks, invoked on the session
// goroutine. Callbacks must not block and must not call back into the same
// Session synchronously (enqueue to a writer goroutine instead — see the
// connection sender in service.go).
type Subscriber struct {
	// Deliver receives every operation broadcast to this site.
	Deliver func(core.ServerMsg)
	// DeliverBroadcast, when non-nil, is preferred over Deliver for
	// operation broadcasts: it receives the shared encode-once body
	// (serialized exactly once per Receive however many sites subscribe),
	// retained once per call — the hook owns that reference and must
	// Release it after the bytes are written. Network transports set this;
	// in-process consumers keep the simpler Deliver.
	DeliverBroadcast func(bc *wire.Broadcast, to int, ts core.Timestamp)
	// Presence, when non-nil, receives relayed presence reports.
	Presence func(core.PresenceOut)
	// Admitted, when non-nil, is called with the join snapshot after the
	// site is registered but before any broadcast can be delivered —
	// the hook that lets a transport enqueue the snapshot strictly ahead
	// of operations (the ordering Notifier.admit gets from its lock).
	Admitted func(core.Snapshot)
	// ReadOnly marks a viewer; Receive rejects its operations.
	ReadOnly bool
}

// cmd is one unit of work for the session goroutine.
type cmd struct {
	fn   func()
	done chan struct{}
}

// donePool recycles completion channels so a Receive round-trip does not
// allocate one per operation.
var donePool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// Session is one document's notifier running on its own goroutine. All
// public methods are safe for concurrent use; they serialize through the
// session's command queue, so the core engine itself is only ever touched
// from one goroutine.
type Session struct {
	name string

	// mu guards closed; inflight counts enqueues that passed the closed
	// check. Close waits for in-flight enqueues before signalling quit, so
	// no enqueue can race past the drain and block forever.
	mu       sync.RWMutex
	closed   bool
	inflight sync.WaitGroup

	cmds chan cmd
	quit chan struct{}
	done chan struct{}

	// recvNs, when non-nil, observes the full Receive latency: queue wait,
	// formula-(7) checks, transformation, execution, and fan-out enqueue.
	recvNs *obs.Histogram

	// Engine state below is owned by the session goroutine exclusively.
	srv      *core.Server
	subs     map[int]*Subscriber
	nextSite int
	received uint64
}

// newSession starts one document's notifier goroutine. child, when non-nil,
// is the session's observability registry: engine counters are recorded
// into it (trace.MetricsOn), receive latency lands in its receive.ns
// histogram, and live size gauges are registered on it. ring, when non-nil,
// streams the engine's causality decisions under the session's name.
func newSession(name, initial string, queue int, child *obs.Registry, ring *obs.DecisionRing, opts ...core.ServerOption) *Session {
	if child != nil {
		opts = append(opts[:len(opts):len(opts)], core.WithServerMetrics(trace.MetricsOn(child)))
	}
	if ring != nil {
		opts = append(opts[:len(opts):len(opts)], core.WithServerDecisionRing(ring, name))
	}
	s := &Session{
		name:     name,
		cmds:     make(chan cmd, queue),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		srv:      core.NewServer(initial, opts...),
		subs:     make(map[int]*Subscriber),
		nextSite: 1,
	}
	if child != nil {
		s.recvNs = child.Histogram(obs.HReceiveNs)
		// Gauges round-trip through the session goroutine (Registry.Snapshot
		// invokes them with no lock held). A closed session reports its last
		// consistent value semantics as zero — the child is usually dropped
		// alongside anyway.
		child.Gauge(obs.GSites, func() int64 {
			var v int64
			_ = s.do(func() { v = int64(len(s.subs)) })
			return v
		})
		child.Gauge(obs.GOpsRecv, func() int64 {
			var v int64
			_ = s.do(func() { v = int64(s.received) })
			return v
		})
		child.Gauge(obs.GDocRunes, func() int64 {
			var v int64
			_ = s.do(func() { v = int64(s.srv.DocLen()) })
			return v
		})
		child.Gauge(obs.GHBLen, func() int64 {
			var v int64
			_ = s.do(func() { v = int64(s.srv.History().Len()) })
			return v
		})
		child.Gauge(obs.GClockWords, func() int64 {
			var v int64
			_ = s.do(func() { v = int64(s.srv.History().ClockWords()) })
			return v
		})
	}
	go s.run()
	return s
}

// Name returns the session's registry name ("" is the default document).
func (s *Session) Name() string { return s.name }

func (s *Session) run() {
	defer close(s.done)
	for {
		select {
		case c := <-s.cmds:
			c.fn()
			c.done <- struct{}{}
		case <-s.quit:
			// Close waits out in-flight enqueues before signalling, so
			// nothing new can be mid-enqueue: draining what is buffered
			// releases every waiter, then the goroutine exits.
			for {
				select {
				case c := <-s.cmds:
					c.fn()
					c.done <- struct{}{}
				default:
					return
				}
			}
		}
	}
}

// do runs fn on the session goroutine and waits for it to finish.
func (s *Session) do(fn func()) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	s.inflight.Add(1)
	s.mu.RUnlock()
	d := donePool.Get().(chan struct{})
	s.cmds <- cmd{fn: fn, done: d}
	s.inflight.Done()
	<-d
	donePool.Put(d)
	return nil
}

// Join admits a site (site <= 0 requests automatic assignment) and registers
// its delivery hooks. It returns the snapshot the joiner initializes from;
// sub.Admitted, when set, sees the same snapshot strictly before any
// broadcast reaches sub.Deliver.
func (s *Session) Join(site int, sub Subscriber) (core.Snapshot, error) {
	var snap core.Snapshot
	var err error
	derr := s.do(func() {
		if site <= 0 {
			site = s.nextSite
		}
		for {
			if _, taken := s.subs[site]; !taken {
				break
			}
			site++
		}
		if site >= s.nextSite {
			s.nextSite = site + 1
		}
		snap, err = s.srv.Join(site)
		if err != nil {
			return
		}
		s.subs[site] = &sub
		if sub.Admitted != nil {
			sub.Admitted(snap)
		}
	})
	if derr != nil {
		return core.Snapshot{}, derr
	}
	return snap, err
}

// Leave removes a site; its subscriber receives nothing further.
func (s *Session) Leave(site int) error {
	var err error
	if derr := s.do(func() {
		if _, ok := s.subs[site]; !ok {
			return // unknown or already gone: Leave is idempotent
		}
		delete(s.subs, site)
		err = s.srv.Leave(site)
	}); derr != nil {
		return derr
	}
	return err
}

// Receive integrates one client operation and fans the broadcasts out to the
// subscribed destinations. Operations from viewers are rejected.
func (s *Session) Receive(m core.ClientMsg) error {
	var start time.Time
	if s.recvNs != nil {
		start = time.Now()
	}
	var err error
	if derr := s.do(func() {
		sub := s.subs[m.From]
		if sub == nil || sub.ReadOnly {
			err = ErrRejected
			return
		}
		bcast, _, rerr := s.srv.Receive(m)
		if rerr != nil {
			err = rerr
			return
		}
		s.received++
		// Every destination shares refs and op; only To and the compressed
		// timestamp differ. The shared body is encoded lazily — only when a
		// subscriber actually takes the encode-once path — and exactly once.
		var bc *wire.Broadcast
		for _, bm := range bcast {
			dst := s.subs[bm.To]
			if dst == nil {
				continue
			}
			switch {
			case dst.DeliverBroadcast != nil:
				if bc == nil {
					var berr error
					if bc, berr = wire.NewBroadcast(bm.Ref, bm.OrigRef, bm.Op); berr != nil {
						err = berr
						return
					}
				}
				bc.Retain()
				dst.DeliverBroadcast(bc, bm.To, bm.TS)
			case dst.Deliver != nil:
				dst.Deliver(bm)
			}
		}
		if bc != nil {
			bc.Release()
		}
	}); derr != nil {
		return derr
	}
	if s.recvNs != nil {
		s.recvNs.Since(start)
	}
	return err
}

// RelayPresence re-coordinates a presence report and fans it out to
// subscribers that registered a Presence hook.
func (s *Session) RelayPresence(m core.PresenceMsg) error {
	var err error
	if derr := s.do(func() {
		outs, rerr := s.srv.RelayPresence(m)
		if rerr != nil {
			err = rerr
			return
		}
		for _, o := range outs {
			if dst := s.subs[o.To]; dst != nil && dst.Presence != nil {
				dst.Presence(o)
			}
		}
	}); derr != nil {
		return derr
	}
	return err
}

// Text returns the session's current document.
func (s *Session) Text() string {
	var text string
	_ = s.do(func() { text = s.srv.Text() })
	return text
}

// Stats is a point-in-time summary of one session.
type Stats struct {
	Name  string
	Sites int    // currently joined sites
	Ops   uint64 // operations received over the session's lifetime
	Doc   int    // document length in runes
}

// Stats reports the session's current size and traffic counters.
func (s *Session) Stats() Stats {
	st := Stats{Name: s.name}
	_ = s.do(func() {
		st.Sites = len(s.subs)
		st.Ops = s.received
		st.Doc = s.srv.DocLen()
	})
	return st
}

// Close stops the session goroutine. Buffered commands still execute;
// subsequent calls return ErrClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// Enqueues that passed the closed check land in the buffer before quit
	// is signalled, so the run loop's drain releases every waiter.
	s.inflight.Wait()
	close(s.quit)
	<-s.done
	return nil
}
