// Package server runs many independent document sessions — each a complete
// star of paper Fig. 1 with its own notifier engine — inside one process.
//
// The paper's protocol is strictly per-session: SV_0, the history buffer,
// and every timestamp are scoped to one document, so M documents are M
// independent notifiers that never need to synchronize with each other. The
// package exploits that: each Session serializes its engine on a dedicated
// goroutine (the same single-writer discipline core.Server requires), and
// the Manager routes to sessions through a copy-on-write registry that makes
// the lookup on every received operation lock-free. Throughput then scales
// with sessions across cores instead of funneling every document through one
// mutex.
package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Package errors.
var (
	// ErrClosed is returned by operations on a closed Session or Manager.
	ErrClosed = errors.New("server: closed")
	// ErrRejected is returned for an operation from a site that is not
	// joined read-write in the session (unknown sender or a viewer).
	ErrRejected = errors.New("server: operation rejected")
)

// Subscriber is one participant's delivery hooks, invoked on the session
// goroutine. Callbacks must not block and must not call back into the same
// Session synchronously (enqueue to a writer goroutine instead — see the
// connection sender in service.go).
type Subscriber struct {
	// Deliver receives every operation broadcast to this site.
	Deliver func(core.ServerMsg)
	// DeliverBroadcast, when non-nil, is preferred over Deliver for
	// operation broadcasts: it receives the shared encode-once body
	// (serialized exactly once per Receive however many sites subscribe),
	// retained once per call — the hook owns that reference and must
	// Release it after the bytes are written. Network transports set this;
	// in-process consumers keep the simpler Deliver.
	DeliverBroadcast func(bc *wire.Broadcast, to int, ts core.Timestamp)
	// FanoutSender, when non-nil alongside DeliverBroadcast, lets the
	// session batch this destination into a parallel fan-out across the
	// writer pool's shards (transport.FanoutScratch, DESIGN.md §18)
	// instead of invoking DeliverBroadcast serially. The enqueue semantics
	// are identical — one retained reference per destination, consumed by
	// EnqueueBroadcast — only the goroutine doing the enqueue may differ.
	FanoutSender *transport.Sender
	// Presence, when non-nil, receives relayed presence reports.
	Presence func(core.PresenceOut)
	// Admitted, when non-nil, is called with the join snapshot after the
	// site is registered but before any broadcast can be delivered —
	// the hook that lets a transport enqueue the snapshot strictly ahead
	// of operations (the ordering Notifier.admit gets from its lock).
	Admitted func(core.Snapshot)
	// ReadOnly marks a viewer; Receive rejects its operations.
	ReadOnly bool
}

// cmd is one unit of work for the session goroutine.
type cmd struct {
	fn   func()
	done chan struct{}
	// touch marks real demand (Join/Receive/Leave/...): it refreshes the
	// idle clock. Observation commands (Stats, gauges) leave it false so a
	// metrics scraper polling every few milliseconds cannot keep an
	// otherwise-idle session resident forever.
	touch bool
}

// donePool recycles completion channels so a Receive round-trip does not
// allocate one per operation.
var donePool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// Session lifecycle states (guarded by mu; transitions broadcast on cond).
//
//	running  — the actor goroutine is live and owns the engine.
//	parking  — the actor is mid-dehydration: draining in-flight enqueues
//	           and serializing the engine. Callers wait on cond; the park
//	           either aborts (back to running) or completes (parked).
//	parked   — the engine is a compact checkpoint, the goroutine is gone.
//	           The first do() rehydrates under the write lock
//	           (single-flight by construction) and restarts the actor.
const (
	stRunning = iota
	stParking
	stParked
)

// parkedView is the frozen observable state of a dehydrated session, so
// gauges, Stats, and cvcstat report real numbers without rehydrating —
// observation must never cost a restore (DESIGN.md §15).
type parkedView struct {
	sites      int
	received   uint64
	docRunes   int
	hbLen      int
	clockWords int
}

// Session is one document's notifier running on its own goroutine. All
// public methods are safe for concurrent use; they serialize through the
// session's command queue, so the core engine itself is only ever touched
// from one goroutine.
//
// With idle dehydration enabled the goroutine is not permanent: after idleD
// without commands the actor checkpoints the engine and exits (see tryPark),
// and the next command transparently restores it (see rehydrate).
type Session struct {
	name string

	// mu guards closed and the park state machine; inflight counts enqueues
	// that passed the closed/running check. Close and tryPark wait for
	// in-flight enqueues before proceeding, so no enqueue can race past a
	// drain and block forever. cond (on mu's write side) announces state
	// transitions out of parking.
	mu       sync.RWMutex
	cond     *sync.Cond
	closed   bool
	state    int
	inflight sync.WaitGroup

	cmds chan cmd
	// quit and done belong to the current actor incarnation; rehydrate
	// replaces them (under mu) when it restarts the goroutine, and the actor
	// captures both at entry so a stale incarnation never touches fresh
	// channels.
	quit chan struct{}
	done chan struct{}

	// idleD > 0 enables dehydration after that much command inactivity.
	idleD   time.Duration
	lastAct time.Time // actor-goroutine owned; handed off through rehydrate

	// checkpoint and pv are set while parked (guarded by mu); engineOpts is
	// what RestoreServer rebuilds the engine with.
	checkpoint []byte
	pv         parkedView
	engineOpts []core.ServerOption

	// rehydrations, when non-nil, counts engine restores (the manager's
	// sessions.rehydrations counter).
	rehydrations *obs.Counter

	// recvNs, when non-nil, observes the full Receive latency: queue wait,
	// formula-(7) checks, transformation, execution, and fan-out enqueue.
	recvNs *obs.Histogram

	// spans, when non-nil, stamps the actor-owned stages (dequeue,
	// broadcast enqueue) of sampled operations.
	spans *span.Tracer

	// fanoutT, when non-nil, is the manager's shared fan-out threshold
	// (0 = transport.DefaultFanoutThreshold, < 0 = always serial); fanout
	// is the actor-owned scratch that scatters broadcast enqueues across
	// the writer pool's shards when destinations opt in via FanoutSender.
	fanoutT *atomic.Int32
	fanout  transport.FanoutScratch

	// Engine state below is owned by the session goroutine exclusively
	// (srv is nil while parked; subs survives parking untouched).
	srv      *core.Server
	subs     map[int]*Subscriber
	nextSite int
	received uint64
}

// newSession starts one document's notifier goroutine. child, when non-nil,
// is the session's observability registry: engine counters are recorded
// into it (trace.MetricsOn), receive latency lands in its receive.ns
// histogram, and live size gauges are registered on it. ring, when non-nil,
// streams the engine's causality decisions under the session's name.
func newSession(name, initial string, queue int, child *obs.Registry, ring *obs.DecisionRing, spans *span.Tracer, idleD time.Duration, rehydrations *obs.Counter, fanoutT *atomic.Int32, opts ...core.ServerOption) *Session {
	if child != nil {
		opts = append(opts[:len(opts):len(opts)], core.WithServerMetrics(trace.MetricsOn(child)))
	}
	if ring != nil {
		opts = append(opts[:len(opts):len(opts)], core.WithServerDecisionRing(ring, name))
	}
	if spans != nil {
		opts = append(opts[:len(opts):len(opts)], core.WithServerSpans(spans))
	}
	s := &Session{
		name:         name,
		cmds:         make(chan cmd, queue),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		idleD:        idleD,
		lastAct:      time.Now(),
		engineOpts:   opts,
		rehydrations: rehydrations,
		spans:        spans,
		fanoutT:      fanoutT,
		srv:          core.NewServer(initial, opts...),
		subs:         make(map[int]*Subscriber),
		nextSite:     1,
	}
	s.cond = sync.NewCond(&s.mu)
	if child != nil {
		s.recvNs = child.Histogram(obs.HReceiveNs)
		// Gauges observe without rehydrating: a resident session answers on
		// its goroutine (Registry.Snapshot invokes gauges with no lock held);
		// a parked one serves the frozen view — scraping /metricz must not
		// wake 100k sessions. A closed session reports zeros, as before.
		s.residentGauge(child, obs.GSites, func() int64 { return int64(len(s.subs)) }, func(pv parkedView) int64 { return int64(pv.sites) })
		s.residentGauge(child, obs.GOpsRecv, func() int64 { return int64(s.received) }, func(pv parkedView) int64 { return int64(pv.received) })
		s.residentGauge(child, obs.GDocRunes, func() int64 { return int64(s.srv.DocLen()) }, func(pv parkedView) int64 { return int64(pv.docRunes) })
		s.residentGauge(child, obs.GHBLen, func() int64 { return int64(s.srv.History().Len()) }, func(pv parkedView) int64 { return int64(pv.hbLen) })
		s.residentGauge(child, obs.GClockWords, func() int64 { return int64(s.srv.History().ClockWords()) }, func(pv parkedView) int64 { return int64(pv.clockWords) })
		// The residency bit itself, for per-session dashboards (cvcstat).
		child.Gauge(obs.GResident, func() int64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			if !s.closed && s.state == stRunning {
				return 1
			}
			return 0
		})
	}
	go s.run()
	return s
}

// residentGauge registers a gauge that reads live (on the session goroutine)
// while resident and from the parked view while dehydrated or closed.
func (s *Session) residentGauge(child *obs.Registry, name string, live func() int64, parked func(parkedView) int64) {
	child.Gauge(name, func() int64 {
		var v int64
		if s.doResident(func() { v = live() }) {
			return v
		}
		s.mu.RLock()
		v = parked(s.pv)
		s.mu.RUnlock()
		return v
	})
}

// Name returns the session's registry name ("" is the default document).
func (s *Session) Name() string { return s.name }

func (s *Session) run() {
	// Capture this incarnation's channels: rehydrate swaps s.quit/s.done for
	// the next incarnation while this one may still be unwinding its defer.
	quit, done := s.quit, s.done
	defer close(done)
	var idleC <-chan time.Time
	var timer *time.Timer
	if s.idleD > 0 {
		timer = time.NewTimer(s.idleD)
		defer timer.Stop()
		idleC = timer.C
	}
	for {
		select {
		case c := <-s.cmds:
			c.fn()
			c.done <- struct{}{}
			if c.touch {
				s.lastAct = time.Now()
			}
		case <-idleC:
			// The timer is not reset per command (that would put a timer
			// syscall on the hot path); instead it fires at most once per
			// idleD and checks how stale the last activity really is.
			if idle := time.Since(s.lastAct); idle >= s.idleD {
				if s.tryPark() {
					return
				}
			}
			rem := s.idleD - time.Since(s.lastAct)
			if rem <= 0 {
				rem = s.idleD
			}
			timer.Reset(rem)
		case <-quit:
			// Close waits out in-flight enqueues before signalling, so
			// nothing new can be mid-enqueue: draining what is buffered
			// releases every waiter, then the goroutine exits.
			for {
				select {
				case c := <-s.cmds:
					c.fn()
					c.done <- struct{}{}
				default:
					return
				}
			}
		}
	}
}

// tryPark attempts to dehydrate the session; it runs on the session
// goroutine and returns true when the actor should exit. The sequence:
// announce parking (new do() calls now wait on cond instead of enqueueing),
// wait out enqueues already in flight — draining them into a stash so a
// full command buffer cannot deadlock the wait — and then either abort
// (demand arrived: execute the stash, back to running) or serialize the
// engine, publish the frozen view, and exit.
func (s *Session) tryPark() bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.state = stParking
	s.mu.Unlock()

	// After the state flip no new enqueue starts, but some may hold a slot
	// between inflight.Add and the channel send. Receiving while waiting
	// keeps those senders from blocking against a full buffer.
	waitDone := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(waitDone)
	}()
	var stash []cmd
drain:
	for {
		select {
		case c := <-s.cmds:
			stash = append(stash, c)
		case <-waitDone:
			for {
				select {
				case c := <-s.cmds:
					stash = append(stash, c)
				default:
					break drain
				}
			}
		}
	}
	if len(stash) > 0 {
		// Demand raced the park: abort, then serve the stash in order. Only
		// real demand resets the idle clock — a stash of pure observation
		// leaves the session due to park again at the next timer fire.
		s.mu.Lock()
		s.state = stRunning
		s.cond.Broadcast()
		s.mu.Unlock()
		for _, c := range stash {
			c.fn()
			c.done <- struct{}{}
			if c.touch {
				s.lastAct = time.Now()
			}
		}
		return false
	}

	cp, err := s.srv.Checkpoint()
	if err != nil {
		// An unserializable engine stays resident; nothing was lost.
		s.mu.Lock()
		s.state = stRunning
		s.cond.Broadcast()
		s.mu.Unlock()
		return false
	}
	pv := parkedView{
		sites:      len(s.subs),
		received:   s.received,
		docRunes:   s.srv.DocLen(),
		hbLen:      s.srv.History().Len(),
		clockWords: s.srv.History().ClockWords(),
	}
	s.mu.Lock()
	s.checkpoint = cp
	s.pv = pv
	s.srv = nil
	s.state = stParked
	s.cond.Broadcast()
	s.mu.Unlock()
	return true
}

// rehydrate restores a parked session's engine and restarts its actor. The
// write lock makes the restore single-flight: concurrent callers either wait
// out a parking transition on cond or find the state already running.
func (s *Session) rehydrate() error {
	s.mu.Lock()
	for s.state == stParking && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.state == stRunning {
		s.mu.Unlock()
		return nil
	}
	srv, err := core.RestoreServer(s.checkpoint, s.engineOpts...)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.srv = srv
	s.checkpoint = nil
	s.quit = make(chan struct{})
	s.done = make(chan struct{})
	s.lastAct = time.Now()
	s.state = stRunning
	if s.rehydrations != nil {
		s.rehydrations.Add(1)
	}
	go s.run()
	s.mu.Unlock()
	return nil
}

// do runs fn on the session goroutine and waits for it to finish,
// transparently rehydrating a dehydrated session first.
func (s *Session) do(fn func()) error {
	for {
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			return ErrClosed
		}
		if s.state != stRunning {
			s.mu.RUnlock()
			if err := s.rehydrate(); err != nil {
				return err
			}
			continue
		}
		s.inflight.Add(1)
		s.mu.RUnlock()
		d := donePool.Get().(chan struct{})
		s.cmds <- cmd{fn: fn, done: d, touch: true}
		s.inflight.Done()
		<-d
		donePool.Put(d)
		return nil
	}
}

// doResident is do without the rehydrate: it runs fn only if the session is
// live right now and reports whether it did. Observation paths (gauges,
// Stats) use it so reading metrics never wakes a parked session.
func (s *Session) doResident(fn func()) bool {
	s.mu.RLock()
	if s.closed || s.state != stRunning {
		s.mu.RUnlock()
		return false
	}
	s.inflight.Add(1)
	s.mu.RUnlock()
	d := donePool.Get().(chan struct{})
	s.cmds <- cmd{fn: fn, done: d}
	s.inflight.Done()
	<-d
	donePool.Put(d)
	return true
}

// Dehydrated reports whether the session is currently parked (or parking):
// its engine exists only as a checkpoint and no goroutine is resident.
func (s *Session) Dehydrated() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.closed && s.state != stRunning
}

// Join admits a site (site <= 0 requests automatic assignment) and registers
// its delivery hooks. It returns the snapshot the joiner initializes from;
// sub.Admitted, when set, sees the same snapshot strictly before any
// broadcast reaches sub.Deliver.
func (s *Session) Join(site int, sub Subscriber) (core.Snapshot, error) {
	var snap core.Snapshot
	var err error
	derr := s.do(func() {
		if site <= 0 {
			site = s.nextSite
		}
		for {
			if _, taken := s.subs[site]; !taken {
				break
			}
			site++
		}
		if site >= s.nextSite {
			s.nextSite = site + 1
		}
		snap, err = s.srv.Join(site)
		if err != nil {
			return
		}
		s.subs[site] = &sub
		if sub.Admitted != nil {
			sub.Admitted(snap)
		}
	})
	if derr != nil {
		return core.Snapshot{}, derr
	}
	return snap, err
}

// Leave removes a site; its subscriber receives nothing further.
func (s *Session) Leave(site int) error {
	var err error
	if derr := s.do(func() {
		if _, ok := s.subs[site]; !ok {
			return // unknown or already gone: Leave is idempotent
		}
		delete(s.subs, site)
		err = s.srv.Leave(site)
	}); derr != nil {
		return derr
	}
	return err
}

// Receive integrates one client operation and fans the broadcasts out to the
// subscribed destinations. Operations from viewers are rejected.
func (s *Session) Receive(m core.ClientMsg) error {
	var start time.Time
	if s.recvNs != nil {
		start = time.Now()
	}
	var err error
	if derr := s.do(func() {
		s.spans.Stamp(m.Trace, span.StageDequeue)
		sub := s.subs[m.From]
		if sub == nil || sub.ReadOnly {
			err = ErrRejected
			return
		}
		bcast, _, rerr := s.srv.Receive(m)
		if rerr != nil {
			err = rerr
			return
		}
		s.received++
		// Every destination shares refs and op; only To and the compressed
		// timestamp differ. The shared body is encoded lazily — only when a
		// subscriber actually takes the encode-once path — and exactly once.
		var bc *wire.Broadcast
		for _, bm := range bcast {
			dst := s.subs[bm.To]
			if dst == nil {
				continue
			}
			switch {
			case dst.DeliverBroadcast != nil:
				if bc == nil {
					var berr error
					if bc, berr = wire.NewBroadcast(bm.Ref, bm.OrigRef, bm.Op); berr != nil {
						err = berr
						return
					}
					bc.Trace = bm.Trace
				}
				if dst.FanoutSender != nil {
					// Batched: the scratch Retains per destination itself
					// when it scatters (or walks) the list below.
					s.fanout.Add(dst.FanoutSender, bm.To, bm.TS)
					continue
				}
				bc.Retain()
				dst.DeliverBroadcast(bc, bm.To, bm.TS)
			case dst.Deliver != nil:
				dst.Deliver(bm)
			}
		}
		if s.fanout.Len() > 0 {
			thr := 0
			if s.fanoutT != nil {
				thr = int(s.fanoutT.Load())
			}
			s.fanout.Broadcast(bc, thr) // consumes bc
			s.fanout.Reset()
		} else if bc != nil {
			bc.Release()
		}
		s.spans.Stamp(m.Trace, span.StageBcastEnqueue)
	}); derr != nil {
		return derr
	}
	if s.recvNs != nil {
		s.recvNs.Since(start)
	}
	return err
}

// RelayPresence re-coordinates a presence report and fans it out to
// subscribers that registered a Presence hook.
func (s *Session) RelayPresence(m core.PresenceMsg) error {
	var err error
	if derr := s.do(func() {
		outs, rerr := s.srv.RelayPresence(m)
		if rerr != nil {
			err = rerr
			return
		}
		for _, o := range outs {
			if dst := s.subs[o.To]; dst != nil && dst.Presence != nil {
				dst.Presence(o)
			}
		}
	}); derr != nil {
		return derr
	}
	return err
}

// Text returns the session's current document.
func (s *Session) Text() string {
	var text string
	_ = s.do(func() { text = s.srv.Text() })
	return text
}

// Stats is a point-in-time summary of one session.
type Stats struct {
	Name     string
	Sites    int    // currently joined sites
	Ops      uint64 // operations received over the session's lifetime
	Doc      int    // document length in runes
	Resident bool   // false when the session is dehydrated
}

// Stats reports the session's current size and traffic counters. Reading
// stats never rehydrates: a dehydrated session answers from the view frozen
// at park time (which is exact — nothing changes while parked).
func (s *Session) Stats() Stats {
	st := Stats{Name: s.name}
	if s.doResident(func() {
		st.Sites = len(s.subs)
		st.Ops = s.received
		st.Doc = s.srv.DocLen()
	}) {
		st.Resident = true
		return st
	}
	s.mu.RLock()
	st.Sites = s.pv.sites
	st.Ops = s.pv.received
	st.Doc = s.pv.docRunes
	s.mu.RUnlock()
	return st
}

// Close stops the session goroutine. Buffered commands still execute;
// subsequent calls return ErrClosed. Closing a dehydrated session is
// immediate — there is no goroutine to stop and the checkpoint is dropped.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Capture this incarnation's channels under the lock: rehydrate cannot
	// run after closed is set, so these are final. A parked session's actor
	// already exited (done is closed); signalling quit is then a no-op.
	quit, done := s.quit, s.done
	s.checkpoint = nil
	// A waiter blocked in rehydrate's cond.Wait must observe the close.
	s.cond.Broadcast()
	s.mu.Unlock()
	// Enqueues that passed the closed check land in the buffer before quit
	// is signalled, so the run loop's drain releases every waiter.
	s.inflight.Wait()
	close(quit)
	<-done
	return nil
}
