package sim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// TestChurnJoinersConvergeAndStaySound: sites joining mid-session under
// load must converge with everyone else, and every verdict must still match
// the oracle (late-join baselines are the tricky part of the compression).
func TestChurnJoinersConvergeAndStaySound(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		res, err := Run(Config{
			Clients:      3,
			Joiners:      3,
			OpsPerClient: 30,
			Seed:         seed,
			Initial:      "churn base",
			Validate:     true,
			Compaction:   8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: diverged with joiners", seed)
		}
		if res.VerdictMismatches != 0 {
			t.Fatalf("seed %d: %d verdict mismatches with joiners", seed, res.VerdictMismatches)
		}
		// All six sites generated.
		if got := res.Metrics.Get("ops.generated"); got != 6*30 {
			t.Fatalf("seed %d: ops generated %d", seed, got)
		}
	}
}

// TestChurnLeaversDoNotWedgeTheSession.
func TestChurnLeaversDoNotWedgeTheSession(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		res, err := Run(Config{
			Clients:      5,
			LeaveEarly:   2,
			OpsPerClient: 30,
			Seed:         seed,
			Initial:      "leavers",
			Validate:     true,
			Compaction:   8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: survivors diverged after leaves", seed)
		}
		if res.VerdictMismatches != 0 {
			t.Fatalf("seed %d: %d mismatches", seed, res.VerdictMismatches)
		}
	}
}

// TestChurnCombined: joins and leaves in the same session, several shapes.
func TestChurnCombined(t *testing.T) {
	for _, shape := range []struct{ clients, joiners, leavers int }{
		{2, 4, 1},
		{6, 2, 3},
		{4, 4, 2},
	} {
		name := fmt.Sprintf("c=%d/j=%d/l=%d", shape.clients, shape.joiners, shape.leavers)
		t.Run(name, func(t *testing.T) {
			res, err := Run(Config{
				Clients:      shape.clients,
				Joiners:      shape.joiners,
				LeaveEarly:   shape.leavers,
				OpsPerClient: 24,
				Seed:         99,
				Initial:      "combined churn",
				Validate:     true,
				Latency:      Uniform{Lo: 5 * time.Millisecond, Hi: 60 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged || res.VerdictMismatches != 0 {
				t.Fatalf("converged=%v mismatches=%d", res.Converged, res.VerdictMismatches)
			}
		})
	}
}

// TestChurnRelayStillBreaks: the E8 ablation misbehaves under churn too —
// the breakage is not an artifact of the static-membership setup.
func TestChurnRelayStillBreaks(t *testing.T) {
	broken := 0
	for seed := int64(0); seed < 6; seed++ {
		res, err := Run(Config{
			Clients:      4,
			Joiners:      2,
			OpsPerClient: 25,
			Seed:         seed,
			Mode:         core.ModeRelay,
			Initial:      "relay churn baseline text",
			Validate:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.VerdictMismatches > 0 {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("relay mode survived churn on every seed; ablation should break")
	}
}
