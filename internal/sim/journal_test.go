package sim

import (
	"path/filepath"
	"testing"

	"repro/internal/journal"
)

// TestSimulatedSessionJournalAnalyzes: a simulated session's journal replays
// and analyzes offline; the reconstructed document matches the simulation's
// converged state and the op counts line up.
func TestSimulatedSessionJournalAnalyzes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sim.journal")
	res, err := Run(Config{
		Clients:      4,
		OpsPerClient: 30,
		Seed:         21,
		Initial:      "simulated + journaled",
		JournalPath:  path,
		Compaction:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("diverged")
	}
	a, err := journal.Analyze(path, "simulated + journaled")
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != 4*30 || a.Sites != 4 {
		t.Fatalf("analysis: %d ops, %d sites", a.Ops, a.Sites)
	}
	if a.FinalDoc != res.FinalText {
		t.Fatalf("offline reconstruction %q != simulated %q", a.FinalDoc, res.FinalText)
	}
	if a.ConcurrentPairs == 0 {
		t.Fatal("a concurrent session must show concurrent pairs")
	}
	// The recovered server also matches (replay path).
	srv, _, err := journal.Replay(path, "simulated + journaled")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Text() != res.FinalText {
		t.Fatalf("replayed %q != simulated %q", srv.Text(), res.FinalText)
	}
}

// TestChurnSessionJournalAnalyzes covers joins and leaves in the journal.
func TestChurnSessionJournalAnalyzes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "churn.journal")
	res, err := Run(Config{
		Clients:      3,
		Joiners:      2,
		LeaveEarly:   1,
		OpsPerClient: 20,
		Seed:         5,
		Initial:      "churn journal",
		JournalPath:  path,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := journal.Analyze(path, "churn journal")
	if err != nil {
		t.Fatal(err)
	}
	if a.Sites != 5 {
		t.Fatalf("sites %d", a.Sites)
	}
	if a.FinalDoc != res.FinalText {
		t.Fatalf("offline %q != simulated %q", a.FinalDoc, res.FinalText)
	}
}
