package sim

import (
	"math/rand"
	"time"
)

// LatencyModel draws per-message one-way delays. Models are pure functions
// of the supplied RNG so simulations stay deterministic.
type LatencyModel interface {
	Delay(r *rand.Rand) time.Duration
}

// Fixed is a constant delay.
type Fixed time.Duration

// Delay implements LatencyModel.
func (f Fixed) Delay(*rand.Rand) time.Duration { return time.Duration(f) }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi time.Duration
}

// Delay implements LatencyModel.
func (u Uniform) Delay(r *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Int63n(int64(u.Hi-u.Lo)))
}

// Spiky models an Internet path: a uniform base delay with occasional large
// spikes (probability SpikeP, multiplier SpikeX) — the "high and
// nondeterministic communication latency" environment of paper §2.
type Spiky struct {
	Base   Uniform
	SpikeP float64
	SpikeX int
}

// Delay implements LatencyModel.
func (s Spiky) Delay(r *rand.Rand) time.Duration {
	d := s.Base.Delay(r)
	if s.SpikeP > 0 && r.Float64() < s.SpikeP {
		x := s.SpikeX
		if x < 1 {
			x = 10
		}
		d *= time.Duration(x)
	}
	return d
}

// link is a FIFO channel with stochastic latency: delivery times are
// monotone per link regardless of the latency draws, modelling a TCP
// connection over a jittery path.
type link struct {
	sim      *Sim
	r        *rand.Rand
	lat      LatencyModel
	lastArr  time.Duration
	delivers int
}

func newLink(s *Sim, r *rand.Rand, lat LatencyModel) *link {
	return &link{sim: s, r: r, lat: lat}
}

// send schedules fn to run at the message's delivery time, preserving FIFO
// order with all earlier sends on this link.
func (l *link) send(fn func()) {
	arr := l.sim.Now() + l.lat.Delay(l.r)
	if arr < l.lastArr {
		arr = l.lastArr // FIFO: queue behind the previous message
	}
	l.lastArr = arr
	l.delivers++
	l.sim.At(arr-l.sim.Now(), fn)
}
