package sim

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/op"
)

// Figure2Result replays paper Fig. 2 / §2.2: four sites executing original
// (untransformed) operations in the figure's arrival orders, demonstrating
// divergence and intention violation.
type Figure2Result struct {
	// Orders[i] lists the execution order of operation names at site i.
	Orders map[int][]string
	// Finals[i] is site i's final document.
	Finals map[int]string
	// Diverged reports whether any pair of sites disagrees.
	Diverged bool
	// Site1AfterO1O2 is the §2.2 intention-violation result at site 1
	// ("A1DE" in the paper).
	Site1AfterO1O2 string
	// IntentionPreserved is the correct result OT produces ("A12B").
	IntentionPreserved string
}

// opsFig2 are the concrete operations used for Fig. 2's abstract O1..O4:
// O1 and O2 are the §2.2 pair; O3 and O4 are additional edits that expose
// order-dependence.
func opsFig2() map[string][]op.Positional {
	return map[string][]op.Positional{
		"O1": {{Insert: true, Pos: 1, Text: "12"}},
		"O2": {{Pos: 2, Count: 3}},
		"O3": {{Insert: true, Pos: 0, Text: "*"}},
		"O4": {{Insert: true, Pos: 1, Text: "#"}},
	}
}

// applyPositional executes a positional edit clamped to the document — what
// a consistency-unaware site does with a remote operation in original form.
func applyPositional(b doc.Buffer, p op.Positional) {
	n := b.Len()
	pos := p.Pos
	if pos < 0 {
		pos = 0
	}
	if pos > n {
		pos = n
	}
	if p.Insert {
		_ = b.Insert(pos, p.Text)
		return
	}
	count := p.Count
	if pos+count > n {
		count = n - pos
	}
	if count > 0 {
		_ = b.Delete(pos, count)
	}
}

// Figure2 runs the scenario and returns the reproduced inconsistencies.
func Figure2() *Figure2Result {
	// Execution orders straight from the figure (§2.2): site 0: O2 O1 O4
	// O3; site 1: O1 O2 O4 O3; site 2: O2 O1 O3 O4; site 3: O2 O4 O1 O3.
	orders := map[int][]string{
		0: {"O2", "O1", "O4", "O3"},
		1: {"O1", "O2", "O4", "O3"},
		2: {"O2", "O1", "O3", "O4"},
		3: {"O2", "O4", "O1", "O3"},
	}
	ops := opsFig2()
	res := &Figure2Result{
		Orders: orders,
		Finals: make(map[int]string),
	}
	for site, order := range orders {
		b := doc.NewSimple("ABCDE")
		for _, name := range order {
			for _, p := range ops[name] {
				applyPositional(b, p)
			}
		}
		res.Finals[site] = b.String()
	}
	for _, f := range res.Finals {
		if f != res.Finals[0] {
			res.Diverged = true
		}
	}

	// §2.2's intention-violation pair in isolation.
	b := doc.NewSimple("ABCDE")
	applyPositional(b, op.Positional{Insert: true, Pos: 1, Text: "12"}) // O1
	applyPositional(b, op.Positional{Pos: 2, Count: 3})                 // O2 original form
	res.Site1AfterO1O2 = b.String()

	// And the OT-correct result.
	o1, _ := op.NewInsert(5, 1, "12")
	o2, _ := op.NewDelete(5, 2, 3)
	_, o2p, _ := op.Transform(o1, o2)
	s, _ := o1.ApplyString("ABCDE")
	s, _ = o2p.ApplyString(s)
	res.IntentionPreserved = s
	return res
}

// Figure3Step records one §5 handling step for replay output.
type Figure3Step struct {
	Title string
	Lines []string
}

// Figure3Result is the full §5 walkthrough produced by real engines.
type Figure3Result struct {
	Steps  []Figure3Step
	Finals map[int]string // site → final text (0 = notifier)
}

// Figure3 replays the paper's §5 scenario on real engines, producing a
// step-by-step log whose timestamps and verdicts match the paper.
func Figure3() (*Figure3Result, error) {
	srv := core.NewServer("ABCDE", core.WithServerCompaction(0), core.WithServerCheckTrace())
	clients := map[int]*core.Client{}
	for site := 1; site <= 3; site++ {
		snap, err := srv.Join(site)
		if err != nil {
			return nil, err
		}
		clients[site] = core.NewClient(site, snap.Text, core.WithClientCompaction(0), core.WithClientCheckTrace())
	}
	res := &Figure3Result{Finals: map[int]string{}}
	// The helpers below record the first engine error and turn every later
	// call into a no-op, so the fixed §5 sequence reads linearly while
	// failures still surface through Figure3's error result.
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
	}
	step := func(title string) *Figure3Step {
		res.Steps = append(res.Steps, Figure3Step{Title: title})
		return &res.Steps[len(res.Steps)-1]
	}
	logf := func(st *Figure3Step, format string, args ...any) {
		st.Lines = append(st.Lines, fmt.Sprintf(format, args...))
	}

	describe := func(o *op.Op) string {
		ps := op.Positionals(o)
		parts := make([]string, len(ps))
		for i, p := range ps {
			parts[i] = p.Format()
		}
		if len(parts) == 0 {
			return "noop"
		}
		return strings.Join(parts, " + ")
	}

	generate := func(st *Figure3Step, site int, name string, build func(c *core.Client) (core.ClientMsg, error)) core.ClientMsg {
		if firstErr != nil {
			return core.ClientMsg{}
		}
		c := clients[site]
		m, err := build(c)
		if err != nil {
			fail("figure3: generate %s: %w", name, err)
			return core.ClientMsg{}
		}
		logf(st, "%s = %s generated at site %d, timestamped %v, doc now %q",
			name, describe(m.Op), site, m.TS, c.Text())
		return m
	}

	integrate := func(st *Figure3Step, site int, name string, m core.ServerMsg) {
		if firstErr != nil {
			return
		}
		c := clients[site]
		ir, err := c.Integrate(m)
		if err != nil {
			fail("figure3: integrate %s at %d: %w", name, site, err)
			return
		}
		verdicts := make([]string, 0, len(ir.Checks))
		for _, ch := range ir.Checks {
			rel := "∦"
			if ch.Concurrent {
				rel = "∥"
			}
			verdicts = append(verdicts, fmt.Sprintf("%v %s %s", ch.Buffered, rel, name))
		}
		if len(verdicts) == 0 {
			verdicts = append(verdicts, "HB empty — executed as-is")
		}
		logf(st, "%s arrives at site %d with %v: %s; executed %s; doc %q",
			name, site, m.TS, strings.Join(verdicts, ", "), describe(ir.Executed), c.Text())
	}

	receive := func(st *Figure3Step, name string, m core.ClientMsg) map[int]core.ServerMsg {
		if firstErr != nil {
			return nil
		}
		bcast, ir, err := srv.Receive(m)
		if err != nil {
			fail("figure3: receive %s: %w", name, err)
			return nil
		}
		verdicts := make([]string, 0, len(ir.Checks))
		for _, ch := range ir.Checks {
			rel := "∦"
			if ch.Concurrent {
				rel = "∥"
			}
			verdicts = append(verdicts, fmt.Sprintf("%v %s %s", ch.Buffered, rel, name))
		}
		if len(verdicts) == 0 {
			verdicts = append(verdicts, "HB_0 empty — executed as-is")
		}
		logf(st, "%s arrives at site 0: %s; executed %s; SV_0 = %v; doc %q",
			name, strings.Join(verdicts, ", "), describe(ir.Executed), srv.SV().Full(), srv.Text())
		out := map[int]core.ServerMsg{}
		for _, bm := range bcast {
			logf(st, "  %s' propagated to site %d with compressed timestamp %v", name, bm.To, bm.TS)
			out[bm.To] = bm
		}
		return out
	}

	// The §5 sequence.
	st := step("Generation of O1 and O2 (concurrent)")
	m1 := generate(st, 1, "O1", func(c *core.Client) (core.ClientMsg, error) { return c.Insert(1, "12") })
	m2 := generate(st, 2, "O2", func(c *core.Client) (core.ClientMsg, error) { return c.Delete(2, 3) })

	st = step("Handling operation O2")
	b2 := receive(st, "O2", m2)
	integrate(st, 3, "O2'", b2[3])
	st2 := step("Site 3 generates O4 after executing O2'")
	m4 := generate(st2, 3, "O4", func(c *core.Client) (core.ClientMsg, error) { return c.Insert(2, "x") })
	integrate(st2, 1, "O2'", b2[1])

	st = step("Handling operation O1")
	b1 := receive(st, "O1", m1)
	integrate(st, 2, "O1'", b1[2])
	st2 = step("Site 2 generates O3 after executing O1'")
	m3 := generate(st2, 2, "O3", func(c *core.Client) (core.ClientMsg, error) { return c.Insert(4, "!") })

	st = step("Handling operation O4")
	b4 := receive(st, "O4", m4)
	integrate(st, 1, "O4'", b4[1])
	integrate(st, 2, "O4'", b4[2])

	st = step("Handling operation O3")
	b3 := receive(st, "O3", m3)
	integrate(st, 3, "O1'", b1[3])
	integrate(st, 1, "O3'", b3[1])
	integrate(st, 3, "O3'", b3[3])

	if firstErr != nil {
		return nil, firstErr
	}
	res.Finals[0] = srv.Text()
	for site, c := range clients {
		res.Finals[site] = c.Text()
	}
	return res, nil
}
