package sim

import (
	"strings"
	"testing"
)

// TestFigure2 reproduces §2.2's inconsistencies exactly: divergence across
// the four sites and the "A1DE" intention violation at site 1, against the
// intention-preserved "A12B".
func TestFigure2(t *testing.T) {
	res := Figure2()
	if !res.Diverged {
		t.Fatal("Fig. 2 without OT must diverge")
	}
	if res.Site1AfterO1O2 != "A1DE" {
		t.Fatalf("§2.2 intention violation: got %q, paper says A1DE", res.Site1AfterO1O2)
	}
	if res.IntentionPreserved != "A12B" {
		t.Fatalf("OT result: got %q, paper says A12B", res.IntentionPreserved)
	}
	if len(res.Orders) != 4 || len(res.Finals) != 4 {
		t.Fatalf("four sites expected: %d orders, %d finals", len(res.Orders), len(res.Finals))
	}
	// The per-site orders are the figure's.
	if strings.Join(res.Orders[0], ",") != "O2,O1,O4,O3" {
		t.Fatalf("site 0 order: %v", res.Orders[0])
	}
	if strings.Join(res.Orders[1], ",") != "O1,O2,O4,O3" {
		t.Fatalf("site 1 order: %v", res.Orders[1])
	}
}

// TestFigure3Scenario checks the scripted replay converges and logs the
// paper's timestamps.
func TestFigure3Scenario(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	want := "A12Bx!"
	for site, text := range res.Finals {
		if text != want {
			t.Fatalf("site %d final %q, want %q", site, text, want)
		}
	}
	all := ""
	for _, st := range res.Steps {
		all += st.Title + "\n" + strings.Join(st.Lines, "\n") + "\n"
	}
	// Spot-check the §5 narration: the per-destination compressed
	// timestamps of O1' and the final SV_0.
	for _, frag := range []string{
		"O1' propagated to site 2 with compressed timestamp [1,1]",
		"O1' propagated to site 3 with compressed timestamp [2,0]",
		"O3' propagated to site 1 with compressed timestamp [3,1]",
		"SV_0 = [0, 1, 2, 1]",
	} {
		if !strings.Contains(all, frag) {
			t.Fatalf("replay log missing %q:\n%s", frag, all)
		}
	}
}
