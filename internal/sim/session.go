package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/causal"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Config parameterizes one simulated editing session.
type Config struct {
	// Clients is the number of collaborating sites (≥ 1).
	Clients int
	// OpsPerClient is how many operations each client generates.
	OpsPerClient int
	// Seed drives all randomness; equal configs with equal seeds produce
	// byte-identical results.
	Seed int64
	// Mode selects the paper's scheme (ModeTransform) or the E8 ablation
	// (ModeRelay).
	Mode core.Mode
	// Latency models the client↔notifier links (default: Uniform 20–80ms).
	Latency LatencyModel
	// Workload parameterizes user behaviour.
	Workload Workload
	// Initial is the starting document.
	Initial string
	// Validate records every event in the causality oracle and replays
	// every concurrency verdict against it (slower; quadratic memory in
	// ops). Leave off for throughput benchmarks.
	Validate bool
	// Compaction is passed to the engines (0 disables HB GC).
	Compaction int
	// Joiners adds sites that join mid-session (spread over the first
	// half of the virtual timeline), each generating OpsPerClient ops
	// after joining — exercising snapshots and timestamp baselines under
	// load.
	Joiners int
	// LeaveEarly makes each of the first LeaveEarly founding sites leave
	// after generating half its operations. Departed sites stop receiving;
	// convergence is asserted over the survivors.
	LeaveEarly int
	// JournalPath, when set, records the notifier-side event stream
	// (joins, leaves, operations) to a journal file, enabling offline
	// causality analysis of the simulated session (journal.Analyze).
	JournalPath string
}

func (c Config) withDefaults() Config {
	if c.Latency == nil {
		c.Latency = Uniform{Lo: 20 * time.Millisecond, Hi: 80 * time.Millisecond}
	}
	c.Workload = c.Workload.withDefaults()
	return c
}

// Result summarizes a simulated session.
type Result struct {
	// Converged reports whether all replicas (and the notifier) ended
	// identical.
	Converged bool
	// FinalLen is the final document length in runes.
	FinalLen int
	// FinalText is the converged document (notifier's copy if diverged).
	FinalText string
	// Duration is the virtual time the session spanned.
	Duration time.Duration

	// TotalChecks and ConcurrentPairs count formula (5)/(7) evaluations
	// and positive verdicts.
	TotalChecks     int
	ConcurrentPairs int
	// VerdictMismatches counts verdicts that disagree with the
	// Definition-1 oracle (only when Validate is set; must be 0 in
	// ModeTransform).
	VerdictMismatches int

	// Byte accounting, measured by encoding every message with the real
	// wire codec.
	BytesUp        int64
	BytesDown      int64
	TimestampBytes int64
	// FullVCTimestampBytes is what the same messages would have spent on
	// timestamps under the classic full-vector scheme (one N-element
	// vector per message, N = current SV_0 size) — the baseline most
	// group editors used (paper §3.1).
	FullVCTimestampBytes int64

	// IntegrationLatency samples generation→remote-execution delays
	// (virtual time).
	IntegrationLatency stats.Sample
	// High-water marks of the bounded structures (history buffers, the
	// client pending lists, and the notifier's per-client bridges).
	MaxServerHB  int
	MaxClientHB  int
	MaxPending   int
	MaxBridgeLen int

	// Metrics carries the raw counters.
	Metrics *trace.Metrics
}

// Run simulates one session to quiescence.
func Run(cfg Config) (res *Result, err error) {
	cfg = cfg.withDefaults()
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("sim: need at least one client, got %d", cfg.Clients)
	}
	s := New()
	res = &Result{Metrics: trace.NewMetrics()}

	srvOpts := []core.ServerOption{
		core.WithServerMode(cfg.Mode), core.WithServerCompaction(cfg.Compaction)}
	if cfg.Validate {
		// Verdict replay against the oracle needs the per-check trace; it
		// is off otherwise so throughput runs exercise the lean hot path.
		srvOpts = append(srvOpts, core.WithServerCheckTrace())
	}
	srv := core.NewServer(cfg.Initial, srvOpts...)
	clients := make(map[int]*core.Client, cfg.Clients)
	states := make(map[int]*editorState, cfg.Clients)
	rngs := make(map[int]*rand.Rand, cfg.Clients)
	upLinks := make(map[int]*link, cfg.Clients)
	downLinks := make(map[int]*link, cfg.Clients)
	netRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))

	var oracle *causal.Oracle
	if cfg.Validate {
		oracle = causal.NewOracle()
	}
	var jw *journal.Writer
	if cfg.JournalPath != "" {
		var err error
		if jw, err = journal.Create(cfg.JournalPath); err != nil {
			return nil, err
		}
		// The journal is the session's durable record: a failed flush on
		// close means records were lost, which must fail the run.
		defer func() {
			if cerr := jw.Close(); cerr != nil && err == nil {
				res, err = nil, fmt.Errorf("sim: close journal: %w", cerr)
			}
		}()
	}
	var checks []core.Check
	genTime := map[causal.OpRef]time.Duration{}

	left := make(map[int]bool)

	// lastServerRef is the causal identity of the most recent operation
	// executed at site 0 — a join snapshot carries its effects (and, by
	// the server's total order, those of everything before it).
	var lastServerRef causal.OpRef

	addSite := func(site int) error {
		snap, err := srv.Join(site)
		if err != nil {
			return err
		}
		if jw != nil {
			if err := jw.Append(journal.Record{Kind: journal.KJoin, Site: site}); err != nil {
				return err
			}
		}
		cliOpts := []core.ClientOption{
			core.WithClientMode(cfg.Mode), core.WithClientCompaction(cfg.Compaction),
			core.WithClientResume(snap.LocalOps)}
		if cfg.Validate {
			cliOpts = append(cliOpts, core.WithClientCheckTrace())
		}
		clients[site] = core.NewClient(site, snap.Text, cliOpts...)
		states[site] = &editorState{}
		rngs[site] = rand.New(rand.NewSource(cfg.Seed + int64(site)*7919))
		upLinks[site] = newLink(s, netRng, cfg.Latency)
		downLinks[site] = newLink(s, netRng, cfg.Latency)
		if cfg.Validate && lastServerRef != (causal.OpRef{}) {
			// The snapshot is an execution of everything at site 0 so far;
			// recording the latest server op suffices (it dominates).
			oracle.Execute(site, lastServerRef)
		}
		return nil
	}

	for site := 1; site <= cfg.Clients; site++ {
		if err := addSite(site); err != nil {
			return nil, err
		}
	}

	// Watermarks are updated incrementally for only the structures an event
	// touched — a full scan per delivery would make large-N sweeps O(N²).
	clientWatermarks := func(site int) {
		c := clients[site]
		if n := c.History().Len(); n > res.MaxClientHB {
			res.MaxClientHB = n
		}
		if n := c.PendingCount(); n > res.MaxPending {
			res.MaxPending = n
		}
		if n := srv.BridgeLen(site); n > res.MaxBridgeLen {
			res.MaxBridgeLen = n
		}
	}

	// serverReceive and clientReceive are the link delivery handlers.
	var fail error
	abort := func(err error) {
		if fail == nil {
			fail = err
		}
	}

	// clientReceive is declared before serverReceive because each schedules
	// deliveries handled by the other.
	var clientReceive func(site int, bm core.ServerMsg)

	serverReceive := func(m core.ClientMsg) {
		if fail != nil {
			return
		}
		if jw != nil {
			if err := jw.Append(journal.Record{Kind: journal.KClientOp, Op: wire.ClientOp{
				From: m.From, TS: m.TS, Ref: m.Ref, Op: m.Op}}); err != nil {
				abort(err)
				return
			}
		}
		bcast, ir, err := srv.Receive(m)
		if err != nil {
			abort(fmt.Errorf("sim: server receive: %w", err))
			return
		}
		res.TotalChecks += ir.CheckCount
		res.ConcurrentPairs += ir.ConcurrentCount
		res.Metrics.Inc(trace.CConcurrencyChecks, int64(ir.CheckCount))
		res.Metrics.Inc(trace.CConcurrentPairs, int64(ir.ConcurrentCount))
		// Modeled baseline cost: one full SV_0-sized vector per message
		// (computed once per op; the vector is identical for the up-leg
		// and all broadcasts of this op).
		fullVCLen := int64(len(wire.AppendVC(nil, srv.SV().Full())))
		res.FullVCTimestampBytes += fullVCLen
		if cfg.Validate {
			checks = append(checks, ir.Checks...)
			oracle.Execute(0, m.Ref)
			if cfg.Mode == core.ModeTransform {
				newRef := causal.OpRef{Site: 0, Seq: uint64(srv.History().Len() + srv.History().Dropped())}
				if len(bcast) > 0 {
					newRef = bcast[0].Ref
				}
				oracle.GenerateDerived(0, newRef, m.Ref)
				genTime[newRef] = genTime[m.Ref]
				lastServerRef = newRef
			} else {
				lastServerRef = m.Ref
			}
		}
		for _, bm := range bcast {
			bm := bm
			body, err := wire.Append(nil, wire.ServerOp{
				To: bm.To, TS: bm.TS, Ref: bm.Ref, OrigRef: bm.OrigRef, Op: bm.Op,
			})
			if err != nil {
				abort(err)
				return
			}
			res.BytesDown += int64(len(body))
			res.TimestampBytes += int64(wire.TimestampSize(bm.TS))
			res.FullVCTimestampBytes += fullVCLen
			dest := bm.To
			downLinks[dest].send(func() { clientReceive(dest, bm) })
		}
		if n := srv.History().Len(); n > res.MaxServerHB {
			res.MaxServerHB = n
		}
		clientWatermarks(m.From)
	}

	clientReceive = func(site int, bm core.ServerMsg) {
		if fail != nil {
			return
		}
		if left[site] {
			// In reality the broadcast dies with the closed connection.
			return
		}
		ir, err := clients[site].Integrate(bm)
		if err != nil {
			abort(fmt.Errorf("sim: client %d integrate: %w", site, err))
			return
		}
		res.TotalChecks += ir.CheckCount
		res.ConcurrentPairs += ir.ConcurrentCount
		res.Metrics.Inc(trace.COpsIntegrated, 1)
		res.Metrics.Inc(trace.CConcurrencyChecks, int64(ir.CheckCount))
		res.Metrics.Inc(trace.CConcurrentPairs, int64(ir.ConcurrentCount))
		if cfg.Validate {
			checks = append(checks, ir.Checks...)
			oracle.Execute(site, bm.Ref)
		}
		if t0, ok := genTime[bm.OrigRef]; ok {
			res.IntegrationLatency.Add(float64(s.Now() - t0))
		}
		clientWatermarks(site)
	}

	// startGenerator schedules a site's editing activity: ops operations at
	// think-time intervals, then (optionally) an orderly leave that travels
	// the upstream link behind the site's last operation, like a TCP FIN.
	startGenerator := func(site, ops int, leaveAfter bool) {
		var generate func(remaining int)
		generate = func(remaining int) {
			if fail != nil {
				return
			}
			if remaining == 0 {
				if leaveAfter {
					upLinks[site].send(func() {
						if fail != nil {
							return
						}
						if jw != nil {
							if err := jw.Append(journal.Record{Kind: journal.KLeave, Site: site}); err != nil {
								abort(err)
								return
							}
						}
						if err := srv.Leave(site); err != nil {
							abort(fmt.Errorf("sim: leave %d: %w", site, err))
							return
						}
						left[site] = true
					})
				}
				return
			}
			c := clients[site]
			r := rngs[site]
			o, err := cfg.Workload.nextOp(r, states[site], c.DocLen())
			if err != nil {
				abort(fmt.Errorf("sim: workload at site %d: %w", site, err))
				return
			}
			m, err := c.Generate(o)
			if err != nil {
				abort(fmt.Errorf("sim: generate at site %d: %w", site, err))
				return
			}
			res.Metrics.Inc(trace.COpsGenerated, 1)
			genTime[m.Ref] = s.Now()
			if cfg.Validate {
				oracle.Generate(site, m.Ref)
			}
			body, err := wire.Append(nil, wire.ClientOp{From: m.From, TS: m.TS, Ref: m.Ref, Op: m.Op})
			if err != nil {
				abort(err)
				return
			}
			res.BytesUp += int64(len(body))
			res.TimestampBytes += int64(wire.TimestampSize(m.TS))
			upLinks[site].send(func() { serverReceive(m) })
			s.At(cfg.Workload.think(r), func() { generate(remaining - 1) })
		}
		s.At(cfg.Workload.think(rngs[site]), func() { generate(ops) })
	}

	for site := 1; site <= cfg.Clients; site++ {
		ops := cfg.OpsPerClient
		leaver := site <= cfg.LeaveEarly
		if leaver {
			ops = max(1, ops/2)
		}
		startGenerator(site, ops, leaver)
	}

	// Mid-session joiners, spread across the first half of the nominal
	// timeline.
	span := cfg.Workload.ThinkMean * time.Duration(max(1, cfg.OpsPerClient)) / 2
	for j := 0; j < cfg.Joiners; j++ {
		site := cfg.Clients + 1 + j
		at := span * time.Duration(j+1) / time.Duration(cfg.Joiners+1)
		s.At(at, func() {
			if fail != nil {
				return
			}
			if err := addSite(site); err != nil {
				abort(fmt.Errorf("sim: mid-session join %d: %w", site, err))
				return
			}
			startGenerator(site, cfg.OpsPerClient, false)
		})
	}

	res.Duration = s.Run()
	if fail != nil {
		return nil, fail
	}

	res.FinalText = srv.Text()
	res.FinalLen = len([]rune(res.FinalText))
	res.Converged = true
	for site, c := range clients {
		if left[site] {
			continue // departed replicas legitimately stop at their leave point
		}
		if c.Text() != res.FinalText {
			res.Converged = false
		}
	}
	if cfg.Validate {
		oracle.Seal()
		for _, ch := range checks {
			if ch.Concurrent != oracle.Concurrent(ch.Arriving, ch.Buffered) {
				res.VerdictMismatches++
			}
		}
	}
	return res, nil
}
