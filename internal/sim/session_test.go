package sim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSessionConvergesAcrossConfigs(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for _, hotspot := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/hotspot=%v", n, hotspot)
			t.Run(name, func(t *testing.T) {
				res, err := Run(Config{
					Clients:      n,
					OpsPerClient: 40,
					Seed:         7,
					Workload:     Workload{Hotspot: hotspot},
					Initial:      "shared document",
					Validate:     true,
					Compaction:   16,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatal("replicas diverged")
				}
				if res.VerdictMismatches != 0 {
					t.Fatalf("%d verdict mismatches (of %d checks)", res.VerdictMismatches, res.TotalChecks)
				}
				if res.Metrics.Get("ops.generated") != int64(n*40) {
					t.Fatalf("ops generated: %d", res.Metrics.Get("ops.generated"))
				}
			})
		}
	}
}

func TestSessionDeterminism(t *testing.T) {
	cfg := Config{
		Clients:      5,
		OpsPerClient: 30,
		Seed:         99,
		Latency:      Spiky{Base: Uniform{Lo: 10 * time.Millisecond, Hi: 90 * time.Millisecond}, SpikeP: 0.05, SpikeX: 20},
		Initial:      "determinism",
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalText != b.FinalText {
		t.Fatal("same seed, different final documents")
	}
	if a.BytesUp != b.BytesUp || a.BytesDown != b.BytesDown || a.Duration != b.Duration {
		t.Fatalf("same seed, different metrics: %+v vs %+v", a, b)
	}
}

func TestSessionSeedsDiffer(t *testing.T) {
	base := Config{Clients: 3, OpsPerClient: 25, Initial: "x"}
	cfg1, cfg2 := base, base
	cfg1.Seed, cfg2.Seed = 1, 2
	a, _ := Run(cfg1)
	b, _ := Run(cfg2)
	if a.FinalText == b.FinalText && a.Duration == b.Duration {
		t.Fatal("different seeds produced identical sessions — RNG plumbing broken")
	}
}

func TestSessionRelayModeDiverges(t *testing.T) {
	diverged := 0
	for seed := int64(0); seed < 8; seed++ {
		res, err := Run(Config{
			Clients:      5,
			OpsPerClient: 30,
			Seed:         seed,
			Mode:         core.ModeRelay,
			Initial:      "the quick brown fox jumps",
			Validate:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.VerdictMismatches > 0 {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("relay ablation behaved correctly on all seeds; it should break")
	}
}

func TestSessionTimestampBytesConstantPerOp(t *testing.T) {
	// The compressed timestamp is two varints per message regardless of N:
	// average timestamp bytes per message must stay tiny as N grows.
	for _, n := range []int{2, 16} {
		res, err := Run(Config{Clients: n, OpsPerClient: 20, Seed: 3, Initial: "x"})
		if err != nil {
			t.Fatal(err)
		}
		msgs := int64(res.Metrics.Get("ops.generated") + res.Metrics.Get("ops.integrated"))
		avg := float64(res.TimestampBytes) / float64(msgs)
		if avg > 4 {
			t.Fatalf("n=%d: %.2f timestamp bytes/message — should be ~2", n, avg)
		}
	}
}

func TestSessionBoundedStructuresUnderCompaction(t *testing.T) {
	res, err := Run(Config{
		Clients:      4,
		OpsPerClient: 150,
		Seed:         11,
		Compaction:   8,
		Latency:      Fixed(5 * time.Millisecond),
		Workload:     Workload{ThinkMean: 50 * time.Millisecond},
		Initial:      "bounded",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("diverged")
	}
	if res.MaxServerHB > 200 {
		t.Fatalf("server HB high-water %d — compaction ineffective", res.MaxServerHB)
	}
	if res.MaxClientHB > 200 {
		t.Fatalf("client HB high-water %d", res.MaxClientHB)
	}
}

func TestSessionValidationLatencySamples(t *testing.T) {
	res, err := Run(Config{Clients: 3, OpsPerClient: 20, Seed: 5, Initial: "x",
		Latency: Fixed(40 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if res.IntegrationLatency.N() == 0 {
		t.Fatal("no latency samples collected")
	}
	// One hop up + one hop down = at least 80ms.
	if min := res.IntegrationLatency.Min(); min < float64(80*time.Millisecond) {
		t.Fatalf("integration latency %.0fns below two fixed hops", min)
	}
}

func TestSessionConfigErrors(t *testing.T) {
	if _, err := Run(Config{Clients: 0}); err == nil {
		t.Fatal("zero clients must fail")
	}
}

func TestWorkloadOpsAlwaysValid(t *testing.T) {
	res, err := Run(Config{
		Clients:      6,
		OpsPerClient: 60,
		Seed:         13,
		Workload:     Workload{InsertRatio: 0.3, MaxDelete: 6}, // delete-heavy
		Initial:      "some seed text to delete from",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("diverged")
	}
}
