// Package sim provides a deterministic discrete-event simulator for
// group-editing sessions: a virtual-time event loop, latency models, FIFO
// links, a stochastic workload generator, and scripted replays of the
// paper's figures. All randomness is seeded, so every run is reproducible.
package sim

import (
	"container/heap"
	"time"
)

// Sim is a virtual-time event loop. Events fire in (time, insertion) order;
// an event may schedule further events.
type Sim struct {
	now time.Duration
	q   eventQueue
	seq int
}

// New returns an empty simulator at virtual time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn to run after delay of virtual time. Negative delays run
// "now" (still after the current event completes).
func (s *Sim) At(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.q, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run executes events until the queue is empty and returns the final
// virtual time.
func (s *Sim) Run() time.Duration {
	for s.q.Len() > 0 {
		ev := heap.Pop(&s.q).(*event)
		s.now = ev.at
		ev.fn()
	}
	return s.now
}

// Steps runs at most n events, returning how many ran (for tests exercising
// partial progress).
func (s *Sim) Steps(n int) int {
	ran := 0
	for s.q.Len() > 0 && ran < n {
		ev := heap.Pop(&s.q).(*event)
		s.now = ev.at
		ev.fn()
		ran++
	}
	return ran
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.q.Len() }

type event struct {
	at  time.Duration
	seq int // FIFO tie-break for simultaneous events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
