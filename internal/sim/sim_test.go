package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	end := s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order: %v", got)
	}
	if end != 30*time.Millisecond {
		t.Fatalf("end time %v", end)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	s := New()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			s.At(time.Millisecond, rec)
		}
	}
	s.At(0, rec)
	end := s.Run()
	if depth != 5 {
		t.Fatalf("depth %d", depth)
	}
	if end != 4*time.Millisecond {
		t.Fatalf("end %v", end)
	}
}

func TestNegativeDelayRunsNow(t *testing.T) {
	s := New()
	ran := false
	s.At(-time.Second, func() { ran = true })
	if s.Run() != 0 || !ran {
		t.Fatal("negative delay must clamp to now")
	}
}

func TestSteps(t *testing.T) {
	s := New()
	n := 0
	for i := 0; i < 5; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() { n++ })
	}
	if ran := s.Steps(3); ran != 3 || n != 3 {
		t.Fatalf("steps: ran %d n %d", ran, n)
	}
	if s.Pending() != 2 {
		t.Fatalf("pending %d", s.Pending())
	}
	s.Run()
	if n != 5 {
		t.Fatalf("n %d", n)
	}
}

func TestLatencyModels(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if d := (Fixed(5 * time.Millisecond)).Delay(r); d != 5*time.Millisecond {
		t.Fatalf("fixed: %v", d)
	}
	u := Uniform{Lo: 10 * time.Millisecond, Hi: 20 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := u.Delay(r)
		if d < u.Lo || d >= u.Hi {
			t.Fatalf("uniform out of range: %v", d)
		}
	}
	if d := (Uniform{Lo: 7 * time.Millisecond}).Delay(r); d != 7*time.Millisecond {
		t.Fatalf("degenerate uniform: %v", d)
	}
	sp := Spiky{Base: Uniform{Lo: 10 * time.Millisecond, Hi: 11 * time.Millisecond}, SpikeP: 1, SpikeX: 10}
	if d := sp.Delay(r); d < 100*time.Millisecond {
		t.Fatalf("spike not applied: %v", d)
	}
	spDefault := Spiky{Base: Uniform{Lo: 10 * time.Millisecond, Hi: 11 * time.Millisecond}, SpikeP: 1}
	if d := spDefault.Delay(r); d < 100*time.Millisecond {
		t.Fatalf("default spike multiplier: %v", d)
	}
}

func TestLinkIsFIFOUnderJitter(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(3))
	l := newLink(s, r, Uniform{Lo: 0, Hi: 100 * time.Millisecond})
	var got []int
	for i := 0; i < 200; i++ {
		i := i
		l.send(func() { got = append(got, i) })
	}
	s.Run()
	if len(got) != 200 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("link reordered under jitter at %d: %v...", i, got[:i+1])
		}
	}
}
