package sim

import (
	"math/rand"
	"time"

	"repro/internal/op"
)

// Workload parameterizes the stochastic editing behaviour of simulated
// users. It substitutes for the human editors of the paper's Web demo: what
// the clocks observe is the causal structure induced by generation times
// and latencies, which the generator reproduces.
type Workload struct {
	// InsertRatio is the probability an edit inserts (vs deletes).
	// Typical text entry is insert-heavy; 0.7–0.9 is realistic.
	InsertRatio float64
	// Hotspot, when true, clusters edit positions around a per-user moving
	// cursor instead of choosing uniformly — the "everyone types in their
	// own paragraph" regime.
	Hotspot bool
	// MaxInsert bounds the rune length of one insertion (default 4).
	MaxInsert int
	// MaxDelete bounds the rune length of one deletion (default 4).
	MaxDelete int
	// ThinkMean is the mean virtual time between a user's operations
	// (exponential distribution; default 200ms).
	ThinkMean time.Duration
}

func (w Workload) withDefaults() Workload {
	if w.InsertRatio == 0 {
		w.InsertRatio = 0.75
	}
	if w.MaxInsert == 0 {
		w.MaxInsert = 4
	}
	if w.MaxDelete == 0 {
		w.MaxDelete = 4
	}
	if w.ThinkMean == 0 {
		w.ThinkMean = 200 * time.Millisecond
	}
	return w
}

// think draws the time until a user's next operation.
func (w Workload) think(r *rand.Rand) time.Duration {
	d := time.Duration(r.ExpFloat64() * float64(w.ThinkMean))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

var workloadAlphabet = []rune("abcdefghijklmnopqrstuvwxyz ABCDEFGH0123456789.,;日本éü")

// editorState tracks one simulated user's cursor for hotspot locality.
type editorState struct {
	cursor int
}

// nextOp builds one random operation against a document of docLen runes.
func (w Workload) nextOp(r *rand.Rand, st *editorState, docLen int) (*op.Op, error) {
	pos := 0
	if docLen > 0 {
		if w.Hotspot {
			// Wander around the cursor with occasional jumps.
			if r.Intn(20) == 0 {
				st.cursor = r.Intn(docLen + 1)
			}
			jitter := r.Intn(7) - 3
			st.cursor += jitter
			if st.cursor < 0 {
				st.cursor = 0
			}
			if st.cursor > docLen {
				st.cursor = docLen
			}
			pos = st.cursor
		} else {
			pos = r.Intn(docLen + 1)
		}
	}
	if docLen == 0 || r.Float64() < w.InsertRatio {
		n := 1 + r.Intn(w.MaxInsert)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = workloadAlphabet[r.Intn(len(workloadAlphabet))]
		}
		st.cursor = pos + n
		return op.NewInsert(docLen, pos, string(rs))
	}
	if pos >= docLen {
		pos = docLen - 1
	}
	count := 1 + r.Intn(w.MaxDelete)
	if pos+count > docLen {
		count = docLen - pos
	}
	st.cursor = pos
	return op.NewDelete(docLen, pos, count)
}
