// Package stats provides the small statistical toolkit used by the
// benchmark harness: streaming summaries, exact percentiles over retained
// samples, and fixed-width text tables for experiment output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations and answers summary queries. The zero
// value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
	min    float64
	max    float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	if len(s.xs) == 0 || x < s.min {
		s.min = x
	}
	if len(s.xs) == 0 || x > s.max {
		s.max = x
	}
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
}

// AddInt records one integer observation.
func (s *Sample) AddInt(x int) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 { return s.max }

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, x := range s.xs {
		d := x - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.xs[rank-1]
}

// Median is Percentile(50).
func (s *Sample) Median() float64 { return s.Percentile(50) }

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}

// Table renders rows of experiment output with aligned columns, in the
// spirit of a paper's results table. Cells are strings; the first row is
// the header.
type Table struct {
	rows [][]string
}

// Header sets the column headers (must be called first).
func (t *Table) Header(cols ...string) { t.rows = append(t.rows, cols) }

// Row appends a data row; values are rendered with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
