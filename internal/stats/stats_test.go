package stats

import (
	"math"
	"strings"
	"testing"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample must read as zeros")
	}
}

func TestSampleSummaries(t *testing.T) {
	var s Sample
	for _, x := range []float64{4, 2, 8, 6} {
		s.Add(x)
	}
	if s.N() != 4 || s.Sum() != 20 || s.Mean() != 5 {
		t.Fatalf("n=%d sum=%f mean=%f", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("min=%f max=%f", s.Min(), s.Max())
	}
	if want := math.Sqrt(5); math.Abs(s.Stddev()-want) > 1e-9 {
		t.Fatalf("stddev %f want %f", s.Stddev(), want)
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.AddInt(i)
	}
	cases := map[float64]float64{0: 1, 1: 1, 50: 50, 99: 99, 100: 100}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Fatalf("p%.0f = %f want %f", p, got, want)
		}
	}
	if s.Median() != 50 {
		t.Fatalf("median %f", s.Median())
	}
}

func TestPercentileAfterMoreAdds(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Percentile(50) // forces a sort
	s.Add(1)             // invalidates it
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("sort invalidation: p0 = %f", got)
	}
}

func TestSampleString(t *testing.T) {
	var s Sample
	s.Add(1)
	if !strings.Contains(s.String(), "n=1") {
		t.Fatalf("summary: %s", s.String())
	}
}

func TestTableRendering(t *testing.T) {
	var tb Table
	tb.Header("N", "bytes")
	tb.Row(2, 4.5)
	tb.Row(1024, 17)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+rule+2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "N") || !strings.Contains(lines[0], "bytes") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("rule: %q", lines[1])
	}
	if !strings.Contains(lines[2], "4.50") {
		t.Fatalf("float formatting: %q", lines[2])
	}
	var empty Table
	if empty.String() != "" {
		t.Fatal("empty table must render empty")
	}
}
