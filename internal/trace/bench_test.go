package trace

import "testing"

// BenchmarkMetricsParallel hammers one Metrics bag from all cores — the
// contention shape of a notifier whose sessions share a metrics sink.
func BenchmarkMetricsParallel(b *testing.B) {
	m := NewMetrics()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Inc(COpsIntegrated, 1)
		}
	})
	if got := m.Get(COpsIntegrated); got != int64(b.N) {
		b.Fatalf("lost increments: %d != %d", got, b.N)
	}
}

// BenchmarkMetricsInc is the single-goroutine baseline.
func BenchmarkMetricsInc(b *testing.B) {
	m := NewMetrics()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Inc(COpsIntegrated, 1)
	}
}
