// Package trace collects runtime metrics from a group-editing session: op
// and byte counters per link, concurrency-detection counts, and
// transformation counts. The benchmark harness (cmd/cvcbench and
// bench_test.go) reads these to print the experiment tables.
//
// Metrics is a thin naming layer over internal/obs: every counter is an
// obs.Counter (sharded, lock-free, allocation-free to increment), and a
// Metrics bag can be mounted on a caller-owned obs.Registry with MetricsOn so
// engine counters appear in that registry's /metricz snapshots for free.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Metrics is a thread-safe bag of named counters. Incrementing is lock-free
// and allocation-free; the zero cost makes it safe to leave attached to
// production engines, not just benchmarks.
type Metrics struct {
	reg *obs.Registry
}

// NewMetrics returns an empty metrics bag backed by a private registry.
func NewMetrics() *Metrics {
	return MetricsOn(obs.NewRegistry(""))
}

// MetricsOn returns a metrics bag that stores its counters in reg — the
// bridge between engine counting (this package's names) and the
// observability registry tree that serves /metricz. reg must be non-nil.
func MetricsOn(reg *obs.Registry) *Metrics {
	return &Metrics{reg: reg}
}

// Registry exposes the backing registry (for snapshotting alongside other
// metrics).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta int64) {
	m.reg.Counter(name).Add(delta)
}

// Get reads the named counter; names never incremented read 0 and are not
// created.
func (m *Metrics) Get(name string) int64 {
	if c, ok := m.reg.LoadCounter(name); ok {
		return c.Load()
	}
	return 0
}

// Names returns all counter names, sorted.
func (m *Metrics) Names() []string {
	return m.reg.CounterNames()
}

// String renders all counters, one per line, sorted by name.
func (m *Metrics) String() string {
	var b strings.Builder
	for _, n := range m.Names() {
		fmt.Fprintf(&b, "%s: %d\n", n, m.Get(n))
	}
	return b.String()
}

// Standard counter names used across the harness.
const (
	// COpsGenerated counts locally generated operations.
	COpsGenerated = "ops.generated"
	// COpsIntegrated counts remote operations integrated.
	COpsIntegrated = "ops.integrated"
	// CBytesUp counts client→notifier payload bytes.
	CBytesUp = "bytes.up"
	// CBytesDown counts notifier→client payload bytes.
	CBytesDown = "bytes.down"
	// CTimestampBytes counts bytes spent on timestamps alone.
	CTimestampBytes = "bytes.timestamps"
	// CConcurrencyChecks counts formula (5)/(7) evaluations.
	CConcurrencyChecks = "checks.total"
	// CConcurrentPairs counts checks that returned "concurrent".
	CConcurrentPairs = "checks.concurrent"
	// CTransforms counts inclusion transformations performed.
	CTransforms = "ot.transforms"
	// CCacheHits counts integrations served by a warm composed-suffix
	// transform cache (one Transform regardless of bridge depth).
	CCacheHits = "ot.cache.hits"
	// CCacheMisses counts integrations that had to walk or (re)build the
	// composed suffix because the cache was cold or invalidated.
	CCacheMisses = "ot.cache.misses"
	// CComposes counts op.Compose calls spent building or extending the
	// composed-suffix cache.
	CComposes = "ot.cache.composes"
	// CCompactions counts history-buffer compaction rounds.
	CCompactions = "hb.compactions"
	// CCompacted counts history-buffer entries removed by compaction.
	CCompacted = "hb.compacted"
)
