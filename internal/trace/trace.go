// Package trace collects runtime metrics from a group-editing session: op
// and byte counters per link, concurrency-detection counts, and
// transformation counts. The benchmark harness (cmd/cvcbench and
// bench_test.go) reads these to print the experiment tables.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Metrics is a thread-safe bag of named counters and samples.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
}

// NewMetrics returns an empty metrics bag.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]int64)}
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta int64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Get reads the named counter.
func (m *Metrics) Get(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Names returns all counter names, sorted.
func (m *Metrics) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.counters))
	for n := range m.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders all counters, one per line, sorted by name.
func (m *Metrics) String() string {
	var b strings.Builder
	for _, n := range m.Names() {
		fmt.Fprintf(&b, "%s: %d\n", n, m.Get(n))
	}
	return b.String()
}

// Standard counter names used across the harness.
const (
	// COpsGenerated counts locally generated operations.
	COpsGenerated = "ops.generated"
	// COpsIntegrated counts remote operations integrated.
	COpsIntegrated = "ops.integrated"
	// CBytesUp counts client→notifier payload bytes.
	CBytesUp = "bytes.up"
	// CBytesDown counts notifier→client payload bytes.
	CBytesDown = "bytes.down"
	// CTimestampBytes counts bytes spent on timestamps alone.
	CTimestampBytes = "bytes.timestamps"
	// CConcurrencyChecks counts formula (5)/(7) evaluations.
	CConcurrencyChecks = "checks.total"
	// CConcurrentPairs counts checks that returned "concurrent".
	CConcurrentPairs = "checks.concurrent"
	// CTransforms counts inclusion transformations performed.
	CTransforms = "ot.transforms"
)
