package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	m := NewMetrics()
	m.Inc(COpsGenerated, 3)
	m.Inc(COpsGenerated, 2)
	m.Inc(CBytesUp, 100)
	if m.Get(COpsGenerated) != 5 || m.Get(CBytesUp) != 100 {
		t.Fatalf("counters: %d %d", m.Get(COpsGenerated), m.Get(CBytesUp))
	}
	if m.Get("missing") != 0 {
		t.Fatal("missing counter must read 0")
	}
}

func TestNamesSortedAndString(t *testing.T) {
	m := NewMetrics()
	m.Inc("zzz", 1)
	m.Inc("aaa", 2)
	names := m.Names()
	if len(names) != 2 || names[0] != "aaa" || names[1] != "zzz" {
		t.Fatalf("names: %v", names)
	}
	out := m.String()
	if !strings.Contains(out, "aaa: 2") || !strings.Contains(out, "zzz: 1") {
		t.Fatalf("render: %q", out)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Inc(CTransforms, 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Get(CTransforms); got != 16000 {
		t.Fatalf("lost updates: %d", got)
	}
}
