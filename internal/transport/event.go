package transport

import (
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// EventConn is a Conn whose inbound side can be drained without parking a
// goroutine in Recv. SetReadable registers a wake callback; TryRecv pulls
// the next message without blocking. The in-memory transport implements it
// (its inbound queue is a channel, so readiness is known at delivery time),
// and so does the platform poller's TCP connection (netpoll, Linux: epoll
// edges drive the callback — DESIGN.md §16). The plain TCP transport does
// not — kernel readiness without a blocked read needs that poller — so its
// connections keep a dedicated reader and lean out on the writer side only
// (DESIGN.md §15).
type EventConn interface {
	Conn
	// SetReadable registers fn to be invoked whenever a message is
	// delivered into this end's inbound queue and when either end closes;
	// it also fires once immediately, covering messages queued before
	// registration. fn runs on the delivering goroutine and must not
	// block. A nil fn deregisters.
	SetReadable(fn func())
	// TryRecv returns the next inbound message without blocking. ok
	// reports whether a message was returned; after the connection closes
	// and drains, err is non-nil. (false, nil) means the queue is empty.
	TryRecv() (m wire.Msg, ok bool, err error)
}

// Dispatcher drains many EventConns with a fixed set of worker goroutines —
// the reader half of the goroutine-lean connection layer (WriterPool is the
// writer half). An idle connection costs one dispatchConn record and zero
// goroutines; when a message is delivered the conn's readable callback
// places it on its sticky shard of the ready ring (workRing, DESIGN.md
// §18), a worker pops it — its home worker usually, an idle sibling via
// stealing under imbalance — and steps the connection's per-message handler
// until the inbound queue is empty or a fairness burst is used up. The
// sched bit guarantees at most one worker drains a given conn at a time,
// preserving the Conn contract that Recv (here TryRecv) has a single
// caller, and therefore per-connection FIFO handling — independent of which
// shard or worker the turn lands on.
type Dispatcher struct {
	ring *workRing[*dispatchConn]
	// assign hands out sticky shards round-robin as conns register.
	assign atomic.Uint32

	mu     sync.Mutex // guards conns + closed (registration table only)
	closed bool
	conns  map[*dispatchConn]struct{}

	wg    sync.WaitGroup
	burst int // max messages handled per conn per worker turn
}

// dispatchConn is one registered connection's dispatch state.
type dispatchConn struct {
	d      *Dispatcher
	ec     EventConn
	handle func(wire.Msg) bool // false = connection is finished
	finish func()              // invoked exactly once when the conn retires
	shard  int                 // sticky ready-ring shard

	mu      sync.Mutex
	sched   bool // on the ready ring or being drained by a worker
	pending bool // readable fired since the current drain began
	dead    bool
}

// service lets a dispatchConn ride the workRing directly in tests; workers
// normally call drain via their pop loop.
func (dc *dispatchConn) service() { dc.drain() }

// NewDispatcher starts workers dispatch goroutines (GOMAXPROCS when
// workers <= 0). burst caps the messages drained from one connection per
// worker turn before it rotates to the back of its shard (default 32 when
// <= 0). The ready ring defaults to one shard per worker; WithShards
// overrides (1 = the single-ring §15 layout).
func NewDispatcher(workers, burst int, opts ...RingOption) *Dispatcher {
	if burst <= 0 {
		burst = 32
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}
	cfg := buildRingConfig(opts)
	d := &Dispatcher{
		burst: burst,
		conns: make(map[*dispatchConn]struct{}),
		ring:  newWorkRing[*dispatchConn](cfg.shards, workers),
	}
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker(i % d.ring.size())
	}
	return d
}

// Shards returns the ready-ring shard count.
func (d *Dispatcher) Shards() int { return d.ring.size() }

// Add registers ec: handle is stepped once per inbound message on a worker
// goroutine (never concurrently for the same conn, in delivery order);
// returning false retires the connection. finish runs exactly once when the
// conn retires — on handler refusal, inbound close, or Dispatcher.Close —
// and is where the caller leaves the session and closes the sender. Add
// returns false if the dispatcher is already closed (the caller should fall
// back to a dedicated reader or close the conn).
func (d *Dispatcher) Add(ec EventConn, handle func(wire.Msg) bool, finish func()) bool {
	dc := &dispatchConn{d: d, ec: ec, handle: handle, finish: finish}
	dc.shard = int(d.assign.Add(1)-1) % d.ring.size()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false
	}
	d.conns[dc] = struct{}{}
	d.mu.Unlock()
	// Registration fires the callback once, so anything already queued —
	// including the join request that raced ahead of Add — gets dispatched.
	ec.SetReadable(dc.notify)
	return true
}

// notify is the readable callback: mark pending and schedule the conn if no
// worker has it. Runs on the delivering goroutine (a pool writer, a session
// actor, a poller shard, or a closer) and must stay non-blocking: shard push
// + targeted signal.
func (dc *dispatchConn) notify() {
	dc.mu.Lock()
	if dc.dead {
		dc.mu.Unlock()
		return
	}
	dc.pending = true
	wake := !dc.sched
	dc.sched = true
	dc.mu.Unlock()
	if wake {
		dc.d.ready(dc)
	}
}

// ready places dc at the back of its sticky shard. On a closed dispatcher
// the conn is retired instead — its finish hook still runs, so teardown
// never strands a session registration.
func (d *Dispatcher) ready(dc *dispatchConn) {
	depth, ok := d.ring.push(dc.shard, dc)
	if !ok {
		dc.retire()
		return
	}
	recordShardDepth(depth)
}

func (d *Dispatcher) worker(home int) {
	defer d.wg.Done()
	for {
		dc, ok := d.ring.next(home)
		if !ok {
			return // closed and drained
		}
		dc.drain()
	}
}

// drain is one worker turn on a scheduled conn: clear pending, step the
// handler for up to burst messages, then decide — retire (handler refused
// or the conn closed), rotate (burst used or pending raced in), or go idle
// (clear sched; the pending flag closes the lost-wakeup window, because a
// delivery is visible either to the drain loop or to a notify that runs
// after sched clears).
func (dc *dispatchConn) drain() {
	dc.mu.Lock()
	if dc.dead {
		dc.mu.Unlock()
		return
	}
	dc.pending = false
	dc.mu.Unlock()

	for i := 0; i < dc.d.burst; i++ {
		m, ok, err := dc.ec.TryRecv()
		if err != nil {
			dc.retire()
			return
		}
		if !ok {
			dc.mu.Lock()
			if dc.pending {
				// A delivery raced the empty read: keep sched and take
				// another turn from the back of the shard.
				dc.mu.Unlock()
				dc.d.ready(dc)
				return
			}
			dc.sched = false
			dc.mu.Unlock()
			return
		}
		if !dc.handle(m) {
			dc.retire()
			return
		}
	}
	// Burst exhausted with the queue possibly non-empty: rotate.
	dc.d.ready(dc)
}

// retire finishes a connection exactly once: deregister the callback, drop
// it from the dispatcher's table, and run the finish hook.
func (dc *dispatchConn) retire() {
	dc.mu.Lock()
	if dc.dead {
		dc.mu.Unlock()
		return
	}
	dc.dead = true
	dc.mu.Unlock()
	dc.ec.SetReadable(nil)
	dc.d.mu.Lock()
	delete(dc.d.conns, dc)
	dc.d.mu.Unlock()
	if dc.finish != nil {
		dc.finish()
	}
}

// Len returns the number of connections currently registered. Tests use it
// to assert that churn retires every dispatchConn exactly once (no leaks,
// no double retire).
func (d *Dispatcher) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.conns)
}

// QueueLen returns the number of scheduled conns waiting across all ring
// shards (aggregated, not per-shard — Len and QueueLen must stay meaningful
// whatever the shard count).
func (d *Dispatcher) QueueLen() int { return d.ring.queued() }

// Close stops the workers and retires every registered connection (running
// their finish hooks). Messages already queued on a conn are dropped —
// Close is teardown, not drain.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	remaining := make([]*dispatchConn, 0, len(d.conns))
	for dc := range d.conns {
		remaining = append(remaining, dc)
	}
	d.mu.Unlock()
	d.ring.close()
	d.wg.Wait()
	for _, dc := range remaining {
		dc.retire()
	}
}
