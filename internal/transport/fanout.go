package transport

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/wire"
)

// DefaultFanoutThreshold is the destination count below which a broadcast
// fan-out stays serial: scattering a handful of enqueues across workers
// costs more in chunk setup and wakeups than the loop it replaces.
const DefaultFanoutThreshold = 16

// FanoutDest is one destination of an encode-once broadcast fan-out: the
// destination's pooled sender plus the (to, ts) pair its TOp frame header
// carries.
type FanoutDest struct {
	S  *Sender
	To int
	TS core.Timestamp
}

// FanoutScratch accumulates one broadcast's destination list and scatters
// the EnqueueBroadcast calls across the writer pool's shards (DESIGN.md
// §18). The serial fan-out loops it replaces (repro receive, server
// session.Receive) walk 127 destinations one EnqueueBroadcast at a time on
// the hot actor goroutine — each taking a sender mutex and possibly a ring
// push — while pool workers sit idle. Broadcast splits the list into
// per-shard chunks, pushes each chunk onto its shard of the ready ring, and
// helps service them from the calling goroutine, so enqueue work proceeds
// in parallel with per-sender FIFO intact (the call is synchronous: every
// destination has op K enqueued before the caller can fan out op K+1).
//
// A scratch is single-owner (one session actor / one notifier loop) and
// reusable: Reset, Add destinations, Broadcast.
type FanoutScratch struct {
	dests  []FanoutDest
	sorted []FanoutDest // counting-sort output, grouped by shard
	counts []int        // per-shard destination counts
}

// Reset clears the destination list for the next broadcast, dropping sender
// pointers so departed connections are not pinned against the GC.
func (f *FanoutScratch) Reset() {
	for i := range f.dests {
		f.dests[i] = FanoutDest{}
	}
	f.dests = f.dests[:0]
}

// Add appends one destination.
func (f *FanoutScratch) Add(s *Sender, to int, ts core.Timestamp) {
	f.dests = append(f.dests, FanoutDest{S: s, To: to, TS: ts})
}

// Len returns the number of destinations added since the last Reset.
func (f *FanoutScratch) Len() int { return len(f.dests) }

// Broadcast enqueues bc toward every added destination, in parallel across
// the writer pool's ring shards when that pays (serial otherwise — see
// below). Each destination consumes one reference exactly as in the serial
// loop: Retain before EnqueueBroadcast, which Releases on refusal.
// Broadcast consumes the caller's reference — the module-wide handoff
// convention — so the caller must not Release bc afterwards.
//
// The parallel path requires every destination to share one pooled sender
// pool with more than one shard and at least threshold destinations
// (DefaultFanoutThreshold when 0; < 0 forces serial); anything else —
// dedicated-mode senders, mixed pools, a single-shard ring, a small
// fan-out — runs the plain loop, byte-identical to the pre-§18 behavior.
func (f *FanoutScratch) Broadcast(bc *wire.Broadcast, threshold int) {
	if threshold < 0 {
		f.serial(bc)
		return
	}
	if threshold == 0 {
		threshold = DefaultFanoutThreshold
	}
	pool := f.commonPool()
	if pool == nil || pool.Shards() <= 1 || len(f.dests) < threshold {
		f.serial(bc)
		return
	}
	f.parallel(bc, pool)
}

// commonPool returns the writer pool shared by every destination, or nil if
// destinations are dedicated-mode or attached to different pools.
func (f *FanoutScratch) commonPool() *WriterPool {
	if len(f.dests) == 0 {
		return nil
	}
	pool := f.dests[0].S.pool
	if pool == nil {
		return nil
	}
	for i := 1; i < len(f.dests); i++ {
		if f.dests[i].S.pool != pool {
			return nil
		}
	}
	return pool
}

// serial is the reference fan-out loop: one Retain + EnqueueBroadcast per
// destination on the calling goroutine, then the handed-in reference is
// dropped.
func (f *FanoutScratch) serial(bc *wire.Broadcast) {
	for i := range f.dests {
		d := &f.dests[i]
		bc.Retain()
		_ = d.S.EnqueueBroadcast(bc, d.To, d.TS)
	}
	bc.Release()
}

// fanoutChunk is one shard's slice of a parallel fan-out, pushed onto that
// shard's ready ring as a poolTask. The claim CAS makes the chunk
// exactly-once under the race between a pool worker popping it and the
// broadcasting goroutine helping: the loser returns without touching the
// destination slice, so a stale ring entry popped after Broadcast returned
// (when the scratch's sorted buffer may already hold the next fan-out) is
// harmless. Chunks are allocated per call for exactly that reason.
type fanoutChunk struct {
	bc    *wire.Broadcast
	dests []FanoutDest
	wg    *sync.WaitGroup
	shard int
	claim atomic.Uint32
}

// service claims and runs the chunk: one Retain + EnqueueBroadcast per
// destination (poolTask).
func (c *fanoutChunk) service() {
	if !c.claim.CompareAndSwap(0, 1) {
		return
	}
	for i := range c.dests {
		d := &c.dests[i]
		c.bc.Retain()
		_ = d.S.EnqueueBroadcast(c.bc, d.To, d.TS)
	}
	c.wg.Done()
}

// parallel counting-sorts the destinations by sticky shard, scatters one
// chunk per non-empty shard onto the pool's ready ring, then helps drain
// the chunks itself and waits. The caller-help loop guarantees progress
// even when every pool worker is wedged behind a slow peer's write, so
// Broadcast never deadlocks against the pool it feeds.
func (f *FanoutScratch) parallel(bc *wire.Broadcast, pool *WriterPool) {
	fanoutParallel.Add(1)
	shards := pool.Shards()
	if cap(f.counts) < shards {
		f.counts = make([]int, shards)
	}
	f.counts = f.counts[:shards]
	for i := range f.counts {
		f.counts[i] = 0
	}
	for i := range f.dests {
		f.counts[f.dests[i].S.shard]++
	}
	if cap(f.sorted) < len(f.dests) {
		f.sorted = make([]FanoutDest, len(f.dests))
	}
	f.sorted = f.sorted[:len(f.dests)]
	// counts become start offsets as destinations are placed.
	start, nonEmpty := 0, 0
	for s := 0; s < shards; s++ {
		n := f.counts[s]
		f.counts[s] = start
		start += n
		if n > 0 {
			nonEmpty++
		}
	}
	for i := range f.dests {
		s := f.dests[i].S.shard
		f.sorted[f.counts[s]] = f.dests[i]
		f.counts[s]++
	}
	// f.counts[s] is now the END offset of shard s's group.
	var wg sync.WaitGroup
	wg.Add(nonEmpty)
	chunks := make([]fanoutChunk, 0, nonEmpty)
	start = 0
	for s := 0; s < shards; s++ {
		end := f.counts[s]
		if end == start {
			continue
		}
		chunks = append(chunks, fanoutChunk{bc: bc, dests: f.sorted[start:end], wg: &wg, shard: s})
		start = end
	}
	for i := range chunks {
		pool.ready(&chunks[i], chunks[i].shard)
	}
	for i := range chunks {
		chunks[i].service()
	}
	wg.Wait()
	// Every chunk has done its per-destination Retains; drop the handed-in
	// reference and unpin the sorted scratch from the GC.
	bc.Release()
	for i := range f.sorted {
		f.sorted[i] = FanoutDest{}
	}
}
