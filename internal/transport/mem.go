package transport

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/wire"
)

// memConn is one end of an in-memory pipe: two buffered channels with
// close-once bookkeeping. Channel semantics give exactly the per-link FIFO
// the paper assumes of TCP.
type memConn struct {
	send chan<- wire.Msg
	recv <-chan wire.Msg

	mu     sync.Mutex
	closed bool
	done   chan struct{} // closed when this end closes
	peer   *memConn
	// readable, when non-nil, is this end's EventConn wake callback: the
	// peer invokes it after delivering into our inbound queue, and both
	// ends' callbacks fire on Close so a parked dispatcher observes the
	// closure. Invoked with no locks held.
	readable func()
}

// Pipe returns two connected in-memory endpoints with the given queue depth
// per direction.
func Pipe(depth int) (Conn, Conn) {
	ab := make(chan wire.Msg, depth)
	ba := make(chan wire.Msg, depth)
	a := &memConn{send: ab, recv: ba, done: make(chan struct{})}
	b := &memConn{send: ba, recv: ab, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn.
func (c *memConn) Send(m wire.Msg) error {
	// Encode/decode even in-memory so byte-level bugs surface in every
	// test, not just the TCP path, and so messages are deep-copied across
	// the pipe like a real network would.
	body, err := wire.Append(nil, m)
	if err != nil {
		return err
	}
	decoded, err := wire.Decode(body)
	if err != nil {
		return err
	}
	return c.deliver(decoded)
}

// SendFrame implements FrameConn: the blob is split back into frames and
// every frame is decoded and delivered in order — the same byte-level
// round-trip Send performs, so encoding bugs in the coalesced path surface
// in-memory too.
func (c *memConn) SendFrame(frames []byte) error {
	for len(frames) > 0 {
		size, n := binary.Uvarint(frames)
		if n <= 0 || size > wire.MaxFrame {
			return fmt.Errorf("transport: bad frame length: %w", wire.ErrCorrupt)
		}
		if size > uint64(len(frames)-n) {
			return fmt.Errorf("transport: truncated frame: %w", wire.ErrCorrupt)
		}
		m, err := wire.Decode(frames[n : n+int(size)])
		if err != nil {
			return err
		}
		frames = frames[n+int(size):]
		if err := c.deliver(m); err != nil {
			return err
		}
	}
	return nil
}

// deliver enqueues a decoded message toward the peer, honoring closure.
func (c *memConn) deliver(m wire.Msg) error {
	// Checked first: the select below picks randomly among ready cases and
	// the buffered channel usually has room even after a close.
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return ErrClosed
	default:
	}
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return ErrClosed
	case c.send <- m:
		c.peer.notifyReadable()
		return nil
	}
}

// notifyReadable invokes this end's readable callback, if registered.
func (c *memConn) notifyReadable() {
	c.mu.Lock()
	fn := c.readable
	c.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// SetReadable implements EventConn. Registering fires the callback once so
// messages delivered before registration are not stranded.
func (c *memConn) SetReadable(fn func()) {
	c.mu.Lock()
	c.readable = fn
	c.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// TryRecv implements EventConn: drain-before-close semantics identical to
// Recv, minus the blocking.
func (c *memConn) TryRecv() (wire.Msg, bool, error) {
	select {
	case m := <-c.recv:
		return m, true, nil
	default:
	}
	select {
	case <-c.done:
	case <-c.peer.done:
	default:
		return nil, false, nil // open and empty
	}
	// A close raced the empty read; drain anything that slipped in first.
	select {
	case m := <-c.recv:
		return m, true, nil
	default:
		return nil, false, ErrClosed
	}
}

// Recv implements Conn.
func (c *memConn) Recv() (wire.Msg, error) {
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return nil, ErrClosed
		}
	case <-c.peer.done:
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Close implements Conn. Both ends' readable callbacks fire so event-driven
// readers on either side wake up and observe the closure.
func (c *memConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	fn := c.readable
	c.mu.Unlock()
	if fn != nil {
		fn()
	}
	c.peer.notifyReadable()
	return nil
}

// memListener hands out pipe ends through an accept queue.
type memListener struct {
	conns chan Conn

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// NewMemListener returns an in-memory listener. Dial it with
// (*MemListener).Dial.
func NewMemListener() *MemListener {
	return &MemListener{inner: &memListener{
		conns: make(chan Conn, 16),
		done:  make(chan struct{}),
	}}
}

// MemListener is the in-memory Listener implementation.
type MemListener struct {
	inner *memListener
}

// Dial creates a new connection whose far end is delivered to Accept.
func (l *MemListener) Dial() (Conn, error) {
	// Checked first because the select below picks randomly among ready
	// cases and the accept queue usually has room.
	select {
	case <-l.inner.done:
		return nil, ErrClosed
	default:
	}
	a, b := Pipe(256)
	select {
	case <-l.inner.done:
		return nil, ErrClosed
	case l.inner.conns <- b:
		return a, nil
	}
}

// Accept implements Listener.
func (l *MemListener) Accept() (Conn, error) {
	select {
	case c := <-l.inner.conns:
		return c, nil
	case <-l.inner.done:
		return nil, ErrClosed
	}
}

// Close implements Listener.
func (l *MemListener) Close() error {
	l.inner.mu.Lock()
	defer l.inner.mu.Unlock()
	if !l.inner.closed {
		l.inner.closed = true
		close(l.inner.done)
	}
	return nil
}

// Addr implements Listener.
func (l *MemListener) Addr() string { return "mem" }
