package transport

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide sender drain counters. senderMsgs counts messages written by
// all Senders; senderFlushes counts the write rounds (Send or SendFrame
// calls) they took. Their ratio is the flush-coalescing factor the
// swap-drain design exists to maximize: a deep queue drained into one
// SendFrame moves the ratio far above 1.
var (
	senderMsgs    atomic.Uint64
	senderFlushes atomic.Uint64
)

// Sharded-scheduling counters (DESIGN.md §18). ringSteals counts ready-ring
// pops taken from a sibling shard (Dispatcher + WriterPool combined);
// fanoutParallel counts broadcasts scattered across pool workers instead of
// enqueued serially. shardDepthHist, when set, observes every shard's queue
// depth at push time — an atomic pointer so registration is race-free
// against live traffic and the unregistered path costs one load.
var (
	ringSteals     atomic.Uint64
	fanoutParallel atomic.Uint64
	shardDepthHist atomic.Pointer[obs.Histogram]
)

// SenderMsgs returns the process-wide count of messages written by Senders.
func SenderMsgs() uint64 { return senderMsgs.Load() }

// SenderFlushes returns the process-wide count of Sender write rounds.
func SenderFlushes() uint64 { return senderFlushes.Load() }

// DispatchSteals returns the process-wide count of cross-shard ready-ring
// steals.
func DispatchSteals() uint64 { return ringSteals.Load() }

// FanoutParallel returns the process-wide count of parallel broadcast
// fan-outs.
func FanoutParallel() uint64 { return fanoutParallel.Load() }

// recordShardDepth samples a shard's post-push queue depth into the
// registered histogram, if any.
func recordShardDepth(n int) {
	if h := shardDepthHist.Load(); h != nil {
		h.RecordInt(n)
	}
}

// RegisterMetrics exposes the package's process-wide counters on r:
// sender.msgs, sender.flushes, tcp.bytes_sent, tcp.flushes, dispatch.steals,
// fanout.parallel, and the dispatch.shard.depth histogram.
func RegisterMetrics(r *obs.Registry) {
	r.CounterFunc(obs.CSenderMsgs, func() int64 { return int64(SenderMsgs()) })
	r.CounterFunc(obs.CSenderFlushes, func() int64 { return int64(SenderFlushes()) })
	r.CounterFunc(obs.CTCPBytes, func() int64 { return int64(TCPBytesSent()) })
	r.CounterFunc(obs.CTCPFlushes, func() int64 { return int64(TCPFlushes()) })
	r.CounterFunc(obs.CDispatchSteals, func() int64 { return int64(DispatchSteals()) })
	r.CounterFunc(obs.CFanoutParallel, func() int64 { return int64(FanoutParallel()) })
	shardDepthHist.Store(r.Histogram(obs.HDispatchShardDepth))
}
