package transport

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide sender drain counters. senderMsgs counts messages written by
// all Senders; senderFlushes counts the write rounds (Send or SendFrame
// calls) they took. Their ratio is the flush-coalescing factor the
// swap-drain design exists to maximize: a deep queue drained into one
// SendFrame moves the ratio far above 1.
var (
	senderMsgs    atomic.Uint64
	senderFlushes atomic.Uint64
)

// SenderMsgs returns the process-wide count of messages written by Senders.
func SenderMsgs() uint64 { return senderMsgs.Load() }

// SenderFlushes returns the process-wide count of Sender write rounds.
func SenderFlushes() uint64 { return senderFlushes.Load() }

// RegisterMetrics exposes the package's process-wide counters on r:
// sender.msgs, sender.flushes, tcp.bytes_sent, tcp.flushes.
func RegisterMetrics(r *obs.Registry) {
	r.CounterFunc(obs.CSenderMsgs, func() int64 { return int64(SenderMsgs()) })
	r.CounterFunc(obs.CSenderFlushes, func() int64 { return int64(SenderFlushes()) })
	r.CounterFunc(obs.CTCPBytes, func() int64 { return int64(TCPBytesSent()) })
	r.CounterFunc(obs.CTCPFlushes, func() int64 { return int64(TCPFlushes()) })
}
