package netpoll

import (
	"encoding/binary"
	"fmt"

	"repro/internal/wire"
)

// frameBufRetain bounds how much backing array a drained reassembly buffer
// keeps for the next burst; an oversized frame's buffer is dropped once
// consumed instead of pinning megabytes on an idle connection (mirrors the
// wire package's ReadFrameReuse retention cap).
const frameBufRetain = 64 << 10

// frameBuf reassembles length-prefixed wire frames from arbitrary read
// chunks. A non-blocking socket delivers whatever the kernel has — half a
// length prefix, a frame and a half — so the buffer accumulates bytes until
// a complete frame is decodable and hands back one message at a time,
// producing exactly the decode sequence wire.ReadFrameReuse would on the
// same stream (FuzzPartialRead holds us to that).
//
// Ownership: the buffer belongs to the connection's read side and is only
// touched with the read mutex held — space/advance fill it from the socket,
// next consumes from the front. It is not a ring: consumed bytes are
// reclaimed by compaction when space runs out, which stays cheap because a
// drained buffer resets to empty and steady-state frames are far smaller
// than the buffer.
type frameBuf struct {
	buf []byte // buf[r:] holds the unconsumed bytes
	r   int
}

// pending returns how many unconsumed bytes are buffered.
func (fb *frameBuf) pending() int { return len(fb.buf) - fb.r }

// next decodes the next complete frame from the buffered bytes. ok=false
// with a nil error means the buffer ends mid-frame (read more); a non-nil
// error means the stream is corrupt and the connection must treat it as
// terminal — after a framing error the length prefixes downstream are
// meaningless.
func (fb *frameBuf) next() (wire.Msg, bool, error) {
	b := fb.buf[fb.r:]
	size, n := binary.Uvarint(b)
	if n == 0 {
		if len(b) >= binary.MaxVarintLen64 {
			// 10 bytes without a terminating byte can never become a
			// valid length prefix, however much more arrives.
			return nil, false, fmt.Errorf("netpoll: unterminated frame length: %w", wire.ErrCorrupt)
		}
		return nil, false, nil // partial length prefix
	}
	if n < 0 {
		return nil, false, fmt.Errorf("netpoll: frame length overflow: %w", wire.ErrCorrupt)
	}
	if size > wire.MaxFrame {
		return nil, false, fmt.Errorf("netpoll: %d bytes: %w", size, wire.ErrFrameTooLarge)
	}
	if uint64(len(b)-n) < size {
		return nil, false, nil // partial body
	}
	m, err := wire.Decode(b[n : n+int(size)])
	if err != nil {
		return nil, false, err
	}
	fb.r += n + int(size)
	if fb.r == len(fb.buf) {
		// Fully drained: rewind, and let go of a burst-sized backing array.
		fb.buf, fb.r = fb.buf[:0], 0
		if cap(fb.buf) > frameBufRetain {
			fb.buf = nil
		}
	}
	return m, true, nil
}

// space returns a writable tail of at least min bytes for the next read,
// compacting consumed bytes first and growing the backing array only when
// compaction is not enough. Bytes read into it become visible via advance.
func (fb *frameBuf) space(min int) []byte {
	if cap(fb.buf)-len(fb.buf) < min {
		keep := fb.pending()
		if fb.r > 0 {
			copy(fb.buf, fb.buf[fb.r:])
			fb.buf, fb.r = fb.buf[:keep], 0
		}
		if cap(fb.buf)-len(fb.buf) < min {
			grown := make([]byte, keep, cap(fb.buf)*2+min)
			copy(grown, fb.buf)
			fb.buf = grown
		}
	}
	return fb.buf[len(fb.buf):cap(fb.buf)]
}

// advance accounts n bytes just read into the slice space returned.
func (fb *frameBuf) advance(n int) { fb.buf = fb.buf[:len(fb.buf)+n] }
