package netpoll

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/causal"
	"repro/internal/core"
	"repro/internal/op"
	"repro/internal/wire"
)

// testMsgs builds n protocol messages cycling through the shapes that matter
// for reassembly: small fixed-size frames, ServerOps, multi-op batches, and
// string-carrying frames whose size pushes the length prefix past one byte.
func testMsgs(t testing.TB, n int) []wire.Msg {
	t.Helper()
	o, err := op.NewInsert(10, 3, "héllo")
	if err != nil {
		t.Fatal(err)
	}
	so := func(i int) wire.ServerOp {
		return wire.ServerOp{
			To:      i % 7,
			TS:      core.Timestamp{T1: uint64(i), T2: uint64(2 * i)},
			Ref:     causal.OpRef{Site: i % 3, Seq: uint64(i)},
			OrigRef: causal.OpRef{Site: 1, Seq: uint64(i + 1)},
			Op:      o,
		}
	}
	msgs := make([]wire.Msg, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			msgs = append(msgs, wire.ClientOp{
				From: i,
				TS:   core.Timestamp{T1: uint64(i), T2: 9},
				Ref:  causal.OpRef{Site: 2, Seq: uint64(i)},
				Op:   o,
			})
		case 1:
			msgs = append(msgs, so(i))
		case 2:
			msgs = append(msgs, wire.OpBatch{Ops: []wire.ServerOp{so(i), so(i + 1), so(i + 2)}})
		case 3:
			// i*53%400 spans both one- and two-byte length prefixes.
			msgs = append(msgs, wire.JoinResp{Site: i, Text: strings.Repeat("a", (i*53)%400)})
		}
	}
	return msgs
}

// encodeStream frames msgs back to back, exactly as a sender would put them
// on the wire.
func encodeStream(t testing.TB, msgs []wire.Msg) []byte {
	t.Helper()
	var stream []byte
	for _, m := range msgs {
		var err error
		if stream, err = wire.AppendFrame(stream, m); err != nil {
			t.Fatal(err)
		}
	}
	return stream
}

// body re-encodes a decoded message so two decodes can be compared by bytes
// (op pointers make struct equality useless).
func body(t testing.TB, m wire.Msg) []byte {
	t.Helper()
	b, err := wire.Append(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// feed pushes chunk into fb as a socket read would and drains every complete
// frame.
func feed(t testing.TB, fb *frameBuf, chunk []byte) []wire.Msg {
	t.Helper()
	for len(chunk) > 0 {
		dst := fb.space(len(chunk))
		n := copy(dst, chunk)
		fb.advance(n)
		chunk = chunk[n:]
	}
	var got []wire.Msg
	for {
		m, ok, err := fb.next()
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if !ok {
			return got
		}
		got = append(got, m)
	}
}

func assertSameMsgs(t *testing.T, got, want []wire.Msg) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(body(t, got[i]), body(t, want[i])) {
			t.Fatalf("message %d decoded differently: %#v want %#v", i, got[i], want[i])
		}
	}
}

// TestFrameBufSplits drives the reassembly buffer across every frame
// boundary that matters: a length prefix split mid-varint, a body split, a
// TOpBatch split across three reads, single-byte trickle, and chunks
// carrying several frames plus a partial next one.
func TestFrameBufSplits(t *testing.T) {
	msgs := testMsgs(t, 8)
	stream := encodeStream(t, msgs)
	// A frame with a body ≥ 128 bytes has a 2-byte length prefix; cutting
	// at +1 from its start splits the prefix itself.
	big := encodeStream(t, []wire.Msg{wire.JoinResp{Site: 1, Text: strings.Repeat("b", 300)}})
	batch := encodeStream(t, []wire.Msg{msgs[2]}) // the OpBatch

	cases := []struct {
		name   string
		stream []byte
		want   []wire.Msg
		cuts   []int // split offsets into stream, ascending
	}{
		{"header-split", big, []wire.Msg{wire.JoinResp{Site: 1, Text: strings.Repeat("b", 300)}}, []int{1}},
		{"body-split", stream, msgs, []int{len(stream) / 2}},
		{"batch-3-reads", batch, []wire.Msg{msgs[2]}, []int{len(batch) / 3, 2 * len(batch) / 3}},
		{"several-frames-then-partial", stream, msgs, []int{len(stream) - 3}},
		{"every-boundary", stream, msgs, []int{1, 2, 3, len(stream) / 4, len(stream) / 2, len(stream) - 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var fb frameBuf
			var got []wire.Msg
			prev := 0
			for _, cut := range append(tc.cuts, len(tc.stream)) {
				got = append(got, feed(t, &fb, tc.stream[prev:cut])...)
				prev = cut
			}
			assertSameMsgs(t, got, tc.want)
			if fb.pending() != 0 {
				t.Fatalf("%d bytes left in buffer after full stream", fb.pending())
			}
		})
	}
}

// TestFrameBufByteAtATime is the degenerate short-read case: every read
// delivers one byte, so every frame is assembled across many rounds.
func TestFrameBufByteAtATime(t *testing.T) {
	msgs := testMsgs(t, 6)
	stream := encodeStream(t, msgs)
	var fb frameBuf
	var got []wire.Msg
	for i := range stream {
		got = append(got, feed(t, &fb, stream[i:i+1])...)
	}
	assertSameMsgs(t, got, msgs)
}

// TestFrameBufCorrupt checks the two terminal framing errors: an oversized
// length and an unterminated length prefix. Both must surface as errors, not
// silent stalls.
func TestFrameBufCorrupt(t *testing.T) {
	t.Run("frame-too-large", func(t *testing.T) {
		var fb frameBuf
		huge := []byte{0xff, 0xff, 0xff, 0xff, 0x7f} // ~34 GiB length
		copy(fb.space(len(huge)), huge)
		fb.advance(len(huge))
		if _, _, err := fb.next(); err == nil {
			t.Fatal("oversized frame length not rejected")
		}
	})
	t.Run("unterminated-length", func(t *testing.T) {
		var fb frameBuf
		junk := bytes.Repeat([]byte{0xff}, 12)
		copy(fb.space(len(junk)), junk)
		fb.advance(len(junk))
		if _, _, err := fb.next(); err == nil {
			t.Fatal("unterminated varint length not rejected")
		}
	})
}

// FuzzPartialRead re-chunks a valid frame stream at fuzzer-chosen offsets
// and asserts the reassembly buffer decodes exactly the sequence
// wire.ReadFrameReuse produces from the same bytes.
func FuzzPartialRead(f *testing.F) {
	f.Add([]byte{1, 3, 7, 100}, uint8(5))
	f.Add([]byte{0}, uint8(12))
	f.Add([]byte{255, 1}, uint8(3))
	f.Fuzz(func(t *testing.T, schedule []byte, nmsgs uint8) {
		msgs := testMsgs(t, int(nmsgs%16)+1)
		stream := encodeStream(t, msgs)

		// Reference decode: the blocking-path reader over the same stream.
		var want []wire.Msg
		var scratch []byte
		r := bytes.NewReader(stream)
		for r.Len() > 0 {
			m, buf, err := wire.ReadFrameReuse(r, scratch)
			if err != nil {
				t.Fatalf("reference decode: %v", err)
			}
			scratch = buf
			want = append(want, m)
		}

		var fb frameBuf
		var got []wire.Msg
		pos, si := 0, 0
		for pos < len(stream) {
			n := 1
			if len(schedule) > 0 {
				n = int(schedule[si%len(schedule)]) + 1
				si++
			}
			if pos+n > len(stream) {
				n = len(stream) - pos
			}
			got = append(got, feed(t, &fb, stream[pos:pos+n])...)
			pos += n
		}
		assertSameMsgs(t, got, want)
		if fb.pending() != 0 {
			t.Fatalf("%d bytes left after full stream", fb.pending())
		}
	})
}
