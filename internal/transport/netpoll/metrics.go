package netpoll

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide poller counters, shared by every Poller in the process (like
// the transport package's sender/TCP counters they are monotone; callers
// measure with deltas).
var (
	// wakeups counts epoll_wait returns — the syscall budget of the whole
	// read side. One wakeup servicing many connections is the point of the
	// poller; wakeups/events_per_wait together say how well that amortizes.
	wakeups atomic.Uint64
	// rearms counts EPOLLOUT arm operations: a short write filled the
	// socket buffer and the remainder was parked for the poller to flush.
	rearms atomic.Uint64
	// partialReads counts TryRecv rounds that read bytes to EAGAIN and
	// still ended with an incomplete frame buffered — the reassembly buffer
	// doing its job across a frame boundary.
	partialReads atomic.Uint64
	// eventsHist, once RegisterMetrics runs, records the batch size of each
	// epoll_wait return.
	eventsHist atomic.Pointer[obs.Histogram]
)

// Wakeups returns the process-wide count of epoll_wait returns.
func Wakeups() uint64 { return wakeups.Load() }

// Rearms returns the process-wide count of EPOLLOUT re-arms after short
// writes.
func Rearms() uint64 { return rearms.Load() }

// PartialReads returns the process-wide count of read rounds that ended on a
// partial frame.
func PartialReads() uint64 { return partialReads.Load() }
