package netpoll

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide poller counters, shared by every Poller in the process (like
// the transport package's sender/TCP counters they are monotone; callers
// measure with deltas).
var (
	// wakeups counts epoll_wait returns — the syscall budget of the whole
	// read side. One wakeup servicing many connections is the point of the
	// poller; wakeups/events_per_wait together say how well that amortizes.
	wakeups atomic.Uint64
	// rearms counts EPOLLOUT arm operations: a short write filled the
	// socket buffer and the remainder was parked for the poller to flush.
	rearms atomic.Uint64
	// partialReads counts TryRecv rounds that read bytes to EAGAIN and
	// still ended with an incomplete frame buffered — the reassembly buffer
	// doing its job across a frame boundary.
	partialReads atomic.Uint64
	// eventsHist, once RegisterMetrics runs, records the batch size of each
	// epoll_wait return.
	eventsHist atomic.Pointer[obs.Histogram]
	// wakeupsByShard splits wakeups by epoll shard index (DESIGN.md §18);
	// shards past the array fold into the last slot. The catalogue exposes
	// slots 0..3 (the default shard cap).
	wakeupsByShard [16]atomic.Uint64
)

// shardWakeup counts one event-carrying epoll_wait return on shard idx.
func shardWakeup(idx int) {
	if idx >= len(wakeupsByShard) {
		idx = len(wakeupsByShard) - 1
	}
	wakeupsByShard[idx].Add(1)
}

// ShardWakeups returns the wakeup count of epoll shard idx (0 for invalid
// indexes; indexes past the backing array read its folded last slot).
func ShardWakeups(idx int) uint64 {
	if idx < 0 {
		return 0
	}
	if idx >= len(wakeupsByShard) {
		idx = len(wakeupsByShard) - 1
	}
	return wakeupsByShard[idx].Load()
}

// Wakeups returns the process-wide count of epoll_wait returns.
func Wakeups() uint64 { return wakeups.Load() }

// Rearms returns the process-wide count of EPOLLOUT re-arms after short
// writes.
func Rearms() uint64 { return rearms.Load() }

// PartialReads returns the process-wide count of read rounds that ended on a
// partial frame.
func PartialReads() uint64 { return partialReads.Load() }
