// Package netpoll is the platform readiness poller of the goroutine-lean
// connection layer (DESIGN.md §16): a raw-syscall epoll reader/writer that
// makes real TCP connections event-capable (transport.EventConn), so the
// shared Dispatcher drains them with zero goroutines per connection — the
// same capacity profile the in-memory transport already has (DESIGN.md §15).
//
// On Linux, ListenTCP returns a transport.Listener whose accepted
// connections are owned by an epoll instance: one poller goroutine calls
// epoll_wait and forwards readiness edges to the connections' readable
// callbacks (feeding the Dispatcher's ready ring) and to their pending-write
// flushers. Reads are non-blocking (TryRecv reassembles complete wire frames
// from short reads without ever parking a goroutine) and short writes re-arm
// EPOLLOUT instead of spinning or pinning a writer-pool worker.
//
// On every other platform the package compiles to a stub: Available reports
// false, ListenTCP returns ErrUnavailable, and callers fall back to the
// dedicated-reader TCP path (transport.ListenTCP) — the reference semantics
// this package is differentially tested against.
package netpoll

import (
	"errors"

	"repro/internal/obs"
)

// ErrUnavailable is returned by ListenTCP and NewPoller on platforms without
// a readiness poller. Callers fall back to transport.ListenTCP.
var ErrUnavailable = errors.New("netpoll: no readiness poller on this platform")

// DefaultReadChunk is the per-read buffer extension: each non-blocking read
// pulls up to this many bytes into the reassembly buffer. Large enough that
// a keystroke burst drains in one syscall, small enough that 50k idle
// connections do not pin read buffers (idle connections hold no buffer at
// all — the reassembly buffer is allocated on first data and released when
// it drains).
const DefaultReadChunk = 32 << 10

// Option configures a poller-backed listener or connection.
type Option func(*config)

type config struct {
	readChunk int
	sockBuf   int
	poller    *Poller
	shards    int
}

// WithReadChunk sets how many bytes each non-blocking read may pull into the
// reassembly buffer (default DefaultReadChunk; values below 1 fall back to
// the default). Tests use tiny chunks to force partial-frame reassembly.
func WithReadChunk(n int) Option {
	return func(c *config) { c.readChunk = n }
}

// WithSockBuf sets SO_RCVBUF and SO_SNDBUF on accepted connections (0 keeps
// the kernel default). Chaos tests use tiny socket buffers to force short
// reads and short writes on real connections.
func WithSockBuf(n int) Option {
	return func(c *config) { c.sockBuf = n }
}

// WithPoller attaches accepted connections to p instead of the process-wide
// default poller. Tests use private pollers so Close tears them down.
func WithPoller(p *Poller) Option {
	return func(c *config) { c.poller = p }
}

// WithPollerShards sets how many epoll instances a NewPoller call creates,
// each with its own event loop; connections are assigned round-robin at
// registration (DESIGN.md §18). n <= 0 keeps the default
// (min(GOMAXPROCS, 4) on Linux); 1 is the single-instance §16 layout. Only
// NewPoller reads this option — listeners and dials inherit their poller's
// shard count.
func WithPollerShards(n int) Option {
	return func(c *config) { c.shards = n }
}

func buildConfig(opts []Option) config {
	cfg := config{readChunk: DefaultReadChunk}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.readChunk < 1 {
		cfg.readChunk = DefaultReadChunk
	}
	return cfg
}

// RegisterMetrics exposes the package's process-wide poller counters on r:
// poller.wakeups, poller.rearm, conn.partial_reads, the per-shard
// poller.shard.wakeups.0..3 counters (a fixed set so the catalogue does not
// depend on the box; shard indexes past 3 fold into the array's tail — see
// ShardWakeups), and the poller.events_per_wait histogram (recorded by every
// poller in the process from registration on).
func RegisterMetrics(r *obs.Registry) {
	r.CounterFunc(obs.CPollerWakeups, func() int64 { return int64(Wakeups()) })
	r.CounterFunc(obs.CPollerRearm, func() int64 { return int64(Rearms()) })
	r.CounterFunc(obs.CConnPartialReads, func() int64 { return int64(PartialReads()) })
	r.CounterFunc(obs.CPollerShard0Wakeups, func() int64 { return int64(ShardWakeups(0)) })
	r.CounterFunc(obs.CPollerShard1Wakeups, func() int64 { return int64(ShardWakeups(1)) })
	r.CounterFunc(obs.CPollerShard2Wakeups, func() int64 { return int64(ShardWakeups(2)) })
	r.CounterFunc(obs.CPollerShard3Wakeups, func() int64 { return int64(ShardWakeups(3)) })
	eventsHist.Store(r.Histogram(obs.HPollerEventsPerWait))
}
