//go:build !linux

package netpoll

import "repro/internal/transport"

// Available reports whether this platform has a readiness poller.
func Available() bool { return false }

// Poller is unavailable on this platform; connections fall back to the
// dedicated-reader TCP path (transport.ListenTCP). See the package comment.
type Poller struct{}

// NewPoller returns ErrUnavailable on platforms without a poller.
func NewPoller(opts ...Option) (*Poller, error) { return nil, ErrUnavailable }

// Default returns ErrUnavailable on platforms without a poller.
func Default() (*Poller, error) { return nil, ErrUnavailable }

// Close implements the Poller API as a no-op.
func (p *Poller) Close() error { return nil }

// Shards implements the Poller API; a stub poller has no epoll instances.
func (p *Poller) Shards() int { return 0 }

// DefaultPollerShards returns 0 on platforms without a poller.
func DefaultPollerShards() int { return 0 }

// ListenTCP returns ErrUnavailable; callers fall back to
// transport.ListenTCP (transport.ListenEventTCP does this automatically).
func ListenTCP(addr string, opts ...Option) (transport.Listener, error) {
	return nil, ErrUnavailable
}

// DialTCP returns ErrUnavailable; callers fall back to transport.DialTCP.
func DialTCP(addr string, opts ...Option) (transport.Conn, error) {
	return nil, ErrUnavailable
}
