//go:build !linux

package netpoll

import "repro/internal/transport"

// Available reports whether this platform has a readiness poller.
func Available() bool { return false }

// Poller is unavailable on this platform; connections fall back to the
// dedicated-reader TCP path (transport.ListenTCP). See the package comment.
type Poller struct{}

// NewPoller returns ErrUnavailable on platforms without a poller.
func NewPoller() (*Poller, error) { return nil, ErrUnavailable }

// Default returns ErrUnavailable on platforms without a poller.
func Default() (*Poller, error) { return nil, ErrUnavailable }

// Close implements the Poller API as a no-op.
func (p *Poller) Close() error { return nil }

// ListenTCP returns ErrUnavailable; callers fall back to
// transport.ListenTCP (transport.ListenEventTCP does this automatically).
func ListenTCP(addr string, opts ...Option) (transport.Listener, error) {
	return nil, ErrUnavailable
}
