//go:build linux

package netpoll

import (
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/obs/span"
	"repro/internal/transport"
	"repro/internal/wire"
)

// epollET requests edge-triggered delivery. syscall.EPOLLET is declared as a
// negative int (bit 31 of the events word); routing it through a uint32
// constant avoids the sign trap.
const epollET = uint32(1) << 31

// readEvents is the resting interest set: inbound data, peer half-close, and
// the error conditions epoll reports unconditionally. writeEvents adds
// EPOLLOUT while a short write is parked.
const (
	readEvents  = uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP) | epollET
	writeEvents = readEvents | uint32(syscall.EPOLLOUT)
)

// spinRounds is how many zero-timeout re-polls (each followed by a Gosched)
// a shard loop runs after a wakeup that carried events before parking back
// into the runtime netpoller. Parking is cheap but waking is not: on a
// saturated GOMAXPROCS=1 box the runtime skips netpoll while its run queue
// is non-empty, and only sysmon forces one every ~10ms — so a parked poller
// under load sees readiness at sysmon latency, quantizing every TCP hop at
// ~10ms (the poll_wake tail E14 measured). A recently-busy shard therefore
// stays runnable for a bounded number of scheduler round-trips, discovering
// new events at run-queue latency; a genuinely idle shard exhausts the
// budget and parks, costing zero CPU.
const spinRounds = 64

// Available reports whether this platform has a readiness poller.
func Available() bool { return true }

// Poller owns N epoll instances ("shards"), each drained by its own
// goroutine. Registered connections cost no goroutines: their read-side
// edges are forwarded to the readable callback (feeding a
// transport.Dispatcher's ready ring) and their write-side edges to the
// pending-flush path. Everything is raw syscall — no cgo, no dependencies —
// and edge-triggered, so the kernel notifies once per readiness transition
// and the wait set stays O(1) per event regardless of how many tens of
// thousands of idle connections are registered.
//
// Sharding (DESIGN.md §18) bounds the batch a single hot edge can queue
// behind: with one instance, 128 simultaneously-readable connections are
// serviced by one goroutine in one pass; with N instances, connections are
// assigned round-robin at registration and N loops forward their shares
// independently.
type Poller struct {
	shards []*pollShard
	// next hands out shard assignments round-robin as conns register.
	next atomic.Uint32
}

// pollShard is one epoll instance and the goroutine that drains it.
type pollShard struct {
	idx  int
	epfd int
	// epf wraps epfd so the loop can park in the runtime netpoller instead
	// of blocking an OS thread inside epoll_wait. A raw blocking wait holds
	// its P in _Psyscall until sysmon retakes it — up to 10ms on a quiet
	// box — which on GOMAXPROCS=1 stalls every goroutine once per wakeup.
	// Registering the (nonblocking) epoll fd itself with the runtime poller
	// and waiting for IT to become readable turns each wakeup into an
	// ordinary gopark/goready pair. epoll instances nest one level, so the
	// runtime's own epoll can watch ours.
	epf  *os.File
	eprc syscall.RawConn
	wake [2]int // self-pipe; [1] written by Close to unblock the wait

	mu     sync.Mutex
	conns  map[int32]*pollConn
	closed bool

	done chan struct{}
}

// DefaultPollerShards is the default epoll shard count:
// min(GOMAXPROCS, 4). More shards than CPUs cannot run concurrently, and
// beyond 4 the per-shard goroutine overhead outgrows the batching win.
func DefaultPollerShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewPoller creates a poller with its own epoll shard set and event loops
// (shard count from WithPollerShards, default DefaultPollerShards). Most
// callers want the shared Default instead; tests create private pollers so
// Close tears the loops down deterministically.
func NewPoller(opts ...Option) (*Poller, error) {
	cfg := buildConfig(opts)
	shards := cfg.shards
	if shards <= 0 {
		shards = DefaultPollerShards()
	}
	p := &Poller{shards: make([]*pollShard, 0, shards)}
	for i := 0; i < shards; i++ {
		sh, err := newPollShard(i)
		if err != nil {
			_ = p.Close()
			return nil, err
		}
		p.shards = append(p.shards, sh)
	}
	return p, nil
}

// Shards returns the number of epoll instances this poller runs.
func (p *Poller) Shards() int { return len(p.shards) }

// pick assigns the next connection's shard (round-robin).
func (p *Poller) pick() *pollShard {
	return p.shards[int(p.next.Add(1)-1)%len(p.shards)]
}

func newPollShard(idx int) (*pollShard, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, os.NewSyscallError("epoll_create1", err)
	}
	sh := &pollShard{idx: idx, epfd: epfd, conns: make(map[int32]*pollConn), done: make(chan struct{})}
	if err := syscall.Pipe2(sh.wake[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		_ = syscall.Close(epfd)
		return nil, os.NewSyscallError("pipe2", err)
	}
	// The wake pipe stays level-triggered: it only ever carries the close
	// signal and must not be lost to an edge raced by a spurious wakeup.
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN), Fd: int32(sh.wake[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, sh.wake[0], &ev); err != nil {
		_ = syscall.Close(epfd)
		_ = syscall.Close(sh.wake[0])
		_ = syscall.Close(sh.wake[1])
		return nil, os.NewSyscallError("epoll_ctl", err)
	}
	// Nonblocking BEFORE os.NewFile: that is what makes the runtime register
	// the fd with its own netpoller (see newFile's pollable check).
	if err := syscall.SetNonblock(epfd, true); err != nil {
		_ = syscall.Close(epfd)
		_ = syscall.Close(sh.wake[0])
		_ = syscall.Close(sh.wake[1])
		return nil, os.NewSyscallError("setnonblock", err)
	}
	sh.epf = os.NewFile(uintptr(epfd), "epoll")
	rc, err := sh.epf.SyscallConn()
	if err != nil {
		_ = sh.epf.Close() // owns epfd now
		_ = syscall.Close(sh.wake[0])
		_ = syscall.Close(sh.wake[1])
		return nil, err
	}
	sh.eprc = rc
	go sh.loop()
	return sh, nil
}

var (
	defaultOnce sync.Once
	defaultP    *Poller
	defaultErr  error
)

// Default returns the process-wide poller, created on first use and never
// closed — the epoll fds and their goroutines are process-lifetime fixtures,
// like the runtime's own netpoller.
func Default() (*Poller, error) {
	defaultOnce.Do(func() { defaultP, defaultErr = NewPoller() })
	return defaultP, defaultErr
}

// loop is one shard's goroutine: wait, then forward each event to its
// connection. It holds no locks across callbacks beyond the conn-table
// lookup, and the event slice is its only allocation, made once.
//
// The wait is three-level. While the shard was recently busy it re-polls
// with a zero-timeout epoll_wait between Gosched yields (see spinRounds) —
// readiness then surfaces at run-queue latency even when the runtime
// netpoller is starved by a saturated run queue. After the spin budget, the
// RawConn.Read parks this goroutine in the runtime netpoller until the
// epoll fd itself reports readable, and the callback drains it with the
// same zero-timeout wait. The callback always polls before parking, so a
// batch larger than the events slice is picked up on the next iteration
// without needing a fresh readiness edge.
func (sh *pollShard) loop() {
	defer close(sh.done)
	// The wait closures are built once: they, the event slice, and n are
	// the loop's only allocations, paid per shard rather than per wakeup.
	events := make([]syscall.EpollEvent, 128)
	n := 0
	poll := func(fd uintptr) bool {
		for {
			var err error
			n, err = syscall.EpollWait(int(fd), events, 0)
			if err == syscall.EINTR {
				continue
			}
			if err != nil {
				n = -1 // terminal: epoll fd gone
				return true
			}
			return n > 0 // no events: park until the epoll fd is readable
		}
	}
	epfd := uintptr(sh.epfd)
	spin := 0
	for {
		if spin > 0 {
			spin--
			if poll(epfd); n < 0 {
				return
			}
			if n == 0 {
				runtime.Gosched()
				continue
			}
		} else if sh.eprc.Read(poll) != nil || n < 0 {
			return
		}
		wakeups.Add(1)
		shardWakeup(sh.idx)
		if h := eventsHist.Load(); h != nil {
			h.RecordInt(n)
		}
		// Read-side edges first, pending-flush second: inbound ops start
		// their dispatch before this batch's outbound backlog is drained,
		// so a stalled writer never adds to arrival latency.
		for i := 0; i < n; i++ {
			fd, evs := events[i].Fd, events[i].Events
			if int(fd) == sh.wake[0] {
				if sh.drainWake() {
					return
				}
				continue
			}
			if evs&(uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP|syscall.EPOLLERR|syscall.EPOLLHUP)) == 0 {
				continue
			}
			if pc := sh.lookup(fd); pc != nil {
				pc.onReadable()
			}
		}
		for i := 0; i < n; i++ {
			if events[i].Events&uint32(syscall.EPOLLOUT) == 0 {
				continue
			}
			if pc := sh.lookup(events[i].Fd); pc != nil {
				pc.flushPending()
			}
		}
		spin = spinRounds
	}
}

// lookup resolves an event's fd to its connection (nil when it was
// deregistered while the event was in flight).
func (sh *pollShard) lookup(fd int32) *pollConn {
	sh.mu.Lock()
	pc := sh.conns[fd]
	sh.mu.Unlock()
	return pc
}

// drainWake empties the self-pipe and reports whether Close asked the loop
// to exit.
func (sh *pollShard) drainWake() bool {
	var buf [16]byte
	for {
		if n, err := syscall.Read(sh.wake[0], buf[:]); n <= 0 || err != nil {
			break
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.closed
}

// Close stops every shard's event loop and closes every registered
// connection, which surfaces transport.ErrClosed through their Recv/TryRecv
// paths and so retires them from any dispatcher. Only test-owned pollers are
// closed; see Default.
func (p *Poller) Close() error {
	for _, sh := range p.shards {
		if sh != nil {
			sh.close()
		}
	}
	return nil
}

func (sh *pollShard) close() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	sh.mu.Unlock()
	one := [1]byte{1}
	_, _ = syscall.Write(sh.wake[1], one[:])
	<-sh.done
	sh.mu.Lock()
	conns := make([]*pollConn, 0, len(sh.conns))
	for _, pc := range sh.conns {
		conns = append(conns, pc)
	}
	sh.mu.Unlock()
	for _, pc := range conns {
		_ = pc.Close()
	}
	_ = sh.epf.Close() // owns epfd
	_ = syscall.Close(sh.wake[0])
	_ = syscall.Close(sh.wake[1])
}

// add registers pc's fd with the shard's epoll instance under the read
// interest set.
func (sh *pollShard) add(pc *pollConn) error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return transport.ErrClosed
	}
	sh.conns[int32(pc.fd)] = pc
	sh.mu.Unlock()
	ev := syscall.EpollEvent{Events: readEvents, Fd: int32(pc.fd)}
	if err := syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_ADD, pc.fd, &ev); err != nil {
		sh.mu.Lock()
		delete(sh.conns, int32(pc.fd))
		sh.mu.Unlock()
		return os.NewSyscallError("epoll_ctl", err)
	}
	return nil
}

// deregister removes pc from the interest set and the conn table. It MUST
// complete before pc's fd is closed: the kernel reuses fd numbers, and a
// stale table entry would route a future connection's events to this dead
// one.
func (sh *pollShard) deregister(pc *pollConn) {
	sh.mu.Lock()
	delete(sh.conns, int32(pc.fd))
	sh.mu.Unlock()
	_ = syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_DEL, pc.fd, nil)
}

// mod swaps pc's interest set (read-only ↔ read+write). With edge
// triggering, EPOLL_CTL_MOD also re-checks readiness: if the socket is
// already writable when EPOLLOUT is armed, an event fires immediately, so
// the arm-after-EAGAIN window loses no edge.
func (sh *pollShard) mod(pc *pollConn, events uint32) error {
	ev := syscall.EpollEvent{Events: events, Fd: int32(pc.fd)}
	if err := syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_MOD, pc.fd, &ev); err != nil {
		return os.NewSyscallError("epoll_ctl", err)
	}
	return nil
}

// pollConn is a poller-owned TCP connection: transport.EventConn on the read
// side (non-blocking reads through a frameBuf), transport.FrameConn on the
// write side (short writes park on wpend and re-arm EPOLLOUT). It holds zero
// goroutines; the shard goroutine and the caller's dispatcher/writer-pool
// workers do all the work.
type pollConn struct {
	sh    *pollShard
	f     *os.File // keeps the dup'd descriptor alive against the finalizer
	fd    int
	chunk int

	rmu   sync.Mutex
	rcond *sync.Cond // wakes blocking Recv on the fallback (no-dispatcher) path
	fb    frameBuf
	rcb   func()
	rerr  error // sticky: EOF, reset, corrupt stream, or local close

	wmu   sync.Mutex
	wpend []byte // unwritten tail after a short write, draining via EPOLLOUT
	warm  bool   // EPOLLOUT currently armed
	werr  error  // sticky write-side error

	// wakeNs is the span clock reading of the latest read-side readiness
	// edge, captured only while a tracer is active (span.Active gate: one
	// atomic load per edge, one store when tracing). The span pipeline
	// reads it through TraceWakeNs to stamp the poll_wake stage.
	wakeNs atomic.Int64

	closed atomic.Bool
}

var (
	_ transport.EventConn = (*pollConn)(nil)
	_ transport.FrameConn = (*pollConn)(nil)
)

// newPollConn takes ownership of tc: dup the fd out of the runtime's
// netpoller, close the original, and register the dup with one of p's
// shards (round-robin).
func newPollConn(tc *net.TCPConn, p *Poller, cfg config) (*pollConn, error) {
	_ = tc.SetNoDelay(true)
	f, err := tc.File() // dup sharing the file description
	_ = tc.Close()
	if err != nil {
		return nil, err
	}
	fd := int(f.Fd())
	// File() may have switched the description to blocking mode; every read
	// and write below depends on it being non-blocking, so set it
	// explicitly rather than trusting the dup's inherited state.
	if err := syscall.SetNonblock(fd, true); err != nil {
		_ = f.Close()
		return nil, os.NewSyscallError("setnonblock", err)
	}
	if cfg.sockBuf > 0 {
		_ = syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_RCVBUF, cfg.sockBuf)
		_ = syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_SNDBUF, cfg.sockBuf)
	}
	pc := &pollConn{sh: p.pick(), f: f, fd: fd, chunk: cfg.readChunk}
	pc.rcond = sync.NewCond(&pc.rmu)
	if err := pc.sh.add(pc); err != nil {
		_ = f.Close()
		return nil, err
	}
	return pc, nil
}

// SetReadable implements transport.EventConn. Per the contract fn also fires
// once immediately: bytes may have arrived between accept and registration,
// and with edge triggering that edge has already come and gone.
func (pc *pollConn) SetReadable(fn func()) {
	pc.rmu.Lock()
	pc.rcb = fn
	pc.rmu.Unlock()
	if fn != nil {
		fn()
	}
}

// onReadable runs on the shard goroutine for every read-side edge (data,
// half-close, error) and on local close. It must not block: wake a parked
// Recv and push the conn onto the dispatcher's ready ring via the callback.
func (pc *pollConn) onReadable() {
	if span.Active() {
		pc.wakeNs.Store(span.Now())
	}
	pc.rmu.Lock()
	fn := pc.rcb
	pc.rcond.Broadcast()
	pc.rmu.Unlock()
	if fn != nil {
		fn()
	}
}

// TraceWakeNs returns the span clock reading of the latest readiness edge
// (0 when tracing is off or no edge has fired). The arrival path uses it to
// stamp the poll_wake stage of sampled ops decoded from this connection.
func (pc *pollConn) TraceWakeNs() int64 { return pc.wakeNs.Load() }

// TryRecv implements transport.EventConn. The edge-triggered invariant lives
// here: (false, nil) is returned only after the kernel buffer was read to
// EAGAIN with no complete frame assembled, so any later byte raises a fresh
// edge → onReadable → ready ring, and no wakeup is ever lost. Returning a
// frame while more bytes wait (buffered or in the kernel) is safe because
// the dispatcher keeps the conn scheduled until TryRecv reports empty.
func (pc *pollConn) TryRecv() (wire.Msg, bool, error) {
	pc.rmu.Lock()
	defer pc.rmu.Unlock()
	return pc.tryRecvLocked()
}

func (pc *pollConn) tryRecvLocked() (wire.Msg, bool, error) {
	for {
		m, ok, err := pc.fb.next()
		if err != nil {
			// A framing error poisons the stream; no resynchronization.
			pc.rerr = err
			return nil, false, err
		}
		if ok {
			return m, true, nil
		}
		if pc.rerr != nil {
			return nil, false, pc.rerr
		}
		n, err := syscall.Read(pc.fd, pc.fb.space(pc.chunk))
		if n > 0 {
			pc.fb.advance(n)
			continue
		}
		switch err {
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			if pc.fb.pending() > 0 {
				partialReads.Add(1)
			}
			return nil, false, nil
		case nil: // n == 0: orderly peer close
			pc.rerr = io.EOF
		default:
			if pc.closed.Load() {
				pc.rerr = transport.ErrClosed
			} else {
				pc.rerr = os.NewSyscallError("read", err)
			}
		}
		return nil, false, pc.rerr
	}
}

// Recv implements transport.Conn for the no-dispatcher fallback: park on the
// condition variable until an edge delivers bytes. Wait atomically releases
// rmu, and onReadable broadcasts under rmu, so an edge arriving between the
// empty read and the Wait cannot be lost.
func (pc *pollConn) Recv() (wire.Msg, error) {
	pc.rmu.Lock()
	defer pc.rmu.Unlock()
	for {
		m, ok, err := pc.tryRecvLocked()
		if err != nil {
			return nil, err
		}
		if ok {
			return m, nil
		}
		pc.rcond.Wait()
	}
}

// Send implements transport.Conn (compatibility path; the pooled writers use
// SendFrame).
func (pc *pollConn) Send(m wire.Msg) error {
	frame, err := wire.AppendFrame(nil, m)
	if err != nil {
		return err
	}
	return pc.SendFrame(frame)
}

// SendFrame implements transport.FrameConn. The blob goes straight to the
// non-blocking fd; when the socket buffer fills mid-blob the remainder is
// copied to wpend (the contract forbids retaining the blob) and EPOLLOUT is
// armed for the poller to finish the drain — a slow peer therefore never
// blocks a writer-pool worker, it just accumulates pending bytes.
func (pc *pollConn) SendFrame(frames []byte) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	if pc.werr != nil {
		return pc.werr
	}
	transport.AccountTCPWrite(len(frames))
	if len(pc.wpend) > 0 {
		// An earlier short write is still draining; queue behind it to
		// preserve FIFO bytes on the wire.
		pc.wpend = append(pc.wpend, frames...)
		return nil
	}
	return pc.writeLocked(frames)
}

// writeLocked writes blob until done or EAGAIN; on EAGAIN the remainder
// parks on wpend and EPOLLOUT is armed. Called with wmu held.
func (pc *pollConn) writeLocked(blob []byte) error {
	for len(blob) > 0 {
		n, err := syscall.Write(pc.fd, blob)
		if n > 0 {
			blob = blob[n:]
		}
		switch err {
		case nil:
		case syscall.EINTR:
		case syscall.EAGAIN:
			pc.wpend = append(pc.wpend, blob...)
			return pc.armWrite()
		default:
			pc.werr = os.NewSyscallError("write", err)
			return pc.werr
		}
	}
	return nil
}

// armWrite adds EPOLLOUT to the interest set. Called with wmu held.
func (pc *pollConn) armWrite() error {
	if pc.warm {
		return nil
	}
	if err := pc.sh.mod(pc, writeEvents); err != nil {
		pc.werr = err
		return err
	}
	pc.warm = true
	rearms.Add(1)
	return nil
}

// flushPending runs on the shard goroutine when EPOLLOUT reports the socket
// writable again: drain wpend, then drop back to the read-only interest set.
// An EAGAIN mid-drain simply returns — the interest set still has EPOLLOUT,
// so the next writability edge resumes.
func (pc *pollConn) flushPending() {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	if pc.werr != nil || !pc.warm {
		return
	}
	for len(pc.wpend) > 0 {
		n, err := syscall.Write(pc.fd, pc.wpend)
		if n > 0 {
			pc.wpend = pc.wpend[n:]
		}
		switch err {
		case nil:
		case syscall.EINTR:
		case syscall.EAGAIN:
			return
		default:
			// The write side is dead; the matching reset/EOF surfaces on
			// the read side as its own edge, which retires the conn.
			pc.werr = os.NewSyscallError("write", err)
			return
		}
	}
	pc.wpend = nil // release the drained backing array
	if err := pc.sh.mod(pc, readEvents); err == nil {
		pc.warm = false
	}
}

// Close implements transport.Conn, idempotently. Ordering matters twice
// over: deregister before closing the fd (fd-number reuse, see deregister),
// and set the sticky errors under their mutexes before closing so no reader
// or writer can issue a syscall on a closed — possibly reused — fd: both
// paths re-check their sticky error under the mutex before every syscall,
// and the fd is closed while holding wmu after rerr is already published.
func (pc *pollConn) Close() error {
	if !pc.closed.CompareAndSwap(false, true) {
		return nil
	}
	pc.sh.deregister(pc)
	pc.rmu.Lock()
	if pc.rerr == nil {
		pc.rerr = transport.ErrClosed
	}
	fn := pc.rcb
	pc.rcond.Broadcast()
	pc.rmu.Unlock()
	pc.wmu.Lock()
	if pc.werr == nil {
		pc.werr = transport.ErrClosed
	}
	err := pc.f.Close()
	pc.wmu.Unlock()
	// Fire the readable callback per the EventConn close contract, so a
	// dispatcher drains to the error and retires the conn.
	if fn != nil {
		fn()
	}
	return err
}

// pollListener accepts TCP connections and registers each with the poller.
type pollListener struct {
	l   net.Listener
	p   *Poller
	cfg config
}

// ListenTCP starts a poller-backed TCP listener on addr: every accepted
// connection implements transport.EventConn (and FrameConn) with zero
// dedicated goroutines, registered with the process Default poller unless
// WithPoller overrides it.
func ListenTCP(addr string, opts ...Option) (transport.Listener, error) {
	cfg := buildConfig(opts)
	p := cfg.poller
	if p == nil {
		var err error
		if p, err = Default(); err != nil {
			return nil, err
		}
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &pollListener{l: l, p: p, cfg: cfg}, nil
}

// DialTCP connects to addr and hands the connection to the poller: the
// returned conn is a transport.EventConn/FrameConn identical to an accepted
// one, with its blocking Recv woken by a shard loop instead of the runtime
// netpoller. Clients driving many connections from one process (benchmarks,
// load generators) use it so their reads share the poller's spin-then-park
// wakeup path rather than each parking in the runtime poller.
func DialTCP(addr string, opts ...Option) (transport.Conn, error) {
	cfg := buildConfig(opts)
	p := cfg.poller
	if p == nil {
		var err error
		if p, err = Default(); err != nil {
			return nil, err
		}
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tc, ok := c.(*net.TCPConn)
	if !ok {
		_ = c.Close()
		return nil, fmt.Errorf("netpoll: non-TCP connection %T", c)
	}
	return newPollConn(tc, p, cfg)
}

// Accept implements transport.Listener.
func (pl *pollListener) Accept() (transport.Conn, error) {
	c, err := pl.l.Accept()
	if err != nil {
		return nil, err
	}
	tc, ok := c.(*net.TCPConn)
	if !ok {
		_ = c.Close()
		return nil, fmt.Errorf("netpoll: non-TCP connection %T", c)
	}
	return newPollConn(tc, pl.p, pl.cfg)
}

// Close implements transport.Listener.
func (pl *pollListener) Close() error { return pl.l.Close() }

// Addr implements transport.Listener.
func (pl *pollListener) Addr() string { return pl.l.Addr().String() }

// init advertises the capability: transport.ListenEventTCP resolves to the
// poller-backed listener on Linux and to the dedicated-reader path
// elsewhere.
func init() {
	transport.RegisterPoller(func(addr string) (transport.Listener, error) {
		return ListenTCP(addr)
	})
}
