//go:build linux

package netpoll

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// newTestPoller builds a private poller torn down with the test.
func newTestPoller(t *testing.T) *Poller {
	t.Helper()
	p, err := NewPoller()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// acceptOne accepts a single connection in the background.
func acceptOne(t *testing.T, ln transport.Listener) <-chan transport.Conn {
	t.Helper()
	ch := make(chan transport.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(ch)
			return
		}
		ch <- c
	}()
	return ch
}

func waitConn(t *testing.T, ch <-chan transport.Conn) transport.Conn {
	t.Helper()
	select {
	case c, ok := <-ch:
		if !ok {
			t.Fatal("accept failed")
		}
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	return nil
}

// TestPollConnDispatcherRoundTrip is the headline path: an accepted TCP conn
// registered with a Dispatcher, drained by epoll edges with zero dedicated
// goroutines, retiring exactly once when the peer hangs up.
func TestPollConnDispatcherRoundTrip(t *testing.T) {
	p := newTestPoller(t)
	ln, err := ListenTCP("127.0.0.1:0", WithPoller(p))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := acceptOne(t, ln)
	cli, err := transport.DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := waitConn(t, connCh)
	ec, ok := srv.(transport.EventConn)
	if !ok {
		t.Fatalf("accepted conn %T is not an EventConn", srv)
	}

	d := transport.NewDispatcher(1, 8)
	defer d.Close()
	var mu sync.Mutex
	var got []wire.Msg
	var finishes atomic.Int32
	done := make(chan struct{})
	d.Add(ec,
		func(m wire.Msg) bool {
			mu.Lock()
			got = append(got, m)
			mu.Unlock()
			return true
		},
		func() {
			if finishes.Add(1) == 1 {
				close(done)
			}
		})

	msgs := testMsgs(t, 9)
	for _, m := range msgs {
		if err := cli.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= len(msgs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d messages", n, len(msgs))
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	assertSameMsgs(t, got, msgs)
	mu.Unlock()

	cli.Close() // peer hangup → EOF edge → retire
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("finish hook never ran after peer close")
	}
	if n := finishes.Load(); n != 1 {
		t.Fatalf("finish ran %d times, want exactly once", n)
	}
	if n := d.Len(); n != 0 {
		t.Fatalf("%d dispatchConns leaked", n)
	}
}

// TestPollConnTinyReadChunk forces reassembly across short reads: the peer
// delivers a frame in two pieces with a pause, so the read side must park an
// incomplete frame (counted in conn.partial_reads) and finish it on the next
// edge. WithReadChunk(3) additionally makes every kernel read tiny.
func TestPollConnTinyReadChunk(t *testing.T) {
	p := newTestPoller(t)
	ln, err := ListenTCP("127.0.0.1:0", WithPoller(p), WithReadChunk(3))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := acceptOne(t, ln)
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	srv := waitConn(t, connCh)
	defer srv.Close()

	msgs := testMsgs(t, 8)
	stream := encodeStream(t, msgs)
	before := PartialReads()
	// First piece ends mid-frame: the server reads it to EAGAIN and must
	// hold the partial bytes.
	if _, err := raw.Write(stream[:5]); err != nil {
		t.Fatal(err)
	}
	gotCh := make(chan []wire.Msg, 1)
	go func() {
		var got []wire.Msg
		for range msgs {
			m, err := srv.Recv()
			if err != nil {
				break
			}
			got = append(got, m)
		}
		gotCh <- got
	}()
	deadline := time.Now().Add(5 * time.Second)
	for PartialReads() == before {
		if time.Now().After(deadline) {
			t.Fatal("split frame never counted as a partial read")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := raw.Write(stream[5:]); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-gotCh:
		assertSameMsgs(t, got, msgs)
	case <-time.After(5 * time.Second):
		t.Fatal("messages never completed after the second piece")
	}
}

// TestPollConnShortWrite fills a tiny socket buffer with a megabyte-scale
// blob: the send must park the remainder, arm EPOLLOUT, and the poller must
// drain it — byte-identical — while SendFrame itself never blocks.
func TestPollConnShortWrite(t *testing.T) {
	p := newTestPoller(t)
	ln, err := ListenTCP("127.0.0.1:0", WithPoller(p), WithSockBuf(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := acceptOne(t, ln)
	cli, err := transport.DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := waitConn(t, connCh)
	defer srv.Close()

	big := wire.JoinResp{Site: 7, Text: strings.Repeat("z", 1<<20)}
	frame, err := wire.AppendFrame(nil, big)
	if err != nil {
		t.Fatal(err)
	}
	before := Rearms()
	start := time.Now()
	if err := srv.(transport.FrameConn).SendFrame(frame); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("SendFrame blocked %v on a full socket buffer", elapsed)
	}
	if Rearms() == before {
		t.Fatal("1MiB into a 4KiB socket buffer never armed EPOLLOUT")
	}
	m, err := cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body(t, m), body(t, big)) {
		t.Fatal("blob corrupted across the short-write drain")
	}
}

// TestPollConnCorruptStream sends garbage that can never frame; the
// dispatcher must retire the conn with an error instead of stalling.
func TestPollConnCorruptStream(t *testing.T) {
	p := newTestPoller(t)
	ln, err := ListenTCP("127.0.0.1:0", WithPoller(p))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := acceptOne(t, ln)
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	srv := waitConn(t, connCh)

	d := transport.NewDispatcher(1, 8)
	defer d.Close()
	done := make(chan struct{})
	d.Add(srv.(transport.EventConn),
		func(wire.Msg) bool { return true },
		func() { close(done) })
	if _, err := raw.Write(bytes.Repeat([]byte{0xff}, 16)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("corrupt stream never retired the conn")
	}
	if n := d.Len(); n != 0 {
		t.Fatalf("%d dispatchConns leaked", n)
	}
}

// TestPollConnCloseIdempotent double-closes from both the conn and the
// poller side.
func TestPollConnCloseIdempotent(t *testing.T) {
	p := newTestPoller(t)
	ln, err := ListenTCP("127.0.0.1:0", WithPoller(p))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := acceptOne(t, ln)
	cli, err := transport.DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := waitConn(t, connCh)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := p.Close(); err != nil { // closes the (already closed) conn again
		t.Fatal(err)
	}
	if _, _, err := srv.(transport.EventConn).TryRecv(); err == nil {
		t.Fatal("TryRecv on a closed conn returned no error")
	}
}

// TestPollerCloseRetiresConns tears down a poller with live registered
// connections and checks they all surface errors (so dispatchers retire
// them).
func TestPollerCloseRetiresConns(t *testing.T) {
	p, err := NewPoller()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := ListenTCP("127.0.0.1:0", WithPoller(p))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const conns = 4
	var srvs []transport.Conn
	for i := 0; i < conns; i++ {
		connCh := acceptOne(t, ln)
		cli, err := transport.DialTCP(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		srvs = append(srvs, waitConn(t, connCh))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i, s := range srvs {
		if _, _, err := s.(transport.EventConn).TryRecv(); err == nil {
			t.Fatalf("conn %d alive after poller close", i)
		}
	}
}

// TestListenEventTCPProbe checks the capability probe resolves to the poller
// on Linux.
func TestListenEventTCPProbe(t *testing.T) {
	if !transport.PollerCapable() {
		t.Fatal("PollerCapable false on Linux with netpoll imported")
	}
	ln, err := transport.ListenEventTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := acceptOne(t, ln)
	cli, err := transport.DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := waitConn(t, connCh)
	defer srv.Close()
	if _, ok := srv.(transport.EventConn); !ok {
		t.Fatalf("ListenEventTCP accepted %T, not an EventConn", srv)
	}
}
