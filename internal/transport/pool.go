package transport

import (
	"runtime"
	"sync"
)

// WriterPool drains many pooled Senders with a fixed set of worker
// goroutines. A dedicated-mode Sender pins one goroutine per connection for
// its whole lifetime, almost all of it parked in cond.Wait on an idle
// session; at 100k connections that is 100k goroutines (and their stacks)
// doing nothing. In pooled mode a Sender owns only its queue and a
// "scheduled" bit: the first enqueue after a drain places the sender on the
// pool's ready ring, one worker pops it, swap-drains the queue exactly like
// the dedicated writer, and the sender leaves the ring again. Idle cost is
// the queue header; write cost is unchanged (same coalesced single-SendFrame
// drain); the goroutine count is O(workers), not O(connections).
//
// Per-sender FIFO is preserved because the scheduled bit guarantees at most
// one worker services a given sender at a time, and a sender that is still
// hot after one drained batch goes to the back of the ring — round-robin
// fairness across hot connections instead of head-of-line capture of a
// worker. The known cost of sharing: a worker blocked in a slow peer's
// SendFrame is unavailable to other senders, so a deployment expecting
// pathologically slow consumers should size the pool above the expected
// number of simultaneously-stalled peers, or keep dedicated mode.
type WriterPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []*Sender // circular buffer: ring[head..head+n) are ready
	head   int
	n      int
	closed bool

	wg      sync.WaitGroup
	workers int
}

// NewWriterPool starts a pool of workers writer goroutines (GOMAXPROCS when
// workers <= 0). Senders attach via NewPooledSender.
func NewWriterPool(workers int) *WriterPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &WriterPool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool size.
func (p *WriterPool) Workers() int { return p.workers }

// ready places s at the back of the ready ring. Called by a sender whose
// queue just became non-empty (push) or that is still hot after a drained
// batch (serviceOnce). On a closed pool the sender is serviced by a
// spawned goroutine instead, so Close semantics (drain, then release
// waiters) survive pool shutdown ordering mistakes.
func (p *WriterPool) ready(s *Sender) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		go s.serviceOnce()
		return
	}
	p.push(s)
	p.cond.Signal()
	p.mu.Unlock()
}

// push appends s at the tail of the circular ring, doubling the buffer when
// full. Called with p.mu held.
func (p *WriterPool) push(s *Sender) {
	if p.n == len(p.ring) {
		grown := make([]*Sender, maxInt(8, 2*len(p.ring)))
		for i := 0; i < p.n; i++ {
			grown[i] = p.ring[(p.head+i)%len(p.ring)]
		}
		p.ring, p.head = grown, 0
	}
	p.ring[(p.head+p.n)%len(p.ring)] = s
	p.n++
}

// pop removes and returns the head of the ring (nil when empty). Called
// with p.mu held. The vacated slot is zeroed so a sender that closes while
// off the ring is not pinned against the GC.
func (p *WriterPool) pop() *Sender {
	if p.n == 0 {
		return nil
	}
	s := p.ring[p.head]
	p.ring[p.head] = nil
	p.head = (p.head + 1) % len(p.ring)
	p.n--
	return s
}

func (p *WriterPool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.n == 0 && !p.closed {
			p.cond.Wait()
		}
		s := p.pop()
		p.mu.Unlock()
		if s == nil {
			return // closed and drained
		}
		s.serviceOnce()
	}
}

// Close drains the ready ring and stops the workers. Senders attached to
// the pool remain usable: enqueues after Close fall back to per-drain
// spawned goroutines (see ready), so the pool can be torn down before or
// after its senders without stranding queued messages.
func (p *WriterPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
