package transport

import (
	"sync"
	"sync/atomic"
)

// poolTask is one unit of writer-pool work: a hot Sender taking a service
// turn, or one shard's chunk of a parallel broadcast fan-out (fanout.go).
// Both are pushed as pointers, so the interface costs no allocation.
type poolTask interface {
	service()
}

// WriterPool drains many pooled Senders with a fixed set of worker
// goroutines. A dedicated-mode Sender pins one goroutine per connection for
// its whole lifetime, almost all of it parked in cond.Wait on an idle
// session; at 100k connections that is 100k goroutines (and their stacks)
// doing nothing. In pooled mode a Sender owns only its queue and a
// "scheduled" bit: the first enqueue after a drain places the sender on the
// pool's ready ring, one worker pops it, swap-drains the queue exactly like
// the dedicated writer, and the sender leaves the ring again. Idle cost is
// the queue header; write cost is unchanged (same coalesced single-SendFrame
// drain); the goroutine count is O(workers), not O(connections).
//
// The ready ring is sharded (workRing, DESIGN.md §18): each sender is
// assigned a sticky shard at attach time, workers drain their home shard and
// steal from siblings before parking. Per-sender FIFO is preserved because
// the scheduled bit guarantees at most one worker services a given sender at
// a time — stealing only changes WHICH worker takes the turn — and a sender
// that is still hot after one drained batch goes to the back of its shard:
// round-robin fairness across hot connections instead of head-of-line
// capture of a worker. The known cost of sharing: a worker blocked in a slow
// peer's SendFrame is unavailable to other senders, so a deployment
// expecting pathologically slow consumers should size the pool above the
// expected number of simultaneously-stalled peers, or keep dedicated mode.
type WriterPool struct {
	ring *workRing[poolTask]
	// assign hands out sticky shards round-robin as senders attach.
	assign atomic.Uint32

	wg      sync.WaitGroup
	workers int
}

// NewWriterPool starts a pool of workers writer goroutines (GOMAXPROCS when
// workers <= 0). Senders attach via NewPooledSender. The ready ring defaults
// to one shard per worker; WithShards overrides (1 = the single-ring §15
// layout).
func NewWriterPool(workers int, opts ...RingOption) *WriterPool {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	cfg := buildRingConfig(opts)
	p := &WriterPool{workers: workers, ring: newWorkRing[poolTask](cfg.shards, workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i % p.ring.size())
	}
	return p
}

// Workers returns the pool size.
func (p *WriterPool) Workers() int { return p.workers }

// Shards returns the ready-ring shard count.
func (p *WriterPool) Shards() int { return p.ring.size() }

// assignShard hands out the next sticky shard (round-robin).
func (p *WriterPool) assignShard() int {
	return int(p.assign.Add(1)-1) % p.ring.size()
}

// QueueLen returns the number of tasks waiting across all ring shards —
// scheduled senders and fan-out chunks not yet picked up by a worker.
func (p *WriterPool) QueueLen() int { return p.ring.queued() }

// ready places t at the back of its shard's ready ring. Called by a sender
// whose queue just became non-empty (push), by one still hot after a drained
// batch (serviceOnce), and by the parallel fan-out scattering chunks. On a
// closed pool the task is serviced by a spawned goroutine instead, so Close
// semantics (drain, then release waiters) survive pool shutdown ordering
// mistakes.
func (p *WriterPool) ready(t poolTask, shard int) {
	depth, ok := p.ring.push(shard, t)
	if !ok {
		go t.service()
		return
	}
	recordShardDepth(depth)
}

func (p *WriterPool) worker(home int) {
	defer p.wg.Done()
	for {
		t, ok := p.ring.next(home)
		if !ok {
			return // closed and drained
		}
		t.service()
	}
}

// Close drains the ready ring and stops the workers. Senders attached to
// the pool remain usable: enqueues after Close fall back to per-drain
// spawned goroutines (see ready), so the pool can be torn down before or
// after its senders without stranding queued messages.
func (p *WriterPool) Close() {
	p.ring.close()
	p.wg.Wait()
}
