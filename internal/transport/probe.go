package transport

// pollerListen, when non-nil, builds a listener whose accepted connections
// implement EventConn over real TCP — set by the platform poller package
// (netpoll) from its init on capable platforms. Registration is init-time
// only, so reads need no synchronization.
var pollerListen func(addr string) (Listener, error)

// RegisterPoller installs the platform poller's listener constructor. It is
// called from the poller package's init; calling it later than init is a
// programming error (the variable is read without synchronization).
func RegisterPoller(listen func(addr string) (Listener, error)) {
	pollerListen = listen
}

// PollerCapable reports whether a platform readiness poller is registered,
// i.e. whether ListenEventTCP returns event-capable connections. Callers
// that require the poller (e.g. -poller=on) check this and fail loudly
// instead of silently running dedicated readers.
func PollerCapable() bool { return pollerListen != nil }

// ListenEventTCP starts a TCP listener whose accepted connections implement
// EventConn when the platform has a readiness poller, and plain dedicated-
// reader connections otherwise. This is the "auto" knob servers default to:
// combined with the accept loop's EventConn type assertion, one code path
// serves both worlds and the poller is pure capability, never requirement.
func ListenEventTCP(addr string) (Listener, error) {
	if pollerListen == nil {
		return ListenTCP(addr)
	}
	return pollerListen(addr)
}
