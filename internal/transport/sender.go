package transport

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/wire"
)

// Sender serializes outbound messages onto a connection through an
// unbounded FIFO queue drained by one writer goroutine. Enqueueing never
// blocks, so engine mutexes are never held across a potentially blocking
// network write — the classic recipe for distributed deadlock under
// backpressure. Both the editor client and the notifier servers use it;
// it is the single owner of its connection's write side.
//
// The writer drains by swapping the entire pending queue out under one
// lock acquisition, then — on a FrameConn — assembles every drained
// message into one blob of frames and hands it over in a single
// SendFrame call: one buffered write, one flush, however deep the queue
// got. Consecutive encode-once broadcasts in the drain coalesce into
// TOpBatch frames, so a keystroke burst toward a slow reader amortizes
// framing and syscalls instead of multiplying them.
type Sender struct {
	conn Conn
	fc   FrameConn // non-nil when conn supports the pre-encoded fast path

	// closedErr is what Enqueue returns after a clean Close; packages keep
	// their own sentinel (repro.ErrClosed, server.ErrClosed).
	closedErr error

	// pool, when non-nil, selects pooled mode: no dedicated writer
	// goroutine exists, and the queue is drained by the pool's shared
	// workers (see WriterPool). nil is dedicated mode — the reference
	// semantics the differential tests compare pooled mode against.
	pool *WriterPool
	// shard is this sender's sticky ready-ring shard, assigned once at
	// attach time (pooled mode only) so FIFO and fan-out chunking never
	// depend on where an enqueue happens to run.
	shard int

	mu        sync.Mutex
	cond      *sync.Cond
	q         []outItem
	closed    bool
	err       error
	highWater int
	// sched (pooled mode only) is true while the sender sits on the pool's
	// ready ring or a worker is servicing it — the exclusivity bit that
	// keeps drains FIFO with at most one servicer at a time. Invariant
	// under mu: len(q) > 0 ⇒ sched.
	sched bool
	// finished (pooled mode only) records that done has been closed, since
	// both Close (idle sender) and a worker's final drain may get there.
	finished bool
	// spare is the recycled queue storage handed back after a pooled drain
	// (the dedicated writer keeps its batch local to run instead).
	spare []outItem
	// queueHist, when non-nil, observes the queue depth at every enqueue.
	// Histogram.Record is lock-free, so sampling under s.mu is safe.
	queueHist *obs.Histogram

	done chan struct{}

	// tracer, when set, receives span stamps (enqueue, drain, encode,
	// write) for sampled items passing through this sender. Atomic so
	// SetTracer is race-free against live traffic; a nil tracer costs one
	// atomic load per push and per drain.
	tracer atomic.Pointer[span.Tracer]

	// Writer-goroutine scratch, reused across drains so steady-state
	// sending allocates nothing. In pooled mode the sched bit guarantees a
	// single servicer, so the scratch is still single-owner.
	scratch []byte
	items   []wire.FrameItem
}

// outItem is one queued message: either an ordinary Msg or one destination
// of an encode-once broadcast (bc non-nil), never both.
type outItem struct {
	m  wire.Msg
	bc *wire.Broadcast
	to int
	ts core.Timestamp
}

// NewSender starts the writer goroutine for conn. closedErr, when non-nil,
// is returned by enqueues after Close (ErrClosed otherwise).
func NewSender(conn Conn, closedErr error) *Sender {
	if closedErr == nil {
		closedErr = ErrClosed
	}
	fc, _ := conn.(FrameConn)
	s := &Sender{conn: conn, fc: fc, closedErr: closedErr, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// NewPooledSender creates a Sender in pooled mode: the queue is drained by
// pool's shared workers and the connection costs no goroutine while idle.
// Enqueue/Close/error semantics are identical to NewSender's dedicated
// writer (the differential tests in sender_pool_test.go hold the two modes
// to the same observable behavior). A nil pool falls back to NewSender.
func NewPooledSender(conn Conn, closedErr error, pool *WriterPool) *Sender {
	if pool == nil {
		return NewSender(conn, closedErr)
	}
	if closedErr == nil {
		closedErr = ErrClosed
	}
	fc, _ := conn.(FrameConn)
	s := &Sender{conn: conn, fc: fc, closedErr: closedErr, done: make(chan struct{}), pool: pool}
	s.shard = pool.assignShard()
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Enqueue appends m to the outbound queue; messages leave in enqueue order.
// After a write error it returns that sticky error instead.
func (s *Sender) Enqueue(m wire.Msg) error {
	return s.push(outItem{m: m})
}

// EnqueueBroadcast queues one destination of an encode-once broadcast. It
// always consumes one reference to bc: the caller Retains before calling,
// and the sender Releases after the bytes are written — or right here when
// the enqueue is refused.
func (s *Sender) EnqueueBroadcast(bc *wire.Broadcast, to int, ts core.Timestamp) error {
	if err := s.push(outItem{bc: bc, to: to, ts: ts}); err != nil {
		bc.Release()
		return err
	}
	return nil
}

// SetTracer attaches the op-lifecycle tracer (nil detaches).
func (s *Sender) SetTracer(tr *span.Tracer) { s.tracer.Store(tr) }

// itemCtx extracts the span context an outbound item carries, if any.
func itemCtx(it outItem) span.Context {
	if it.bc != nil {
		return it.bc.Trace
	}
	switch m := it.m.(type) {
	case wire.ClientOp:
		return m.Trace
	case wire.ServerOp:
		return m.Trace
	}
	return span.Context{}
}

// traceEnqueue stamps the send-enqueue stage. Not inlined: it keeps the
// type switch and span call out of push's frame, so the guarded hot path
// pays only the tracer load when tracing is off.
//
//go:noinline
func (s *Sender) traceEnqueue(tr *span.Tracer, it outItem) {
	tr.Stamp(itemCtx(it), span.StageSendEnqueue)
}

// traceBatch stamps one stage for every sampled item in a drained batch,
// under a single clock reading.
//
//go:noinline
func (s *Sender) traceBatch(tr *span.Tracer, batch []outItem, stage span.Stage) {
	ns := span.Now()
	for i := range batch {
		if c := itemCtx(batch[i]); c.Sampled() {
			tr.StampAt(c, stage, ns)
		}
	}
}

// traceWrite stamps the write stage for every sampled item after the bytes
// left; in finish-on-write tracers this also completes the spans.
//
//go:noinline
func (s *Sender) traceWrite(tr *span.Tracer, batch []outItem) {
	for i := range batch {
		if c := itemCtx(batch[i]); c.Sampled() {
			tr.StampWrite(c)
		}
	}
}

func (s *Sender) push(it outItem) error {
	if tr := s.tracer.Load(); tr != nil {
		s.traceEnqueue(tr, it)
	}
	s.mu.Lock()
	if s.closed {
		err := s.err
		s.mu.Unlock()
		if err != nil {
			return err
		}
		return s.closedErr
	}
	s.q = append(s.q, it)
	if len(s.q) > s.highWater {
		s.highWater = len(s.q)
	}
	if s.queueHist != nil {
		s.queueHist.RecordInt(len(s.q))
	}
	if s.pool == nil {
		s.cond.Signal()
		s.mu.Unlock()
		return nil
	}
	// Pooled: schedule the sender on the first enqueue after a drain. The
	// sched bit makes repeat enqueues free and guarantees one servicer.
	wake := !s.sched
	s.sched = true
	s.mu.Unlock()
	if wake {
		s.pool.ready(s, s.shard)
	}
	return nil
}

// SetQueueHistogram samples the pending-queue depth into h at every enqueue
// (nil stops sampling). The live depth distribution complements HighWater:
// the maximum says how bad backpressure ever got, the histogram says how
// often.
func (s *Sender) SetQueueHistogram(h *obs.Histogram) {
	s.mu.Lock()
	s.queueHist = h
	s.mu.Unlock()
}

// Err returns the sticky write error, if any.
func (s *Sender) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// HighWater reports the deepest the pending queue has ever been — the
// backpressure a slow reader exerted. It only grows.
func (s *Sender) HighWater() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.highWater
}

// Close drains what is already queued (best effort) and stops the writer.
func (s *Sender) Close() {
	s.mu.Lock()
	if s.pool != nil {
		// Pooled: len(q) > 0 implies sched, so an unscheduled sender is
		// already drained and nothing will come service it — release the
		// waiters here. A scheduled sender's worker closes done at its
		// final empty drain.
		if !s.closed {
			s.closed = true
		}
		fin := !s.sched && !s.finished
		if fin {
			s.finished = true
		}
		s.mu.Unlock()
		if fin {
			close(s.done)
		}
		<-s.done
		return
	}
	if !s.closed {
		s.closed = true
		s.cond.Signal()
	}
	s.mu.Unlock()
	<-s.done
}

func (s *Sender) run() {
	defer close(s.done)
	var batch []outItem
	for {
		s.mu.Lock()
		for len(s.q) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.q) == 0 {
			s.mu.Unlock()
			return // closed and drained
		}
		// Swap the whole pending queue out under this one acquisition;
		// the freshly cleared previous batch becomes the next queue.
		batch, s.q = s.q, batch[:0]
		s.mu.Unlock()

		err := s.write(batch)
		for i := range batch {
			if batch[i].bc != nil {
				batch[i].bc.Release()
			}
			batch[i] = outItem{}
		}
		if err != nil {
			s.fail(err)
			return
		}
	}
}

// serviceOnce is one turn of a pool worker on this sender: swap-drain one
// batch, write it (same coalesced single-SendFrame path as the dedicated
// writer), then either re-enqueue at the back of the ready ring (still hot —
// round-robin fairness) or clear the sched bit. The final check for new
// enqueues happens under the same mutex push appends under, so clearing
// sched cannot strand a message: any push after the clear sees sched ==
// false and re-schedules.
func (s *Sender) serviceOnce() {
	s.mu.Lock()
	if len(s.q) == 0 {
		s.finishLocked()
		return
	}
	batch := s.q
	s.q = s.spare[:0]
	s.spare = nil
	s.mu.Unlock()

	err := s.write(batch)
	for i := range batch {
		if batch[i].bc != nil {
			batch[i].bc.Release()
		}
		batch[i] = outItem{}
	}
	if err != nil {
		s.fail(err)
		s.mu.Lock()
		s.finishLocked()
		return
	}
	s.mu.Lock()
	s.spare = batch[:0]
	if len(s.q) == 0 {
		s.finishLocked()
		return
	}
	s.mu.Unlock()
	s.pool.ready(s, s.shard)
}

// service is one pool-worker turn on this sender (poolTask).
func (s *Sender) service() { s.serviceOnce() }

// finishLocked ends a pooled service turn on an empty queue: clears the
// sched bit and, when the sender is closed and fully drained, closes done
// exactly once. Called with s.mu held; unlocks it.
func (s *Sender) finishLocked() {
	s.sched = false
	fin := s.closed && len(s.q) == 0 && !s.finished
	if fin {
		s.finished = true
	}
	s.mu.Unlock()
	if fin {
		close(s.done)
	}
}

// fail records the sticky error and releases anything queued behind the
// failed write; later enqueues see the error immediately.
func (s *Sender) fail(err error) {
	s.mu.Lock()
	s.err = err
	s.closed = true
	rest := s.q
	s.q = nil
	s.mu.Unlock()
	for i := range rest {
		if rest[i].bc != nil {
			rest[i].bc.Release()
		}
	}
}

// write sends one drained batch: a single coalesced SendFrame on the fast
// path, message-by-message Sends on the compatibility path.
func (s *Sender) write(batch []outItem) error {
	tr := s.tracer.Load()
	if tr != nil {
		s.traceBatch(tr, batch, span.StageDrain)
	}
	if s.fc == nil {
		for _, it := range batch {
			m := it.m
			if it.bc != nil {
				m = it.bc.ServerOp(it.to, it.ts)
			}
			if err := s.conn.Send(m); err != nil {
				return err
			}
			senderMsgs.Add(1)
			senderFlushes.Add(1)
		}
		if tr != nil {
			s.traceWrite(tr, batch)
		}
		return nil
	}
	s.scratch = s.scratch[:0]
	for i := 0; i < len(batch); {
		if batch[i].bc == nil {
			var err error
			if s.scratch, err = wire.AppendFrame(s.scratch, batch[i].m); err != nil {
				return err
			}
			i++
			continue
		}
		s.items = s.items[:0]
		for ; i < len(batch) && batch[i].bc != nil; i++ {
			s.items = append(s.items, wire.FrameItem{B: batch[i].bc, To: batch[i].to, TS: batch[i].ts})
		}
		s.scratch = wire.AppendFrames(s.scratch, s.items)
		for j := range s.items {
			s.items[j] = wire.FrameItem{}
		}
	}
	if tr != nil {
		s.traceBatch(tr, batch, span.StageEncode)
	}
	if err := s.fc.SendFrame(s.scratch); err != nil {
		return err
	}
	// One drain, one flush round — however many messages it carried.
	senderMsgs.Add(uint64(len(batch)))
	senderFlushes.Add(1)
	if tr != nil {
		s.traceWrite(tr, batch)
	}
	return nil
}
