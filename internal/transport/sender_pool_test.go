package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// collectTokens reads messages from c until want tokens have arrived,
// flattening op batches so the comparison is insensitive to how drains
// happened to coalesce. Tokens render broadcasts as "op:<to>:<t1>" and
// plain messages as "leave:<site>".
func collectTokens(t *testing.T, c Conn, want int) []string {
	t.Helper()
	var out []string
	for len(out) < want {
		m, err := c.Recv()
		if err != nil {
			t.Fatalf("after %d of %d tokens: %v", len(out), want, err)
		}
		switch v := m.(type) {
		case wire.OpBatch:
			for _, so := range v.Ops {
				out = append(out, fmt.Sprintf("op:%d:%d", so.To, so.TS.T1))
			}
		case wire.ServerOp:
			out = append(out, fmt.Sprintf("op:%d:%d", v.To, v.TS.T1))
		case wire.Leave:
			out = append(out, fmt.Sprintf("leave:%d", v.Site))
		default:
			t.Fatalf("unexpected %T", m)
		}
	}
	return out
}

// driveSchedule pushes a fixed mixed schedule of plain messages and
// encode-once broadcasts through s, then closes it (which drains).
func driveSchedule(t *testing.T, s *Sender, n int) {
	t.Helper()
	bc := senderTestBroadcast(t)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			if err := s.Enqueue(wire.Leave{Site: i + 1}); err != nil {
				t.Fatal(err)
			}
			continue
		}
		bc.Retain()
		if err := s.EnqueueBroadcast(bc, i%7+1, core.Timestamp{T1: uint64(i), T2: 1}); err != nil {
			t.Fatal(err)
		}
	}
	bc.Release()
	s.Close()
}

// TestSenderPooledDifferentialFIFO holds pooled mode to the dedicated
// writer's observable behavior: the same enqueue schedule produces the same
// delivered sequence, whatever the drain batching.
func TestSenderPooledDifferentialFIFO(t *testing.T) {
	const n = 300
	run := func(mk func(Conn) *Sender) []string {
		a, b := Pipe(n + 16)
		s := mk(a)
		driveSchedule(t, s, n)
		return collectTokens(t, b, n)
	}
	dedicated := run(func(c Conn) *Sender { return NewSender(c, nil) })
	pool := NewWriterPool(2)
	defer pool.Close()
	pooled := run(func(c Conn) *Sender { return NewPooledSender(c, nil, pool) })
	if len(dedicated) != len(pooled) {
		t.Fatalf("dedicated delivered %d tokens, pooled %d", len(dedicated), len(pooled))
	}
	for i := range dedicated {
		if dedicated[i] != pooled[i] {
			t.Fatalf("token %d: dedicated %q, pooled %q", i, dedicated[i], pooled[i])
		}
	}
}

// TestSenderPooledManyConnsFIFO runs many pooled senders over a pool smaller
// than the connection count with concurrent producers, checking every
// connection still receives its own messages in enqueue order (the sched
// bit's exclusivity) and nothing deadlocks under contention.
func TestSenderPooledManyConnsFIFO(t *testing.T) {
	const conns, msgs = 16, 200
	pool := NewWriterPool(3)
	defer pool.Close()

	type end struct {
		s *Sender
		b Conn
	}
	ends := make([]end, conns)
	for i := range ends {
		a, b := Pipe(msgs + 4)
		ends[i] = end{s: NewPooledSender(a, nil, pool), b: b}
	}
	var wg sync.WaitGroup
	for i := range ends {
		wg.Add(1)
		go func(e end) {
			defer wg.Done()
			for j := 1; j <= msgs; j++ {
				if err := e.s.Enqueue(wire.Leave{Site: j}); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
			e.s.Close()
		}(ends[i])
	}
	for i := range ends {
		for j := 1; j <= msgs; j++ {
			m, err := ends[i].b.Recv()
			if err != nil {
				t.Fatalf("conn %d msg %d: %v", i, j, err)
			}
			if l, ok := m.(wire.Leave); !ok || l.Site != j {
				t.Fatalf("conn %d msg %d: got %#v", i, j, m)
			}
		}
	}
	wg.Wait()
}

// TestSenderPooledCloseDrains mirrors TestSenderCloseDrains in pooled mode:
// everything enqueued before Close reaches the peer, later enqueues are
// refused with the closed sentinel.
func TestSenderPooledCloseDrains(t *testing.T) {
	pool := NewWriterPool(1)
	defer pool.Close()
	a, b := Pipe(256)
	s := NewPooledSender(a, nil, pool)
	for i := 1; i <= 20; i++ {
		if err := s.Enqueue(wire.Leave{Site: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	for i := 1; i <= 20; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if l, ok := m.(wire.Leave); !ok || l.Site != i {
			t.Fatalf("message %d: got %#v", i, m)
		}
	}
	if err := s.Enqueue(wire.Leave{Site: 99}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
}

// TestSenderPooledClosedErrSentinel: the package sentinel survives pooled
// mode, and a refused EnqueueBroadcast still consumes its reference.
func TestSenderPooledClosedErrSentinel(t *testing.T) {
	pool := NewWriterPool(1)
	defer pool.Close()
	sentinel := errors.New("custom closed")
	a, _ := Pipe(4)
	s := NewPooledSender(a, sentinel, pool)
	s.Close()
	if err := s.Enqueue(wire.Leave{Site: 1}); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	bc := senderTestBroadcast(t)
	bc.Retain()
	if err := s.EnqueueBroadcast(bc, 1, core.Timestamp{}); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	bc.Release()
}

// TestSenderPooledStickyError: a dead connection surfaces as a sticky error
// on later enqueues, exactly like the dedicated writer.
func TestSenderPooledStickyError(t *testing.T) {
	pool := NewWriterPool(1)
	defer pool.Close()
	a, b := Pipe(1)
	_ = b.Close()
	_ = a.Close()
	s := NewPooledSender(a, nil, pool)
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.Enqueue(wire.Leave{Site: 1})
		if err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("sticky error %v, want ErrClosed", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sender never recorded the write error")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
}

// TestSenderPooledBatchesUnderBackpressure: the pooled drain keeps the
// coalesced single-SendFrame path — a burst toward a stalled TCP reader
// takes far fewer flushes than operations.
func TestSenderPooledBatchesUnderBackpressure(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cl, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := <-accepted
	defer srv.Close()

	pool := NewWriterPool(1)
	defer pool.Close()
	s := NewPooledSender(srv, nil, pool)
	defer s.Close()
	bc := senderTestBroadcast(t)
	const burst = 500
	startFlushes := TCPFlushes()
	for i := 0; i < burst; i++ {
		bc.Retain()
		if err := s.EnqueueBroadcast(bc, 1, core.Timestamp{T1: uint64(i), T2: 1}); err != nil {
			t.Fatal(err)
		}
	}
	bc.Release()
	ops := 0
	for ops < burst {
		m, err := cl.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch v := m.(type) {
		case wire.OpBatch:
			ops += len(v.Ops)
		case wire.ServerOp:
			ops++
		default:
			t.Fatalf("unexpected %T", m)
		}
	}
	if flushes := TCPFlushes() - startFlushes; flushes >= burst/2 {
		t.Fatalf("%d ops took %d flushes; want substantial coalescing", burst, flushes)
	}
}

// TestWriterPoolCloseFallback: a sender attached to a closed pool still
// drains (via the spawned-goroutine fallback) and Close still releases.
func TestWriterPoolCloseFallback(t *testing.T) {
	pool := NewWriterPool(1)
	a, b := Pipe(64)
	s := NewPooledSender(a, nil, pool)
	pool.Close()
	for i := 1; i <= 10; i++ {
		if err := s.Enqueue(wire.Leave{Site: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	for i := 1; i <= 10; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if l, ok := m.(wire.Leave); !ok || l.Site != i {
			t.Fatalf("message %d: got %#v", i, m)
		}
	}
}

// TestDispatcherDeliversInOrder drains one conn through the dispatcher and
// checks per-connection ordering and the single finish invocation.
func TestDispatcherDeliversInOrder(t *testing.T) {
	d := NewDispatcher(2, 8)
	defer d.Close()
	a, b := Pipe(256)
	ec, ok := b.(EventConn)
	if !ok {
		t.Fatal("mem conn does not implement EventConn")
	}
	var mu sync.Mutex
	var got []int
	finished := make(chan struct{})
	var finishes int
	ok = d.Add(ec, func(m wire.Msg) bool {
		l, isLeave := m.(wire.Leave)
		if !isLeave {
			return false
		}
		mu.Lock()
		got = append(got, l.Site)
		mu.Unlock()
		return true
	}, func() {
		mu.Lock()
		finishes++
		mu.Unlock()
		close(finished)
	})
	if !ok {
		t.Fatal("Add refused on open dispatcher")
	}
	const n = 100
	for i := 1; i <= n; i++ {
		if err := a.Send(wire.Leave{Site: i}); err != nil {
			t.Fatal(err)
		}
	}
	_ = a.Close()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("conn never retired after close")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("handled %d messages, want %d", len(got), n)
	}
	for i, site := range got {
		if site != i+1 {
			t.Fatalf("message %d: site %d, want %d", i, site, i+1)
		}
	}
	if finishes != 1 {
		t.Fatalf("finish ran %d times, want 1", finishes)
	}
}

// TestDispatcherPreRegisteredMessages: messages delivered before Add are
// dispatched by the registration-time callback fire.
func TestDispatcherPreRegisteredMessages(t *testing.T) {
	d := NewDispatcher(1, 4)
	defer d.Close()
	a, b := Pipe(16)
	for i := 1; i <= 3; i++ {
		if err := a.Send(wire.Leave{Site: i}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan int, 3)
	d.Add(b.(EventConn), func(m wire.Msg) bool {
		done <- m.(wire.Leave).Site
		return true
	}, nil)
	for i := 1; i <= 3; i++ {
		select {
		case site := <-done:
			if site != i {
				t.Fatalf("got site %d, want %d", site, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("pre-registered message %d never dispatched", i)
		}
	}
}
