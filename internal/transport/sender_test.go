package transport

import (
	"errors"
	"testing"
	"time"

	"repro/internal/causal"
	"repro/internal/core"
	"repro/internal/op"
	"repro/internal/wire"
)

func senderTestBroadcast(t testing.TB) *wire.Broadcast {
	t.Helper()
	o, err := op.NewInsert(4, 1, "ab")
	if err != nil {
		t.Fatal(err)
	}
	bc, err := wire.NewBroadcast(causal.OpRef{Site: 0, Seq: 1}, causal.OpRef{Site: 2, Seq: 1}, o)
	if err != nil {
		t.Fatal(err)
	}
	return bc
}

// TestSenderFIFOMixed drives ordinary messages and encode-once broadcasts
// through one Sender over the in-memory pipe and checks they arrive in
// enqueue order with the right per-destination fields.
func TestSenderFIFOMixed(t *testing.T) {
	a, b := Pipe(256)
	s := NewSender(a, nil)
	defer s.Close()

	bc := senderTestBroadcast(t)
	if err := s.Enqueue(wire.Leave{Site: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		bc.Retain()
		if err := s.EnqueueBroadcast(bc, 7, core.Timestamp{T1: uint64(i), T2: 5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Enqueue(wire.Leave{Site: 2}); err != nil {
		t.Fatal(err)
	}
	bc.Release()

	var got []wire.Msg
	want := 1 + 3 + 1 // ops may arrive as one batch or singles; count ops
	ops := 0
	for ops+len(got) < want {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch v := m.(type) {
		case wire.OpBatch:
			ops += len(v.Ops)
			for _, so := range v.Ops {
				if so.To != 7 {
					t.Fatalf("batch op to %d, want 7", so.To)
				}
			}
		case wire.ServerOp:
			ops++
			if v.To != 7 {
				t.Fatalf("op to %d, want 7", v.To)
			}
		default:
			got = append(got, m)
		}
	}
	if len(got) != 2 || ops != 3 {
		t.Fatalf("got %d plain msgs and %d ops, want 2 and 3", len(got), ops)
	}
	if l, ok := got[0].(wire.Leave); !ok || l.Site != 1 {
		t.Fatalf("first plain msg %#v, want Leave{1}", got[0])
	}
	if l, ok := got[1].(wire.Leave); !ok || l.Site != 2 {
		t.Fatalf("last plain msg %#v, want Leave{2}", got[1])
	}
}

// TestSenderCloseDrains: messages enqueued before Close still reach the
// peer — Close drains, then stops.
func TestSenderCloseDrains(t *testing.T) {
	a, b := Pipe(256)
	s := NewSender(a, nil)
	for i := 1; i <= 20; i++ {
		if err := s.Enqueue(wire.Leave{Site: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	for i := 1; i <= 20; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if l, ok := m.(wire.Leave); !ok || l.Site != i {
			t.Fatalf("message %d: got %#v", i, m)
		}
	}
	if err := s.Enqueue(wire.Leave{Site: 99}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
}

// TestSenderClosedErrSentinel: the package-specific sentinel is returned
// after Close, and EnqueueBroadcast still consumes its reference.
func TestSenderClosedErrSentinel(t *testing.T) {
	sentinel := errors.New("custom closed")
	a, _ := Pipe(4)
	s := NewSender(a, sentinel)
	s.Close()
	if err := s.Enqueue(wire.Leave{Site: 1}); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	bc := senderTestBroadcast(t)
	bc.Retain()
	if err := s.EnqueueBroadcast(bc, 1, core.Timestamp{}); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	bc.Release() // the enqueue released its own reference; this is the creator's
}

// TestSenderStickyError: a dead connection surfaces as a sticky error on
// later enqueues.
func TestSenderStickyError(t *testing.T) {
	a, b := Pipe(1)
	_ = b.Close()
	_ = a.Close()
	s := NewSender(a, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.Enqueue(wire.Leave{Site: 1})
		if err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("sticky error %v, want ErrClosed", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sender never recorded the write error")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
}

// TestSenderHighWater: the depth metric records the deepest the queue got.
func TestSenderHighWater(t *testing.T) {
	a, b := Pipe(1024)
	s := NewSender(a, nil)
	defer s.Close()
	if hw := s.HighWater(); hw != 0 {
		t.Fatalf("initial high water %d", hw)
	}
	for i := 0; i < 50; i++ {
		if err := s.Enqueue(wire.Leave{Site: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if hw := s.HighWater(); hw < 1 || hw > 50 {
		t.Fatalf("high water %d, want within [1, 50]", hw)
	}
	for drained := 0; drained < 50; drained++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSendFrameTCPRoundTrip: a blob of coalesced frames written through the
// TCP fast path decodes back into the same sequence of messages.
func TestSendFrameTCPRoundTrip(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0", WithBufferSize(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cl, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := <-accepted
	defer srv.Close()

	fc, ok := srv.(FrameConn)
	if !ok {
		t.Fatal("TCP conn does not implement FrameConn")
	}
	bc := senderTestBroadcast(t)
	defer bc.Release()
	var blob []byte
	items := make([]wire.FrameItem, 0, 5)
	for i := 1; i <= 5; i++ {
		items = append(items, wire.FrameItem{B: bc, To: i, TS: core.Timestamp{T1: uint64(i), T2: 9}})
	}
	blob = wire.AppendFrames(blob, items)
	blob, err = wire.AppendFrame(blob, wire.Leave{Site: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.SendFrame(blob); err != nil {
		t.Fatal(err)
	}

	m, err := cl.Recv()
	if err != nil {
		t.Fatal(err)
	}
	batch, ok := m.(wire.OpBatch)
	if !ok || len(batch.Ops) != 5 {
		t.Fatalf("got %#v, want 5-op batch", m)
	}
	for i, so := range batch.Ops {
		if so.To != i+1 || so.TS.T1 != uint64(i+1) {
			t.Fatalf("op %d: to=%d ts=%v", i, so.To, so.TS)
		}
	}
	m, err = cl.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := m.(wire.Leave); !ok || l.Site != 3 {
		t.Fatalf("got %#v, want Leave{3}", m)
	}
}

// TestSendFrameMemCorrupt: the in-memory fast path rejects malformed blobs
// instead of delivering garbage.
func TestSendFrameMemCorrupt(t *testing.T) {
	a, _ := Pipe(4)
	fc := a.(FrameConn)
	if err := fc.SendFrame([]byte{0xFF}); err == nil {
		t.Fatal("bad length accepted")
	}
	if err := fc.SendFrame([]byte{5, 1, 2}); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// TestSenderBatchesUnderBackpressure: with the reader stalled, a burst ends
// up coalesced — far fewer flushes than operations.
func TestSenderBatchesUnderBackpressure(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cl, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := <-accepted
	defer srv.Close()

	s := NewSender(srv, nil)
	defer s.Close()
	bc := senderTestBroadcast(t)
	const burst = 500
	startFlushes := TCPFlushes()
	for i := 0; i < burst; i++ {
		bc.Retain()
		if err := s.EnqueueBroadcast(bc, 1, core.Timestamp{T1: uint64(i), T2: 1}); err != nil {
			t.Fatal(err)
		}
	}
	bc.Release()
	ops := 0
	for ops < burst {
		m, err := cl.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch v := m.(type) {
		case wire.OpBatch:
			ops += len(v.Ops)
		case wire.ServerOp:
			ops++
		default:
			t.Fatalf("unexpected %T", m)
		}
	}
	flushes := TCPFlushes() - startFlushes
	if flushes >= burst/2 {
		t.Fatalf("%d ops took %d flushes; want substantial coalescing", burst, flushes)
	}
	if hw := s.HighWater(); hw < 2 {
		t.Fatalf("high water %d, want >= 2 under backpressure", hw)
	}
}

