package transport

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workRing is the sharded ready ring behind both the Dispatcher and the
// WriterPool (DESIGN.md §18). The single-ring layout of §15 funnels every
// enqueue and every worker wakeup through one mutex+cond pair: at N=128
// hot connections that lock is acquired twice per message by producers and
// once per turn by every worker, and each enqueue's Signal contends with the
// whole worker set. Sharding splits the ring into one sub-ring per worker:
// producers push to an item's sticky shard (assigned once at registration,
// so the sched-bit/FIFO invariants of §15 are untouched — which ring a conn
// waits on never affects who drains it or in what order), workers pop from
// their home shard, steal from siblings before parking, and wakeups are
// targeted signals carrying a token instead of broadcasts.
//
// The wake-token protocol closes the cross-shard lost-wakeup window: a
// producer that finds its own shard's waiter set exhausted (waiting == wake)
// scans sibling shards for a parked worker and hands it one token
// (wake++, Signal). A worker only blocks while its shard is empty AND it
// holds no token (wake == 0); on wakeup it consumes one token and re-runs
// the full pop-then-steal scan, so the promised item — wherever it lives —
// is found. A stale token (the item was taken first) costs one spurious
// scan, never a stall. Workers park only after a full steal scan that began
// strictly after the waiting count was published, so a producer that reads
// idle == 0 is guaranteed the scan that follows will see its item.
type workRing[T any] struct {
	shards []ringShard[T]
	// idle approximates the number of workers between waiting-publication
	// and wakeup, letting producers skip the sibling scan entirely while
	// every worker is busy — the common case under load.
	idle atomic.Int32
}

// ringShard is one sub-ring: a circular buffer plus the parking state of the
// workers homed on it. Padded so neighboring shards' hot fields do not share
// a cache line under cross-CPU push/steal traffic.
type ringShard[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ring    []T
	head    int
	n       int
	waiting int  // workers parked (or scanning before parking) on this shard
	wake    int  // outstanding wake tokens promised to those workers
	closed  bool
	_       [64]byte
}

// newWorkRing builds a ring of `shards` sub-rings. Shards are clamped to
// [1, workers]: a shard with no home worker would only ever be drained by
// steals, inverting the locality the layout exists for.
func newWorkRing[T any](shards, workers int) *workRing[T] {
	if shards < 1 {
		shards = workers
	}
	if shards > workers {
		shards = workers
	}
	if shards < 1 {
		shards = 1
	}
	r := &workRing[T]{shards: make([]ringShard[T], shards)}
	for i := range r.shards {
		r.shards[i].cond = sync.NewCond(&r.shards[i].mu)
	}
	return r
}

// size returns the shard count; callers mod their sticky assignments by it.
func (r *workRing[T]) size() int { return len(r.shards) }

// push appends v to shard i and wakes at most one worker. It reports false
// — without queuing — when the ring is closed; the caller owns the fallback
// (retire the conn, spawn a drain goroutine). The returned depth is the
// shard's queue length after the push, for the dispatch.shard.depth
// histogram the caller records.
func (r *workRing[T]) push(i int, v T) (depth int, ok bool) {
	sh := &r.shards[i]
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return 0, false
	}
	sh.pushLocked(v)
	depth = sh.n
	if sh.waiting > sh.wake {
		// A worker homed here is parked (or committed to parking) with no
		// token: hand it one. Signal under the mutex pairs with the
		// wait-loop's re-check, so the token is never missed.
		sh.wake++
		sh.cond.Signal()
		sh.mu.Unlock()
		return depth, true
	}
	sh.mu.Unlock()
	if len(r.shards) > 1 && r.idle.Load() > 0 {
		r.wakeIdle(i)
	}
	return depth, true
}

// wakeIdle hands one wake token to a parked worker on any shard but `except`
// (whose waiters were already found exhausted). Scanning stops at the first
// shard with an unpromised waiter; holding at most one shard lock at a time
// keeps push/steal/wake free of lock-order cycles.
func (r *workRing[T]) wakeIdle(except int) {
	for j := range r.shards {
		if j == except {
			continue
		}
		sh := &r.shards[j]
		sh.mu.Lock()
		if !sh.closed && sh.waiting > sh.wake {
			sh.wake++
			sh.cond.Signal()
			sh.mu.Unlock()
			return
		}
		sh.mu.Unlock()
	}
}

// next returns the next item for a worker homed on shard `home`: pop the
// home shard, steal from siblings, then park until a push or a token
// arrives. ok is false only when the ring is closed AND every shard has
// drained — Close keeps the §15 semantics of servicing leftover ready items
// before the workers exit.
func (r *workRing[T]) next(home int) (v T, ok bool) {
	hs := &r.shards[home]
	for {
		hs.mu.Lock()
		if v, ok = hs.popLocked(); ok {
			hs.mu.Unlock()
			return v, true
		}
		if hs.closed {
			hs.mu.Unlock()
			return r.steal(home)
		}
		// Publish intent to park BEFORE the steal scan: a producer that
		// reads idle == 0 afterward pushed its item before this point, so
		// the scan below is guaranteed to see it.
		hs.waiting++
		r.idle.Add(1)
		hs.mu.Unlock()

		if v, ok = r.steal(home); ok {
			hs.mu.Lock()
			hs.waiting--
			hs.mu.Unlock()
			r.idle.Add(-1)
			return v, true
		}

		hs.mu.Lock()
		// Re-check the home shard: a push may have landed during the scan
		// and found waiting == wake (token already pending elsewhere) or
		// idle racing to zero.
		if v, ok = hs.popLocked(); ok {
			hs.waiting--
			hs.mu.Unlock()
			r.idle.Add(-1)
			return v, true
		}
		for hs.n == 0 && hs.wake == 0 && !hs.closed {
			hs.cond.Wait()
		}
		if hs.wake > 0 {
			// Consume the token whatever woke us: the promised item is
			// found by the scan the loop re-runs (or was already taken,
			// costing one spurious scan).
			hs.wake--
		}
		hs.waiting--
		hs.mu.Unlock()
		r.idle.Add(-1)
	}
}

// steal scans every sibling shard once, popping the oldest item of the first
// non-empty one. Per-item FIFO survives stealing because order within one
// connection is enforced by its sched bit (one servicer at a time), not by
// which worker runs the service turn — see DESIGN.md §18.
func (r *workRing[T]) steal(home int) (v T, ok bool) {
	n := len(r.shards)
	for d := 1; d < n; d++ {
		sh := &r.shards[(home+d)%n]
		sh.mu.Lock()
		if v, ok = sh.popLocked(); ok {
			sh.mu.Unlock()
			ringSteals.Add(1)
			return v, true
		}
		sh.mu.Unlock()
	}
	return v, false
}

// queued returns the total number of items waiting across all shards.
func (r *workRing[T]) queued() int {
	total := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		total += sh.n
		sh.mu.Unlock()
	}
	return total
}

// close marks every shard closed and releases all parked workers; pushes
// from here on report false. Queued items stay queued — the workers drain
// them (via next's closed path) before exiting.
func (r *workRing[T]) close() {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.closed = true
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// pushLocked appends v at the tail of the circular buffer, doubling when
// full. Called with sh.mu held.
func (sh *ringShard[T]) pushLocked(v T) {
	if sh.n == len(sh.ring) {
		grown := make([]T, maxInt(8, 2*len(sh.ring)))
		for i := 0; i < sh.n; i++ {
			grown[i] = sh.ring[(sh.head+i)%len(sh.ring)]
		}
		sh.ring, sh.head = grown, 0
	}
	sh.ring[(sh.head+sh.n)%len(sh.ring)] = v
	sh.n++
}

// popLocked removes and returns the head of the buffer. Called with sh.mu
// held. The vacated slot is zeroed so items that retire while off the ring
// are not pinned against the GC.
func (sh *ringShard[T]) popLocked() (v T, ok bool) {
	if sh.n == 0 {
		return v, false
	}
	var zero T
	v = sh.ring[sh.head]
	sh.ring[sh.head] = zero
	sh.head = (sh.head + 1) % len(sh.ring)
	sh.n--
	return v, true
}

// RingOption configures the sharded ready ring of a Dispatcher or a
// WriterPool.
type RingOption func(*ringConfig)

type ringConfig struct {
	shards int
}

// WithShards splits the ready ring into n per-worker sub-rings with work
// stealing (clamped to the worker count; n <= 0 keeps the default of one
// shard per worker). WithShards(1) is the single-ring §15 layout — the
// reference semantics the sharded paths are differentially tested against.
func WithShards(n int) RingOption {
	return func(c *ringConfig) { c.shards = n }
}

func buildRingConfig(opts []RingOption) ringConfig {
	var c ringConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// defaultWorkers sizes a dispatcher or pool at one worker per CPU.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
